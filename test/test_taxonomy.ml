(* Taxonomy consistency: DESIGN.md §9 vs. an instrumented run.

   DESIGN.md §9 declares the canonical span, metric and counter-track
   tables as a stable observability contract. This suite parses those
   tables straight out of the shipped document (a dune dep of the test
   stanza) and drives one real traced merge+STA pipeline run, then
   checks both directions:

   - every name the tables mark `always` is actually emitted, and
   - every emitted name appears in a table (always or conditional),

   so the documentation cannot drift from the instrumentation: adding
   a span or metric without documenting it fails exactly like
   documenting one that no longer exists. *)

module Design = Mm_netlist.Design
module Metrics = Mm_util.Metrics
module Obs = Mm_util.Obs
module Pool = Mm_util.Pool
module Merge_flow = Mm_core.Merge_flow
module Sta = Mm_timing.Sta
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Parsing the §9 tables out of DESIGN.md                              *)

type entry = { e_name : string; e_always : bool }

type tables = {
  t_spans : entry list;
  t_metrics : entry list;
  t_tracks : entry list;
}

(* Relative to the test build dir under `dune runtest` (the stanza
   declares ../DESIGN.md as a dep); the fallback covers `dune exec`
   from the project root. *)
let design_md =
  if Sys.file_exists "../DESIGN.md" then "../DESIGN.md" else "DESIGN.md"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A data row looks like [| `name` | ... | always/conditional ... | ... |].
   Header and separator rows carry no backticked first cell, so they
   fall through. The "when" cell is located by content rather than
   column index because the metric table has one more column than the
   span and track tables. *)
let parse_row line =
  if not (starts_with "|" (String.trim line)) then None
  else
  let cells =
    String.split_on_char '|' line |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  match cells with
  | name :: rest
    when String.length name > 2
         && name.[0] = '`'
         && name.[String.length name - 1] = '`' ->
    let e_name = String.sub name 1 (String.length name - 2) in
    let when_cell =
      List.find_opt
        (fun c -> c = "always" || starts_with "conditional" c)
        rest
    in
    (match when_cell with
    | Some w -> Some { e_name; e_always = w = "always" }
    | None ->
      Alcotest.failf "DESIGN.md §9 row for `%s` has no when column" e_name)
  | _ -> None

let tables =
  lazy
    (let lines = String.split_on_char '\n' (read_file design_md) in
     (* Restrict to §9 and track which "### ..." table we are under. *)
     let spans = ref [] and metrics = ref [] and tracks = ref [] in
     let in_s9 = ref false in
     let current = ref None in
     List.iter
       (fun line ->
         if starts_with "## 9." line then in_s9 := true
         else if starts_with "## " line then in_s9 := false
         else if !in_s9 then
           if starts_with "### " line then
             current :=
               (if starts_with "### Span" line then Some spans
                else if starts_with "### Metric" line then Some metrics
                else if starts_with "### Counter tracks" line then Some tracks
                else None)
           else
             match (!current, parse_row line) with
             | Some bucket, Some e -> bucket := e :: !bucket
             | _ -> ())
       lines;
     {
       t_spans = List.rev !spans;
       t_metrics = List.rev !metrics;
       t_tracks = List.rev !tracks;
     })

(* ------------------------------------------------------------------ *)
(* One instrumented reference run: sources → merge → STA at jobs=2,
   with span tracing and GC telemetry on, shared by every test case.   *)

type emitted = { em_spans : SS.t; em_metrics : SS.t; em_tracks : SS.t }

let emitted =
  lazy
    (Metrics.reset ();
     Obs.reset ();
     Obs.set_enabled true;
     Obs.set_gc_enabled true;
     let params =
       {
         Gen_design.default_params with
         Gen_design.seed = 7;
         n_domains = 2;
         regs_per_domain = 24;
       }
     in
     let design, info = Gen_design.generate params in
     let suite =
       {
         Gen_modes.sp_seed = 8;
         families = [ 3; 2 ];
         base_period = 2.0;
         scan_family = true;
       }
     in
     (* run_sources rather than run so the merge.load / sdc.parse /
        sdc.resolve spans of the loading stage are exercised too. *)
     let sources =
       List.concat
         (List.mapi
            (fun family n ->
              List.init n (fun index ->
                  {
                    Merge_flow.src_name = Printf.sprintf "m%d_%d" family index;
                    src_file = None;
                    src_text =
                      Gen_modes.sdc_of_mode_spec info suite ~family ~index;
                  }))
            suite.Gen_modes.families)
     in
     let result = Merge_flow.run_sources ~jobs:2 ~design sources in
     Pool.with_pool ~jobs:2 (fun pool ->
         ignore
           (Sta.analyze_many ~pool design
              (List.map
                 (fun (g : Merge_flow.group) -> g.Merge_flow.grp_mode)
                 result.Merge_flow.groups)));
     let em_spans =
       SS.of_list
         (List.map (fun (name, _, _, _) -> name) (Obs.span_summaries ()))
     in
     let em_metrics =
       SS.of_list
         (List.map (fun (i : Metrics.item) -> i.Metrics.name)
            (Metrics.snapshot ()))
     in
     let em_tracks =
       SS.of_list (List.map (fun (name, _, _) -> name) (Obs.samples ()))
     in
     Obs.set_gc_enabled false;
     Obs.set_enabled false;
     { em_spans; em_metrics; em_tracks })

(* ------------------------------------------------------------------ *)
(* Both directions, with name lists in the failure message             *)

let names entries = SS.of_list (List.map (fun e -> e.e_name) entries)
let always entries =
  SS.of_list
    (List.filter_map (fun e -> if e.e_always then Some e.e_name else None)
       entries)

let assert_consistent ~what ~documented ~emitted =
  let missing = SS.diff (always documented) emitted in
  if not (SS.is_empty missing) then
    Alcotest.failf
      "%s documented as `always` in DESIGN.md §9 but not emitted by the \
       reference run: %s"
      what
      (String.concat ", " (SS.elements missing));
  let undocumented = SS.diff emitted (names documented) in
  if not (SS.is_empty undocumented) then
    Alcotest.failf "%s emitted but missing from the DESIGN.md §9 table: %s"
      what
      (String.concat ", " (SS.elements undocumented))

let test_tables_parse () =
  let t = Lazy.force tables in
  (* Guard against a silent parse miss (e.g. a heading rename): the
     tables are substantial, so a tiny count means the parser found
     the wrong section, not that the contract shrank. *)
  check Alcotest.bool "span table found" true (List.length t.t_spans >= 10);
  check Alcotest.bool "metric table found" true (List.length t.t_metrics >= 20);
  check Alcotest.bool "track table found" true (List.length t.t_tracks >= 2);
  let dup entries =
    let sorted = List.sort compare (List.map (fun e -> e.e_name) entries) in
    let rec go = function
      | a :: b :: _ when a = b -> Some a
      | _ :: rest -> go rest
      | [] -> None
    in
    go sorted
  in
  List.iter
    (fun (what, entries) ->
      match dup entries with
      | Some name -> Alcotest.failf "duplicate %s row: %s" what name
      | None -> ())
    [ ("span", t.t_spans); ("metric", t.t_metrics); ("track", t.t_tracks) ]

let test_spans () =
  assert_consistent ~what:"spans"
    ~documented:(Lazy.force tables).t_spans
    ~emitted:(Lazy.force emitted).em_spans

let test_metrics () =
  assert_consistent ~what:"metrics"
    ~documented:(Lazy.force tables).t_metrics
    ~emitted:(Lazy.force emitted).em_metrics

let test_tracks () =
  assert_consistent ~what:"counter tracks"
    ~documented:(Lazy.force tables).t_tracks
    ~emitted:(Lazy.force emitted).em_tracks

let () =
  Alcotest.run "taxonomy"
    [
      ( "design-md-vs-run",
        [
          tc "§9 tables parse out of DESIGN.md" test_tables_parse;
          tc "every documented span emitted, every span documented"
            test_spans;
          tc "every documented metric emitted, every metric documented"
            test_metrics;
          tc "every documented counter track emitted and documented"
            test_tracks;
        ] );
    ]
