(* Fault-injection robustness suite (dune alias @robustness).

   Replays a fixed set of seeded corruptions (see Mm_workload.Fuzz_inputs)
   against the permissive merge flow and asserts the fault-tolerance
   contract: the flow never raises, every quarantined mode carries at
   least one located diagnostic, and whatever still merges passes the
   equivalence check. Seeds are fixed integers, so a failure
   reproduces exactly. *)

module Design = Mm_netlist.Design
module Netlist_io = Mm_netlist.Netlist_io
module Mode = Mm_sdc.Mode
module Merge_flow = Mm_core.Merge_flow
module Equiv = Mm_core.Equiv
module Presets = Mm_workload.Presets
module Fuzz = Mm_workload.Fuzz_inputs
module Diag = Mm_util.Diag
module Prng = Mm_util.Prng

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let n_seeds = 250

(* Built once; each fuzz iteration reuses the design and clean texts. *)
let design, clean_sources =
  let design, _info, modes = Presets.build Presets.tiny in
  let sources =
    List.map
      (fun (m : Mode.t) ->
        {
          Merge_flow.src_name = m.Mode.mode_name;
          src_file = None;
          src_text = Mode.to_sdc m;
        })
      modes
  in
  design, sources

let corrupt_one ~seed sources =
  let n = List.length sources in
  let victim = seed mod n in
  List.mapi
    (fun i s ->
      if i = victim then
        { s with Merge_flow.src_text = Fuzz.corrupt_seeded ~seed s.Merge_flow.src_text }
      else s)
    sources

let located d = d.Diag.dloc <> None

let fuzz_case ~check_equivalence ~label n_lo n_hi =
  tc label (fun () ->
      let failures = ref [] in
      for seed = n_lo to n_hi - 1 do
        let sources = corrupt_one ~seed clean_sources in
        match
          Merge_flow.run_sources ~check_equivalence
            ~policy:Merge_flow.Permissive ~design sources
        with
        | r ->
          List.iter
            (fun (q : Merge_flow.quarantined) ->
              if q.Merge_flow.q_diags = [] then
                failures :=
                  Printf.sprintf "seed %d: %s quarantined without diagnostics"
                    seed q.Merge_flow.q_name
                  :: !failures
              else if not (List.exists located q.Merge_flow.q_diags) then
                failures :=
                  Printf.sprintf "seed %d: %s has no located diagnostic" seed
                    q.Merge_flow.q_name
                  :: !failures)
            r.Merge_flow.quarantined;
          List.iter
            (fun (g : Merge_flow.group) ->
              match g.Merge_flow.grp_equiv with
              | Some e when not e.Equiv.equivalent ->
                failures :=
                  Printf.sprintf "seed %d: group [%s] failed equivalence" seed
                    (String.concat ", " g.Merge_flow.grp_members)
                  :: !failures
              | _ -> ())
            r.Merge_flow.groups;
          (* Quarantine + survivors must account for every input mode. *)
          let accounted =
            r.Merge_flow.n_individual + List.length r.Merge_flow.quarantined
          in
          if accounted <> List.length sources then
            failures :=
              Printf.sprintf "seed %d: %d of %d modes unaccounted for" seed
                (List.length sources - accounted)
                (List.length sources)
              :: !failures
        | exception exn ->
          failures :=
            Printf.sprintf "seed %d: permissive flow raised %s" seed
              (Printexc.to_string exn)
            :: !failures
      done;
      match !failures with
      | [] -> ()
      | fs ->
        Alcotest.failf "%d fault-tolerance violations:\n%s" (List.length fs)
          (String.concat "\n" (List.rev fs)))

(* Multi-fault: corrupt every source at once with heavier rounds. The
   run may quarantine everything, but must still return and report. *)
let all_corrupt_case =
  tc "all sources corrupted at once: flow still returns" (fun () ->
      for seed = 0 to 49 do
        let sources =
          List.mapi
            (fun i s ->
              {
                s with
                Merge_flow.src_text =
                  Fuzz.corrupt_seeded ~seed:(seed * 131 + i) ~rounds:6
                    s.Merge_flow.src_text;
              })
            clean_sources
        in
        match
          Merge_flow.run_sources ~check_equivalence:false
            ~policy:Merge_flow.Permissive ~design sources
        with
        | r ->
          List.iter
            (fun (q : Merge_flow.quarantined) ->
              check Alcotest.bool "quarantine carries diagnostics" true
                (q.Merge_flow.q_diags <> []))
            r.Merge_flow.quarantined
        | exception exn ->
          Alcotest.failf "seed %d: raised %s" seed (Printexc.to_string exn)
      done)

(* Corrupted netlist text must fail with Failure (a reportable parse
   error), never an unhandled internal exception. *)
let netlist_corruption_case =
  tc "corrupt netlist text fails only with Failure" (fun () ->
      let clean = Netlist_io.to_string design in
      for seed = 0 to 99 do
        let txt = Fuzz.corrupt_seeded ~seed ~rounds:4 clean in
        match Netlist_io.of_string txt with
        | _ -> ()
        | exception Failure _ -> ()
        | exception exn ->
          Alcotest.failf "seed %d: unexpected exception %s" seed
            (Printexc.to_string exn)
      done)

(* The corruption itself must be deterministic, or failures would not
   reproduce. *)
let determinism_case =
  tc "corruption is seed-deterministic" (fun () ->
      let src = (List.hd clean_sources).Merge_flow.src_text in
      for seed = 0 to 19 do
        check Alcotest.string "same seed, same corruption"
          (Fuzz.corrupt_seeded ~seed src)
          (Fuzz.corrupt_seeded ~seed src)
      done)

let () =
  Alcotest.run "robustness"
    [
      ( "fuzz",
        [
          fuzz_case ~check_equivalence:true
            ~label:(Printf.sprintf "seeds 0-%d: quarantine contract holds" (n_seeds - 1))
            0 n_seeds;
          all_corrupt_case;
          netlist_corruption_case;
          determinism_case;
        ] );
    ]
