(* Provenance & audit tests (tier-1).

   Golden checks of the audit report on the paper circuit (stable ids,
   mandatory schema keys, evidence on every refinement false path) and
   a property: [modemerge explain] can resolve a lineage chain for
   EVERY line of the merged SDC, at jobs=1 and jobs=4, with identical
   provenance both times. *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Parser = Mm_sdc.Parser
module Metrics = Mm_util.Metrics
module Prov = Mm_util.Prov
module Merge_flow = Mm_core.Merge_flow
module Provenance = Mm_core.Provenance
module Audit = Mm_core.Audit
module Pc = Mm_workload.Paper_circuit
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let paper_result ~jobs () =
  Metrics.reset ();
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  Merge_flow.run ~jobs [ a; b ]

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Audit golden checks on the paper circuit                            *)

let test_audit_mandatory_keys () =
  let json = Audit.to_json (paper_result ~jobs:1 ()) in
  List.iter
    (fun k ->
      check Alcotest.bool (Printf.sprintf "audit has %S" k) true
        (contains ~needle:(Printf.sprintf "%S" k) json))
    Audit.mandatory_keys;
  check Alcotest.bool "schema version" true
    (contains ~needle:"\"audit_schema_version\":2" json)

let test_audit_stable_ids () =
  let r = paper_result ~jobs:1 () in
  List.iter
    (fun (g : Merge_flow.group) ->
      let store = g.Merge_flow.grp_prov in
      let scope = Prov.scope store in
      let n_cmds = List.length (Mode.to_commands g.Merge_flow.grp_mode) in
      check Alcotest.int
        (scope ^ ": one lineage entry per emitted command")
        n_cmds (Prov.length store);
      List.iteri
        (fun i (e : Prov.entry) ->
          check Alcotest.string "id scheme"
            (Printf.sprintf "%s#c%d" scope i)
            e.Prov.pv_id)
        (Prov.entries store))
    r.Merge_flow.groups

let test_audit_refinement_evidence () =
  let r = paper_result ~jobs:1 () in
  let saw_refinement = ref false in
  List.iter
    (fun (g : Merge_flow.group) ->
      List.iter
        (fun (e : Prov.entry) ->
          match e.Prov.pv_origin with
          | Prov.Data_clock_refinement | Prov.Comparison_fix _ ->
            saw_refinement := true;
            check Alcotest.bool
              (e.Prov.pv_id ^ ": refinement false path carries evidence")
              true
              (e.Prov.pv_evidence <> []);
            List.iter
              (fun record ->
                check Alcotest.bool
                  (e.Prov.pv_id ^ ": evidence record is non-empty")
                  true (record <> []))
              e.Prov.pv_evidence
          | Prov.Union | Prov.Intersection | Prov.Tolerance_merge
          | Prov.Uniquification ->
            check Alcotest.bool
              (e.Prov.pv_id ^ ": merged constraint lists contributing modes")
              true
              (e.Prov.pv_modes <> [])
          | Prov.Derived_exclusivity | Prov.Inherited | Prov.Clock_refinement
            ->
            ())
        (Prov.entries g.Merge_flow.grp_prov))
    r.Merge_flow.groups;
  (* Constraint Set 6 is the 3-pass demo: it must actually exercise the
     refinement lineage, otherwise this test checks nothing. *)
  check Alcotest.bool "paper circuit produced refinement false paths" true
    !saw_refinement

let test_audit_jobs_invariant () =
  let j1 = Audit.to_json (paper_result ~jobs:1 ()) in
  let j4 = Audit.to_json (paper_result ~jobs:4 ()) in
  check Alcotest.string "audit bytes identical at jobs=1 and jobs=4" j1 j4

let test_annotated_sdc () =
  let r = paper_result ~jobs:1 () in
  List.iter
    (fun (g : Merge_flow.group) ->
      let store = g.Merge_flow.grp_prov in
      let mode = g.Merge_flow.grp_mode in
      let text = Provenance.annotated_sdc store mode in
      let prov_lines =
        List.filter
          (fun l -> String.length l >= 7 && String.sub l 0 7 = "# prov:")
          (String.split_on_char '\n' text)
      in
      check Alcotest.int "one prov comment per constraint"
        (Prov.length store) (List.length prov_lines);
      (* Comments must not change what the file parses to. *)
      check Alcotest.int "annotated SDC round-trips"
        (List.length (Mode.to_commands mode))
        (List.length (Parser.parse_string text)))
    r.Merge_flow.groups

(* ------------------------------------------------------------------ *)
(* Property: every merged-SDC line explains, at jobs=1 and jobs=4      *)

let sdc_lines mode =
  List.filter
    (fun l ->
      let l = String.trim l in
      l <> "" && l.[0] <> '#')
    (String.split_on_char '\n' (Mode.to_sdc mode))

let workload_sources seed =
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed;
      n_domains = 2;
      regs_per_domain = 12;
    }
  in
  let design, info = Gen_design.generate params in
  let suite =
    {
      Gen_modes.sp_seed = seed + 1;
      families = [ 2; 2 ];
      base_period = 2.0;
      scan_family = true;
    }
  in
  let sources =
    List.concat
      (List.mapi
         (fun family n ->
           List.init n (fun index ->
               {
                 Merge_flow.src_name = Printf.sprintf "m%d_%d" family index;
                 src_file = None;
                 src_text = Gen_modes.sdc_of_mode_spec info suite ~family ~index;
               }))
         suite.Gen_modes.families)
  in
  design, sources

let explains_every_line seed =
  let design, sources = workload_sources seed in
  let lineage_at jobs =
    Metrics.reset ();
    let r = Merge_flow.run_sources ~jobs ~design sources in
    List.map
      (fun (g : Merge_flow.group) ->
        List.iter
          (fun line ->
            if Prov.find_line g.Merge_flow.grp_prov line = [] then
              Alcotest.failf "seed %d jobs %d: no lineage for %S in %s" seed
                jobs line
                (Prov.scope g.Merge_flow.grp_prov))
          (sdc_lines g.Merge_flow.grp_mode);
        Prov.to_json g.Merge_flow.grp_prov)
      r.Merge_flow.groups
  in
  lineage_at 1 = lineage_at 4

let prop_explains =
  QCheck.Test.make ~name:"every merged SDC line has jobs-invariant lineage"
    ~count:6
    QCheck.(map (fun i -> 1 + (abs i mod 1000)) int)
    explains_every_line

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "provenance"
    [
      ( "audit",
        [
          tc "mandatory schema keys" test_audit_mandatory_keys;
          tc "stable ids cover every command" test_audit_stable_ids;
          tc "refinement evidence and contributing modes"
            test_audit_refinement_evidence;
          tc "byte-identical across jobs" test_audit_jobs_invariant;
          tc "annotated SDC" test_annotated_sdc;
        ] );
      ( "explain",
        [ QCheck_alcotest.to_alcotest prop_explains ] );
    ]
