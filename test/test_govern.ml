(* Tier-1 unit tests for the resource-governance layer: Govern tokens
   (deadlines, cancellation trees, the ambient checkpoint), structured
   outcomes, retry/backoff, the memory watermark, governed Pool
   batches with crash backtraces, Chaos fault plans, the crash-safe
   Checkpoint store and the Metrics counter snapshot/restore used by
   resume. *)

module Govern = Mm_util.Govern
module Chaos = Mm_util.Chaos
module Pool = Mm_util.Pool
module Metrics = Mm_util.Metrics
module Checkpoint = Mm_core.Checkpoint
module Fuzz = Mm_workload.Fuzz_inputs

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Tokens: deadlines, cancellation, the sub tree                       *)

let test_never () =
  check Alcotest.bool "never is live" true (Govern.cancelled Govern.never = None);
  Govern.cancel Govern.never ~why:"ignored";
  check Alcotest.bool "never ignores cancel" false (Govern.expired Govern.never);
  check Alcotest.bool "never has no deadline" true
    (Govern.remaining_s Govern.never = None);
  Govern.check Govern.never

let test_deadline () =
  let t = Govern.create ~deadline_s:0.0 ~scope:"d" () in
  (match Govern.cancelled t with
  | Some (Govern.Deadline_exceeded { scope; _ }) ->
    check Alcotest.string "deadline carries scope" "d" scope
  | _ -> Alcotest.fail "expected Deadline_exceeded");
  check Alcotest.bool "check raises Cancelled" true
    (match Govern.check t with
    | exception Govern.Cancelled (Govern.Deadline_exceeded _) -> true
    | () -> false);
  let live = Govern.create ~deadline_s:60.0 () in
  check Alcotest.bool "live token not expired" false (Govern.expired live);
  (match Govern.remaining_s live with
  | Some r -> check Alcotest.bool "remaining_s near budget" true (r > 50. && r <= 60.)
  | None -> Alcotest.fail "deadlined token must report remaining_s")

let test_cancel () =
  let t = Govern.create ~scope:"root" () in
  check Alcotest.bool "fresh token live" true (Govern.cancelled t = None);
  Govern.cancel t ~why:"user abort";
  (match Govern.cancelled t with
  | Some (Govern.Cancelled_by { scope; why }) ->
    check Alcotest.string "cancel scope" "root" scope;
    check Alcotest.string "cancel why" "user abort" why
  | _ -> Alcotest.fail "expected Cancelled_by");
  (* idempotent: the first reason wins *)
  Govern.cancel t ~why:"second";
  match Govern.cancelled t with
  | Some (Govern.Cancelled_by { why; _ }) ->
    check Alcotest.string "first cancel wins" "user abort" why
  | _ -> Alcotest.fail "expected Cancelled_by"

let test_sub_tree () =
  let p = Govern.create ~scope:"p" () in
  let blown = Govern.sub ~scope:"c" ~budget_s:0.0 p in
  check Alcotest.bool "child budget expires child" true (Govern.expired blown);
  check Alcotest.bool "parent unaffected" false (Govern.expired p);
  let c2 = Govern.sub ~scope:"c2" p in
  Govern.cancel p ~why:"stop";
  check Alcotest.bool "parent cancel reaches child" true (Govern.expired c2);
  (* the parent deadline folds into the child at sub time *)
  let p2 = Govern.create ~deadline_s:0.0 ~scope:"p2" () in
  let c3 = Govern.sub ~scope:"c3" ~budget_s:1000.0 p2 in
  (match Govern.cancelled c3 with
  | Some (Govern.Deadline_exceeded _) -> ()
  | _ -> Alcotest.fail "ancestor deadline must expire the child");
  check Alcotest.bool "sub of never is still ungoverned" true
    (Govern.cancelled (Govern.sub Govern.never) = None)

let test_reason_codes () =
  check Alcotest.string "deadline code" "govern.deadline"
    (Govern.reason_code
       (Govern.Deadline_exceeded { scope = "x"; budget_s = 1.0 }));
  check Alcotest.string "cancel code" "govern.cancelled"
    (Govern.reason_code (Govern.Cancelled_by { scope = "x"; why = "y" }));
  check Alcotest.string "memory code" "govern.memory"
    (Govern.reason_code
       (Govern.Memory_watermark { used_mb = 2.0; limit_mb = 1.0 }))

(* ------------------------------------------------------------------ *)
(* Ambient token and the cooperative checkpoint                        *)

let test_ambient_checkpoint () =
  (* free when nothing is installed *)
  Govern.checkpoint ();
  let t = Govern.create ~scope:"amb" () in
  Govern.cancel t ~why:"gone";
  let raised =
    try
      Govern.with_current t (fun () ->
          Govern.checkpoint ();
          false)
    with Govern.Cancelled (Govern.Cancelled_by _) -> true
  in
  check Alcotest.bool "checkpoint observes the ambient token" true raised;
  (* the previous ambient token is restored on raise *)
  Govern.checkpoint ()

(* ------------------------------------------------------------------ *)
(* Structured outcomes                                                 *)

let test_outcomes () =
  (match Govern.run Govern.never (fun () -> 41 + 1) with
  | Govern.Done v -> check Alcotest.int "done value" 42 v
  | _ -> Alcotest.fail "expected Done");
  let pre = Govern.create () in
  Govern.cancel pre ~why:"pre";
  (match Govern.run pre (fun () -> 0) with
  | Govern.Interrupted (Govern.Cancelled_by _) -> ()
  | _ -> Alcotest.fail "expected Interrupted at entry");
  (match Govern.run Govern.never (fun () -> failwith "boom") with
  | Govern.Crashed { exn = Failure m; _ } ->
    check Alcotest.string "crash exn" "boom" m
  | _ -> Alcotest.fail "expected Crashed");
  (* a checkpoint inside the thunk surfaces as Interrupted, not a raise *)
  let mid = Govern.create ~scope:"mid" () in
  (match
     Govern.run mid (fun () ->
         Govern.cancel mid ~why:"mid-flight";
         Govern.checkpoint ();
         0)
   with
  | Govern.Interrupted (Govern.Cancelled_by { why; _ }) ->
    check Alcotest.string "interrupt reason" "mid-flight" why
  | _ -> Alcotest.fail "expected Interrupted from checkpoint");
  (match Govern.outcome_map succ (Govern.Done 1) with
  | Govern.Done 2 -> ()
  | _ -> Alcotest.fail "outcome_map maps Done");
  let crashed = Govern.run Govern.never (fun () -> failwith "again") in
  try
    ignore (Govern.reraise_crash crashed);
    Alcotest.fail "reraise_crash must re-raise"
  with Failure m -> check Alcotest.string "reraised exn" "again" m

let test_memory_watermark () =
  Fun.protect
    ~finally:(fun () -> Govern.set_memory_limit_mb None)
    (fun () ->
      check Alcotest.bool "off by default" true
        (Govern.memory_pressure () = None);
      Govern.set_memory_limit_mb (Some 0.0001);
      (match Govern.memory_pressure () with
      | Some (Govern.Memory_watermark { used_mb; limit_mb }) ->
        check Alcotest.bool "heap exceeds tiny limit" true (used_mb > limit_mb)
      | _ -> Alcotest.fail "expected memory pressure");
      (* any real token observes the process-wide watermark *)
      (match Govern.cancelled (Govern.create ()) with
      | Some (Govern.Memory_watermark _) -> ()
      | _ -> Alcotest.fail "token must observe the watermark");
      Govern.set_memory_limit_mb None;
      check Alcotest.bool "cleared" true (Govern.memory_pressure () = None))

(* ------------------------------------------------------------------ *)
(* Retry with exponential backoff                                      *)

let test_backoff_values () =
  let p = Govern.default_retry in
  let f = Alcotest.float 1e-12 in
  check f "no backoff before attempt 2" 0.0 (Govern.backoff_s p ~attempt:1);
  check f "base at attempt 2" 0.001 (Govern.backoff_s p ~attempt:2);
  check f "doubled at attempt 3" 0.002 (Govern.backoff_s p ~attempt:3);
  check f "capped" 0.05
    (Govern.backoff_s { p with Govern.base_backoff_s = 0.04 } ~attempt:3)

let test_with_retry_recovers () =
  Metrics.reset ();
  let sleeps = ref [] in
  let calls = ref 0 in
  let v =
    Govern.with_retry
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      Govern.never ~scope:"t"
      (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky" else 7)
  in
  check Alcotest.int "value" 7 v;
  check Alcotest.int "attempts" 3 !calls;
  check Alcotest.int "retries metric" 2 (Metrics.get_counter "govern.retries");
  check Alcotest.(list (float 1e-12)) "backoff sequence" [ 0.001; 0.002 ]
    (List.rev !sleeps);
  Metrics.reset ()

let test_with_retry_exhausts () =
  let calls = ref 0 in
  (try
     ignore
       (Govern.with_retry ~sleep:ignore Govern.never ~scope:"t" (fun () ->
            incr calls;
            failwith "always"));
     Alcotest.fail "expected the last failure to re-raise"
   with Failure m -> check Alcotest.string "last exn re-raised" "always" m);
  check Alcotest.int "all attempts used" 3 !calls

let test_with_retry_non_transient () =
  let calls = ref 0 in
  (try
     ignore
       (Govern.with_retry ~sleep:ignore
          ~transient:(function Not_found -> true | _ -> false)
          Govern.never ~scope:"t"
          (fun () ->
            incr calls;
            failwith "hard"));
     Alcotest.fail "expected immediate re-raise"
   with Failure _ -> ());
  check Alcotest.int "no retry on non-transient" 1 !calls

let test_with_retry_cancelled () =
  let t = Govern.create () in
  Govern.cancel t ~why:"off";
  let calls = ref 0 in
  (try
     ignore
       (Govern.with_retry ~sleep:ignore t ~scope:"t" (fun () ->
            incr calls;
            0));
     Alcotest.fail "expected Cancelled"
   with Govern.Cancelled _ -> ());
  check Alcotest.int "cancelled token runs nothing" 0 !calls

let test_with_retry_custom_metric () =
  Metrics.reset ();
  let calls = ref 0 in
  let v =
    Govern.with_retry ~sleep:ignore ~metric:"test.custom" Govern.never
      ~scope:"t"
      (fun () ->
        incr calls;
        if !calls < 2 then failwith "once" else 9)
  in
  check Alcotest.int "value" 9 v;
  check Alcotest.int "custom metric" 1 (Metrics.get_counter "test.custom");
  check Alcotest.int "default metric untouched" 0
    (Metrics.get_counter "govern.retries");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Governed pool batches                                               *)

let done_values outs =
  List.map
    (function
      | Govern.Done v -> v
      | Govern.Interrupted _ -> Alcotest.fail "unexpected Interrupted"
      | Govern.Crashed _ -> Alcotest.fail "unexpected Crashed")
    outs

let test_pool_done () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let outs = Pool.map_outcome pool (fun x -> x * 2) [ 1; 2; 3; 4; 5 ] in
          check
            Alcotest.(list int)
            (Printf.sprintf "jobs=%d results in input order" jobs)
            [ 2; 4; 6; 8; 10 ] (done_values outs)))
    [ 1; 3 ]

let test_pool_crash_outcome () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let outs =
        Pool.map_outcome pool
          (fun x -> if x = 2 then failwith "task2" else x)
          [ 1; 2; 3 ]
      in
      match outs with
      | [ Govern.Done 1; Govern.Crashed { exn = Failure m; backtrace };
          Govern.Done 3 ] ->
        check Alcotest.string "crash exn" "task2" m;
        check Alcotest.bool "crash carries a real backtrace" true
          (Printexc.raw_backtrace_to_string backtrace <> "")
      | _ -> Alcotest.fail "expected Done/Crashed/Done in input order")

let test_pool_map_reraises_with_backtrace () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          match
            Pool.map pool
              (fun x -> if x = 1 then failwith "deep failure" else x)
              [ 0; 1; 2 ]
          with
          | _ -> Alcotest.fail "expected the worker crash to re-raise"
          | exception Failure m ->
            check Alcotest.string
              (Printf.sprintf "jobs=%d original exception" jobs)
              "deep failure" m))
    [ 1; 4 ]

let test_pool_precancelled_drains () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let t = Govern.create ~scope:"drain" () in
      Govern.cancel t ~why:"before the batch";
      let outs = Pool.map_outcome pool ~govern:t (fun x -> x) [ 1; 2; 3 ] in
      check Alcotest.int "all tasks drained as Interrupted" 3
        (List.length
           (List.filter
              (function Govern.Interrupted _ -> true | _ -> false)
              outs)))

let test_pool_task_budget () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let t = Govern.create ~scope:"b" () in
      let outs =
        Pool.map_outcome pool ~govern:t ~task_budget_s:0.0 (fun x -> x) [ 1; 2 ]
      in
      List.iter
        (function
          | Govern.Interrupted (Govern.Deadline_exceeded _) -> ()
          | _ -> Alcotest.fail "expected per-task deadline interruption")
        outs)

let test_pool_midbatch_cancel () =
  (* jobs=1 is sequential, so the drain point is deterministic: tasks
     after the cancelling one never run. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let t = Govern.create ~scope:"mid" () in
      let outs =
        Pool.map_outcome pool ~govern:t
          (fun x ->
            if x = 1 then Govern.cancel t ~why:"task 1 pulled the plug";
            x)
          [ 0; 1; 2; 3 ]
      in
      match outs with
      | [ Govern.Done 0; Govern.Done 1; Govern.Interrupted _;
          Govern.Interrupted _ ] ->
        ()
      | _ -> Alcotest.fail "expected the tail of the batch to drain")

(* ------------------------------------------------------------------ *)
(* Chaos fault plans                                                   *)

let with_chaos spec f =
  (match Chaos.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos spec %S rejected: %s" spec e);
  Fun.protect ~finally:Chaos.clear f

let test_chaos_inactive () =
  with_chaos "" (fun () ->
      check Alcotest.bool "empty plan is inactive" false (Chaos.active ());
      Chaos.hit "pool.task";
      check Alcotest.int "no counting when inactive" 0
        (Chaos.hit_count "pool.task"))

let test_chaos_nth_raise () =
  with_chaos "pool.task@1=raise" (fun () ->
      check Alcotest.bool "active" true (Chaos.active ());
      (try
         Chaos.hit "pool.task";
         Alcotest.fail "occurrence 1 must raise"
       with Chaos.Injected site -> check Alcotest.string "site" "pool.task" site);
      Chaos.hit "pool.task";
      check Alcotest.int "occurrences counted" 2 (Chaos.hit_count "pool.task");
      Chaos.hit "io.read";
      check Alcotest.int "other sites count independently" 1
        (Chaos.hit_count "io.read"))

let test_chaos_every_occurrence () =
  with_chaos "x@*=raise" (fun () ->
      List.iter
        (fun _ ->
          try
            Chaos.hit "x";
            Alcotest.fail "every occurrence must raise"
          with Chaos.Injected _ -> ())
        [ (); (); () ])

let test_chaos_reconfigure_resets () =
  with_chaos "a@1=raise" (fun () ->
      (try Chaos.hit "a" with Chaos.Injected _ -> ());
      (match Chaos.configure "a@1=raise" with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check Alcotest.int "counters reset on reconfigure" 0 (Chaos.hit_count "a");
      try
        Chaos.hit "a";
        Alcotest.fail "occurrence 1 fires again after reconfigure"
      with Chaos.Injected _ -> ())

let test_chaos_delay () =
  with_chaos "slow@1=delay:5" (fun () ->
      let t0 = Unix.gettimeofday () in
      Chaos.hit "slow";
      check Alcotest.bool "delay slept" true (Unix.gettimeofday () -. t0 >= 0.004);
      Chaos.hit "slow" (* occurrence 2: no delay, no raise *))

let test_chaos_kill_parses () =
  (* parse only — hitting the site would kill the test runner *)
  with_chaos "merge.stage:load@1=kill:137,merge.stage:cliques@1=kill" (fun () ->
      Chaos.hit "pool.task" (* unrelated site is safe *))

let test_chaos_malformed () =
  List.iter
    (fun spec ->
      match Chaos.configure spec with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "malformed spec %S accepted" spec)
    [
      "nonsense"; "site@=raise"; "site@0=raise"; "site@one=raise";
      "site@1=explode"; "site@1=delay:soon"; "site@1=kill:often";
    ];
  check Alcotest.bool "no plan installed after errors" false (Chaos.active ())

let test_chaos_scenarios_wellformed () =
  check Alcotest.string "spec rendering"
    "pool.task@2=delay:30,io.read@*=raise,merge.stage:load@1=kill:137"
    (Fuzz.chaos_spec
       [
         { Fuzz.cs_name = "d"; cs_site = "pool.task"; cs_occurrence = Some 2;
           cs_fault = Fuzz.Delay_ms 30 };
         { Fuzz.cs_name = "r"; cs_site = "io.read"; cs_occurrence = None;
           cs_fault = Fuzz.Raise };
         { Fuzz.cs_name = "k"; cs_site = "merge.stage:load";
           cs_occurrence = Some 1; cs_fault = Fuzz.Kill 137 };
       ]);
  (* the standard scenario set parses (kills included — parse only) *)
  with_chaos (Fuzz.chaos_spec Fuzz.chaos_scenarios) (fun () -> ());
  check Alcotest.bool "kill scenarios are not in-process recoverable" true
    (List.exists
       (fun c -> not (Fuzz.chaos_recoverable c))
       Fuzz.chaos_scenarios);
  check Alcotest.bool "recoverable scenarios exist" true
    (List.exists Fuzz.chaos_recoverable Fuzz.chaos_scenarios);
  check Alcotest.int "matrix covers jobs x scenarios"
    (2 * List.length Fuzz.chaos_scenarios)
    (List.length (Fuzz.chaos_matrix ()))

(* ------------------------------------------------------------------ *)
(* Checkpoint store                                                    *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_govern_test_%d_%d" (Unix.getpid ()) !counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_tmp_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_checkpoint_roundtrip () =
  with_tmp_dir (fun dir ->
      let fp = "fp1" in
      let t = Checkpoint.create ~dir ~fingerprint:fp in
      check Alcotest.(list string) "fresh store is empty" []
        (Checkpoint.completed_stages t);
      check Alcotest.bool "no stage yet" false (Checkpoint.has_stage t "load");
      Checkpoint.save_stage t ~stage:"load"
        ~counters:[ "a", 1; "b", 2 ]
        ([ "x"; "y" ], 42);
      check Alcotest.bool "stage recorded" true (Checkpoint.has_stage t "load");
      (match Checkpoint.load_stage t ~stage:"load" with
      | Some ((l, n), counters) ->
        check Alcotest.(list string) "payload list" [ "x"; "y" ] l;
        check Alcotest.int "payload int" 42 n;
        check
          Alcotest.(list (pair string int))
          "counter snapshot" [ "a", 1; "b", 2 ] counters
      | None -> Alcotest.fail "saved stage must load");
      Checkpoint.save_stage t ~stage:"mergeability" ~counters:[] 7;
      match Checkpoint.load_for_resume ~dir ~fingerprint:fp with
      | Ok t2 ->
        check Alcotest.(list string) "stages survive reopen, in order"
          [ "load"; "mergeability" ]
          (Checkpoint.completed_stages t2)
      | Error e -> Alcotest.fail e)

let test_checkpoint_fingerprint_guard () =
  with_tmp_dir (fun dir ->
      let t = Checkpoint.create ~dir ~fingerprint:"fpA" in
      Checkpoint.save_stage t ~stage:"load" ~counters:[] 1;
      match Checkpoint.load_for_resume ~dir ~fingerprint:"fpB" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "mismatched fingerprint must be refused")

let test_checkpoint_torn_payload () =
  with_tmp_dir (fun dir ->
      let fp = "fp" in
      let t = Checkpoint.create ~dir ~fingerprint:fp in
      Checkpoint.save_stage t ~stage:"load" ~counters:[] 1;
      Checkpoint.save_stage t ~stage:"mergeability" ~counters:[] 2;
      (* corrupt the first payload: it and every later stage drop *)
      let oc = open_out (Filename.concat dir "load.bin") in
      output_string oc "garbage";
      close_out oc;
      (match Checkpoint.load_for_resume ~dir ~fingerprint:fp with
      | Ok t2 ->
        check Alcotest.(list string) "torn prefix drops everything" []
          (Checkpoint.completed_stages t2)
      | Error _ -> Alcotest.fail "a torn payload degrades, it does not error");
      (* corrupt only the second: the valid prefix survives *)
      let t3 = Checkpoint.create ~dir ~fingerprint:fp in
      Checkpoint.save_stage t3 ~stage:"load" ~counters:[] 1;
      Checkpoint.save_stage t3 ~stage:"mergeability" ~counters:[] 2;
      let oc = open_out (Filename.concat dir "mergeability.bin") in
      output_string oc "garbage";
      close_out oc;
      match Checkpoint.load_for_resume ~dir ~fingerprint:fp with
      | Ok t4 ->
        check Alcotest.(list string) "valid prefix survives" [ "load" ]
          (Checkpoint.completed_stages t4)
      | Error _ -> Alcotest.fail "valid prefix must load")

let test_checkpoint_missing_and_recreate () =
  with_tmp_dir (fun dir ->
      (match Checkpoint.load_for_resume ~dir ~fingerprint:"fp" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "missing checkpoint must be an error");
      let t = Checkpoint.create ~dir ~fingerprint:"fp" in
      Checkpoint.save_stage t ~stage:"load" ~counters:[] 1;
      (* create wipes what a previous run left behind *)
      let t2 = Checkpoint.create ~dir ~fingerprint:"fp" in
      check Alcotest.(list string) "recreate starts empty" []
        (Checkpoint.completed_stages t2))

(* ------------------------------------------------------------------ *)
(* Metrics counter snapshot/restore (the resume contract)              *)

let test_counters_roundtrip () =
  Metrics.reset ();
  Metrics.incr ~by:3 "t.alpha";
  Metrics.incr "t.beta";
  let snap = Metrics.counters () in
  check Alcotest.bool "snapshot holds alpha" true (List.mem ("t.alpha", 3) snap);
  check Alcotest.bool "snapshot holds beta" true (List.mem ("t.beta", 1) snap);
  Metrics.reset ();
  check Alcotest.int "reset clears" 0 (Metrics.get_counter "t.alpha");
  Metrics.restore_counters snap;
  check Alcotest.int "restored alpha" 3 (Metrics.get_counter "t.alpha");
  check Alcotest.int "restored beta" 1 (Metrics.get_counter "t.beta");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mm_govern"
    [
      ( "tokens",
        [
          tc "never" test_never;
          tc "deadline" test_deadline;
          tc "cancel" test_cancel;
          tc "sub tree" test_sub_tree;
          tc "reason codes" test_reason_codes;
          tc "ambient checkpoint" test_ambient_checkpoint;
          tc "outcomes" test_outcomes;
          tc "memory watermark" test_memory_watermark;
        ] );
      ( "retry",
        [
          tc "backoff values" test_backoff_values;
          tc "recovers" test_with_retry_recovers;
          tc "exhausts" test_with_retry_exhausts;
          tc "non-transient" test_with_retry_non_transient;
          tc "cancelled" test_with_retry_cancelled;
          tc "custom metric" test_with_retry_custom_metric;
        ] );
      ( "pool",
        [
          tc "done outcomes" test_pool_done;
          tc "crash outcome with backtrace" test_pool_crash_outcome;
          tc "map re-raises worker crash" test_pool_map_reraises_with_backtrace;
          tc "pre-cancelled batch drains" test_pool_precancelled_drains;
          tc "task budget" test_pool_task_budget;
          tc "mid-batch cancel drains tail" test_pool_midbatch_cancel;
        ] );
      ( "chaos",
        [
          tc "inactive" test_chaos_inactive;
          tc "nth occurrence raise" test_chaos_nth_raise;
          tc "every occurrence" test_chaos_every_occurrence;
          tc "reconfigure resets" test_chaos_reconfigure_resets;
          tc "delay" test_chaos_delay;
          tc "kill parses" test_chaos_kill_parses;
          tc "malformed specs" test_chaos_malformed;
          tc "scenario helpers" test_chaos_scenarios_wellformed;
        ] );
      ( "checkpoint",
        [
          tc "roundtrip" test_checkpoint_roundtrip;
          tc "fingerprint guard" test_checkpoint_fingerprint_guard;
          tc "torn payload" test_checkpoint_torn_payload;
          tc "missing and recreate" test_checkpoint_missing_and_recreate;
        ] );
      "metrics", [ tc "counter snapshot/restore" test_counters_roundtrip ];
    ]
