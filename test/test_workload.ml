(* Tests for Mm_workload: generator determinism, structural soundness
   of generated designs, mode-suite properties and preset consistency. *)
module Design = Mm_netlist.Design
module Stats = Mm_netlist.Stats
module Mode = Mm_sdc.Mode
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes
module Presets = Mm_workload.Presets
module Pc = Mm_workload.Paper_circuit

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let small_params =
  {
    Gen_design.default_params with
    Gen_design.seed = 5;
    regs_per_domain = 24;
    stages = 3;
    combo_depth = 2;
  }

let gen_cases =
  [
    tc "deterministic for equal seeds" (fun () ->
        let d1, _ = Gen_design.generate small_params in
        let d2, _ = Gen_design.generate small_params in
        check Alcotest.string "same netlist"
          (Mm_netlist.Netlist_io.to_string d1)
          (Mm_netlist.Netlist_io.to_string d2));
    tc "different seeds differ" (fun () ->
        let d1, _ = Gen_design.generate small_params in
        let d2, _ = Gen_design.generate { small_params with Gen_design.seed = 6 } in
        check Alcotest.bool "differ" true
          (Mm_netlist.Netlist_io.to_string d1 <> Mm_netlist.Netlist_io.to_string d2));
    tc "register count matches parameters" (fun () ->
        let d, info = Gen_design.generate small_params in
        let per_stage = 24 / 3 in
        check Alcotest.int "regs" (2 * 3 * per_stage)
          (List.length (Design.registers d));
        check Alcotest.int "domains" 2 (List.length info.Gen_design.domains));
    tc "no combinational loops" (fun () ->
        let d, _ = Gen_design.generate small_params in
        let mode =
          (Mm_sdc.Resolve.mode_of_string d ~name:"empty"
             "create_clock -name c -period 1 [get_ports clk_0]").Mm_sdc.Resolve.mode
        in
        let g = Mm_timing.Graph.build d mode in
        check Alcotest.(list int) "no broken arcs" []
          (Mm_timing.Graph.broken_arcs g));
    tc "scan chain is fully connected" (fun () ->
        let d, info = Gen_design.generate small_params in
        (* Every flop's SI and SE must be connected. *)
        List.iter
          (fun dm ->
            List.iter
              (fun r ->
                check Alcotest.bool "SI wired" true
                  (Design.pin_net d (Design.pin_of_name_exn d (r ^ "/SI")) <> None);
                check Alcotest.bool "SE wired" true
                  (Design.pin_net d (Design.pin_of_name_exn d (r ^ "/SE")) <> None))
              dm.Gen_design.dom_regs)
          info.Gen_design.domains);
    tc "clock mux present for muxed domains" (fun () ->
        let d, info = Gen_design.generate small_params in
        let muxed =
          List.filter (fun dm -> dm.Gen_design.dom_mux <> None) info.Gen_design.domains
        in
        check Alcotest.int "one mux" 1 (List.length muxed);
        List.iter
          (fun dm ->
            match dm.Gen_design.dom_mux with
            | Some m -> check Alcotest.bool "exists" true (Design.find_inst d m <> None)
            | None -> ())
          muxed);
    tc "approx_cells within 2x of actual" (fun () ->
        let d, _ = Gen_design.generate small_params in
        let approx = Gen_design.approx_cells small_params in
        let actual = Design.n_insts d in
        check Alcotest.bool "close" true
          (approx <= 2 * actual && actual <= 2 * approx));
    tc "no scan variant omits scan ports" (fun () ->
        let d, info =
          Gen_design.generate { small_params with Gen_design.with_scan = false }
        in
        check Alcotest.bool "no scan clk" true (info.Gen_design.scan_clk_port = None);
        check Alcotest.bool "port absent" true (Design.find_port d "scan_clk" = None));
  ]

let suite =
  { Gen_modes.sp_seed = 9; families = [ 3; 2 ]; base_period = 2.0; scan_family = true }

let modes_cases =
  [
    tc "mode count and names" (fun () ->
        let d, info = Gen_design.generate small_params in
        let modes = Gen_modes.generate d info suite in
        check Alcotest.int "five modes" 5 (List.length modes);
        check Alcotest.(list string) "names"
          [ "m0_0"; "m0_1"; "m0_2"; "m1_0"; "m1_1" ]
          (List.map (fun (m : Mode.t) -> m.Mode.mode_name) modes));
    tc "scan family uses the scan clock" (fun () ->
        let d, info = Gen_design.generate small_params in
        let modes = Gen_modes.generate d info suite in
        let scan_mode = List.nth modes 3 in
        check Alcotest.(list string) "scan clock" [ "scan_shift" ]
          (Mode.clock_names scan_mode));
    tc "functional modes clock every domain" (fun () ->
        let d, info = Gen_design.generate small_params in
        let modes = Gen_modes.generate d info suite in
        check Alcotest.int "two domain clocks" 2
          (List.length (List.hd modes).Mode.clocks));
    tc "deterministic sdc text" (fun () ->
        let _d, info = Gen_design.generate small_params in
        check Alcotest.string "same"
          (Gen_modes.sdc_of_mode_spec info suite ~family:0 ~index:1)
          (Gen_modes.sdc_of_mode_spec info suite ~family:0 ~index:1));
    tc "families differ in load value" (fun () ->
        let _d, info = Gen_design.generate small_params in
        let s0 = Gen_modes.sdc_of_mode_spec info suite ~family:0 ~index:0 in
        let s1 = Gen_modes.sdc_of_mode_spec info suite ~family:1 ~index:0 in
        check Alcotest.bool "family 0 load" true
          (String.length s0 > 0
          && Str_probe.contains s0 "set_load 0.01 "
          && Str_probe.contains s1 "set_load 0.015 "));
  ]

let preset_cases =
  [
    tc "tiny preset builds with resolvable modes" (fun () ->
        let design, _info, modes = Presets.build Presets.tiny in
        check Alcotest.bool "cells" true (Design.n_insts design > 50);
        check Alcotest.int "four modes" 4 (List.length modes));
    tc "preset mode counts equal the paper's Table 5" (fun () ->
        List.iter2
          (fun p expected ->
            check Alcotest.int
              (Printf.sprintf "modes of %s" p.Presets.pr_name)
              expected
              (List.fold_left ( + ) 0 p.Presets.suite.Gen_modes.families))
          Presets.all [ 95; 3; 12; 3; 5; 3 ]);
    tc "preset family counts equal the paper's merged counts" (fun () ->
        List.iter
          (fun p ->
            check Alcotest.int
              (Printf.sprintf "families of %s" p.Presets.pr_name)
              p.Presets.paper_merged
              (List.length p.Presets.suite.Gen_modes.families))
          Presets.all);
  ]

let paper_circuit_cases =
  [
    tc "figure 1 inventory" (fun () ->
        let d = Pc.build () in
        let s = Stats.of_design d in
        check Alcotest.int "six registers" 6 s.Stats.registers;
        check Alcotest.bool "mux present" true (Design.find_inst d "mux1" <> None));
    tc "all constraint sets resolve" (fun () ->
        let d = Pc.build () in
        ignore (Pc.constraint_set1 d);
        ignore (Pc.constraint_set2 d);
        ignore (Pc.constraint_set3 d);
        ignore (Pc.constraint_set4 d);
        ignore (Pc.constraint_set5 d);
        ignore (Pc.constraint_set6 d));
    tc "figure 1 has the paper's three data paths" (fun () ->
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let ctx = Mm_timing.Context.create d m in
        let fwd =
          Mm_core.Relation_prop.forward_cone ctx [ Design.pin_of_name_exn d "rA/Q" ]
        in
        check Alcotest.bool "path i" true fwd.(Design.pin_of_name_exn d "rX/D");
        check Alcotest.bool "path ii" true fwd.(Design.pin_of_name_exn d "rY/D"));
  ]

let () =
  Alcotest.run "mm_workload"
    [
      "gen_design", gen_cases;
      "gen_modes", modes_cases;
      "presets", preset_cases;
      "paper_circuit", paper_circuit_cases;
    ]
