(* Obs tracing/metrics: span capture and nesting, registry semantics,
   exporter output, and the span/metric names the pipeline emits —
   those names are a stable contract (DESIGN.md section 9), so a rename
   must fail here. *)

module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pc = Mm_workload.Paper_circuit
module Merge_flow = Mm_core.Merge_flow
module Sta = Mm_timing.Sta

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let fresh () =
  Obs.reset ();
  Metrics.reset ();
  Obs.set_enabled true

let span_names () = List.map (fun s -> s.Obs.sp_name) (Obs.spans ())

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let span_cases =
  [
    tc "disabled records nothing" (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        let r = Obs.with_span "off" (fun () -> 41 + 1) in
        check Alcotest.int "result" 42 r;
        check Alcotest.int "no spans" 0 (List.length (Obs.spans ())));
    tc "nesting and order" (fun () ->
        fresh ();
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner1" (fun () -> ());
            Obs.with_span "inner2" (fun () -> ()));
        Obs.set_enabled false;
        check
          (Alcotest.list Alcotest.string)
          "start order"
          [ "outer"; "inner1"; "inner2" ]
          (span_names ());
        let by_name n =
          List.find (fun s -> s.Obs.sp_name = n) (Obs.spans ())
        in
        let outer = by_name "outer" in
        let inner1 = by_name "inner1" and inner2 = by_name "inner2" in
        check Alcotest.int "outer is a root" (-1) outer.Obs.sp_parent;
        check Alcotest.int "outer depth" 0 outer.Obs.sp_depth;
        check Alcotest.int "inner1 parent" outer.Obs.sp_id inner1.Obs.sp_parent;
        check Alcotest.int "inner2 parent" outer.Obs.sp_id inner2.Obs.sp_parent;
        check Alcotest.int "inner depth" 1 inner1.Obs.sp_depth;
        check Alcotest.bool "inner within outer" true
          (inner1.Obs.sp_start_ns >= outer.Obs.sp_start_ns
          && Int64.add inner2.Obs.sp_start_ns inner2.Obs.sp_dur_ns
             <= Int64.add outer.Obs.sp_start_ns outer.Obs.sp_dur_ns));
    tc "attrs preserved" (fun () ->
        fresh ();
        Obs.with_span ~attrs:[ "mode", "func" ] "s" (fun () -> ());
        Obs.set_enabled false;
        let s = List.hd (Obs.spans ()) in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "attrs" [ "mode", "func" ] s.Obs.sp_attrs);
    tc "span recorded on exception" (fun () ->
        fresh ();
        (try Obs.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        Obs.set_enabled false;
        check
          (Alcotest.list Alcotest.string)
          "recorded" [ "boom" ] (span_names ()));
    tc "timed measures even when disabled" (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        let r, dt = Obs.timed "t" (fun () -> 7) in
        check Alcotest.int "result" 7 r;
        check Alcotest.bool "non-negative duration" true (dt >= 0.);
        check Alcotest.int "no span when disabled" 0
          (List.length (Obs.spans ())));
    tc "span stacks are per-domain" (fun () ->
        (* The open-span stack lives in domain-local storage: a span
           recorded on a spawned domain roots its own tree there and
           never attaches to (or corrupts) the caller's open span. *)
        fresh ();
        Obs.with_span "caller" (fun () ->
            let d =
              Domain.spawn (fun () ->
                  Obs.with_span "worker" (fun () ->
                      Obs.with_span "worker.child" (fun () -> ())))
            in
            Domain.join d;
            Obs.with_span "caller.child" (fun () -> ()));
        Obs.set_enabled false;
        let by_name n = List.find (fun s -> s.Obs.sp_name = n) (Obs.spans ()) in
        let caller = by_name "caller" and worker = by_name "worker" in
        check Alcotest.int "worker roots its own domain" (-1)
          worker.Obs.sp_parent;
        check Alcotest.int "worker child under worker" worker.Obs.sp_id
          (by_name "worker.child").Obs.sp_parent;
        check Alcotest.int "caller nesting unaffected" caller.Obs.sp_id
          (by_name "caller.child").Obs.sp_parent;
        check Alcotest.int "caller still a root" (-1) caller.Obs.sp_parent);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let metrics_cases =
  [
    tc "counter accumulates" (fun () ->
        Metrics.reset ();
        Metrics.incr "c";
        Metrics.incr ~by:4 "c";
        check Alcotest.int "value" 5 (Metrics.get_counter "c");
        check Alcotest.int "absent counter is 0" 0 (Metrics.get_counter "nope"));
    tc "gauge overwrites" (fun () ->
        Metrics.reset ();
        Metrics.set "g" 1.5;
        Metrics.set "g" 2.5;
        (match Metrics.get "g" with
        | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "gauge" 2.5 v
        | _ -> Alcotest.fail "expected gauge"));
    tc "histogram summarises" (fun () ->
        Metrics.reset ();
        List.iter (Metrics.observe "h") [ 1.; 2.; 6. ];
        match Metrics.get "h" with
        | Some (Metrics.Histogram h) ->
          check Alcotest.int "count" 3 h.Metrics.h_count;
          check (Alcotest.float 1e-9) "sum" 9. h.Metrics.h_sum;
          check (Alcotest.float 1e-9) "min" 1. h.Metrics.h_min;
          check (Alcotest.float 1e-9) "max" 6. h.Metrics.h_max
        | _ -> Alcotest.fail "expected histogram");
    tc "snapshot is name-sorted" (fun () ->
        Metrics.reset ();
        Metrics.incr "b.two";
        Metrics.incr "a.one";
        check
          (Alcotest.list Alcotest.string)
          "order" [ "a.one"; "b.two" ]
          (List.map (fun i -> i.Metrics.name) (Metrics.snapshot ())));
    tc "json escaping and floats" (fun () ->
        check Alcotest.string "escape" {|a\"b\\c|} (Metrics.json_escape {|a"b\c|});
        check Alcotest.string "nan is 0" "0" (Metrics.json_float Float.nan);
        check Alcotest.string "inf is 0" "0" (Metrics.json_float Float.infinity));
  ]

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let exporter_cases =
  [
    tc "profile tree" (fun () ->
        fresh ();
        Obs.with_span "parent" (fun () ->
            Obs.with_span "child" (fun () -> ());
            Obs.with_span "child" (fun () -> ()));
        Obs.set_enabled false;
        let out = Obs.profile_tree () in
        check Alcotest.bool "header" true (contains ~needle:"calls" out);
        check Alcotest.bool "parent row" true (contains ~needle:"parent" out);
        (* Two calls of the same child aggregate into one row. *)
        check Alcotest.bool "child aggregated" true
          (contains ~needle:"  child" out && contains ~needle:" 2 " out));
    tc "trace event json" (fun () ->
        fresh ();
        Obs.with_span ~attrs:[ "k", "v" ] "ev" (fun () -> ());
        Obs.set_enabled false;
        let out = Obs.trace_event_json () in
        check Alcotest.bool "traceEvents array" true
          (contains ~needle:{|"traceEvents":[|} out);
        check Alcotest.bool "complete-event phase" true
          (contains ~needle:{|"ph":"X"|} out);
        check Alcotest.bool "named" true (contains ~needle:{|"name":"ev"|} out);
        check Alcotest.bool "args carry attrs" true
          (contains ~needle:{|"k":"v"|} out);
        check Alcotest.bool "display unit" true
          (contains ~needle:{|"displayTimeUnit"|} out));
    tc "metrics json" (fun () ->
        fresh ();
        Metrics.incr ~by:3 "x.count";
        Obs.with_span "sp" (fun () -> ());
        Obs.set_enabled false;
        let out = Obs.metrics_json () in
        check Alcotest.bool "metrics section" true
          (contains ~needle:{|"x.count":3|} out);
        check Alcotest.bool "span summary" true
          (contains ~needle:{|"sp":{"calls":1|} out));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline integration: the names the merge flow and STA emit          *)

let integration_cases =
  [
    tc "merge flow emits the documented spans" (fun () ->
        fresh ();
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let r = Merge_flow.run [ a; b ] in
        Obs.set_enabled false;
        check Alcotest.int "merged to one" 1 r.Merge_flow.n_merged;
        let names = span_names () in
        List.iter
          (fun n ->
            check Alcotest.bool n true (List.mem n names))
          [
            "merge.flow"; "merge.mergeability"; "merge.clique_sweep";
            "merge.group"; "merge.prelim"; "merge.refine"; "merge.equiv";
            "compare.pass1"; "compare.pass2"; "compare.pass3";
          ];
        check Alcotest.int "one clique" 1 (Metrics.get_counter "merge.cliques");
        check Alcotest.bool "pairs checked" true
          (Metrics.get_counter "merge.pairs_checked" >= 1);
        (* merge.flow must be the root enclosing everything else. *)
        let flow =
          List.find (fun s -> s.Obs.sp_name = "merge.flow") (Obs.spans ())
        in
        check Alcotest.int "flow at depth 0" 0 flow.Obs.sp_depth;
        check Alcotest.bool "runtime from the same clock" true
          (r.Merge_flow.runtime_s > 0.));
    tc "sta emits propagate/check spans and counters" (fun () ->
        fresh ();
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let rep = Sta.analyze d m in
        Obs.set_enabled false;
        let names = span_names () in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "sta.analyze"; "sta.propagate"; "sta.check" ];
        check Alcotest.bool "tags counted" true
          (Metrics.get_counter "sta.tags_propagated" > 0);
        check Alcotest.bool "endpoints counted" true
          (Metrics.get_counter "sta.endpoints_checked" > 0);
        check Alcotest.bool "rep_runtime non-negative" true
          (rep.Sta.rep_runtime >= 0.));
    tc "parallel pipeline metric names are stable" (fun () ->
        (* merge.jobs (gauge) and pool.tasks_executed (counter) are part
           of the stable metric-name contract, like the span names. *)
        fresh ();
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        ignore (Merge_flow.run ~jobs:2 [ a; b ]);
        Obs.set_enabled false;
        (match Metrics.get "merge.jobs" with
        | Some (Metrics.Gauge v) ->
          check (Alcotest.float 1e-9) "merge.jobs records the pool size" 2.0 v
        | _ -> Alcotest.fail "merge.jobs gauge missing");
        check Alcotest.bool "pool.tasks_executed counted" true
          (Metrics.get_counter "pool.tasks_executed" > 0));
  ]

let () =
  Alcotest.run "mm_obs"
    [
      "span", span_cases;
      "metrics", metrics_cases;
      "exporter", exporter_cases;
      "integration", integration_cases;
    ]
