(* Obs tracing/metrics: span capture and nesting, registry semantics,
   exporter output, and the span/metric names the pipeline emits —
   those names are a stable contract (DESIGN.md section 9), so a rename
   must fail here. *)

module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pc = Mm_workload.Paper_circuit
module Merge_flow = Mm_core.Merge_flow
module Sta = Mm_timing.Sta

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let fresh () =
  Obs.reset ();
  Metrics.reset ();
  Obs.set_enabled true

let span_names () = List.map (fun s -> s.Obs.sp_name) (Obs.spans ())

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let span_cases =
  [
    tc "disabled records nothing" (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        let r = Obs.with_span "off" (fun () -> 41 + 1) in
        check Alcotest.int "result" 42 r;
        check Alcotest.int "no spans" 0 (List.length (Obs.spans ())));
    tc "nesting and order" (fun () ->
        fresh ();
        Obs.with_span "outer" (fun () ->
            Obs.with_span "inner1" (fun () -> ());
            Obs.with_span "inner2" (fun () -> ()));
        Obs.set_enabled false;
        check
          (Alcotest.list Alcotest.string)
          "start order"
          [ "outer"; "inner1"; "inner2" ]
          (span_names ());
        let by_name n =
          List.find (fun s -> s.Obs.sp_name = n) (Obs.spans ())
        in
        let outer = by_name "outer" in
        let inner1 = by_name "inner1" and inner2 = by_name "inner2" in
        check Alcotest.int "outer is a root" (-1) outer.Obs.sp_parent;
        check Alcotest.int "outer depth" 0 outer.Obs.sp_depth;
        check Alcotest.int "inner1 parent" outer.Obs.sp_id inner1.Obs.sp_parent;
        check Alcotest.int "inner2 parent" outer.Obs.sp_id inner2.Obs.sp_parent;
        check Alcotest.int "inner depth" 1 inner1.Obs.sp_depth;
        check Alcotest.bool "inner within outer" true
          (inner1.Obs.sp_start_ns >= outer.Obs.sp_start_ns
          && Int64.add inner2.Obs.sp_start_ns inner2.Obs.sp_dur_ns
             <= Int64.add outer.Obs.sp_start_ns outer.Obs.sp_dur_ns));
    tc "attrs preserved" (fun () ->
        fresh ();
        Obs.with_span ~attrs:[ "mode", "func" ] "s" (fun () -> ());
        Obs.set_enabled false;
        let s = List.hd (Obs.spans ()) in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "attrs" [ "mode", "func" ] s.Obs.sp_attrs);
    tc "span recorded on exception" (fun () ->
        fresh ();
        (try Obs.with_span "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        Obs.set_enabled false;
        check
          (Alcotest.list Alcotest.string)
          "recorded" [ "boom" ] (span_names ()));
    tc "timed measures even when disabled" (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        let r, dt = Obs.timed "t" (fun () -> 7) in
        check Alcotest.int "result" 7 r;
        check Alcotest.bool "non-negative duration" true (dt >= 0.);
        check Alcotest.int "no span when disabled" 0
          (List.length (Obs.spans ())));
    tc "span stacks are per-domain" (fun () ->
        (* The open-span stack lives in domain-local storage: a span
           recorded on a spawned domain roots its own tree there and
           never attaches to (or corrupts) the caller's open span. *)
        fresh ();
        Obs.with_span "caller" (fun () ->
            let d =
              Domain.spawn (fun () ->
                  Obs.with_span "worker" (fun () ->
                      Obs.with_span "worker.child" (fun () -> ())))
            in
            Domain.join d;
            Obs.with_span "caller.child" (fun () -> ()));
        Obs.set_enabled false;
        let by_name n = List.find (fun s -> s.Obs.sp_name = n) (Obs.spans ()) in
        let caller = by_name "caller" and worker = by_name "worker" in
        check Alcotest.int "worker roots its own domain" (-1)
          worker.Obs.sp_parent;
        check Alcotest.int "worker child under worker" worker.Obs.sp_id
          (by_name "worker.child").Obs.sp_parent;
        check Alcotest.int "caller nesting unaffected" caller.Obs.sp_id
          (by_name "caller.child").Obs.sp_parent;
        check Alcotest.int "caller still a root" (-1) caller.Obs.sp_parent);
  ]

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)

let metrics_cases =
  [
    tc "counter accumulates" (fun () ->
        Metrics.reset ();
        Metrics.incr "c";
        Metrics.incr ~by:4 "c";
        check Alcotest.int "value" 5 (Metrics.get_counter "c");
        check Alcotest.int "absent counter is 0" 0 (Metrics.get_counter "nope"));
    tc "gauge overwrites" (fun () ->
        Metrics.reset ();
        Metrics.set "g" 1.5;
        Metrics.set "g" 2.5;
        (match Metrics.get "g" with
        | Some (Metrics.Gauge v) -> check (Alcotest.float 1e-9) "gauge" 2.5 v
        | _ -> Alcotest.fail "expected gauge"));
    tc "histogram summarises" (fun () ->
        Metrics.reset ();
        List.iter (Metrics.observe "h") [ 1.; 2.; 6. ];
        match Metrics.get "h" with
        | Some (Metrics.Histogram h) ->
          check Alcotest.int "count" 3 h.Metrics.h_count;
          check (Alcotest.float 1e-9) "sum" 9. h.Metrics.h_sum;
          check (Alcotest.float 1e-9) "min" 1. h.Metrics.h_min;
          check (Alcotest.float 1e-9) "max" 6. h.Metrics.h_max
        | _ -> Alcotest.fail "expected histogram");
    tc "snapshot is name-sorted" (fun () ->
        Metrics.reset ();
        Metrics.incr "b.two";
        Metrics.incr "a.one";
        check
          (Alcotest.list Alcotest.string)
          "order" [ "a.one"; "b.two" ]
          (List.map (fun i -> i.Metrics.name) (Metrics.snapshot ())));
    tc "json escaping and floats" (fun () ->
        check Alcotest.string "escape" {|a\"b\\c|} (Metrics.json_escape {|a"b\c|});
        check Alcotest.string "nan is 0" "0" (Metrics.json_float Float.nan);
        check Alcotest.string "inf is 0" "0" (Metrics.json_float Float.infinity));
    tc "histogram reservoir caps retention, not the aggregates" (fun () ->
        Metrics.reset ();
        let n = (3 * Metrics.max_samples) + 7 in
        for i = 1 to n do
          Metrics.observe "r" (float_of_int i)
        done;
        match Metrics.get "r" with
        | Some (Metrics.Histogram h) ->
          (* count/sum/min/max stay exact past the cap... *)
          check Alcotest.int "count exact" n h.Metrics.h_count;
          check (Alcotest.float 1e-3) "sum exact"
            (float_of_int (n * (n + 1) / 2))
            h.Metrics.h_sum;
          check (Alcotest.float 1e-9) "min exact" 1. h.Metrics.h_min;
          check (Alcotest.float 1e-9) "max exact" (float_of_int n)
            h.Metrics.h_max;
          (* ...while the sample reservoir is bounded and every
             retained sample is a real observation. *)
          check Alcotest.int "reservoir at capacity" Metrics.max_samples
            (List.length h.Metrics.h_samples);
          check Alcotest.bool "retained values are observations" true
            (List.for_all
               (fun s -> s >= 1. && s <= float_of_int n && Float.is_integer s)
               h.Metrics.h_samples);
          (* Algorithm R keeps the reservoir an unbiased sample, so the
             median estimate must land well inside the range (a
             keep-first-k policy would report ~max_samples/2). *)
          let p50 = Metrics.percentile h 0.5 in
          check Alcotest.bool "p50 is an estimate near the middle" true
            (p50 > float_of_int n *. 0.25 && p50 < float_of_int n *. 0.75)
        | _ -> Alcotest.fail "expected histogram");
    tc "histogram under the cap retains everything" (fun () ->
        Metrics.reset ();
        for i = 1 to 100 do
          Metrics.observe "small" (float_of_int i)
        done;
        match Metrics.get "small" with
        | Some (Metrics.Histogram h) ->
          check Alcotest.int "all samples retained" 100
            (List.length h.Metrics.h_samples);
          (* Below the cap percentiles are exact nearest-rank. *)
          check (Alcotest.float 1e-9) "exact p50" 50.
            (Metrics.percentile h 0.5);
          check (Alcotest.float 1e-9) "exact p99" 99.
            (Metrics.percentile h 0.99)
        | _ -> Alcotest.fail "expected histogram");
  ]

(* ------------------------------------------------------------------ *)
(* GC telemetry and counter samples                                    *)

let gc_cases =
  [
    tc "spans carry GC deltas only when enabled" (fun () ->
        fresh ();
        Obs.with_span "plain" (fun () -> ());
        Obs.set_gc_enabled true;
        Obs.with_span "traced" (fun () ->
            (* Allocate enough to guarantee minor-heap traffic. *)
            ignore (Sys.opaque_identity (Array.init 4096 string_of_int)));
        Obs.set_gc_enabled false;
        Obs.set_enabled false;
        let by_name n = List.find (fun s -> s.Obs.sp_name = n) (Obs.spans ()) in
        check Alcotest.bool "disabled span has no delta" true
          ((by_name "plain").Obs.sp_gc = None);
        match (by_name "traced").Obs.sp_gc with
        | None -> Alcotest.fail "enabled span lost its GC delta"
        | Some g ->
          check Alcotest.bool "allocated minor words" true
            (g.Obs.gd_minor_words > 0.);
          check Alcotest.bool "deltas non-negative" true
            (g.Obs.gd_major_words >= 0.
            && g.Obs.gd_promoted_words >= 0.
            && g.Obs.gd_minor_collections >= 0
            && g.Obs.gd_major_collections >= 0);
          check Alcotest.bool "watermark is a live heap size" true
            (g.Obs.gd_top_heap_words > 0));
    tc "gc_totals exposes the seven gc.* gauges" (fun () ->
        let totals = Obs.gc_totals () in
        check
          (Alcotest.list Alcotest.string)
          "names"
          [
            "gc.minor_words"; "gc.promoted_words"; "gc.major_words";
            "gc.minor_collections"; "gc.major_collections"; "gc.heap_words";
            "gc.top_heap_words";
          ]
          (List.map fst totals);
        check Alcotest.bool "process totals are positive" true
          (List.assoc "gc.minor_words" totals > 0.
          && List.assoc "gc.heap_words" totals > 0.));
    tc "record_gc_metrics lands in the registry" (fun () ->
        Metrics.reset ();
        Obs.record_gc_metrics ();
        match Metrics.get "gc.minor_words" with
        | Some (Metrics.Gauge v) ->
          check Alcotest.bool "gauge positive" true (v > 0.)
        | _ -> Alcotest.fail "gc.minor_words gauge missing");
    tc "samples are gated and time-ordered" (fun () ->
        Obs.reset ();
        Obs.set_enabled false;
        Obs.sample "track" 1.;
        check Alcotest.int "disabled sample dropped" 0
          (List.length (Obs.samples ()));
        Obs.set_enabled true;
        Obs.sample "track" 1.;
        Obs.sample "track" 2.;
        Obs.set_enabled false;
        match Obs.samples () with
        | [ (n1, t1, v1); (n2, t2, v2) ] ->
          check Alcotest.string "name" "track" n1;
          check Alcotest.string "name" "track" n2;
          check (Alcotest.float 1e-9) "first value" 1. v1;
          check (Alcotest.float 1e-9) "second value" 2. v2;
          check Alcotest.bool "time order" true (Int64.compare t1 t2 <= 0)
        | ss -> Alcotest.failf "expected two samples, got %d" (List.length ss));
    tc "GC telemetry emits a gc.heap_words track at span close" (fun () ->
        fresh ();
        Obs.set_gc_enabled true;
        Obs.with_span "s" (fun () -> ());
        Obs.set_gc_enabled false;
        Obs.set_enabled false;
        check Alcotest.bool "heap track sampled" true
          (List.exists
             (fun (n, _, v) -> n = "gc.heap_words" && v > 0.)
             (Obs.samples ())));
  ]

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let exporter_cases =
  [
    tc "profile tree" (fun () ->
        fresh ();
        Obs.with_span "parent" (fun () ->
            Obs.with_span "child" (fun () -> ());
            Obs.with_span "child" (fun () -> ()));
        Obs.set_enabled false;
        let out = Obs.profile_tree () in
        check Alcotest.bool "header" true (contains ~needle:"calls" out);
        check Alcotest.bool "parent row" true (contains ~needle:"parent" out);
        (* Two calls of the same child aggregate into one row. *)
        check Alcotest.bool "child aggregated" true
          (contains ~needle:"  child" out && contains ~needle:" 2 " out));
    tc "trace event json" (fun () ->
        fresh ();
        Obs.with_span ~attrs:[ "k", "v" ] "ev" (fun () -> ());
        Obs.set_enabled false;
        let out = Obs.trace_event_json () in
        check Alcotest.bool "traceEvents array" true
          (contains ~needle:{|"traceEvents":[|} out);
        check Alcotest.bool "complete-event phase" true
          (contains ~needle:{|"ph":"X"|} out);
        check Alcotest.bool "named" true (contains ~needle:{|"name":"ev"|} out);
        check Alcotest.bool "args carry attrs" true
          (contains ~needle:{|"k":"v"|} out);
        check Alcotest.bool "display unit" true
          (contains ~needle:{|"displayTimeUnit"|} out));
    tc "metrics json" (fun () ->
        fresh ();
        Metrics.incr ~by:3 "x.count";
        Obs.with_span "sp" (fun () -> ());
        Obs.set_enabled false;
        let out = Obs.metrics_json () in
        check Alcotest.bool "metrics section" true
          (contains ~needle:{|"x.count":3|} out);
        check Alcotest.bool "span summary" true
          (contains ~needle:{|"sp":{"calls":1|} out));
    tc "trace opens with process/thread metadata" (fun () ->
        fresh ();
        Obs.with_span "ev" (fun () -> ());
        Obs.set_enabled false;
        let out = Obs.trace_event_json () in
        check Alcotest.bool "metadata phase" true
          (contains ~needle:{|"ph":"M"|} out);
        check Alcotest.bool "process name" true
          (contains ~needle:{|"name":"process_name"|} out
          && contains ~needle:{|"name":"modemerge"|} out);
        check Alcotest.bool "thread name labels the driver domain" true
          (contains ~needle:{|"name":"thread_name"|} out
          && contains ~needle:"(driver)" out);
        (* Metadata must precede the first duration event so Perfetto
           applies the labels to every lane. *)
        let idx needle =
          let nl = String.length needle in
          let rec go i =
            if i + nl > String.length out then Alcotest.failf "missing %s" needle
            else if String.sub out i nl = needle then i
            else go (i + 1)
          in
          go 0
        in
        check Alcotest.bool "metadata first" true
          (idx {|"ph":"M"|} < idx {|"ph":"X"|}));
    tc "counter samples export as Perfetto counter events" (fun () ->
        fresh ();
        Obs.with_span "ev" (fun () -> Obs.sample "my.track" 3.5);
        Obs.set_enabled false;
        let out = Obs.trace_event_json () in
        check Alcotest.bool "counter phase" true
          (contains ~needle:{|"ph":"C"|} out);
        check Alcotest.bool "track named" true
          (contains ~needle:{|"name":"my.track"|} out);
        check Alcotest.bool "value in args" true
          (contains ~needle:{|"value":3.5|} out));
    tc "profile tree gains GC columns only with ~gc" (fun () ->
        fresh ();
        Obs.set_gc_enabled true;
        Obs.with_span "alloc" (fun () ->
            ignore (Sys.opaque_identity (List.init 2048 string_of_int)));
        Obs.set_gc_enabled false;
        Obs.set_enabled false;
        let plain = Obs.profile_tree () in
        let gc = Obs.profile_tree ~gc:true () in
        check Alcotest.bool "plain has no alloc column" false
          (contains ~needle:"alloc(Mw)" plain);
        check Alcotest.bool "gc adds alloc column" true
          (contains ~needle:"alloc(Mw)" gc);
        check Alcotest.bool "gc adds collection columns" true
          (contains ~needle:"minGC" gc && contains ~needle:"majGC" gc));
    tc "span_summaries aggregates by name" (fun () ->
        fresh ();
        Obs.with_span "b" (fun () -> Obs.with_span "a" (fun () -> ()));
        Obs.with_span "a" (fun () -> ());
        Obs.set_enabled false;
        match Obs.span_summaries () with
        | [ ("a", calls_a, total_a, self_a); ("b", calls_b, total_b, self_b) ]
          ->
          check Alcotest.int "a calls merged" 2 calls_a;
          check Alcotest.int "b calls" 1 calls_b;
          check Alcotest.bool "totals non-negative" true
            (total_a >= 0. && total_b >= 0.);
          check Alcotest.bool "self within total" true
            (self_a <= total_a +. 1e-9 && self_b <= total_b +. 1e-9)
        | ss ->
          Alcotest.failf "expected summaries [a; b], got %d rows"
            (List.length ss));
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline integration: the names the merge flow and STA emit          *)

let integration_cases =
  [
    tc "merge flow emits the documented spans" (fun () ->
        fresh ();
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let r = Merge_flow.run [ a; b ] in
        Obs.set_enabled false;
        check Alcotest.int "merged to one" 1 r.Merge_flow.n_merged;
        let names = span_names () in
        List.iter
          (fun n ->
            check Alcotest.bool n true (List.mem n names))
          [
            "merge.flow"; "merge.mergeability"; "merge.clique_sweep";
            "merge.group"; "merge.prelim"; "merge.refine"; "merge.equiv";
            "compare.pass1"; "compare.pass2"; "compare.pass3";
          ];
        check Alcotest.int "one clique" 1 (Metrics.get_counter "merge.cliques");
        check Alcotest.bool "pairs checked" true
          (Metrics.get_counter "merge.pairs_checked" >= 1);
        (* merge.flow must be the root enclosing everything else. *)
        let flow =
          List.find (fun s -> s.Obs.sp_name = "merge.flow") (Obs.spans ())
        in
        check Alcotest.int "flow at depth 0" 0 flow.Obs.sp_depth;
        check Alcotest.bool "runtime from the same clock" true
          (r.Merge_flow.runtime_s > 0.));
    tc "sta emits propagate/check spans and counters" (fun () ->
        fresh ();
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let rep = Sta.analyze d m in
        Obs.set_enabled false;
        let names = span_names () in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "sta.analyze"; "sta.propagate"; "sta.check" ];
        check Alcotest.bool "tags counted" true
          (Metrics.get_counter "sta.tags_propagated" > 0);
        check Alcotest.bool "endpoints counted" true
          (Metrics.get_counter "sta.endpoints_checked" > 0);
        check Alcotest.bool "rep_runtime non-negative" true
          (rep.Sta.rep_runtime >= 0.));
    tc "parallel pipeline metric names are stable" (fun () ->
        (* merge.jobs (gauge) and pool.tasks_executed (counter) are part
           of the stable metric-name contract, like the span names. *)
        fresh ();
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        ignore (Merge_flow.run ~jobs:2 [ a; b ]);
        Obs.set_enabled false;
        (match Metrics.get "merge.jobs" with
        | Some (Metrics.Gauge v) ->
          check (Alcotest.float 1e-9) "merge.jobs records the pool size" 2.0 v
        | _ -> Alcotest.fail "merge.jobs gauge missing");
        check Alcotest.bool "pool.tasks_executed counted" true
          (Metrics.get_counter "pool.tasks_executed" > 0));
    tc "pool telemetry names are stable at any jobs" (fun () ->
        (* pool.batches / pool.task_s / pool.queue_depth /
           pool.occupancy join the stable-name contract; the sequential
           and parallel paths must emit the identical set. *)
        let run jobs =
          Metrics.reset ();
          Obs.reset ();
          Obs.set_enabled true;
          Mm_util.Pool.with_pool ~jobs (fun p ->
              ignore (Mm_util.Pool.map p (fun x -> x * x) (List.init 8 Fun.id)));
          Obs.set_enabled false
        in
        List.iter
          (fun jobs ->
            run jobs;
            let where n = Printf.sprintf "%s at jobs=%d" n jobs in
            check Alcotest.int (where "pool.batches") 1
              (Metrics.get_counter "pool.batches");
            check Alcotest.int (where "pool.tasks_executed") 8
              (Metrics.get_counter "pool.tasks_executed");
            List.iter
              (fun n ->
                match Metrics.get n with
                | Some (Metrics.Histogram h) ->
                  check Alcotest.int (where n) 8 h.Metrics.h_count
                | _ -> Alcotest.failf "%s missing" (where n))
              [ "pool.task_s"; "pool.queue_depth" ];
            (match Metrics.get "pool.occupancy" with
            | Some (Metrics.Histogram h) ->
              check Alcotest.int (where "pool.occupancy") 1 h.Metrics.h_count;
              check Alcotest.bool "occupancy within [0,1]" true
                (h.Metrics.h_max <= 1.0 && h.Metrics.h_min >= 0.)
            | _ -> Alcotest.fail "pool.occupancy missing");
            (* The live-worker counter track is sampled up and down
               around every task. *)
            check Alcotest.bool (where "pool.active_workers track") true
              (List.exists
                 (fun (n, _, _) -> n = "pool.active_workers")
                 (Obs.samples ())))
          [ 1; 4 ];
        let report = Mm_util.Pool.utilization_report () in
        check Alcotest.bool "utilization report renders" true
          (contains ~needle:"occupancy" report
          && contains ~needle:"tasks" report);
        Metrics.reset ());
  ]

let () =
  Alcotest.run "mm_obs"
    [
      "span", span_cases;
      "metrics", metrics_cases;
      "gc", gc_cases;
      "exporter", exporter_cases;
      "integration", integration_cases;
    ]
