(* Unit and property tests for Mm_util. *)
module Glob = Mm_util.Glob
module Toler = Mm_util.Toler
module Prng = Mm_util.Prng
module Vec = Mm_util.Vec
module Tab = Mm_util.Tab
module Stat = Mm_util.Stat
module Pool = Mm_util.Pool
module Metrics = Mm_util.Metrics
module Runlog = Mm_util.Runlog

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Glob                                                                *)

let glob_cases =
  [
    tc "literal matches itself" (fun () ->
        check Alcotest.bool "eq" true (Glob.matches_string ~pattern:"rA/CP" "rA/CP"));
    tc "literal rejects others" (fun () ->
        check Alcotest.bool "neq" false (Glob.matches_string ~pattern:"rA/CP" "rA/CQ"));
    tc "star matches empty" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"r*" "r"));
    tc "star matches long suffix" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"r*" "r_0_1_2/Q"));
    tc "inner star" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"r*/D" "r_abc/D"));
    tc "inner star rejects wrong tail" (fun () ->
        check Alcotest.bool "m" false (Glob.matches_string ~pattern:"r*/D" "r_abc/Q"));
    tc "question matches one char" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"r?" "rA"));
    tc "question rejects two chars" (fun () ->
        check Alcotest.bool "m" false (Glob.matches_string ~pattern:"r?" "rAB"));
    tc "multiple stars" (fun () ->
        check Alcotest.bool "m" true
          (Glob.matches_string ~pattern:"*cfg*0*" "xx_cfg_10"));
    tc "star backtracking" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"*ab" "aab"));
    tc "empty pattern matches empty only" (fun () ->
        check Alcotest.bool "m" true (Glob.matches_string ~pattern:"" "");
        check Alcotest.bool "m" false (Glob.matches_string ~pattern:"" "x"));
    tc "is_literal" (fun () ->
        check Alcotest.bool "lit" true (Glob.is_literal (Glob.compile "abc"));
        check Alcotest.bool "not lit" false (Glob.is_literal (Glob.compile "a*c"));
        check Alcotest.bool "q not lit" false (Glob.is_literal (Glob.compile "a?c")));
    tc "literal accessor" (fun () ->
        check
          Alcotest.(option string)
          "some" (Some "abc")
          (Glob.literal (Glob.compile "abc"));
        check Alcotest.(option string) "none" None (Glob.literal (Glob.compile "a*")));
    tc "pattern accessor" (fun () ->
        check Alcotest.string "pat" "a*b" (Glob.pattern (Glob.compile "a*b")));
  ]

(* Reference matcher by exhaustive recursion, to cross-check the
   iterative implementation. *)
let rec ref_match p s ip is =
  if ip = String.length p then is = String.length s
  else
    match p.[ip] with
    | '*' ->
      let rec try_len k =
        k <= String.length s - is
        && (ref_match p s (ip + 1) (is + k) || try_len (k + 1))
      in
      try_len 0
    | '?' -> is < String.length s && ref_match p s (ip + 1) (is + 1)
    | c -> is < String.length s && s.[is] = c && ref_match p s (ip + 1) (is + 1)

let glob_props =
  let pat_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; '*'; '?'; '/' ]) (0 -- 8))
  in
  let str_gen =
    QCheck2.Gen.(string_size ~gen:(oneofl [ 'a'; 'b'; 'c'; '/' ]) (0 -- 10))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"glob agrees with reference matcher" ~count:2000
         QCheck2.Gen.(pair pat_gen str_gen)
         (fun (p, s) -> Glob.matches_string ~pattern:p s = ref_match p s 0 0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"star-only pattern matches everything" ~count:200
         str_gen (fun s -> Glob.matches_string ~pattern:"*" s));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"literal pattern matches only itself" ~count:500
         QCheck2.Gen.(pair str_gen str_gen)
         (fun (p, s) ->
           QCheck2.assume (not (String.exists (fun c -> c = '*' || c = '?') p));
           Glob.matches_string ~pattern:p s = String.equal p s));
  ]

(* ------------------------------------------------------------------ *)
(* Toler                                                               *)

let toler_cases =
  [
    tc "within relative tolerance" (fun () ->
        let t = Toler.make ~rel:0.05 ~abs:0. () in
        check Alcotest.bool "in" true (Toler.within t 1.0 1.04);
        check Alcotest.bool "out" false (Toler.within t 1.0 1.06));
    tc "within absolute tolerance" (fun () ->
        let t = Toler.make ~rel:0. ~abs:0.1 () in
        check Alcotest.bool "in" true (Toler.within t 0.0 0.09);
        check Alcotest.bool "out" false (Toler.within t 0.0 0.11));
    tc "paper latency example within default" (fun () ->
        check Alcotest.bool "1.0 vs 0.98" true (Toler.within Toler.default 1.0 0.98));
    tc "exact tolerance" (fun () ->
        check Alcotest.bool "same" true (Toler.within Toler.exact 2.0 2.0);
        check Alcotest.bool "diff" false (Toler.within Toler.exact 2.0 2.0000001));
    tc "within_opt" (fun () ->
        check Alcotest.bool "none none" true
          (Toler.within_opt Toler.default None None);
        check Alcotest.bool "some none" false
          (Toler.within_opt Toler.default (Some 1.) None);
        check Alcotest.bool "some some" true
          (Toler.within_opt Toler.default (Some 1.) (Some 1.)));
    tc "merge min and max" (fun () ->
        check (Alcotest.float 0.) "min" 0.98 (Toler.merge_min 1.0 0.98);
        check (Alcotest.float 0.) "max" 1.0 (Toler.merge_max 1.0 0.98));
  ]

let toler_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"within is symmetric" ~count:1000
         QCheck2.Gen.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
         (fun (a, b) ->
           Toler.within Toler.default a b = Toler.within Toler.default b a));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"within is reflexive" ~count:500
         QCheck2.Gen.(float_range (-1e6) 1e6)
         (fun a -> Toler.within Toler.default a a));
  ]

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let prng_cases =
  [
    tc "deterministic for equal seeds" (fun () ->
        let a = Prng.create 42 and b = Prng.create 42 in
        for _ = 1 to 100 do
          check Alcotest.int64 "same" (Prng.next a) (Prng.next b)
        done);
    tc "different seeds diverge" (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        check Alcotest.bool "differ" true (Prng.next a <> Prng.next b));
    tc "copy forks the stream" (fun () ->
        let a = Prng.create 7 in
        ignore (Prng.next a);
        let b = Prng.copy a in
        check Alcotest.int64 "forked" (Prng.next a) (Prng.next b));
    tc "range inclusive bounds" (fun () ->
        let rng = Prng.create 3 in
        for _ = 1 to 1000 do
          let v = Prng.range rng 5 9 in
          check Alcotest.bool "bounds" true (v >= 5 && v <= 9)
        done);
    tc "shuffle is a permutation" (fun () ->
        let rng = Prng.create 11 in
        let a = Array.init 50 Fun.id in
        Prng.shuffle rng a;
        let sorted = Array.copy a in
        Array.sort compare sorted;
        check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted);
  ]

let prng_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"int bound respected" ~count:1000
         QCheck2.Gen.(pair small_int (int_range 1 1000))
         (fun (seed, bound) ->
           let rng = Prng.create seed in
           let v = Prng.int rng bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"float bound respected" ~count:1000
         QCheck2.Gen.(pair small_int (float_range 0.001 100.))
         (fun (seed, bound) ->
           let rng = Prng.create seed in
           let v = Prng.float rng bound in
           v >= 0. && v < bound));
  ]

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)

let vec_cases =
  [
    tc "push returns stable indices" (fun () ->
        let v = Vec.create () in
        for i = 0 to 99 do
          check Alcotest.int "index" i (Vec.push v i)
        done;
        check Alcotest.int "len" 100 (Vec.length v));
    tc "get/set" (fun () ->
        let v = Vec.create () in
        ignore (Vec.push v "a");
        ignore (Vec.push v "b");
        Vec.set v 1 "c";
        check Alcotest.string "get" "c" (Vec.get v 1));
    tc "out of bounds raises" (fun () ->
        let v = Vec.create () in
        ignore (Vec.push v 1);
        Alcotest.check_raises "get" (Invalid_argument "Vec: index out of bounds")
          (fun () -> ignore (Vec.get v 1));
        Alcotest.check_raises "neg" (Invalid_argument "Vec: index out of bounds")
          (fun () -> ignore (Vec.get v (-1))));
    tc "to_list and fold" (fun () ->
        let v = Vec.create () in
        List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3 ];
        check Alcotest.(list int) "list" [ 1; 2; 3 ] (Vec.to_list v);
        check Alcotest.int "fold" 6 (Vec.fold ( + ) 0 v));
    tc "iteri order" (fun () ->
        let v = Vec.create () in
        List.iter (fun x -> ignore (Vec.push v x)) [ 10; 20 ];
        let acc = ref [] in
        Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
        check
          Alcotest.(list (pair int int))
          "order" [ (0, 10); (1, 20) ] (List.rev !acc));
    tc "exists and find_index" (fun () ->
        let v = Vec.create () in
        List.iter (fun x -> ignore (Vec.push v x)) [ 5; 6; 7 ];
        check Alcotest.bool "exists" true (Vec.exists (( = ) 6) v);
        check Alcotest.(option int) "find" (Some 2) (Vec.find_index (( = ) 7) v);
        check Alcotest.(option int) "none" None (Vec.find_index (( = ) 9) v));
  ]

(* ------------------------------------------------------------------ *)
(* Tab                                                                 *)

let tab_cases =
  [
    tc "renders golden table" (fun () ->
        let t = Tab.create ~aligns:[ Tab.Left; Tab.Right ] [ "k"; "value" ] in
        Tab.add_row t [ "a"; "1" ];
        Tab.add_row t [ "bb"; "22" ];
        let expected =
          "+----+-------+\n\
           | k  | value |\n\
           +----+-------+\n\
           | a  |     1 |\n\
           | bb |    22 |\n\
           +----+-------+\n"
        in
        check Alcotest.string "golden" expected (Tab.render t));
    tc "short rows padded" (fun () ->
        let t = Tab.create [ "a"; "b" ] in
        Tab.add_row t [ "x" ];
        check Alcotest.bool "renders" true (String.length (Tab.render t) > 0));
    tc "too many cells rejected" (fun () ->
        let t = Tab.create [ "a" ] in
        Alcotest.check_raises "raise"
          (Invalid_argument "Tab.add_row: too many cells") (fun () ->
            Tab.add_row t [ "x"; "y" ]));
    tc "title and separator" (fun () ->
        let t = Tab.create [ "a" ] in
        Tab.add_row t [ "1" ];
        Tab.add_sep t;
        Tab.add_row t [ "2" ];
        let out = Tab.render ~title:"T" t in
        check Alcotest.bool "has title" true (String.length out > 0);
        check Alcotest.bool "starts with T" true (out.[0] = 'T'));
  ]

(* ------------------------------------------------------------------ *)
(* Stat                                                                *)

let stat_cases =
  [
    tc "mean" (fun () ->
        check (Alcotest.float 1e-9) "mean" 2. (Stat.mean [ 1.; 2.; 3. ]);
        check (Alcotest.float 1e-9) "empty" 0. (Stat.mean []));
    tc "mean_opt" (fun () ->
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "some" (Some 2.)
          (Stat.mean_opt [ 1.; 2.; 3. ]);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "empty is None" None (Stat.mean_opt []));
    tc "percent" (fun () ->
        check (Alcotest.float 1e-9) "half" 50. (Stat.percent 1. 2.);
        check (Alcotest.float 1e-9) "zero denom" 0. (Stat.percent 1. 0.));
    tc "reduction" (fun () ->
        check (Alcotest.float 1e-6) "95 to 16" 83.15789473684211
          (Stat.reduction_percent 95. 16.);
        check (Alcotest.float 1e-9) "zero" 0. (Stat.reduction_percent 0. 5.));
    tc "reduction robust" (fun () ->
        (* after > before is a slowdown: negative but meaningful. *)
        check (Alcotest.float 1e-9) "slowdown" (-50.)
          (Stat.reduction_percent 2. 3.);
        check (Alcotest.float 1e-9) "negative before" 0.
          (Stat.reduction_percent (-1.) 3.);
        check (Alcotest.float 1e-9) "nan before" 0.
          (Stat.reduction_percent Float.nan 3.);
        check (Alcotest.float 1e-9) "nan after" 0.
          (Stat.reduction_percent 3. Float.nan);
        check Alcotest.bool "always finite" true
          (Float.is_finite (Stat.reduction_percent 1e-300 1e300)));
    tc "formatting" (fun () ->
        check Alcotest.string "f1" "67.5" (Stat.fmt_f1 67.5);
        check Alcotest.string "f2" "62.52" (Stat.fmt_f2 62.52);
        check Alcotest.string "time" "1.204" (Stat.fmt_time_s 1.2041));
    tc "finite drops nan and infinities in order" (fun () ->
        check
          (Alcotest.list (Alcotest.float 1e-9))
          "filtered" [ 1.; 2. ]
          (Stat.finite [ Float.nan; 1.; Float.infinity; 2.; Float.neg_infinity ]);
        check (Alcotest.list (Alcotest.float 1e-9)) "empty" [] (Stat.finite []));
    tc "stddev degenerate inputs" (fun () ->
        check (Alcotest.float 1e-9) "empty" 0. (Stat.stddev []);
        check (Alcotest.float 1e-9) "single" 0. (Stat.stddev [ 5. ]);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "single is None" None
          (Stat.stddev_opt [ 5. ]);
        (* One finite sample among garbage still cannot yield a spread. *)
        check (Alcotest.float 1e-9) "nan-padded single" 0.
          (Stat.stddev [ Float.nan; 5.; Float.infinity ]);
        check (Alcotest.float 1e-9) "two samples"
          (Float.sqrt 0.5)
          (Stat.stddev [ 1.; 2. ]));
    tc "ci95 degenerate inputs" (fun () ->
        check (Alcotest.float 1e-9) "empty" 0. (Stat.ci95_halfwidth []);
        check (Alcotest.float 1e-9) "single" 0. (Stat.ci95_halfwidth [ 3. ]);
        check (Alcotest.float 1e-9) "all nan" 0.
          (Stat.ci95_halfwidth [ Float.nan; Float.nan ]);
        check (Alcotest.float 1e-9) "two samples"
          (1.96 *. Float.sqrt 0.5 /. Float.sqrt 2.)
          (Stat.ci95_halfwidth [ 1.; 2. ]));
    tc "percentile nearest-rank boundaries" (fun () ->
        let xs = [ 10.; 20.; 30.; 40. ] in
        (* rank = ceil (q*n): exactly on a rank boundary selects that
           sample; epsilon past it selects the next. *)
        check (Alcotest.float 1e-9) "q=0" 10. (Stat.percentile 0. xs);
        check (Alcotest.float 1e-9) "q=0.25" 10. (Stat.percentile 0.25 xs);
        check (Alcotest.float 1e-9) "q just past 0.25" 20.
          (Stat.percentile 0.2500001 xs);
        check (Alcotest.float 1e-9) "median of even n" 20.
          (Stat.percentile 0.5 xs);
        check (Alcotest.float 1e-9) "q=0.75" 30. (Stat.percentile 0.75 xs);
        check (Alcotest.float 1e-9) "q=1" 40. (Stat.percentile 1. xs);
        check (Alcotest.float 1e-9) "q clamped above" 40.
          (Stat.percentile 2.5 xs);
        check (Alcotest.float 1e-9) "q clamped below" 10.
          (Stat.percentile (-1.) xs));
    tc "percentile degenerate inputs" (fun () ->
        check (Alcotest.float 1e-9) "empty" 0. (Stat.percentile 0.5 []);
        check (Alcotest.float 1e-9) "single" 5. (Stat.percentile 0.99 [ 5. ]);
        check
          (Alcotest.option (Alcotest.float 1e-9))
          "all non-finite is None" None
          (Stat.percentile_opt 0.5 [ Float.nan; Float.infinity ]);
        (* Non-finite samples are dropped before ranking, so a stray
           nan cannot shift the percentile. *)
        check (Alcotest.float 1e-9) "nan dropped before ranking" 3.
          (Stat.percentile 1. [ Float.nan; 3.; 1. ]);
        check (Alcotest.float 1e-9) "median odd n" 2.
          (Stat.median [ 1.; 3.; 2. ]));
  ]

(* ------------------------------------------------------------------ *)
(* Runlog: JSON round-trip and the regression-gate decision table      *)

let span name self =
  { Runlog.ss_name = name; ss_calls = 1; ss_total_s = self; ss_self_s = self }

let record_of ?(jobs = 1) spans =
  {
    Runlog.r_schema = Runlog.schema_version;
    r_label = "t";
    r_ts = 1700000000.5;
    r_git_rev = "deadbeef";
    r_jobs = jobs;
    r_spans = spans;
    r_counters = [ ("pool.tasks_executed", 12); ("merge.cliques", 2) ];
    r_gauges = [ ("merge.jobs", 4.) ];
    r_gc = [ ("gc.minor_words", 1234.5); ("gc.major_collections", 3.) ];
    r_events = [ ("run.finish", 1); ("stage.finish", 3) ];
  }

let status : Runlog.status Alcotest.testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Runlog.status_label s))
    ( = )

(* The verdict for one current self-time against fixed baselines, all
   other spans held constant. *)
let verdict_of ?config ~base cur =
  let baselines = List.map (fun s -> record_of [ span "a" s ]) base in
  match Runlog.check ?config ~baselines (record_of [ span "a" cur ]) with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let runlog_cases =
  [
    tc "record round-trips through JSONL" (fun () ->
        let r = record_of ~jobs:4 [ span "merge.flow" 1.25; span "sta" 0.5 ] in
        let line = Runlog.to_json r in
        check Alcotest.bool "one line" false (String.contains line '\n');
        match Runlog.of_json_string line with
        | None -> Alcotest.fail "of_json_string rejected its own rendering"
        | Some r' ->
          check Alcotest.string "schema" r.Runlog.r_schema r'.Runlog.r_schema;
          check Alcotest.string "label" "t" r'.Runlog.r_label;
          check Alcotest.string "rev" "deadbeef" r'.Runlog.r_git_rev;
          check (Alcotest.float 1e-6) "ts" r.Runlog.r_ts r'.Runlog.r_ts;
          check Alcotest.int "jobs" 4 r'.Runlog.r_jobs;
          check Alcotest.int "spans" 2 (List.length r'.Runlog.r_spans);
          let s = List.hd r'.Runlog.r_spans in
          check Alcotest.string "span name" "merge.flow" s.Runlog.ss_name;
          check (Alcotest.float 1e-9) "span self" 1.25 s.Runlog.ss_self_s;
          check
            (Alcotest.option Alcotest.int)
            "counter" (Some 12)
            (List.assoc_opt "pool.tasks_executed" r'.Runlog.r_counters);
          check
            (Alcotest.option (Alcotest.float 1e-9))
            "gauge" (Some 4.)
            (List.assoc_opt "merge.jobs" r'.Runlog.r_gauges);
          check
            (Alcotest.option (Alcotest.float 1e-9))
            "gc" (Some 1234.5)
            (List.assoc_opt "gc.minor_words" r'.Runlog.r_gc));
    tc "parse_json structure and escapes" (fun () ->
        let j =
          Runlog.parse_json
            {|{"a":[1,true,null,"s\n\"q\""],"b":{"c":-2.5e1},"d":""}|}
        in
        (match Runlog.member "a" j with
        | Some (Runlog.Arr [ Runlog.Num n; Runlog.Bool true; Runlog.Null;
                             Runlog.Str s ]) ->
          check (Alcotest.float 1e-9) "num" 1. n;
          check Alcotest.string "escapes" "s\n\"q\"" s
        | _ -> Alcotest.fail "array shape");
        (match Runlog.member "b" j with
        | Some b ->
          (match Runlog.member "c" b with
          | Some (Runlog.Num n) -> check (Alcotest.float 1e-9) "exp" (-25.) n
          | _ -> Alcotest.fail "nested num")
        | None -> Alcotest.fail "nested obj");
        check Alcotest.bool "member miss is None" true
          (Runlog.member "zzz" j = None));
    tc "parse_json rejects malformed input" (fun () ->
        let rejects s =
          match Runlog.parse_json s with
          | _ -> Alcotest.failf "accepted %S" s
          | exception Runlog.Parse_error _ -> ()
        in
        rejects "{";
        rejects "[1,]";
        rejects {|{"a":1} trailing|};
        rejects "tru";
        rejects "");
    tc "of_json_string tolerates junk, requires schema" (fun () ->
        check Alcotest.bool "malformed is None" true
          (Runlog.of_json_string "{nope" = None);
        check Alcotest.bool "no schema field is None" true
          (Runlog.of_json_string {|{"label":"x"}|} = None);
        (* Unknown fields must be ignored: old readers on new lines. *)
        match
          Runlog.of_json_string
            (Printf.sprintf {|{"schema":"%s","jobs":2,"future_field":[1,2]}|}
               Runlog.schema_version)
        with
        | Some r -> check Alcotest.int "jobs survives" 2 r.Runlog.r_jobs
        | None -> Alcotest.fail "unknown field broke the parse");
    tc "last takes the trailing window" (fun () ->
        check (Alcotest.list Alcotest.int) "tail" [ 2; 3 ]
          (Runlog.last 2 [ 1; 2; 3 ]);
        check (Alcotest.list Alcotest.int) "short list" [ 1; 2 ]
          (Runlog.last 5 [ 1; 2 ]);
        check (Alcotest.list Alcotest.int) "zero" [] (Runlog.last 0 [ 1 ]));
    tc "gate: steady baseline verdicts" (fun () ->
        let base = [ 1.; 1.; 1. ] in
        check status "within threshold" Runlog.Ok
          (verdict_of ~base 1.05).Runlog.v_status;
        check status "regression past threshold" Runlog.Regression
          (verdict_of ~base 1.2).Runlog.v_status;
        check status "improvement past threshold" Runlog.Improvement
          (verdict_of ~base 0.85).Runlog.v_status;
        let v = verdict_of ~base 1.2 in
        check Alcotest.int "n_base" 3 v.Runlog.v_n_base;
        check (Alcotest.float 1e-9) "mean" 1. v.Runlog.v_mean_s);
    tc "gate: envelope band absorbs recorded spread" (fun () ->
        (* Baseline max is 2.0: a current run equal to a previously
           recorded value must never flag even though it is 33% over
           the mean. *)
        check status "at recorded max" Runlog.Ok
          (verdict_of ~base:[ 1.; 2. ] 2.0).Runlog.v_status;
        check status "beyond mean + band" Runlog.Regression
          (verdict_of ~base:[ 1.; 2. ] 3.0).Runlog.v_status);
    tc "gate: noisy baseline and the 2x override" (fun () ->
        let base = [ 0.1; 2.0 ] in
        (* cv ≈ 1.28 > max_cv: a moderate excursion is Noisy, not a
           regression... *)
        check status "moderate excursion" Runlog.Noisy
          (verdict_of ~base 4.0).Runlog.v_status;
        (* ...but a blowup past twice the noise band flags anyway. *)
        check status "2x override" Runlog.Regression
          (verdict_of ~base 6.0).Runlog.v_status;
        check Alcotest.bool "cv reported" true
          ((verdict_of ~base 4.0).Runlog.v_cv > 1.));
    tc "gate: micro-spans are never judged" (fun () ->
        (* 5x growth, but both sides under the 10ms floor. *)
        check status "too small" Runlog.TooSmall
          (verdict_of ~base:[ 0.001 ] 0.005).Runlog.v_status);
    tc "gate: unknown span is New" (fun () ->
        let baselines = [ record_of [ span "other" 1. ] ] in
        match Runlog.check ~baselines (record_of [ span "a" 1. ]) with
        | [ v ] ->
          check status "new" Runlog.New v.Runlog.v_status;
          check Alcotest.int "no baselines" 0 v.Runlog.v_n_base
        | _ -> Alcotest.fail "one verdict expected");
    tc "gate: config overrides move the line" (fun () ->
        let config =
          { Runlog.default_config with Runlog.threshold_pct = 100. }
        in
        check status "50% over passes at threshold 100" Runlog.Ok
          (verdict_of ~config ~base:[ 1.; 1. ] 1.5).Runlog.v_status;
        let tight =
          { Runlog.default_config with Runlog.min_self_s = 0.0001 }
        in
        check status "micro-span judged once floor drops" Runlog.Regression
          (verdict_of ~config:tight ~base:[ 0.001; 0.001 ] 0.005)
            .Runlog.v_status);
    tc "has_regression is the gate" (fun () ->
        let baselines = [ record_of [ span "a" 1.; span "b" 1. ] ] in
        let ok = Runlog.check ~baselines (record_of [ span "a" 1. ]) in
        check Alcotest.bool "clean run" false (Runlog.has_regression ok);
        let bad =
          Runlog.check ~baselines (record_of [ span "a" 1.; span "b" 5. ])
        in
        check Alcotest.bool "one bad span gates" true
          (Runlog.has_regression bad));
    tc "check_report renders every verdict" (fun () ->
        let baselines = [ record_of [ span "a" 1. ] ] in
        let vs =
          Runlog.check ~baselines (record_of [ span "a" 5.; span "fresh" 1. ])
        in
        let report = Runlog.check_report vs in
        let has needle =
          let nl = String.length needle and hl = String.length report in
          let rec go i =
            i + nl <= hl && (String.sub report i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "span row" true (has "a");
        check Alcotest.bool "regression row" true (has "REGRESSION");
        check Alcotest.bool "new row" true (has "new"));
  ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let pool_cases =
  [
    tc "map preserves order at jobs=1" (fun () ->
        Pool.with_pool ~jobs:1 @@ fun p ->
        check
          (Alcotest.list Alcotest.int)
          "squares" [ 1; 4; 9; 16 ]
          (Pool.map p (fun x -> x * x) [ 1; 2; 3; 4 ]));
    tc "map preserves order on 4 domains" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        let xs = List.init 100 Fun.id in
        check
          (Alcotest.list Alcotest.int)
          "order"
          (List.map (fun x -> x * 3) xs)
          (Pool.map p (fun x -> x * 3) xs));
    tc "parallel result equals sequential" (fun () ->
        let f x = (x * 7919) mod 101 in
        let xs = List.init 257 Fun.id in
        let seq = Pool.with_pool ~jobs:1 (fun p -> Pool.map p f xs) in
        let par = Pool.with_pool ~jobs:4 (fun p -> Pool.map p f xs) in
        check (Alcotest.list Alcotest.int) "identical" seq par);
    tc "empty and singleton batches" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        check (Alcotest.list Alcotest.int) "empty" []
          (Pool.map p (fun x -> x) []);
        check (Alcotest.list Alcotest.int) "one" [ 8 ]
          (Pool.map p (fun x -> 2 * x) [ 4 ]));
    tc "pool is reusable across batches" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        for i = 1 to 10 do
          check (Alcotest.list Alcotest.int) "batch"
            [ i; i + 1 ]
            (Pool.map p (fun x -> x + i) [ 0; 1 ])
        done);
    tc "map_reduce folds in input order" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        let s =
          Pool.map_reduce p ~map:string_of_int
            ~fold:(fun acc x -> acc ^ x)
            ~init:"" [ 1; 2; 3; 4; 5 ]
        in
        check Alcotest.string "concat" "12345" s);
    tc "lowest-index exception is re-raised" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        match
          Pool.map p
            (fun x -> if x >= 3 then failwith (string_of_int x) else x)
            [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg ->
          check Alcotest.string "sequential-first failure" "3" msg);
    tc "pool survives a failed batch" (fun () ->
        Pool.with_pool ~jobs:4 @@ fun p ->
        (try ignore (Pool.map p (fun _ -> failwith "boom") [ 1; 2; 3 ])
         with Failure _ -> ());
        check (Alcotest.list Alcotest.int) "next batch ok" [ 2; 4 ]
          (Pool.map p (fun x -> 2 * x) [ 1; 2 ]));
    tc "tasks_executed counts per task at any jobs" (fun () ->
        let count jobs =
          Metrics.reset ();
          Pool.with_pool ~jobs (fun p ->
              ignore (Pool.map p Fun.id (List.init 10 Fun.id)));
          Metrics.get_counter "pool.tasks_executed"
        in
        check Alcotest.int "jobs=1" 10 (count 1);
        check Alcotest.int "jobs=4" 10 (count 4);
        Metrics.reset ());
    tc "default_jobs honours MM_JOBS" (fun () ->
        Unix.putenv "MM_JOBS" "3";
        check Alcotest.int "env wins" 3 (Pool.default_jobs ());
        Unix.putenv "MM_JOBS" "bogus";
        check Alcotest.int "bad value falls back"
          (Domain.recommended_domain_count ())
          (Pool.default_jobs ());
        Unix.putenv "MM_JOBS" "0";
        check Alcotest.int "non-positive falls back"
          (Domain.recommended_domain_count ())
          (Pool.default_jobs ());
        (* Empty string parses as no override. *)
        Unix.putenv "MM_JOBS" "");
  ]

let () =
  Alcotest.run "mm_util"
    [
      "glob", glob_cases @ glob_props;
      "toler", toler_cases @ toler_props;
      "prng", prng_cases @ prng_props;
      "vec", vec_cases;
      "tab", tab_cases;
      "stat", stat_cases;
      "runlog", runlog_cases;
      "pool", pool_cases;
    ]
