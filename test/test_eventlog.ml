(* @eventlog: the telemetry plane's in-process contracts.

   Four layers:

   - Eventlog ring semantics: bounded capacity, gap-free sequence
     numbers, newest-retention under wraparound (unit tests plus a
     QCheck property over random capacity/log-count mixes), and the
     schema-versioned NDJSON export.
   - Progress trackers: accumulation, finish/rearm, ETA presence and
     the /progress JSON shape.
   - Prometheus exposition: a golden rendering of a controlled
     registry, name sanitisation, empty/single-sample histograms, and
     a QCheck property that bucket series are monotone and end at the
     exact count.
   - The HTTP plane: Httpd request handling against a real socket on
     an OS-assigned port, Serve's --serve spec parser, every endpoint
     of the routing handler, and the DESIGN.md §15 event-kind table
     checked bidirectionally against a real merge run (the same
     contract style as the §9 taxonomy suite). *)

module Eventlog = Mm_util.Eventlog
module Progress = Mm_util.Progress
module Metrics = Mm_util.Metrics
module Obs = Mm_util.Obs
module Httpd = Mm_util.Httpd
module Serve = Mm_util.Serve
module Runlog = Mm_util.Runlog
module Merge_flow = Mm_core.Merge_flow
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Eventlog ring                                                       *)

let test_ring_basics () =
  Eventlog.reset ();
  Eventlog.set_capacity Eventlog.default_capacity;
  check Alcotest.int "empty total" 0 (Eventlog.total ());
  check Alcotest.int "empty dropped" 0 (Eventlog.dropped ());
  Eventlog.log "a.one";
  Eventlog.log "a.two" ~attrs:[ ("k", "v") ];
  Eventlog.log "a.one";
  check Alcotest.int "total counts every log" 3 (Eventlog.total ());
  let evs = Eventlog.recent () in
  check Alcotest.(list string) "oldest first"
    [ "a.one"; "a.two"; "a.one" ]
    (List.map (fun e -> e.Eventlog.ev_kind) evs);
  check
    Alcotest.(list int)
    "gap-free seq" [ 0; 1; 2 ]
    (List.map (fun e -> e.Eventlog.ev_seq) evs);
  check
    Alcotest.(list (pair string string))
    "attrs retained"
    [ ("k", "v") ]
    (List.nth evs 1).Eventlog.ev_attrs;
  check
    Alcotest.(list (pair string int))
    "cumulative counts sorted"
    [ ("a.one", 2); ("a.two", 1) ]
    (Eventlog.counts ());
  let newest = Eventlog.recent ~limit:1 () in
  check Alcotest.int "limit keeps the newest" 2
    (List.hd newest).Eventlog.ev_seq;
  Eventlog.reset ()

let test_ring_wraparound () =
  Eventlog.reset ();
  Eventlog.set_capacity 4;
  for i = 0 to 9 do
    Eventlog.log (Printf.sprintf "k.%d" (i mod 2))
  done;
  check Alcotest.int "total survives drops" 10 (Eventlog.total ());
  check Alcotest.int "dropped = total - retained" 6 (Eventlog.dropped ());
  let evs = Eventlog.recent () in
  check Alcotest.int "ring holds capacity" 4 (List.length evs);
  check
    Alcotest.(list int)
    "newest retained, in order" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Eventlog.ev_seq) evs);
  check
    Alcotest.(list (pair string int))
    "counts survive wraparound"
    [ ("k.0", 5); ("k.1", 5) ]
    (Eventlog.counts ());
  (* Shrinking keeps the newest; growing keeps everything retained. *)
  Eventlog.set_capacity 2;
  check
    Alcotest.(list int)
    "shrink keeps newest" [ 8; 9 ]
    (List.map (fun e -> e.Eventlog.ev_seq) (Eventlog.recent ()));
  Eventlog.set_capacity 8;
  Eventlog.log "k.0";
  check
    Alcotest.(list int)
    "grow retains and appends" [ 8; 9; 10 ]
    (List.map (fun e -> e.Eventlog.ev_seq) (Eventlog.recent ()));
  Eventlog.reset ();
  Eventlog.set_capacity Eventlog.default_capacity

let ring_property =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"ring never exceeds capacity and retains the newest events"
       ~count:200
       QCheck2.Gen.(pair (1 -- 40) (0 -- 200))
       (fun (cap, n) ->
         Eventlog.reset ();
         Eventlog.set_capacity cap;
         for i = 0 to n - 1 do
           Eventlog.log (Printf.sprintf "p.%d" (i mod 3))
         done;
         let evs = Eventlog.recent () in
         let len = List.length evs in
         let expect_len = min cap n in
         let seqs = List.map (fun e -> e.Eventlog.ev_seq) evs in
         let expect_seqs = List.init expect_len (fun i -> n - expect_len + i) in
         let ok =
           len = expect_len && seqs = expect_seqs
           && Eventlog.total () = n
           && Eventlog.dropped () = n - expect_len
           && List.fold_left (fun a (_, c) -> a + c) 0 (Eventlog.counts ()) = n
         in
         Eventlog.reset ();
         Eventlog.set_capacity Eventlog.default_capacity;
         ok))

let test_ndjson () =
  Eventlog.reset ();
  Eventlog.log "x.start" ~attrs:[ ("mode", "m\"1"); ("n", "2") ];
  Eventlog.log "x.finish";
  let nd = Eventlog.to_ndjson () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' nd)
  in
  check Alcotest.int "header + one line per event" 3 (List.length lines);
  (match Runlog.parse_json (List.hd lines) with
  | j ->
    check Alcotest.(option string) "schema header"
      (Some Eventlog.schema_version)
      (match Runlog.member "schema" j with
      | Some (Runlog.Str s) -> Some s
      | _ -> None);
    check Alcotest.bool "header total" true
      (Runlog.member "total" j = Some (Runlog.Num 2.))
  | exception Runlog.Parse_error e ->
    Alcotest.failf "NDJSON header does not parse: %s" e);
  List.iteri
    (fun i line ->
      match Runlog.parse_json line with
      | j ->
        if i > 0 then
          check Alcotest.bool
            (Printf.sprintf "line %d has seq" i)
            true
            (Runlog.member "seq" j <> None)
      | exception Runlog.Parse_error e ->
        Alcotest.failf "NDJSON line %d does not parse: %s (%s)" i e line)
    lines;
  (* ?limit keeps the newest events but the exact cumulative header. *)
  let limited = Eventlog.to_ndjson ~limit:1 () in
  let llines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' limited)
  in
  check Alcotest.int "limited export" 2 (List.length llines);
  check Alcotest.bool "limited keeps the newest" true
    (let j = Runlog.parse_json (List.nth llines 1) in
     Runlog.member "kind" j = Some (Runlog.Str "x.finish"));
  Eventlog.reset ()

(* ------------------------------------------------------------------ *)
(* Progress                                                            *)

let tracker name =
  match
    List.find_opt (fun t -> t.Progress.tr_name = name) (Progress.snapshot ())
  with
  | Some t -> t
  | None -> Alcotest.failf "tracker %s not found" name

let test_progress_accumulation () =
  Progress.reset ();
  Progress.add_total ~by:4 "t.a";
  Progress.tick "t.a";
  Progress.tick ~by:2 "t.a";
  let t = tracker "t.a" in
  check Alcotest.int "done" 3 t.Progress.tr_done;
  check Alcotest.int "total" 4 t.Progress.tr_total;
  check Alcotest.bool "not finished" false t.Progress.tr_finished;
  check Alcotest.bool "eta present once work is done" true
    (t.Progress.tr_eta_s <> None);
  (* Concurrent producers accumulate. *)
  Progress.add_total ~by:6 "t.a";
  check Alcotest.int "totals accumulate" 10 (tracker "t.a").Progress.tr_total;
  Progress.finish "t.a";
  let t = tracker "t.a" in
  check Alcotest.bool "finished" true t.Progress.tr_finished;
  check Alcotest.int "finish snaps done to total" 10 t.Progress.tr_done;
  (* A later add_total rearms the tracker (repeated STA sweeps). *)
  Progress.add_total ~by:2 "t.a";
  let t = tracker "t.a" in
  check Alcotest.bool "rearmed" false t.Progress.tr_finished;
  Progress.reset ()

let test_progress_json () =
  Progress.reset ();
  Progress.add_total ~by:3 "merge.load";
  Progress.tick "merge.load";
  Progress.add_total ~by:5 "pool.tasks";
  let j = Runlog.parse_json (Progress.to_json ()) in
  (match Runlog.member "trackers" j with
  | Some (Runlog.Arr ts) ->
    check Alcotest.int "one entry per tracker" 2 (List.length ts);
    List.iter
      (fun t ->
        List.iter
          (fun f ->
            check Alcotest.bool
              (Printf.sprintf "tracker field %s" f)
              true
              (Runlog.member f t <> None))
          [ "name"; "done"; "total"; "elapsed_s"; "finished" ])
      ts
  | _ -> Alcotest.fail "no trackers array");
  (match Runlog.member "overall" j with
  | Some o ->
    check Alcotest.bool "overall counts merge stages" true
      (Runlog.member "units_total" o = Some (Runlog.Num 3.))
  | None -> Alcotest.fail "no overall object");
  Progress.reset ()

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

let hist samples =
  match samples with
  | [] ->
    {
      Metrics.h_count = 0;
      h_sum = 0.;
      h_min = infinity;
      h_max = neg_infinity;
      h_samples = [];
    }
  | _ ->
    {
      Metrics.h_count = List.length samples;
      h_sum = List.fold_left ( +. ) 0. samples;
      h_min = List.fold_left Float.min infinity samples;
      h_max = List.fold_left Float.max neg_infinity samples;
      h_samples = samples;
    }

let test_prometheus_golden () =
  let items =
    [
      { Metrics.name = "merge.cliques"; value = Metrics.Counter 3 };
      { Metrics.name = "pool.util"; value = Metrics.Gauge 0.5 };
      { Metrics.name = "9weird-name!x"; value = Metrics.Counter 1 };
      { Metrics.name = "t.single"; value = Metrics.Histogram (hist [ 2.5 ]) };
      { Metrics.name = "t.empty"; value = Metrics.Histogram (hist []) };
    ]
  in
  let expect =
    String.concat "\n"
      [
        "# TYPE merge_cliques counter";
        "merge_cliques 3";
        "# TYPE pool_util gauge";
        "pool_util 0.5";
        "# TYPE _9weird_name_x counter";
        "_9weird_name_x 1";
        "# TYPE t_single histogram";
        "t_single_bucket{le=\"2.5\"} 1";
        "t_single_bucket{le=\"+Inf\"} 1";
        "t_single_sum 2.5";
        "t_single_count 1";
        "# TYPE t_empty histogram";
        "t_empty_bucket{le=\"+Inf\"} 0";
        "t_empty_sum 0";
        "t_empty_count 0";
        "";
      ]
  in
  check Alcotest.string "golden exposition" expect
    (Metrics.prometheus_of_items items)

let bucket_series name text =
  (* All (le, cumulative) pairs of [name]'s bucket lines, in order. *)
  List.filter_map
    (fun line ->
      let prefix = name ^ "_bucket{le=\"" in
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then
        let rest =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        match String.index_opt rest '"' with
        | Some q ->
          let le = String.sub rest 0 q in
          let count =
            int_of_string
              (String.trim
                 (String.sub rest (q + 2) (String.length rest - q - 2)))
          in
          Some (le, count)
        | None -> None
      else None)
    (String.split_on_char '\n' text)

let prometheus_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"histogram bucket series is monotone and ends at the exact count"
       ~count:300
       QCheck2.Gen.(list_size (0 -- 60) (float_bound_inclusive 50.))
       (fun samples ->
         let items =
           [ { Metrics.name = "q.h"; value = Metrics.Histogram (hist samples) } ]
         in
         let text = Metrics.prometheus_of_items items in
         let series = bucket_series "q_h" text in
         let counts = List.map snd series in
         let rec monotone = function
           | a :: (b :: _ as tl) -> a <= b && monotone tl
           | _ -> true
         in
         series <> []
         && monotone counts
         && fst (List.nth series (List.length series - 1)) = "+Inf"
         && List.nth counts (List.length counts - 1) = List.length samples))

let test_percentile_degenerate () =
  (* Satellite of the histogram guard: an empty reservoir must not
     raise, a single sample is every percentile. *)
  check (Alcotest.float 1e-9) "empty histogram percentile" 0.
    (Metrics.percentile (hist []) 0.5);
  check (Alcotest.float 1e-9) "single-sample p50" 7.25
    (Metrics.percentile (hist [ 7.25 ]) 0.5);
  check (Alcotest.float 1e-9) "single-sample p99" 7.25
    (Metrics.percentile (hist [ 7.25 ]) 0.99);
  (* The JSON renderer hits the same path on an observed-once metric. *)
  Metrics.reset ();
  Metrics.observe "one.sample" 1.5;
  let j = Runlog.parse_json (Metrics.to_json ()) in
  (match Runlog.member "one.sample" j with
  | Some h ->
    check Alcotest.bool "p99 of one sample" true
      (Runlog.member "p99" h = Some (Runlog.Num 1.5))
  | None -> Alcotest.fail "observed metric missing from JSON");
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* Httpd                                                               *)

let with_httpd handler f =
  let srv = Httpd.start ~addr:"127.0.0.1" ~port:0 handler in
  Fun.protect ~finally:(fun () -> Httpd.stop srv) (fun () -> f srv)

let test_httpd_roundtrip () =
  with_httpd
    (fun rq ->
      match rq.Httpd.rq_path with
      | "/hello" -> Httpd.respond "world"
      | "/echo" ->
        Httpd.respond
          (String.concat ";"
             (List.map (fun (k, v) -> k ^ "=" ^ v) rq.Httpd.rq_query))
      | "/boom" -> failwith "handler crash"
      | _ -> Httpd.not_found)
    (fun srv ->
      let port = Httpd.port srv in
      check Alcotest.bool "OS assigned a real port" true (port > 0);
      check
        Alcotest.(pair int string)
        "basic GET" (200, "world")
        (Httpd.get ~port "/hello");
      check
        Alcotest.(pair int string)
        "query decoding" (200, "a=1;b=x y")
        (Httpd.get ~port "/echo?a=1&b=x%20y");
      check Alcotest.int "unknown path is 404" 404
        (fst (Httpd.get ~port "/nope"));
      check Alcotest.int "handler exception is 500" 500
        (fst (Httpd.get ~port "/boom"));
      (* Sequential connections: one request per connection. *)
      check Alcotest.int "second request served" 200
        (fst (Httpd.get ~port "/hello")))

let test_httpd_stop_idempotent () =
  let srv = Httpd.start ~addr:"127.0.0.1" ~port:0 (fun _ -> Httpd.not_found) in
  Httpd.stop srv;
  Httpd.stop srv;
  check Alcotest.bool "stopped twice without raising" true true

(* ------------------------------------------------------------------ *)
(* Serve: spec parsing and the routing handler                         *)

let test_parse_spec () =
  let ok = Alcotest.(result (pair string int) string) in
  let show = function
    | Ok (a, p) -> Ok (a, p)
    | Error _ -> Error "error"
  in
  let parse s = show (Serve.parse_spec s) in
  check ok "bare port" (Ok ("127.0.0.1", 9090)) (parse "9090");
  check ok "addr:port" (Ok ("0.0.0.0", 0)) (parse "0.0.0.0:0");
  check ok "hostname" (Ok ("localhost", 8080)) (parse "localhost:8080");
  List.iter
    (fun bad ->
      match Serve.parse_spec bad with
      | Ok (a, p) -> Alcotest.failf "%S parsed as %s:%d" bad a p
      | Error _ -> ())
    [ ""; "notaport"; "70000"; "-1"; ":8080"; "127.0.0.1:"; "a:b:c" ]

let test_serve_endpoints () =
  Eventlog.reset ();
  Progress.reset ();
  Metrics.reset ();
  Metrics.incr "serve.test_counter";
  Progress.add_total ~by:2 "merge.load";
  Eventlog.log "x.alpha";
  Eventlog.log "x.beta";
  let srv = Serve.start ~addr:"127.0.0.1" ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Serve.stop srv)
    (fun () ->
      let port = Serve.port srv in
      let body path =
        let status, body = Httpd.get ~port path in
        check Alcotest.int (path ^ " is 200") 200 status;
        body
      in
      (* /healthz: parses, says ok, reflects the journal. *)
      let h = Runlog.parse_json (body "/healthz") in
      check Alcotest.bool "healthz ok" true
        (Runlog.member "status" h = Some (Runlog.Str "ok"));
      check Alcotest.bool "healthz ladder" true
        (Runlog.member "ladder" h = Some (Runlog.Str "nominal"));
      (* /progress: the tracker we created is visible. *)
      let p = Runlog.parse_json (body "/progress") in
      (match Runlog.member "trackers" p with
      | Some (Runlog.Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "progress lost the tracker");
      (* /metrics: Prometheus text with the sanitised counter. *)
      let m = body "/metrics" in
      let contains needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec find i =
          i + nl <= hl && (String.sub hay i nl = needle || find (i + 1))
        in
        find 0
      in
      check Alcotest.bool "metrics exposes the sanitised counter" true
        (contains "# TYPE serve_test_counter counter" m
        && contains "serve_test_counter 1" m);
      (* /events: header + the two journal lines (serve.start is third). *)
      let e = body "/events" in
      let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' e) in
      check Alcotest.bool "events has header + events" true
        (List.length lines >= 3);
      check Alcotest.bool "events header schema" true
        (let j = Runlog.parse_json (List.hd lines) in
         Runlog.member "schema" j = Some (Runlog.Str Eventlog.schema_version));
      (* ?n= keeps the newest n events. *)
      let e1 = body "/events?n=1" in
      let l1 = List.filter (fun l -> l <> "") (String.split_on_char '\n' e1) in
      check Alcotest.int "events?n=1" 2 (List.length l1);
      check Alcotest.bool "events?n=1 keeps newest" true
        (let j = Runlog.parse_json (List.nth l1 1) in
         Runlog.member "kind" j = Some (Runlog.Str "serve.start"));
      (* /trace parses as JSON. *)
      ignore (Runlog.parse_json (body "/trace"));
      (* / is an index; unknown paths 404. *)
      ignore (body "/");
      check Alcotest.int "404" 404 (fst (Httpd.get ~port "/definitely-not"));
      (* serve.start was journaled with the bound address. *)
      check Alcotest.bool "serve.start journaled" true
        (List.exists
           (fun ev ->
             ev.Eventlog.ev_kind = "serve.start"
             && List.assoc_opt "port" ev.Eventlog.ev_attrs
                = Some (string_of_int port))
           (Eventlog.recent ())));
  Eventlog.reset ();
  Progress.reset ();
  Metrics.reset ()

(* ------------------------------------------------------------------ *)
(* DESIGN.md §15 event-kind taxonomy vs. a real run                    *)

type entry = { e_name : string; e_always : bool }

let design_md =
  if Sys.file_exists "../DESIGN.md" then "../DESIGN.md" else "DESIGN.md"

let read_file path = In_channel.with_open_bin path In_channel.input_all

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let parse_row line =
  if not (starts_with "|" (String.trim line)) then None
  else
    let cells =
      String.split_on_char '|' line |> List.map String.trim
      |> List.filter (fun c -> c <> "")
    in
    match cells with
    | name :: rest
      when String.length name > 2
           && name.[0] = '`'
           && name.[String.length name - 1] = '`' ->
      let e_name = String.sub name 1 (String.length name - 2) in
      let when_cell =
        List.find_opt
          (fun c -> c = "always" || starts_with "conditional" c)
          rest
      in
      (match when_cell with
      | Some w -> Some { e_name; e_always = w = "always" }
      | None ->
        Alcotest.failf "DESIGN.md §15 row for `%s` has no when column" e_name)
    | _ -> None

let kind_table =
  lazy
    (let lines = String.split_on_char '\n' (read_file design_md) in
     let rows = ref [] in
     let in_s15 = ref false and in_kinds = ref false in
     List.iter
       (fun line ->
         if starts_with "## 15." line then in_s15 := true
         else if starts_with "## " line then in_s15 := false
         else if !in_s15 then
           if starts_with "### " line then
             in_kinds := starts_with "### Event kinds" line
           else if !in_kinds then
             match parse_row line with
             | Some e -> rows := e :: !rows
             | None -> ())
       lines;
     List.rev !rows)

let emitted_kinds =
  lazy
    (Eventlog.reset ();
     let params =
       {
         Gen_design.default_params with
         Gen_design.seed = 7;
         n_domains = 2;
         regs_per_domain = 24;
       }
     in
     let design, info = Gen_design.generate params in
     let suite =
       {
         Gen_modes.sp_seed = 8;
         families = [ 3; 2 ];
         base_period = 2.0;
         scan_family = true;
       }
     in
     let sources =
       List.concat
         (List.mapi
            (fun family n ->
              List.init n (fun index ->
                  {
                    Merge_flow.src_name = Printf.sprintf "m%d_%d" family index;
                    src_file = None;
                    src_text =
                      Gen_modes.sdc_of_mode_spec info suite ~family ~index;
                  }))
            suite.Gen_modes.families)
     in
     ignore (Merge_flow.run_sources ~jobs:2 ~design sources);
     (* The serve lifecycle is part of the taxonomy; bring a server up
        so `serve.start` counts as exercised. *)
     let srv = Serve.start ~addr:"127.0.0.1" ~port:0 () in
     Serve.stop srv;
     let kinds = SS.of_list (List.map fst (Eventlog.counts ())) in
     Eventlog.reset ();
     kinds)

let test_taxonomy_table_parses () =
  let t = Lazy.force kind_table in
  check Alcotest.bool "event-kind table found" true (List.length t >= 12);
  let sorted = List.sort compare (List.map (fun e -> e.e_name) t) in
  let rec dup = function
    | a :: b :: _ when a = b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  (match dup sorted with
  | Some name -> Alcotest.failf "duplicate event-kind row: %s" name
  | None -> ());
  List.iter
    (fun e ->
      check Alcotest.bool
        (Printf.sprintf "%s is dotted" e.e_name)
        true
        (String.contains e.e_name '.'))
    t

let test_taxonomy_bidirectional () =
  let table = Lazy.force kind_table in
  let emitted = Lazy.force emitted_kinds in
  let documented = SS.of_list (List.map (fun e -> e.e_name) table) in
  let always =
    SS.of_list
      (List.filter_map
         (fun e -> if e.e_always then Some e.e_name else None)
         table)
  in
  let missing = SS.diff always emitted in
  if not (SS.is_empty missing) then
    Alcotest.failf
      "event kinds documented as `always` in DESIGN.md §15 but not emitted \
       by the reference run: %s"
      (String.concat ", " (SS.elements missing));
  let undocumented = SS.diff emitted documented in
  if not (SS.is_empty undocumented) then
    Alcotest.failf
      "event kinds emitted but missing from the DESIGN.md §15 table: %s"
      (String.concat ", " (SS.elements undocumented))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "eventlog"
    [
      ( "ring",
        [
          tc "log / recent / counts basics" test_ring_basics;
          tc "wraparound keeps the newest, counters survive"
            test_ring_wraparound;
          ring_property;
          tc "NDJSON export is schema-versioned and parseable" test_ndjson;
        ] );
      ( "progress",
        [
          tc "totals accumulate, finish snaps, rearm works"
            test_progress_accumulation;
          tc "/progress JSON shape" test_progress_json;
        ] );
      ( "prometheus",
        [
          tc "golden exposition (sanitised names, histograms)"
            test_prometheus_golden;
          prometheus_monotone;
          tc "empty and single-sample percentiles" test_percentile_degenerate;
        ] );
      ( "http",
        [
          tc "Httpd round-trip on an OS-assigned port" test_httpd_roundtrip;
          tc "Httpd.stop is idempotent" test_httpd_stop_idempotent;
          tc "--serve spec parsing" test_parse_spec;
          tc "every Serve endpoint answers over a real socket"
            test_serve_endpoints;
        ] );
      ( "taxonomy",
        [
          tc "§15 event-kind table parses out of DESIGN.md"
            test_taxonomy_table_parses;
          tc "every `always` kind emitted, every emitted kind documented"
            test_taxonomy_bidirectional;
        ] );
    ]
