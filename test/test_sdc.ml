(* Unit and property tests for Mm_sdc: lexer, parser, writer round
   trips, query resolution and mode semantics. *)
module Lexer = Mm_sdc.Lexer
module Parser = Mm_sdc.Parser
module Writer = Mm_sdc.Writer
module Ast = Mm_sdc.Ast
module Resolve = Mm_sdc.Resolve
module Mode = Mm_sdc.Mode
module Design = Mm_netlist.Design
module Diag = Mm_util.Diag

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let lexer_cases =
  [
    tc "splits commands on newlines and semicolons" (fun () ->
        let cmds = Lexer.tokenize "a b\nc; d e" in
        check Alcotest.int "three" 3 (List.length cmds));
    tc "comments removed" (fun () ->
        let cmds = Lexer.tokenize "# full line\na b # trailing\n" in
        check Alcotest.int "one" 1 (List.length cmds);
        check Alcotest.int "two toks" 2 (List.length (List.hd cmds)));
    tc "line continuation merges" (fun () ->
        let cmds = Lexer.tokenize "a \\\nb" in
        check Alcotest.int "one cmd" 1 (List.length cmds);
        check Alcotest.int "two toks" 2 (List.length (List.hd cmds)));
    tc "brackets nest" (fun () ->
        match Lexer.tokenize "x [get_ports {a b}]" with
        | [ [ Lexer.Atom "x"; Lexer.Bracket [ Lexer.Atom "get_ports"; Lexer.Brace [ "a"; "b" ] ] ] ] ->
          ()
        | _ -> Alcotest.fail "unexpected token tree");
    tc "newline inside brackets allowed" (fun () ->
        match Lexer.tokenize "x [a\nb]" with
        | [ [ Lexer.Atom "x"; Lexer.Bracket [ Lexer.Atom "a"; Lexer.Atom "b" ] ] ] -> ()
        | _ -> Alcotest.fail "unexpected");
    tc "quoted strings keep spaces" (fun () ->
        match Lexer.tokenize "x \"a b\"" with
        | [ [ Lexer.Atom "x"; Lexer.Atom "a b" ] ] -> ()
        | _ -> Alcotest.fail "unexpected");
    tc "unbalanced bracket raises" (fun () ->
        (try
           ignore (Lexer.tokenize "x [a");
           Alcotest.fail "no error"
         with Lexer.Error { msg; _ } ->
           check Alcotest.string "msg" "unterminated [" msg));
    tc "unbalanced close raises" (fun () ->
        (try
           ignore (Lexer.tokenize "x a]");
           Alcotest.fail "no error"
         with Lexer.Error { msg; _ } -> check Alcotest.string "msg" "unbalanced ]" msg));
    tc "nested braces flatten words" (fun () ->
        match Lexer.tokenize "x {a {b c}}" with
        | [ [ Lexer.Atom "x"; Lexer.Brace words ] ] ->
          check Alcotest.bool "has inner" true (List.mem "{b" words || List.mem "b" words)
        | _ -> Alcotest.fail "unexpected");
    tc "tok_to_string round trip text" (fun () ->
        let t = Lexer.Bracket [ Lexer.Atom "get_ports"; Lexer.Brace [ "a"; "b" ] ] in
        check Alcotest.string "text" "[get_ports {a b}]" (Lexer.tok_to_string t));
  ]

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parse1 src =
  match Parser.parse_string src with
  | [ cmd ] -> cmd
  | cmds -> Alcotest.failf "expected one command, got %d" (List.length cmds)

(* Parse errors now carry the command's source location; assert both
   the message and (when given) the 1-based line it points at. *)
let expect_parse_error ?line msg src =
  match Parser.parse_string src with
  | _ -> Alcotest.failf "expected a parse error for: %s" src
  | exception Parser.Error { loc; msg = m } ->
    check Alcotest.string "msg" msg m;
    (match line with
    | None -> ()
    | Some l -> (
      match loc with
      | Some dl -> check Alcotest.int "line" l dl.Mm_util.Diag.line
      | None -> Alcotest.fail "expected a located error"))

let parser_cases =
  [
    tc "create_clock full form" (fun () ->
        match parse1 "create_clock -name clkA -period 10 -waveform {0 5} [get_ports clk1]" with
        | Ast.Create_clock c ->
          check Alcotest.(option string) "name" (Some "clkA") c.Ast.cc_name;
          check (Alcotest.float 0.) "period" 10. c.Ast.period;
          check Alcotest.bool "waveform" true (c.Ast.waveform = Some (0., 5.));
          check Alcotest.bool "sources" true (c.Ast.sources = [ Ast.Get_ports [ "clk1" ] ])
        | _ -> Alcotest.fail "wrong command");
    tc "create_clock -p abbreviation" (fun () ->
        match parse1 "create_clock -p 10 -name c [get_port x]" with
        | Ast.Create_clock c -> check (Alcotest.float 0.) "period" 10. c.Ast.period
        | _ -> Alcotest.fail "wrong command");
    tc "create_clock requires period" (fun () ->
        expect_parse_error ~line:1 "create_clock: -period is required"
          "create_clock -name x [get_ports p]");
    tc "generated clock" (fun () ->
        match
          parse1
            "create_generated_clock -name g -source [get_pins u/Z] -divide_by 2 \
             -master_clock clkA [get_pins r/CP]"
        with
        | Ast.Create_generated_clock g ->
          check Alcotest.int "div" 2 g.Ast.divide_by;
          check Alcotest.(option string) "master" (Some "clkA") g.Ast.master_clock
        | _ -> Alcotest.fail "wrong command");
    tc "clock latency min/max accumulation" (fun () ->
        (match parse1 "set_clock_latency -source -min 1.0 [get_clocks c]" with
        | Ast.Set_clock_latency l ->
          check Alcotest.bool "source" true l.Ast.lat_source;
          check Alcotest.bool "min" true (l.Ast.lat_minmax = Ast.Min)
        | _ -> Alcotest.fail "wrong");
        match parse1 "set_clock_latency -min -max 1.0 [get_clocks c]" with
        | Ast.Set_clock_latency l -> check Alcotest.bool "both" true (l.Ast.lat_minmax = Ast.Both)
        | _ -> Alcotest.fail "wrong");
    tc "uncertainty defaults to both" (fun () ->
        match parse1 "set_clock_uncertainty 0.1 [get_clocks c]" with
        | Ast.Set_clock_uncertainty u ->
          check Alcotest.bool "setup" true u.Ast.unc_setup;
          check Alcotest.bool "hold" true u.Ast.unc_hold
        | _ -> Alcotest.fail "wrong");
    tc "input delay with clock query form" (fun () ->
        match parse1 "set_input_delay 2 -clock [get_clocks clkA] -add_delay [get_ports in1]" with
        | Ast.Set_input_delay d ->
          check Alcotest.(option string) "clock" (Some "clkA") d.Ast.io_clock;
          check Alcotest.bool "add" true d.Ast.io_add_delay
        | _ -> Alcotest.fail "wrong");
    tc "case analysis value forms" (fun () ->
        (match parse1 "set_case_analysis 0 sel1" with
        | Ast.Set_case_analysis c -> check Alcotest.bool "zero" false c.Ast.ca_value
        | _ -> Alcotest.fail "wrong");
        match parse1 "set_case_analysis one sel1" with
        | Ast.Set_case_analysis c -> check Alcotest.bool "one" true c.Ast.ca_value
        | _ -> Alcotest.fail "wrong");
    tc "disable timing with from/to" (fun () ->
        match parse1 "set_disable_timing -from A -to Z [get_cells u1]" with
        | Ast.Set_disable_timing dt ->
          check Alcotest.(option string) "from" (Some "A") dt.Ast.dis_from;
          check Alcotest.(option string) "to" (Some "Z") dt.Ast.dis_to
        | _ -> Alcotest.fail "wrong");
    tc "false path spec with ordered throughs" (fun () ->
        match
          parse1 "set_false_path -from [get_clocks a] -through u1/Z -through u2/Z -to rX/D"
        with
        | Ast.Set_false_path spec ->
          check Alcotest.int "two groups" 2 (List.length spec.Ast.ps_through);
          check Alcotest.bool "order" true
            (spec.Ast.ps_through = [ [ Ast.Name "u1/Z" ]; [ Ast.Name "u2/Z" ] ])
        | _ -> Alcotest.fail "wrong");
    tc "multicycle defaults to setup only" (fun () ->
        match parse1 "set_multicycle_path 2 -from x" with
        | Ast.Set_multicycle_path m ->
          check Alcotest.int "mult" 2 m.Ast.mcp_mult;
          check Alcotest.bool "setup" true m.Ast.mcp_spec.Ast.ps_setup;
          check Alcotest.bool "no hold" false m.Ast.mcp_spec.Ast.ps_hold
        | _ -> Alcotest.fail "wrong");
    tc "multicycle hold flag" (fun () ->
        match parse1 "set_multicycle_path 1 -hold -from x" with
        | Ast.Set_multicycle_path m ->
          check Alcotest.bool "hold" true m.Ast.mcp_spec.Ast.ps_hold;
          check Alcotest.bool "not setup" false m.Ast.mcp_spec.Ast.ps_setup
        | _ -> Alcotest.fail "wrong");
    tc "min/max delay" (fun () ->
        (match parse1 "set_max_delay 5.5 -to [get_ports out1]" with
        | Ast.Set_max_delay b -> check (Alcotest.float 0.) "v" 5.5 b.Ast.db_value
        | _ -> Alcotest.fail "wrong");
        match parse1 "set_min_delay 0.5 -from a" with
        | Ast.Set_min_delay b -> check (Alcotest.float 0.) "v" 0.5 b.Ast.db_value
        | _ -> Alcotest.fail "wrong");
    tc "negative delay value allowed" (fun () ->
        match parse1 "set_max_delay -1.5 -to x" with
        | Ast.Set_max_delay b -> check (Alcotest.float 0.) "v" (-1.5) b.Ast.db_value
        | _ -> Alcotest.fail "wrong");
    tc "clock groups" (fun () ->
        match
          parse1
            "set_clock_groups -physically_exclusive -name g -group [get_clocks a] -group [get_clocks b]"
        with
        | Ast.Set_clock_groups g ->
          check Alcotest.int "two groups" 2 (List.length g.Ast.cg_groups);
          check Alcotest.bool "kind" true (g.Ast.cg_kind = Ast.Physically_exclusive)
        | _ -> Alcotest.fail "wrong");
    tc "clock groups requires exclusivity" (fun () ->
        expect_parse_error ~line:1 "set_clock_groups: missing exclusivity flag"
          "set_clock_groups -group [get_clocks a]");
    tc "clock sense" (fun () ->
        match
          parse1 "set_clock_sense -stop_propagation -clock [get_clocks a] [get_pins m/Z]"
        with
        | Ast.Set_clock_sense s ->
          check Alcotest.bool "stop" true s.Ast.sense_stop;
          check Alcotest.bool "clocks" true (s.Ast.sense_clocks <> None)
        | _ -> Alcotest.fail "wrong");
    tc "environment commands" (fun () ->
        (match parse1 "set_load 0.02 [get_ports out1]" with
        | Ast.Set_env e -> check Alcotest.bool "load" true (e.Ast.env_kind = Ast.Load)
        | _ -> Alcotest.fail "wrong");
        (match parse1 "set_drive 0.5 [all_inputs]" with
        | Ast.Set_env e -> check Alcotest.bool "drive" true (e.Ast.env_kind = Ast.Drive)
        | _ -> Alcotest.fail "wrong");
        match parse1 "set_input_transition -max 0.3 [get_ports in1]" with
        | Ast.Set_env e ->
          check Alcotest.bool "trans" true (e.Ast.env_kind = Ast.Input_transition);
          check Alcotest.bool "max" true (e.Ast.env_minmax = Ast.Max)
        | _ -> Alcotest.fail "wrong");
    tc "design rule commands" (fun () ->
        (match parse1 "set_max_transition 0.4 [get_ports out1]" with
        | Ast.Set_drc d ->
          check Alcotest.bool "kind" true (d.Ast.drc_kind = Ast.Max_transition);
          check (Alcotest.float 0.) "value" 0.4 d.Ast.drc_value
        | _ -> Alcotest.fail "wrong");
        match parse1 "set_max_capacitance 0.05 [get_pins u1/Z]" with
        | Ast.Set_drc d ->
          check Alcotest.bool "kind" true (d.Ast.drc_kind = Ast.Max_capacitance)
        | _ -> Alcotest.fail "wrong");
    tc "propagated clock" (fun () ->
        match parse1 "set_propagated_clock [all_clocks]" with
        | Ast.Set_propagated_clock [ Ast.All_clocks ] -> ()
        | _ -> Alcotest.fail "wrong");
    tc "unknown command rejected" (fun () ->
        expect_parse_error ~line:1 "unknown command set_blah" "set_blah 1 2");
    tc "unknown flag rejected" (fun () ->
        expect_parse_error ~line:1 "create_clock: unknown flag -bogus"
          "create_clock -bogus -period 1 x");
    tc "all_registers query" (fun () ->
        match parse1 "set_false_path -from [all_registers -clock_pins]" with
        | Ast.Set_false_path { ps_from = Some [ Ast.All_registers { clock_pins = true } ]; _ } ->
          ()
        | _ -> Alcotest.fail "wrong");
  ]

(* ------------------------------------------------------------------ *)
(* Error recovery: parse_string_recover golden diagnostics             *)

let rendered diags = List.map Diag.to_string diags

let recover_cases =
  [
    tc "bad clock value: located diagnostic, rest of file kept" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover ~file:"t.sdc"
            "create_clock -period xyz -name c [get_ports clk1]\n\
             set_case_analysis 0 sel1"
        in
        check Alcotest.int "one survivor" 1 (List.length cmds);
        check
          Alcotest.(list string)
          "golden"
          [
            "t.sdc:1:1: error[sdc.bad-args]: create_clock: -period expects a \
             number, got xyz";
          ]
          (rendered diags));
    tc "unknown command: code and location" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover ~file:"t.sdc"
            "create_clock -period 1 -name c [get_ports clk1]\n\
             set_blah 1 2\n\
             set_case_analysis 0 sel1"
        in
        check Alcotest.int "two survivors" 2 (List.length cmds);
        check
          Alcotest.(list string)
          "golden"
          [ "t.sdc:2:1: error[sdc.unknown-command]: unknown command set_blah" ]
          (rendered diags));
    tc "truncated file: unterminated bracket diagnostic" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover ~file:"t.sdc"
            "set_case_analysis 0 sel1\nset_false_path -from [get_ports in1"
        in
        check Alcotest.int "one survivor" 1 (List.length cmds);
        match diags with
        | [ d ] ->
          check Alcotest.string "code" "lex.unterminated-bracket" d.Diag.code;
          check Alcotest.bool "located" true (d.Diag.dloc <> None)
        | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
    tc "semicolon resynchronisation keeps same-line commands" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover "set_bogus 1; set_case_analysis 0 sel1"
        in
        check Alcotest.int "one survivor" 1 (List.length cmds);
        check Alcotest.int "one diag" 1 (List.length diags));
    tc "multiple errors each recover independently" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover
            "set_blah\n\
             create_clock -period 1 -name a [get_ports clk1]\n\
             set_false_path -wrong_flag\n\
             set_case_analysis 1 sel1"
        in
        check Alcotest.int "two survivors" 2 (List.length cmds);
        check Alcotest.int "two diags" 2 (List.length diags);
        check Alcotest.bool "all error severity" true
          (List.for_all (fun d -> d.Diag.severity = Diag.Error) diags));
    tc "strict parse of the same input still raises" (fun () ->
        expect_parse_error ~line:1 "unknown command set_blah"
          "set_blah\nset_case_analysis 1 sel1");
    tc "clean input yields no diagnostics" (fun () ->
        let cmds, diags =
          Parser.parse_string_recover
            "create_clock -period 1 -name c [get_ports clk1]"
        in
        check Alcotest.int "one" 1 (List.length cmds);
        check Alcotest.(list string) "none" [] (rendered diags));
  ]

(* Resolve diagnostics through the robust front end. *)
let robust_resolve_cases =
  [
    tc "unknown port resolves to a located warning diagnostic" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        let r =
          Resolve.mode_of_string_robust ~file:"t.sdc" d ~name:"t"
            "set_case_analysis 0 nosuchpin"
        in
        check
          Alcotest.(list string)
          "golden"
          [ "t.sdc: warning[sdc.unresolved-object]: unresolved object nosuchpin" ]
          (rendered r.Resolve.diags);
        check Alcotest.bool "not an error" false (Diag.has_errors r.Resolve.diags));
    tc "corrupt command quarantinable, valid clock still resolves" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        let r =
          Resolve.mode_of_string_robust ~file:"t.sdc" d ~name:"t"
            "create_clock -period bogus -name c [get_ports clk1]\n\
             create_clock -period 2 -name ok [get_ports clk2]"
        in
        check Alcotest.(list string) "good clock kept" [ "ok" ]
          (Mode.clock_names r.Resolve.mode);
        check Alcotest.bool "has errors" true (Diag.has_errors r.Resolve.diags));
    tc "strict mode_of_string still raises on syntax" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        match Resolve.mode_of_string d ~name:"t" "set_blah 1" with
        | _ -> Alcotest.fail "expected Parser.Error"
        | exception Parser.Error _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Writer round trips                                                  *)

let corpus =
  [
    "create_clock -name clkA -period 10 [get_ports clk1]";
    "create_clock -name clkB -period 20 -waveform {5 15} -add [get_ports clk2]";
    "create_generated_clock -name g -source [get_pins u/Z] -master_clock m -divide_by 4 -invert [get_pins r/CP]";
    "set_clock_latency -source -min 0.98 [get_clocks clkB]";
    "set_clock_uncertainty -setup 0.1 [get_clocks clkA]";
    "set_clock_transition -max 0.2 [get_clocks clkA]";
    "set_propagated_clock [get_clocks clkA]";
    "set_input_delay -clock clkA 2 [get_ports in1]";
    "set_output_delay -clock clkB -min -add_delay 1.5 [get_ports out1]";
    "set_case_analysis 1 sel2";
    "set_disable_timing -from A -to Z [get_cells u1]";
    "set_false_path -from [get_clocks clkA] -through [get_pins {a/Z b/Z}] -to [get_pins rX/D]";
    "set_multicycle_path 2 -start -from [get_clocks clkA]";
    "set_min_delay 0.5 -to [get_ports out1]";
    "set_max_delay 4 -through [get_pins u/Z]";
    "set_clock_groups -asynchronous -group [get_clocks a] -group [get_clocks b]";
    "set_clock_sense -stop_propagation -clock [get_clocks clkA] [get_pins mux1/Z]";
    "set_load 0.02 [get_ports out1]";
    "set_max_transition 0.4 [get_ports out1]";
    "set_max_capacitance 0.05 [get_pins inv1/Z]";
    "set_false_path -rise_from [get_clocks clkA] -to [get_pins rX/D]";
    "set_false_path -from [get_clocks clkA] -fall_to [get_pins rX/D]";
    "set_false_path -setup -to [get_pins rX/D]";
    "set_false_path -hold -to [get_pins rX/D]";
  ]

let writer_cases =
  [
    tc "write/parse round trip over corpus" (fun () ->
        List.iter
          (fun src ->
            let cmd = parse1 src in
            let written = Writer.write_command cmd in
            let cmd2 = parse1 written in
            if cmd <> cmd2 then
              Alcotest.failf "round trip failed for %s ->\n  %s" src written)
          corpus);
    tc "write/parse twice is stable" (fun () ->
        List.iter
          (fun src ->
            let w1 = Writer.write_command (parse1 src) in
            let w2 = Writer.write_command (parse1 w1) in
            check Alcotest.string "fixpoint" w1 w2)
          corpus);
    tc "float formatting survives" (fun () ->
        let cmd = parse1 "set_max_delay 0.123456 -to x" in
        match parse1 (Writer.write_command cmd) with
        | Ast.Set_max_delay b -> check (Alcotest.float 1e-9) "v" 0.123456 b.Ast.db_value
        | _ -> Alcotest.fail "wrong");
    tc "write_commands adds header" (fun () ->
        let out = Writer.write_commands ~header:"hello" [ parse1 "set_case_analysis 0 a" ] in
        check Alcotest.bool "header" true (String.length out > 0 && out.[0] = '#'));
  ]

(* ------------------------------------------------------------------ *)
(* Resolve and Mode (against the paper circuit)                        *)

let circuit = Mm_workload.Paper_circuit.build

let resolve_ok ?(name = "t") src =
  let d = circuit () in
  let r = Resolve.mode_of_string d ~name src in
  d, r

let resolve_cases =
  [
    tc "glob expands ports" (fun () ->
        let _d, r = resolve_ok "create_clock -name c -period 1 [get_ports clk*]" in
        check Alcotest.(list string) "warnings" [] (Resolve.warnings r);
        match r.Resolve.mode.Mode.clocks with
        | [ c ] -> check Alcotest.int "four sources" 4 (List.length c.Mode.sources)
        | _ -> Alcotest.fail "one clock expected");
    tc "unnamed clock takes source name" (fun () ->
        let _d, r = resolve_ok "create_clock -period 1 [get_ports clk1]" in
        check Alcotest.(list string) "clock names" [ "clk1" ]
          (Mode.clock_names r.Resolve.mode));
    tc "clock without add displaces same-source clock" (fun () ->
        let _d, r =
          resolve_ok
            "create_clock -name a -period 1 [get_ports clk1]\n\
             create_clock -name b -period 2 [get_ports clk1]"
        in
        check Alcotest.(list string) "only b" [ "b" ] (Mode.clock_names r.Resolve.mode);
        check Alcotest.bool "warned" true (Resolve.warnings r <> []));
    tc "clock with add keeps both" (fun () ->
        let _d, r =
          resolve_ok
            "create_clock -name a -period 1 [get_ports clk1]\n\
             create_clock -name b -period 2 -add [get_ports clk1]"
        in
        check Alcotest.(list string) "both" [ "a"; "b" ] (Mode.clock_names r.Resolve.mode));
    tc "generated clock inherits scaled period" (fun () ->
        let _d, r =
          resolve_ok
            "create_clock -name m -period 4 [get_ports clk1]\n\
             create_generated_clock -name g -source [get_ports clk1] -divide_by 2 \
             [get_pins mux1/Z]"
        in
        match Mode.find_clock r.Resolve.mode "g" with
        | Some g -> check (Alcotest.float 0.) "period" 8. g.Mode.period
        | None -> Alcotest.fail "no generated clock");
    tc "unresolved object warns" (fun () ->
        let _d, r = resolve_ok "set_case_analysis 0 nosuchpin" in
        check Alcotest.bool "warned" true (Resolve.warnings r <> []));
    tc "conflicting case in one mode warns" (fun () ->
        let _d, r = resolve_ok "set_case_analysis 0 sel1\nset_case_analysis 1 sel1" in
        check Alcotest.bool "warned" true (Resolve.warnings r <> []);
        check Alcotest.int "kept first" 1 (List.length r.Resolve.mode.Mode.cases));
    tc "exceptions resolve points" (fun () ->
        let d, r =
          resolve_ok
            "create_clock -name c -period 1 [get_ports clk1]\n\
             set_false_path -from [get_clocks c] -through inv1/Z -to [get_pins rX/D]"
        in
        match r.Resolve.mode.Mode.exceptions with
        | [ e ] ->
          check Alcotest.bool "from clock" true (e.Mode.exc_from = Some [ Mode.P_clock "c" ]);
          check Alcotest.bool "through" true
            (e.Mode.exc_through = [ [ Design.pin_of_name_exn d "inv1/Z" ] ]);
          check Alcotest.bool "to pin" true
            (e.Mode.exc_to = Some [ Mode.P_pin (Design.pin_of_name_exn d "rX/D") ])
        | _ -> Alcotest.fail "one exception expected");
    tc "all_registers -clock_pins yields CP pins" (fun () ->
        let d, r =
          resolve_ok
            "create_clock -name c -period 1 [get_ports clk1]\n\
             set_false_path -from [all_registers -clock_pins]"
        in
        match r.Resolve.mode.Mode.exceptions with
        | [ { Mode.exc_from = Some points; _ } ] ->
          check Alcotest.int "six CPs" 6 (List.length points);
          ignore d
        | _ -> Alcotest.fail "expected");
    tc "io delay direction and clock recorded" (fun () ->
        let _d, r =
          resolve_ok
            "create_clock -name c -period 1 [get_ports clk1]\n\
             set_input_delay 0.5 -clock c [get_ports in1]\n\
             set_output_delay 0.7 -clock c [get_ports out1]"
        in
        check Alcotest.int "two" 2 (List.length r.Resolve.mode.Mode.io_delays);
        check Alcotest.int "one input" 1
          (List.length
             (List.filter (fun d -> d.Mode.iod_input) r.Resolve.mode.Mode.io_delays)));
    tc "io delay unknown clock warns" (fun () ->
        let _d, r = resolve_ok "set_input_delay 0.5 -clock nope [get_ports in1]" in
        check Alcotest.bool "warned" true (Resolve.warnings r <> []));
    tc "clock attrs accumulate" (fun () ->
        let _d, r =
          resolve_ok
            "create_clock -name c -period 1 [get_ports clk1]\n\
             set_clock_latency -source -min 0.5 [get_clocks c]\n\
             set_clock_latency -source -max 0.8 [get_clocks c]\n\
             set_clock_uncertainty -setup 0.1 [get_clocks c]\n\
             set_propagated_clock [get_clocks c]"
        in
        let attr = Mode.attr_of_clock r.Resolve.mode "c" in
        check Alcotest.bool "min" true (attr.Mode.src_latency_min = Some 0.5);
        check Alcotest.bool "max" true (attr.Mode.src_latency_max = Some 0.8);
        check Alcotest.bool "unc" true (attr.Mode.uncertainty_setup = Some 0.1);
        check Alcotest.bool "prop" true attr.Mode.propagated);
  ]

let mode_cases =
  [
    tc "clock_key equal for identical clocks" (fun () ->
        let d = circuit () in
        let m1 =
          (Resolve.mode_of_string d ~name:"a" "create_clock -name x -period 10 [get_ports clk1]").Resolve.mode
        and m2 =
          (Resolve.mode_of_string d ~name:"b" "create_clock -name y -period 10 [get_ports clk1]").Resolve.mode
        in
        let c1 = List.hd m1.Mode.clocks and c2 = List.hd m2.Mode.clocks in
        check Alcotest.string "same key" (Mode.clock_key c1) (Mode.clock_key c2));
    tc "clock_key differs on waveform" (fun () ->
        let d = circuit () in
        let m1 =
          (Resolve.mode_of_string d ~name:"a"
             "create_clock -name x -period 10 [get_ports clk1]").Resolve.mode
        and m2 =
          (Resolve.mode_of_string d ~name:"b"
             "create_clock -name x -period 10 -waveform {5 10} [get_ports clk1]").Resolve.mode
        in
        check Alcotest.bool "differ" true
          (Mode.clock_key (List.hd m1.Mode.clocks)
          <> Mode.clock_key (List.hd m2.Mode.clocks)));
    tc "to_commands resolves back to equal mode" (fun () ->
        let d = circuit () in
        let src =
          "create_clock -name c -period 2 [get_ports clk1]\n\
           set_clock_uncertainty -setup 0.1 [get_clocks c]\n\
           set_input_delay 0.5 -clock c [get_ports in1]\n\
           set_case_analysis 0 sel1\n\
           set_false_path -from [get_clocks c] -to [get_pins rX/D]\n\
           set_load 0.01 [get_ports out1]"
        in
        let m = (Resolve.mode_of_string d ~name:"m" src).Resolve.mode in
        let r2 = Resolve.mode d ~name:"m" (Mode.to_commands m) in
        check Alcotest.(list string) "no warnings" [] (Resolve.warnings r2);
        let m2 = r2.Resolve.mode in
        check Alcotest.(list string) "clocks" (Mode.clock_names m) (Mode.clock_names m2);
        check Alcotest.int "cases" (List.length m.Mode.cases) (List.length m2.Mode.cases);
        check Alcotest.int "io" (List.length m.Mode.io_delays) (List.length m2.Mode.io_delays);
        check Alcotest.bool "exceptions" true
          (List.for_all2 Mode.exc_equal m.Mode.exceptions m2.Mode.exceptions);
        check Alcotest.int "envs" (List.length m.Mode.envs) (List.length m2.Mode.envs));
    tc "exc_equal ignores point order" (fun () ->
        let e pins =
          Mode.exc ~from_:(List.map (fun p -> Mode.P_pin p) pins) Mode.False_path
        in
        check Alcotest.bool "eq" true (Mode.exc_equal (e [ 1; 2 ]) (e [ 2; 1 ]));
        check Alcotest.bool "neq" false (Mode.exc_equal (e [ 1 ]) (e [ 2 ])));
    tc "io_delay_equal distinguishes minmax" (fun () ->
        let d v mm =
          {
            Mode.iod_input = true;
            iod_pin = 0;
            iod_clock = Some "c";
            iod_clock_fall = false;
            iod_minmax = mm;
            iod_value = v;
            iod_add = false;
          }
        in
        check Alcotest.bool "eq" true (Mode.io_delay_equal (d 1. Ast.Both) (d 1. Ast.Both));
        check Alcotest.bool "neq mm" false (Mode.io_delay_equal (d 1. Ast.Min) (d 1. Ast.Both));
        check Alcotest.bool "neq v" false (Mode.io_delay_equal (d 1. Ast.Both) (d 2. Ast.Both)));
  ]

(* Property: parse(write(parse src)) = parse src over random picks from
   a seeded corpus expansion. *)
let roundtrip_prop =
  let gen =
    QCheck2.Gen.(
      let* name = oneofl [ "a"; "bb"; "clk_1" ] in
      let* period = map (fun i -> float_of_int i /. 4.) (1 -- 100) in
      let* add = bool in
      let* wf = opt (pair (float_range 0. 5.) (float_range 5. 10.)) in
      return
        (Ast.Create_clock
           {
             Ast.cc_name = Some name;
             period;
             waveform = wf;
             add;
             sources = [ Ast.Get_ports [ "p1" ] ];
             comment = None;
           }))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"create_clock write/parse round trip" ~count:500 gen
       (fun cmd ->
         match Parser.parse_string (Writer.write_command cmd) with
         | [ cmd2 ] -> cmd = cmd2
         | _ -> false))

(* Full-mode round trip over the workload generator's SDC: resolve,
   serialise with Mode.to_commands, re-resolve, and compare the
   semantic summaries. *)
let full_mode_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"generated modes round-trip via to_commands"
       ~count:12
       QCheck2.Gen.(pair (int_range 1 5000) (int_range 0 3))
       (fun (seed, index) ->
         let design, info =
           Mm_workload.Gen_design.generate
             {
               Mm_workload.Gen_design.default_params with
               Mm_workload.Gen_design.seed;
               regs_per_domain = 16;
               stages = 2;
               combo_depth = 2;
             }
         in
         let suite =
           {
             Mm_workload.Gen_modes.sp_seed = seed + 7;
             families = [ 4 ];
             base_period = 2.0;
             scan_family = false;
           }
         in
         let src =
           Mm_workload.Gen_modes.sdc_of_mode_spec info suite ~family:0 ~index
         in
         let m = (Resolve.mode_of_string design ~name:"m" src).Resolve.mode in
         let r2 = Resolve.mode design ~name:"m" (Mode.to_commands m) in
         Resolve.warnings r2 = []
         &&
         let m2 = r2.Resolve.mode in
         Mode.clock_names m = Mode.clock_names m2
         && List.length m.Mode.io_delays = List.length m2.Mode.io_delays
         && List.sort compare m.Mode.cases = List.sort compare m2.Mode.cases
         && List.length m.Mode.exceptions = List.length m2.Mode.exceptions
         && List.for_all2 Mode.exc_equal m.Mode.exceptions m2.Mode.exceptions
         && List.length m.Mode.drcs = List.length m2.Mode.drcs
         && List.length m.Mode.groups = List.length m2.Mode.groups))

let () =
  Alcotest.run "mm_sdc"
    [
      "lexer", lexer_cases;
      "parser", parser_cases;
      "recover", recover_cases;
      "robust-resolve", robust_resolve_cases;
      "writer", writer_cases @ [ roundtrip_prop ];
      "resolve", resolve_cases;
      "mode", mode_cases @ [ full_mode_roundtrip_prop ];
    ]
