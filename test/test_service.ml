(* @service-smoke: the merge service against the shipped binary.

   In-process suites cover the service building blocks — the Httpd
   request-size/method contract (413/405), fingerprint canonicalization,
   the result cache's LRU + disk layers and the POST /jobs wire parser.

   Subprocess golden tests drive `modemerge daemon`:

   - the same workload submitted to a daemon at jobs=1 and jobs=4 must
     fetch byte-identical files to the one-shot `modemerge merge`, on a
     cache miss AND on the repeat submission's cache hit;
   - the cache hit must skip the merge pipeline entirely: cache_hits
     increments and no new run.start event is journaled;
   - two concurrent identical submissions coalesce — one pipeline run,
     both jobs done with identical bytes;
   - DELETE cancels a chaos-stretched running job promptly;
   - a full queue answers 429 with a Retry-After header.

   Port races are impossible by construction: the daemon binds
   127.0.0.1:0 and the test parses the OS-assigned port from the
   `daemon listening on http://…` stderr line. *)

module Httpd = Mm_util.Httpd
module Runlog = Mm_util.Runlog
module Metrics = Mm_util.Metrics
module Fingerprint = Mm_service.Fingerprint
module Job = Mm_service.Job
module Rcache = Mm_service.Rcache

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Scratch dir, fixture, process plumbing                              *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_root =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_service_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () -> rm_rf dir);
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec find i = i + nl <= hl && (String.sub hay i nl = needle || find (i + 1)) in
  find 0

let modemerge =
  lazy
    (match Sys.getenv_opt "MODEMERGE" with
    | Some p when p <> "" -> p
    | _ ->
      Alcotest.fail
        "MODEMERGE not set: run this suite via `dune build @service-smoke`, \
         which wires in the modemerge binary")

let fixture =
  lazy
    (let exe = Lazy.force modemerge in
     let dir = Filename.concat scratch_root "fixture" in
     let rc =
       Sys.command
         (Printf.sprintf
            "%s gen -o %s --seed 11 --domains 2 --regs 10 --families 3,2 > %s \
             2>&1"
            (Filename.quote exe) (Filename.quote dir)
            (Filename.quote (Filename.concat scratch_root "gen.log")))
     in
     check Alcotest.int "gen exits cleanly" 0 rc;
     let sdcs =
       List.map
         (fun n -> Filename.concat dir (n ^ ".sdc"))
         [ "m0_0"; "m0_1"; "m0_2"; "m1_0"; "m1_1" ]
     in
     Filename.concat dir "design.nl", sdcs)

let spawn ?chaos ~tag args =
  let exe = Lazy.force modemerge in
  let out = Filename.concat scratch_root (tag ^ ".out") in
  let err = Filename.concat scratch_root (tag ^ ".err") in
  let argv = Array.of_list (exe :: args) in
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 9 && String.sub kv 0 9 = "MM_CHAOS="))
    in
    Array.of_list
      (match chaos with
      | None -> base
      | Some spec -> ("MM_CHAOS=" ^ spec) :: base)
  in
  let flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] in
  let out_fd = Unix.openfile out flags 0o644 in
  let err_fd = Unix.openfile err flags 0o644 in
  let pid =
    Fun.protect
      ~finally:(fun () ->
        Unix.close out_fd;
        Unix.close err_fd)
      (fun () -> Unix.create_process_env exe argv env Unix.stdin out_fd err_fd)
  in
  pid, out, err

let reaped : (int, Unix.process_status) Hashtbl.t = Hashtbl.create 4

let status_code pid = function
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED s -> Alcotest.failf "child %d killed by signal %d" pid s
  | Unix.WSTOPPED s -> Alcotest.failf "child %d stopped by signal %d" pid s

let wait_exit pid =
  match Hashtbl.find_opt reaped pid with
  | Some st -> status_code pid st
  | None ->
    let _, st = Unix.waitpid [] pid in
    Hashtbl.replace reaped pid st;
    status_code pid st

let alive pid =
  if Hashtbl.mem reaped pid then false
  else
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> true
    | _, st ->
      Hashtbl.replace reaped pid st;
      false

(* Poll the daemon's stderr for "daemon listening on http://ADDR:PORT/"
   and return the port. *)
let wait_for_port ~err ~pid =
  let deadline = Unix.gettimeofday () +. 10. in
  let marker = "daemon listening on http://" in
  let parse () =
    let text = if Sys.file_exists err then read_file err else "" in
    let ml = String.length marker and tl = String.length text in
    let rec find i =
      if i + ml > tl then None
      else if String.sub text i ml = marker then Some (i + ml)
      else find (i + 1)
    in
    match find 0 with
    | None -> None
    | Some start -> (
      match String.index_from_opt text start '/' with
      | None -> None
      | Some slash -> (
        let hostport = String.sub text start (slash - start) in
        match String.rindex_opt hostport ':' with
        | None -> None
        | Some c ->
          int_of_string_opt
            (String.sub hostport (c + 1) (String.length hostport - c - 1))))
  in
  let rec go () =
    match parse () with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "no listening line in %s after 10s (child %s)" err
          (if alive pid then "alive" else "dead")
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

(* Start a daemon, run [f port], always reap the child. *)
let with_daemon ?chaos ~tag args f =
  let pid, _, err = spawn ?chaos ~tag ([ "daemon"; "127.0.0.1:0" ] @ args) in
  Fun.protect
    ~finally:(fun () ->
      if alive pid then begin
        Unix.kill pid Sys.sigterm;
        ignore (wait_exit pid)
      end)
    (fun () ->
      let port = wait_for_port ~err ~pid in
      f port)

(* ------------------------------------------------------------------ *)
(* HTTP helpers                                                        *)

let http ?meth ?body ~port path =
  try Httpd.request ?meth ?body ~port path
  with Unix.Unix_error (e, _, _) ->
    Alcotest.failf "request %s failed: %s" path (Unix.error_message e)

let http_status ?meth ?body ~port path =
  let s, _, _ = http ?meth ?body ~port path in
  s

let json_of ~port path =
  let status, _, body = http ~port path in
  check Alcotest.int (path ^ " answers 200") 200 status;
  try Runlog.parse_json body
  with Runlog.Parse_error e -> Alcotest.failf "%s not JSON (%s)" path e

let jstr j name =
  match Runlog.member name j with Some (Runlog.Str s) -> Some s | _ -> None

(* The spec JSON the `submit` subcommand would send, with a [salt]
   comment appended to the first source so tests can mint jobs with
   distinct fingerprints on demand. *)
let spec_body ?(salt = "") ?(priority = 0) () =
  let netlist, sdcs = Lazy.force fixture in
  let q s = Printf.sprintf {|"%s"|} (Metrics.json_escape s) in
  let sources =
    List.mapi
      (fun i path ->
        let text = read_file path in
        let text = if i = 0 && salt <> "" then text ^ "# " ^ salt ^ "\n" else text in
        Printf.sprintf {|{"name":%s,"text":%s}|}
          (q (Filename.remove_extension (Filename.basename path)))
          (q text))
      sdcs
  in
  Printf.sprintf
    {|{"design":{"format":"nl","text":%s},"sources":[%s],"priority":%d}|}
    (q (read_file netlist))
    (String.concat "," sources)
    priority

let submit_raw ?salt ?priority ~port () =
  http ~meth:"POST" ~body:(spec_body ?salt ?priority ()) ~port "/jobs"

let job_id body =
  match jstr (Runlog.parse_json body) "id" with
  | Some id -> id
  | None -> Alcotest.failf "no job id in %s" body
  | exception Runlog.Parse_error e -> Alcotest.failf "bad job JSON: %s" e

let wait_job ~port id =
  let deadline = Unix.gettimeofday () +. 60. in
  let rec poll () =
    let j = json_of ~port (Printf.sprintf "/jobs/%s" id) in
    match jstr j "state" with
    | Some ("queued" | "running") ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "job %s still pending after 60s" id
      else begin
        Unix.sleepf 0.05;
        poll ()
      end
    | Some state -> state, j
    | None -> Alcotest.failf "job %s status carries no state" id
  in
  poll ()

let fetch_files ~port id =
  let manifest = json_of ~port (Printf.sprintf "/jobs/%s/result" id) in
  let names =
    match Runlog.member "files" manifest with
    | Some (Runlog.Arr files) ->
      List.filter_map (fun f -> jstr f "name") files
    | _ -> Alcotest.failf "job %s manifest has no files" id
  in
  List.map
    (fun name ->
      let status, _, bytes =
        http ~port (Printf.sprintf "/jobs/%s/result/%s" id name)
      in
      check Alcotest.int (name ^ " fetch answers 200") 200 status;
      name, bytes)
    names

let counter_value ~port name =
  let _, _, body = http ~port "/metrics" in
  let prefix = name ^ " " in
  List.fold_left
    (fun acc line ->
      if
        String.length line > String.length prefix
        && String.sub line 0 (String.length prefix) = prefix
      then
        float_of_string_opt
          (String.sub line (String.length prefix)
             (String.length line - String.length prefix))
      else acc)
    None
    (String.split_on_char '\n' body)
  |> Option.value ~default:0.

let event_kind_count ~port kind =
  let _, _, body = http ~port "/events?n=500" in
  let needle = Printf.sprintf {|"kind":"%s"|} kind in
  List.length
    (List.filter
       (fun l -> contains needle l)
       (String.split_on_char '\n' body))

(* ------------------------------------------------------------------ *)
(* In-process: Httpd limits and methods                                *)

let test_httpd_limits () =
  let echo (rq : Httpd.request) =
    Httpd.respond ~content_type:"text/plain" rq.Httpd.rq_body
  in
  let server =
    Httpd.start ~port:0 ~max_header_bytes:1024 ~max_body_bytes:64 echo
  in
  Fun.protect
    ~finally:(fun () -> Httpd.stop server)
    (fun () ->
      let port = Httpd.port server in
      (* POST round-trip under the limit. *)
      let status, _, body =
        Httpd.request ~meth:"POST" ~body:"hello service" ~port "/echo"
      in
      check Alcotest.int "small POST accepted" 200 status;
      check Alcotest.string "body echoed" "hello service" body;
      (* Over-limit body: 413, connection still answers properly. *)
      let status, _, _ =
        Httpd.request ~meth:"POST" ~body:(String.make 65 'x') ~port "/echo"
      in
      check Alcotest.int "over-limit body is 413" 413 status;
      (* Over-limit header block: 413. *)
      let status, _, _ =
        Httpd.request ~port (Printf.sprintf "/%s" (String.make 1200 'h'))
      in
      check Alcotest.int "over-limit header block is 413" 413 status;
      (* Unknown method: 405 with an Allow header. *)
      let status, headers, _ = Httpd.request ~meth:"PUT" ~port "/echo" in
      check Alcotest.int "unknown method is 405" 405 status;
      check Alcotest.bool "405 carries Allow" true
        (Httpd.header "allow" headers <> None);
      (* Transfer-Encoding bodies are not implemented: 501. *)
      let status, _, _ = Httpd.request ~meth:"DELETE" ~port "/echo" in
      check Alcotest.int "DELETE reaches the handler" 200 status)

(* ------------------------------------------------------------------ *)
(* In-process: fingerprints                                            *)

let test_fingerprint () =
  let fp ?(design = "module top\n") ?(src = "create_clock -period 10 clk\n")
      ?(policy = "strict") ?(check_eq = true) ?tolerance ?(annotate = false) ()
      =
    Fingerprint.compute ~design_format:"nl" ~design_text:design
      ~sources:[ "m0", src ] ~policy ~check_equivalence:check_eq ~tolerance
      ~annotate
  in
  check Alcotest.string "identical specs share a fingerprint" (fp ()) (fp ());
  check Alcotest.string "CRLF canonicalizes to LF for keying"
    (fp ~src:"create_clock -period 10 clk\n" ())
    (fp ~src:"create_clock -period 10 clk\r\n" ());
  check Alcotest.bool "source text is keyed" true
    (fp () <> fp ~src:"create_clock -period 20 clk\n" ());
  check Alcotest.bool "design is keyed" true
    (fp () <> fp ~design:"module other\n" ());
  check Alcotest.bool "policy is keyed" true (fp () <> fp ~policy:"permissive" ());
  check Alcotest.bool "equivalence checking is keyed" true
    (fp () <> fp ~check_eq:false ());
  check Alcotest.bool "tolerance is keyed" true
    (fp () <> fp ~tolerance:(0.1, 0.01) ());
  check Alcotest.bool "annotate is keyed" true (fp () <> fp ~annotate:true ());
  check Alcotest.bool "source order is keyed" true
    (Fingerprint.compute ~design_format:"nl" ~design_text:"d"
       ~sources:[ "a", "x"; "b", "y" ] ~policy:"strict"
       ~check_equivalence:true ~tolerance:None ~annotate:false
    <> Fingerprint.compute ~design_format:"nl" ~design_text:"d"
         ~sources:[ "b", "y"; "a", "x" ] ~policy:"strict"
         ~check_equivalence:true ~tolerance:None ~annotate:false)

let test_spec_of_json () =
  let good =
    {|{"design":{"format":"nl","text":"module top\n"},
       "sources":[{"name":"m0","text":"create_clock -period 10 clk\n"}],
       "options":{"policy":"permissive","annotate":true},
       "priority":3}|}
  in
  (match Job.spec_of_json good with
  | Error msg -> Alcotest.failf "good spec rejected: %s" msg
  | Ok spec ->
    check Alcotest.string "format" "nl" spec.Job.sp_design_format;
    check Alcotest.int "priority" 3 spec.Job.sp_priority;
    check Alcotest.bool "annotate" true spec.Job.sp_options.Job.opt_annotate;
    check Alcotest.bool "policy" true
      (spec.Job.sp_options.Job.opt_policy = Mm_core.Merge_flow.Permissive);
    check Alcotest.bool "check_equivalence defaults on" true
      spec.Job.sp_options.Job.opt_check_equivalence);
  let rejected body =
    match Job.spec_of_json body with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "missing design rejected" true
    (rejected {|{"sources":[{"name":"m0","text":"x"}]}|});
  check Alcotest.bool "empty sources rejected" true
    (rejected {|{"design":{"text":"d"},"sources":[]}|});
  check Alcotest.bool "unknown policy rejected" true
    (rejected
       {|{"design":{"text":"d"},"sources":[{"name":"m0","text":"x"}],
          "options":{"policy":"yolo"}}|});
  check Alcotest.bool "malformed JSON rejected" true (rejected "not json")

(* ------------------------------------------------------------------ *)
(* In-process: result cache                                            *)

let outcome tagged =
  {
    Job.oc_files = [ "merged_0.sdc", "# " ^ tagged ^ "\n" ];
    oc_summary =
      {
        Job.sm_n_individual = 2;
        sm_n_merged = 1;
        sm_reduction_percent = 50.;
        sm_runtime_s = 0.01;
        sm_quarantined = [];
        sm_degraded = 0;
      };
  }

let test_rcache_lru () =
  let c = Rcache.create ~entries:2 () in
  Rcache.store c "fp1" (outcome "one");
  Rcache.store c "fp2" (outcome "two");
  check Alcotest.bool "fp1 hits" true (Rcache.find c "fp1" <> None);
  (* fp1 is now most-recently-used; inserting fp3 evicts fp2. *)
  Rcache.store c "fp3" (outcome "three");
  check Alcotest.bool "LRU fp2 evicted" true (Rcache.find c "fp2" = None);
  check Alcotest.bool "fp1 survived" true (Rcache.find c "fp1" <> None);
  check Alcotest.bool "fp3 present" true (Rcache.find c "fp3" <> None);
  check Alcotest.bool "unknown misses" true (Rcache.find c "nope" = None);
  check Alcotest.bool "stats mention eviction" true
    (contains {|"evictions":1|} (Rcache.stats_json c))

let test_rcache_disk () =
  let dir = Filename.concat scratch_root "rcache_disk" in
  rm_rf dir;
  let c1 = Rcache.create ~dir ~entries:4 () in
  Rcache.store c1 "fpd" (outcome "persisted");
  (* A fresh instance over the same dir serves the entry from disk. *)
  let c2 = Rcache.create ~dir ~entries:4 () in
  (match Rcache.find c2 "fpd" with
  | Some o ->
    check
      Alcotest.(list (pair string string))
      "disk round-trip preserves bytes"
      [ "merged_0.sdc", "# persisted\n" ]
      o.Job.oc_files
  | None -> Alcotest.fail "disk entry not found by fresh instance");
  (* Corrupt file: treated as absent and deleted, never served. *)
  let corrupt = Filename.concat dir "deadbeef.result" in
  Out_channel.with_open_bin corrupt (fun oc ->
      Out_channel.output_string oc "modemerge-rcache 1 deadbeef junk\ngarbage");
  let c3 = Rcache.create ~dir ~entries:4 () in
  check Alcotest.bool "corrupt entry misses" true
    (Rcache.find c3 "deadbeef" = None);
  check Alcotest.bool "corrupt entry deleted" false (Sys.file_exists corrupt)

(* ------------------------------------------------------------------ *)
(* Subprocess: byte identity, miss then hit, at jobs=1 and jobs=4      *)

let oneshot_files jobs =
  let netlist, sdcs = Lazy.force fixture in
  let out = Filename.concat scratch_root (Printf.sprintf "oneshot_j%d" jobs) in
  rm_rf out;
  let pid, _, _ =
    spawn
      ~tag:(Printf.sprintf "oneshot_j%d" jobs)
      ([ "merge"; "-n"; netlist; "-j"; string_of_int jobs; "-o"; out ] @ sdcs)
  in
  check Alcotest.int "one-shot merge exits cleanly" 0 (wait_exit pid);
  let names =
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".sdc")
         (Array.to_list (Sys.readdir out)))
  in
  check Alcotest.bool "one-shot produced merged SDCs" true (names <> []);
  List.map (fun n -> n, read_file (Filename.concat out n)) names

let test_roundtrip jobs () =
  let reference = oneshot_files jobs in
  with_daemon
    ~tag:(Printf.sprintf "daemon_j%d" jobs)
    [ "-j"; string_of_int jobs ]
    (fun port ->
      (* Cache miss: the daemon computes, bytes match the one-shot CLI. *)
      let status, _, body = submit_raw ~port () in
      check Alcotest.bool "first submission accepted" true
        (status = 200 || status = 202);
      let id1 = job_id body in
      let state, j1 = wait_job ~port id1 in
      check Alcotest.string "first job completes" "done" state;
      check Alcotest.(option string) "first job was computed" (Some "computed")
        (jstr j1 "cache");
      check
        Alcotest.(list (pair string string))
        (Printf.sprintf "miss bytes identical to one-shot at jobs=%d" jobs)
        reference (fetch_files ~port id1);
      (* Baseline pipeline evidence before the repeat. *)
      let runs_before = event_kind_count ~port "run.start" in
      let hits_before = counter_value ~port "cache_hits" in
      (* Cache hit: same spec again — immediately done, same bytes, no
         pipeline run. *)
      let status, _, body = submit_raw ~port () in
      check Alcotest.int "repeat submission answers 200 (already done)" 200
        status;
      let id2 = job_id body in
      check Alcotest.bool "repeat gets a fresh job id" true (id1 <> id2);
      let state, j2 = wait_job ~port id2 in
      check Alcotest.string "repeat job done" "done" state;
      check Alcotest.(option string) "repeat served from cache" (Some "hit")
        (jstr j2 "cache");
      check
        Alcotest.(list (pair string string))
        (Printf.sprintf "hit bytes identical to one-shot at jobs=%d" jobs)
        reference (fetch_files ~port id2);
      check Alcotest.bool "cache.hits incremented" true
        (counter_value ~port "cache_hits" > hits_before);
      check Alcotest.int "cache hit skipped the merge pipeline" runs_before
        (event_kind_count ~port "run.start");
      (* /cache/stats agrees. *)
      let stats = json_of ~port "/cache/stats" in
      check Alcotest.bool "stats count the hit" true
        (match Runlog.member "hits" stats with
        | Some (Runlog.Num n) -> n >= 1.
        | _ -> false))

(* ------------------------------------------------------------------ *)
(* Subprocess: concurrent duplicates coalesce                          *)

let test_coalesce () =
  with_daemon ~chaos:"pool.task@*=delay:100" ~tag:"daemon_coalesce"
    [ "-j"; "2" ]
    (fun port ->
      let _, _, b1 = submit_raw ~salt:"coalesce" ~port () in
      let id1 = job_id b1 in
      (* Same fingerprint while the first is still in flight. *)
      let _, _, b2 = submit_raw ~salt:"coalesce" ~port () in
      let id2 = job_id b2 in
      check Alcotest.bool "second submission is a distinct job" true
        (id1 <> id2);
      let s1, _ = wait_job ~port id1 in
      let s2, j2 = wait_job ~port id2 in
      check Alcotest.string "primary done" "done" s1;
      check Alcotest.string "follower done" "done" s2;
      check Alcotest.bool "follower did not recompute" true
        (match jstr j2 "cache" with
        | Some ("coalesced" | "hit") -> true
        | _ -> false);
      check
        Alcotest.(list (pair string string))
        "coalesced bytes identical"
        (fetch_files ~port id1) (fetch_files ~port id2))

(* ------------------------------------------------------------------ *)
(* Subprocess: prompt cancellation                                     *)

let test_cancel () =
  with_daemon ~chaos:"pool.task@*=delay:400" ~tag:"daemon_cancel"
    [ "-j"; "1" ]
    (fun port ->
      let _, _, body = submit_raw ~salt:"cancel" ~port () in
      let id = job_id body in
      (* Let it reach the scheduler, then cancel. *)
      Unix.sleepf 0.2;
      let status, _, _ =
        http ~meth:"DELETE" ~port (Printf.sprintf "/jobs/%s" id)
      in
      check Alcotest.bool "DELETE accepted" true (status = 200);
      let t0 = Unix.gettimeofday () in
      let state, _ = wait_job ~port id in
      check Alcotest.string "job cancelled" "cancelled" state;
      check Alcotest.bool "cancellation is prompt" true
        (Unix.gettimeofday () -. t0 < 30.);
      (* A cancelled job has no fetchable result. *)
      check Alcotest.int "no result for a cancelled job" 409
        (http_status ~port (Printf.sprintf "/jobs/%s/result" id));
      (* Cancelling a finished job is a conflict. *)
      check Alcotest.int "re-cancel conflicts" 409
        (http_status ~meth:"DELETE" ~port (Printf.sprintf "/jobs/%s" id));
      check Alcotest.int "cancel of unknown job is 404" 404
        (http_status ~meth:"DELETE" ~port "/jobs/j999"))

(* ------------------------------------------------------------------ *)
(* Subprocess: admission control                                       *)

let test_queue_full () =
  with_daemon ~chaos:"pool.task@*=delay:400" ~tag:"daemon_full"
    [ "-j"; "1"; "--queue-cap"; "1" ]
    (fun port ->
      (* Fill: one running + one queued (distinct fingerprints so
         nothing coalesces). *)
      let _, _, b1 = submit_raw ~salt:"full1" ~port () in
      let id1 = job_id b1 in
      (* Wait until the first job is actually running so the second
         occupies the single queue slot. *)
      let deadline = Unix.gettimeofday () +. 30. in
      let rec wait_running () =
        let j = json_of ~port (Printf.sprintf "/jobs/%s" id1) in
        match jstr j "state" with
        | Some "running" -> ()
        | Some "queued" when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.02;
          wait_running ()
        | Some other -> Alcotest.failf "first job %s instead of running" other
        | None -> Alcotest.fail "first job lost"
      in
      wait_running ();
      let s2, _, _ = submit_raw ~salt:"full2" ~port () in
      check Alcotest.int "second job queues" 202 s2;
      (* Queue is now at capacity: 429 + Retry-After. *)
      let status, headers, body = submit_raw ~salt:"full3" ~port () in
      check Alcotest.int "over-capacity submission is 429" 429 status;
      check Alcotest.bool "429 carries Retry-After" true
        (Httpd.header "retry-after" headers <> None);
      check Alcotest.bool "429 body names the queue" true
        (contains "queue full" body);
      check Alcotest.bool "job.rejected counted" true
        (counter_value ~port "job_rejected" >= 1.);
      (* The queue endpoint reflects the pressure. *)
      let q = json_of ~port "/queue" in
      check Alcotest.bool "queue_cap reported" true
        (Runlog.member "queue_cap" q = Some (Runlog.Num 1.)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "service-smoke"
    [
      ( "httpd",
        [
          tc "size limits (413), methods (405), POST round-trip"
            test_httpd_limits;
        ] );
      ( "fingerprint",
        [
          tc "keyed on content + options, canonicalized line endings"
            test_fingerprint;
          tc "POST /jobs wire parser accepts/rejects" test_spec_of_json;
        ] );
      ( "rcache",
        [
          tc "memory LRU evicts least-recently-used" test_rcache_lru;
          tc "disk layer round-trips and rejects corruption" test_rcache_disk;
        ] );
      ( "daemon",
        [
          tc "jobs=1: miss + hit both byte-identical to one-shot; hit skips \
              pipeline"
            (test_roundtrip 1);
          tc "jobs=4: miss + hit both byte-identical to one-shot; hit skips \
              pipeline"
            (test_roundtrip 4);
          tc "concurrent identical submissions coalesce" test_coalesce;
          tc "DELETE cancels a running job promptly" test_cancel;
          tc "full queue answers 429 + Retry-After" test_queue_full;
        ] );
    ]
