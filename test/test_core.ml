(* Tests for Mm_core: relation propagation, the 3-pass comparison,
   preliminary merging (all section-3.1 steps), refinement,
   equivalence checking, mergeability and the full flow — anchored on
   the paper's worked examples (Constraint Sets 1-6, Tables 1-4). *)
module Design = Mm_netlist.Design
module Library = Mm_netlist.Library
module Resolve = Mm_sdc.Resolve
module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context
module Cs = Mm_timing.Constraint_state
module Pc = Mm_workload.Paper_circuit
module Relation = Mm_core.Relation
module Relation_prop = Mm_core.Relation_prop
module Compare = Mm_core.Compare
module Prelim = Mm_core.Prelim
module Refine = Mm_core.Refine
module Equiv = Mm_core.Equiv
module Mergeability = Mm_core.Mergeability
module Merge_flow = Mm_core.Merge_flow

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let resolve d name src =
  let r = Resolve.mode_of_string d ~name src in
  (match Resolve.warnings r with
  | [] -> ()
  | w -> Alcotest.failf "resolve warnings: %s" (String.concat "; " w));
  r.Resolve.mode

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)

let rel l c s h = Relation.make ~launch:l ~capture:c ~setup:s ~hold:h ()

let relation_cases =
  [
    tc "normalize sorts and dedups" (fun () ->
        let a = rel "b" "b" Cs.Valid Cs.Valid and b = rel "a" "a" Cs.False_path Cs.False_path in
        check Alcotest.int "dedup" 2 (List.length (Relation.normalize [ a; b; a ]));
        check Alcotest.bool "sorted" true
          (List.hd (Relation.normalize [ a; b ]) = b));
    tc "rename maps both clocks" (fun () ->
        let r = Relation.rename (fun c -> c ^ "_1") (rel "x" "y" Cs.Valid Cs.Valid) in
        check Alcotest.string "launch" "x_1" r.Relation.launch;
        check Alcotest.string "capture" "y_1" r.Relation.capture);
    tc "states_of collects distinct setup states" (fun () ->
        let rs = [ rel "a" "a" Cs.Valid Cs.Valid; rel "a" "b" Cs.Valid Cs.False_path ] in
        check Alcotest.int "one" 1 (List.length (Relation.states_of rs)));
    tc "set_to_string paper style" (fun () ->
        check Alcotest.string "fp v" "FP, V"
          (Relation.set_to_string
             [ rel "a" "a" Cs.False_path Cs.False_path; rel "a" "a" Cs.Valid Cs.Valid ]));
  ]

(* ------------------------------------------------------------------ *)
(* Relation_prop: Table 1 exactly                                      *)

let find_rels d rels name =
  let pin = Design.pin_of_name_exn d name in
  match List.assoc_opt pin rels with Some r -> r | None -> []

let relprop_cases =
  [
    tc "Table 1 states" (fun () ->
        let d = Pc.build () in
        let ctx = Context.create d (Pc.constraint_set1 d) in
        let rels = Relation_prop.endpoint_relations ctx in
        let setup name =
          List.map (fun r -> r.Relation.setup_state) (find_rels d rels name)
        in
        check Alcotest.(list string) "rX MCP(2)" [ "MCP(2)" ]
          (List.map Cs.to_string (setup "rX/D"));
        check Alcotest.(list string) "rY FP" [ "FP" ]
          (List.map Cs.to_string (setup "rY/D"));
        check Alcotest.(list string) "rZ valid" [ "V" ]
          (List.map Cs.to_string (setup "rZ/D")));
    tc "FP overrides MCP on overlapping path" (fun () ->
        (* Path ii has both constraints; rY/D must report FP only. *)
        let d = Pc.build () in
        let ctx = Context.create d (Pc.constraint_set1 d) in
        let rels = Relation_prop.endpoint_relations ctx in
        check Alcotest.bool "no MCP at rY" true
          (List.for_all
             (fun r -> r.Relation.setup_state <> Cs.Multicycle 2)
             (find_rels d rels "rY/D")));
    tc "data clock masks stop at constants" (fun () ->
        let d = Pc.build () in
        let _a, b = Pc.constraint_set5 d in
        let ctx = Context.create d b in
        let masks = Relation_prop.data_clock_masks ctx in
        (* In mode B rB/Q is case 0: no launch tag. *)
        check Alcotest.int "rB/Q silent" 0
          masks.(Design.pin_of_name_exn d "rB/Q"));
    tc "cones are directional" (fun () ->
        let d = Pc.build () in
        let ctx = Context.create d (Pc.constraint_set1 d) in
        let fwd = Relation_prop.forward_cone ctx [ Design.pin_of_name_exn d "rA/Q" ] in
        check Alcotest.bool "reaches rY/D" true
          fwd.(Design.pin_of_name_exn d "rY/D");
        check Alcotest.bool "not rZ/D" false fwd.(Design.pin_of_name_exn d "rZ/D");
        let bwd = Relation_prop.backward_cone ctx [ Design.pin_of_name_exn d "rY/D" ] in
        check Alcotest.bool "back to rB/Q" true
          bwd.(Design.pin_of_name_exn d "rB/Q"));
  ]

(* ------------------------------------------------------------------ *)
(* Compare: Tables 2-4 exactly                                         *)

let set6_compare () =
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  let sides =
    List.map
      (fun (m : Mode.t) ->
        { Compare.ctx = Context.create d m; rename = Prelim.rename_of prelim m.Mode.mode_name })
      [ a; b ]
  in
  let merged = Context.create d prelim.Prelim.merged in
  d, Compare.run ~individual:sides ~merged ()

let verdict_at rows pin_of get d name =
  List.filter_map
    (fun r ->
      let ep, bucket = get r in
      if ep = Design.pin_of_name_exn d name then Some bucket.Compare.bk_verdict
      else None)
    rows
  |> fun l -> ignore pin_of; l

let compare_cases =
  [
    tc "Table 2 verdicts (X, A, A)" (fun () ->
        let d, cmp = set6_compare () in
        let v name =
          verdict_at cmp.Compare.pass1 () (fun r -> r.Compare.p1_ep, r.Compare.p1_bucket) d name
        in
        check Alcotest.(list string) "rX mismatch" [ "X" ]
          (List.map Compare.verdict_to_string (v "rX/D"));
        check Alcotest.(list string) "rY ambiguous" [ "A" ]
          (List.map Compare.verdict_to_string (v "rY/D"));
        check Alcotest.(list string) "rZ ambiguous" [ "A" ]
          (List.map Compare.verdict_to_string (v "rZ/D")));
    tc "Table 3 rows" (fun () ->
        let d, cmp = set6_compare () in
        let row sp ep =
          List.find_map
            (fun r ->
              if
                r.Compare.p2_sp = Design.pin_of_name_exn d sp
                && r.Compare.p2_ep = Design.pin_of_name_exn d ep
              then Some r.Compare.p2_bucket.Compare.bk_verdict
              else None)
            cmp.Compare.pass2
        in
        check Alcotest.(option string) "rA->rY X" (Some "X")
          (Option.map Compare.verdict_to_string (row "rA/CP" "rY/D"));
        check Alcotest.(option string) "rB->rY M" (Some "M")
          (Option.map Compare.verdict_to_string (row "rB/CP" "rY/D"));
        check Alcotest.(option string) "rC->rZ A" (Some "A")
          (Option.map Compare.verdict_to_string (row "rC/CP" "rZ/D")));
    tc "Table 4 rows" (fun () ->
        let d, cmp = set6_compare () in
        let row through =
          List.find_map
            (fun r ->
              if r.Compare.p3_through = Design.pin_of_name_exn d through then
                Some r.Compare.p3_bucket.Compare.bk_verdict
              else None)
            cmp.Compare.pass3
        in
        check Alcotest.(option string) "inv3/A X" (Some "X")
          (Option.map Compare.verdict_to_string (row "inv3/A"));
        check Alcotest.(option string) "and2/A M" (Some "M")
          (Option.map Compare.verdict_to_string (row "and2/A")));
    tc "fixes reproduce CSTR1-3" (fun () ->
        let d, cmp = set6_compare () in
        let texts =
          List.map
            (fun (f : Compare.fix) ->
              Mm_sdc.Writer.write_command (Mode.commands_of_exc d f.Compare.fix_exc))
            cmp.Compare.fixes
        in
        check Alcotest.bool "cstr1" true
          (List.mem "set_false_path -to [get_pins rX/D]" texts);
        check Alcotest.bool "cstr2" true
          (List.mem "set_false_path -from [get_pins rA/CP] -to [get_pins rY/D]" texts);
        check Alcotest.bool "cstr3" true
          (List.mem
             "set_false_path -from [get_pins rC/CP] -through [get_pins inv3/A] -to [get_pins rZ/D]"
             texts);
        check Alcotest.int "exactly three" 3 (List.length texts));
    tc "no soundness violations on set 6" (fun () ->
        let _d, cmp = set6_compare () in
        check Alcotest.(list string) "no unsoundness" [] cmp.Compare.unsound;
        check Alcotest.(list string) "no pessimism" [] cmp.Compare.pessimism);
    tc "over-constrained merged mode is flagged" (fun () ->
        (* Hand-build a 'merged' mode that false-paths everything; the
           comparison must report soundness violations, not fixes. *)
        let d = Pc.build () in
        let a = resolve d "A" "create_clock -name c -period 10 [get_ports clk1]" in
        let bad =
          resolve d "M"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -to [get_pins rX/D]"
        in
        let cmp =
          Compare.run
            ~individual:[ { Compare.ctx = Context.create d a; rename = Fun.id } ]
            ~merged:(Context.create d bad) ()
        in
        check Alcotest.bool "unsoundness reported" true (cmp.Compare.unsound <> []);
        check Alcotest.bool "not clean" false (Compare.is_clean cmp));
    tc "identical modes compare clean" (fun () ->
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let cmp =
          Compare.run
            ~individual:[ { Compare.ctx = Context.create d m; rename = Fun.id } ]
            ~merged:(Context.create d m) ()
        in
        check Alcotest.bool "clean" true (Compare.is_clean cmp);
        check Alcotest.int "no fixes" 0 (List.length cmp.Compare.fixes));
  ]

(* ------------------------------------------------------------------ *)
(* Prelim: sections 3.1.1-3.1.10                                       *)

let prelim_cases =
  [
    tc "3.1.1 clock union with rename (Constraint Set 2)" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set2 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        check Alcotest.(list string) "four clocks"
          [ "clkA"; "clkB"; "clkB_1"; "clkD" ]
          (Mode.clock_names p.Prelim.merged);
        check Alcotest.string "B's clkB renamed" "clkB_1"
          (Prelim.rename_of p "B" "clkB");
        check Alcotest.string "B's clkC maps to clkB" "clkB"
          (Prelim.rename_of p "B" "clkC");
        check Alcotest.string "A's clkA unchanged" "clkA"
          (Prelim.rename_of p "A" "clkA"));
    tc "3.1.2 latency merged to min of mins" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set2 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        let attr = Mode.attr_of_clock p.Prelim.merged "clkB" in
        check Alcotest.bool "0.98" true (attr.Mode.src_latency_min = Some 0.98);
        check Alcotest.(list string) "no conflicts" [] p.Prelim.conflicts);
    tc "3.1.2 beyond tolerance is a conflict" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_clock_latency -source -min 1.0 [get_clocks c]"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_clock_latency -source -min 2.0 [get_clocks c]"
        in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.bool "conflict" true (p.Prelim.conflicts <> []));
    tc "3.1.3 io delays unioned with add_delay" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set5 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        let ins =
          List.filter (fun x -> x.Mode.iod_input) p.Prelim.merged.Mode.io_delays
        in
        check Alcotest.int "two input delays" 2 (List.length ins);
        check Alcotest.int "one add_delay" 1
          (List.length (List.filter (fun x -> x.Mode.iod_add) ins)));
    tc "3.1.4 agreeing cases kept, conflicting dropped" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_case_analysis 0 sel1\nset_case_analysis 1 sel2"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_case_analysis 0 sel1\nset_case_analysis 0 sel2"
        in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "sel1 kept" 1 (List.length p.Prelim.merged.Mode.cases);
        check Alcotest.int "sel2 dropped twice" 2
          (List.length p.Prelim.dropped_cases));
    tc "3.1.4 case present in one mode only is dropped" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\nset_case_analysis 0 sel1"
        and b = resolve d "B" "create_clock -name c -period 10 [get_ports clk1]" in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "dropped" 0 (List.length p.Prelim.merged.Mode.cases));
    tc "3.1.5 disable intersection" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_disable_timing inv1/A\nset_disable_timing inv2/A"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\nset_disable_timing inv1/A"
        in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "only common" 1 (List.length p.Prelim.merged.Mode.disables));
    tc "3.1.6 env conflict flagged" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\nset_load 0.01 [get_ports out1]"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\nset_load 0.03 [get_ports out1]"
        in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.bool "conflict" true (p.Prelim.conflicts <> []));
    tc "3.1.7 clock exclusivity derived for non-coexisting clocks" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set5 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        check Alcotest.int "one exclusive group" 1
          (List.length p.Prelim.merged.Mode.groups));
    tc "3.1.7 coexisting clocks are not separated" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name x -period 10 [get_ports clk1]\n\
             create_clock -name y -period 5 [get_ports clk2]"
        in
        let p = Prelim.merge ~name:"M" [ a; a ] in
        check Alcotest.int "no groups" 0 (List.length p.Prelim.merged.Mode.groups));
    tc "3.1.8 clock refinement (Constraint Set 3)" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set3 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        check
          Alcotest.(list string)
          "disables sel1 sel2" [ "sel1"; "sel2" ]
          (List.map (Design.pin_name d) p.Prelim.inferred_disables);
        check
          Alcotest.(list (pair string string))
          "stops clkA at mux1/Z"
          [ "clkA", "mux1/Z" ]
          (List.map (fun (c, pin) -> c, Design.pin_name d pin) p.Prelim.inferred_senses));
    tc "3.1.9 common exceptions added directly" (fun () ->
        let d = Pc.build () in
        let src =
          "create_clock -name c -period 10 [get_ports clk1]\n\
           set_multicycle_path 2 -through [get_pins inv1/Z]"
        in
        let a = resolve d "A" src and b = resolve d "B" src in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "one exception" 1
          (List.length p.Prelim.merged.Mode.exceptions);
        check Alcotest.int "nothing dropped" 0
          (List.length p.Prelim.dropped_exceptions));
    tc "3.1.10 uniquification (Constraint Set 4)" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set4 d in
        let p = Prelim.merge ~name:"A'+B" [ a; b ] in
        match p.Prelim.uniquified with
        | [ (mode_name, e) ] ->
          check Alcotest.string "from mode A" "A" mode_name;
          check Alcotest.string "rewritten form"
            "set_multicycle_path 2 -from [get_clocks clkA] -through [get_pins rA/CP]"
            (Mm_sdc.Writer.write_command (Mode.commands_of_exc d e))
        | _ -> Alcotest.fail "expected exactly one uniquified exception");
    tc "3.1.10 shared-clock FP is dropped not uniquified" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let p = Prelim.merge ~name:"A+B" [ a; b ] in
        check Alcotest.int "all dropped" 5 (List.length p.Prelim.dropped_exceptions);
        check Alcotest.int "none added" 0
          (List.length p.Prelim.merged.Mode.exceptions));
    tc "3.1.10 shared-clock MCP is a conflict" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_multicycle_path 2 -to [get_pins rX/D]"
        and b = resolve d "B" "create_clock -name c -period 10 [get_ports clk1]" in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.bool "conflict" true (p.Prelim.conflicts <> []));
    tc "inherited clock groups survive with renamed clocks" (fun () ->
        let d = Pc.build () in
        let src p2 =
          Printf.sprintf
            "create_clock -name x -period 10 [get_ports clk1]\n\
             create_clock -name y -period %g [get_ports clk2]\n\
             set_clock_groups -asynchronous -group [get_clocks x] -group [get_clocks y]"
            p2
        in
        let a = resolve d "A" (src 5.) and b = resolve d "B" (src 7.) in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        (* B's y has a different period -> renamed y_1; its inherited
           group must reference the renamed clock. *)
        check Alcotest.bool "renamed group present" true
          (List.exists
             (fun g -> List.mem [ "y_1" ] g.Mode.grp_clocks)
             p.Prelim.merged.Mode.groups));
    tc "propagated flag is OR across modes" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_propagated_clock [get_clocks c]"
        and b = resolve d "B" "create_clock -name c -period 10 [get_ports clk1]" in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.bool "propagated" true
          (Mode.attr_of_clock p.Prelim.merged "c").Mode.propagated);
    tc "uncertainty merged to max" (fun () ->
        let d = Pc.build () in
        let mk name v =
          resolve d name
            (Printf.sprintf
               "create_clock -name c -period 10 [get_ports clk1]\n\
                set_clock_uncertainty -setup %g [get_clocks c]"
               v)
        in
        let p = Prelim.merge ~name:"M" [ mk "A" 0.10; mk "B" 0.101 ] in
        check Alcotest.bool "max kept" true
          ((Mode.attr_of_clock p.Prelim.merged "c").Mode.uncertainty_setup
          = Some 0.101));
    tc "env constraints merged to the heavier value" (fun () ->
        let d = Pc.build () in
        let mk name v =
          resolve d name
            (Printf.sprintf
               "create_clock -name c -period 10 [get_ports clk1]\n\
                set_load %g [get_ports out1]"
               v)
        in
        let p = Prelim.merge ~name:"M" [ mk "A" 0.0100; mk "B" 0.0101 ] in
        check Alcotest.(list string) "within tolerance" [] p.Prelim.conflicts;
        match p.Prelim.merged.Mode.envs with
        | [ e ] -> check (Alcotest.float 1e-12) "max" 0.0101 e.Mode.envc_value
        | _ -> Alcotest.fail "one env expected");
    tc "merging a mode with itself is identity-like" (fun () ->
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let p = Prelim.merge ~name:"M" [ m; m ] in
        check Alcotest.(list string) "clocks" (Mode.clock_names m)
          (Mode.clock_names p.Prelim.merged);
        check Alcotest.int "exceptions" 2
          (List.length p.Prelim.merged.Mode.exceptions);
        check Alcotest.(list string) "no conflicts" [] p.Prelim.conflicts);
  ]

(* ------------------------------------------------------------------ *)
(* Refine + Equiv                                                      *)

let refine_cases =
  [
    tc "data refinement adds CSTR6 (Constraint Set 5)" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set5 d in
        let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
        let r = Refine.run ~prelim ~individual:[ a; b ] () in
        check
          Alcotest.(list (pair string string))
          "stop ClkB at rB/Q"
          [ "ClkB", "rB/Q" ]
          (List.map
             (fun (c, p) -> c, Design.pin_name d p)
             r.Refine.data_clock_fixes));
    tc "refined set 6 is equivalent" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
        let r = Refine.run ~prelim ~individual:[ a; b ] () in
        check Alcotest.bool "final compare clean" true
          (Compare.is_clean r.Refine.final_compare);
        let e =
          Equiv.check ~individual:[ a; b ]
            ~rename:(Prelim.rename_of prelim)
            ~merged:r.Refine.refined ()
        in
        check Alcotest.bool "equivalent" true e.Equiv.equivalent;
        check Alcotest.int "three exceptions added" 3
          (List.length r.Refine.added_exceptions));
    tc "equiv detects a missing refinement constraint" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
        (* The unrefined preliminary mode times extra paths. *)
        let e =
          Equiv.check ~individual:[ a; b ]
            ~rename:(Prelim.rename_of prelim)
            ~merged:prelim.Prelim.merged ()
        in
        check Alcotest.bool "not equivalent" false e.Equiv.equivalent;
        check Alcotest.bool "mismatches found" true (e.Equiv.mismatches > 0));
    tc "refinement is idempotent" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
        let r1 = Refine.run ~prelim ~individual:[ a; b ] () in
        let prelim2 = { prelim with Prelim.merged = r1.Refine.refined } in
        let r2 = Refine.run ~prelim:prelim2 ~individual:[ a; b ] () in
        check Alcotest.int "nothing more to add" 0
          (List.length r2.Refine.added_exceptions);
        ignore d);
  ]

(* ------------------------------------------------------------------ *)
(* Mergeability + Merge_flow                                           *)

let merge_cases =
  [
    tc "hard conflicts veto pairs" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\nset_load 0.01 [get_ports out1]"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\nset_load 0.05 [get_ports out1]"
        in
        let pc = Mergeability.check_pair a b in
        check Alcotest.bool "not mergeable" false pc.Mergeability.mergeable;
        check Alcotest.bool "has reason" true (pc.Mergeability.reasons <> []));
    tc "compatible modes are mergeable" (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let pc = Mergeability.check_pair a b in
        check Alcotest.bool "mergeable" true pc.Mergeability.mergeable);
    tc "greedy cliques cover all modes disjointly" (fun () ->
        let _design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let m = Mergeability.analyze modes in
        let covered = List.concat m.Mergeability.cliques in
        check Alcotest.int "all covered" (List.length modes) (List.length covered);
        check Alcotest.int "disjoint" (List.length covered)
          (List.length (List.sort_uniq compare covered)));
    tc "tiny preset forms the expected two cliques" (fun () ->
        let _design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let m = Mergeability.analyze modes in
        check Alcotest.int "two cliques" 2 (List.length m.Mergeability.cliques);
        check Alcotest.int "four edges missing across families" 2
          (List.length m.Mergeability.cliques));
    tc "full flow on tiny preset" (fun () ->
        let design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let r = Merge_flow.run modes in
        check Alcotest.int "4 -> 2" 2 r.Merge_flow.n_merged;
        check (Alcotest.float 1e-6) "50%" 50. r.Merge_flow.reduction_percent;
        List.iter
          (fun (g : Merge_flow.group) ->
            match g.Merge_flow.grp_equiv with
            | Some e -> check Alcotest.bool "equivalent" true e.Equiv.equivalent
            | None -> ())
          r.Merge_flow.groups;
        ignore design);
    tc "summary row shape" (fun () ->
        let _design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let r = Merge_flow.run ~check_equivalence:false modes in
        let row = Merge_flow.summary_row ~design_name:"T" ~size_cells:117 r in
        check Alcotest.int "six columns" 6 (List.length row);
        check Alcotest.string "name" "T" (List.hd row));
    tc "single mode passes through flow" (fun () ->
        let d = Pc.build () in
        let m = Pc.constraint_set1 d in
        let r = Merge_flow.run [ m ] in
        check Alcotest.int "one group" 1 r.Merge_flow.n_merged;
        check Alcotest.bool "same mode" true
          (List.hd (Merge_flow.merged_modes r) == m));
  ]

(* ------------------------------------------------------------------ *)
(* Soundness property on random paper-circuit mode pairs               *)

let random_mode_src rng =
  let open Mm_util.Prng in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "create_clock -name c -period 10 [get_ports clk1]\n";
  if bool rng then
    Buffer.add_string buf "create_clock -name c2 -period 5 [get_ports clk2]\n";
  List.iter
    (fun sel ->
      if bool rng then
        Buffer.add_string buf
          (Printf.sprintf "set_case_analysis %d %s\n" (int rng 2) sel))
    [ "sel1"; "sel2" ];
  List.iter
    (fun ep ->
      if int rng 4 = 0 then
        Buffer.add_string buf (Printf.sprintf "set_false_path -to %s\n" ep))
    [ "rX/D"; "rY/D"; "rZ/D" ];
  if int rng 4 = 0 then
    Buffer.add_string buf "set_false_path -through inv3/Z\n";
  Buffer.contents buf

let soundness_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"merge of random mode pairs is equivalent" ~count:25
       QCheck2.Gen.(int_range 0 100000)
       (fun seed ->
         let rng = Mm_util.Prng.create seed in
         let d = Pc.build () in
         let a = resolve d "A" (random_mode_src rng)
         and b = resolve d "B" (random_mode_src rng) in
         let pc = Mergeability.check_pair a b in
         if not pc.Mergeability.mergeable then true (* vetoed pairs are fine *)
         else begin
           let prelim = Prelim.merge ~name:"M" [ a; b ] in
           let r = Refine.run ~prelim ~individual:[ a; b ] () in
           let e =
             Equiv.check ~individual:[ a; b ]
               ~rename:(Prelim.rename_of prelim)
               ~merged:r.Refine.refined ()
           in
           e.Equiv.equivalent
         end))

let drc_and_clique_cases =
  [
    tc "DRC limits merge to the minimum" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_max_capacitance 0.05 [get_pins rA/Q]"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_max_capacitance 0.03 [get_pins rA/Q]"
        in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        match p.Prelim.merged.Mode.drcs with
        | [ l ] -> check (Alcotest.float 0.) "tightest" 0.03 l.Mode.drcl_value
        | _ -> Alcotest.fail "expected one merged limit");
    tc "exact clique cover beats or matches greedy" (fun () ->
        (* A 5-vertex graph where greedy's max-degree start is
           suboptimal: exact must never use more cliques. *)
        let rng = Mm_util.Prng.create 99 in
        for _ = 1 to 50 do
          let n = 6 in
          let adj = Array.make_matrix n n false in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              let e = Mm_util.Prng.bool rng in
              adj.(i).(j) <- e;
              adj.(j).(i) <- e
            done
          done;
          let g = List.length (Mergeability.greedy_cliques adj) in
          let e = List.length (Mergeability.exact_cliques adj) in
          check Alcotest.bool "exact <= greedy" true (e <= g);
          (* cover validity *)
          let cover = List.concat (Mergeability.exact_cliques adj) in
          check Alcotest.int "covers all" n
            (List.length (List.sort_uniq compare cover))
        done);
    tc "exact cliques are actual cliques" (fun () ->
        let adj =
          [|
            [| false; true; true; false |];
            [| true; false; true; false |];
            [| true; true; false; false |];
            [| false; false; false; false |];
          |]
        in
        let cover = Mergeability.exact_cliques adj in
        check Alcotest.int "two cliques" 2 (List.length cover);
        List.iter
          (fun clique ->
            List.iter
              (fun u ->
                List.iter
                  (fun v -> if u <> v then check Alcotest.bool "edge" true adj.(u).(v))
                  clique)
              clique)
          cover);
  ]

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)

let report_cases =
  [
    tc "relations table matches Table 1 layout" (fun () ->
        let d = Pc.build () in
        let ctx = Context.create d (Pc.constraint_set1 d) in
        let rels = Relation_prop.endpoint_relations ctx in
        let text = Mm_util.Tab.render (Mm_core.Report.relations_table d rels) in
        check Alcotest.bool "has MCP row" true (Str_probe.contains text "MCP(2)");
        check Alcotest.bool "has FP row" true (Str_probe.contains text "| FP");
        check Alcotest.bool "has header" true
          (Str_probe.contains text "Capture clock"));
    tc "pass tables carry verdict letters" (fun () ->
        let d, cmp = set6_compare () in
        let t1 = Mm_util.Tab.render (Mm_core.Report.pass1_table d cmp.Compare.pass1) in
        check Alcotest.bool "X present" true (Str_probe.contains t1 "| X");
        check Alcotest.bool "A present" true (Str_probe.contains t1 "| A");
        let t3 = Mm_util.Tab.render (Mm_core.Report.pass3_table d cmp.Compare.pass3) in
        check Alcotest.bool "through column" true (Str_probe.contains t3 "inv3/A"));
    tc "mergeability text lists cliques" (fun () ->
        let _design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let m = Mergeability.analyze modes in
        let text = Mm_core.Report.mergeability_text m in
        check Alcotest.bool "m1" true (Str_probe.contains text "M1:");
        check Alcotest.bool "m2" true (Str_probe.contains text "M2:"));
    tc "flow table renders a Table-5 row" (fun () ->
        let _design, _info, modes = Mm_workload.Presets.build Mm_workload.Presets.tiny in
        let r = Merge_flow.run ~check_equivalence:false modes in
        let text =
          Mm_util.Tab.render
            (Mm_core.Report.flow_table ~design:"tiny" ~cells:117 r)
        in
        check Alcotest.bool "name cell" true (Str_probe.contains text "tiny");
        check Alcotest.bool "reduction" true (Str_probe.contains text "50.0"));
    tc "fixes text includes provenance" (fun () ->
        let d, cmp = set6_compare () in
        let text = Mm_core.Report.fixes_text d cmp.Compare.fixes in
        check Alcotest.bool "reason comment" true (Str_probe.contains text "# pass1"));
  ]

(* ------------------------------------------------------------------ *)
(* Generated clocks in merging                                         *)

let genclock_cases =
  [
    tc "identical generated clocks merge as one" (fun () ->
        let d = Pc.build () in
        let src =
          "create_clock -name m -period 4 [get_ports clk1]\n\
           create_generated_clock -name g -source [get_ports clk1] -divide_by 2 \
           [get_pins mux1/Z]"
        in
        let a = resolve d "A" src and b = resolve d "B" src in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.(list string) "two clocks" [ "m"; "g" ]
          (Mode.clock_names p.Prelim.merged));
    tc "different divide ratios stay distinct" (fun () ->
        let d = Pc.build () in
        let mk name div =
          resolve d name
            (Printf.sprintf
               "create_clock -name m -period 4 [get_ports clk1]\n\
                create_generated_clock -name g -source [get_ports clk1] \
                -divide_by %d [get_pins mux1/Z]"
               div)
        in
        let p = Prelim.merge ~name:"M" [ mk "A" 2; mk "B" 4 ] in
        check Alcotest.(list string) "renamed" [ "m"; "g"; "g_1" ]
          (Mode.clock_names p.Prelim.merged);
        (* generated info survives serialisation *)
        let sdc = Mode.to_sdc p.Prelim.merged in
        check Alcotest.bool "divide_by in SDC" true
          (Str_probe.contains sdc "-divide_by 4"));
  ]

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)

let lint_of src =
  let d = Pc.build () in
  let m = resolve d "L" src in
  let ctx = Context.create d m in
  Mm_core.Lint.run ctx

let kinds fs = List.sort_uniq compare (List.map (fun f -> f.Mm_core.Lint.lint_kind) fs)

let lint_cases =
  [
    tc "unclocked registers flagged without clocks" (fun () ->
        let fs = lint_of "set_case_analysis 0 sel1" in
        check Alcotest.bool "flags registers" true
          (List.mem "unclocked-register" (kinds fs)));
    tc "fully constrained circuit has no clocking findings" (fun () ->
        let fs =
          lint_of
            "create_clock -name c -period 10 [get_ports clk1]\n\
             create_clock -name c2 -period 5 [get_ports clk2]\n\
             set_clock_groups -physically_exclusive -group [get_clocks c] -group [get_clocks c2]\n\
             set_input_delay 1 -clock c [get_ports {sel1 sel2 in1 clk3 clk4}]\n\
             set_output_delay 1 -clock c [get_ports out1]"
        in
        check Alcotest.bool "no unclocked" true
          (not (List.mem "unclocked-register" (kinds fs)));
        check Alcotest.bool "no unconstrained" true
          (not (List.mem "unconstrained-input" (kinds fs))));
    tc "unconstrained IO flagged" (fun () ->
        let fs = lint_of "create_clock -name c -period 10 [get_ports clk1]" in
        check Alcotest.bool "input" true (List.mem "unconstrained-input" (kinds fs));
        check Alcotest.bool "output" true
          (List.mem "unconstrained-output" (kinds fs)));
    tc "unused clock flagged" (fun () ->
        (* clk4 drives nothing in the Figure-1 circuit. *)
        let fs =
          lint_of
            "create_clock -name c -period 10 [get_ports clk1]\n\
             create_clock -name idle -period 4 [get_ports clk4]"
        in
        check Alcotest.bool "unused" true (List.mem "unused-clock" (kinds fs)));
    tc "dead through flagged" (fun () ->
        let fs =
          lint_of
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_case_analysis 0 rB/Q\n\
             set_false_path -through [get_pins and1/Z]"
        in
        check Alcotest.bool "dead" true (List.mem "dead-through" (kinds fs)));
    tc "cross-domain capture without groups flagged" (fun () ->
        let fs =
          lint_of
            "create_clock -name c -period 10 [get_ports clk1]\n\
             create_clock -name c2 -period 5 [get_ports clk2]"
        in
        check Alcotest.bool "flagged" true
          (List.mem "cross-domain-unrelated" (kinds fs));
        let fs2 =
          lint_of
            "create_clock -name c -period 10 [get_ports clk1]\n\
             create_clock -name c2 -period 5 [get_ports clk2]\n\
             set_clock_groups -asynchronous -group [get_clocks c] -group [get_clocks c2]"
        in
        check Alcotest.bool "silenced by groups" true
          (not (List.mem "cross-domain-unrelated" (kinds fs2))));
  ]

(* ------------------------------------------------------------------ *)
(* Rise/fall in merging                                                *)

let edge_merge_cases =
  [
    tc "common edge-restricted FP merges directly" (fun () ->
        let d = Pc.build () in
        let src =
          "create_clock -name c -period 10 [get_ports clk1]\n\
           set_false_path -rise_to [get_pins rX/D]"
        in
        let a = resolve d "A" src and b = resolve d "B" src in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "added once" 1
          (List.length p.Prelim.merged.Mode.exceptions);
        check Alcotest.bool "edge preserved" true
          ((List.hd p.Prelim.merged.Mode.exceptions).Mode.exc_to_edge
          = Mode.Rise_edge));
    tc "mismatched edge restrictions refine equivalently" (fun () ->
        (* A false-paths only rising arrivals at rX/D; B false-paths
           both. The merged mode must FP rise (both agree) and keep
           fall timed (valid in A). *)
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -rise_to [get_pins rX/D]"
        and b =
          resolve d "B"
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -to [get_pins rX/D]"
        in
        let prelim = Prelim.merge ~name:"M" [ a; b ] in
        let r = Refine.run ~prelim ~individual:[ a; b ] () in
        let e =
          Equiv.check ~individual:[ a; b ]
            ~rename:(Prelim.rename_of prelim)
            ~merged:r.Refine.refined ()
        in
        check Alcotest.bool "equivalent" true e.Equiv.equivalent;
        (* The added fix must be rise-restricted. *)
        check Alcotest.bool "rise-restricted fix" true
          (List.exists
             (fun x -> x.Mode.exc_to_edge = Mode.Rise_edge)
             r.Refine.added_exceptions));
    tc "pin-based edge-restricted exception is never uniquified" (fun () ->
        let d = Pc.build () in
        let a =
          resolve d "A"
            "create_clock -name cA -period 10 [get_ports clk1]\n\
             set_false_path -rise_from [get_pins rA/Q]"
        and b = resolve d "B" "create_clock -name cB -period 10 [get_ports clk2]" in
        let p = Prelim.merge ~name:"M" [ a; b ] in
        check Alcotest.int "dropped" 1 (List.length p.Prelim.dropped_exceptions);
        check Alcotest.int "not uniquified" 0 (List.length p.Prelim.uniquified));
  ]

let () =
  Alcotest.run "mm_core"
    [
      "edges", edge_merge_cases;
      "drc_clique", drc_and_clique_cases;
      "lint", lint_cases;
      "report", report_cases;
      "genclocks", genclock_cases;
      "relation", relation_cases;
      "relation_prop", relprop_cases;
      "compare", compare_cases;
      "prelim", prelim_cases;
      "refine", refine_cases;
      "merge", merge_cases;
      "property", [ soundness_prop ];
    ]
