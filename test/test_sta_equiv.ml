(* Differential suite for the compiled STA arena (DESIGN.md section 14).

   The production engine propagates arrival tags through flat slabs
   over the CSR timing arena; the pre-refactor one-Hashtbl-per-pin
   engine is kept as [Sta.propagate_reference]. This suite pins the
   byte-level contract of the refactor:

   - slab and reference propagation produce identical tag sets,
     arrivals and endpoint slacks on every workload;
   - the merge pipeline's audit JSON and merged SDC are byte-identical
     at jobs=1 and jobs=4;
   - incremental endpoint-relation re-propagation (the refinement-loop
     cache) equals a from-scratch recompute on randomized
     growing-exception families;
   - the [sta.propagate] chaos site fires.

   Runs on the default `dune runtest` gate via the @sta-equiv alias. *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context
module Graph = Mm_timing.Graph
module Clock_prop = Mm_timing.Clock_prop
module Sta = Mm_timing.Sta
module Relation_prop = Mm_core.Relation_prop
module Merge_flow = Mm_core.Merge_flow
module Audit = Mm_core.Audit
module Pc = Mm_workload.Paper_circuit
module Presets = Mm_workload.Presets
module Chaos = Mm_util.Chaos
module Metrics = Mm_util.Metrics

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* The workloads every differential case sweeps: the paper circuit
   under its worked constraint sets plus the tiny generated preset —
   ports, registers, muxed clocks, exceptions and case analysis are
   all represented. *)
let workloads () =
  let d = Pc.build () in
  let a6, b6 = Pc.constraint_set6 d in
  let a5, b5 = Pc.constraint_set5 d in
  let tiny_design, _info, tiny_modes = Presets.build Presets.tiny in
  List.map (fun m -> "paper:" ^ m.Mode.mode_name, d, m)
    [ Pc.constraint_set1 d; a5; b5; a6; b6 ]
  @ List.map
      (fun m -> "tiny:" ^ m.Mode.mode_name, tiny_design, m)
      tiny_modes

(* Reference tags at a pin as a sorted (key, amin, amax) list. *)
let reference_tags maps pin =
  Hashtbl.fold (fun k (amin, amax) acc -> (k, amin, amax) :: acc) maps.(pin) []
  |> List.sort compare

let slab_tags_sorted slab pin = List.sort compare (Sta.slab_tags slab pin)

(* ------------------------------------------------------------------ *)
(* Slab engine vs reference engine                                     *)

let fmt_tag (k, amin, amax) =
  Printf.sprintf "key=%d (clk=%d st=%d) amin=%h amax=%h" k (Sta.tag_clock k)
    (Sta.tag_state k) amin amax

let propagation_matches (label, design, mode) =
  let ctx = Context.create design mode in
  let slab, stats = Sta.propagate ctx in
  let maps, ref_tags = Sta.propagate_reference ctx in
  let n = Design.n_pins design in
  let total = ref 0 in
  for pin = 0 to n - 1 do
    let s = slab_tags_sorted slab pin in
    let r = reference_tags maps pin in
    total := !total + List.length s;
    if s <> r then
      Alcotest.failf "%s: tags diverge at %s\n  slab: %s\n  ref:  %s" label
        (Design.pin_name design pin)
        (String.concat "; " (List.map fmt_tag s))
        (String.concat "; " (List.map fmt_tag r))
  done;
  check Alcotest.int
    (label ^ ": tag instance count")
    ref_tags stats.Sta.ps_new_tags;
  check Alcotest.int (label ^ ": slab holds every tag") !total ref_tags

let slacks_match (label, design, mode) =
  let ctx = Context.create design mode in
  let slab, _ = Sta.propagate ctx in
  let maps, _ = Sta.propagate_reference ctx in
  let via_slab = Sta.slacks_with ctx (Sta.slab_tags slab) in
  let via_ref = Sta.slacks_with ctx (reference_tags maps) in
  if via_slab <> via_ref then
    Alcotest.failf "%s: endpoint slacks diverge between slab and reference"
      label;
  (* And the public entry point agrees with the oracle's slacks. *)
  let report = Sta.analyze ~ctx design mode in
  if report.Sta.rep_slacks <> via_ref then
    Alcotest.failf "%s: Sta.analyze slacks diverge from the reference engine"
      label

let engine_cases =
  [
    tc "slab tags equal reference tags on every workload" (fun () ->
        List.iter propagation_matches (workloads ()));
    tc "slab slacks equal reference slacks on every workload" (fun () ->
        List.iter slacks_match (workloads ()));
    tc "tag key packing round-trips" (fun () ->
        List.iter
          (fun (clock, state, edge) ->
            let k = Sta.tag_key ~edge clock state in
            check Alcotest.int "clock" clock (Sta.tag_clock k);
            check Alcotest.int "state" state (Sta.tag_state k);
            if Sta.tag_edge k <> edge then Alcotest.fail "edge")
          [
            -1, 0, Mode.Any_edge; 0, 0, Mode.Rise_edge; 5, 3, Mode.Fall_edge;
            126, 7, Mode.Any_edge; 42, 1, Mode.Rise_edge;
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Pipeline byte-identity across job counts                            *)

let pipeline_bytes ~jobs modes =
  (* Counters feed the audit's coverage section; reset so jobs=1 and
     jobs=4 start from identical cumulative state. *)
  Metrics.reset ();
  let r = Merge_flow.run ~jobs modes in
  Audit.to_json r ^ "\n"
  ^ String.concat "\n" (List.map Mode.to_sdc (Merge_flow.merged_modes r))

let jobs_invariance_cases =
  [
    tc "paper circuit: audit + merged SDC byte-identical at jobs=1/4"
      (fun () ->
        let d = Pc.build () in
        let a, b = Pc.constraint_set6 d in
        let b1 = pipeline_bytes ~jobs:1 [ a; b ] in
        let b4 = pipeline_bytes ~jobs:4 [ a; b ] in
        check Alcotest.int "byte count" (String.length b1) (String.length b4);
        if b1 <> b4 then Alcotest.fail "bytes differ");
    tc "tiny preset: audit + merged SDC byte-identical at jobs=1/4"
      (fun () ->
        let _design, _info, modes = Presets.build Presets.tiny in
        let b1 = pipeline_bytes ~jobs:1 modes in
        let b4 = pipeline_bytes ~jobs:4 modes in
        if b1 <> b4 then Alcotest.fail "bytes differ");
  ]

(* ------------------------------------------------------------------ *)
(* Incremental endpoint relations equal from-scratch recompute         *)

(* A growing-exception family over a generated design: each step
   appends one random exception (false path or multicycle, scoped by
   a random mix of -from clock / -through pin / -to endpoint), exactly
   the shape the refinement loop feeds the pass-1 cache. *)
let incremental_equals_scratch seed =
  let st = Random.State.make [| seed |] in
  let params =
    {
      Mm_workload.Gen_design.default_params with
      Mm_workload.Gen_design.seed = 1000 + seed;
      n_domains = 2;
      regs_per_domain = 12 + Random.State.int st 12;
      stages = 2 + Random.State.int st 2;
      combo_depth = 2;
      n_config_pins = 2;
      n_clock_muxes = 1;
    }
  in
  let design, info = Mm_workload.Gen_design.generate params in
  let suite =
    {
      Mm_workload.Gen_modes.sp_seed = 2000 + seed;
      families = [ 2 ];
      base_period = 2.0;
      scan_family = false;
    }
  in
  let modes = Mm_workload.Gen_modes.generate design info suite in
  let m0 = List.hd modes in
  let ctx0 = Context.create design m0 in
  let eps = Array.of_list (Graph.endpoint_pins ctx0.Context.graph) in
  let n_clocks = Clock_prop.n_clocks ctx0.Context.clocks in
  let random_exc () =
    let kind =
      if Random.State.bool st then Mode.False_path
      else
        Mode.Multicycle
          { mult = 1 + Random.State.int st 2; start = Random.State.bool st }
    in
    let from_ =
      if Random.State.int st 3 = 0 then None
      else
        Some
          [
            Mode.P_clock
              (Clock_prop.clock_name ctx0.Context.clocks
                 (Random.State.int st n_clocks));
          ]
    in
    let to_ =
      if Random.State.int st 3 = 0 then None
      else Some [ Mode.P_pin eps.(Random.State.int st (Array.length eps)) ]
    in
    let through =
      if Random.State.int st 2 = 0 then []
      else [ [ Random.State.int st (Design.n_pins design) ] ]
    in
    Mode.exc ?from_ ?to_ ~through kind
  in
  let cache = Relation_prop.create_ep_cache () in
  let rec steps mode k =
    let scratch = Relation_prop.endpoint_relations (Context.create design mode) in
    let incr =
      Relation_prop.endpoint_relations_cached cache
        (Context.with_exceptions ctx0 mode)
    in
    if scratch <> incr then
      QCheck2.Test.fail_reportf
        "seed %d, step %d: incremental endpoint relations diverge from \
         scratch recompute"
        seed k;
    k >= 4
    ||
    let mode' =
      { mode with Mode.exceptions = mode.Mode.exceptions @ [ random_exc () ] }
    in
    steps mode' (k + 1)
  in
  steps m0 0

let incremental_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"incremental endpoint relations equal from-scratch recompute"
       ~count:12
       QCheck2.Gen.(int_range 0 10000)
       incremental_equals_scratch)

(* ------------------------------------------------------------------ *)
(* Chaos: the sta.propagate fault site                                 *)

let chaos_cases =
  [
    tc "sta.propagate chaos site raises when armed" (fun () ->
        let d = Pc.build () in
        let mode = Pc.constraint_set1 d in
        (match Chaos.configure "sta.propagate@1=raise" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "chaos spec rejected: %s" e);
        Fun.protect ~finally:Chaos.clear (fun () ->
            (match Sta.analyze d mode with
            | _ -> Alcotest.fail "expected Chaos.Injected from sta.propagate"
            | exception Chaos.Injected site ->
              check Alcotest.string "site" "sta.propagate" site);
            (* Occurrence 1 consumed: the next analysis runs clean. *)
            ignore (Sta.analyze d mode)));
  ]

let () =
  Alcotest.run "sta_equiv"
    [
      "engine", engine_cases;
      "jobs_invariance", jobs_invariance_cases;
      "incremental", [ incremental_prop ];
      "chaos", chaos_cases;
    ]
