(* @chaos: execution-fault matrix for the governed merge pipeline.

   Three layers, all deterministic:

   - In-process recovery: every recoverable Fuzz_inputs chaos scenario
     (task delays, injected raises at the pool/retry/IO sites) is run
     at jobs=1 and jobs=4 and must produce audit + merged-SDC bytes
     identical to an unfaulted baseline — the retry rung absorbs the
     fault transparently, visible only in the govern.* metrics.
   - Degradation ladder: an exhausted cliques budget forces clique
     splits down to probed singletons; the outcome must preserve the
     mode partition and the paper's inclusion guarantee (a QCheck
     property re-checks this over random workloads and fault mixes at
     jobs=1 and jobs=4).
   - Subprocess kill/resume: the modemerge binary (path in the
     MODEMERGE env var, wired by the dune @chaos rule) is killed by a
     chaos fault after each pipeline stage and restarted with
     --checkpoint/--resume; the resumed run's audit JSON and merged
     SDC files must be byte-identical to an uninterrupted run, and a
     budget-degraded run must exit with status 3. *)

module Mode = Mm_sdc.Mode
module Diag = Mm_util.Diag
module Metrics = Mm_util.Metrics
module Govern = Mm_util.Govern
module Chaos = Mm_util.Chaos
module Merge_flow = Mm_core.Merge_flow
module Audit = Mm_core.Audit
module Equiv = Mm_core.Equiv
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes
module Fuzz = Mm_workload.Fuzz_inputs

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Shared fixture: one generated design + mode suite written to disk
   (run_files is used everywhere so the io.read chaos site is live).   *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_root =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_chaos_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () -> rm_rf dir);
  dir

let scratch name =
  let dir = Filename.concat scratch_root name in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  dir

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let families = [ 3; 2 ]

let mode_names =
  List.concat
    (List.mapi
       (fun family n ->
         List.init n (fun index -> Printf.sprintf "m%d_%d" family index))
       families)

let design, sdc_paths =
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed = 7;
      n_domains = 2;
      regs_per_domain = 12;
      stages = 2;
      combo_depth = 2;
    }
  in
  let design, info = Gen_design.generate params in
  let suite =
    { Gen_modes.sp_seed = 8; families; base_period = 2.0; scan_family = false }
  in
  let dir = scratch "workload" in
  let paths =
    List.concat
      (List.mapi
         (fun family n ->
           List.init n (fun index ->
               let path =
                 Filename.concat dir (Printf.sprintf "m%d_%d.sdc" family index)
               in
               write_file path
                 (Gen_modes.sdc_of_mode_spec info suite ~family ~index);
               path))
         families)
  in
  design, paths

(* Audit JSON + merged SDC text: exactly the bytes the acceptance
   contract compares. Metric counters feed the audit's coverage
   section, so every run resets them first. *)
let run_files ?(budgets = Merge_flow.default_budgets) ?checkpoint ~jobs ~spec
    () =
  Metrics.reset ();
  (match Chaos.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chaos spec %S rejected: %s" spec e);
  Fun.protect ~finally:Chaos.clear (fun () ->
      let r =
        Merge_flow.run_files ~policy:Merge_flow.Permissive ~jobs ~budgets
          ?checkpoint ~design sdc_paths
      in
      let bytes =
        Audit.to_json r ^ "\n"
        ^ String.concat "\n"
            (List.map Mode.to_sdc (Merge_flow.merged_modes r))
      in
      r, bytes)

let baseline = lazy (snd (run_files ~jobs:1 ~spec:"" ()))

(* ------------------------------------------------------------------ *)
(* Soundness invariants shared by every ladder outcome                  *)

let sorted l = List.sort compare l

let assert_partition ~ctx names (r : Merge_flow.result) =
  let grouped =
    List.concat_map
      (fun (g : Merge_flow.group) -> g.Merge_flow.grp_members)
      r.Merge_flow.groups
  in
  let quarantined =
    List.map
      (fun (q : Merge_flow.quarantined) -> q.Merge_flow.q_name)
      r.Merge_flow.quarantined
  in
  let rec nodup = function
    | a :: (b :: _ as tl) -> a <> b && nodup tl
    | _ -> true
  in
  check Alcotest.bool (ctx ^ ": no mode lands in two groups") true
    (nodup (sorted (grouped @ quarantined)));
  check
    Alcotest.(list string)
    (ctx ^ ": groups + quarantine cover every mode")
    (sorted names)
    (sorted (grouped @ quarantined))

(* The paper's inclusion guarantee: a surviving merged mode must not
   relax or drop any check an individual mode requires. Equiv reports
   such relaxations in [unsound]; permissive degradation paths are
   only allowed to forfeit reduction, never soundness. *)
let assert_inclusion ~ctx (r : Merge_flow.result) =
  List.iter
    (fun (g : Merge_flow.group) ->
      match g.Merge_flow.grp_equiv with
      | None -> ()
      | Some e ->
        if e.Equiv.unsound <> [] then
          Alcotest.failf "%s: group [%s] relaxes required checks: %s" ctx
            (String.concat "," g.Merge_flow.grp_members)
            (String.concat "; " e.Equiv.unsound);
        if List.length g.Merge_flow.grp_members > 1 then
          check Alcotest.bool
            (ctx ^ ": surviving multi-mode group validated equivalent")
            true e.Equiv.equivalent)
    r.Merge_flow.groups

(* ------------------------------------------------------------------ *)
(* In-process recovery: the recoverable scenario matrix                *)

let test_recoverable_matrix () =
  let base = Lazy.force baseline in
  List.iter
    (fun (jobs, (sc : Fuzz.chaos_scenario)) ->
      let _, bytes = run_files ~jobs ~spec:(Fuzz.chaos_spec [ sc ]) () in
      check Alcotest.string
        (Printf.sprintf "%s at jobs=%d recovers byte-identical" sc.Fuzz.cs_name
           jobs)
        base bytes)
    (List.filter
       (fun (_, sc) -> Fuzz.chaos_recoverable sc)
       (Fuzz.chaos_matrix ()))

let test_combined_faults () =
  let base = Lazy.force baseline in
  let spec =
    Fuzz.chaos_spec (List.filter Fuzz.chaos_recoverable Fuzz.chaos_scenarios)
  in
  List.iter
    (fun jobs ->
      let _, bytes = run_files ~jobs ~spec () in
      check Alcotest.string
        (Printf.sprintf "all recoverable faults at once, jobs=%d" jobs)
        base bytes;
      check Alcotest.bool "recovery is visible in govern.retries" true
        (Metrics.get_counter "govern.retries" > 0))
    [ 1; 4 ]

let test_timeout_absorbed () =
  let base = Lazy.force baseline in
  let budgets =
    { Merge_flow.default_budgets with Merge_flow.bg_task_s = Some 0.05 }
  in
  List.iter
    (fun jobs ->
      let _, bytes =
        run_files ~budgets ~jobs ~spec:"pool.task@1=delay:120" ()
      in
      check Alcotest.string
        (Printf.sprintf "timed-out task rescued byte-identical, jobs=%d" jobs)
        base bytes;
      check Alcotest.bool "timeout counted" true
        (Metrics.get_counter "govern.timeouts" > 0);
      check Alcotest.bool "rescue counted" true
        (Metrics.get_counter "govern.retries" > 0))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* In-process checkpoint/resume                                        *)

let test_checkpoint_transparent () =
  let base = Lazy.force baseline in
  let dir = scratch "ck_transparent" in
  let spec k =
    { Merge_flow.ck_dir = dir; ck_resume = k; ck_key = "inproc" }
  in
  let _, first = run_files ~checkpoint:(spec false) ~jobs:1 ~spec:"" () in
  check Alcotest.string "checkpointing does not perturb the output" base first;
  let r, resumed = run_files ~checkpoint:(spec true) ~jobs:1 ~spec:"" () in
  check Alcotest.string "full-cache resume is byte-identical" base resumed;
  check Alcotest.bool "resume produced no resume warning" false
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "govern.resume")
       r.Merge_flow.diags);
  (* resume against jobs=4 reuses the same stages (fingerprint skips jobs) *)
  let _, resumed4 = run_files ~checkpoint:(spec true) ~jobs:4 ~spec:"" () in
  check Alcotest.string "resume at a different jobs count" base resumed4

let test_failed_resume_degrades () =
  let base = Lazy.force baseline in
  let dir = Filename.concat scratch_root "ck_never_written" in
  let ck = { Merge_flow.ck_dir = dir; ck_resume = true; ck_key = "inproc" } in
  let r, bytes = run_files ~checkpoint:ck ~jobs:1 ~spec:"" () in
  check Alcotest.string "failed resume still completes byte-identical" base
    bytes;
  check Alcotest.bool "failed resume is diagnosed" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "govern.resume")
       r.Merge_flow.diags)

(* ------------------------------------------------------------------ *)
(* Degradation ladder under an exhausted stage budget                  *)

let test_budget_split_ladder () =
  let budgets =
    {
      Merge_flow.default_budgets with
      Merge_flow.bg_stage_s = [ "cliques", 0.0 ];
    }
  in
  let outcomes =
    List.map
      (fun jobs ->
        let r, bytes = run_files ~budgets ~jobs ~spec:"" () in
        let ctx = Printf.sprintf "ladder jobs=%d" jobs in
        check Alcotest.bool (ctx ^ ": splits recorded in the result") true
          (r.Merge_flow.governed.Merge_flow.gov_clique_splits > 0);
        check Alcotest.bool (ctx ^ ": splits recorded in metrics") true
          (Metrics.get_counter "govern.clique_splits" > 0);
        check Alcotest.bool (ctx ^ ": flagged degraded-under-budget") true
          (Merge_flow.degraded_under_budget r.Merge_flow.governed);
        check Alcotest.bool (ctx ^ ": split events in the audit trail") true
          (List.exists
             (fun (e : Merge_flow.govern_event) ->
               e.Merge_flow.ge_action = "split")
             r.Merge_flow.governed.Merge_flow.gov_events);
        assert_partition ~ctx mode_names r;
        assert_inclusion ~ctx r;
        bytes)
      [ 1; 4 ]
  in
  match outcomes with
  | [ b1; b4 ] ->
    check Alcotest.string "ladder outcome is jobs-invariant" b1 b4
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* QCheck: every ladder outcome keeps the inclusion guarantee          *)

let build_sources seed fams =
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed;
      n_domains = 2;
      regs_per_domain = 12;
      stages = 2;
      combo_depth = 2;
    }
  in
  let design, info = Gen_design.generate params in
  let suite =
    {
      Gen_modes.sp_seed = seed + 1;
      families = fams;
      base_period = 2.0;
      scan_family = false;
    }
  in
  let sources =
    List.concat
      (List.mapi
         (fun family n ->
           List.init n (fun index ->
               {
                 Merge_flow.src_name = Printf.sprintf "m%d_%d" family index;
                 src_file = None;
                 src_text = Gen_modes.sdc_of_mode_spec info suite ~family ~index;
               }))
         fams)
  in
  design, sources

(* Three pressure mixes, all ending in a valid run: a dead cliques
   budget (guaranteed splits), a single task timeout (retry rung), and
   a crash plus a crashing first retry (retry rung, twice). *)
let pressure_of = function
  | 0 ->
    ( "cliques-budget",
      { Merge_flow.default_budgets with Merge_flow.bg_stage_s = [ "cliques", 0.0 ] },
      "" )
  | 1 ->
    ( "task-timeout",
      { Merge_flow.default_budgets with Merge_flow.bg_task_s = Some 0.03 },
      "pool.task@3=delay:80" )
  | _ ->
    "double-crash", Merge_flow.default_budgets,
    "pool.task@1=raise,pool.retry@1=raise"

let ladder_case_gen =
  QCheck2.Gen.(
    let* seed = 0 -- 5000 in
    let* fams = list_size (1 -- 2) (1 -- 3) in
    let* pressure = 0 -- 2 in
    return (seed, fams, pressure))

let prop_inclusion (seed, fams, pressure) =
  let name, budgets, spec = pressure_of pressure in
  let design, sources = build_sources seed fams in
  let mode_names = List.map (fun s -> s.Merge_flow.src_name) sources in
  List.iter
    (fun jobs ->
      Metrics.reset ();
      (match Chaos.configure spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "chaos spec %S rejected: %s" spec e);
      Fun.protect ~finally:Chaos.clear (fun () ->
          let r =
            Merge_flow.run_sources ~policy:Merge_flow.Permissive ~jobs ~budgets
              ~design sources
          in
          let ctx =
            Printf.sprintf "seed=%d %s jobs=%d" seed name jobs
          in
          assert_partition ~ctx mode_names r;
          assert_inclusion ~ctx r;
          check Alcotest.int (ctx ^ ": one group per merged mode")
            r.Merge_flow.n_merged
            (List.length r.Merge_flow.groups)))
    [ 1; 4 ];
  true

let prop_ladder_inclusion =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"ladder outcomes keep the inclusion guarantee (jobs=1 and jobs=4)"
       ~count:6 ladder_case_gen prop_inclusion)

(* ------------------------------------------------------------------ *)
(* Subprocess kill/resume golden test                                  *)

let modemerge =
  lazy
    (match Sys.getenv_opt "MODEMERGE" with
    | Some p when p <> "" -> p
    | _ ->
      Alcotest.fail
        "MODEMERGE not set: run this suite via `dune build @chaos`, which \
         wires in the modemerge binary")

let sh fmt =
  Printf.ksprintf
    (fun cmd ->
      match Sys.command cmd with
      | n -> n
      | exception Sys_error e -> Alcotest.failf "command failed to run: %s" e)
    fmt

(* One CLI workload, generated by `modemerge gen` so the subprocess
   tests exercise the shipped tool end to end. *)
let cli_fixture =
  lazy
    (let exe = Lazy.force modemerge in
     let dir = scratch "cli" in
     let rc =
       sh "%s gen -o %s --seed 11 --domains 2 --regs 10 --families 3,2 > %s 2>&1"
         (Filename.quote exe) (Filename.quote dir)
         (Filename.quote (Filename.concat dir "gen.log"))
     in
     check Alcotest.int "gen exits cleanly" 0 rc;
     let sdcs =
       List.map
         (fun n -> Filename.concat dir (n ^ ".sdc"))
         [ "m0_0"; "m0_1"; "m0_2"; "m1_0"; "m1_1" ]
     in
     List.iter
       (fun p ->
         if not (Sys.file_exists p) then
           Alcotest.failf "gen did not write %s" p)
       sdcs;
     exe, Filename.concat dir "design.nl", sdcs)

let merge_argv ~extra ~out ~audit =
  let exe, netlist, sdcs = Lazy.force cli_fixture in
  Printf.sprintf "%s merge -n %s --permissive -j 2 -o %s --audit %s %s %s"
    (Filename.quote exe) (Filename.quote netlist) (Filename.quote out)
    (Filename.quote audit) extra
    (String.concat " " (List.map Filename.quote sdcs))

let run_merge ?(env = "") ~tag ~extra () =
  let out = Filename.concat scratch_root (tag ^ "_out") in
  rm_rf out;
  let audit = Filename.concat scratch_root (tag ^ "_audit.json") in
  let log = Filename.concat scratch_root (tag ^ ".log") in
  let rc =
    sh "%s %s > %s 2>&1" env
      (merge_argv ~extra ~out ~audit)
      (Filename.quote log)
  in
  rc, out, audit

let merged_sdcs out =
  if not (Sys.file_exists out) then []
  else
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".sdc")
         (Array.to_list (Sys.readdir out)))

let golden = lazy (run_merge ~tag:"golden" ~extra:"" ())

let assert_same_outputs ~ctx (g_out, g_audit) (out, audit) =
  check Alcotest.string (ctx ^ ": audit bytes") (read_file g_audit)
    (read_file audit);
  let names = merged_sdcs g_out in
  check Alcotest.bool (ctx ^ ": golden run produced merged SDCs") true
    (names <> []);
  check Alcotest.(list string) (ctx ^ ": same merged files") names
    (merged_sdcs out);
  List.iter
    (fun n ->
      check Alcotest.string
        (Printf.sprintf "%s: %s bytes" ctx n)
        (read_file (Filename.concat g_out n))
        (read_file (Filename.concat out n)))
    names

let test_kill_resume_golden () =
  let g_rc, g_out, g_audit = Lazy.force golden in
  List.iter
    (fun stage ->
      let tag = "kill_" ^ stage in
      let ck = Filename.concat scratch_root (tag ^ "_ck") in
      rm_rf ck;
      let extra = Printf.sprintf "--checkpoint %s" (Filename.quote ck) in
      let rc, _, _ =
        run_merge
          ~env:
            (Printf.sprintf "MM_CHAOS=merge.stage:%s@1=kill:137" stage)
          ~tag ~extra ()
      in
      check Alcotest.int
        (Printf.sprintf "kill after %s exits with the chaos status" stage)
        137 rc;
      let rc2, out, audit =
        run_merge ~tag
          ~extra:(Printf.sprintf "%s --resume" extra)
          ()
      in
      check Alcotest.int
        (Printf.sprintf "resume after %s kill exits like the golden run" stage)
        g_rc rc2;
      assert_same_outputs
        ~ctx:(Printf.sprintf "resume after %s kill" stage)
        (g_out, g_audit) (out, audit))
    Merge_flow.stage_names

let test_cli_budget_exit_code () =
  let rc, out, _ =
    run_merge ~tag:"budget3" ~extra:"--budget cliques=0" ()
  in
  check Alcotest.int "budget-degraded run exits 3" 3 rc;
  check Alcotest.bool "degraded run still writes merged modes" true
    (merged_sdcs out <> [])

(* The acceptance check: a chaos run with injected timeouts completes
   degraded and its metrics export carries nonzero govern.retries,
   govern.timeouts and govern.clique_splits. *)
let counter_in_json json name =
  let needle = Printf.sprintf "\"%s\":" name in
  let nh = String.length needle and lh = String.length json in
  let rec find i =
    if i + nh > lh then None
    else if String.sub json i nh = needle then Some (i + nh)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let j = ref i in
    while
      !j < lh && (match json.[!j] with '0' .. '9' | '.' | ' ' -> true | _ -> false)
    do
      incr j
    done;
    float_of_string_opt (String.trim (String.sub json i (!j - i)))

let test_cli_metrics_export () =
  let metrics = Filename.concat scratch_root "chaos_metrics.json" in
  let rc, out, _ =
    run_merge
      ~env:"MM_CHAOS=pool.task@1=delay:150,pool.task@2=raise"
      ~tag:"metrics"
      ~extra:
        (Printf.sprintf "--task-timeout 0.05 --budget cliques=0 --metrics %s"
           (Filename.quote metrics))
      ()
  in
  check Alcotest.int "chaos + budget run exits 3 (degraded, not dead)" 3 rc;
  check Alcotest.bool "run still merges" true (merged_sdcs out <> []);
  let json = read_file metrics in
  List.iter
    (fun name ->
      match counter_in_json json name with
      | Some v when v > 0. -> ()
      | Some _ -> Alcotest.failf "metrics export has %s = 0" name
      | None -> Alcotest.failf "metrics export is missing %s" name)
    [ "govern.retries"; "govern.timeouts"; "govern.clique_splits" ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mm_chaos"
    [
      ( "recovery",
        [
          tc "recoverable scenario matrix" test_recoverable_matrix;
          tc "all recoverable faults at once" test_combined_faults;
          tc "task timeout absorbed by retry" test_timeout_absorbed;
        ] );
      ( "checkpoint",
        [
          tc "checkpoint + resume transparent" test_checkpoint_transparent;
          tc "failed resume degrades to fresh run" test_failed_resume_degrades;
        ] );
      ( "ladder",
        [ tc "cliques budget forces sound splits" test_budget_split_ladder;
          prop_ladder_inclusion ] );
      ( "cli",
        [
          tc "kill after each stage, resume byte-identical"
            test_kill_resume_golden;
          tc "budget-degraded exit code 3" test_cli_budget_exit_code;
          tc "chaos metrics export" test_cli_metrics_export;
        ] );
    ]
