(* @parallel-stress: determinism of the task-graph pipeline.

   The merge flow promises that its result — groups, merged SDC text,
   diagnostics, quarantine and degradation lists, metric counters — is
   byte-identical for any --jobs count (the driver folds task outcomes
   in input order). This suite runs randomly generated workloads,
   including corrupted sources that exercise the quarantine and
   degradation paths, once at jobs=1 and once at jobs=4 and compares a
   full fingerprint of both results. Heavier than tier-1, so it lives
   on the @parallel-stress alias. *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Diag = Mm_util.Diag
module Metrics = Mm_util.Metrics
module Merge_flow = Mm_core.Merge_flow
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Result fingerprint: everything the determinism contract covers.
   Span timings and runtime_s are explicitly excluded; metric counters
   are included (gauges like merge.jobs differ by construction). *)

let fingerprint_group (g : Merge_flow.group) =
  Printf.sprintf "group members=[%s] sdc=<<%s>> refine=%b equiv=%s"
    (String.concat "," g.Merge_flow.grp_members)
    (Mode.to_sdc g.Merge_flow.grp_mode)
    (g.Merge_flow.grp_refine <> None)
    (match g.Merge_flow.grp_equiv with
    | None -> "-"
    | Some e ->
      Printf.sprintf "eq=%b,mm=%d" e.Mm_core.Equiv.equivalent
        e.Mm_core.Equiv.mismatches)

let fingerprint_quarantine (q : Merge_flow.quarantined) =
  Printf.sprintf "quarantine %s@%s: %s" q.Merge_flow.q_name
    (Merge_flow.stage_to_string q.Merge_flow.q_stage)
    (String.concat " | " (List.map Diag.to_string q.Merge_flow.q_diags))

let counters () =
  List.filter_map
    (fun (i : Metrics.item) ->
      match i.Metrics.value with
      | Metrics.Counter c -> Some (Printf.sprintf "%s=%d" i.Metrics.name c)
      | Metrics.Gauge _ | Metrics.Histogram _ -> None)
    (Metrics.snapshot ())

let fingerprint (r : Merge_flow.result) =
  String.concat "\n"
    (Printf.sprintf "n=%d->%d" r.Merge_flow.n_individual r.Merge_flow.n_merged
     :: List.map fingerprint_group r.Merge_flow.groups
    @ List.map fingerprint_quarantine r.Merge_flow.quarantined
    @ List.map
        (fun names -> "degraded " ^ String.concat "," names)
        r.Merge_flow.degraded
    @ List.map Diag.to_string r.Merge_flow.diags
    @ counters ())

let run_once ~jobs ~policy ~design sources =
  Metrics.reset ();
  let r = Merge_flow.run_sources ~policy ~jobs ~design sources in
  fingerprint r

(* ------------------------------------------------------------------ *)
(* Random workloads                                                    *)

type workload = {
  wl_seed : int;
  wl_families : int list;
  wl_corrupt : bool;  (* break every third source (permissive only) *)
}

let build_workload wl =
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed = wl.wl_seed;
      n_domains = 2;
      regs_per_domain = 12;
      stages = 2;
      combo_depth = 2;
    }
  in
  let design, info = Gen_design.generate params in
  let suite =
    {
      Gen_modes.sp_seed = wl.wl_seed + 1;
      families = wl.wl_families;
      base_period = 2.0;
      scan_family = false;
    }
  in
  let sources =
    List.concat
      (List.mapi
         (fun family n ->
           List.init n (fun index ->
               let text = Gen_modes.sdc_of_mode_spec info suite ~family ~index in
               let text =
                 (* An unterminated command: the robust parser reports
                    an error and the mode quarantines at Load. *)
                 if wl.wl_corrupt && (family + index) mod 3 = 0 then
                   text ^ "\ncreate_clock -period\n"
                 else text
               in
               {
                 Merge_flow.src_name = Printf.sprintf "m%d_%d" family index;
                 src_file = None;
                 src_text = text;
               }))
         wl.wl_families)
  in
  design, sources

let check_deterministic ~policy wl =
  let design, sources = build_workload wl in
  let a = run_once ~jobs:1 ~policy ~design sources in
  let b = run_once ~jobs:4 ~policy ~design sources in
  Metrics.reset ();
  check Alcotest.string
    (Printf.sprintf "seed=%d jobs=1 vs jobs=4" wl.wl_seed)
    a b

let workload_gen =
  QCheck2.Gen.(
    let* seed = 0 -- 10_000 in
    let* families = list_size (1 -- 3) (1 -- 3) in
    let* corrupt = bool in
    return { wl_seed = seed; wl_families = families; wl_corrupt = corrupt })

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"strict merge is jobs-invariant" ~count:6
         workload_gen (fun wl ->
           check_deterministic ~policy:Merge_flow.Strict
             { wl with wl_corrupt = false };
           true));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"permissive merge with corrupted sources is jobs-invariant"
         ~count:6 workload_gen (fun wl ->
           check_deterministic ~policy:Merge_flow.Permissive wl;
           true));
  ]

(* Fixed regression points: the paper circuit end to end, and a
   degradation-heavy permissive workload. *)
let fixed_cases =
  [
    tc "paper circuit jobs-invariant" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        let a, b = Mm_workload.Paper_circuit.constraint_set6 d in
        let src (m : Mode.t) name =
          { Merge_flow.src_name = name; src_file = None; src_text = Mode.to_sdc m }
        in
        let sources = [ src a "csA"; src b "csB" ] in
        let one = run_once ~jobs:1 ~policy:Merge_flow.Strict ~design:d sources in
        let four = run_once ~jobs:4 ~policy:Merge_flow.Strict ~design:d sources in
        Metrics.reset ();
        check Alcotest.string "fingerprints" one four);
    tc "quarantine order is jobs-invariant" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        let bad name =
          { Merge_flow.src_name = name; src_file = None;
            src_text = "create_clock -period\n" }
        in
        let good name =
          let m = Mm_workload.Paper_circuit.constraint_set1 d in
          { Merge_flow.src_name = name; src_file = None;
            src_text = Mode.to_sdc m }
        in
        let sources = [ bad "q0"; good "g0"; bad "q1"; good "g1"; bad "q2" ] in
        let one =
          run_once ~jobs:1 ~policy:Merge_flow.Permissive ~design:d sources
        in
        let four =
          run_once ~jobs:4 ~policy:Merge_flow.Permissive ~design:d sources
        in
        Metrics.reset ();
        check Alcotest.string "fingerprints" one four;
        check Alcotest.bool "quarantines present" true
          (let l = String.split_on_char '\n' one in
           List.exists (fun s -> String.length s >= 10 && String.sub s 0 10 = "quarantine") l));
  ]

let () =
  Alcotest.run "mm_parallel"
    [ "determinism", fixed_cases @ props ]
