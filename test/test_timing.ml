(* Tests for Mm_timing: graph construction, constant and clock
   propagation, constraint-state precedence, exception matching and the
   STA engine's check semantics. *)
module Design = Mm_netlist.Design
module Library = Mm_netlist.Library
module Logic = Mm_netlist.Logic
module Resolve = Mm_sdc.Resolve
module Mode = Mm_sdc.Mode
module Graph = Mm_timing.Graph
module Const_prop = Mm_timing.Const_prop
module Clock_prop = Mm_timing.Clock_prop
module Cs = Mm_timing.Constraint_state
module Excmatch = Mm_timing.Excmatch
module Context = Mm_timing.Context
module Sta = Mm_timing.Sta

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let resolve d src =
  let r = Resolve.mode_of_string d ~name:"t" src in
  (match Resolve.warnings r with
  | [] -> ()
  | w -> Alcotest.failf "resolve warnings: %s" (String.concat "; " w));
  r.Resolve.mode

(* A linear pipeline: clk -> r1 -> inv -> r2, plus a mux-gated clock
   branch for clock tests. *)
let pipeline () =
  let d = Design.create "pipe" in
  ignore (Design.add_port d "clk" Design.In);
  ignore (Design.add_port d "clkb" Design.In);
  ignore (Design.add_port d "sel" Design.In);
  ignore (Design.add_port d "out" Design.Out);
  ignore (Design.add_inst d "r1" Library.dff);
  ignore (Design.add_inst d "r2" Library.dff);
  ignore (Design.add_inst d "u1" Library.inv);
  ignore (Design.add_inst d "mx" Library.mux2);
  Design.wire d "n_clk" [ "clk"; "r1/CP"; "mx/D0" ];
  Design.wire d "n_clkb" [ "clkb"; "mx/D1" ];
  Design.wire d "n_sel" [ "sel"; "mx/S" ];
  Design.wire d "n_gclk" [ "mx/Z"; "r2/CP" ];
  Design.wire d "n_q1" [ "r1/Q"; "u1/A" ];
  Design.wire d "n_u1" [ "u1/Z"; "r2/D" ];
  Design.wire d "n_q2" [ "r2/Q"; "out" ];
  d

let base_clock = "create_clock -name c -period 10 [get_ports clk]\n"

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)

let graph_cases =
  [
    tc "arc inventory" (fun () ->
        let d = pipeline () in
        let g = Graph.build d (resolve d base_clock) in
        let count kind =
          let acc = ref 0 in
          Graph.iter_arcs g (fun _ a -> if a.Graph.a_kind = kind then incr acc);
          !acc
        in
        (* launch: 2 flops x (Q, QN) = 4; comb: inv 1 + mux 3 = 4. *)
        check Alcotest.int "launch" 4 (count Graph.Launch);
        check Alcotest.int "comb" 4 (count Graph.Comb);
        check Alcotest.bool "nets" true (count Graph.Net > 0));
    tc "endpoints and startpoints" (fun () ->
        let d = pipeline () in
        let g = Graph.build d (resolve d base_clock) in
        check Alcotest.int "endpoints (2 D pins + out port)" 3
          (List.length g.Graph.endpoints);
        check Alcotest.int "startpoints (2 regs + 3 in ports)" 5
          (List.length g.Graph.startpoints));
    tc "topological order respects arcs" (fun () ->
        let d = pipeline () in
        let g = Graph.build d (resolve d base_clock) in
        let pos = Graph.topo_pos g in
        Graph.iter_arcs g (fun _ a ->
            check Alcotest.bool "src before dst" true
              (pos.(a.Graph.a_src) < pos.(a.Graph.a_dst)));
        check Alcotest.(list int) "no broken arcs" [] (Graph.broken_arcs g));
    tc "combinational loop broken, not fatal" (fun () ->
        let d = Design.create "loop" in
        ignore (Design.add_inst d "a" Library.inv);
        ignore (Design.add_inst d "b" Library.inv);
        Design.wire d "n1" [ "a/Z"; "b/A" ];
        Design.wire d "n2" [ "b/Z"; "a/A" ];
        let g = Graph.build d (resolve d "set_case_analysis 0 a/A") in
        check Alcotest.bool "loop recorded" true (Graph.broken_arcs g <> []));
    tc "arc delays positive and min<=max" (fun () ->
        let d = pipeline () in
        let g = Graph.build d (resolve d base_clock) in
        Graph.iter_arcs g (fun _ a ->
            check Alcotest.bool "nonneg" true (a.Graph.a_dmin >= 0.);
            check Alcotest.bool "ordered" true (a.Graph.a_dmin <= a.Graph.a_dmax)));
    tc "set_load increases driver arc delay" (fun () ->
        let d = pipeline () in
        let bare = Graph.build d (resolve d base_clock) in
        let loaded =
          Graph.build d (resolve d (base_clock ^ "set_load 0.5 [get_ports out]"))
        in
        let q2 = Design.pin_of_name_exn d "r2/Q" in
        let launch_delay g =
          let acc = ref 0. in
          Graph.iter_arcs g (fun _ a ->
              if a.Graph.a_dst = q2 then acc := a.Graph.a_dmax);
          !acc
        in
        check Alcotest.bool "heavier" true (launch_delay loaded > launch_delay bare));
  ]

(* ------------------------------------------------------------------ *)
(* Const_prop                                                          *)

let const_cases =
  [
    tc "case value propagates through inverter" (fun () ->
        let d = pipeline () in
        let mode = resolve d (base_clock ^ "set_case_analysis 1 r1/Q") in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        check Alcotest.bool "q const" true
          (Const_prop.value cp (Design.pin_of_name_exn d "r1/Q") = Logic.T);
        check Alcotest.bool "inverted" true
          (Const_prop.value cp (Design.pin_of_name_exn d "u1/Z") = Logic.F));
    tc "mux select case disables unselected clock leg" (fun () ->
        let d = pipeline () in
        let mode = resolve d (base_clock ^ "set_case_analysis 0 sel") in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let d1 = Design.pin_of_name_exn d "mx/D1" in
        let enabled_from_d1 =
          let found = ref false in
          Graph.iter_arcs g (fun aid a ->
              if
                a.Graph.a_src = d1 && a.Graph.a_kind = Graph.Comb
                && Const_prop.enabled cp aid
              then found := true);
          !found
        in
        check Alcotest.bool "D1 arc dead" false enabled_from_d1);
    tc "disable pin kills its arcs" (fun () ->
        let d = pipeline () in
        let mode = resolve d (base_clock ^ "set_disable_timing u1/A") in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let a_pin = Design.pin_of_name_exn d "u1/A" in
        Graph.iter_arcs g (fun aid a ->
            if a.Graph.a_src = a_pin || a.Graph.a_dst = a_pin then
              check Alcotest.bool "disabled" false (Const_prop.enabled cp aid)));
    tc "disable instance arc with from/to" (fun () ->
        let d = pipeline () in
        let mode =
          resolve d (base_clock ^ "set_disable_timing -from A -to Z [get_cells u1]")
        in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let src = Design.pin_of_name_exn d "u1/A" in
        Graph.iter_arcs g (fun aid a ->
            if a.Graph.a_src = src && a.Graph.a_kind = Graph.Comb then
              check Alcotest.bool "cell arc dead" false
                (Const_prop.enabled cp aid)));
    tc "pin_active reflects constants" (fun () ->
        let d = pipeline () in
        let mode = resolve d (base_clock ^ "set_case_analysis 1 r1/Q") in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        check Alcotest.bool "const not active" false
          (Const_prop.pin_active cp (Design.pin_of_name_exn d "r1/Q"));
        check Alcotest.bool "implied const not active" false
          (Const_prop.pin_active cp (Design.pin_of_name_exn d "r2/D"));
        check Alcotest.bool "free pin active" true
          (Const_prop.pin_active cp (Design.pin_of_name_exn d "mx/Z")));
  ]

(* ------------------------------------------------------------------ *)
(* Clock_prop                                                          *)

let clocks_src =
  "create_clock -name ca -period 10 [get_ports clk]\n\
   create_clock -name cb -period 5 [get_ports clkb]\n"

let clock_cases =
  [
    tc "clock reaches flops through mux when select unknown" (fun () ->
        let d = pipeline () in
        let mode = resolve d clocks_src in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let ck = Clock_prop.run g cp mode in
        let at pin = Clock_prop.clocks_at ck (Design.pin_of_name_exn d pin) in
        check Alcotest.(list string) "r1 direct" [ "ca" ] (at "r1/CP");
        check Alcotest.(list string) "r2 both" [ "ca"; "cb" ] (at "r2/CP"));
    tc "case analysis prunes one clock" (fun () ->
        let d = pipeline () in
        let mode = resolve d (clocks_src ^ "set_case_analysis 1 sel") in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let ck = Clock_prop.run g cp mode in
        check
          Alcotest.(list string)
          "only cb" [ "cb" ]
          (Clock_prop.clocks_at ck (Design.pin_of_name_exn d "r2/CP")));
    tc "stop_propagation blocks a clock" (fun () ->
        let d = pipeline () in
        let mode =
          resolve d
            (clocks_src
           ^ "set_clock_sense -stop_propagation -clock [get_clocks ca] [get_pins mx/Z]")
        in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let ck = Clock_prop.run g cp mode in
        check
          Alcotest.(list string)
          "ca stopped" [ "cb" ]
          (Clock_prop.clocks_at ck (Design.pin_of_name_exn d "r2/CP")));
    tc "insertion delay accumulates" (fun () ->
        let d = pipeline () in
        let mode = resolve d clocks_src in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let ck = Clock_prop.run g cp mode in
        let ca = Option.get (Clock_prop.clock_index ck "ca") in
        match Clock_prop.arrival ck (Design.pin_of_name_exn d "r2/CP") ca with
        | Some (tmin, tmax) ->
          check Alcotest.bool "positive" true (tmin > 0. && tmax >= tmin)
        | None -> Alcotest.fail "no arrival");
    tc "mask helpers" (fun () ->
        let d = pipeline () in
        let mode = resolve d clocks_src in
        let g = Graph.build d mode in
        let cp = Const_prop.run g mode in
        let ck = Clock_prop.run g cp mode in
        check Alcotest.int "n_clocks" 2 (Clock_prop.n_clocks ck);
        check Alcotest.int "mask both" 3
          (Clock_prop.mask_of_clock_names ck [ "ca"; "cb"; "nope" ]));
  ]

(* ------------------------------------------------------------------ *)
(* Constraint_state                                                    *)

let cs = Alcotest.testable (fun fmt s -> Format.pp_print_string fmt (Cs.to_string s)) Cs.equal

let state_cases =
  [
    tc "precedence: disabled > fp > max > min > mcp > valid" (fun () ->
        check cs "fp over mcp" Cs.False_path
          (Cs.strongest [ Cs.Multicycle 2; Cs.False_path ]);
        check cs "dis over fp" Cs.Disabled (Cs.strongest [ Cs.False_path; Cs.Disabled ]);
        check cs "max over mcp" (Cs.Max_delay_bound 1.)
          (Cs.strongest [ Cs.Multicycle 2; Cs.Max_delay_bound 1. ]);
        check cs "mcp over valid" (Cs.Multicycle 3)
          (Cs.strongest [ Cs.Valid; Cs.Multicycle 3 ]);
        check cs "empty is valid" Cs.Valid (Cs.strongest []));
    tc "same kind tightening" (fun () ->
        check cs "mcp max mult" (Cs.Multicycle 4)
          (Cs.strongest [ Cs.Multicycle 2; Cs.Multicycle 4 ]);
        check cs "max min value" (Cs.Max_delay_bound 1.)
          (Cs.strongest [ Cs.Max_delay_bound 2.; Cs.Max_delay_bound 1. ]);
        check cs "min max value" (Cs.Min_delay_bound 2.)
          (Cs.strongest [ Cs.Min_delay_bound 1.; Cs.Min_delay_bound 2. ]));
    tc "of_exceptions filters analysis side" (fun () ->
        let fp_hold_only = Mode.exc ~setup:false ~hold:true Mode.False_path in
        check cs "setup side valid" Cs.Valid
          (Cs.of_exceptions ~setup:true [ fp_hold_only ]);
        check cs "hold side fp" Cs.False_path
          (Cs.of_exceptions ~setup:false [ fp_hold_only ]));
    tc "to_string forms" (fun () ->
        check Alcotest.string "v" "V" (Cs.to_string Cs.Valid);
        check Alcotest.string "mcp" "MCP(2)" (Cs.to_string (Cs.Multicycle 2));
        check Alcotest.string "max" "MAX(1.5)" (Cs.to_string (Cs.Max_delay_bound 1.5)));
  ]

(* ------------------------------------------------------------------ *)
(* Excmatch (driven through contexts on the paper circuit)             *)

let figure1 = Mm_workload.Paper_circuit.build

let exc_ctx src =
  let d = figure1 () in
  let mode = resolve d src in
  d, Context.create d mode

let exc_cases =
  [
    tc "through groups must match in order" (fun () ->
        (* -through inv1/Z -through and1/Z matches path ii but a tag
           visiting only and1/Z must not match. *)
        let d, ctx =
          exc_ctx
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -through inv1/Z -through and1/Z"
        in
        let ex = ctx.Context.excs in
        let st0 = Excmatch.initial_state ex ~start_pins:[] ~launch_clock:(Some 0) () in
        let at_and1 =
          Excmatch.advance ex st0 (Design.pin_of_name_exn d "and1/Z")
        in
        check Alcotest.int "no match skipping first" 0
          (List.length
             (Excmatch.matches_at ex at_and1 ~end_pins:[] ~capture_clock:(Some 0) ()));
        let both =
          Excmatch.advance ex
            (Excmatch.advance ex st0 (Design.pin_of_name_exn d "inv1/Z"))
            (Design.pin_of_name_exn d "and1/Z")
        in
        check Alcotest.int "matches in order" 1
          (List.length
             (Excmatch.matches_at ex both ~end_pins:[] ~capture_clock:(Some 0) ())));
    tc "from pin restriction kills other startpoints" (fun () ->
        let d, ctx =
          exc_ctx
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -from rA/CP"
        in
        let ex = ctx.Context.excs in
        let from_ra =
          Excmatch.initial_state ex
            ~start_pins:[ Design.pin_of_name_exn d "rA/CP" ]
            ~launch_clock:(Some 0) ()
        in
        let from_rb =
          Excmatch.initial_state ex
            ~start_pins:[ Design.pin_of_name_exn d "rB/CP" ]
            ~launch_clock:(Some 0) ()
        in
        check Alcotest.int "rA matches" 1
          (List.length
             (Excmatch.matches_at ex from_ra ~end_pins:[] ~capture_clock:None ()));
        check Alcotest.int "rB dead" 0
          (List.length
             (Excmatch.matches_at ex from_rb ~end_pins:[] ~capture_clock:None ())));
    tc "to clock restriction" (fun () ->
        let _d, ctx =
          exc_ctx
            "create_clock -name c -period 10 [get_ports clk1]\n\
             create_clock -name c2 -period 5 -add [get_ports clk2]\n\
             set_false_path -to [get_clocks c2]"
        in
        let ex = ctx.Context.excs in
        let c2 = Option.get (Clock_prop.clock_index ctx.Context.clocks "c2") in
        let c = Option.get (Clock_prop.clock_index ctx.Context.clocks "c") in
        let st = Excmatch.initial_state ex ~start_pins:[] ~launch_clock:(Some c) () in
        check Alcotest.int "captures by c2" 1
          (List.length
             (Excmatch.matches_at ex st ~end_pins:[] ~capture_clock:(Some c2) ()));
        check Alcotest.int "not by c" 0
          (List.length
             (Excmatch.matches_at ex st ~end_pins:[] ~capture_clock:(Some c) ())));
    tc "state interning is stable" (fun () ->
        let d, ctx =
          exc_ctx
            "create_clock -name c -period 10 [get_ports clk1]\n\
             set_false_path -through inv1/Z"
        in
        let ex = ctx.Context.excs in
        let st0 = Excmatch.initial_state ex ~start_pins:[] ~launch_clock:None () in
        let p = Design.pin_of_name_exn d "inv1/Z" in
        let s1 = Excmatch.advance ex st0 p in
        let s2 = Excmatch.advance ex st0 p in
        check Alcotest.int "same id" s1 s2;
        check Alcotest.int "idempotent" s1 (Excmatch.advance ex s1 p));
  ]

(* ------------------------------------------------------------------ *)
(* Sta                                                                 *)

let slack_of d mode pin_name =
  let report = Sta.analyze d mode in
  let pin = Design.pin_of_name_exn d pin_name in
  List.find_map
    (fun es -> if es.Sta.es_pin = pin then es.Sta.es_setup else None)
    report.Sta.rep_slacks

let hold_of d mode pin_name =
  let report = Sta.analyze d mode in
  let pin = Design.pin_of_name_exn d pin_name in
  List.find_map
    (fun es -> if es.Sta.es_pin = pin then es.Sta.es_hold else None)
    report.Sta.rep_slacks

let sta_cases =
  [
    tc "reg-to-reg setup slack is sane" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        match slack_of d mode "r2/D" with
        | Some s -> check Alcotest.bool "within period" true (s > 0. && s < 10.)
        | None -> Alcotest.fail "no setup check");
    tc "multicycle adds one period of slack" (fun () ->
        let d = pipeline () in
        let m1 = resolve d base_clock in
        let m2 =
          resolve d (base_clock ^ "set_multicycle_path 2 -to [get_pins r2/D]")
        in
        match slack_of d m1 "r2/D", slack_of d m2 "r2/D" with
        | Some s1, Some s2 -> check (Alcotest.float 1e-6) "one period" 10. (s2 -. s1)
        | _ -> Alcotest.fail "missing checks");
    tc "false path removes the check" (fun () ->
        let d = pipeline () in
        let mode = resolve d (base_clock ^ "set_false_path -to [get_pins r2/D]") in
        check Alcotest.bool "no setup" true (slack_of d mode "r2/D" = None);
        check Alcotest.bool "no hold" true (hold_of d mode "r2/D" = None));
    tc "max_delay overrides the period requirement" (fun () ->
        let d = pipeline () in
        let m v =
          resolve d (base_clock ^ Printf.sprintf "set_max_delay %g -to [get_pins r2/D]" v)
        in
        match slack_of d (m 5.) "r2/D", slack_of d (m 6.) "r2/D" with
        | Some s5, Some s6 -> check (Alcotest.float 1e-6) "shifted by 1" 1. (s6 -. s5)
        | _ -> Alcotest.fail "missing checks");
    tc "uncertainty subtracts from slack" (fun () ->
        let d = pipeline () in
        let m1 = resolve d base_clock in
        let m2 =
          resolve d (base_clock ^ "set_clock_uncertainty -setup 0.5 [get_clocks c]")
        in
        match slack_of d m1 "r2/D", slack_of d m2 "r2/D" with
        | Some s1, Some s2 -> check (Alcotest.float 1e-6) "0.5 tighter" 0.5 (s1 -. s2)
        | _ -> Alcotest.fail "missing checks");
    tc "hold slack exists and is finite" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        match hold_of d mode "r2/D" with
        | Some h -> check Alcotest.bool "finite" true (Float.is_finite h)
        | None -> Alcotest.fail "no hold check");
    tc "physically exclusive clocks are not timed against each other" (fun () ->
        let d = pipeline () in
        let src =
          "create_clock -name ca -period 10 [get_ports clk]\n\
           create_clock -name cb -period 7 [get_ports clkb]\n"
        in
        let no_grp = resolve d src in
        let grp =
          resolve d
            (src
           ^ "set_clock_groups -physically_exclusive -group [get_clocks ca] -group [get_clocks cb]")
        in
        (* Without the group, the ca->cb cross path at r2 uses the
           tighter cb capture; with it, only ca->ca remains. *)
        match slack_of d no_grp "r2/D", slack_of d grp "r2/D" with
        | Some s_cross, Some s_same ->
          check Alcotest.bool "group relaxes" true (s_same >= s_cross)
        | _ -> Alcotest.fail "missing checks");
    tc "input delay creates a timed path from the port" (fun () ->
        let d = pipeline () in
        (* in-port path: wire a din port to r1/D first. *)
        let d2 = Design.create "pipe2" in
        ignore (Design.add_port d2 "clk" Design.In);
        ignore (Design.add_port d2 "din" Design.In);
        ignore (Design.add_inst d2 "r1" Library.dff);
        Design.wire d2 "n_clk" [ "clk"; "r1/CP" ];
        Design.wire d2 "n_din" [ "din"; "r1/D" ];
        ignore d;
        let mode =
          resolve d2
            "create_clock -name c -period 10 [get_ports clk]\n\
             set_input_delay 3 -clock c [get_ports din]"
        in
        match slack_of d2 mode "r1/D" with
        | Some s -> check Alcotest.bool "reduced by input delay" true (s < 8.)
        | None -> Alcotest.fail "no check");
    tc "output delay creates a port endpoint check" (fun () ->
        let d = pipeline () in
        let mode =
          resolve d (base_clock ^ "set_output_delay 2 -clock c [get_ports out]")
        in
        match slack_of d mode "out" with
        | Some s -> check Alcotest.bool "finite" true (Float.is_finite s)
        | None -> Alcotest.fail "no check");
    tc "conformity helpers" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        let r = Sta.analyze d mode in
        check (Alcotest.float 1e-9) "identical reports conform" 100.
          (Sta.conformity ~individual:[ r ] ~merged:[ r ] ~tolerance_frac:0.01);
        check (Alcotest.float 1e-9) "missing merged endpoint fails" 0.
          (Sta.conformity ~individual:[ r ]
             ~merged:[ { r with Sta.rep_slacks = [] } ]
             ~tolerance_frac:0.01));
    tc "merge_worst takes the minimum" (fun () ->
        let d = pipeline () in
        let m1 = resolve d base_clock in
        let m2 =
          resolve d ("create_clock -name c -period 6 [get_ports clk]\n")
        in
        let r1 = Sta.analyze d m1 and r2 = Sta.analyze d m2 in
        let tbl = Sta.merge_worst [ r1; r2 ] in
        let pin = Design.pin_of_name_exn d "r2/D" in
        let worst, _ = Hashtbl.find tbl pin in
        let s1 = Option.get (slack_of d m1 "r2/D")
        and s2 = Option.get (slack_of d m2 "r2/D") in
        check (Alcotest.float 1e-9) "min" (Float.min s1 s2) worst);
  ]

(* ------------------------------------------------------------------ *)
(* Rise/fall edge handling                                             *)

let unate_of d g src dst =
  let s = Design.pin_of_name_exn d src and t = Design.pin_of_name_exn d dst in
  let r = ref None in
  Graph.iter_arcs g (fun _ a ->
      if a.Graph.a_src = s && a.Graph.a_dst = t then r := Some a.Graph.a_unate);
  !r

let edge_cases =
  [
    tc "unateness of library gates" (fun () ->
        let d = Mm_workload.Paper_circuit.build () in
        let g =
          Graph.build d (resolve d "create_clock -name c -period 10 [get_ports clk1]")
        in
        check Alcotest.bool "inverter negative" true
          (unate_of d g "inv1/A" "inv1/Z" = Some Graph.Negative);
        check Alcotest.bool "and positive" true
          (unate_of d g "and1/A" "and1/Z" = Some Graph.Positive);
        check Alcotest.bool "xor non-unate" true
          (unate_of d g "xorS/A" "xorS/Z" = Some Graph.Non_unate);
        check Alcotest.bool "mux data positive" true
          (unate_of d g "mux1/D0" "mux1/Z" = Some Graph.Positive);
        check Alcotest.bool "mux select non-unate" true
          (unate_of d g "mux1/S" "mux1/Z" = Some Graph.Non_unate);
        check Alcotest.bool "launch non-unate" true
          (unate_of d g "rA/CP" "rA/Q" = Some Graph.Non_unate));
    tc "single-edge false path keeps the other edge timed" (fun () ->
        let d = pipeline () in
        let both =
          resolve d
            (base_clock
           ^ "set_false_path -rise_to [get_pins r2/D]
              set_false_path -fall_to [get_pins r2/D]")
        in
        let rise_only =
          resolve d (base_clock ^ "set_false_path -rise_to [get_pins r2/D]")
        in
        check Alcotest.bool "both edges kill the check" true
          (slack_of d both "r2/D" = None);
        check Alcotest.bool "one edge keeps it" true
          (slack_of d rise_only "r2/D" <> None));
    tc "edge flips through an inverter" (fun () ->
        (* r1 -> u1(INV) -> r2: a fall restriction at r2/D corresponds
           to a rise at r1/Q; a -rise_from [pin r1/Q] FP plus inverter
           yields a fall arrival, so only -fall_to sees it as false. *)
        let d = pipeline () in
        let m =
          resolve d
            (base_clock ^ "set_false_path -rise_from [get_pins r1/Q] -fall_to [get_pins r2/D]")
        in
        (* The rise-at-Q/fall-at-D combination is exactly the inverted
           path: only one of the four edge pairs is false, so the
           check must survive (other polarities still timed). *)
        check Alcotest.bool "check survives" true (slack_of d m "r2/D" <> None));
    tc "rise_from clock matches rising-edge registers only" (fun () ->
        let d = pipeline () in
        let rise = resolve d (base_clock ^ "set_false_path -rise_from [get_clocks c]") in
        let fall = resolve d (base_clock ^ "set_false_path -fall_from [get_clocks c]") in
        (* DFFs launch on the rising edge: the rise_from FP kills all
           checks, the fall_from one kills none. *)
        check Alcotest.bool "rise kills" true (slack_of d rise "r2/D" = None);
        check Alcotest.bool "fall keeps" true (slack_of d fall "r2/D" <> None));
  ]

(* ------------------------------------------------------------------ *)
(* Corners and design rules                                            *)

let corner_cases =
  [
    tc "slow corner tightens setup slack" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        let ctx = Context.create d mode in
        let typ = Sta.analyze ~ctx d mode in
        let slow = Sta.analyze ~ctx ~corner:Mm_timing.Corner.slow d mode in
        let s r =
          Option.get
            (List.find_map
               (fun es ->
                 if es.Sta.es_pin = Design.pin_of_name_exn d "r2/D" then
                   es.Sta.es_setup
                 else None)
               r.Sta.rep_slacks)
        in
        check Alcotest.bool "slower is tighter" true (s slow < s typ));
    tc "fast corner tightens hold slack" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        let ctx = Context.create d mode in
        let typ = Sta.analyze ~ctx d mode in
        let fast = Sta.analyze ~ctx ~corner:Mm_timing.Corner.fast d mode in
        let h r =
          Option.get
            (List.find_map
               (fun es ->
                 if es.Sta.es_pin = Design.pin_of_name_exn d "r2/D" then
                   es.Sta.es_hold
                 else None)
               r.Sta.rep_slacks)
        in
        check Alcotest.bool "faster is tighter for hold" true (h fast < h typ));
    tc "scenario sweep covers modes x corners" (fun () ->
        let d = pipeline () in
        let m1 = resolve d base_clock in
        let m2 = resolve d "create_clock -name c -period 6 [get_ports clk]\n" in
        let scenarios =
          Sta.analyze_scenarios d ~modes:[ m1; m2 ]
            ~corners:Mm_timing.Corner.standard_set
        in
        check Alcotest.int "six scenarios" 6 (List.length scenarios));
  ]

let drc_cases =
  [
    tc "max_capacitance violation detected" (fun () ->
        let d = pipeline () in
        (* r1/Q drives u1/A; a tiny limit must trip. *)
        let mode =
          resolve d (base_clock ^ "set_max_capacitance 0.0001 [get_pins r1/Q]")
        in
        let r = Sta.analyze d mode in
        check Alcotest.int "one violation" 1 (List.length r.Sta.rep_drc);
        let v = List.hd r.Sta.rep_drc in
        check Alcotest.bool "identifies pin" true
          (v.Sta.drv_pin = Design.pin_of_name_exn d "r1/Q");
        check Alcotest.bool "actual above limit" true
          (v.Sta.drv_actual > v.Sta.drv_limit));
    tc "generous limit passes" (fun () ->
        let d = pipeline () in
        let mode =
          resolve d (base_clock ^ "set_max_capacitance 100 [get_pins r1/Q]")
        in
        check Alcotest.int "clean" 0 (List.length (Sta.analyze d mode).Sta.rep_drc));
    tc "max_transition uses the RC estimate" (fun () ->
        let d = pipeline () in
        let mode =
          resolve d (base_clock ^ "set_max_transition 0.000001 [get_pins u1/Z]")
        in
        check Alcotest.int "trips" 1 (List.length (Sta.analyze d mode).Sta.rep_drc));
  ]

(* ------------------------------------------------------------------ *)
(* Multi-frequency checks                                              *)

let multifreq_cases =
  [
    tc "harmonic capture uses the tighter half-period window" (fun () ->
        (* Launch on P=10, capture on P=5 via the mux leg: the worst
           setup window is 5 ns, so the slack is ~5 ns below the
           same-clock case. *)
        let d = pipeline () in
        let same =
          resolve d
            "create_clock -name ca -period 10 [get_ports clk]\n\
             set_case_analysis 0 sel"
        in
        let harmonic =
          resolve d
            "create_clock -name ca -period 10 [get_ports clk]\n\
             create_clock -name cb -period 5 [get_ports clkb]\n\
             set_case_analysis 1 sel"
        in
        match slack_of d same "r2/D", slack_of d harmonic "r2/D" with
        | Some s_same, Some s_har ->
          check (Alcotest.float 1e-6) "five less" 5. (s_same -. s_har)
        | _ -> Alcotest.fail "missing checks");
    tc "non-harmonic pair finds the minimum edge separation" (fun () ->
        (* P=10 launch, P=7 capture: min positive separation over the
           hyperperiod is 1 (edges at 70k vs 10j). *)
        let d = pipeline () in
        let m =
          resolve d
            "create_clock -name ca -period 10 [get_ports clk]\n\
             create_clock -name cb -period 7 [get_ports clkb]\n\
             set_case_analysis 1 sel"
        in
        let harm =
          resolve d
            "create_clock -name ca -period 10 [get_ports clk]\n\
             create_clock -name cb -period 5 [get_ports clkb]\n\
             set_case_analysis 1 sel"
        in
        match slack_of d m "r2/D", slack_of d harm "r2/D" with
        | Some s7, Some s5 ->
          (* sep(10,7)=1 vs sep(10,5)=5: the 7ns capture is 4ns tighter *)
          check (Alcotest.float 1e-6) "four less" 4. (s5 -. s7)
        | _ -> Alcotest.fail "missing checks");
    tc "shifted waveform moves the capture edge" (fun () ->
        let d = pipeline () in
        let base = resolve d base_clock in
        let shifted =
          resolve d
            "create_clock -name c -period 10 -waveform {2 7} [get_ports clk]\n"
        in
        (* Launch and capture both shift by 2: same-clock slack is
           unchanged. *)
        match slack_of d base "r2/D", slack_of d shifted "r2/D" with
        | Some a, Some b -> check (Alcotest.float 1e-6) "unchanged" a b
        | _ -> Alcotest.fail "missing checks");
  ]

(* ------------------------------------------------------------------ *)
(* Path reporting                                                      *)

let path_cases =
  [
    tc "worst path traces the pipeline" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        match Sta.worst_paths ~n:1 d mode with
        | [ p ] ->
          let names = List.map (fun s -> Design.pin_name d s.Sta.st_pin) p.Sta.pth_steps in
          check Alcotest.bool "starts at launch" true
            (List.hd names = "r1/CP" || List.hd names = "r1/Q");
          check Alcotest.bool "passes the inverter" true (List.mem "u1/Z" names);
          check Alcotest.string "ends at r2/D" "r2/D" (List.nth names (List.length names - 1));
          (* arrival arithmetic is consistent *)
          List.iter
            (fun s ->
              check Alcotest.bool "incr nonneg" true (s.Sta.st_incr >= 0.))
            p.Sta.pth_steps;
          let last = List.nth p.Sta.pth_steps (List.length p.Sta.pth_steps - 1) in
          check (Alcotest.float 1e-9) "arrival matches" p.Sta.pth_arrival last.Sta.st_arrival
        | _ -> Alcotest.fail "expected one path");
    tc "path slack agrees with endpoint slack" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        let rep = Sta.analyze d mode in
        match Sta.worst_paths ~n:1 d mode with
        | [ p ] ->
          let es =
            List.find (fun e -> e.Sta.es_pin = p.Sta.pth_endpoint) rep.Sta.rep_slacks
          in
          check (Alcotest.float 1e-9) "slack" (Option.get es.Sta.es_setup) p.Sta.pth_slack
        | _ -> Alcotest.fail "expected one path");
    tc "n limits the number of paths" (fun () ->
        let d = pipeline () in
        (* The output delay adds a second checked endpoint. *)
        let mode =
          resolve d (base_clock ^ "set_output_delay 2 -clock c [get_ports out]")
        in
        check Alcotest.int "one" 1 (List.length (Sta.worst_paths ~n:1 d mode));
        check Alcotest.bool "sorted worst-first" true
          (match Sta.worst_paths ~n:2 d mode with
          | [ a; b ] -> a.Sta.pth_slack <= b.Sta.pth_slack
          | _ -> false));
    tc "rendering mentions MET/VIOLATED" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        match Sta.worst_paths ~n:1 d mode with
        | [ p ] ->
          let text = Sta.path_to_string d p in
          check Alcotest.bool "has verdict" true
            (Str_probe.contains text "MET" || Str_probe.contains text "VIOLATED");
          check Alcotest.bool "has startpoint" true (Str_probe.contains text "Startpoint")
        | _ -> Alcotest.fail "expected one path");
    tc "slow corner path arrival grows" (fun () ->
        let d = pipeline () in
        let mode = resolve d base_clock in
        let typ = List.hd (Sta.worst_paths ~n:1 d mode) in
        let slow = List.hd (Sta.worst_paths ~corner:Mm_timing.Corner.slow ~n:1 d mode) in
        check Alcotest.bool "later arrival" true
          (slow.Sta.pth_arrival > typ.Sta.pth_arrival));
  ]

let () =
  Alcotest.run "mm_timing"
    [
      "graph", graph_cases;
      "edges", edge_cases;
      "corners", corner_cases;
      "drc", drc_cases;
      "paths", path_cases;
      "multifreq", multifreq_cases;
      "const_prop", const_cases;
      "clock_prop", clock_cases;
      "constraint_state", state_cases;
      "excmatch", exc_cases;
      "sta", sta_cases;
    ]
