(* End-to-end integration tests: generated workloads through the full
   merge flow, file round trips through the CLI-facing formats, STA
   conformity and randomized whole-flow soundness. *)
module Design = Mm_netlist.Design
module Netlist_io = Mm_netlist.Netlist_io
module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Sta = Mm_timing.Sta
module Merge_flow = Mm_core.Merge_flow
module Equiv = Mm_core.Equiv
module Prelim = Mm_core.Prelim
module Refine = Mm_core.Refine
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes
module Presets = Mm_workload.Presets

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let flow_cases =
  [
    tc "tiny preset: 4 modes -> 2 validated supersets" (fun () ->
        let design, _info, modes = Presets.build Presets.tiny in
        let r = Merge_flow.run modes in
        check Alcotest.int "merged" 2 r.Merge_flow.n_merged;
        List.iter
          (fun (g : Merge_flow.group) ->
            match g.Merge_flow.grp_equiv with
            | Some e -> check Alcotest.bool "equivalent" true e.Equiv.equivalent
            | None -> Alcotest.fail "expected merged groups")
          r.Merge_flow.groups;
        (* STA conformity of worst slacks. *)
        let ind = List.map (fun m -> Sta.analyze design m) modes in
        let mrg = List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes r) in
        let conf = Sta.conformity ~individual:ind ~merged:mrg ~tolerance_frac:0.01 in
        check Alcotest.bool "conformity >= 99" true (conf >= 99.));
    tc "merged superset mode times at least the union of endpoints" (fun () ->
        let design, _info, modes = Presets.build Presets.tiny in
        let r = Merge_flow.run ~check_equivalence:false modes in
        let timed reports =
          List.concat_map
            (fun rep -> List.map fst (Sta.worst_setup_by_endpoint rep))
            reports
          |> List.sort_uniq compare
        in
        let ind = timed (List.map (fun m -> Sta.analyze design m) modes) in
        let mrg =
          timed (List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes r))
        in
        List.iter
          (fun ep ->
            check Alcotest.bool
              (Printf.sprintf "endpoint %s kept" (Design.pin_name design ep))
              true (List.mem ep mrg))
          ind);
    tc "merged mode SDC round-trips through writer and parser" (fun () ->
        let design, _info, modes = Presets.build Presets.tiny in
        let r = Merge_flow.run ~check_equivalence:false modes in
        List.iter
          (fun (m : Mode.t) ->
            let sdc = Mode.to_sdc m in
            let rr = Resolve.mode_of_string design ~name:m.Mode.mode_name sdc in
            check Alcotest.(list string) "no warnings" [] (Resolve.warnings rr);
            let m2 = rr.Resolve.mode in
            check Alcotest.(list string) "clocks" (Mode.clock_names m)
              (Mode.clock_names m2);
            check Alcotest.int "exceptions"
              (List.length m.Mode.exceptions)
              (List.length m2.Mode.exceptions))
          (Merge_flow.merged_modes r));
    tc "full flow from files (netlist + SDC on disk)" (fun () ->
        let dir = Filename.temp_file "mm_it" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        let design, info = Gen_design.generate { Gen_design.default_params with seed = 55 } in
        let npath = Filename.concat dir "d.nl" in
        Netlist_io.write_file npath design;
        let suite =
          { Gen_modes.sp_seed = 56; families = [ 2; 1 ]; base_period = 2.0; scan_family = false }
        in
        let paths =
          List.concat
            (List.mapi
               (fun family n ->
                 List.init n (fun index ->
                     let p = Filename.concat dir (Printf.sprintf "m%d_%d.sdc" family index) in
                     let oc = open_out p in
                     output_string oc (Gen_modes.sdc_of_mode_spec info suite ~family ~index);
                     close_out oc;
                     p))
               suite.Gen_modes.families)
        in
        let design2 = Netlist_io.read_file npath in
        let modes =
          List.map
            (fun p ->
              let name = Filename.remove_extension (Filename.basename p) in
              let r = Resolve.mode_of_file design2 ~name p in
              check Alcotest.(list string) ("warnings " ^ name) [] (Resolve.warnings r);
              r.Resolve.mode)
            paths
        in
        let r = Merge_flow.run modes in
        check Alcotest.int "3 -> 2" 2 r.Merge_flow.n_merged);
  ]

(* Randomized whole-flow soundness on small generated workloads. *)
let random_flow_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random workload flows are optimism-free" ~count:6
       QCheck2.Gen.(int_range 1 10_000)
       (fun seed ->
         let params =
           {
             Gen_design.default_params with
             Gen_design.seed;
             regs_per_domain = 16 + (seed mod 17);
             stages = 2 + (seed mod 3);
             combo_depth = 1 + (seed mod 3);
             n_config_pins = 2 + (seed mod 4);
           }
         in
         let design, info = Gen_design.generate params in
         let suite =
           {
             Gen_modes.sp_seed = seed * 13;
             families = [ 2 + (seed mod 2); 2 ];
             base_period = 1.5;
             scan_family = seed mod 2 = 0;
           }
         in
         let modes = Gen_modes.generate design info suite in
         let r = Merge_flow.run modes in
         List.for_all
           (fun (g : Merge_flow.group) ->
             match g.Merge_flow.grp_equiv with
             | Some e -> e.Equiv.equivalent
             | None -> true)
           r.Merge_flow.groups))

(* Sign-off safety at the STA level: on every endpoint the merged
   mode's worst slack never exceeds (is never more optimistic than) the
   worst individual slack, and every individually-checked endpoint stays
   checked. *)
let sta_never_optimistic_case =
  tc "merged STA is never optimistic per endpoint" (fun () ->
      let design, _info, modes = Presets.build Presets.tiny in
      let r = Merge_flow.run ~check_equivalence:false modes in
      let ind = Sta.merge_worst (List.map (fun m -> Sta.analyze design m) modes) in
      let mrg =
        Sta.merge_worst
          (List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes r))
      in
      Hashtbl.iter
        (fun pin (slack_ind, _) ->
          match Hashtbl.find_opt mrg pin with
          | None ->
            Alcotest.failf "endpoint %s lost its check"
              (Design.pin_name design pin)
          | Some (slack_mrg, _) ->
            check Alcotest.bool
              (Printf.sprintf "%s not optimistic (%f vs %f)"
                 (Design.pin_name design pin) slack_mrg slack_ind)
              true
              (slack_mrg <= slack_ind +. 1e-9))
        ind)

let idempotence_case =
  tc "re-merging merged modes is a fixpoint" (fun () ->
      let _design, _info, modes = Presets.build Presets.tiny in
      let r1 = Merge_flow.run ~check_equivalence:false modes in
      let r2 = Merge_flow.run ~check_equivalence:false (Merge_flow.merged_modes r1) in
      check Alcotest.int "no further merging across families"
        r1.Merge_flow.n_merged r2.Merge_flow.n_merged)

(* ------------------------------------------------------------------ *)
(* Per-mode quarantine: a corrupt input isolates to its own mode.      *)

module Diag = Mm_util.Diag

let tiny_sources () =
  let design, _info, modes = Presets.build Presets.tiny in
  let sources =
    List.map
      (fun (m : Mode.t) ->
        {
          Merge_flow.src_name = m.Mode.mode_name;
          src_file = None;
          src_text = Mode.to_sdc m;
        })
      modes
  in
  design, sources

let corrupt_text = "create_clock -period bogus -name c [get_ports clk0]\n[{"

let quarantine_cases =
  [
    tc "permissive: corrupt source quarantined, other N-1 modes merge"
      (fun () ->
        let design, sources = tiny_sources () in
        let bad = List.hd sources in
        let sources =
          { bad with Merge_flow.src_text = corrupt_text } :: List.tl sources
        in
        let r =
          Merge_flow.run_sources ~policy:Merge_flow.Permissive ~design sources
        in
        check Alcotest.int "one quarantined" 1 (List.length r.Merge_flow.quarantined);
        let q = List.hd r.Merge_flow.quarantined in
        check Alcotest.string "quarantined name" bad.Merge_flow.src_name
          q.Merge_flow.q_name;
        check Alcotest.bool "load stage" true (q.Merge_flow.q_stage = Merge_flow.Load);
        check Alcotest.bool "has located diagnostic" true
          (List.exists (fun d -> d.Diag.dloc <> None) q.Merge_flow.q_diags);
        check Alcotest.int "survivors" 3 r.Merge_flow.n_individual;
        (* The corrupt mode's family partner degrades to a singleton;
           the untouched family still merges. *)
        check Alcotest.int "groups" 2 r.Merge_flow.n_merged;
        List.iter
          (fun (g : Merge_flow.group) ->
            match g.Merge_flow.grp_equiv with
            | Some e -> check Alcotest.bool "equivalent" true e.Equiv.equivalent
            | None -> ())
          r.Merge_flow.groups);
    tc "strict: the same corrupt source fails fast" (fun () ->
        let design, sources = tiny_sources () in
        let bad = List.hd sources in
        let sources =
          { bad with Merge_flow.src_text = corrupt_text } :: List.tl sources
        in
        match Merge_flow.run_sources ~policy:Merge_flow.Strict ~design sources with
        | _ -> Alcotest.fail "expected a parse error"
        | exception Mm_sdc.Parser.Error _ -> ()
        | exception Mm_sdc.Lexer.Error _ -> ());
    tc "permissive: unreadable file quarantined with io.read" (fun () ->
        let design, sources = tiny_sources () in
        let dir = Filename.temp_file "mm_quarantine" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let paths =
          List.map
            (fun s ->
              let p = Filename.concat dir (s.Merge_flow.src_name ^ ".sdc") in
              let oc = open_out p in
              output_string oc s.Merge_flow.src_text;
              close_out oc;
              p)
            sources
        in
        let missing = Filename.concat dir "ghost.sdc" in
        let r =
          Merge_flow.run_files ~policy:Merge_flow.Permissive ~design
            (missing :: paths)
        in
        check Alcotest.int "one quarantined" 1 (List.length r.Merge_flow.quarantined);
        let q = List.hd r.Merge_flow.quarantined in
        check Alcotest.string "name" "ghost" q.Merge_flow.q_name;
        check Alcotest.bool "io.read code" true
          (List.exists (fun d -> d.Diag.code = "io.read") q.Merge_flow.q_diags);
        check Alcotest.int "all real modes merged" 2 r.Merge_flow.n_merged;
        List.iter Sys.remove paths;
        Unix.rmdir dir);
    tc "strict: unreadable file raises Sys_error" (fun () ->
        let design, _ = tiny_sources () in
        match
          Merge_flow.run_files ~policy:Merge_flow.Strict ~design
            [ "/nonexistent/ghost.sdc" ]
        with
        | _ -> Alcotest.fail "expected Sys_error"
        | exception Sys_error _ -> ());
    tc "permissive equals strict on clean inputs" (fun () ->
        let design, sources = tiny_sources () in
        let rp =
          Merge_flow.run_sources ~policy:Merge_flow.Permissive ~design sources
        in
        let rs =
          Merge_flow.run_sources ~policy:Merge_flow.Strict ~design sources
        in
        check Alcotest.int "same merged count" rs.Merge_flow.n_merged
          rp.Merge_flow.n_merged;
        check Alcotest.int "nothing quarantined" 0
          (List.length rp.Merge_flow.quarantined);
        check Alcotest.int "nothing degraded" 0 (List.length rp.Merge_flow.degraded));
  ]

let () =
  Alcotest.run "integration"
    [
      "flow",
      flow_cases @ [ sta_never_optimistic_case; idempotence_case; random_flow_prop ];
      "quarantine", quarantine_cases;
    ]
