(* @perf-smoke: subprocess golden runs of the performance flight
   recorder CLI (`modemerge perf record/diff/check`, DESIGN.md §13).

   The modemerge binary (path in the MODEMERGE env var, wired by the
   dune @perf-smoke rule) records runs into a scratch history
   directory; the suite then validates the JSONL schema line by line
   with Mm_util.Runlog's own parser and golden-tests the regression
   gate's exit codes in all three directions:

   - identical reruns pass (exit 0) at jobs=1 and jobs=4,
   - an injected MM_CHAOS task delay flags a regression (exit 1),
   - a missing baseline is a fatal usage error (exit 2), including
     when history exists but only at a different job count (span
     self-times are not comparable across concurrency levels).

   Thresholds are relaxed above the 10% default because CI containers
   may expose a single core: jobs=4 oversubscribes it and run-to-run
   span jitter can exceed 2x, while the chaos delay (150ms per pool
   task) inflates the workload's span self-times by well over 10x —
   so the pass/fail margins stay far apart even on a noisy box. *)

module Runlog = Mm_util.Runlog

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Scratch tree + subprocess helpers (same idiom as test_chaos.ml).    *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_root =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_perf_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () -> rm_rf dir);
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let nonempty_lines path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let modemerge =
  lazy
    (match Sys.getenv_opt "MODEMERGE" with
    | Some p when p <> "" -> p
    | _ ->
      Alcotest.fail
        "MODEMERGE not set: run this suite via `dune build @perf-smoke`, \
         which wires in the modemerge binary")

let sh fmt =
  Printf.ksprintf
    (fun cmd ->
      match Sys.command cmd with
      | n -> n
      | exception Sys_error e -> Alcotest.failf "command failed to run: %s" e)
    fmt

(* Run one `modemerge perf` subcommand, capturing stdout+stderr to a
   log file; returns (exit code, combined output). [env] is a raw
   VAR=value prefix for the shell (chaos injection). *)
let perf ?(env = "") args =
  let log = Filename.concat scratch_root "cmd.log" in
  let rc =
    sh "%s %s perf %s > %s 2>&1" env
      (Filename.quote (Lazy.force modemerge))
      args (Filename.quote log)
  in
  (rc, read_file log)

let hist = Filename.concat scratch_root "history"
let hist_q = Filename.quote hist
let perf_jsonl = Filename.concat hist "perf.jsonl"

(* ------------------------------------------------------------------ *)
(* record: four baseline runs, two per job count                       *)

let test_record () =
  List.iter
    (fun jobs ->
      for i = 1 to 2 do
        let rc, out =
          perf (Printf.sprintf "record --jobs %d --repeat 1 --history-dir %s"
                  jobs hist_q)
        in
        if rc <> 0 then
          Alcotest.failf "record #%d at jobs=%d exited %d:\n%s" i jobs rc out;
        check Alcotest.bool
          (Printf.sprintf "record #%d at jobs=%d reports the path" i jobs)
          true
          (contains ~needle:"recorded run" out
          && contains ~needle:"perf.jsonl" out)
      done)
    [ 1; 4 ]

let test_schema () =
  let lines = nonempty_lines perf_jsonl in
  check Alcotest.int "four history lines" 4 (List.length lines);
  List.iteri
    (fun i line ->
      let where = Printf.sprintf "line %d" (i + 1) in
      (* Structurally valid JSON object carrying the schema stamp... *)
      (match Runlog.parse_json line with
      | Runlog.Obj _ as j ->
        (match Runlog.member "schema" j with
        | Some (Runlog.Str s) ->
          check Alcotest.string (where ^ " schema") Runlog.schema_version s
        | _ -> Alcotest.failf "%s: no string \"schema\" field" where)
      | _ -> Alcotest.failf "%s: not a JSON object" where
      | exception Runlog.Parse_error e ->
        Alcotest.failf "%s: malformed JSON (%s)" where e);
      (* ...that round-trips into a full record. *)
      match Runlog.of_json_string line with
      | None -> Alcotest.failf "%s: of_json_string rejected it" where
      | Some r ->
        check Alcotest.bool (where ^ " jobs is 1 or 4") true
          (r.Runlog.r_jobs = 1 || r.Runlog.r_jobs = 4);
        check Alcotest.string (where ^ " label") "perf" r.Runlog.r_label;
        check Alcotest.bool (where ^ " has spans") true
          (r.Runlog.r_spans <> []);
        check Alcotest.bool (where ^ " span times are finite") true
          (List.for_all
             (fun s ->
               Float.is_finite s.Runlog.ss_total_s
               && Float.is_finite s.Runlog.ss_self_s
               && s.Runlog.ss_calls > 0)
             r.Runlog.r_spans);
        check Alcotest.bool (where ^ " counts pool tasks") true
          (match List.assoc_opt "pool.tasks_executed" r.Runlog.r_counters with
          | Some n -> n > 0
          | None -> false);
        check Alcotest.bool (where ^ " has GC totals") true
          (match List.assoc_opt "gc.minor_words" r.Runlog.r_gc with
          | Some w -> w > 0.
          | None -> false))
    lines;
  (* The library loader agrees with the line-by-line parse. *)
  let records = Runlog.load ~dir:hist ~label:"perf" () in
  check Alcotest.int "load sees all four records" 4 (List.length records);
  check (Alcotest.list Alcotest.int) "jobs in append order" [ 1; 1; 4; 4 ]
    (List.map (fun r -> r.Runlog.r_jobs) records)

(* ------------------------------------------------------------------ *)
(* check: identical reruns pass at both job counts                     *)

let run_check ?env ~jobs ~threshold ?(extra = "") () =
  perf ?env
    (Printf.sprintf
       "check --jobs %d --repeat 1 --history-dir %s --threshold %g %s" jobs
       hist_q threshold extra)

let test_check_pass_j1 () =
  let rc, out = run_check ~jobs:1 ~threshold:30. ~extra:"--record" () in
  if rc <> 0 then Alcotest.failf "check at jobs=1 exited %d:\n%s" rc out;
  check Alcotest.bool "no regression reported" false
    (contains ~needle:"REGRESSION" out);
  (* --record on a passing check appends the run to the history. *)
  check Alcotest.bool "passing check recorded" true
    (contains ~needle:"check passed; recorded" out);
  check Alcotest.int "history grew to five lines" 5
    (List.length (nonempty_lines perf_jsonl))

let test_check_pass_j4 () =
  let rc, out = run_check ~jobs:4 ~threshold:300. () in
  if rc <> 0 then Alcotest.failf "check at jobs=4 exited %d:\n%s" rc out;
  check Alcotest.bool "no regression reported" false
    (contains ~needle:"REGRESSION" out)

(* ------------------------------------------------------------------ *)
(* check: an injected slowdown must flag (exit 1)                      *)

let test_check_regression () =
  let rc, out =
    run_check ~env:"MM_CHAOS='pool.task@*=delay:150'" ~jobs:1 ~threshold:30. ()
  in
  if rc <> 1 then
    Alcotest.failf "chaos-delayed check expected exit 1, got %d:\n%s" rc out;
  check Alcotest.bool "report shows a REGRESSION row" true
    (contains ~needle:"REGRESSION" out);
  check Alcotest.bool "diagnostic carries the gate code" true
    (contains ~needle:"perf.regression" out);
  (* A failing check never records, even with --record. *)
  check Alcotest.int "history unchanged by the failing run" 5
    (List.length (nonempty_lines perf_jsonl))

(* ------------------------------------------------------------------ *)
(* check: missing baselines are a usage error (exit 2)                 *)

let test_check_no_history () =
  let empty = Filename.quote (Filename.concat scratch_root "empty") in
  let rc, out =
    perf
      (Printf.sprintf "check --jobs 1 --repeat 1 --history-dir %s" empty)
  in
  if rc <> 2 then
    Alcotest.failf "check with no history expected exit 2, got %d:\n%s" rc out;
  check Alcotest.bool "explains the missing baseline" true
    (contains ~needle:"no baseline history" out)

let test_check_jobs_mismatch () =
  (* History exists, but only at jobs=1/4 — a jobs=2 check has no
     comparable baseline and must refuse rather than compare across
     concurrency levels. *)
  let rc, out =
    perf
      (Printf.sprintf "check --jobs 2 --repeat 1 --history-dir %s" hist_q)
  in
  if rc <> 2 then
    Alcotest.failf "jobs-mismatched check expected exit 2, got %d:\n%s" rc out;
  check Alcotest.bool "names the missing job count" true
    (contains ~needle:"jobs=2" out)

(* ------------------------------------------------------------------ *)
(* diff: last two runs render                                          *)

let test_diff () =
  let rc, out = perf (Printf.sprintf "diff --history-dir %s" hist_q) in
  if rc <> 0 then Alcotest.failf "diff exited %d:\n%s" rc out;
  check Alcotest.bool "diff shows the allocation delta" true
    (contains ~needle:"gc allocated" out);
  check Alcotest.bool "diff shows span rows" true
    (contains ~needle:"merge.mergeability" out)

let () =
  Alcotest.run "perf-smoke"
    [
      ( "flight recorder",
        [
          tc "record appends schema-versioned runs (jobs=1 and jobs=4)"
            test_record;
          tc "history lines parse and round-trip" test_schema;
          tc "check passes on an identical rerun (jobs=1, --record)"
            test_check_pass_j1;
          tc "check passes on an identical rerun (jobs=4)" test_check_pass_j4;
          tc "check flags an injected 150ms task delay (exit 1)"
            test_check_regression;
          tc "check without history is fatal (exit 2)" test_check_no_history;
          tc "check without same-jobs history is fatal (exit 2)"
            test_check_jobs_mismatch;
          tc "diff renders the last two runs" test_diff;
        ] );
    ]
