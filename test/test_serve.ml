(* @serve-smoke: the telemetry plane against the shipped binary.

   Subprocess golden tests of `modemerge merge --serve`:

   - a merge stretched by an MM_CHAOS task delay is scraped while it
     runs — every endpoint must answer mid-flight, repeatedly — and
     its merged SDC bytes must be identical to a run without --serve,
     at jobs=1 and jobs=4 (serving is read-only w.r.t. results);
   - SIGINT mid-merge must exit 130 and still flush a valid Chrome
     trace file and a schema-versioned NDJSON event dump ending in a
     `run.signal` event (previously Ctrl-C lost every pending export).

   Port races are impossible by construction: every server binds
   127.0.0.1:0 and the test parses the OS-assigned port from the
   `serving telemetry on http://…` stderr line. *)

module Httpd = Mm_util.Httpd
module Runlog = Mm_util.Runlog
module Eventlog = Mm_util.Eventlog

let () = Printexc.record_backtrace true

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Scratch dir, fixture, process plumbing                              *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_root =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_serve_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Sys.mkdir dir 0o755;
  at_exit (fun () -> rm_rf dir);
  dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let modemerge =
  lazy
    (match Sys.getenv_opt "MODEMERGE" with
    | Some p when p <> "" -> p
    | _ ->
      Alcotest.fail
        "MODEMERGE not set: run this suite via `dune build @serve-smoke`, \
         which wires in the modemerge binary")

let fixture =
  lazy
    (let exe = Lazy.force modemerge in
     let dir = Filename.concat scratch_root "fixture" in
     let rc =
       Sys.command
         (Printf.sprintf
            "%s gen -o %s --seed 11 --domains 2 --regs 10 --families 3,2 > %s \
             2>&1"
            (Filename.quote exe) (Filename.quote dir)
            (Filename.quote (Filename.concat scratch_root "gen.log")))
     in
     check Alcotest.int "gen exits cleanly" 0 rc;
     let sdcs =
       List.map
         (fun n -> Filename.concat dir (n ^ ".sdc"))
         [ "m0_0"; "m0_1"; "m0_2"; "m1_0"; "m1_1" ]
     in
     Filename.concat dir "design.nl", sdcs)

(* Spawn the binary with stdout/stderr redirected to files; returns the
   pid for signalling. [chaos] stretches the run via MM_CHAOS (a pure
   delay, so outputs are unaffected). *)
let spawn ?chaos ~tag args =
  let exe = Lazy.force modemerge in
  let out = Filename.concat scratch_root (tag ^ ".out") in
  let err = Filename.concat scratch_root (tag ^ ".err") in
  let argv = Array.of_list (exe :: args) in
  let env =
    let base =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 9 && String.sub kv 0 9 = "MM_CHAOS="))
    in
    Array.of_list
      (match chaos with
      | None -> base
      | Some spec -> ("MM_CHAOS=" ^ spec) :: base)
  in
  let flags = [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] in
  let out_fd = Unix.openfile out flags 0o644 in
  let err_fd = Unix.openfile err flags 0o644 in
  let pid =
    Fun.protect
      ~finally:(fun () ->
        Unix.close out_fd;
        Unix.close err_fd)
      (fun () -> Unix.create_process_env exe argv env Unix.stdin out_fd err_fd)
  in
  pid, out, err

(* [alive] must not lose the exit status it reaps, so both helpers go
   through one status cache. *)
let reaped : (int, Unix.process_status) Hashtbl.t = Hashtbl.create 4

let status_code pid = function
  | Unix.WEXITED n -> n
  | Unix.WSIGNALED s -> Alcotest.failf "child %d killed by signal %d" pid s
  | Unix.WSTOPPED s -> Alcotest.failf "child %d stopped by signal %d" pid s

let wait_exit pid =
  match Hashtbl.find_opt reaped pid with
  | Some st -> status_code pid st
  | None ->
    let _, st = Unix.waitpid [] pid in
    Hashtbl.replace reaped pid st;
    status_code pid st

let alive pid =
  if Hashtbl.mem reaped pid then false
  else
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ -> true
    | _, st ->
      Hashtbl.replace reaped pid st;
      false

(* Poll the stderr file for "serving telemetry on http://ADDR:PORT/"
   and return the port. The line is flushed before any pipeline work
   starts, so this resolves almost immediately. *)
let wait_for_port ~err ~pid =
  let deadline = Unix.gettimeofday () +. 10. in
  let parse () =
    let text = if Sys.file_exists err then read_file err else "" in
    let marker = "serving telemetry on http://" in
    let ml = String.length marker and tl = String.length text in
    let rec find i = if i + ml > tl then None else if String.sub text i ml = marker then Some (i + ml) else find (i + 1) in
    match find 0 with
    | None -> None
    | Some start -> (
      match String.index_from_opt text start '/' with
      | None -> None
      | Some slash -> (
        let hostport = String.sub text start (slash - start) in
        match String.rindex_opt hostport ':' with
        | None -> None
        | Some c ->
          int_of_string_opt
            (String.sub hostport (c + 1) (String.length hostport - c - 1))))
  in
  let rec go () =
    match parse () with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.failf "no serving line in %s after 10s (child %s)" err
          (if alive pid then "alive" else "dead")
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let merged_sdc_bytes out_dir =
  let names =
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".sdc")
         (Array.to_list (Sys.readdir out_dir)))
  in
  check Alcotest.bool "run produced merged SDCs" true (names <> []);
  List.map (fun n -> (n, read_file (Filename.concat out_dir n))) names

let merge_args ~jobs ~out ~extra =
  let netlist, sdcs = Lazy.force fixture in
  [ "merge"; "-n"; netlist; "--permissive"; "-j"; string_of_int jobs; "-o";
    out ]
  @ extra @ sdcs

(* ------------------------------------------------------------------ *)
(* Scrape-under-load + byte identity                                   *)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec find i = i + nl <= hl && (String.sub hay i nl = needle || find (i + 1)) in
  find 0

let baseline jobs =
  let out = Filename.concat scratch_root (Printf.sprintf "base_j%d" jobs) in
  rm_rf out;
  let pid, _, _ =
    spawn ~tag:(Printf.sprintf "base_j%d" jobs)
      (merge_args ~jobs ~out ~extra:[])
  in
  check Alcotest.int "baseline merge exits cleanly" 0 (wait_exit pid);
  merged_sdc_bytes out

let test_scrape_under_load jobs () =
  let tag = Printf.sprintf "serve_j%d" jobs in
  let out = Filename.concat scratch_root (tag ^ "_out") in
  rm_rf out;
  let pid, _, err =
    spawn ~chaos:"pool.task@*=delay:120" ~tag
      (merge_args ~jobs ~out ~extra:[ "--serve"; "127.0.0.1:0" ])
  in
  let port = wait_for_port ~err ~pid in
  (* Scrape every endpoint repeatedly while the merge is in flight.
     Near process exit a connect can be refused; that is only tolerated
     once the child is gone. *)
  let scrapes = ref 0 and failures = ref [] in
  let endpoints =
    [ "/metrics"; "/healthz"; "/progress"; "/events?n=50"; "/trace"; "/" ]
  in
  let validate path (status, body_text) =
    if status <> 200 then
      failures := Printf.sprintf "%s -> %d" path status :: !failures
    else
      match path with
      | "/metrics" ->
        if not (contains "# TYPE " body_text) then
          failures := "metrics body has no # TYPE line" :: !failures
      | "/healthz" ->
        if not (contains "\"status\":\"ok\"" body_text) then
          failures := "healthz not ok" :: !failures
      | "/events?n=50" ->
        if not (contains Eventlog.schema_version body_text) then
          failures := "events missing schema header" :: !failures
      | _ -> ()
  in
  let deadline = Unix.gettimeofday () +. 120. in
  let rec scrape_loop () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "merge under scrape did not finish within 120s";
    let child_alive = alive pid in
    let connected =
      List.for_all
        (fun path ->
          match Httpd.get ~port path with
          | reply ->
            incr scrapes;
            validate path reply;
            true
          | exception Unix.Unix_error _ -> false)
        endpoints
    in
    if connected && child_alive then begin
      Unix.sleepf 0.05;
      scrape_loop ()
    end
    else if not connected && child_alive then begin
      (* Server races ahead of the port line only transiently. *)
      Unix.sleepf 0.05;
      scrape_loop ()
    end
  in
  scrape_loop ();
  check Alcotest.int "merge under scrape exits cleanly" 0 (wait_exit pid);
  check Alcotest.bool
    (Printf.sprintf "scraped all endpoints mid-run (%d scrapes)" !scrapes)
    true
    (!scrapes >= List.length endpoints);
  (match !failures with
  | [] -> ()
  | fs -> Alcotest.failf "scrape failures: %s" (String.concat "; " fs));
  check
    Alcotest.(list (pair string string))
    (Printf.sprintf "merged SDC bytes identical with --serve at jobs=%d" jobs)
    (baseline jobs) (merged_sdc_bytes out)

(* ------------------------------------------------------------------ *)
(* SIGINT: exit 130 with flushed exports                                *)

let test_sigint_flushes () =
  let tag = "sigint" in
  let out = Filename.concat scratch_root (tag ^ "_out") in
  rm_rf out;
  let trace = Filename.concat scratch_root (tag ^ "_trace.json") in
  let events = Filename.concat scratch_root (tag ^ "_events.ndjson") in
  let pid, _, err =
    spawn ~chaos:"pool.task@*=delay:200" ~tag
      (merge_args ~jobs:1 ~out
         ~extra:
           [ "--serve"; "127.0.0.1:0"; "--trace"; trace; "--events"; events ])
  in
  (* Interrupt once the run is demonstrably in flight (server up and at
     least one pool task under way). *)
  let _port = wait_for_port ~err ~pid in
  Unix.sleepf 0.5;
  check Alcotest.bool "child still running when interrupted" true (alive pid);
  Unix.kill pid Sys.sigint;
  check Alcotest.int "SIGINT exits 130" 130 (wait_exit pid);
  (* The trace flushed and parses as one JSON document. *)
  check Alcotest.bool "trace file written" true (Sys.file_exists trace);
  (match Runlog.parse_json (read_file trace) with
  | _ -> ()
  | exception Runlog.Parse_error e ->
    Alcotest.failf "interrupted trace is not valid JSON: %s" e);
  (* The event dump flushed: schema header, parseable lines, and the
     run.signal event recorded by the handler. *)
  check Alcotest.bool "events file written" true (Sys.file_exists events);
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file events))
  in
  check Alcotest.bool "events dump has header + events" true
    (List.length lines >= 2);
  (match Runlog.parse_json (List.hd lines) with
  | j ->
    check Alcotest.bool "events header schema" true
      (Runlog.member "schema" j = Some (Runlog.Str Eventlog.schema_version))
  | exception Runlog.Parse_error e ->
    Alcotest.failf "events header does not parse: %s" e);
  let kinds =
    List.filter_map
      (fun line ->
        match Runlog.member "kind" (Runlog.parse_json line) with
        | Some (Runlog.Str k) -> Some k
        | _ -> None
        | exception Runlog.Parse_error _ -> None)
      (List.tl lines)
  in
  check Alcotest.bool "run.signal journaled" true
    (List.mem "run.signal" kinds);
  check Alcotest.bool "run.start journaled before the interrupt" true
    (List.mem "run.start" kinds)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve-smoke"
    [
      ( "serve",
        [
          tc "scrape all endpoints during a jobs=1 merge; bytes unchanged"
            (test_scrape_under_load 1);
          tc "scrape all endpoints during a jobs=4 merge; bytes unchanged"
            (test_scrape_under_load 4);
          tc "SIGINT mid-merge exits 130 with trace + event dump flushed"
            test_sigint_flushes;
        ] );
    ]
