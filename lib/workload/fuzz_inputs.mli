(** Deterministic fault injection for robustness testing.

    Mutates valid SDC (or other line-oriented) text into plausibly
    corrupted variants: deleted tokens, truncated files, garbage
    splices, duplicated commands, flipped delimiters. All randomness
    comes from an explicit {!Mm_util.Prng.t}, so a seed fully
    determines the corruption — the robustness suite replays the same
    faults on every run. *)

type mutation =
  | Delete_token     (** drop one word from a command line *)
  | Delete_line      (** drop a whole command *)
  | Duplicate_line   (** repeat a command verbatim *)
  | Truncate         (** cut the text at a random offset *)
  | Garbage_splice   (** insert a junk fragment at a random offset *)
  | Flip_char        (** overwrite one char with a hostile delimiter *)
  | Unbalance        (** insert a lone bracket/brace/quote *)

val all_mutations : mutation array
val mutation_name : mutation -> string

val apply : Mm_util.Prng.t -> mutation -> string -> string
(** Apply one mutation. Degenerate inputs (empty text, no command
    lines) are returned unchanged rather than failing. *)

val corrupt : ?rounds:int -> Mm_util.Prng.t -> string -> string
(** Apply 1 to [rounds] (default 3) random mutations in sequence. *)

val corrupt_seeded : seed:int -> ?rounds:int -> string -> string
(** [corrupt] with a fresh generator — the seed fully determines the
    result. *)
