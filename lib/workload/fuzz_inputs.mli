(** Deterministic fault injection for robustness testing.

    Mutates valid SDC (or other line-oriented) text into plausibly
    corrupted variants: deleted tokens, truncated files, garbage
    splices, duplicated commands, flipped delimiters. All randomness
    comes from an explicit {!Mm_util.Prng.t}, so a seed fully
    determines the corruption — the robustness suite replays the same
    faults on every run. *)

type mutation =
  | Delete_token     (** drop one word from a command line *)
  | Delete_line      (** drop a whole command *)
  | Duplicate_line   (** repeat a command verbatim *)
  | Truncate         (** cut the text at a random offset *)
  | Garbage_splice   (** insert a junk fragment at a random offset *)
  | Flip_char        (** overwrite one char with a hostile delimiter *)
  | Unbalance        (** insert a lone bracket/brace/quote *)

val all_mutations : mutation array
val mutation_name : mutation -> string

val apply : Mm_util.Prng.t -> mutation -> string -> string
(** Apply one mutation. Degenerate inputs (empty text, no command
    lines) are returned unchanged rather than failing. *)

val corrupt : ?rounds:int -> Mm_util.Prng.t -> string -> string
(** Apply 1 to [rounds] (default 3) random mutations in sequence. *)

val corrupt_seeded : seed:int -> ?rounds:int -> string -> string
(** [corrupt] with a fresh generator — the seed fully determines the
    result. *)

(** {2 Chaos mode: execution-fault scenarios}

    Where the mutations above corrupt {e inputs}, a chaos scenario
    injects an {e execution} fault — a task delay, a raised exception
    or a hard mid-run kill — at a named {!Mm_util.Chaos} site.
    Scenarios are plain data; {!chaos_spec} renders them to the
    [SITE@OCC=FAULT] spec language of {!Mm_util.Chaos.configure} /
    the [MM_CHAOS] environment variable. *)

type chaos_fault =
  | Delay_ms of int  (** sleep at the site *)
  | Raise            (** raise {!Mm_util.Chaos.Injected} at the site *)
  | Kill of int      (** [Unix._exit status] at the site *)

type chaos_scenario = {
  cs_name : string;            (** matrix-cell label *)
  cs_site : string;            (** compiled-in chaos site *)
  cs_occurrence : int option;  (** 1-based occurrence; [None] = every *)
  cs_fault : chaos_fault;
}

val chaos_fault_to_string : chaos_fault -> string

val chaos_spec : chaos_scenario list -> string
(** Render scenarios as one comma-separated fault plan. *)

val chaos_scenarios : chaos_scenario list
(** The standard scenario set: recoverable delay/raise faults at task,
    retry and IO sites, plus kill faults at each [merge.stage:*]
    checkpoint boundary. *)

val chaos_recoverable : chaos_scenario -> bool
(** False for [Kill] scenarios — those terminate the process and are
    only meaningful for subprocess runs under [--checkpoint]. *)

val chaos_matrix : ?jobs:int list -> unit -> (int * chaos_scenario) list
(** The jobs x scenario matrix (default jobs = [[1; 4]]). *)
