module Design = Mm_netlist.Design
module Library = Mm_netlist.Library
module Resolve = Mm_sdc.Resolve

let build () =
  let d = Design.create "figure1" in
  let port name dir = ignore (Design.add_port d name dir) in
  port "clk1" Design.In;
  port "clk2" Design.In;
  port "clk3" Design.In;
  port "clk4" Design.In;
  port "sel1" Design.In;
  port "sel2" Design.In;
  port "in1" Design.In;
  port "out1" Design.Out;
  let inst name cell = ignore (Design.add_inst d name cell) in
  List.iter
    (fun r -> inst r Library.dff)
    [ "rA"; "rB"; "rC"; "rX"; "rY"; "rZ" ];
  inst "inv1" Library.inv;
  inst "inv2" Library.inv;
  inst "inv3" Library.inv;
  inst "and1" Library.and2;
  inst "and2" Library.and2;
  inst "mux1" Library.mux2;
  inst "xorS" Library.xor2;
  (* Clock network: rA/rB/rC on clk1 directly; rX/rY/rZ through mux1
     selecting clk1 (S=0) or clk2 (S=1) under XOR(sel1, sel2). *)
  Design.wire d "n_clk1" [ "clk1"; "rA/CP"; "rB/CP"; "rC/CP"; "mux1/D0" ];
  Design.wire d "n_clk2" [ "clk2"; "mux1/D1" ];
  Design.wire d "n_sel1" [ "sel1"; "xorS/A" ];
  Design.wire d "n_sel2" [ "sel2"; "xorS/B" ];
  Design.wire d "n_sel" [ "xorS/Z"; "mux1/S" ];
  Design.wire d "n_gclk" [ "mux1/Z"; "rX/CP"; "rY/CP"; "rZ/CP" ];
  (* Data paths. *)
  Design.wire d "n_in1" [ "in1"; "rA/D" ];
  Design.wire d "n_ra" [ "rA/Q"; "inv1/A" ];
  Design.wire d "n_i1" [ "inv1/Z"; "rX/D"; "and1/A" ];
  Design.wire d "n_rb" [ "rB/Q"; "and1/B" ];
  Design.wire d "n_a1" [ "and1/Z"; "inv2/A" ];
  Design.wire d "n_i2" [ "inv2/Z"; "rY/D" ];
  Design.wire d "n_rc" [ "rC/Q"; "and2/A"; "inv3/A" ];
  Design.wire d "n_i3" [ "inv3/Z"; "and2/B" ];
  Design.wire d "n_a2" [ "and2/Z"; "rZ/D" ];
  Design.wire d "n_out" [ "rZ/Q"; "out1" ];
  d

let resolve d name src =
  let r = Resolve.mode_of_string d ~name src in
  match Resolve.warnings r with
  | [] -> r.Resolve.mode
  | w ->
    failwith
      (Printf.sprintf "paper_circuit %s: %s" name (String.concat "; " w))

(* Constraint Set 1 (Table 1 demo). *)
let constraint_set1 d =
  resolve d "set1"
    {|
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
|}

(* Constraint Set 2: clock union + latency merge. Mode A has clkA and
   clkB; mode B has clkB (conflicting name -> renamed clkB_1), clkC
   identical to A's clkB, and clkD. Union = four clocks. *)
let constraint_set2 d =
  let a =
    resolve d "A"
      {|
create_clock -name clkA -period 10 [get_ports clk1]
create_clock -name clkB -period 20 [get_ports clk2]
set_clock_latency -source -min 1.0 [get_clocks clkB]
|}
  and b =
    resolve d "B"
      {|
create_clock -name clkB -period 15 [get_ports clk3]
create_clock -name clkC -period 20 [get_ports clk2]
create_clock -name clkD -period 8 [get_ports clk4]
set_clock_latency -source -min 0.98 [get_clocks clkC]
|}
  in
  a, b

(* Constraint Set 3: conflicting case analysis; clock refinement infers
   disable_timing on sel1/sel2 and stops clkA at mux1/Z. *)
let constraint_set3 d =
  let a =
    resolve d "A"
      {|
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 0 sel1
set_case_analysis 1 sel2
|}
  and b =
    resolve d "B"
      {|
create_clock -period 10 -name clkA [get_ports clk1]
create_clock -period 20 -name clkB [get_ports clk2]
set_case_analysis 1 sel1
set_case_analysis 0 sel2
|}
  in
  a, b

(* Constraint Set 4: exception uniquification. The paper omits periods;
   10 is used. Mode A clocks through the mux D0 leg, mode B through D1. *)
let constraint_set4 d =
  let a =
    resolve d "A"
      {|
create_clock -name clkA -period 10 [get_ports clk1]
set_case_analysis 0 [get_pins mux1/S]
set_multicycle_path 2 -from [get_pins rA/CP]
|}
  and b =
    resolve d "B"
      {|
create_clock -name clkB -period 10 [get_ports clk2]
set_case_analysis 1 [get_pins mux1/S]
|}
  in
  a, b

(* Constraint Set 5: data refinement stopping clock propagation. *)
let constraint_set5 d =
  let a =
    resolve d "A"
      {|
create_clock -name ClkA -period 2 [get_ports clk1]
set_input_delay 2.0 -clock ClkA [get_ports in1]
set_output_delay 2.0 -clock ClkA [get_ports out1]
|}
  and b =
    resolve d "B"
      {|
create_clock -name ClkB -period 1 [get_ports clk1]
set_input_delay 2.0 -clock ClkB [get_ports in1]
set_output_delay 2.0 -clock ClkB [get_ports out1]
set_case_analysis 0 rB/Q
|}
  in
  a, b

(* Constraint Set 6: the 3-pass demo. *)
let constraint_set6 d =
  let a =
    resolve d "A"
      {|
create_clock -period 10 -name clkA [get_ports clk1]
set_false_path -to rX/D
set_false_path -to rY/D
set_false_path -through inv3/Z
|}
  and b =
    resolve d "B"
      {|
create_clock -period 10 -name clkA [get_ports clk1]
set_false_path -from rA/CP
set_false_path -to rZ/D
|}
  in
  a, b
