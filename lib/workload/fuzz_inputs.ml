module Prng = Mm_util.Prng

type mutation =
  | Delete_token
  | Delete_line
  | Duplicate_line
  | Truncate
  | Garbage_splice
  | Flip_char
  | Unbalance

let all_mutations =
  [|
    Delete_token; Delete_line; Duplicate_line; Truncate; Garbage_splice;
    Flip_char; Unbalance;
  |]

let mutation_name = function
  | Delete_token -> "delete-token"
  | Delete_line -> "delete-line"
  | Duplicate_line -> "duplicate-line"
  | Truncate -> "truncate"
  | Garbage_splice -> "garbage-splice"
  | Flip_char -> "flip-char"
  | Unbalance -> "unbalance"

let lines_of s = String.split_on_char '\n' s
let unlines ls = String.concat "\n" ls

(* Lines that carry a command (non-empty, non-comment). *)
let command_line_indices ls =
  List.filter_map
    (fun (i, l) ->
      let l = String.trim l in
      if l <> "" && l.[0] <> '#' then Some i else None)
    (List.mapi (fun i l -> i, l) ls)

let pick_command_line rng ls =
  match command_line_indices ls with
  | [] -> None
  | idxs -> Some (List.nth idxs (Prng.int rng (List.length idxs)))

let garbage_pool =
  [|
    "]"; "["; "{"; "}"; "\""; "\\"; "@@@"; "[get_"; "set_"; "-bogus_flag";
    "set_voodoo 1 2 3"; "{unclosed"; "\"unclosed string"; "create_clock";
    ";;;["; "0x??";
  |]

let apply rng mutation src =
  if String.length src = 0 then src
  else
    match mutation with
    | Delete_token -> (
      let ls = lines_of src in
      match pick_command_line rng ls with
      | None -> src
      | Some i ->
        let words =
          String.split_on_char ' ' (List.nth ls i)
          |> List.filter (fun w -> w <> "")
        in
        let n = List.length words in
        if n <= 1 then src
        else
          let k = Prng.int rng n in
          let line' =
            String.concat " " (List.filteri (fun j _ -> j <> k) words)
          in
          unlines (List.mapi (fun j l -> if j = i then line' else l) ls))
    | Delete_line -> (
      let ls = lines_of src in
      match pick_command_line rng ls with
      | None -> src
      | Some i -> unlines (List.filteri (fun j _ -> j <> i) ls))
    | Duplicate_line -> (
      let ls = lines_of src in
      match pick_command_line rng ls with
      | None -> src
      | Some i ->
        let line = List.nth ls i in
        unlines
          (List.concat_map
             (fun (j, l) -> if j = i then [ l; line ] else [ l ])
             (List.mapi (fun j l -> j, l) ls)))
    | Truncate ->
      let n = Prng.int rng (String.length src + 1) in
      String.sub src 0 n
    | Garbage_splice ->
      let pos = Prng.int rng (String.length src + 1) in
      let g = Prng.pick rng garbage_pool in
      String.sub src 0 pos ^ g ^ String.sub src pos (String.length src - pos)
    | Flip_char ->
      let pos = Prng.int rng (String.length src) in
      let pool = "[]{}\";#\\xq0" in
      let c = pool.[Prng.int rng (String.length pool)] in
      let b = Bytes.of_string src in
      Bytes.set b pos c;
      Bytes.to_string b
    | Unbalance ->
      let pos = Prng.int rng (String.length src + 1) in
      let g = Prng.pick rng [| "["; "{"; "\""; "]" |] in
      String.sub src 0 pos ^ g ^ String.sub src pos (String.length src - pos)

let corrupt ?(rounds = 3) rng src =
  let n = 1 + Prng.int rng rounds in
  let rec go i acc =
    if i >= n then acc else go (i + 1) (apply rng (Prng.pick rng all_mutations) acc)
  in
  go 0 src

let corrupt_seeded ~seed ?rounds src = corrupt ?rounds (Prng.create seed) src

(* ------------------------------------------------------------------ *)
(* Chaos mode: execution-fault scenarios

   Where the mutations above corrupt inputs, a chaos scenario injects
   an execution fault (delay, exception, mid-run kill) at a named
   Mm_util.Chaos site. Scenarios are plain data so the chaos suite can
   build its jobs x fault matrix and render each cell to a spec string
   for [Chaos.configure] (in-process) or MM_CHAOS (subprocess kills). *)

type chaos_fault = Delay_ms of int | Raise | Kill of int

type chaos_scenario = {
  cs_name : string;
  cs_site : string;
  cs_occurrence : int option; (* None = every occurrence *)
  cs_fault : chaos_fault;
}

let chaos_fault_to_string = function
  | Delay_ms ms -> Printf.sprintf "delay:%d" ms
  | Raise -> "raise"
  | Kill status -> Printf.sprintf "kill:%d" status

let chaos_spec scenarios =
  String.concat ","
    (List.map
       (fun c ->
         Printf.sprintf "%s@%s=%s" c.cs_site
           (match c.cs_occurrence with
           | None -> "*"
           | Some n -> string_of_int n)
           (chaos_fault_to_string c.cs_fault))
       scenarios)

(* The standard scenario set. Delay/raise faults are recoverable
   in-process (absorbed by the retry rung); kill faults terminate the
   process at a stage boundary and only make sense for subprocess runs
   exercising --checkpoint/--resume. *)
let chaos_scenarios =
  [
    { cs_name = "task-delay"; cs_site = "pool.task"; cs_occurrence = Some 2;
      cs_fault = Delay_ms 30 };
    { cs_name = "task-raise"; cs_site = "pool.task"; cs_occurrence = Some 1;
      cs_fault = Raise };
    { cs_name = "task-raise-late"; cs_site = "pool.task";
      cs_occurrence = Some 5; cs_fault = Raise };
    { cs_name = "retry-raise"; cs_site = "pool.retry"; cs_occurrence = Some 1;
      cs_fault = Raise };
    { cs_name = "io-raise"; cs_site = "io.read"; cs_occurrence = Some 1;
      cs_fault = Raise };
    { cs_name = "kill-load"; cs_site = "merge.stage:load";
      cs_occurrence = Some 1; cs_fault = Kill 137 };
    { cs_name = "kill-mergeability"; cs_site = "merge.stage:mergeability";
      cs_occurrence = Some 1; cs_fault = Kill 137 };
    { cs_name = "kill-cliques"; cs_site = "merge.stage:cliques";
      cs_occurrence = Some 1; cs_fault = Kill 137 };
  ]

let chaos_recoverable c = match c.cs_fault with Kill _ -> false | _ -> true

let chaos_matrix ?(jobs = [ 1; 4 ]) () =
  List.concat_map
    (fun j -> List.map (fun s -> j, s) chaos_scenarios)
    jobs
