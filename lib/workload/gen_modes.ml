module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Prng = Mm_util.Prng

type suite_params = {
  sp_seed : int;
  families : int list;
  base_period : float;
  scan_family : bool;
}

let default_suite =
  { sp_seed = 7; families = [ 3; 2 ]; base_period = 2.0; scan_family = true }

let buf = Buffer.create 1024

let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

(* A deterministic per-(family, index, salt) coin. *)
let coin sp ~family ~index ~salt =
  let rng = Prng.create (sp.sp_seed + (family * 7919) + (index * 104729) + salt) in
  Prng.bool rng

let is_scan_family (info : Gen_design.info) sp ~family =
  sp.scan_family
  && info.Gen_design.scan_clk_port <> None
  && family = List.length sp.families - 1
  && List.length sp.families > 1

let sdc_of_mode_spec (info : Gen_design.info) sp ~family ~index =
  Buffer.clear buf;
  let f = float_of_int family in
  let scan_mode = is_scan_family info sp ~family in
  if scan_mode then begin
    (* Scan shift: one slow clock on the scan port, scan enable on. *)
    (match info.Gen_design.scan_clk_port with
    | Some sc ->
      line "create_clock -name scan_shift -period %g [get_ports %s]"
        (sp.base_period *. 10.) sc
    | None -> assert false);
    (match info.Gen_design.scan_en_port with
    | Some se -> line "set_case_analysis 1 [get_ports %s]" se
    | None -> ());
    (* Clock muxes select the scan clock. *)
    List.iter
      (fun (dm : Gen_design.domain) ->
        match dm.Gen_design.dom_mux_sel with
        | Some sel -> line "set_case_analysis 1 [get_ports %s]" sel
        | None -> ())
      info.Gen_design.domains;
    (* Relaxed shift-path requirement, identical across the family. *)
    line "set_multicycle_path 2 -from [get_clocks scan_shift]"
  end
  else begin
    (* Functional clocks, one per domain; periods are family-wide. *)
    List.iteri
      (fun di port ->
        line "create_clock -name fclk_%d -period %g [get_ports %s]" di
          (sp.base_period *. (1. +. (0.25 *. float_of_int di)))
          port)
      info.Gen_design.clock_ports;
    (match info.Gen_design.scan_en_port with
    | Some se -> line "set_case_analysis 0 [get_ports %s]" se
    | None -> ());
    (* Clock mux selects: functional clock leg; the value flips with
       the mode index inside the family, planting the conflicting-case
       pattern of Constraint Set 3. *)
    List.iter
      (fun (dm : Gen_design.domain) ->
        match dm.Gen_design.dom_mux_sel with
        | Some sel ->
          line "set_case_analysis %d [get_ports %s]" (index mod 2) sel
        | None -> ())
      info.Gen_design.domains;
    (* Non-mux config pins: a mode-dependent subset gets case values. *)
    let mux_sels =
      List.filter_map (fun dm -> dm.Gen_design.dom_mux_sel) info.Gen_design.domains
    in
    List.iteri
      (fun ci cfg ->
        if not (List.mem cfg mux_sels) then begin
          if coin sp ~family ~index ~salt:(100 + ci) then
            line "set_case_analysis %d [get_ports %s]"
              (if coin sp ~family ~index ~salt:(200 + ci) then 1 else 0)
              cfg
        end)
      info.Gen_design.cfg_ports;
    (* IO delays relative to the domain clocks. *)
    List.iteri
      (fun i din ->
        let di = i mod List.length info.Gen_design.clock_ports in
        line "set_input_delay %g -clock fclk_%d [get_ports %s]"
          (0.2 +. (0.05 *. float_of_int (i mod 3)))
          di din)
      info.Gen_design.in_ports;
    List.iteri
      (fun i dout ->
        let di = i mod List.length info.Gen_design.clock_ports in
        line "set_output_delay %g -clock fclk_%d [get_ports %s]"
          (0.3 +. (0.05 *. float_of_int (i mod 2)))
          di dout)
      info.Gen_design.out_ports;
    (* Family-common cross-domain relaxation. *)
    if List.length info.Gen_design.clock_ports > 1 then begin
      line "set_multicycle_path 2 -from [get_clocks fclk_0] -to [get_clocks fclk_1]";
      line "set_clock_groups -asynchronous -name dom01 -group [get_clocks fclk_0] -group [get_clocks fclk_1]"
        |> ignore
    end;
    (* Mode-local false paths: droppable, exercised by refinement. *)
    if info.Gen_design.out_ports <> [] then begin
      let n = List.length info.Gen_design.out_ports in
      let j = index mod n in
      if coin sp ~family ~index ~salt:300 then
        line "set_false_path -to [get_ports %s]"
          (List.nth info.Gen_design.out_ports j)
    end;
    (* Family-common clock uncertainty; the value is family-specific
       and far outside tolerance across families, making distinct
       families non-mergeable (Table 5 structure). *)
    line "set_clock_uncertainty -setup %g [get_clocks fclk_0]"
      (0.05 *. (1. +. f));
    (* A design-rule limit on the first register output of each domain,
       identical across the family (merges to the same value). *)
    List.iteri
      (fun di _ -> line "set_max_capacitance 0.5 [get_pins r_%d_0_0/Q]" di)
      info.Gen_design.clock_ports
  end;
  (* Family-specific output load: the hard cross-family conflict. *)
  (match info.Gen_design.out_ports with
  | dout :: _ -> line "set_load %g [get_ports %s]" (0.01 *. (1. +. (0.5 *. f))) dout
  | [] -> ());
  Buffer.contents buf

let generate design info sp =
  List.concat
    (List.mapi
       (fun family n_modes ->
         List.init n_modes (fun index ->
             let name = Printf.sprintf "m%d_%d" family index in
             let src = sdc_of_mode_spec info sp ~family ~index in
             let r = Resolve.mode_of_string design ~name src in
             match Resolve.warnings r with
             | [] -> r.Resolve.mode
             | w ->
               failwith
                 (Printf.sprintf "gen_modes %s: %s" name (String.concat "; " w))))
       sp.families)
