(** Parser from token trees to {!Ast.command}s. *)

exception Error of { loc : Mm_util.Diag.loc option; msg : string }
(** Raised with a message naming the offending command and argument,
    plus the source location of the command when known. *)

val parse_command : ?loc:Mm_util.Diag.loc -> Lexer.tok list -> Ast.command
(** Parse one command; [loc] is attached to any {!Error} raised.
    @raise Error on malformed input, unknown command words or unknown
    flags. *)

val parse_string : ?file:string -> string -> Ast.command list
(** Tokenise and parse a whole SDC source. [file] (default
    ["<string>"]) names the source in error locations.
    @raise Error / {!Lexer.Error}. *)

val parse_file : string -> Ast.command list

val read_whole_file : string -> string
(** Read a file into a string. @raise Sys_error on IO failure. *)

val parse_string_recover :
  ?file:string -> string -> Ast.command list * Mm_util.Diag.t list
(** Error-recovering variant: never raises on syntax. Each malformed
    command (lexing or parsing) becomes a located [Error]-severity
    diagnostic and the parse resynchronises at the next command
    boundary, so the well-formed remainder of the file is kept. *)

val parse_file_recover : string -> Ast.command list * Mm_util.Diag.t list

val error_code : string -> string
(** Stable diagnostic code for a parse-error message
    (e.g. ["sdc.unknown-command"], ["lex.unterminated-brace"]);
    ["sdc.parse"] when unclassified. *)

val lex_code : string -> string
(** Stable diagnostic code for a lexer-error message; ["lex.error"]
    when unclassified. *)
