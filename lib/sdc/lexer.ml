type tok =
  | Atom of string
  | Bracket of tok list
  | Brace of string list

exception Error of { line : int; col : int; msg : string }

(* The lexer is a single pass with an explicit position; [line] tracks
   newline count and [bol] the offset of the current line start, so
   errors carry line:col. *)
type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let col st = st.pos - st.bol + 1
let error st line msg = raise (Error { line; col = col st; msg })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let is_word_char c =
  not (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '[' || c = ']'
     || c = '{' || c = '}' || c = ';' || c = '"' || c = '#')

let read_word st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some '\\' when st.pos + 1 < String.length st.src
                     && st.src.[st.pos + 1] <> '\n' ->
      (* escaped char inside a word *)
      advance st;
      advance st;
      go ()
    | Some c when is_word_char c && c <> '\\' ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let read_quoted st =
  let line0 = st.line in
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st line0 "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> error st line0 "unterminated string"
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ())
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let read_brace st =
  let line0 = st.line in
  advance st;
  (* opening brace *)
  let buf = Buffer.create 16 in
  let depth = ref 1 in
  let rec go () =
    match peek st with
    | None -> error st line0 "unterminated brace list"
    | Some '{' ->
      incr depth;
      Buffer.add_char buf '{';
      advance st;
      go ()
    | Some '}' ->
      decr depth;
      advance st;
      if !depth > 0 then begin
        Buffer.add_char buf '}';
        go ()
      end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let skip_comment st =
  let rec go () =
    match peek st with
    | None | Some '\n' -> ()
    | Some _ ->
      advance st;
      go ()
  in
  go ()

(* Reads tokens until an end condition; [closing] is [true] inside
   brackets (terminates on ']'), [false] at top level (terminates on
   newline / ';' / EOF). *)
let rec read_tokens st ~closing =
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let rec go () =
    match peek st with
    | None ->
      if closing then error st st.line "unterminated [" else List.rev !toks
    | Some ']' ->
      if closing then begin
        advance st;
        List.rev !toks
      end
      else error st st.line "unbalanced ]"
    | Some ('\n' | ';') when not closing ->
      advance st;
      List.rev !toks
    | Some ('\n' | ';') ->
      advance st;
      go ()
    | Some (' ' | '\t' | '\r') ->
      advance st;
      go ()
    | Some '\\' when st.pos + 1 < String.length st.src
                     && st.src.[st.pos + 1] = '\n' ->
      (* line continuation *)
      advance st;
      advance st;
      go ()
    | Some '\\' when st.pos + 1 >= String.length st.src ->
      advance st;
      go ()
    | Some '#' ->
      skip_comment st;
      go ()
    | Some '[' ->
      advance st;
      push (Bracket (read_tokens st ~closing:true));
      go ()
    | Some '{' ->
      push (Brace (read_brace st));
      go ()
    | Some '"' ->
      push (Atom (read_quoted st));
      go ()
    | Some '}' -> error st st.line "unbalanced }"
    | Some _ ->
      push (Atom (read_word st));
      go ()
  in
  go ()

type located = { lc_line : int; lc_col : int; lc_toks : tok list }

(* Consume whitespace, command separators and comments so the next
   read starts exactly at a command's first character. *)
let skip_blank st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\r' | '\n' | ';') ->
      advance st;
      go ()
    | Some '#' ->
      skip_comment st;
      go ()
    | _ -> ()
  in
  go ()

(* Recovery resynchronisation: drop input up to and including the next
   command boundary (newline or ';'). Always makes progress. *)
let resync st =
  let rec go () =
    match peek st with
    | None -> ()
    | Some ('\n' | ';') -> advance st
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let tokenize_located ?on_error src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let cmds = ref [] in
  let rec go () =
    skip_blank st;
    if st.pos < String.length st.src then begin
      let lc_line = st.line and lc_col = col st in
      (match read_tokens st ~closing:false with
      | [] -> ()
      | toks -> cmds := { lc_line; lc_col; lc_toks = toks } :: !cmds
      | exception Error { line; col; msg } -> (
        match on_error with
        | None -> raise (Error { line; col; msg })
        | Some f ->
          f ~line ~col ~msg;
          resync st));
      go ()
    end
  in
  go ();
  List.rev !cmds

let tokenize src = List.map (fun c -> c.lc_toks) (tokenize_located src)

let rec tok_to_string = function
  | Atom s -> s
  | Brace ws -> "{" ^ String.concat " " ws ^ "}"
  | Bracket ts -> "[" ^ String.concat " " (List.map tok_to_string ts) ^ "]"
