open Ast

let fnum v =
  (* Shortest float form that survives a round-trip through the lexer
     and [float_of_string]. *)
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

let write_patterns = function
  | [ p ] -> p
  | ps -> "{" ^ String.concat " " ps ^ "}"

let write_query = function
  | Get_ports ps -> Printf.sprintf "[get_ports %s]" (write_patterns ps)
  | Get_pins ps -> Printf.sprintf "[get_pins %s]" (write_patterns ps)
  | Get_cells ps -> Printf.sprintf "[get_cells %s]" (write_patterns ps)
  | Get_clocks ps -> Printf.sprintf "[get_clocks %s]" (write_patterns ps)
  | Get_nets ps -> Printf.sprintf "[get_nets %s]" (write_patterns ps)
  | All_inputs -> "[all_inputs]"
  | All_outputs -> "[all_outputs]"
  | All_clocks -> "[all_clocks]"
  | All_registers { clock_pins } ->
    if clock_pins then "[all_registers -clock_pins]" else "[all_registers]"
  | Name n -> n

let write_objects objs = String.concat " " (List.map write_query objs)

let mm_flags = function Min -> [ "-min" ] | Max -> [ "-max" ] | Both -> []

(* [default_setup_only] selects the command's implicit analysis sides:
   multicycle paths default to setup, the other exceptions to both. *)
let spec_parts ?(default_setup_only = false) spec =
  let from_flag =
    if spec.ps_rise_from then "-rise_from"
    else if spec.ps_fall_from then "-fall_from"
    else "-from"
  in
  let to_flag =
    if spec.ps_rise_to then "-rise_to"
    else if spec.ps_fall_to then "-fall_to"
    else "-to"
  in
  (match spec.ps_from with
  | Some objs -> [ from_flag; write_objects objs ]
  | None -> [])
  @ List.concat_map (fun objs -> [ "-through"; write_objects objs ]) spec.ps_through
  @ (match spec.ps_to with
    | Some objs -> [ to_flag; write_objects objs ]
    | None -> [])
  @
  match spec.ps_setup, spec.ps_hold with
  | true, false -> if default_setup_only then [] else [ "-setup" ]
  | false, true -> [ "-hold" ]
  | true, true | false, false -> []

let words ws = String.concat " " (List.filter (fun w -> w <> "") ws)

let write_command cmd =
  match cmd with
  | Create_clock c ->
    words
      ([ "create_clock" ]
      @ (match c.cc_name with Some n -> [ "-name"; n ] | None -> [])
      @ [ "-period"; fnum c.period ]
      @ (match c.waveform with
        | Some (r, f) -> [ "-waveform"; Printf.sprintf "{%s %s}" (fnum r) (fnum f) ]
        | None -> [])
      @ (if c.add then [ "-add" ] else [])
      @ (match c.comment with Some s -> [ "-comment"; "\"" ^ s ^ "\"" ] | None -> [])
      @ [ write_objects c.sources ])
  | Create_generated_clock g ->
    words
      ([ "create_generated_clock" ]
      @ (match g.gc_name with Some n -> [ "-name"; n ] | None -> [])
      @ [ "-source"; write_objects g.gc_source ]
      @ (match g.master_clock with
        | Some m -> [ "-master_clock"; m ]
        | None -> [])
      @ (if g.divide_by <> 1 then [ "-divide_by"; string_of_int g.divide_by ] else [])
      @ (if g.multiply_by <> 1 then [ "-multiply_by"; string_of_int g.multiply_by ]
         else [])
      @ (if g.invert then [ "-invert" ] else [])
      @ (if g.gc_add then [ "-add" ] else [])
      @ [ write_objects g.gc_targets ])
  | Set_clock_latency l ->
    words
      ([ "set_clock_latency" ]
      @ (if l.lat_source then [ "-source" ] else [])
      @ mm_flags l.lat_minmax
      @ [ fnum l.lat_value; write_objects l.lat_objects ])
  | Set_clock_uncertainty u ->
    words
      ([ "set_clock_uncertainty" ]
      @ (match u.unc_setup, u.unc_hold with
        | true, false -> [ "-setup" ]
        | false, true -> [ "-hold" ]
        | true, true | false, false -> [])
      @ [ fnum u.unc_value; write_objects u.unc_objects ])
  | Set_clock_transition tr ->
    words
      ([ "set_clock_transition" ]
      @ mm_flags tr.tra_minmax
      @ [ fnum tr.tra_value; write_objects tr.tra_clocks ])
  | Set_propagated_clock objs ->
    words [ "set_propagated_clock"; write_objects objs ]
  | Set_input_delay d | Set_output_delay d ->
    let name =
      match cmd with Set_input_delay _ -> "set_input_delay" | _ -> "set_output_delay"
    in
    words
      ([ name ]
      @ (match d.io_clock with Some c -> [ "-clock"; c ] | None -> [])
      @ (if d.io_clock_fall then [ "-clock_fall" ] else [])
      @ mm_flags d.io_minmax
      @ (if d.io_add_delay then [ "-add_delay" ] else [])
      @ [ fnum d.io_value; write_objects d.io_ports ])
  | Set_case_analysis c ->
    words
      [
        "set_case_analysis";
        (if c.ca_value then "1" else "0");
        write_objects c.ca_objects;
      ]
  | Set_disable_timing dt ->
    words
      ([ "set_disable_timing" ]
      @ (match dt.dis_from with Some f -> [ "-from"; f ] | None -> [])
      @ (match dt.dis_to with Some t -> [ "-to"; t ] | None -> [])
      @ [ write_objects dt.dis_objects ])
  | Set_false_path spec -> words ("set_false_path" :: spec_parts spec)
  | Set_multicycle_path m ->
    words
      ([ "set_multicycle_path"; string_of_int m.mcp_mult ]
      @ (if m.mcp_start then [ "-start" ] else [])
      @ (if m.mcp_end && m.mcp_start then [ "-end" ] else [])
      @ spec_parts ~default_setup_only:true m.mcp_spec)
  | Set_min_delay b ->
    words ([ "set_min_delay"; fnum b.db_value ] @ spec_parts b.db_spec)
  | Set_max_delay b ->
    words ([ "set_max_delay"; fnum b.db_value ] @ spec_parts b.db_spec)
  | Set_clock_groups g ->
    let kind =
      match g.cg_kind with
      | Physically_exclusive -> "-physically_exclusive"
      | Logically_exclusive -> "-logically_exclusive"
      | Asynchronous -> "-asynchronous"
    in
    words
      ([ "set_clock_groups"; kind ]
      @ (match g.cg_name with Some n -> [ "-name"; n ] | None -> [])
      @ List.concat_map
          (fun objs -> [ "-group"; write_objects objs ])
          g.cg_groups)
  | Set_clock_sense s ->
    words
      ([ "set_clock_sense" ]
      @ (if s.sense_stop then [ "-stop_propagation" ] else [])
      @ (match s.sense_clocks with
        | Some objs -> [ "-clock"; write_objects objs ]
        | None -> [])
      @ [ write_objects s.sense_pins ])
  | Set_env e ->
    words
      ([ command_name cmd ]
      @ mm_flags e.env_minmax
      @ [ fnum e.env_value; write_objects e.env_objects ])
  | Set_drc d ->
    words [ command_name cmd; fnum d.drc_value; write_objects d.drc_objects ]

let write_commands ?header cmds =
  let body = String.concat "\n" (List.map write_command cmds) in
  match header with
  | None -> body ^ "\n"
  | Some h -> "# " ^ h ^ "\n" ^ body ^ "\n"

let write_commands_annotated ?header ~comment cmds =
  let lines =
    List.concat
      (List.mapi
         (fun i cmd ->
           let body = write_command cmd in
           match comment i cmd with
           | None -> [ body ]
           | Some c -> [ "# " ^ c; body ])
         cmds)
  in
  let body = String.concat "\n" lines in
  match header with
  | None -> body ^ "\n"
  | Some h -> "# " ^ h ^ "\n" ^ body ^ "\n"

let write_file path ?header cmds =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write_commands ?header cmds))
