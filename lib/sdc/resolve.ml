module Design = Mm_netlist.Design
module Glob = Mm_util.Glob
module Diag = Mm_util.Diag
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
open Ast

type result = { mode : Mode.t; diags : Diag.t list }

let warnings r = Diag.messages r.diags

(* Expansion result of one object query. *)
type objset = {
  o_pins : Design.pin_id list;
  o_insts : Design.inst_id list;
  o_clocks : string list;
}

let empty_objset = { o_pins = []; o_insts = []; o_clocks = [] }

let union a b =
  {
    o_pins = a.o_pins @ b.o_pins;
    o_insts = a.o_insts @ b.o_insts;
    o_clocks = a.o_clocks @ b.o_clocks;
  }

type state = {
  design : Design.t;
  mutable clocks : Mode.clock list; (* reversed *)
  attrs : (string, Mode.clock_attr) Hashtbl.t;
  mutable io_delays : Mode.io_delay list; (* reversed *)
  mutable cases : (Design.pin_id * bool) list;
  mutable disables : Mode.disable list;
  mutable exceptions : Mode.exc list;
  mutable groups : Mode.clock_group list;
  mutable senses : Mode.clock_sense list;
  mutable envs : Mode.env_constraint list;
  mutable drcs : Mode.drc_limit list;
  floc : Diag.loc option; (* file-level location for resolve diagnostics *)
  diags : Diag.collector;
}

let warn st ~code fmt = Diag.addf st.diags ?loc:st.floc Diag.Warning ~code fmt

let clock_names st = List.map (fun c -> c.Mode.clk_name) st.clocks

(* ------------------------------------------------------------------ *)
(* Query expansion                                                     *)

let match_ports st pats =
  let d = st.design in
  List.concat_map
    (fun pat ->
      let g = Glob.compile pat in
      match Glob.literal g with
      | Some name -> (
        match Design.find_port d name with
        | Some p -> [ Design.port_pin d p ]
        | None ->
          warn st ~code:"sdc.no-match" "get_ports: no port matches %s" pat;
          [])
      | None ->
        let acc = ref [] in
        Design.iter_ports d (fun p ->
            if Glob.matches g (Design.port_name d p) then
              acc := Design.port_pin d p :: !acc);
        if !acc = [] then warn st ~code:"sdc.no-match" "get_ports: no port matches %s" pat;
        List.rev !acc)
    pats

let match_pins st pats =
  let d = st.design in
  List.concat_map
    (fun pat ->
      let g = Glob.compile pat in
      match Glob.literal g with
      | Some name -> (
        match Design.pin_of_name d name with
        | Some p -> [ p ]
        | None ->
          warn st ~code:"sdc.no-match" "get_pins: no pin matches %s" pat;
          [])
      | None ->
        let acc = ref [] in
        Design.iter_pins d (fun p ->
            match Design.pin_owner d p with
            | Design.Inst_pin _ ->
              if Glob.matches g (Design.pin_name d p) then acc := p :: !acc
            | Design.Port_pin _ -> ());
        if !acc = [] then warn st ~code:"sdc.no-match" "get_pins: no pin matches %s" pat;
        List.rev !acc)
    pats

let match_cells st pats =
  let d = st.design in
  List.concat_map
    (fun pat ->
      let g = Glob.compile pat in
      match Glob.literal g with
      | Some name -> (
        match Design.find_inst d name with
        | Some i -> [ i ]
        | None ->
          warn st ~code:"sdc.no-match" "get_cells: no cell matches %s" pat;
          [])
      | None ->
        let acc = ref [] in
        Design.iter_insts d (fun i ->
            if Glob.matches g (Design.inst_name d i) then acc := i :: !acc);
        if !acc = [] then warn st ~code:"sdc.no-match" "get_cells: no cell matches %s" pat;
        List.rev !acc)
    pats

let match_clocks st pats =
  let names = clock_names st in
  List.concat_map
    (fun pat ->
      let g = Glob.compile pat in
      let hits = List.filter (Glob.matches g) names in
      if hits = [] then warn st ~code:"sdc.no-match" "get_clocks: no clock matches %s" pat;
      hits)
    pats

let match_nets st pats =
  (* A net used as a timing object stands for its connected pins; the
     driver pin is the canonical representative for -through. *)
  let d = st.design in
  List.concat_map
    (fun pat ->
      let g = Glob.compile pat in
      let nets = ref [] in
      (match Glob.literal g with
      | Some name -> (
        match Design.find_net d name with
        | Some n -> nets := [ n ]
        | None -> warn st ~code:"sdc.no-match" "get_nets: no net matches %s" pat)
      | None ->
        Design.iter_nets d (fun n ->
            if Glob.matches g (Design.net_name d n) then nets := n :: !nets));
      List.concat_map
        (fun n ->
          match Design.net_driver d n with Some p -> [ p ] | None -> [])
        (List.rev !nets))
    pats

let all_registers st ~clock_pins =
  let d = st.design in
  let regs = Design.registers d in
  if clock_pins then
    {
      empty_objset with
      o_pins =
        List.map
          (fun i ->
            let cell = Design.inst_cell d i in
            match cell.Mm_netlist.Lib_cell.seq with
            | Some seq -> Design.inst_pin d i seq.Mm_netlist.Lib_cell.clock_pin
            | None -> assert false)
          regs;
    }
  else { empty_objset with o_insts = regs }

let resolve_name st n =
  (* Bare names: pin/port first (the common case in the paper), then
     clock, then instance, then net driver. *)
  match Design.pin_of_name st.design n with
  | Some p -> { empty_objset with o_pins = [ p ] }
  | None ->
    if List.exists (String.equal n) (clock_names st) then
      { empty_objset with o_clocks = [ n ] }
    else (
      match Design.find_inst st.design n with
      | Some i -> { empty_objset with o_insts = [ i ] }
      | None -> (
        match Design.find_net st.design n with
        | Some net -> (
          match Design.net_driver st.design net with
          | Some p -> { empty_objset with o_pins = [ p ] }
          | None ->
            warn st ~code:"sdc.no-driver" "object %s: net has no driver" n;
            empty_objset)
        | None ->
          warn st ~code:"sdc.unresolved-object" "unresolved object %s" n;
          empty_objset))

let expand_query st = function
  | Get_ports pats -> { empty_objset with o_pins = match_ports st pats }
  | Get_pins pats -> { empty_objset with o_pins = match_pins st pats }
  | Get_cells pats -> { empty_objset with o_insts = match_cells st pats }
  | Get_clocks pats -> { empty_objset with o_clocks = match_clocks st pats }
  | Get_nets pats -> { empty_objset with o_pins = match_nets st pats }
  | All_inputs ->
    let acc = ref [] in
    Design.iter_ports st.design (fun p ->
        if Design.port_dir st.design p = Design.In then
          acc := Design.port_pin st.design p :: !acc);
    { empty_objset with o_pins = List.rev !acc }
  | All_outputs ->
    let acc = ref [] in
    Design.iter_ports st.design (fun p ->
        if Design.port_dir st.design p = Design.Out then
          acc := Design.port_pin st.design p :: !acc);
    { empty_objset with o_pins = List.rev !acc }
  | All_clocks -> { empty_objset with o_clocks = clock_names st }
  | All_registers { clock_pins } -> all_registers st ~clock_pins
  | Name n -> resolve_name st n

let expand_objects st objs =
  List.fold_left (fun acc q -> union acc (expand_query st q)) empty_objset objs

let pins_only st ctx objs =
  let o = expand_objects st objs in
  if o.o_insts <> [] || o.o_clocks <> [] then
    warn st ~code:"sdc.type-mismatch" "%s: expected pins/ports only" ctx;
  o.o_pins

let clocks_only st ctx objs =
  let o = expand_objects st objs in
  if o.o_pins <> [] || o.o_insts <> [] then warn st ~code:"sdc.type-mismatch" "%s: expected clocks" ctx;
  o.o_clocks

(* ------------------------------------------------------------------ *)
(* Command application                                                 *)

let update_attr st name f =
  let cur =
    match Hashtbl.find_opt st.attrs name with
    | Some a -> a
    | None -> Mode.empty_attr
  in
  Hashtbl.replace st.attrs name (f cur)

let add_clock st (c : Mode.clock) ~add =
  (* Without -add, a new clock displaces existing clocks sharing any
     source pin (standard SDC semantics). Same-name clocks are always
     replaced. *)
  let displaced existing =
    String.equal existing.Mode.clk_name c.clk_name
    || (not add)
       && existing.Mode.sources <> []
       && List.exists (fun s -> List.mem s existing.Mode.sources) c.sources
  in
  let removed = List.filter displaced st.clocks in
  List.iter
    (fun old ->
      if not (String.equal old.Mode.clk_name c.clk_name) then
        warn st ~code:"sdc.clock-displaced" "clock %s displaced by %s (no -add)" old.Mode.clk_name
          c.clk_name)
    removed;
  st.clocks <- c :: List.filter (fun e -> not (displaced e)) st.clocks

let apply_create_clock st (c : create_clock) =
  let sources = pins_only st "create_clock" c.sources in
  let name =
    match c.cc_name with
    | Some n -> n
    | None -> (
      match sources with
      | p :: _ -> Design.pin_name st.design p
      | [] ->
        warn st ~code:"sdc.virtual-clock" "create_clock: unnamed virtual clock";
        "virtual")
  in
  let waveform =
    match c.waveform with Some w -> w | None -> 0., c.period /. 2.
  in
  add_clock st
    {
      Mode.clk_name = name;
      period = c.period;
      waveform;
      sources = List.sort_uniq compare sources;
      generated = None;
    }
    ~add:c.add

let apply_generated_clock st (g : create_generated_clock) =
  let targets = pins_only st "create_generated_clock" g.gc_targets in
  let master_name =
    match g.master_clock with
    | Some m -> Some m
    | None -> (
      (* Infer the master from the -source pin: any clock whose source
         set contains it. *)
      let source_pins = pins_only st "create_generated_clock -source" g.gc_source in
      let candidates =
        List.filter
          (fun c ->
            List.exists (fun p -> List.mem p c.Mode.sources) source_pins)
          st.clocks
      in
      match candidates with c :: _ -> Some c.Mode.clk_name | [] -> None)
  in
  match master_name with
  | None -> warn st ~code:"sdc.no-master" "create_generated_clock: cannot determine master clock"
  | Some master -> (
    match List.find_opt (fun c -> String.equal c.Mode.clk_name master) st.clocks with
    | None -> warn st ~code:"sdc.unknown-master" "create_generated_clock: unknown master %s" master
    | Some mclk ->
      let period =
        mclk.Mode.period *. float_of_int g.divide_by /. float_of_int g.multiply_by
      in
      let name =
        match g.gc_name with
        | Some n -> n
        | None -> (
          match targets with
          | p :: _ -> Design.pin_name st.design p
          | [] ->
            warn st ~code:"sdc.virtual-clock" "create_generated_clock: unnamed clock";
            "gen")
      in
      let waveform =
        if g.invert then period /. 2., period else 0., period /. 2.
      in
      add_clock st
        {
          Mode.clk_name = name;
          period;
          waveform;
          sources = List.sort_uniq compare targets;
          generated =
            Some
              {
                Mode.master;
                g_divide = g.divide_by;
                g_multiply = g.multiply_by;
                g_invert = g.invert;
              };
        }
        ~add:g.gc_add)

let apply_latency st (l : set_clock_latency) =
  let clocks = clocks_only st "set_clock_latency" l.lat_objects in
  List.iter
    (fun name ->
      update_attr st name (fun a ->
          let a =
            if l.lat_minmax = Min || l.lat_minmax = Both then
              if l.lat_source then
                { a with Mode.src_latency_min = Some l.lat_value }
              else { a with Mode.net_latency_min = Some l.lat_value }
            else a
          in
          if l.lat_minmax = Max || l.lat_minmax = Both then
            if l.lat_source then
              { a with Mode.src_latency_max = Some l.lat_value }
            else { a with Mode.net_latency_max = Some l.lat_value }
          else a))
    clocks

let apply_uncertainty st (u : set_clock_uncertainty) =
  let clocks = clocks_only st "set_clock_uncertainty" u.unc_objects in
  List.iter
    (fun name ->
      update_attr st name (fun a ->
          let a =
            if u.unc_setup then
              { a with Mode.uncertainty_setup = Some u.unc_value }
            else a
          in
          if u.unc_hold then { a with Mode.uncertainty_hold = Some u.unc_value }
          else a))
    clocks

let apply_transition st (tr : set_clock_transition) =
  let clocks = clocks_only st "set_clock_transition" tr.tra_clocks in
  List.iter
    (fun name ->
      update_attr st name (fun a ->
          let a =
            if tr.tra_minmax = Min || tr.tra_minmax = Both then
              { a with Mode.transition_min = Some tr.tra_value }
            else a
          in
          if tr.tra_minmax = Max || tr.tra_minmax = Both then
            { a with Mode.transition_max = Some tr.tra_value }
          else a))
    clocks

let apply_propagated st objs =
  let clocks = clocks_only st "set_propagated_clock" objs in
  List.iter
    (fun name -> update_attr st name (fun a -> { a with Mode.propagated = true }))
    clocks

let apply_io_delay st (d : io_delay) ~input =
  let pins = pins_only st (if input then "set_input_delay" else "set_output_delay") d.io_ports in
  (match d.io_clock with
  | Some c when not (List.exists (String.equal c) (clock_names st)) ->
    warn st ~code:"sdc.unknown-clock" "io delay references unknown clock %s" c
  | _ -> ());
  List.iter
    (fun pin ->
      st.io_delays <-
        {
          Mode.iod_input = input;
          iod_pin = pin;
          iod_clock = d.io_clock;
          iod_clock_fall = d.io_clock_fall;
          iod_minmax = d.io_minmax;
          iod_value = d.io_value;
          iod_add = d.io_add_delay;
        }
        :: st.io_delays)
    pins

let apply_case st (c : set_case_analysis) =
  let pins = pins_only st "set_case_analysis" c.ca_objects in
  List.iter
    (fun pin ->
      match List.assoc_opt pin st.cases with
      | Some v when v <> c.ca_value ->
        warn st ~code:"sdc.conflicting-case" "conflicting case values on %s" (Design.pin_name st.design pin)
      | Some _ -> ()
      | None -> st.cases <- (pin, c.ca_value) :: st.cases)
    pins

let apply_disable st (dt : set_disable_timing) =
  let o = expand_objects st dt.dis_objects in
  if o.o_clocks <> [] then warn st ~code:"sdc.unsupported" "set_disable_timing: clocks not supported";
  List.iter (fun p -> st.disables <- Mode.Dis_pin p :: st.disables) o.o_pins;
  List.iter
    (fun i -> st.disables <- Mode.Dis_inst (i, dt.dis_from, dt.dis_to) :: st.disables)
    o.o_insts

let points_of_objects st ctx objs =
  let o = expand_objects st objs in
  ignore ctx;
  List.map (fun p -> Mode.P_pin p) o.o_pins
  @ List.map (fun c -> Mode.P_clock c) o.o_clocks
  @ List.map (fun i -> Mode.P_inst i) o.o_insts

let exc_of_spec st kind (spec : path_spec) =
  let resolve_points = function
    | None -> None
    | Some objs -> Some (points_of_objects st "path point" objs)
  in
  let edge rise fall =
    if rise then Mode.Rise_edge
    else if fall then Mode.Fall_edge
    else Mode.Any_edge
  in
  {
    Mode.exc_kind = kind;
    exc_setup = spec.ps_setup;
    exc_hold = spec.ps_hold;
    exc_from = resolve_points spec.ps_from;
    exc_from_edge = edge spec.ps_rise_from spec.ps_fall_from;
    exc_through =
      List.map (fun objs -> pins_only st "-through" objs) spec.ps_through;
    exc_to = resolve_points spec.ps_to;
    exc_to_edge = edge spec.ps_rise_to spec.ps_fall_to;
  }

let apply_exception st kind spec =
  st.exceptions <- exc_of_spec st kind spec :: st.exceptions

let apply_groups st (g : set_clock_groups) =
  let groups =
    List.map (fun objs -> clocks_only st "set_clock_groups" objs) g.cg_groups
  in
  st.groups <-
    { Mode.grp_kind = g.cg_kind; grp_name = g.cg_name; grp_clocks = groups }
    :: st.groups

let apply_sense st (s : set_clock_sense) =
  let pins = pins_only st "set_clock_sense" s.sense_pins in
  let clocks =
    Option.map (fun objs -> clocks_only st "set_clock_sense -clock" objs) s.sense_clocks
  in
  st.senses <-
    { Mode.cs_stop = s.sense_stop; cs_clocks = clocks; cs_pins = pins }
    :: st.senses

let apply_env st (e : set_env) =
  let pins = pins_only st (command_name (Set_env e)) e.env_objects in
  List.iter
    (fun pin ->
      st.envs <-
        {
          Mode.envc_kind = e.env_kind;
          envc_pin = pin;
          envc_minmax = e.env_minmax;
          envc_value = e.env_value;
        }
        :: st.envs)
    pins

let apply_drc st (d : set_drc) =
  let pins = pins_only st (command_name (Set_drc d)) d.drc_objects in
  List.iter
    (fun pin ->
      st.drcs <-
        { Mode.drcl_kind = d.drc_kind; drcl_pin = pin; drcl_value = d.drc_value }
        :: st.drcs)
    pins

let apply st = function
  | Create_clock c -> apply_create_clock st c
  | Create_generated_clock g -> apply_generated_clock st g
  | Set_clock_latency l -> apply_latency st l
  | Set_clock_uncertainty u -> apply_uncertainty st u
  | Set_clock_transition tr -> apply_transition st tr
  | Set_propagated_clock objs -> apply_propagated st objs
  | Set_input_delay d -> apply_io_delay st d ~input:true
  | Set_output_delay d -> apply_io_delay st d ~input:false
  | Set_case_analysis c -> apply_case st c
  | Set_disable_timing dt -> apply_disable st dt
  | Set_false_path spec -> apply_exception st Mode.False_path spec
  | Set_multicycle_path m ->
    apply_exception st
      (Mode.Multicycle { mult = m.mcp_mult; start = m.mcp_start })
      m.mcp_spec
  | Set_min_delay b -> apply_exception st (Mode.Min_delay b.db_value) b.db_spec
  | Set_max_delay b -> apply_exception st (Mode.Max_delay b.db_value) b.db_spec
  | Set_clock_groups g -> apply_groups st g
  | Set_clock_sense s -> apply_sense st s
  | Set_env e -> apply_env st e
  | Set_drc d -> apply_drc st d

let mode ?file ?(diags = []) design ~name cmds =
  Obs.with_span ~attrs:[ "mode", name ] "sdc.resolve" @@ fun () ->
  let st =
    {
      design;
      clocks = [];
      attrs = Hashtbl.create 16;
      io_delays = [];
      cases = [];
      disables = [];
      exceptions = [];
      groups = [];
      senses = [];
      envs = [];
      drcs = [];
      floc = Option.map Diag.loc file;
      diags = Diag.collector ();
    }
  in
  List.iter (apply st) cmds;
  let attrs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.attrs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    mode =
      {
        Mode.mode_name = name;
        design;
        clocks = List.rev st.clocks;
        attrs;
        io_delays = List.rev st.io_delays;
        cases = List.rev st.cases;
        disables = List.rev st.disables;
        exceptions = List.rev st.exceptions;
        groups = List.rev st.groups;
        senses = List.rev st.senses;
        envs = List.rev st.envs;
        drcs = List.rev st.drcs;
      };
    diags = diags @ Diag.to_list st.diags;
  }

let mode_of_string ?file design ~name src =
  let cmds =
    Obs.with_span ~attrs:[ "mode", name ] "sdc.parse" (fun () ->
        Parser.parse_string ?file src)
  in
  mode ?file design ~name cmds

let mode_of_file design ~name path =
  let cmds =
    Obs.with_span ~attrs:[ "mode", name ] "sdc.parse" (fun () ->
        Parser.parse_file path)
  in
  mode ~file:path design ~name cmds

(* Robust variants: syntax errors become diagnostics instead of
   exceptions; the well-formed commands still resolve. A resolution
   crash (a bug or an unexpected design/constraint combination) is
   downgraded to a Fatal diagnostic on an empty mode, so callers can
   quarantine rather than die. *)
let mode_of_string_robust ?file design ~name src =
  let cmds, parse_diags =
    Obs.with_span ~attrs:[ "mode", name ] "sdc.parse" (fun () ->
        Parser.parse_string_recover ?file src)
  in
  (* Each recovering-parse diagnostic is one malformed construct the
     parser skipped and resynchronised past. *)
  (match parse_diags with
  | [] -> ()
  | ds -> Metrics.incr ~by:(List.length ds) "sdc.commands_recovered");
  match mode ?file ~diags:parse_diags design ~name cmds with
  | r -> r
  | exception exn ->
    let loc = Option.map Diag.loc file in
    {
      mode = (mode ?file design ~name []).mode;
      diags =
        parse_diags
        @ [
            Diag.makef ?loc Diag.Fatal ~code:"sdc.resolve-crash"
              "resolution of mode %s failed: %s" name (Printexc.to_string exn);
          ];
    }

let mode_of_file_robust design ~name path =
  match Parser.read_whole_file path with
  | src -> mode_of_string_robust ~file:path design ~name src
  | exception Sys_error msg ->
    {
      mode = (mode design ~name []).mode;
      diags =
        [
          Diag.makef ~loc:(Diag.loc path) Diag.Fatal ~code:"io.read" "%s" msg;
        ];
    }

let mode_exn design ~name cmds =
  let r = mode design ~name cmds in
  match warnings r with
  | [] -> r.mode
  | w ->
    failwith
      (Printf.sprintf "Resolve.mode_exn(%s): %s" name (String.concat "; " w))
