(** Resolution of parsed SDC against a design, producing a {!Mode.t}.

    Commands are processed in file order (clocks must precede
    [get_clocks] references, as in real tools). Unresolvable objects
    yield [Warning] diagnostics rather than failures so that partially
    applicable constraint sets can still be analysed. *)

type result = { mode : Mode.t; diags : Mm_util.Diag.t list }

val warnings : result -> string list
(** Diagnostic messages only (legacy warning-list shape). *)

val mode :
  ?file:string ->
  ?diags:Mm_util.Diag.t list ->
  Mm_netlist.Design.t ->
  name:string ->
  Ast.command list ->
  result
(** [file] names the source in diagnostic locations; [diags] are
    prepended to the result (e.g. parse diagnostics from a recovering
    front end). *)

val mode_of_string :
  ?file:string -> Mm_netlist.Design.t -> name:string -> string -> result
(** Parse then resolve. @raise Parser.Error / Lexer.Error on syntax. *)

val mode_of_file : Mm_netlist.Design.t -> name:string -> string -> result

val mode_of_string_robust :
  ?file:string -> Mm_netlist.Design.t -> name:string -> string -> result
(** Error-recovering parse + resolve: never raises. Syntax errors
    become located [Error] diagnostics (the surviving commands still
    resolve); a resolution crash becomes a [Fatal] diagnostic on an
    empty mode. *)

val mode_of_file_robust :
  Mm_netlist.Design.t -> name:string -> string -> result
(** Like {!mode_of_string_robust}; an unreadable file yields a [Fatal]
    [io.read] diagnostic instead of raising [Sys_error]. *)

val mode_exn : Mm_netlist.Design.t -> name:string -> Ast.command list -> Mode.t
(** Like {!mode} but raises [Failure] on any diagnostic — used by tests
    and the paper walkthrough where constraints must resolve fully. *)
