open Ast
module Diag = Mm_util.Diag

exception Error of { loc : Diag.loc option; msg : string }

(* Internal: command parsers raise [Msg]; [parse_command] attaches the
   command's source location before the exception escapes. *)
exception Msg of string

let err fmt = Printf.ksprintf (fun s -> raise (Msg s)) fmt

(* ------------------------------------------------------------------ *)
(* Object queries                                                      *)

let patterns_of_toks cmd toks =
  List.concat_map
    (function
      | Lexer.Atom s ->
        if String.length s > 0 && s.[0] = '-' then
          err "%s: unsupported flag %s in object query" cmd s
        else [ s ]
      | Lexer.Brace ws -> ws
      | Lexer.Bracket _ -> err "%s: nested brackets in object query" cmd)
    toks

let query_of_bracket cmd toks =
  match toks with
  | Lexer.Atom "get_ports" :: rest -> Get_ports (patterns_of_toks cmd rest)
  | Lexer.Atom "get_pins" :: rest -> Get_pins (patterns_of_toks cmd rest)
  | Lexer.Atom "get_pin" :: rest -> Get_pins (patterns_of_toks cmd rest)
  | Lexer.Atom "get_port" :: rest -> Get_ports (patterns_of_toks cmd rest)
  | Lexer.Atom "get_cells" :: rest -> Get_cells (patterns_of_toks cmd rest)
  | Lexer.Atom "get_clocks" :: rest -> Get_clocks (patterns_of_toks cmd rest)
  | Lexer.Atom "get_nets" :: rest -> Get_nets (patterns_of_toks cmd rest)
  | [ Lexer.Atom "all_inputs" ] -> All_inputs
  | [ Lexer.Atom "all_outputs" ] -> All_outputs
  | [ Lexer.Atom "all_clocks" ] -> All_clocks
  | Lexer.Atom "all_registers" :: rest ->
    let clock_pins =
      List.exists (function Lexer.Atom "-clock_pins" -> true | _ -> false) rest
    in
    All_registers { clock_pins }
  | Lexer.Atom q :: _ -> err "%s: unsupported object query %s" cmd q
  | _ -> err "%s: malformed object query" cmd

let rec objects_of_tok cmd tok =
  match tok with
  | Lexer.Atom s -> [ Name s ]
  | Lexer.Brace ws -> List.map (fun w -> Name w) ws
  | Lexer.Bracket toks -> (
    (* A bracket is usually one query, but Tcl allows [list ...]-style
       nesting; treat a bracket of brackets as concatenation. *)
    match toks with
    | Lexer.Bracket _ :: _ -> List.concat_map (objects_of_tok cmd) toks
    | _ -> [ query_of_bracket cmd toks ])

(* ------------------------------------------------------------------ *)
(* Generic argument cursor                                             *)

type cursor = { cmd : string; mutable toks : Lexer.tok list }

let next_tok cur flag =
  match cur.toks with
  | [] -> err "%s: %s expects an argument" cur.cmd flag
  | t :: rest ->
    cur.toks <- rest;
    t

let next_atom cur flag =
  match next_tok cur flag with
  | Lexer.Atom s -> s
  | Lexer.Brace [ s ] -> s
  | _ -> err "%s: %s expects a word argument" cur.cmd flag

let next_float cur flag =
  let s = next_atom cur flag in
  match float_of_string_opt s with
  | Some f -> f
  | None -> err "%s: %s expects a number, got %s" cur.cmd flag s

let next_int cur flag =
  let s = next_atom cur flag in
  match int_of_string_opt s with
  | Some i -> i
  | None -> err "%s: %s expects an integer, got %s" cur.cmd flag s

let next_objects cur flag = objects_of_tok cur.cmd (next_tok cur flag)

(* A clock argument may be written as a bare name or [get_clocks x]. *)
let next_clock_name cur flag =
  match next_tok cur flag with
  | Lexer.Atom s -> s
  | Lexer.Brace [ s ] -> s
  | Lexer.Bracket toks -> (
    match query_of_bracket cur.cmd toks with
    | Get_clocks [ name ] -> name
    | _ -> err "%s: %s expects a single clock" cur.cmd flag)
  | Lexer.Brace _ -> err "%s: %s expects a single clock" cur.cmd flag

let next_waveform cur flag =
  match next_tok cur flag with
  | Lexer.Brace [ r; f ] -> (
    match float_of_string_opt r, float_of_string_opt f with
    | Some r, Some f -> r, f
    | _ -> err "%s: bad -waveform edge values" cur.cmd)
  | Lexer.Brace _ ->
    err "%s: -waveform supports exactly two edges" cur.cmd
  | _ -> err "%s: %s expects {rise fall}" cur.cmd flag

(* Walk the remaining tokens dispatching flags through [on_flag] and
   positionals through [on_pos]. *)
let is_flag s =
  String.length s > 1
  && s.[0] = '-'
  &&
  let c = Char.lowercase_ascii s.[1] in
  c >= 'a' && c <= 'z'

let iter_args cur ~on_flag ~on_pos =
  let rec go () =
    match cur.toks with
    | [] -> ()
    | Lexer.Atom s :: rest when is_flag s ->
      cur.toks <- rest;
      on_flag s;
      go ()
    | t :: rest ->
      cur.toks <- rest;
      on_pos t;
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Command parsers                                                     *)

let parse_create_clock cur =
  let name = ref None
  and period = ref None
  and waveform = ref None
  and add = ref false
  and comment = ref None
  and sources = ref [] in
  iter_args cur
    ~on_flag:(fun f ->
      match f with
      | "-name" -> name := Some (next_atom cur f)
      | "-period" -> period := Some (next_float cur f)
      | "-p" -> period := Some (next_float cur f)
      | "-waveform" -> waveform := Some (next_waveform cur f)
      | "-add" -> add := true
      | "-comment" -> comment := Some (next_atom cur f)
      | _ -> err "create_clock: unknown flag %s" f)
    ~on_pos:(fun t -> sources := !sources @ objects_of_tok cur.cmd t);
  let period =
    match !period with
    | Some p -> p
    | None -> err "create_clock: -period is required"
  in
  Create_clock
    {
      cc_name = !name;
      period;
      waveform = !waveform;
      add = !add;
      sources = !sources;
      comment = !comment;
    }

let parse_create_generated_clock cur =
  let name = ref None
  and source = ref []
  and master = ref None
  and divide = ref 1
  and multiply = ref 1
  and invert = ref false
  and add = ref false
  and targets = ref [] in
  iter_args cur
    ~on_flag:(fun f ->
      match f with
      | "-name" -> name := Some (next_atom cur f)
      | "-source" -> source := next_objects cur f
      | "-master_clock" -> master := Some (next_clock_name cur f)
      | "-divide_by" -> divide := next_int cur f
      | "-multiply_by" -> multiply := next_int cur f
      | "-invert" -> invert := true
      | "-add" -> add := true
      | _ -> err "create_generated_clock: unknown flag %s" f)
    ~on_pos:(fun t -> targets := !targets @ objects_of_tok cur.cmd t);
  if !source = [] then err "create_generated_clock: -source is required";
  Create_generated_clock
    {
      gc_name = !name;
      gc_source = !source;
      master_clock = !master;
      divide_by = !divide;
      multiply_by = !multiply;
      invert = !invert;
      gc_add = !add;
      gc_targets = !targets;
    }

let parse_value_and_objects cur ~flags =
  (* Shared shape: [cmd <flags> value objects...]. [flags] receives
     unknown flags. Returns (value, objects). *)
  let value = ref None and objs = ref [] in
  iter_args cur
    ~on_flag:(fun f -> flags f)
    ~on_pos:(fun t ->
      match t, !value with
      | Lexer.Atom s, None when float_of_string_opt s <> None ->
        value := Some (float_of_string s)
      | _ -> objs := !objs @ objects_of_tok cur.cmd t);
  match !value with
  | Some v -> v, !objs
  | None -> err "%s: missing value" cur.cmd

(* Track -min/-max accumulation: default Both; first of -min/-max makes
   it that one; seeing both restores Both. *)
let minmax_tracker () =
  let seen_min = ref false and seen_max = ref false in
  let on f =
    match f with
    | "-min" ->
      seen_min := true;
      true
    | "-max" ->
      seen_max := true;
      true
    | _ -> false
  in
  let result () =
    match !seen_min, !seen_max with
    | false, false | true, true -> Both
    | true, false -> Min
    | false, true -> Max
  in
  on, result

let parse_clock_latency cur =
  let source = ref false in
  let on_mm, mm_result = minmax_tracker () in
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        if on_mm f then ()
        else if f = "-source" then source := true
        else err "set_clock_latency: unknown flag %s" f)
  in
  Set_clock_latency
    {
      lat_value = value;
      lat_source = !source;
      lat_minmax = mm_result ();
      lat_objects = objs;
    }

let parse_clock_uncertainty cur =
  let setup = ref false and hold = ref false in
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        match f with
        | "-setup" -> setup := true
        | "-hold" -> hold := true
        | _ -> err "set_clock_uncertainty: unknown flag %s" f)
  in
  let setup, hold =
    match !setup, !hold with false, false -> true, true | s, h -> s, h
  in
  Set_clock_uncertainty
    { unc_value = value; unc_setup = setup; unc_hold = hold; unc_objects = objs }

let parse_clock_transition cur =
  let on_mm, mm_result = minmax_tracker () in
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        if on_mm f then ()
        else err "set_clock_transition: unknown flag %s" f)
  in
  Set_clock_transition
    { tra_value = value; tra_minmax = mm_result (); tra_clocks = objs }

let parse_io_delay cur ~output =
  let clock = ref None
  and clock_fall = ref false
  and add_delay = ref false in
  let on_mm, mm_result = minmax_tracker () in
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        if on_mm f then ()
        else
          match f with
          | "-clock" -> clock := Some (next_clock_name cur f)
          | "-clock_fall" -> clock_fall := true
          | "-add_delay" -> add_delay := true
          | _ -> err "%s: unknown flag %s" cur.cmd f)
  in
  let d =
    {
      io_value = value;
      io_clock = !clock;
      io_clock_fall = !clock_fall;
      io_minmax = mm_result ();
      io_add_delay = !add_delay;
      io_ports = objs;
    }
  in
  if output then Set_output_delay d else Set_input_delay d

let parse_case_analysis cur =
  let value = ref None and objs = ref [] in
  iter_args cur
    ~on_flag:(fun f -> err "set_case_analysis: unknown flag %s" f)
    ~on_pos:(fun t ->
      match t, !value with
      | Lexer.Atom ("0" | "zero"), None -> value := Some false
      | Lexer.Atom ("1" | "one"), None -> value := Some true
      | _ -> objs := !objs @ objects_of_tok cur.cmd t);
  match !value with
  | None -> err "set_case_analysis: missing 0/1 value"
  | Some v -> Set_case_analysis { ca_value = v; ca_objects = !objs }

let parse_disable_timing cur =
  let from_ = ref None and to_ = ref None and objs = ref [] in
  iter_args cur
    ~on_flag:(fun f ->
      match f with
      | "-from" -> from_ := Some (next_atom cur f)
      | "-to" -> to_ := Some (next_atom cur f)
      | _ -> err "set_disable_timing: unknown flag %s" f)
    ~on_pos:(fun t -> objs := !objs @ objects_of_tok cur.cmd t);
  Set_disable_timing { dis_objects = !objs; dis_from = !from_; dis_to = !to_ }

(* Path-spec flags shared by the four exception commands. Returns a
   handler and an extractor. *)
let path_spec_collector cur =
  let spec = ref default_path_spec in
  let on_flag f =
    let s = !spec in
    match f with
    | "-from" ->
      spec := { s with ps_from = Some (next_objects cur f) };
      true
    | "-rise_from" ->
      spec :=
        { s with ps_from = Some (next_objects cur f); ps_rise_from = true };
      true
    | "-fall_from" ->
      spec :=
        { s with ps_from = Some (next_objects cur f); ps_fall_from = true };
      true
    | "-through" ->
      spec := { s with ps_through = s.ps_through @ [ next_objects cur f ] };
      true
    | "-to" ->
      spec := { s with ps_to = Some (next_objects cur f) };
      true
    | "-rise_to" ->
      spec := { s with ps_to = Some (next_objects cur f); ps_rise_to = true };
      true
    | "-fall_to" ->
      spec := { s with ps_to = Some (next_objects cur f); ps_fall_to = true };
      true
    | "-setup" ->
      spec := { s with ps_setup = true; ps_hold = false };
      true
    | "-hold" ->
      spec := { s with ps_hold = true; ps_setup = false };
      true
    | _ -> false
  in
  let result () = !spec in
  on_flag, result

let parse_false_path cur =
  let on_ps, ps_result = path_spec_collector cur in
  iter_args cur
    ~on_flag:(fun f ->
      if not (on_ps f) then err "set_false_path: unknown flag %s" f)
    ~on_pos:(fun t ->
      err "set_false_path: unexpected argument %s" (Lexer.tok_to_string t));
  Set_false_path (ps_result ())

let parse_multicycle cur =
  let on_ps, ps_result = path_spec_collector cur in
  let mult = ref None
  and start = ref false
  and end_ = ref false in
  iter_args cur
    ~on_flag:(fun f ->
      if on_ps f then ()
      else
        match f with
        | "-start" -> start := true
        | "-end" -> end_ := true
        | _ -> err "set_multicycle_path: unknown flag %s" f)
    ~on_pos:(fun t ->
      match t, !mult with
      | Lexer.Atom s, None when int_of_string_opt s <> None ->
        mult := Some (int_of_string s)
      | _ ->
        err "set_multicycle_path: unexpected argument %s"
          (Lexer.tok_to_string t));
  let mult =
    match !mult with
    | Some m -> m
    | None -> err "set_multicycle_path: missing multiplier"
  in
  let start, end_ =
    match !start, !end_ with false, false -> false, true | s, e -> s, e
  in
  (* Without -setup/-hold a multicycle applies to setup analysis only
     (unlike false paths, which cover both). *)
  let spec = ps_result () in
  let spec =
    if spec.ps_setup && spec.ps_hold then { spec with ps_hold = false } else spec
  in
  Set_multicycle_path
    { mcp_mult = mult; mcp_start = start; mcp_end = end_; mcp_spec = spec }

let parse_delay_bound cur ~is_min =
  let on_ps, ps_result = path_spec_collector cur in
  let value = ref None in
  iter_args cur
    ~on_flag:(fun f ->
      if not (on_ps f) then err "%s: unknown flag %s" cur.cmd f)
    ~on_pos:(fun t ->
      match t, !value with
      | Lexer.Atom s, None when float_of_string_opt s <> None ->
        value := Some (float_of_string s)
      | _ -> err "%s: unexpected argument %s" cur.cmd (Lexer.tok_to_string t));
  let value =
    match !value with Some v -> v | None -> err "%s: missing delay value" cur.cmd
  in
  let bound = { db_value = value; db_spec = ps_result () } in
  if is_min then Set_min_delay bound else Set_max_delay bound

let parse_clock_groups cur =
  let kind = ref None and name = ref None and groups = ref [] in
  iter_args cur
    ~on_flag:(fun f ->
      match f with
      | "-physically_exclusive" -> kind := Some Physically_exclusive
      | "-logically_exclusive" -> kind := Some Logically_exclusive
      | "-asynchronous" -> kind := Some Asynchronous
      | "-name" -> name := Some (next_atom cur f)
      | "-group" -> groups := !groups @ [ next_objects cur f ]
      | _ -> err "set_clock_groups: unknown flag %s" f)
    ~on_pos:(fun t ->
      err "set_clock_groups: unexpected argument %s" (Lexer.tok_to_string t));
  let kind =
    match !kind with
    | Some k -> k
    | None -> err "set_clock_groups: missing exclusivity flag"
  in
  Set_clock_groups { cg_name = !name; cg_kind = kind; cg_groups = !groups }

let parse_clock_sense cur =
  let stop = ref false and clocks = ref None and pins = ref [] in
  iter_args cur
    ~on_flag:(fun f ->
      match f with
      | "-stop_propagation" -> stop := true
      | "-clock" | "-clocks" -> clocks := Some (next_objects cur f)
      | _ -> err "set_clock_sense: unknown flag %s" f)
    ~on_pos:(fun t -> pins := !pins @ objects_of_tok cur.cmd t);
  Set_clock_sense
    { sense_stop = !stop; sense_clocks = !clocks; sense_pins = !pins }

let parse_env cur kind =
  let on_mm, mm_result = minmax_tracker () in
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        if on_mm f then () else err "%s: unknown flag %s" cur.cmd f)
  in
  Set_env
    { env_kind = kind; env_value = value; env_minmax = mm_result (); env_objects = objs }

let parse_drc cur kind =
  let value, objs =
    parse_value_and_objects cur ~flags:(fun f ->
        err "%s: unknown flag %s" cur.cmd f)
  in
  Set_drc { drc_kind = kind; drc_value = value; drc_objects = objs }

let parse_propagated cur =
  let objs = ref [] in
  iter_args cur
    ~on_flag:(fun f -> err "set_propagated_clock: unknown flag %s" f)
    ~on_pos:(fun t -> objs := !objs @ objects_of_tok cur.cmd t);
  Set_propagated_clock !objs

let parse_command_toks toks =
  match toks with
  | [] -> err "empty command"
  | Lexer.Atom word :: rest -> (
    let cur = { cmd = word; toks = rest } in
    match word with
    | "create_clock" -> parse_create_clock cur
    | "create_generated_clock" -> parse_create_generated_clock cur
    | "set_clock_latency" -> parse_clock_latency cur
    | "set_clock_uncertainty" -> parse_clock_uncertainty cur
    | "set_clock_transition" -> parse_clock_transition cur
    | "set_propagated_clock" -> parse_propagated cur
    | "set_input_delay" -> parse_io_delay cur ~output:false
    | "set_output_delay" -> parse_io_delay cur ~output:true
    | "set_case_analysis" -> parse_case_analysis cur
    | "set_disable_timing" -> parse_disable_timing cur
    | "set_false_path" -> parse_false_path cur
    | "set_multicycle_path" -> parse_multicycle cur
    | "set_min_delay" -> parse_delay_bound cur ~is_min:true
    | "set_max_delay" -> parse_delay_bound cur ~is_min:false
    | "set_clock_groups" -> parse_clock_groups cur
    | "set_clock_sense" -> parse_clock_sense cur
    | "set_input_transition" -> parse_env cur Input_transition
    | "set_load" -> parse_env cur Load
    | "set_drive" -> parse_env cur Drive
    | "set_max_transition" -> parse_drc cur Max_transition
    | "set_max_capacitance" -> parse_drc cur Max_capacitance
    | _ -> err "unknown command %s" word)
  | t :: _ -> err "command must start with a word, got %s" (Lexer.tok_to_string t)

let parse_command ?loc toks =
  try parse_command_toks toks with Msg msg -> raise (Error { loc; msg })

(* ------------------------------------------------------------------ *)
(* Error codes                                                         *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lex_code msg =
  if contains msg "unterminated string" then "lex.unterminated-string"
  else if contains msg "unterminated brace" then "lex.unterminated-brace"
  else if contains msg "unterminated [" then "lex.unterminated-bracket"
  else if contains msg "unbalanced" then "lex.unbalanced"
  else "lex.error"

let error_code msg =
  if contains msg "unterminated" || contains msg "unbalanced" then lex_code msg
  else if contains msg "unknown command" then "sdc.unknown-command"
  else if contains msg "unknown flag" then "sdc.unknown-flag"
  else if contains msg "expects" || contains msg "missing"
          || contains msg "required" then "sdc.bad-args"
  else "sdc.parse"

(* ------------------------------------------------------------------ *)
(* Whole-source entry points                                           *)

let loc_of ?file line col =
  { Diag.file = (match file with Some f -> f | None -> "<string>"); line; col }

let parse_string ?file src =
  match Lexer.tokenize_located src with
  | located ->
    List.map
      (fun { Lexer.lc_line; lc_col; lc_toks } ->
        parse_command ~loc:(loc_of ?file lc_line lc_col) lc_toks)
      located
  | exception Lexer.Error { line; col; msg } ->
    raise (Error { loc = Some (loc_of ?file line col); msg })

let read_whole_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let parse_file path = parse_string ~file:path (read_whole_file path)

let parse_string_recover ?file src =
  let diags = Diag.collector () in
  let located =
    Lexer.tokenize_located
      ~on_error:(fun ~line ~col ~msg ->
        Diag.addf diags
          ~loc:(loc_of ?file line col)
          Diag.Error ~code:(lex_code msg) "%s" msg)
      src
  in
  let cmds =
    List.filter_map
      (fun { Lexer.lc_line; lc_col; lc_toks } ->
        match parse_command ~loc:(loc_of ?file lc_line lc_col) lc_toks with
        | cmd -> Some cmd
        | exception Error { loc; msg } ->
          Diag.addf diags ?loc Diag.Error ~code:(error_code msg) "%s" msg;
          None)
      located
  in
  cmds, Diag.to_list diags

let parse_file_recover path =
  parse_string_recover ~file:path (read_whole_file path)
