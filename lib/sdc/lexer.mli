(** Tokeniser for the SDC (Tcl-flavoured) constraint syntax.

    Produces one token-tree list per command. Handles [#] comments,
    backslash line continuation, [;] command separators, double-quoted
    strings, brace-delimited word lists and nested [\[...\]] command
    substitution (used for object queries). *)

type tok =
  | Atom of string
  | Bracket of tok list  (** a [\[...\]] command substitution *)
  | Brace of string list (** a [{...}] word list *)

exception Error of { line : int; col : int; msg : string }

val tokenize : string -> tok list list
(** Split the source into commands; each command is its token list.
    @raise Error on unbalanced delimiters. *)

type located = {
  lc_line : int;  (** 1-based line of the command's first character *)
  lc_col : int;   (** 1-based column of the command's first character *)
  lc_toks : tok list;
}

val tokenize_located :
  ?on_error:(line:int -> col:int -> msg:string -> unit) -> string -> located list
(** Like {!tokenize} but each command carries its source position.

    Without [on_error] this raises {!Error} exactly like {!tokenize}.
    With [on_error] the lexer runs in recovery mode: a malformed
    command reports through the callback, input is resynchronised at
    the next command boundary (newline or [;]) and lexing continues —
    one bad command never discards the rest of the file. *)

val tok_to_string : tok -> string
(** Round-trip a token back to SDC text (for diagnostics). *)
