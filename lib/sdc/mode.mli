(** Resolved timing modes.

    A mode is one SDC constraint set resolved against a design: object
    queries expanded to pin/instance/clock ids, clock attributes folded
    into per-clock records. This is the currency consumed by the timing
    engine and the mode-merging core, and it can be serialised back to
    SDC via {!to_commands}. *)

type clock = {
  clk_name : string;
  period : float;
  waveform : float * float;  (** rise, fall edge times within the period *)
  sources : Mm_netlist.Design.pin_id list;  (** sorted; empty = virtual *)
  generated : generated option;
}

and generated = {
  master : string;
  g_divide : int;
  g_multiply : int;
  g_invert : bool;
}

(** Per-clock attribute record accumulated from set_clock_latency /
    uncertainty / transition / propagated commands. *)
type clock_attr = {
  src_latency_min : float option;
  src_latency_max : float option;
  net_latency_min : float option;
  net_latency_max : float option;
  uncertainty_setup : float option;
  uncertainty_hold : float option;
  transition_min : float option;
  transition_max : float option;
  propagated : bool;
}

val empty_attr : clock_attr

type io_delay = {
  iod_input : bool;
  iod_pin : Mm_netlist.Design.pin_id;  (** the port pin *)
  iod_clock : string option;
  iod_clock_fall : bool;
  iod_minmax : Ast.minmax;
  iod_value : float;
  iod_add : bool;
}

(** Startpoints/endpoints of a resolved exception term. *)
type point =
  | P_pin of Mm_netlist.Design.pin_id
  | P_clock of string
  | P_inst of Mm_netlist.Design.inst_id

type exc_kind =
  | False_path
  | Multicycle of { mult : int; start : bool }
  | Min_delay of float
  | Max_delay of float

(** Edge restriction on an exception's -from/-to side
    ([-rise_from], [-fall_to], ...). *)
type edge_sel = Any_edge | Rise_edge | Fall_edge

type exc = {
  exc_kind : exc_kind;
  exc_setup : bool;
  exc_hold : bool;
  exc_from : point list option;
  exc_from_edge : edge_sel;
  exc_through : Mm_netlist.Design.pin_id list list;  (** ordered groups *)
  exc_to : point list option;
  exc_to_edge : edge_sel;
}

val exc :
  ?setup:bool ->
  ?hold:bool ->
  ?from_:point list ->
  ?from_edge:edge_sel ->
  ?through:Mm_netlist.Design.pin_id list list ->
  ?to_:point list ->
  ?to_edge:edge_sel ->
  exc_kind ->
  exc
(** Convenience constructor with unrestricted defaults. *)

type clock_group = {
  grp_kind : Ast.exclusivity;
  grp_name : string option;
  grp_clocks : string list list;
}

type clock_sense = {
  cs_stop : bool;
  cs_clocks : string list option;  (** None = all clocks *)
  cs_pins : Mm_netlist.Design.pin_id list;
}

type env_constraint = {
  envc_kind : Ast.env_kind;
  envc_pin : Mm_netlist.Design.pin_id;
  envc_minmax : Ast.minmax;
  envc_value : float;
}

type disable =
  | Dis_pin of Mm_netlist.Design.pin_id
  | Dis_inst of Mm_netlist.Design.inst_id * string option * string option
      (** instance with optional -from/-to cell pin names *)

type drc_limit = {
  drcl_kind : Ast.drc_kind;
  drcl_pin : Mm_netlist.Design.pin_id;
  drcl_value : float;
}

type t = {
  mode_name : string;
  design : Mm_netlist.Design.t;
  clocks : clock list;  (** in definition order *)
  attrs : (string * clock_attr) list;  (** keyed by clock name *)
  io_delays : io_delay list;
  cases : (Mm_netlist.Design.pin_id * bool) list;
  disables : disable list;
  exceptions : exc list;
  groups : clock_group list;
  senses : clock_sense list;
  envs : env_constraint list;
  drcs : drc_limit list;
}

val empty : Mm_netlist.Design.t -> string -> t

val find_clock : t -> string -> clock option
val attr_of_clock : t -> string -> clock_attr
val clock_names : t -> string list

val clock_key : clock -> string
(** Identity used for duplicate detection when merging: sorted source
    pins + period + waveform + generated info. Two clocks with equal
    keys are "the same clock" (paper 3.1.1). *)

val case_value : t -> Mm_netlist.Design.pin_id -> bool option

val exc_equal : exc -> exc -> bool
val io_delay_equal : io_delay -> io_delay -> bool

val commands_of_exc : Mm_netlist.Design.t -> exc -> Ast.command
(** Serialise a single exception (used when reporting refinement
    fixes). *)

val to_commands : t -> Ast.command list
(** Serialise back to SDC commands (clock definitions first, then
    attributes, environment, case/disable, IO delays, groups, senses,
    exceptions). *)

(** Which record of the mode an emitted command came from. [Sec_exc]
    carries the index into {!t.exceptions} so refinement-added
    exceptions can be attributed positionally. *)
type section =
  | Sec_clock of clock
  | Sec_attr of clock
  | Sec_env of env_constraint
  | Sec_drc of drc_limit
  | Sec_case of Mm_netlist.Design.pin_id * bool
  | Sec_disable of disable
  | Sec_io of io_delay
  | Sec_group of clock_group
  | Sec_sense of clock_sense
  | Sec_exc of int * exc

val to_commands_tagged : t -> (section * Ast.command) list
(** [to_commands] with each command paired with its source record —
    same commands, same order. The provenance layer relies on this
    1:1 correspondence for stable per-constraint ids. *)

val to_sdc : t -> string
(** [Writer.write_commands (to_commands t)] with a mode-name header. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line counts summary for logs and reports. *)
