module Design = Mm_netlist.Design

type clock = {
  clk_name : string;
  period : float;
  waveform : float * float;
  sources : Design.pin_id list;
  generated : generated option;
}

and generated = {
  master : string;
  g_divide : int;
  g_multiply : int;
  g_invert : bool;
}

type clock_attr = {
  src_latency_min : float option;
  src_latency_max : float option;
  net_latency_min : float option;
  net_latency_max : float option;
  uncertainty_setup : float option;
  uncertainty_hold : float option;
  transition_min : float option;
  transition_max : float option;
  propagated : bool;
}

let empty_attr =
  {
    src_latency_min = None;
    src_latency_max = None;
    net_latency_min = None;
    net_latency_max = None;
    uncertainty_setup = None;
    uncertainty_hold = None;
    transition_min = None;
    transition_max = None;
    propagated = false;
  }

type io_delay = {
  iod_input : bool;
  iod_pin : Design.pin_id;
  iod_clock : string option;
  iod_clock_fall : bool;
  iod_minmax : Ast.minmax;
  iod_value : float;
  iod_add : bool;
}

type point =
  | P_pin of Design.pin_id
  | P_clock of string
  | P_inst of Design.inst_id

type exc_kind =
  | False_path
  | Multicycle of { mult : int; start : bool }
  | Min_delay of float
  | Max_delay of float

type edge_sel = Any_edge | Rise_edge | Fall_edge

type exc = {
  exc_kind : exc_kind;
  exc_setup : bool;
  exc_hold : bool;
  exc_from : point list option;
  exc_from_edge : edge_sel;
  exc_through : Design.pin_id list list;
  exc_to : point list option;
  exc_to_edge : edge_sel;
}

let exc ?(setup = true) ?(hold = true) ?from_ ?(from_edge = Any_edge) ?(through = [])
    ?to_ ?(to_edge = Any_edge) exc_kind =
  {
    exc_kind;
    exc_setup = setup;
    exc_hold = hold;
    exc_from = from_;
    exc_from_edge = from_edge;
    exc_through = through;
    exc_to = to_;
    exc_to_edge = to_edge;
  }

type clock_group = {
  grp_kind : Ast.exclusivity;
  grp_name : string option;
  grp_clocks : string list list;
}

type clock_sense = {
  cs_stop : bool;
  cs_clocks : string list option;
  cs_pins : Design.pin_id list;
}

type env_constraint = {
  envc_kind : Ast.env_kind;
  envc_pin : Design.pin_id;
  envc_minmax : Ast.minmax;
  envc_value : float;
}

type disable =
  | Dis_pin of Design.pin_id
  | Dis_inst of Design.inst_id * string option * string option

type drc_limit = {
  drcl_kind : Ast.drc_kind;
  drcl_pin : Design.pin_id;
  drcl_value : float;
}

type t = {
  mode_name : string;
  design : Design.t;
  clocks : clock list;
  attrs : (string * clock_attr) list;
  io_delays : io_delay list;
  cases : (Design.pin_id * bool) list;
  disables : disable list;
  exceptions : exc list;
  groups : clock_group list;
  senses : clock_sense list;
  envs : env_constraint list;
  drcs : drc_limit list;
}

let empty design mode_name =
  {
    mode_name;
    design;
    clocks = [];
    attrs = [];
    io_delays = [];
    cases = [];
    disables = [];
    exceptions = [];
    groups = [];
    senses = [];
    envs = [];
    drcs = [];
  }

let find_clock t name =
  List.find_opt (fun c -> String.equal c.clk_name name) t.clocks

let attr_of_clock t name =
  match List.assoc_opt name t.attrs with
  | Some a -> a
  | None -> empty_attr

let clock_names t = List.map (fun c -> c.clk_name) t.clocks

let clock_key c =
  let srcs = String.concat "," (List.map string_of_int c.sources) in
  let r, f = c.waveform in
  let gen =
    match c.generated with
    | None -> ""
    | Some g ->
      Printf.sprintf "gen:%s/%d*%d%s" g.master g.g_divide g.g_multiply
        (if g.g_invert then "~" else "")
  in
  Printf.sprintf "%s@%g@%g,%g@%s" srcs c.period r f gen

let case_value t pin =
  List.assoc_opt pin t.cases

let point_compare a b =
  let rank = function P_pin _ -> 0 | P_clock _ -> 1 | P_inst _ -> 2 in
  match a, b with
  | P_pin x, P_pin y -> compare x y
  | P_clock x, P_clock y -> String.compare x y
  | P_inst x, P_inst y -> compare x y
  | _ -> compare (rank a) (rank b)

let points_equal a b =
  let norm l = List.sort_uniq point_compare l in
  match a, b with
  | None, None -> true
  | Some a, Some b -> norm a = norm b
  | None, Some _ | Some _, None -> false

let exc_equal a b =
  a.exc_kind = b.exc_kind
  && a.exc_setup = b.exc_setup
  && a.exc_hold = b.exc_hold
  && a.exc_from_edge = b.exc_from_edge
  && a.exc_to_edge = b.exc_to_edge
  && points_equal a.exc_from b.exc_from
  && points_equal a.exc_to b.exc_to
  && List.map (List.sort_uniq compare) a.exc_through
     = List.map (List.sort_uniq compare) b.exc_through

let io_delay_equal (a : io_delay) (b : io_delay) =
  a.iod_input = b.iod_input
  && a.iod_pin = b.iod_pin
  && a.iod_clock = b.iod_clock
  && a.iod_clock_fall = b.iod_clock_fall
  && a.iod_minmax = b.iod_minmax
  && Float.equal a.iod_value b.iod_value

(* ------------------------------------------------------------------ *)
(* Serialisation back to SDC                                           *)

let query_of_pins design pins =
  match pins with
  | [] -> []
  | _ -> [ Ast.Get_pins (List.map (Design.pin_name design) pins) ]

let query_of_points design points =
  let pins, clocks, insts =
    List.fold_left
      (fun (ps, cs, is) -> function
        | P_pin p -> Design.pin_name design p :: ps, cs, is
        | P_clock c -> ps, c :: cs, is
        | P_inst i -> ps, cs, Design.inst_name design i :: is)
      ([], [], []) points
  in
  (if clocks = [] then [] else [ Ast.Get_clocks (List.rev clocks) ])
  @ (if pins = [] then [] else [ Ast.Get_pins (List.rev pins) ])
  @ if insts = [] then [] else [ Ast.Get_cells (List.rev insts) ]

let spec_of_exc design e =
  {
    Ast.ps_from = Option.map (query_of_points design) e.exc_from;
    ps_rise_from = e.exc_from_edge = Rise_edge;
    ps_fall_from = e.exc_from_edge = Fall_edge;
    ps_through = List.map (query_of_pins design) e.exc_through;
    ps_to = Option.map (query_of_points design) e.exc_to;
    ps_rise_to = e.exc_to_edge = Rise_edge;
    ps_fall_to = e.exc_to_edge = Fall_edge;
    ps_setup = e.exc_setup;
    ps_hold = e.exc_hold;
  }

let commands_of_exc design e =
  let spec = spec_of_exc design e in
  match e.exc_kind with
  | False_path -> Ast.Set_false_path spec
  | Multicycle { mult; start } ->
    Ast.Set_multicycle_path
      { mcp_mult = mult; mcp_start = start; mcp_end = not start; mcp_spec = spec }
  | Min_delay v -> Ast.Set_min_delay { db_value = v; db_spec = spec }
  | Max_delay v -> Ast.Set_max_delay { db_value = v; db_spec = spec }

let port_query design pin = Ast.Get_ports [ Design.pin_name design pin ]

let commands_of_attr name (a : clock_attr) =
  let clockq = [ Ast.Get_clocks [ name ] ] in
  let lat source minmax v =
    Ast.Set_clock_latency
      { lat_value = v; lat_source = source; lat_minmax = minmax; lat_objects = clockq }
  in
  let pair ~mk vmin vmax =
    match vmin, vmax with
    | None, None -> []
    | Some a, Some b when Float.equal a b -> [ mk Ast.Both a ]
    | _ ->
      (match vmin with Some v -> [ mk Ast.Min v ] | None -> [])
      @ (match vmax with Some v -> [ mk Ast.Max v ] | None -> [])
  in
  pair ~mk:(fun mm v -> lat true mm v) a.src_latency_min a.src_latency_max
  @ pair ~mk:(fun mm v -> lat false mm v) a.net_latency_min a.net_latency_max
  @ (match a.uncertainty_setup, a.uncertainty_hold with
    | None, None -> []
    | Some s, Some h when Float.equal s h ->
      [
        Ast.Set_clock_uncertainty
          { unc_value = s; unc_setup = true; unc_hold = true; unc_objects = clockq };
      ]
    | s, h ->
      (match s with
      | Some v ->
        [
          Ast.Set_clock_uncertainty
            { unc_value = v; unc_setup = true; unc_hold = false; unc_objects = clockq };
        ]
      | None -> [])
      @ (match h with
        | Some v ->
          [
            Ast.Set_clock_uncertainty
              { unc_value = v; unc_setup = false; unc_hold = true; unc_objects = clockq };
          ]
        | None -> []))
  @ pair
      ~mk:(fun mm v ->
        Ast.Set_clock_transition { tra_value = v; tra_minmax = mm; tra_clocks = clockq })
      a.transition_min a.transition_max
  @ if a.propagated then [ Ast.Set_propagated_clock clockq ] else []

let queries_of_mixed_pins design pins =
  let ports, others =
    List.partition
      (fun p ->
        match Design.pin_owner design p with
        | Design.Port_pin _ -> true
        | Design.Inst_pin _ -> false)
      pins
  in
  (if ports = [] then []
   else [ Ast.Get_ports (List.map (Design.pin_name design) ports) ])
  @
  if others = [] then []
  else [ Ast.Get_pins (List.map (Design.pin_name design) others) ]

type section =
  | Sec_clock of clock
  | Sec_attr of clock
  | Sec_env of env_constraint
  | Sec_drc of drc_limit
  | Sec_case of Design.pin_id * bool
  | Sec_disable of disable
  | Sec_io of io_delay
  | Sec_group of clock_group
  | Sec_sense of clock_sense
  | Sec_exc of int * exc

let to_commands_tagged t =
  let design = t.design in
  let clock_cmds =
    List.concat_map
      (fun c ->
        let sources = queries_of_mixed_pins design c.sources in
        match c.generated with
        | None ->
          [
            ( Sec_clock c,
              Ast.Create_clock
                {
                  cc_name = Some c.clk_name;
                  period = c.period;
                  waveform =
                    (let r, f = c.waveform in
                     if Float.equal r 0. && Float.equal f (c.period /. 2.) then
                       None
                     else Some (r, f));
                  add = true;
                  sources;
                  comment = None;
                } );
          ]
        | Some g ->
          [
            ( Sec_clock c,
              Ast.Create_generated_clock
                {
                  gc_name = Some c.clk_name;
                  gc_source = sources;
                  master_clock = Some g.master;
                  divide_by = g.g_divide;
                  multiply_by = g.g_multiply;
                  invert = g.g_invert;
                  gc_add = true;
                  gc_targets = sources;
                } );
          ])
      t.clocks
  in
  let attr_cmds =
    List.concat_map
      (fun c ->
        List.map
          (fun cmd -> Sec_attr c, cmd)
          (commands_of_attr c.clk_name (attr_of_clock t c.clk_name)))
      t.clocks
  in
  let env_cmds =
    List.map
      (fun e ->
        ( Sec_env e,
          Ast.Set_env
            {
              env_kind = e.envc_kind;
              env_value = e.envc_value;
              env_minmax = e.envc_minmax;
              env_objects = [ port_query design e.envc_pin ];
            } ))
      t.envs
  in
  let case_cmds =
    List.map
      (fun (pin, v) ->
        ( Sec_case (pin, v),
          Ast.Set_case_analysis
            { ca_value = v; ca_objects = [ Ast.Name (Design.pin_name design pin) ] }
        ))
      t.cases
  in
  let disable_cmds =
    List.map
      (fun d ->
        ( Sec_disable d,
          match d with
          | Dis_pin pin ->
            Ast.Set_disable_timing
              {
                dis_objects = [ Ast.Name (Design.pin_name design pin) ];
                dis_from = None;
                dis_to = None;
              }
          | Dis_inst (inst, from_, to_) ->
            Ast.Set_disable_timing
              {
                dis_objects = [ Ast.Get_cells [ Design.inst_name design inst ] ];
                dis_from = from_;
                dis_to = to_;
              } ))
      t.disables
  in
  let io_cmds =
    List.map
      (fun d ->
        let cmd =
          {
            Ast.io_value = d.iod_value;
            io_clock = d.iod_clock;
            io_clock_fall = d.iod_clock_fall;
            io_minmax = d.iod_minmax;
            io_add_delay = d.iod_add;
            io_ports = [ port_query design d.iod_pin ];
          }
        in
        ( Sec_io d,
          if d.iod_input then Ast.Set_input_delay cmd
          else Ast.Set_output_delay cmd ))
      t.io_delays
  in
  let group_cmds =
    List.map
      (fun g ->
        ( Sec_group g,
          Ast.Set_clock_groups
            {
              cg_name = g.grp_name;
              cg_kind = g.grp_kind;
              cg_groups =
                List.map (fun names -> [ Ast.Get_clocks names ]) g.grp_clocks;
            } ))
      t.groups
  in
  let sense_cmds =
    List.map
      (fun s ->
        ( Sec_sense s,
          Ast.Set_clock_sense
            {
              sense_stop = s.cs_stop;
              sense_clocks =
                Option.map (fun names -> [ Ast.Get_clocks names ]) s.cs_clocks;
              sense_pins =
                [ Ast.Get_pins (List.map (Design.pin_name design) s.cs_pins) ];
            } ))
      t.senses
  in
  let drc_cmds =
    List.map
      (fun l ->
        ( Sec_drc l,
          Ast.Set_drc
            {
              drc_kind = l.drcl_kind;
              drc_value = l.drcl_value;
              drc_objects = [ Ast.Name (Design.pin_name design l.drcl_pin) ];
            } ))
      t.drcs
  in
  let exc_cmds =
    List.mapi (fun i e -> Sec_exc (i, e), commands_of_exc design e) t.exceptions
  in
  clock_cmds @ attr_cmds @ env_cmds @ drc_cmds @ case_cmds @ disable_cmds
  @ io_cmds @ group_cmds @ sense_cmds @ exc_cmds

let to_commands t = List.map snd (to_commands_tagged t)

let to_sdc t =
  Writer.write_commands ~header:("mode " ^ t.mode_name) (to_commands t)

let pp_summary fmt t =
  Format.fprintf fmt
    "mode %s: %d clocks, %d io delays, %d cases, %d disables, %d exceptions, \
     %d groups, %d senses"
    t.mode_name (List.length t.clocks)
    (List.length t.io_delays)
    (List.length t.cases)
    (List.length t.disables)
    (List.length t.exceptions)
    (List.length t.groups)
    (List.length t.senses)
