(** Pretty-printer from {!Ast.command}s back to SDC text.

    [parse_string (write_commands cs)] yields commands equal to [cs]
    modulo flag ordering; this round-trip is property-tested. *)

val write_query : Ast.obj_query -> string
val write_objects : Ast.objects -> string
val write_command : Ast.command -> string
val write_commands : ?header:string -> Ast.command list -> string

val write_commands_annotated :
  ?header:string ->
  comment:(int -> Ast.command -> string option) ->
  Ast.command list ->
  string
(** Like {!write_commands}, but [comment i cmd] may prepend a full-line
    ["# ..."] comment before the [i]-th command — the [--annotate]
    provenance output. Comment lines are skipped by the parser, so an
    annotated file still round-trips. *)

val write_file : string -> ?header:string -> Ast.command list -> unit
