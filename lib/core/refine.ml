module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context
module Clock_prop = Mm_timing.Clock_prop
module Graph = Mm_timing.Graph

type added_origin =
  | From_data_clock of string * Design.pin_id
  | From_fix of Compare.fix

type t = {
  refined : Mode.t;
  refined_ctx : Context.t option;
      (* analysis context matching [refined]; lets downstream stages
         (equivalence check) skip rebuilding graph/consts/clocks.
         Stripped (None) when the result is checkpointed — contexts
         hold unmarshalable runtime state *)
  data_clock_fixes : (string * Design.pin_id) list;
  added_exceptions : Mode.exc list;
  added_lineage : (Mode.exc * added_origin list) list;
  final_compare : Compare.result;
  iterations : int;
}

(* Mapped union of individual data-network clock masks, expressed in
   the merged context's clock indices. *)
let union_data_masks (prelim : Prelim.t) individual ctxs (ctx_m : Context.t) =
  let n = Graph.n_pins ctx_m.Context.graph in
  let union = Array.make n 0 in
  List.iter2
    (fun (m : Mode.t) (ctx_i : Context.t) ->
      let masks = Relation_prop.data_clock_masks ctx_i in
      let tr =
        Array.init (Clock_prop.n_clocks ctx_i.Context.clocks) (fun i ->
            let local = Clock_prop.clock_name ctx_i.Context.clocks i in
            let merged = Prelim.rename_of prelim m.Mode.mode_name local in
            match Clock_prop.clock_index ctx_m.Context.clocks merged with
            | Some j -> j
            | None -> -1)
      in
      for pin = 0 to n - 1 do
        let mask = masks.(pin) in
        if mask <> 0 then
          Array.iteri
            (fun i j ->
              if j >= 0 && mask land (1 lsl i) <> 0 then
                union.(pin) <- union.(pin) lor (1 lsl j))
            tr
      done)
    individual ctxs;
  union

(* Coalesce refinement exceptions, mirroring the paper's CSTR6 which
   lists several pins in one -through: exceptions identical except for
   their -to pin set merge into one (to-sets union); exceptions
   identical except for a single-group -through merge into one group.
   Both rewrites are exact unions of the originals' match sets.

   Each input exception carries a list of lineage tags; merging
   concatenates the tags, so a coalesced exception remembers every
   fix/refinement that contributed to it. The merge groups live in an
   input-ordered association list (not a hash table), so the output
   order is canonically the first-occurrence input order — the
   provenance ids and annotated SDC depend on that stability. *)
let sort_points l = List.sort_uniq compare l

type 'a merge_slot = {
  slot_exc : Mode.exc;
  mutable slot_pts : Mode.point list;  (* merged -to sets, pass A *)
  mutable slot_pins : Design.pin_id list;  (* merged -through group, pass B *)
  mutable slot_tags : 'a list;  (* reverse accumulation *)
}

let coalesce_tagged tagged =
  let norm_from e =
    Option.map sort_points e.Mode.exc_from, e.Mode.exc_kind, e.Mode.exc_setup,
    e.Mode.exc_hold
  in
  (* Ordered grouping: [find] is linear, but refinement adds tens of
     exceptions at most per iteration. *)
  let group ~key_of ~merge ~init items =
    let order = ref [] in
    List.iter
      (fun (e, tags) ->
        match key_of e with
        | None -> order := `Keep (e, tags) :: !order
        | Some key -> (
          let slot_of = function
            | `Merge (k, slot) when k = key -> Some slot
            | `Merge _ | `Keep _ -> None
          in
          match List.find_map slot_of !order with
          | Some slot ->
            merge slot e;
            slot.slot_tags <- List.rev_append tags slot.slot_tags
          | None ->
            let slot =
              { slot_exc = e; slot_pts = []; slot_pins = [];
                slot_tags = List.rev tags }
            in
            init slot e;
            order := `Merge (key, slot) :: !order))
      items;
    List.rev !order
  in
  let finish rebuild grouped =
    List.map
      (function
        | `Keep (e, tags) -> e, tags
        | `Merge (_, slot) -> rebuild slot, List.rev slot.slot_tags)
      grouped
  in
  (* Pass A: merge -to sets for equal (kind, sides, from, through). *)
  let step_a =
    group tagged
      ~key_of:(fun e ->
        match e.Mode.exc_to with
        | Some _ -> Some (norm_from e, List.map sort_points e.Mode.exc_through)
        | None -> None)
      ~init:(fun slot e ->
        slot.slot_pts <- Option.value ~default:[] e.Mode.exc_to)
      ~merge:(fun slot e ->
        slot.slot_pts <-
          Option.value ~default:[] e.Mode.exc_to @ slot.slot_pts)
    |> finish (fun slot ->
           { slot.slot_exc with Mode.exc_to = Some (sort_points slot.slot_pts) })
  in
  (* Pass B: merge single-group -through pin sets for equal
     (kind, sides, from, to). *)
  group step_a
    ~key_of:(fun e ->
      match e.Mode.exc_through with
      | [ _ ] -> Some (norm_from e, Option.map sort_points e.Mode.exc_to)
      | [] | _ :: _ :: _ -> None)
    ~init:(fun slot e ->
      slot.slot_pins <- (match e.Mode.exc_through with [ p ] -> p | _ -> []))
    ~merge:(fun slot e ->
      slot.slot_pins <-
        (match e.Mode.exc_through with [ p ] -> p | _ -> []) @ slot.slot_pins)
  |> finish (fun slot ->
         {
           slot.slot_exc with
           Mode.exc_through = [ List.sort_uniq compare slot.slot_pins ];
         })

let data_clock_refinement (prelim : Prelim.t) individual ctxs merged =
  let design = merged.Mode.design in
  let ctx_m = Context.create design merged in
  let union = union_data_masks prelim individual ctxs ctx_m in
  let masks_m = Relation_prop.data_clock_masks ctx_m in
  let extra pin = masks_m.(pin) land lnot union.(pin) in
  let fixes = ref [] in
  Design.iter_pins design (fun pin ->
      let e = extra pin in
      if e <> 0 then begin
        let pred_extra =
          let g = ctx_m.Context.graph in
          Graph.fold_in g pin 0 (fun acc aid ->
              if Mm_timing.Const_prop.enabled ctx_m.Context.consts aid then
                acc lor extra (Graph.arc_src g aid)
              else acc)
        in
        let frontier = e land lnot pred_extra in
        if frontier <> 0 then
          for ci = 0 to Clock_prop.n_clocks ctx_m.Context.clocks - 1 do
            if frontier land (1 lsl ci) <> 0 then
              fixes := (Clock_prop.clock_name ctx_m.Context.clocks ci, pin) :: !fixes
          done
      end);
  let fixes = List.rev !fixes in
  let tagged =
    coalesce_tagged
      (List.map
         (fun (clock, pin) ->
           ( Mode.exc ~from_:[ Mode.P_clock clock ] ~through:[ [ pin ] ]
               Mode.False_path,
             [ From_data_clock (clock, pin) ] ))
         fixes)
  in
  let excs = List.map fst tagged in
  ( { merged with Mode.exceptions = merged.Mode.exceptions @ excs },
    fixes,
    tagged,
    ctx_m )

let run ?(max_iters = 4) ?ctx_cache ~(prelim : Prelim.t) ~individual () =
  Mm_util.Obs.with_span
    ~attrs:[ "merged", prelim.Prelim.merged.Mode.mode_name ]
    "merge.refine"
  @@ fun () ->
  let ctx_cache =
    match ctx_cache with
    | Some c -> c
    | None -> Mm_timing.Ctx_cache.create ()
  in
  let ctxs = List.map (Mm_timing.Ctx_cache.find ctx_cache) individual in
  let sides =
    List.map2
      (fun (m : Mode.t) ctx ->
        { Compare.ctx; rename = Prelim.rename_of prelim m.Mode.mode_name })
      individual ctxs
  in
  (* Step 1: data-network clock refinement. *)
  let merged, data_clock_fixes, step1_tagged, base_ctx =
    data_clock_refinement prelim individual ctxs prelim.Prelim.merged
  in
  (* Step 2: compare/fix loop. Every iteration's mode differs from
     [base_ctx]'s only by appended exceptions, so the context is
     re-derived via {!Context.with_exceptions} (graph, constants and
     clock propagation reused) and pass 1 goes through the incremental
     compare cache. *)
  let cmp_cache = Compare.create_cache () in
  let rec loop merged added iter =
    let ctx_m =
      Mm_util.Obs.with_span "sta.incremental_reuse"
        ~attrs:[ "what", "refine-context"; "iter", string_of_int iter ]
        (fun () -> Context.with_exceptions base_ctx merged)
    in
    let result = Compare.run ~cache:cmp_cache ~individual:sides ~merged:ctx_m () in
    let new_fixes =
      List.filter
        (fun (f : Compare.fix) ->
          not (List.exists (Mode.exc_equal f.Compare.fix_exc) merged.Mode.exceptions))
        result.Compare.fixes
    in
    if new_fixes = [] || iter >= max_iters then merged, ctx_m, added, result, iter
    else begin
      let tagged =
        coalesce_tagged
          (List.map (fun f -> f.Compare.fix_exc, [ From_fix f ]) new_fixes)
      in
      let excs = List.map fst tagged in
      loop
        { merged with Mode.exceptions = merged.Mode.exceptions @ excs }
        (added @ tagged) (iter + 1)
    end
  in
  let refined, refined_ctx, added_lineage, final_compare, iterations =
    loop merged step1_tagged 1
  in
  let added = List.map fst added_lineage in
  Mm_util.Metrics.incr ~by:(List.length added) "refine.false_paths_added";
  Mm_util.Metrics.observe "refine.iterations" (float_of_int iterations);
  {
    refined;
    refined_ctx = Some refined_ctx;
    data_clock_fixes;
    added_exceptions = added;
    added_lineage;
    final_compare;
    iterations;
  }
