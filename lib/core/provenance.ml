module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Writer = Mm_sdc.Writer
module Prov = Mm_util.Prov

(* Derivation walks [Mode.to_commands_tagged] on the emitted mode, so
   seeds are 1:1 with the emitted commands and the assigned ids are a
   function of the merged mode's content alone (jobs-invariant).

   Contributor lookups iterate the member modes in input order and
   their record lists in definition order — never a hash table — so
   the attribution lists are canonical (DESIGN.md §11). *)

let pin_name design p = Design.pin_name design p

let evidence_fields (ev : Compare.evidence) reason =
  [ "pass", string_of_int ev.Compare.ev_pass ]
  @ (match ev.Compare.ev_startpoint with
    | Some s -> [ "startpoint", s ]
    | None -> [])
  @ (match ev.Compare.ev_through with Some t -> [ "through", t ] | None -> [])
  @ [ "endpoint", ev.Compare.ev_endpoint ]
  @ (match ev.Compare.ev_launch with Some l -> [ "launch", l ] | None -> [])
  @ (match ev.Compare.ev_capture with Some c -> [ "capture", c ] | None -> [])
  @ [
      "individual", ev.Compare.ev_ind;
      "merged", ev.Compare.ev_mrg;
      "reason", reason;
    ]

let origin_evidence design = function
  | Refine.From_data_clock (clock, pin) ->
    [
      "kind", "data-clock-cut"; "clock", clock; "pin", pin_name design pin;
    ]
  | Refine.From_fix f ->
    evidence_fields f.Compare.fix_evidence f.Compare.fix_reason

let origin_of_lineage = function
  | Refine.From_data_clock _ -> Prov.Data_clock_refinement
  | Refine.From_fix f ->
    Prov.Comparison_fix { pass = f.Compare.fix_evidence.Compare.ev_pass }

(* A singleton clique re-emits the source mode verbatim: every
   constraint is a trivial union from that one mode. *)
let of_single (mode : Mode.t) =
  let seeds =
    List.map
      (fun (_, cmd) ->
        Prov.seed ~modes:[ mode.Mode.mode_name ]
          ~notes:[ "singleton clique: constraint carried verbatim" ]
          ~origin:Prov.Union
          (Writer.write_command cmd))
      (Mode.to_commands_tagged mode)
  in
  Prov.make ~scope:mode.Mode.mode_name seeds

let of_group ~(members : Mode.t list) ~(prelim : Prelim.t)
    ~(refine : Refine.t option) ~(mode : Mode.t) =
  let design = mode.Mode.design in
  let all_modes = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members in
  let rename (m : Mode.t) local =
    Prelim.rename_of prelim m.Mode.mode_name local
  in
  let clock_contributors name =
    List.filter_map
      (fun (m : Mode.t) ->
        if
          List.exists
            (fun (c : Mode.clock) -> rename m c.Mode.clk_name = name)
            m.Mode.clocks
        then Some m.Mode.mode_name
        else None)
      members
  in
  let clock_rename_notes name =
    List.concat_map
      (fun (m : Mode.t) ->
        List.filter_map
          (fun (c : Mode.clock) ->
            if rename m c.Mode.clk_name = name && c.Mode.clk_name <> name then
              Some
                (Printf.sprintf "renamed from %s in mode %s" c.Mode.clk_name
                   m.Mode.mode_name)
            else None)
          m.Mode.clocks)
      members
  in
  let attr_contributors name =
    List.filter_map
      (fun (m : Mode.t) ->
        if List.exists (fun (local, _) -> rename m local = name) m.Mode.attrs
        then Some m.Mode.mode_name
        else None)
      members
  in
  let env_contributors (e : Mode.env_constraint) =
    List.filter_map
      (fun (m : Mode.t) ->
        if
          List.exists
            (fun (e' : Mode.env_constraint) ->
              e'.Mode.envc_kind = e.Mode.envc_kind
              && e'.Mode.envc_pin = e.Mode.envc_pin
              && e'.Mode.envc_minmax = e.Mode.envc_minmax)
            m.Mode.envs
        then Some m.Mode.mode_name
        else None)
      members
  in
  let drc_contributors (l : Mode.drc_limit) =
    List.filter_map
      (fun (m : Mode.t) ->
        if
          List.exists
            (fun (l' : Mode.drc_limit) ->
              l'.Mode.drcl_kind = l.Mode.drcl_kind
              && l'.Mode.drcl_pin = l.Mode.drcl_pin)
            m.Mode.drcs
        then Some m.Mode.mode_name
        else None)
      members
  in
  let io_contributors (d : Mode.io_delay) =
    List.filter_map
      (fun (m : Mode.t) ->
        if
          List.exists
            (fun (d' : Mode.io_delay) ->
              Mode.io_delay_equal
                {
                  d' with
                  Mode.iod_clock = Option.map (rename m) d'.Mode.iod_clock;
                }
                d)
            m.Mode.io_delays
        then Some m.Mode.mode_name
        else None)
      members
  in
  let group_contributors (g : Mode.clock_group) =
    List.filter_map
      (fun (m : Mode.t) ->
        if
          List.exists
            (fun (g' : Mode.clock_group) ->
              g'.Mode.grp_kind = g.Mode.grp_kind
              && List.map (List.map (rename m)) g'.Mode.grp_clocks
                 = g.Mode.grp_clocks)
            m.Mode.groups
        then Some m.Mode.mode_name
        else None)
      members
  in
  let sense_evidence (s : Mode.clock_sense) =
    List.filter_map
      (fun (clock, pin) ->
        let clock_matches =
          match s.Mode.cs_clocks with
          | Some cs -> List.mem clock cs
          | None -> true
        in
        if clock_matches && List.mem pin s.Mode.cs_pins then
          Some [ "clock", clock; "pin", pin_name design pin ]
        else None)
      prelim.Prelim.inferred_senses
  in
  let n_prelim = List.length prelim.Prelim.merged.Mode.exceptions in
  let exc_seed i (e : Mode.exc) line =
    if i < n_prelim then
      match
        List.find_opt
          (fun (_, e') -> Mode.exc_equal e e')
          prelim.Prelim.uniquified
      with
      | Some (mn, _) ->
        Prov.seed ~modes:[ mn ]
          ~notes:
            [
              Printf.sprintf
                "uniquified: restricted to the clocks of mode %s (3.1.10)" mn;
            ]
          ~origin:Prov.Uniquification line
      | None ->
        Prov.seed ~modes:all_modes
          ~notes:[ "kept by intersection: present in every mode (3.1.9)" ]
          ~origin:Prov.Intersection line
    else
      let lineage =
        match refine with
        | None -> None
        | Some r -> List.nth_opt r.Refine.added_lineage (i - n_prelim)
      in
      match lineage with
      | Some (_, (first :: _ as origins)) ->
        Prov.seed
          ~evidence:(List.map (origin_evidence design) origins)
          ~notes:[ "false path added by refinement (3.2)" ]
          ~origin:(origin_of_lineage first) line
      | Some (_, []) | None ->
        (* Positional attribution failed — should not happen; keep the
           entry rather than dropping the constraint from the audit. *)
        Prov.seed ~notes:[ "refinement-added (lineage unattributed)" ]
          ~origin:Prov.Data_clock_refinement line
  in
  let seed_of (section, cmd) =
    let line = Writer.write_command cmd in
    match section with
    | Mode.Sec_clock c ->
      let name = c.Mode.clk_name in
      Prov.seed ~modes:(clock_contributors name)
        ~notes:(clock_rename_notes name)
        ~origin:Prov.Union line
    | Mode.Sec_attr c ->
      let name = c.Mode.clk_name in
      let modes =
        match attr_contributors name with
        | [] -> clock_contributors name
        | ms -> ms
      in
      Prov.seed ~modes
        ~notes:[ "clock attributes tolerance-merged (3.1.2)" ]
        ~origin:Prov.Tolerance_merge line
    | Mode.Sec_env e ->
      Prov.seed ~modes:(env_contributors e)
        ~notes:[ "environment values tolerance-merged (3.1.6)" ]
        ~origin:Prov.Tolerance_merge line
    | Mode.Sec_drc l ->
      Prov.seed ~modes:(drc_contributors l)
        ~notes:[ "tightest design-rule limit across modes (3.1.6)" ]
        ~origin:Prov.Tolerance_merge line
    | Mode.Sec_case _ ->
      Prov.seed ~modes:all_modes
        ~notes:[ "case analysis kept by intersection (3.1.4)" ]
        ~origin:Prov.Intersection line
    | Mode.Sec_disable d ->
      let inferred =
        match d with
        | Mode.Dis_pin p -> List.mem p prelim.Prelim.inferred_disables
        | Mode.Dis_inst _ -> false
      in
      if inferred then
        Prov.seed
          ~notes:[ "disable inferred by clock-network refinement (3.1.8)" ]
          ~origin:Prov.Clock_refinement line
      else
        Prov.seed ~modes:all_modes
          ~notes:[ "disable kept by intersection (3.1.5)" ]
          ~origin:Prov.Intersection line
    | Mode.Sec_io d ->
      Prov.seed ~modes:(io_contributors d)
        ~notes:[ "external delay carried into the union (3.1.3)" ]
        ~origin:Prov.Union line
    | Mode.Sec_group g ->
      if List.mem g prelim.Prelim.derived_groups then
        Prov.seed
          ~notes:
            [ "exclusivity derived: clocks never coexist in a mode (3.1.7)" ]
          ~origin:Prov.Derived_exclusivity line
      else
        Prov.seed ~modes:(group_contributors g)
          ~notes:[ "clock group inherited from source modes" ]
          ~origin:Prov.Inherited line
    | Mode.Sec_sense s ->
      Prov.seed ~evidence:(sense_evidence s)
        ~notes:[ "stop-propagation inferred by clock-network refinement (3.1.8)" ]
        ~origin:Prov.Clock_refinement line
    | Mode.Sec_exc (i, e) -> exc_seed i e line
  in
  Prov.make ~scope:mode.Mode.mode_name
    (List.map seed_of (Mode.to_commands_tagged mode))

let annotation (e : Prov.entry) =
  let modes =
    match e.Prov.pv_modes with
    | [] -> ""
    | ms -> " [" ^ String.concat "," ms ^ "]"
  in
  Printf.sprintf "prov: %s %s%s" e.Prov.pv_id
    (Prov.origin_to_string e.Prov.pv_origin)
    modes

let annotated_sdc store (mode : Mode.t) =
  let entries = Array.of_list (Prov.entries store) in
  let cmds = Mode.to_commands mode in
  Writer.write_commands_annotated
    ~header:("mode " ^ mode.Mode.mode_name)
    ~comment:(fun i _ ->
      if i < Array.length entries then Some (annotation entries.(i)) else None)
    cmds
