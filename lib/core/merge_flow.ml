module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Stat = Mm_util.Stat
module Diag = Mm_util.Diag
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pool = Mm_util.Pool
module Govern = Mm_util.Govern
module Chaos = Mm_util.Chaos
module Eventlog = Mm_util.Eventlog
module Progress = Mm_util.Progress
module Ctx_cache = Mm_timing.Ctx_cache

type policy = Strict | Permissive

type stage = Load | Probe | Merge

let stage_to_string = function
  | Load -> "load"
  | Probe -> "probe"
  | Merge -> "merge"

type quarantined = { q_name : string; q_stage : stage; q_diags : Diag.t list }

type group = {
  grp_members : string list;
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;
  grp_equiv : Equiv.report option;
  grp_mode : Mode.t;
  grp_prov : Mm_util.Prov.store;
}

(* ------------------------------------------------------------------ *)
(* Resource governance types                                           *)

type budgets = {
  bg_deadline_s : float option;
  bg_stage_s : (string * float) list;
  bg_task_s : float option;
  bg_retry : Govern.retry_policy;
  bg_mem_limit_mb : float option;
}

let default_budgets =
  {
    bg_deadline_s = None;
    bg_stage_s = [];
    bg_task_s = None;
    bg_retry = Govern.default_retry;
    bg_mem_limit_mb = None;
  }

let stage_names = [ "load"; "mergeability"; "cliques" ]

type govern_event = {
  ge_stage : string;
  ge_scope : string;
  ge_action : string;
  ge_detail : string;
}

type governed = {
  gov_clique_splits : int;
  gov_budget_quarantines : int;
  gov_conservative_pairs : int;
  gov_deadline_hit : bool;
  gov_events : govern_event list;
}

let empty_governed =
  {
    gov_clique_splits = 0;
    gov_budget_quarantines = 0;
    gov_conservative_pairs = 0;
    gov_deadline_hit = false;
    gov_events = [];
  }

let degraded_under_budget g =
  g.gov_clique_splits > 0 || g.gov_budget_quarantines > 0
  || g.gov_conservative_pairs > 0

type checkpoint_spec = { ck_dir : string; ck_resume : bool; ck_key : string }

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  quarantined : quarantined list;
  degraded : string list list;
  diags : Diag.t list;
  n_individual : int;
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
  governed : governed;
}

(* Mutable accumulator behind the [governed] snapshot. Only the driver
   domain touches it: pool tasks report governance outcomes through
   their return values, never by writing here. *)
type gov_state = {
  mutable gs_splits : int;
  mutable gs_budget_quar : int;
  mutable gs_conservative : int;
  mutable gs_deadline_hit : bool;
  mutable gs_events : govern_event list; (* reversed *)
}

let fresh_gov_state () =
  {
    gs_splits = 0;
    gs_budget_quar = 0;
    gs_conservative = 0;
    gs_deadline_hit = false;
    gs_events = [];
  }

let snapshot_gov gs =
  {
    gov_clique_splits = gs.gs_splits;
    gov_budget_quarantines = gs.gs_budget_quar;
    gov_conservative_pairs = gs.gs_conservative;
    gov_deadline_hit = gs.gs_deadline_hit;
    gov_events = List.rev gs.gs_events;
  }

let restore_gov gs g =
  gs.gs_splits <- g.gov_clique_splits;
  gs.gs_budget_quar <- g.gov_budget_quarantines;
  gs.gs_conservative <- g.gov_conservative_pairs;
  gs.gs_deadline_hit <- g.gov_deadline_hit;
  gs.gs_events <- List.rev g.gov_events

let event gs ~stage ~scope ~action ~detail =
  gs.gs_events <-
    { ge_stage = stage; ge_scope = scope; ge_action = action;
      ge_detail = detail }
    :: gs.gs_events

(* One journal entry per constraint set that leaves the pipeline —
   whatever the cause (parse failure, crash, blown budget). *)
let log_quarantine ~stage q =
  Eventlog.log "merge.quarantined" ~attrs:[ "stage", stage; "mode", q.q_name ]

let exn_diag ~code ~name exn =
  Diag.makef ~loc:(Diag.loc name) Diag.Error ~code "%s: %s" name
    (Printexc.to_string exn)

let interrupt_diag ~name r =
  Diag.makef ~loc:(Diag.loc name) Diag.Error ~code:(Govern.reason_code r)
    "%s abandoned under resource governance: %s" name
    (Govern.reason_to_string r)

(* All-singleton fallback when the mergeability analysis itself dies in
   permissive mode: no edges, every mode its own clique. *)
let degenerate_mergeability modes =
  let n = List.length modes in
  {
    Mergeability.mode_names =
      Array.of_list (List.map (fun m -> m.Mode.mode_name) modes);
    adjacency = Array.make_matrix n n false;
    cliques = List.init n (fun i -> [ i ]);
    pair_reasons = Hashtbl.create 1;
  }

let singleton_group ?tolerance ~ctx_cache (single : Mode.t) =
  let prelim =
    Prelim.merge ?tolerance ~ctx_cache ~name:single.Mode.mode_name [ single ]
  in
  {
    grp_members = [ single.Mode.mode_name ];
    grp_prelim = prelim;
    grp_refine = None;
    grp_equiv = None;
    grp_mode = single;
    grp_prov = Provenance.of_single single;
  }

let merged_group ?tolerance ~check_equivalence ~ctx_cache ~name members =
  let prelim = Prelim.merge ?tolerance ~ctx_cache ~name members in
  let refine = Refine.run ~ctx_cache ~prelim ~individual:members () in
  let equiv =
    if check_equivalence then
      Some
        (Equiv.check ~ctx_cache ?merged_ctx:refine.Refine.refined_ctx
           ~individual:members
           ~rename:(Prelim.rename_of prelim)
           ~merged:refine.Refine.refined ())
    else None
  in
  let mode = refine.Refine.refined in
  {
    grp_members = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members;
    grp_prelim = prelim;
    grp_refine = Some refine;
    grp_equiv = equiv;
    grp_mode = mode;
    grp_prov =
      Provenance.of_group ~members ~prelim ~refine:(Some refine) ~mode;
  }

(* ------------------------------------------------------------------ *)
(* Task values

   Every pipeline stage is expressed as a batch of pure tasks whose
   outcomes the driver folds in input order, so the result is
   byte-identical whether the batch ran on one domain or many. Tasks
   never touch shared mutable state: each gets a {!Ctx_cache.fork} of
   the run's cache, and quarantines/degradations/diagnostics travel in
   the outcome value instead of being pushed into shared refs. *)

(* Outcome of one stage-3 clique task. *)
type task_out = {
  tk_groups : group list;
  tk_quarantined : quarantined list;
  tk_degraded : string list list;
  tk_diags : Diag.t list;
}

(* Permissive stage-1 task: probe one mode's singleton merge (context
   construction + clock propagation). A mode that cannot even stand
   alone is quarantined before it can poison the pairwise analysis.
   The probe's group is kept — stage 3 reuses it for singleton cliques
   and degraded members instead of merging the mode a second time. *)
let probe_task ?tolerance ~ctx_cache (m : Mode.t) =
  let ctx_cache = Ctx_cache.fork ctx_cache in
  match singleton_group ?tolerance ~ctx_cache m with
  | g -> Ok (m, g)
  | exception exn ->
    Error
      {
        q_name = m.Mode.mode_name;
        q_stage = Probe;
        q_diags =
          [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
      }

(* Stage-3 task: merge one clique. [probed] holds the memoized
   singleton groups from stage 1 (empty under [Strict]); it is written
   before the stage-3 batch is published and only read afterwards.
   [name] is the merged mode's name — [merged_<gi>] for top-level
   cliques, [merged_<gi>_s<k>...] for the halves of a budget split. *)
let clique_task ?tolerance ~check_equivalence ~policy ~probed ~ctx_cache ~name
    members =
  let ctx_cache = Ctx_cache.fork ctx_cache in
  let singleton (m : Mode.t) =
    match Hashtbl.find_opt probed m.Mode.mode_name with
    | Some g -> g
    | None -> singleton_group ?tolerance ~ctx_cache m
  in
  let ok g = { tk_groups = [ g ]; tk_quarantined = []; tk_degraded = []; tk_diags = [] } in
  let quarantine (m : Mode.t) exn =
    {
      q_name = m.Mode.mode_name;
      q_stage = Merge;
      q_diags = [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
    }
  in
  (* Permissive fallback: keep the clique's modes individual
     ("when in doubt, don't merge"). *)
  let degrade reason =
    let names = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members in
    let diag =
      Diag.makef Diag.Warning ~code:"merge.group-degraded"
        "group [%s] kept as individual modes: %s" (String.concat ", " names)
        reason
    in
    let groups, quarantines =
      List.fold_left
        (fun (gs, qs) (m : Mode.t) ->
          match singleton m with
          | g -> g :: gs, qs
          | exception exn -> gs, quarantine m exn :: qs)
        ([], []) members
    in
    {
      tk_groups = List.rev groups;
      tk_quarantined = List.rev quarantines;
      tk_degraded = [ names ];
      tk_diags = [ diag ];
    }
  in
  Obs.with_span "merge.group"
    ~attrs:
      [
        "members",
        String.concat ","
          (List.map (fun (m : Mode.t) -> m.Mode.mode_name) members);
      ]
  @@ fun () ->
  match members, policy with
  | [ single ], Strict -> ok (singleton single)
  | [ single ], Permissive -> (
    match singleton single with
    | g -> ok g
    | exception exn ->
      {
        tk_groups = [];
        tk_quarantined = [ quarantine single exn ];
        tk_degraded = [];
        tk_diags = [];
      })
  | _, Strict ->
    ok
      (merged_group ?tolerance ~check_equivalence ~ctx_cache ~name members)
  | _, Permissive -> (
    match
      merged_group ?tolerance ~check_equivalence ~ctx_cache ~name members
    with
    | g -> (
      match g.grp_equiv with
      | Some e when not e.Equiv.equivalent ->
        degrade
          (Printf.sprintf
             "merged mode failed the equivalence check (%d mismatches)"
             e.Equiv.mismatches)
      | _ -> ok g)
    | exception exn ->
      degrade (Printf.sprintf "merge failed with %s" (Printexc.to_string exn)))

(* ------------------------------------------------------------------ *)
(* Degradation ladder, rung 1: retry with exponential backoff

   An abandoned or crashed task is re-attempted under a fresh child
   budget while the stage still has budget. Transient faults (an
   injected chaos exception, a task-budget timeout under momentary
   load) are absorbed here with byte-identical output — the re-run
   computes exactly what the first run would have. Only when retries
   are exhausted do the outcome-changing rungs (split, quarantine)
   engage. *)

let note_interrupt = function
  | Govern.Interrupted (Govern.Deadline_exceeded _) as o ->
    Metrics.incr "govern.timeouts";
    o
  | Govern.Interrupted (Govern.Memory_watermark _) as o ->
    Metrics.incr "govern.mem_trips";
    o
  | o -> o

let rescue ~stage_tok ~budgets ~scope f o =
  match note_interrupt o with
  | Govern.Done _ as d -> d
  | first ->
    let p = budgets.bg_retry in
    let rec go attempt last =
      if attempt > p.Govern.max_attempts || Govern.expired stage_tok then last
      else begin
        Metrics.incr "govern.retries";
        Eventlog.log "govern.retry"
          ~attrs:[ "scope", scope; "attempt", string_of_int attempt ];
        Govern.sleep_s (Govern.backoff_s p ~attempt);
        let tok = Govern.sub ~scope ?budget_s:budgets.bg_task_s stage_tok in
        let o =
          note_interrupt
            (Govern.run tok (fun () ->
                 Chaos.hit "pool.retry";
                 f ()))
        in
        match o with Govern.Done _ as d -> d | o -> go (attempt + 1) o
      end
    in
    go 2 first

(* Strict policy: governance failures propagate like any other failure
   (after the retry rung) — crashes with their original backtrace,
   expired budgets as [Govern.Cancelled]. *)
let strict_fail o =
  match Govern.reraise_crash o with
  | Govern.Interrupted r -> raise (Govern.Cancelled r)
  | Govern.Done _ | Govern.Crashed _ -> assert false

(* ------------------------------------------------------------------ *)
(* Checkpointed stage state

   Each record is the {e cumulative} pipeline state at its stage
   boundary, so resuming needs only the latest completed stage's
   payload. All three are closure-free (Marshal-safe). *)

type st_load = {
  sl_modes : Mode.t list;
  sl_quar : quarantined list;
  sl_diags : Diag.t list;
  sl_gov : governed;
}

type st_matrix = {
  sm_modes : Mode.t list; (* survivors of the probe, analysis order *)
  sm_probed : (string * group) list; (* memoized singleton groups *)
  sm_matrix : Mergeability.t;
  sm_quar : quarantined list;
  sm_diags : Diag.t list;
  sm_gov : governed;
}

type st_cliques = {
  sc_groups : group list;
  sc_quar : quarantined list;
  sc_degraded : string list list;
  sc_diags : Diag.t list;
  sc_gov : governed;
}

let stage_token ~budgets root name =
  Govern.sub
    ~scope:("merge." ^ name)
    ?budget_s:(List.assoc_opt name budgets.bg_stage_s)
    root

(* Run one pipeline stage through the checkpoint store: a completed
   stage reloads (with its metric-counter snapshot) instead of
   recomputing; a computed stage persists {e before} the chaos kill
   site fires, so a [merge.stage:*] kill always leaves a resumable
   checkpoint. *)
let staged ck ~stage compute =
  let recompute () =
    Eventlog.log "stage.start" ~attrs:[ "stage", stage ];
    let v = compute () in
    (match ck with
    | Some t ->
      Checkpoint.save_stage t ~stage ~counters:(Metrics.counters ()) v
    | None -> ());
    Eventlog.log "stage.finish" ~attrs:[ "stage", stage ];
    Chaos.hit ("merge.stage:" ^ stage);
    v
  in
  match ck with
  | Some t when Checkpoint.has_stage t stage -> (
    match Checkpoint.load_stage t ~stage with
    | Some (v, counters) ->
      Metrics.restore_counters counters;
      Eventlog.log "stage.resumed" ~attrs:[ "stage", stage ];
      v
    | None -> recompute ())
  | _ -> recompute ()

(* ------------------------------------------------------------------ *)
(* Stage computes                                                      *)

(* Load task: parse and resolve one source. Pure — quarantine vs mode
   travels in the outcome, diagnostics alongside. *)
let load_task ~policy ~design src_name src_file src_text =
  (* The diagnostic location falls back to the mode name so that
     quarantined in-memory sources still carry a located report. *)
  let file = Option.value src_file ~default:src_name in
  match policy with
  | Strict ->
    let r = Resolve.mode_of_string ~file design ~name:src_name src_text in
    Ok (r.Resolve.mode, r.Resolve.diags)
  | Permissive ->
    let r =
      Resolve.mode_of_string_robust ~file design ~name:src_name src_text
    in
    if Diag.has_errors r.Resolve.diags then
      Error { q_name = src_name; q_stage = Load; q_diags = r.Resolve.diags }
    else Ok (r.Resolve.mode, r.Resolve.diags)

let compute_matrix ?tolerance ~policy ~pool ~budgets ~gs ~ctx_cache ~root
    (ld : st_load) =
  let tok = stage_token ~budgets root "mergeability" in
  Progress.add_total ~by:(List.length ld.sl_modes) "merge.mergeability";
  let quar = ref (List.rev ld.sl_quar) in
  let diags = ref (List.rev ld.sl_diags) in
  let quarantine q =
    Metrics.incr "merge.quarantined";
    log_quarantine ~stage:"mergeability" q;
    quar := q :: !quar
  in
  (* Stage 1 (permissive): per-mode probe tasks. *)
  let probed = Hashtbl.create 16 in
  let modes =
    match policy with
    | Strict -> ld.sl_modes
    | Permissive ->
      let outs =
        Pool.map_outcome pool ~govern:tok ?task_budget_s:budgets.bg_task_s
          (probe_task ?tolerance ~ctx_cache)
          ld.sl_modes
      in
      List.rev
        (List.fold_left2
           (fun acc (m : Mode.t) out ->
             let name = m.Mode.mode_name in
             Progress.tick "merge.mergeability";
             match
               rescue ~stage_tok:tok ~budgets ~scope:name
                 (fun () -> probe_task ?tolerance ~ctx_cache m)
                 out
             with
             | Govern.Done (Ok ((m : Mode.t), g)) ->
               Hashtbl.replace probed m.Mode.mode_name g;
               m :: acc
             | Govern.Done (Error q) ->
               quarantine q;
               acc
             | Govern.Crashed { exn; _ } ->
               quarantine
                 {
                   q_name = name;
                   q_stage = Probe;
                   q_diags = [ exn_diag ~code:"merge.mode-failed" ~name exn ];
                 };
               acc
             | Govern.Interrupted r ->
               (* Ladder rung 3: a mode whose probe never fit the
                  budget is quarantined, like a crashing one. *)
               gs.gs_budget_quar <- gs.gs_budget_quar + 1;
               event gs ~stage:"mergeability" ~scope:name ~action:"quarantine"
                 ~detail:(Govern.reason_to_string r);
               quarantine
                 {
                   q_name = name;
                   q_stage = Probe;
                   q_diags = [ interrupt_diag ~name r ];
                 };
               acc)
           [] ld.sl_modes outs)
  in
  (* Stage 2: mergeability graph + clique cover (pairwise checks are
     pool tasks inside [Mergeability.analyze]). *)
  let c0 = Metrics.get_counter "govern.conservative_pairs" in
  let matrix =
    match policy with
    | Strict ->
      Mergeability.analyze ?tolerance ~ctx_cache ~pool ~govern:tok
        ?task_budget_s:budgets.bg_task_s modes
    | Permissive -> (
      try
        Mergeability.analyze ?tolerance ~ctx_cache ~pool ~govern:tok
          ?task_budget_s:budgets.bg_task_s ~conservative:true modes
      with exn ->
        diags :=
          Diag.makef Diag.Error ~code:"merge.analysis-failed"
            "mergeability analysis failed (%s); keeping all modes individual"
            (Printexc.to_string exn)
          :: !diags;
        degenerate_mergeability modes)
  in
  let dc = Metrics.get_counter "govern.conservative_pairs" - c0 in
  if dc > 0 then begin
    gs.gs_conservative <- gs.gs_conservative + dc;
    Eventlog.log "govern.conservative"
      ~attrs:[ "stage", "mergeability"; "pairs", string_of_int dc ];
    event gs ~stage:"mergeability" ~scope:"pairs" ~action:"conservative"
      ~detail:
        (Printf.sprintf
           "%d pair checks abandoned under budget; treated as not mergeable"
           dc)
  end;
  Metrics.incr ~by:(List.length matrix.Mergeability.cliques) "merge.cliques";
  if Govern.cancelled tok <> None then gs.gs_deadline_hit <- true;
  Progress.finish "merge.mergeability";
  {
    sm_modes = modes;
    sm_probed =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) probed []);
    sm_matrix = matrix;
    sm_quar = List.rev !quar;
    sm_diags = List.rev !diags;
    sm_gov = snapshot_gov gs;
  }

let compute_cliques ?tolerance ~check_equivalence ~policy ~pool ~budgets ~gs
    ~ctx_cache ~root (sm : st_matrix) =
  let tok = stage_token ~budgets root "cliques" in
  let probed = Hashtbl.create 16 in
  List.iter (fun (k, g) -> Hashtbl.replace probed k g) sm.sm_probed;
  let cliques = Mergeability.clique_modes sm.sm_matrix sm.sm_modes in
  let named =
    List.mapi (fun gi members -> Printf.sprintf "merged_%d" gi, members) cliques
  in
  Progress.add_total ~by:(List.length named) "merge.cliques";
  let task (name, members) =
    clique_task ?tolerance ~check_equivalence ~policy ~probed ~ctx_cache ~name
      members
  in
  (* Stage 3: per-clique merge tasks, folded in clique order. *)
  let outs =
    Obs.with_span
      ~attrs:[ "cliques", string_of_int (List.length named) ]
      "merge.clique_sweep"
    @@ fun () ->
    Pool.map_outcome pool ~govern:tok ?task_budget_s:budgets.bg_task_s task
      named
  in
  (* Degradation ladder for a clique the retry rung could not save:
     split it in half and merge the halves under their own budgets
     (recursively, down to singletons), then quarantine what still
     does not fit. Splitting only forfeits reduction — every surviving
     half is a normal merged group with the full refine/equivalence
     treatment — so the paper's inclusion guarantee is preserved. *)
  let rec resolve (name, members) out =
    match
      rescue ~stage_tok:tok ~budgets ~scope:name
        (fun () -> task (name, members))
        out
    with
    | Govern.Done t -> t
    | o when policy = Strict -> strict_fail o
    | o -> (
      match members with
      | [] -> { tk_groups = []; tk_quarantined = []; tk_degraded = []; tk_diags = [] }
      | [ (m : Mode.t) ] -> (
        let mode_name = m.Mode.mode_name in
        match o, Hashtbl.find_opt probed mode_name with
        | Govern.Interrupted _, Some g ->
          (* The probe already computed this mode's singleton group;
             reusing it is byte-identical to the un-interrupted task. *)
          { tk_groups = [ g ]; tk_quarantined = []; tk_degraded = []; tk_diags = [] }
        | Govern.Interrupted r, None ->
          gs.gs_budget_quar <- gs.gs_budget_quar + 1;
          event gs ~stage:"cliques" ~scope:mode_name ~action:"quarantine"
            ~detail:(Govern.reason_to_string r);
          {
            tk_groups = [];
            tk_quarantined =
              [
                {
                  q_name = mode_name;
                  q_stage = Merge;
                  q_diags = [ interrupt_diag ~name:mode_name r ];
                };
              ];
            tk_degraded = [];
            tk_diags = [];
          }
        | (Govern.Crashed { exn; _ } : task_out Govern.outcome), _ ->
          {
            tk_groups = [];
            tk_quarantined =
              [
                {
                  q_name = mode_name;
                  q_stage = Merge;
                  q_diags =
                    [ exn_diag ~code:"merge.mode-failed" ~name:mode_name exn ];
                };
              ];
            tk_degraded = [];
            tk_diags = [];
          }
        | Govern.Done _, _ -> assert false)
      | _ ->
        let why =
          match o with
          | Govern.Interrupted r -> Govern.reason_to_string r
          | Govern.Crashed { exn; _ } -> Printexc.to_string exn
          | Govern.Done _ -> assert false
        in
        gs.gs_splits <- gs.gs_splits + 1;
        Metrics.incr "govern.clique_splits";
        Eventlog.log "govern.clique_split"
          ~attrs:
            [ "clique", name;
              "members", string_of_int (List.length members);
              "why", why ];
        event gs ~stage:"cliques" ~scope:name ~action:"split" ~detail:why;
        let diag =
          Diag.makef Diag.Warning ~code:"govern.clique-split"
            "clique %s split under budget pressure: %s" name why
        in
        let k = (List.length members + 1) / 2 in
        let left = List.filteri (fun i _ -> i < k) members in
        let right = List.filteri (fun i _ -> i >= k) members in
        let sub i mem =
          let nm = Printf.sprintf "%s_s%d" name i in
          let t2 = Govern.sub ~scope:nm ?budget_s:budgets.bg_task_s tok in
          resolve (nm, mem) (Govern.run t2 (fun () -> task (nm, mem)))
        in
        let a = sub 0 left in
        let b = sub 1 right in
        {
          tk_groups = a.tk_groups @ b.tk_groups;
          tk_quarantined = a.tk_quarantined @ b.tk_quarantined;
          tk_degraded = a.tk_degraded @ b.tk_degraded;
          tk_diags = (diag :: a.tk_diags) @ b.tk_diags;
        })
  in
  let quar = ref (List.rev sm.sm_quar) in
  let diags = ref (List.rev sm.sm_diags) in
  let groups, degraded =
    List.fold_left2
      (fun (acc_g, acc_d) nm out ->
        let t = resolve nm out in
        Progress.tick "merge.cliques";
        List.iter
          (fun q ->
            Metrics.incr "merge.quarantined";
            log_quarantine ~stage:"cliques" q;
            quar := q :: !quar)
          t.tk_quarantined;
        Metrics.incr ~by:(List.length t.tk_degraded) "merge.degraded_cliques";
        List.iter
          (fun members ->
            Eventlog.log "merge.degraded"
              ~attrs:
                [ "stage", "cliques"; "modes", String.concat "," members ])
          t.tk_degraded;
        List.iter (fun d -> diags := d :: !diags) t.tk_diags;
        List.rev_append t.tk_groups acc_g, List.rev_append t.tk_degraded acc_d)
      ([], []) named outs
  in
  if Govern.cancelled tok <> None then gs.gs_deadline_hit <- true;
  Progress.finish "merge.cliques";
  {
    sc_groups = List.rev groups;
    sc_quar = List.rev !quar;
    sc_degraded = List.rev degraded;
    sc_diags = List.rev !diags;
    sc_gov = snapshot_gov gs;
  }

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let drive ?tolerance ?cancel ~check_equivalence ~policy ~pool ~budgets ~ck
    ~extra_diags ~t0 ~load () =
  Obs.with_span ~attrs:[ "policy", (match policy with Strict -> "strict" | Permissive -> "permissive") ]
    "merge.flow"
  @@ fun () ->
  Metrics.set "merge.jobs" (float_of_int (Pool.jobs pool));
  (match budgets.bg_mem_limit_mb with
  | Some _ as l -> Govern.set_memory_limit_mb l
  | None -> ());
  (* With an external [cancel] token (the service daemon's per-job
     token) the run root is a child of it: cancelling the job cancels
     every stage and pool task of this run, while the run's own
     deadline still applies. *)
  let root =
    match cancel with
    | None -> Govern.create ?deadline_s:budgets.bg_deadline_s ~scope:"merge" ()
    | Some tok -> Govern.sub ~scope:"merge" ?budget_s:budgets.bg_deadline_s tok
  in
  Govern.set_run_root root;
  Eventlog.log "run.start"
    ~attrs:
      [ "scope", "merge";
        "jobs", string_of_int (Pool.jobs pool);
        "policy", (match policy with Strict -> "strict" | Permissive -> "permissive") ];
  let gs = fresh_gov_state () in
  let ctx_cache = Ctx_cache.create () in
  let ld =
    staged ck ~stage:"load" (fun () ->
        load ~tok:(stage_token ~budgets root "load") ~gs)
  in
  restore_gov gs ld.sl_gov;
  let sm =
    staged ck ~stage:"mergeability" (fun () ->
        compute_matrix ?tolerance ~policy ~pool ~budgets ~gs ~ctx_cache ~root
          ld)
  in
  restore_gov gs sm.sm_gov;
  let sc =
    staged ck ~stage:"cliques" (fun () ->
        let sc =
          compute_cliques ?tolerance ~check_equivalence ~policy ~pool ~budgets
            ~gs ~ctx_cache ~root sm
        in
        (* The equivalence check (the only consumer of refined_ctx) has
           already run inside compute_cliques; strip the contexts so the
           stage value marshals cleanly into the checkpoint. *)
        {
          sc with
          sc_groups =
            List.map
              (fun g ->
                {
                  g with
                  grp_refine =
                    Option.map
                      (fun r -> { r with Refine.refined_ctx = None })
                      g.grp_refine;
                })
              sc.sc_groups;
        })
  in
  restore_gov gs sc.sc_gov;
  if Govern.cancelled root <> None then gs.gs_deadline_hit <- true;
  (* Whole-run GC totals under gc.* gauges: the resource axis of the
     flight recorder, refreshed at every stage boundary that matters. *)
  Obs.record_gc_metrics ();
  let n_individual = List.length sm.sm_modes
  and n_merged = List.length sc.sc_groups in
  Eventlog.log "run.finish"
    ~attrs:
      [ "scope", "merge";
        "groups", string_of_int n_merged;
        "quarantined", string_of_int (List.length sc.sc_quar);
        "degraded", string_of_int (List.length sc.sc_degraded) ];
  {
    groups = sc.sc_groups;
    mergeability = sm.sm_matrix;
    quarantined = sc.sc_quar;
    degraded = sc.sc_degraded;
    diags = extra_diags @ sc.sc_diags;
    n_individual;
    n_merged;
    reduction_percent =
      Stat.reduction_percent (float_of_int n_individual)
        (float_of_int n_merged);
    runtime_s = Obs.Clock.elapsed_s t0;
    governed = snapshot_gov gs;
  }

let run ?tolerance ?(check_equivalence = true) ?(policy = Strict) ?jobs
    ?(budgets = default_budgets) ?cancel modes =
  Pool.with_pool ?jobs @@ fun pool ->
  drive ?tolerance ?cancel ~check_equivalence ~policy ~pool ~budgets ~ck:None
    ~extra_diags:[]
    ~t0:(Obs.Clock.now_ns ())
    ~load:(fun ~tok:_ ~gs:_ ->
      { sl_modes = modes; sl_quar = []; sl_diags = []; sl_gov = empty_governed })
    ()

(* ------------------------------------------------------------------ *)
(* Source loading with per-mode quarantine                             *)

type source = { src_name : string; src_file : string option; src_text : string }

let source_of_file path =
  {
    src_name = Filename.remove_extension (Filename.basename path);
    src_file = Some path;
    src_text = Mm_sdc.Parser.read_whole_file path;
  }

(* The checkpoint fingerprint covers everything that shapes the result:
   the inputs themselves plus the options the stage payloads bake in.
   Budgets and jobs are deliberately excluded — resuming with a bigger
   budget or different parallelism is legitimate (and jobs-invariance
   guarantees the same bytes). *)
let fingerprint ?tolerance ~check_equivalence ~policy ~key sources =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( Checkpoint.schema_version,
            key,
            policy,
            check_equivalence,
            tolerance,
            List.map (fun s -> s.src_name, s.src_text) sources )
          []))

let compute_load ~policy ~design ~pool ~budgets ~gs ~tok sources =
  Obs.with_span "merge.load"
    ~attrs:[ "sources", string_of_int (List.length sources) ]
  @@ fun () ->
  Progress.add_total ~by:(List.length sources) "merge.load";
  let task src = load_task ~policy ~design src.src_name src.src_file src.src_text in
  let outs =
    Pool.map_outcome pool ~govern:tok ?task_budget_s:budgets.bg_task_s task
      sources
  in
  (* Fold outcomes in source order; diagnostics accumulate by reversed
     cons (the old [!d @ r.diags] was quadratic in the source count). *)
  let modes, quar, diags =
    List.fold_left2
      (fun (ms, qs, ds) src out ->
        let name = src.src_name in
        Progress.tick "merge.load";
        match
          rescue ~stage_tok:tok ~budgets ~scope:name (fun () -> task src) out
        with
        | Govern.Done (Ok (mode, diags)) ->
          mode :: ms, qs, List.rev_append diags ds
        | Govern.Done (Error q) -> ms, q :: qs, ds
        | (Govern.Crashed _ | Govern.Interrupted _) as o
          when policy = Strict ->
          strict_fail o
        | Govern.Crashed { exn; _ } ->
          let q =
            {
              q_name = name;
              q_stage = Load;
              q_diags = [ exn_diag ~code:"merge.mode-failed" ~name exn ];
            }
          in
          ms, q :: qs, ds
        | Govern.Interrupted r ->
          gs.gs_budget_quar <- gs.gs_budget_quar + 1;
          event gs ~stage:"load" ~scope:name ~action:"quarantine"
            ~detail:(Govern.reason_to_string r);
          let q =
            { q_name = name; q_stage = Load; q_diags = [ interrupt_diag ~name r ] }
          in
          ms, q :: qs, ds)
      ([], [], []) sources outs
  in
  let quar = List.rev quar in
  Metrics.incr ~by:(List.length quar) "merge.quarantined";
  List.iter (log_quarantine ~stage:"load") quar;
  if Govern.cancelled tok <> None then gs.gs_deadline_hit <- true;
  Progress.finish "merge.load";
  {
    sl_modes = List.rev modes;
    sl_quar = quar;
    sl_diags = List.rev diags;
    sl_gov = snapshot_gov gs;
  }

let run_sources ?tolerance ?(check_equivalence = true) ?(policy = Strict) ?jobs
    ?(budgets = default_budgets) ?checkpoint ?cancel ~design sources =
  Pool.with_pool ?jobs @@ fun pool ->
  let t0 = Obs.Clock.now_ns () in
  let extra_diags = ref [] in
  let ck =
    match checkpoint with
    | None -> None
    | Some spec ->
      let fp =
        fingerprint ?tolerance ~check_equivalence ~policy ~key:spec.ck_key
          sources
      in
      if spec.ck_resume then
        match Checkpoint.load_for_resume ~dir:spec.ck_dir ~fingerprint:fp with
        | Ok t -> Some t
        | Error msg ->
          extra_diags :=
            [
              Diag.makef Diag.Warning ~code:"govern.resume"
                "cannot resume: %s; starting fresh" msg;
            ];
          Some (Checkpoint.create ~dir:spec.ck_dir ~fingerprint:fp)
      else Some (Checkpoint.create ~dir:spec.ck_dir ~fingerprint:fp)
  in
  drive ?tolerance ?cancel ~check_equivalence ~policy ~pool ~budgets ~ck
    ~extra_diags:!extra_diags ~t0
    ~load:(fun ~tok ~gs ->
      compute_load ~policy ~design ~pool ~budgets ~gs ~tok sources)
    ()

let run_files ?tolerance ?check_equivalence ?(policy = Strict) ?jobs ?budgets
    ?checkpoint ?cancel ~design paths =
  (* In strict mode an unreadable file raises [Sys_error]; in
     permissive mode it is quarantined up front with a fatal io.read
     diagnostic and the remaining files still merge. Reads run under
     the retry rung so a transient IO fault never aborts a run. *)
  let retry = (Option.value budgets ~default:default_budgets).bg_retry in
  let read path =
    Govern.with_retry ~policy:retry Govern.never ~scope:path
      ~transient:(function
        | Sys_error _ | Chaos.Injected _ -> true
        | _ -> false)
      (fun () ->
        Chaos.hit "io.read";
        source_of_file path)
  in
  let io_failed = ref [] in
  let sources =
    List.filter_map
      (fun path ->
        match read path with
        | s -> Some s
        | exception Chaos.Injected site ->
          if policy = Strict then raise (Chaos.Injected site);
          io_failed :=
            {
              q_name = Filename.remove_extension (Filename.basename path);
              q_stage = Load;
              q_diags =
                [
                  Diag.makef ~loc:(Diag.loc path) Diag.Fatal ~code:"io.read"
                    "injected fault at %s" site;
                ];
            }
            :: !io_failed;
          None
        | exception Sys_error msg ->
          if policy = Strict then raise (Sys_error msg);
          io_failed :=
            {
              q_name = Filename.remove_extension (Filename.basename path);
              q_stage = Load;
              q_diags =
                [ Diag.makef ~loc:(Diag.loc path) Diag.Fatal ~code:"io.read" "%s" msg ];
            }
            :: !io_failed;
          None)
      paths
  in
  let r =
    run_sources ?tolerance ?check_equivalence ~policy ?jobs ?budgets
      ?checkpoint ?cancel ~design sources
  in
  Metrics.incr ~by:(List.length !io_failed) "merge.quarantined";
  List.iter (log_quarantine ~stage:"load") !io_failed;
  { r with quarantined = List.rev !io_failed @ r.quarantined }

let merged_modes r = List.map (fun g -> g.grp_mode) r.groups

(* The canonical on-disk shape of a merge result: the exact
   (filename, bytes) pairs the CLI `merge` subcommand writes. The
   service daemon serves these same pairs, which is what makes the
   cached/remote result byte-identical to a one-shot run by
   construction. *)
let merged_files ?(annotate = false) r =
  List.mapi
    (fun i g ->
      let text =
        if annotate then Provenance.annotated_sdc g.grp_prov g.grp_mode
        else Mm_sdc.Mode.to_sdc g.grp_mode
      in
      Printf.sprintf "merged_%d.sdc" i, text)
    r.groups

let summary_row ~design_name ~size_cells r =
  [
    design_name;
    string_of_int size_cells;
    string_of_int r.n_individual;
    string_of_int r.n_merged;
    Stat.fmt_f1 r.reduction_percent;
    Stat.fmt_time_s r.runtime_s;
  ]
