module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Stat = Mm_util.Stat
module Diag = Mm_util.Diag
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pool = Mm_util.Pool
module Ctx_cache = Mm_timing.Ctx_cache

type policy = Strict | Permissive

type stage = Load | Probe | Merge

let stage_to_string = function
  | Load -> "load"
  | Probe -> "probe"
  | Merge -> "merge"

type quarantined = { q_name : string; q_stage : stage; q_diags : Diag.t list }

type group = {
  grp_members : string list;
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;
  grp_equiv : Equiv.report option;
  grp_mode : Mode.t;
  grp_prov : Mm_util.Prov.store;
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  quarantined : quarantined list;
  degraded : string list list;
  diags : Diag.t list;
  n_individual : int;
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
}

let exn_diag ~code ~name exn =
  Diag.makef ~loc:(Diag.loc name) Diag.Error ~code "%s: %s" name
    (Printexc.to_string exn)

(* All-singleton fallback when the mergeability analysis itself dies in
   permissive mode: no edges, every mode its own clique. *)
let degenerate_mergeability modes =
  let n = List.length modes in
  {
    Mergeability.mode_names =
      Array.of_list (List.map (fun m -> m.Mode.mode_name) modes);
    adjacency = Array.make_matrix n n false;
    cliques = List.init n (fun i -> [ i ]);
    pair_reasons = Hashtbl.create 1;
  }

let singleton_group ?tolerance ~ctx_cache (single : Mode.t) =
  let prelim =
    Prelim.merge ?tolerance ~ctx_cache ~name:single.Mode.mode_name [ single ]
  in
  {
    grp_members = [ single.Mode.mode_name ];
    grp_prelim = prelim;
    grp_refine = None;
    grp_equiv = None;
    grp_mode = single;
    grp_prov = Provenance.of_single single;
  }

let merged_group ?tolerance ~check_equivalence ~ctx_cache ~name members =
  let prelim = Prelim.merge ?tolerance ~ctx_cache ~name members in
  let refine = Refine.run ~ctx_cache ~prelim ~individual:members () in
  let equiv =
    if check_equivalence then
      Some
        (Equiv.check ~ctx_cache ~individual:members
           ~rename:(Prelim.rename_of prelim)
           ~merged:refine.Refine.refined ())
    else None
  in
  let mode = refine.Refine.refined in
  {
    grp_members = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members;
    grp_prelim = prelim;
    grp_refine = Some refine;
    grp_equiv = equiv;
    grp_mode = mode;
    grp_prov =
      Provenance.of_group ~members ~prelim ~refine:(Some refine) ~mode;
  }

(* ------------------------------------------------------------------ *)
(* Task values

   Every pipeline stage is expressed as a batch of pure tasks whose
   outcomes the driver folds in input order, so the result is
   byte-identical whether the batch ran on one domain or many. Tasks
   never touch shared mutable state: each gets a {!Ctx_cache.fork} of
   the run's cache, and quarantines/degradations/diagnostics travel in
   the outcome value instead of being pushed into shared refs. *)

(* Outcome of one stage-3 clique task. *)
type task_out = {
  tk_groups : group list;
  tk_quarantined : quarantined list;
  tk_degraded : string list list;
  tk_diags : Diag.t list;
}

(* Permissive stage-1 task: probe one mode's singleton merge (context
   construction + clock propagation). A mode that cannot even stand
   alone is quarantined before it can poison the pairwise analysis.
   The probe's group is kept — stage 3 reuses it for singleton cliques
   and degraded members instead of merging the mode a second time. *)
let probe_task ?tolerance ~ctx_cache (m : Mode.t) =
  let ctx_cache = Ctx_cache.fork ctx_cache in
  match singleton_group ?tolerance ~ctx_cache m with
  | g -> Ok (m, g)
  | exception exn ->
    Error
      {
        q_name = m.Mode.mode_name;
        q_stage = Probe;
        q_diags =
          [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
      }

(* Stage-3 task: merge one clique. [probed] holds the memoized
   singleton groups from stage 1 (empty under [Strict]); it is written
   before the stage-3 batch is published and only read afterwards. *)
let clique_task ?tolerance ~check_equivalence ~policy ~probed ~ctx_cache
    (gi, members) =
  let ctx_cache = Ctx_cache.fork ctx_cache in
  let merged_name = Printf.sprintf "merged_%d" gi in
  let singleton (m : Mode.t) =
    match Hashtbl.find_opt probed m.Mode.mode_name with
    | Some g -> g
    | None -> singleton_group ?tolerance ~ctx_cache m
  in
  let ok g = { tk_groups = [ g ]; tk_quarantined = []; tk_degraded = []; tk_diags = [] } in
  let quarantine (m : Mode.t) exn =
    {
      q_name = m.Mode.mode_name;
      q_stage = Merge;
      q_diags = [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
    }
  in
  (* Permissive fallback: keep the clique's modes individual
     ("when in doubt, don't merge"). *)
  let degrade reason =
    let names = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members in
    let diag =
      Diag.makef Diag.Warning ~code:"merge.group-degraded"
        "group [%s] kept as individual modes: %s" (String.concat ", " names)
        reason
    in
    let groups, quarantines =
      List.fold_left
        (fun (gs, qs) (m : Mode.t) ->
          match singleton m with
          | g -> g :: gs, qs
          | exception exn -> gs, quarantine m exn :: qs)
        ([], []) members
    in
    {
      tk_groups = List.rev groups;
      tk_quarantined = List.rev quarantines;
      tk_degraded = [ names ];
      tk_diags = [ diag ];
    }
  in
  Obs.with_span "merge.group"
    ~attrs:
      [
        "members",
        String.concat ","
          (List.map (fun (m : Mode.t) -> m.Mode.mode_name) members);
      ]
  @@ fun () ->
  match members, policy with
  | [ single ], Strict -> ok (singleton single)
  | [ single ], Permissive -> (
    match singleton single with
    | g -> ok g
    | exception exn ->
      {
        tk_groups = [];
        tk_quarantined = [ quarantine single exn ];
        tk_degraded = [];
        tk_diags = [];
      })
  | _, Strict ->
    ok
      (merged_group ?tolerance ~check_equivalence ~ctx_cache ~name:merged_name
         members)
  | _, Permissive -> (
    match
      merged_group ?tolerance ~check_equivalence ~ctx_cache ~name:merged_name
        members
    with
    | g -> (
      match g.grp_equiv with
      | Some e when not e.Equiv.equivalent ->
        degrade
          (Printf.sprintf
             "merged mode failed the equivalence check (%d mismatches)"
             e.Equiv.mismatches)
      | _ -> ok g)
    | exception exn ->
      degrade (Printf.sprintf "merge failed with %s" (Printexc.to_string exn)))

let run_core ?tolerance ~check_equivalence ~policy ~pool ~t0 ~pre_quarantined
    ~pre_diags modes =
  Obs.with_span
    ~attrs:[ "modes", string_of_int (List.length modes) ]
    "merge.flow"
  @@ fun () ->
  Metrics.set "merge.jobs" (float_of_int (Pool.jobs pool));
  let ctx_cache = Ctx_cache.create () in
  let diags = Diag.collector () in
  List.iter (Diag.add diags) pre_diags;
  (* Quarantine diagnostics live on the quarantine record itself, not
     in the run-level stream. *)
  let quarantined = ref (List.rev pre_quarantined) in
  Metrics.incr ~by:(List.length pre_quarantined) "merge.quarantined";
  let quarantine q =
    Metrics.incr "merge.quarantined";
    quarantined := q :: !quarantined
  in
  (* Stage 1 (permissive): per-mode probe tasks. *)
  let probed = Hashtbl.create 16 in
  let modes =
    match policy with
    | Strict -> modes
    | Permissive ->
      List.filter_map
        (function
          | Ok ((m : Mode.t), g) ->
            Hashtbl.replace probed m.Mode.mode_name g;
            Some m
          | Error q ->
            quarantine q;
            None)
        (Pool.map pool (probe_task ?tolerance ~ctx_cache) modes)
  in
  (* Stage 2: mergeability graph + clique cover (pairwise checks are
     pool tasks inside [Mergeability.analyze]). *)
  let mergeability =
    match policy with
    | Strict -> Mergeability.analyze ?tolerance ~ctx_cache ~pool modes
    | Permissive -> (
      try Mergeability.analyze ?tolerance ~ctx_cache ~pool modes
      with exn ->
        Diag.addf diags Diag.Error ~code:"merge.analysis-failed"
          "mergeability analysis failed (%s); keeping all modes individual"
          (Printexc.to_string exn);
        degenerate_mergeability modes)
  in
  let cliques = Mergeability.clique_modes mergeability modes in
  Metrics.incr ~by:(List.length cliques) "merge.cliques";
  (* Stage 3: per-clique merge tasks, folded in clique order. *)
  let outs =
    Obs.with_span
      ~attrs:[ "cliques", string_of_int (List.length cliques) ]
      "merge.clique_sweep"
    @@ fun () ->
    Pool.map pool
      (clique_task ?tolerance ~check_equivalence ~policy ~probed ~ctx_cache)
      (List.mapi (fun gi members -> gi, members) cliques)
  in
  let groups, degraded =
    List.fold_left
      (fun (gs, ds) out ->
        List.iter quarantine out.tk_quarantined;
        Metrics.incr ~by:(List.length out.tk_degraded) "merge.degraded_cliques";
        List.iter (Diag.add diags) out.tk_diags;
        List.rev_append out.tk_groups gs, List.rev_append out.tk_degraded ds)
      ([], []) outs
  in
  let groups = List.rev groups and degraded = List.rev degraded in
  let n_individual = List.length modes and n_merged = List.length groups in
  {
    groups;
    mergeability;
    quarantined = List.rev !quarantined;
    degraded;
    diags = Diag.to_list diags;
    n_individual;
    n_merged;
    reduction_percent =
      Stat.reduction_percent (float_of_int n_individual) (float_of_int n_merged);
    runtime_s = Obs.Clock.elapsed_s t0;
  }

let run ?tolerance ?(check_equivalence = true) ?(policy = Strict) ?jobs modes =
  Pool.with_pool ?jobs @@ fun pool ->
  run_core ?tolerance ~check_equivalence ~policy ~pool
    ~t0:(Obs.Clock.now_ns ())
    ~pre_quarantined:[] ~pre_diags:[] modes

(* ------------------------------------------------------------------ *)
(* Source loading with per-mode quarantine                             *)

type source = { src_name : string; src_file : string option; src_text : string }

let source_of_file path =
  {
    src_name = Filename.remove_extension (Filename.basename path);
    src_file = Some path;
    src_text = Mm_sdc.Parser.read_whole_file path;
  }

(* Load task: parse and resolve one source. Pure — quarantine vs mode
   travels in the outcome, diagnostics alongside. *)
let load_task ~policy ~design src =
  (* The diagnostic location falls back to the mode name so that
     quarantined in-memory sources still carry a located report. *)
  let file = Option.value src.src_file ~default:src.src_name in
  match policy with
  | Strict ->
    let r =
      Resolve.mode_of_string ~file design ~name:src.src_name src.src_text
    in
    Ok (r.Resolve.mode, r.Resolve.diags)
  | Permissive ->
    let r =
      Resolve.mode_of_string_robust ~file design ~name:src.src_name
        src.src_text
    in
    if Diag.has_errors r.Resolve.diags then
      Error { q_name = src.src_name; q_stage = Load; q_diags = r.Resolve.diags }
    else Ok (r.Resolve.mode, r.Resolve.diags)

let run_sources ?tolerance ?(check_equivalence = true) ?(policy = Strict) ?jobs
    ~design sources =
  Pool.with_pool ?jobs @@ fun pool ->
  let t0 = Obs.Clock.now_ns () in
  let loaded =
    Obs.with_span "merge.load"
      ~attrs:[ "sources", string_of_int (List.length sources) ]
    @@ fun () -> Pool.map pool (load_task ~policy ~design) sources
  in
  (* Fold outcomes in source order; diagnostics accumulate by reversed
     cons (the old [!d @ r.diags] was quadratic in the source count). *)
  let modes, pre_quarantined, pre_diags =
    List.fold_left
      (fun (ms, qs, ds) -> function
        | Ok (mode, diags) -> mode :: ms, qs, List.rev_append diags ds
        | Error q -> ms, q :: qs, ds)
      ([], [], []) loaded
  in
  run_core ?tolerance ~check_equivalence ~policy ~pool ~t0
    ~pre_quarantined:(List.rev pre_quarantined)
    ~pre_diags:(List.rev pre_diags) (List.rev modes)

let run_files ?tolerance ?check_equivalence ?(policy = Strict) ?jobs ~design
    paths =
  (* In strict mode an unreadable file raises [Sys_error]; in
     permissive mode it is quarantined up front with a fatal io.read
     diagnostic and the remaining files still merge. *)
  let io_failed = ref [] in
  let sources =
    List.filter_map
      (fun path ->
        match source_of_file path with
        | s -> Some s
        | exception Sys_error msg ->
          if policy = Strict then raise (Sys_error msg);
          io_failed :=
            {
              q_name = Filename.remove_extension (Filename.basename path);
              q_stage = Load;
              q_diags =
                [ Diag.makef ~loc:(Diag.loc path) Diag.Fatal ~code:"io.read" "%s" msg ];
            }
            :: !io_failed;
          None)
      paths
  in
  let r =
    run_sources ?tolerance ?check_equivalence ~policy ?jobs ~design sources
  in
  Metrics.incr ~by:(List.length !io_failed) "merge.quarantined";
  { r with quarantined = List.rev !io_failed @ r.quarantined }

let merged_modes r = List.map (fun g -> g.grp_mode) r.groups

let summary_row ~design_name ~size_cells r =
  [
    design_name;
    string_of_int size_cells;
    string_of_int r.n_individual;
    string_of_int r.n_merged;
    Stat.fmt_f1 r.reduction_percent;
    Stat.fmt_time_s r.runtime_s;
  ]
