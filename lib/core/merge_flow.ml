module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Stat = Mm_util.Stat
module Diag = Mm_util.Diag
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics

type policy = Strict | Permissive

type stage = Load | Probe | Merge

let stage_to_string = function
  | Load -> "load"
  | Probe -> "probe"
  | Merge -> "merge"

type quarantined = { q_name : string; q_stage : stage; q_diags : Diag.t list }

type group = {
  grp_members : string list;
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;
  grp_equiv : Equiv.report option;
  grp_mode : Mode.t;
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  quarantined : quarantined list;
  degraded : string list list;
  diags : Diag.t list;
  n_individual : int;
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
}

let exn_diag ~code ~name exn =
  Diag.makef ~loc:(Diag.loc name) Diag.Error ~code "%s: %s" name
    (Printexc.to_string exn)

(* All-singleton fallback when the mergeability analysis itself dies in
   permissive mode: no edges, every mode its own clique. *)
let degenerate_mergeability modes =
  let n = List.length modes in
  {
    Mergeability.mode_names =
      Array.of_list (List.map (fun m -> m.Mode.mode_name) modes);
    adjacency = Array.make_matrix n n false;
    cliques = List.init n (fun i -> [ i ]);
    pair_reasons = Hashtbl.create 1;
  }

let singleton_group ?tolerance ~ctx_cache (single : Mode.t) =
  let prelim =
    Prelim.merge ?tolerance ~ctx_cache ~name:single.Mode.mode_name [ single ]
  in
  {
    grp_members = [ single.Mode.mode_name ];
    grp_prelim = prelim;
    grp_refine = None;
    grp_equiv = None;
    grp_mode = single;
  }

let merged_group ?tolerance ~check_equivalence ~ctx_cache ~name members =
  let prelim = Prelim.merge ?tolerance ~ctx_cache ~name members in
  let refine = Refine.run ~ctx_cache ~prelim ~individual:members () in
  let equiv =
    if check_equivalence then
      Some
        (Equiv.check ~ctx_cache ~individual:members
           ~rename:(Prelim.rename_of prelim)
           ~merged:refine.Refine.refined ())
    else None
  in
  {
    grp_members = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members;
    grp_prelim = prelim;
    grp_refine = Some refine;
    grp_equiv = equiv;
    grp_mode = refine.Refine.refined;
  }

let run_core ?tolerance ~check_equivalence ~policy ~t0 ~pre_quarantined
    ~pre_diags modes =
  Obs.with_span
    ~attrs:[ "modes", string_of_int (List.length modes) ]
    "merge.flow"
  @@ fun () ->
  let ctx_cache = Hashtbl.create 32 in
  let diags = Diag.collector () in
  List.iter (Diag.add diags) pre_diags;
  let quarantined = ref (List.rev pre_quarantined) in
  Metrics.incr ~by:(List.length pre_quarantined) "merge.quarantined";
  (* Quarantine diagnostics live on the quarantine record itself, not
     in the run-level stream. *)
  let quarantine name stage qds =
    Metrics.incr "merge.quarantined";
    quarantined := { q_name = name; q_stage = stage; q_diags = qds } :: !quarantined
  in
  (* Permissive stage 1: probe each mode's singleton merge (context
     construction + clock propagation). A mode that cannot even stand
     alone is quarantined before it can poison the pairwise analysis.
     The context cache makes the probe's work reusable downstream. *)
  let modes =
    match policy with
    | Strict -> modes
    | Permissive ->
      List.filter
        (fun (m : Mode.t) ->
          match singleton_group ?tolerance ~ctx_cache m with
          | _ -> true
          | exception exn ->
            quarantine m.Mode.mode_name Probe
              [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
            false)
        modes
  in
  (* Stage 2: mergeability graph + clique cover. *)
  let mergeability =
    match policy with
    | Strict -> Mergeability.analyze ?tolerance ~ctx_cache modes
    | Permissive -> (
      try Mergeability.analyze ?tolerance ~ctx_cache modes
      with exn ->
        Diag.addf diags Diag.Error ~code:"merge.analysis-failed"
          "mergeability analysis failed (%s); keeping all modes individual"
          (Printexc.to_string exn);
        degenerate_mergeability modes)
  in
  let cliques = Mergeability.clique_modes mergeability modes in
  Metrics.incr ~by:(List.length cliques) "merge.cliques";
  (* Stage 3: per-clique merge, with per-group degradation in
     permissive mode — a group that fails to merge, refine or validate
     falls back to its individual modes ("when in doubt, don't merge"). *)
  let degraded = ref [] in
  let degrade_members members reason =
    let names = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members in
    degraded := names :: !degraded;
    Metrics.incr "merge.degraded_cliques";
    Diag.addf diags Diag.Warning ~code:"merge.group-degraded"
      "group [%s] kept as individual modes: %s" (String.concat ", " names)
      reason;
    List.filter_map
      (fun (m : Mode.t) ->
        match singleton_group ?tolerance ~ctx_cache m with
        | g -> Some g
        | exception exn ->
          quarantine m.Mode.mode_name Merge
            [ exn_diag ~code:"merge.mode-failed" ~name:m.Mode.mode_name exn ];
          None)
      members
  in
  let groups =
    List.concat
      (List.mapi
         (fun gi members ->
           let merged_name = Printf.sprintf "merged_%d" gi in
           Obs.with_span "merge.group"
             ~attrs:
               [
                 "members",
                 String.concat ","
                   (List.map (fun (m : Mode.t) -> m.Mode.mode_name) members);
               ]
           @@ fun () ->
           match members, policy with
           | [ single ], Strict ->
             [ singleton_group ?tolerance ~ctx_cache single ]
           | [ single ], Permissive -> (
             match singleton_group ?tolerance ~ctx_cache single with
             | g -> [ g ]
             | exception exn ->
               quarantine single.Mode.mode_name Merge
                 [
                   exn_diag ~code:"merge.mode-failed"
                     ~name:single.Mode.mode_name exn;
                 ];
               [])
           | _, Strict ->
             [
               merged_group ?tolerance ~check_equivalence ~ctx_cache
                 ~name:merged_name members;
             ]
           | _, Permissive -> (
             match
               merged_group ?tolerance ~check_equivalence ~ctx_cache
                 ~name:merged_name members
             with
             | g -> (
               match g.grp_equiv with
               | Some e when not e.Equiv.equivalent ->
                 degrade_members members
                   (Printf.sprintf
                      "merged mode failed the equivalence check (%d mismatches)"
                      e.Equiv.mismatches)
               | _ -> [ g ])
             | exception exn ->
               degrade_members members
                 (Printf.sprintf "merge failed with %s" (Printexc.to_string exn))))
         cliques)
  in
  let n_individual = List.length modes and n_merged = List.length groups in
  {
    groups;
    mergeability;
    quarantined = List.rev !quarantined;
    degraded = List.rev !degraded;
    diags = Diag.to_list diags;
    n_individual;
    n_merged;
    reduction_percent =
      Stat.reduction_percent (float_of_int n_individual) (float_of_int n_merged);
    runtime_s = Obs.Clock.elapsed_s t0;
  }

let run ?tolerance ?(check_equivalence = true) ?(policy = Strict) modes =
  run_core ?tolerance ~check_equivalence ~policy
    ~t0:(Obs.Clock.now_ns ())
    ~pre_quarantined:[] ~pre_diags:[] modes

(* ------------------------------------------------------------------ *)
(* Source loading with per-mode quarantine                             *)

type source = { src_name : string; src_file : string option; src_text : string }

let source_of_file path =
  {
    src_name = Filename.remove_extension (Filename.basename path);
    src_file = Some path;
    src_text = Mm_sdc.Parser.read_whole_file path;
  }

let run_sources ?tolerance ?(check_equivalence = true) ?(policy = Strict)
    ~design sources =
  let t0 = Obs.Clock.now_ns () in
  let pre_quarantined = ref [] and pre_diags = ref [] in
  let modes =
    Obs.with_span "merge.load"
      ~attrs:[ "sources", string_of_int (List.length sources) ]
    @@ fun () ->
    List.filter_map
      (fun src ->
        (* The diagnostic location falls back to the mode name so that
           quarantined in-memory sources still carry a located report. *)
        let file = Option.value src.src_file ~default:src.src_name in
        match policy with
        | Strict ->
          let r = Resolve.mode_of_string ~file design ~name:src.src_name src.src_text in
          pre_diags := !pre_diags @ r.Resolve.diags;
          Some r.Resolve.mode
        | Permissive ->
          let r =
            Resolve.mode_of_string_robust ~file design ~name:src.src_name
              src.src_text
          in
          if Diag.has_errors r.Resolve.diags then begin
            pre_quarantined :=
              { q_name = src.src_name; q_stage = Load; q_diags = r.Resolve.diags }
              :: !pre_quarantined;
            None
          end
          else begin
            pre_diags := !pre_diags @ r.Resolve.diags;
            Some r.Resolve.mode
          end)
      sources
  in
  run_core ?tolerance ~check_equivalence ~policy ~t0
    ~pre_quarantined:(List.rev !pre_quarantined)
    ~pre_diags:!pre_diags modes

let run_files ?tolerance ?check_equivalence ?(policy = Strict) ~design paths =
  (* In strict mode an unreadable file raises [Sys_error]; in
     permissive mode it is quarantined up front with a fatal io.read
     diagnostic and the remaining files still merge. *)
  let io_failed = ref [] in
  let sources =
    List.filter_map
      (fun path ->
        match source_of_file path with
        | s -> Some s
        | exception Sys_error msg ->
          if policy = Strict then raise (Sys_error msg);
          io_failed :=
            {
              q_name = Filename.remove_extension (Filename.basename path);
              q_stage = Load;
              q_diags =
                [ Diag.makef ~loc:(Diag.loc path) Diag.Fatal ~code:"io.read" "%s" msg ];
            }
            :: !io_failed;
          None)
      paths
  in
  let r = run_sources ?tolerance ?check_equivalence ~policy ~design sources in
  Metrics.incr ~by:(List.length !io_failed) "merge.quarantined";
  { r with quarantined = List.rev !io_failed @ r.quarantined }

let merged_modes r = List.map (fun g -> g.grp_mode) r.groups

let summary_row ~design_name ~size_cells r =
  [
    design_name;
    string_of_int size_cells;
    string_of_int r.n_individual;
    string_of_int r.n_merged;
    Stat.fmt_f1 r.reduction_percent;
    Stat.fmt_time_s r.runtime_s;
  ]
