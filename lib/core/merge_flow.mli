(** End-to-end mode-merging flow.

    mergeability analysis -> greedy clique cover -> per clique:
    preliminary merge, refinement, equivalence check. Produces the
    reduced mode set plus the full per-group evidence, and the summary
    numbers reported in the paper's Table 5.

    {2 Fault tolerance}

    The flow runs under a {!policy}:

    - [Strict] (default) is fail-fast: any load, resolution or merge
      failure raises, exactly as a regression run wants.
    - [Permissive] degrades instead of aborting. A mode whose SDC fails
      to load/resolve, or which crashes even standing alone, is
      {e quarantined} — excluded from the merge with its diagnostics
      attached — while the remaining modes still merge. A clique whose
      preliminary merge, refinement or equivalence validation fails
      falls back to keeping that clique's modes individual
      (correctness-preserving degradation: "when in doubt, don't
      merge"). Permissive mode never raises on bad constraint input.

    {2 Parallel execution}

    Every stage is a batch of pure tasks executed on an
    {!Mm_util.Pool}: per-source load tasks, per-mode probe tasks, the
    pairwise mergeability checks, and per-clique merge tasks. Task
    outcomes carry their groups, quarantines, degradations and
    diagnostics as values, and the driver folds them in input order —
    so the result (groups, diagnostics, quarantine and degradation
    lists, metric counters) is byte-identical for any [jobs] count.
    [jobs] defaults to {!Mm_util.Pool.default_jobs} ([MM_JOBS] or the
    hardware's recommended domain count); [jobs = 1] runs sequentially
    on the calling domain with no domains spawned.

    {2 Resource governance}

    A run may carry {!budgets}: a global deadline, per-stage budgets
    (keyed by {!stage_names}), a per-task timeout, a retry policy and
    a memory watermark — all enforced through {!Mm_util.Govern}
    cancellation tokens with cooperative checkpoints, so an exhausted
    budget drains the pool in an orderly way instead of wedging it.
    Work that blows its budget walks a {e degradation ladder}:

    + {b retry} — re-run under a fresh child budget with exponential
      backoff ([govern.retries]); transient faults are absorbed here
      with byte-identical output;
    + {b split} — a clique whose merge will not fit is split in half
      and the halves merged under their own budgets, recursively down
      to singletons ([govern.clique_splits]); splitting forfeits
      reduction, never correctness;
    + {b quarantine} — a mode that still does not fit is quarantined
      exactly like a crashing one (PR-1 policy), counted in the
      [governed] record.

    Under [Strict] only the retry rung applies; exhausted budgets then
    raise {!Mm_util.Govern.Cancelled}. The {!governed} result field
    records every outcome-affecting governance decision (transparent
    retries are metrics-only, so recovered runs stay byte-identical).

    {2 Checkpoint/resume}

    With a {!checkpoint_spec}, {!run_sources}/{!run_files} persist each
    completed stage ([load] -> [mergeability] -> [cliques]) to a
    {!Checkpoint} store; a killed run re-invoked with [ck_resume]
    restarts from the last completed stage and produces byte-identical
    merged modes, diagnostics and audit bytes (stage payloads include
    a metric-counter snapshot). A fingerprint over sources and
    result-shaping options guards against resuming across edited
    inputs. *)

type policy = Strict | Permissive

type stage = Load | Probe | Merge
(** Where a quarantined mode fell out: SDC loading/resolution, the
    standalone viability probe, or the merge itself. *)

val stage_to_string : stage -> string

type quarantined = {
  q_name : string;               (** mode name *)
  q_stage : stage;
  q_diags : Mm_util.Diag.t list; (** at least one, located *)
}

type group = {
  grp_members : string list;     (** individual mode names *)
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;  (** None for singleton groups *)
  grp_equiv : Equiv.report option;
  grp_mode : Mm_sdc.Mode.t;      (** the mode to use downstream *)
  grp_prov : Mm_util.Prov.store;
      (** per-constraint lineage of [grp_mode] (see {!Provenance}) *)
}

(** {2 Budgets, governance record, checkpoints} *)

type budgets = {
  bg_deadline_s : float option;  (** global wall-clock deadline *)
  bg_stage_s : (string * float) list;
      (** per-stage budgets, keyed by {!stage_names} *)
  bg_task_s : float option;      (** per-task timeout *)
  bg_retry : Mm_util.Govern.retry_policy;
  bg_mem_limit_mb : float option;  (** process heap watermark *)
}

val default_budgets : budgets
(** No deadline, no stage/task budgets, {!Mm_util.Govern.default_retry},
    no memory limit — governance off. *)

val stage_names : string list
(** The budgetable stage keys, in pipeline order:
    [["load"; "mergeability"; "cliques"]]. *)

type govern_event = {
  ge_stage : string;   (** stage name from {!stage_names} *)
  ge_scope : string;   (** mode or clique name *)
  ge_action : string;  (** ["split"], ["quarantine"] or ["conservative"] *)
  ge_detail : string;
}

type governed = {
  gov_clique_splits : int;
  gov_budget_quarantines : int;
  gov_conservative_pairs : int;
  gov_deadline_hit : bool;
  gov_events : govern_event list;  (** chronological *)
}

val empty_governed : governed

val degraded_under_budget : governed -> bool
(** True when governance changed the outcome (splits, budget
    quarantines or conservative pair verdicts) — the CLI's exit-3
    condition. *)

type checkpoint_spec = {
  ck_dir : string;    (** checkpoint directory ([--checkpoint DIR]) *)
  ck_resume : bool;   (** reuse completed stages ([--resume]) *)
  ck_key : string;    (** extra fingerprint salt, e.g. the design name *)
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  quarantined : quarantined list;
      (** modes excluded from the merge, with diagnostics (empty under
          [Strict], which raises instead) *)
  degraded : string list list;
      (** cliques that fell back to individual modes *)
  diags : Mm_util.Diag.t list;
      (** run-level diagnostics, including load warnings *)
  n_individual : int;  (** modes that entered the merge (quarantined excluded) *)
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
  governed : governed;
      (** outcome-affecting governance decisions ({!empty_governed}
          for an ungoverned or unpressured run) *)
}

val run :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  ?budgets:budgets ->
  ?cancel:Mm_util.Govern.token ->
  Mm_sdc.Mode.t list ->
  result
(** [cancel] makes the run's root token a child of the given token
    (the service daemon's per-job token): cancelling it cancels the
    whole run. Under [Strict] the run then raises
    {!Mm_util.Govern.Cancelled}.

    [check_equivalence] (default true) re-runs the comparison on the
    final merged mode of each group as independent validation; under
    [Permissive] a group failing it is degraded to individual modes.
    No checkpointing on this entry point — pre-built modes have no
    stable fingerprint; use {!run_sources}/{!run_files}. *)

(** {2 Loading from SDC sources with per-mode quarantine} *)

type source = {
  src_name : string;          (** mode name *)
  src_file : string option;   (** diagnostic location, when on disk *)
  src_text : string;          (** SDC text *)
}

val source_of_file : string -> source
(** @raise Sys_error when unreadable. *)

val run_sources :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  ?budgets:budgets ->
  ?checkpoint:checkpoint_spec ->
  ?cancel:Mm_util.Govern.token ->
  design:Mm_netlist.Design.t ->
  source list ->
  result
(** Load each source against [design] and merge. Under [Strict] a
    syntax error raises ({!Mm_sdc.Parser.Error} / {!Mm_sdc.Lexer.Error});
    under [Permissive] parsing recovers at command boundaries and a
    mode with error-severity diagnostics is quarantined.

    With [checkpoint], each completed stage persists to [ck_dir]; when
    [ck_resume] is set and the directory holds a checkpoint whose
    fingerprint matches, completed stages reload instead of
    recomputing. A failed resume (missing/torn/mismatched checkpoint)
    degrades to a fresh run with a [govern.resume] warning. *)

val run_files :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  ?budgets:budgets ->
  ?checkpoint:checkpoint_spec ->
  ?cancel:Mm_util.Govern.token ->
  design:Mm_netlist.Design.t ->
  string list ->
  result
(** {!run_sources} over {!source_of_file}; unreadable files quarantine
    under [Permissive] instead of raising (after the retry rung —
    transient IO faults are retried with backoff). *)

val merged_modes : result -> Mm_sdc.Mode.t list

val merged_files : ?annotate:bool -> result -> (string * string) list
(** The result as the exact [(filename, bytes)] pairs the CLI [merge]
    subcommand writes: [("merged_0.sdc", text); …], with provenance
    comments when [annotate]. The service daemon serves these pairs,
    so a fetched job result is byte-identical to a one-shot run by
    construction. *)

val summary_row : design_name:string -> size_cells:int -> result -> string list
(** Table-5 style row: design, size, #individual, #merged, %reduction,
    merge runtime. *)
