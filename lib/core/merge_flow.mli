(** End-to-end mode-merging flow.

    mergeability analysis -> greedy clique cover -> per clique:
    preliminary merge, refinement, equivalence check. Produces the
    reduced mode set plus the full per-group evidence, and the summary
    numbers reported in the paper's Table 5.

    {2 Fault tolerance}

    The flow runs under a {!policy}:

    - [Strict] (default) is fail-fast: any load, resolution or merge
      failure raises, exactly as a regression run wants.
    - [Permissive] degrades instead of aborting. A mode whose SDC fails
      to load/resolve, or which crashes even standing alone, is
      {e quarantined} — excluded from the merge with its diagnostics
      attached — while the remaining modes still merge. A clique whose
      preliminary merge, refinement or equivalence validation fails
      falls back to keeping that clique's modes individual
      (correctness-preserving degradation: "when in doubt, don't
      merge"). Permissive mode never raises on bad constraint input.

    {2 Parallel execution}

    Every stage is a batch of pure tasks executed on an
    {!Mm_util.Pool}: per-source load tasks, per-mode probe tasks, the
    pairwise mergeability checks, and per-clique merge tasks. Task
    outcomes carry their groups, quarantines, degradations and
    diagnostics as values, and the driver folds them in input order —
    so the result (groups, diagnostics, quarantine and degradation
    lists, metric counters) is byte-identical for any [jobs] count.
    [jobs] defaults to {!Mm_util.Pool.default_jobs} ([MM_JOBS] or the
    hardware's recommended domain count); [jobs = 1] runs sequentially
    on the calling domain with no domains spawned. *)

type policy = Strict | Permissive

type stage = Load | Probe | Merge
(** Where a quarantined mode fell out: SDC loading/resolution, the
    standalone viability probe, or the merge itself. *)

val stage_to_string : stage -> string

type quarantined = {
  q_name : string;               (** mode name *)
  q_stage : stage;
  q_diags : Mm_util.Diag.t list; (** at least one, located *)
}

type group = {
  grp_members : string list;     (** individual mode names *)
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;  (** None for singleton groups *)
  grp_equiv : Equiv.report option;
  grp_mode : Mm_sdc.Mode.t;      (** the mode to use downstream *)
  grp_prov : Mm_util.Prov.store;
      (** per-constraint lineage of [grp_mode] (see {!Provenance}) *)
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  quarantined : quarantined list;
      (** modes excluded from the merge, with diagnostics (empty under
          [Strict], which raises instead) *)
  degraded : string list list;
      (** cliques that fell back to individual modes *)
  diags : Mm_util.Diag.t list;
      (** run-level diagnostics, including load warnings *)
  n_individual : int;  (** modes that entered the merge (quarantined excluded) *)
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
}

val run :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  Mm_sdc.Mode.t list ->
  result
(** [check_equivalence] (default true) re-runs the comparison on the
    final merged mode of each group as independent validation; under
    [Permissive] a group failing it is degraded to individual modes. *)

(** {2 Loading from SDC sources with per-mode quarantine} *)

type source = {
  src_name : string;          (** mode name *)
  src_file : string option;   (** diagnostic location, when on disk *)
  src_text : string;          (** SDC text *)
}

val source_of_file : string -> source
(** @raise Sys_error when unreadable. *)

val run_sources :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  design:Mm_netlist.Design.t ->
  source list ->
  result
(** Load each source against [design] and merge. Under [Strict] a
    syntax error raises ({!Mm_sdc.Parser.Error} / {!Mm_sdc.Lexer.Error});
    under [Permissive] parsing recovers at command boundaries and a
    mode with error-severity diagnostics is quarantined. *)

val run_files :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  ?policy:policy ->
  ?jobs:int ->
  design:Mm_netlist.Design.t ->
  string list ->
  result
(** {!run_sources} over {!source_of_file}; unreadable files quarantine
    under [Permissive] instead of raising. *)

val merged_modes : result -> Mm_sdc.Mode.t list

val summary_row : design_name:string -> size_cells:int -> result -> string list
(** Table-5 style row: design, size, #individual, #merged, %reduction,
    merge runtime. *)
