(** Mergeability analysis (paper section 3, Figure 2).

    A mock run of preliminary mode merging decides whether two modes
    can merge: tolerance/value conflicts veto the pair, and so does
    clock blocking — a register clock live in one mode that the merged
    mode's clock refinement would sever. Mergeable pairs form the edges
    of the mergeability graph; maximal sets of mutually mergeable modes
    are found with a greedy clique cover (the paper uses a greedy
    algorithm "as the number of modes is small"). *)

type pair_check = { mergeable : bool; reasons : string list }

val check_pair :
  ?tolerance:Mm_util.Toler.t ->
  ?ctx_cache:Mm_timing.Ctx_cache.t ->
  Mm_sdc.Mode.t ->
  Mm_sdc.Mode.t ->
  pair_check

type t = {
  mode_names : string array;
  adjacency : bool array array;
  cliques : int list list;
      (** disjoint cover of vertex indices; singletons included *)
  pair_reasons : (int * int, string list) Hashtbl.t;
      (** non-mergeable pair diagnostics *)
}

(** Clique-cover strategy. The paper uses a greedy algorithm "as the
    number of modes is small"; [Exact] computes a minimum clique cover
    by branch and bound (only for <= 20 modes, falling back to greedy
    beyond that) — used by the ablation benches to quantify what
    greediness costs. *)
type strategy = Greedy | Exact

val greedy_cliques : bool array array -> int list list
val exact_cliques : ?limit:int -> bool array array -> int list list
(** Minimum clique cover by branch and bound; falls back to
    {!greedy_cliques} when the vertex count exceeds [limit]
    (default 20). *)

val analyze :
  ?tolerance:Mm_util.Toler.t ->
  ?ctx_cache:Mm_timing.Ctx_cache.t ->
  ?pool:Mm_util.Pool.t ->
  ?strategy:strategy ->
  ?govern:Mm_util.Govern.token ->
  ?task_budget_s:float ->
  ?conservative:bool ->
  Mm_sdc.Mode.t list ->
  t
(** The O(N^2) pairwise sweep runs on [pool] when given — each pair is
    an independent task over a {!Mm_timing.Ctx_cache.fork} of
    [ctx_cache]; results are folded in pair order, so the analysis is
    identical with and without a pool.

    The sweep runs under [govern] (with an optional per-pair
    [task_budget_s]); an abandoned pair check gets one direct rescue
    attempt (counted in [govern.retries]). If that also fails and
    [conservative] is set, the pair is recorded as not mergeable with a
    ["governance: ..."] reason and counted in
    [govern.conservative_pairs] — a safe degradation, since declining
    an edge only costs reduction, never correctness. With
    [conservative] false (the default, and the strict-policy contract)
    the underlying failure propagates: crashes re-raise with their
    original backtrace, expired budgets raise
    {!Mm_util.Govern.Cancelled}. *)

val clique_modes : t -> Mm_sdc.Mode.t list -> Mm_sdc.Mode.t list list
(** Map the clique cover back to mode values (same order as given to
    {!analyze}). *)

val edges : t -> (int * int) list
(** Mergeability-graph edges, for Figure-2 style reports. *)
