module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context

type report = {
  equivalent : bool;
  strictly_equivalent : bool;
  mismatches : int;
  remaining_fixes : int;
  ambiguous_final : int;
  unsound : string list;
  pessimistic : string list;
  compare_result : Compare.result;
}

let check ?ctx_cache ?merged_ctx ~individual ~rename ~merged () =
  Mm_util.Obs.with_span
    ~attrs:[ "merged", merged.Mode.mode_name ]
    "merge.equiv"
  @@ fun () ->
  let design = merged.Mode.design in
  let ctx_cache =
    match ctx_cache with
    | Some c -> c
    | None -> Mm_timing.Ctx_cache.create ()
  in
  let sides =
    List.map
      (fun (m : Mode.t) ->
        {
          Compare.ctx = Mm_timing.Ctx_cache.find ctx_cache m;
          rename = rename m.Mode.mode_name;
        })
      individual
  in
  let ctx_m =
    match merged_ctx with
    | Some ctx when ctx.Context.mode == merged -> ctx
    | Some _ | None -> Context.create design merged
  in
  let result = Compare.run ~individual:sides ~merged:ctx_m () in
  let count_mismatch verdict_of rows =
    List.length (List.filter (fun r -> verdict_of r = Compare.Mismatch) rows)
  in
  let mismatches =
    count_mismatch
      (fun (r : Compare.pass1_row) -> r.Compare.p1_bucket.Compare.bk_verdict)
      result.Compare.pass1
    + count_mismatch
        (fun (r : Compare.pass2_row) -> r.Compare.p2_bucket.Compare.bk_verdict)
        result.Compare.pass2
    + count_mismatch
        (fun (r : Compare.pass3_row) -> r.Compare.p3_bucket.Compare.bk_verdict)
        result.Compare.pass3
  in
  let ambiguous_final =
    List.length
      (List.filter
         (fun (r : Compare.pass3_row) ->
           r.Compare.p3_bucket.Compare.bk_verdict = Compare.Ambiguous)
         result.Compare.pass3)
  in
  let remaining_fixes = List.length result.Compare.fixes in
  {
    equivalent =
      remaining_fixes = 0 && ambiguous_final = 0
      && result.Compare.unsound = [];
    strictly_equivalent = Compare.is_clean result;
    mismatches;
    remaining_fixes;
    ambiguous_final;
    unsound = result.Compare.unsound;
    pessimistic = result.Compare.pessimism;
    compare_result = result;
  }

let pp fmt r =
  Format.fprintf fmt
    "equivalent=%b strict=%b mismatches=%d remaining_fixes=%d unsound=%d \
     pessimistic=%d"
    r.equivalent r.strictly_equivalent r.mismatches r.remaining_fixes
    (List.length r.unsound)
    (List.length r.pessimistic)
