module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Toler = Mm_util.Toler
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Context = Mm_timing.Context
module Ctx_cache = Mm_timing.Ctx_cache
module Clock_prop = Mm_timing.Clock_prop
module Graph = Mm_timing.Graph

type t = {
  merged : Mode.t;
  clock_map : (string * string, string) Hashtbl.t;
  dropped_cases : (string * Design.pin_id * bool) list;
  dropped_exceptions : (string * Mode.exc) list;
  uniquified : (string * Mode.exc) list;
  inferred_disables : Design.pin_id list;
  inferred_senses : (string * Design.pin_id) list;
  derived_groups : Mode.clock_group list;
  conflicts : string list;
}

let rename_of t mode_name clock =
  match Hashtbl.find_opt t.clock_map (mode_name, clock) with
  | Some m -> m
  | None -> clock

(* ------------------------------------------------------------------ *)
(* 3.1.1 Union of clocks                                               *)

let union_clocks modes =
  let clock_map = Hashtbl.create 32 in
  let merged_clocks = ref [] in (* reversed *)
  let by_key = Hashtbl.create 32 in
  let name_taken name =
    List.exists (fun c -> String.equal c.Mode.clk_name name) !merged_clocks
  in
  let unique_name base =
    if not (name_taken base) then base
    else begin
      let rec go i =
        let cand = Printf.sprintf "%s_%d" base i in
        if name_taken cand then go (i + 1) else cand
      in
      go 1
    end
  in
  List.iter
    (fun (m : Mode.t) ->
      List.iter
        (fun (c : Mode.clock) ->
          let key = Mode.clock_key c in
          match Hashtbl.find_opt by_key key with
          | Some merged_name ->
            Hashtbl.replace clock_map (m.Mode.mode_name, c.Mode.clk_name) merged_name
          | None ->
            let name = unique_name c.Mode.clk_name in
            let c' = { c with Mode.clk_name = name } in
            merged_clocks := c' :: !merged_clocks;
            Hashtbl.replace by_key key name;
            Hashtbl.replace clock_map (m.Mode.mode_name, c.Mode.clk_name) name)
        m.Mode.clocks)
    modes;
  List.rev !merged_clocks, clock_map

(* ------------------------------------------------------------------ *)
(* 3.1.2 Clock attributes with tolerance                               *)

let merge_attr_field ~tolerance ~is_min conflicts what values =
  (* [values]: the per-mode Some/None settings for one attribute of one
     merged clock. Modes without the attribute contribute None, which
     merges as "unconstrained" (the field stays only if all modes that
     set it agree within tolerance; min/max conservative combination). *)
  let set = List.filter_map Fun.id values in
  match set with
  | [] -> None
  | v0 :: rest ->
    List.iter
      (fun v ->
        if not (Toler.within tolerance v0 v) then
          conflicts :=
            Printf.sprintf "%s: values %g and %g beyond tolerance" what v0 v
            :: !conflicts)
      rest;
    Some
      (List.fold_left
         (if is_min then Toler.merge_min else Toler.merge_max)
         v0 rest)

let merge_attrs ~tolerance conflicts modes clock_map merged_clocks =
  List.map
    (fun (mc : Mode.clock) ->
      let contributions =
        List.concat_map
          (fun (m : Mode.t) ->
            List.filter_map
              (fun (c : Mode.clock) ->
                match Hashtbl.find_opt clock_map (m.Mode.mode_name, c.Mode.clk_name) with
                | Some name when String.equal name mc.Mode.clk_name ->
                  Some (Mode.attr_of_clock m c.Mode.clk_name)
                | Some _ | None -> None)
              m.Mode.clocks)
          modes
      in
      let field ~is_min what get =
        merge_attr_field ~tolerance ~is_min conflicts
          (Printf.sprintf "clock %s %s" mc.Mode.clk_name what)
          (List.map get contributions)
      in
      ( mc.Mode.clk_name,
        {
          Mode.src_latency_min =
            field ~is_min:true "source latency min" (fun a -> a.Mode.src_latency_min);
          src_latency_max =
            field ~is_min:false "source latency max" (fun a -> a.Mode.src_latency_max);
          net_latency_min =
            field ~is_min:true "network latency min" (fun a -> a.Mode.net_latency_min);
          net_latency_max =
            field ~is_min:false "network latency max" (fun a -> a.Mode.net_latency_max);
          uncertainty_setup =
            field ~is_min:false "setup uncertainty" (fun a -> a.Mode.uncertainty_setup);
          uncertainty_hold =
            field ~is_min:false "hold uncertainty" (fun a -> a.Mode.uncertainty_hold);
          transition_min =
            field ~is_min:true "transition min" (fun a -> a.Mode.transition_min);
          transition_max =
            field ~is_min:false "transition max" (fun a -> a.Mode.transition_max);
          propagated = List.exists (fun a -> a.Mode.propagated) contributions;
        } ))
    merged_clocks

(* ------------------------------------------------------------------ *)
(* 3.1.3 Union of external delays                                      *)

let union_io_delays modes clock_map =
  let acc = ref [] in
  List.iter
    (fun (m : Mode.t) ->
      List.iter
        (fun (d : Mode.io_delay) ->
          let d =
            {
              d with
              Mode.iod_clock =
                Option.map
                  (fun c ->
                    match Hashtbl.find_opt clock_map (m.Mode.mode_name, c) with
                    | Some mc -> mc
                    | None -> c)
                  d.Mode.iod_clock;
            }
          in
          if not (List.exists (Mode.io_delay_equal d) !acc) then acc := d :: !acc)
        m.Mode.io_delays)
    modes;
  (* Mark every delay after the first on a (pin, direction) as -add_delay. *)
  let seen = Hashtbl.create 32 in
  List.rev_map
    (fun (d : Mode.io_delay) ->
      let k = d.Mode.iod_pin, d.Mode.iod_input in
      let first = not (Hashtbl.mem seen k) in
      Hashtbl.replace seen k ();
      { d with Mode.iod_add = not first })
    !acc
  |> List.rev

(* ------------------------------------------------------------------ *)
(* 3.1.4 Intersection of case analysis                                 *)

let intersect_cases modes =
  match modes with
  | [] -> [], []
  | (first : Mode.t) :: _ ->
    let kept = ref [] and dropped = ref [] in
    let all_pins =
      List.concat_map (fun (m : Mode.t) -> List.map fst m.Mode.cases) modes
      |> List.sort_uniq compare
    in
    ignore first;
    List.iter
      (fun pin ->
        let values =
          List.map (fun (m : Mode.t) -> m.Mode.mode_name, Mode.case_value m pin) modes
        in
        let present = List.filter_map (fun (_, v) -> v) values in
        let everywhere = List.for_all (fun (_, v) -> v <> None) values in
        match present with
        | v0 :: _ when everywhere && List.for_all (Bool.equal v0) present ->
          kept := (pin, v0) :: !kept
        | _ ->
          List.iter
            (fun (mn, v) ->
              match v with
              | Some v -> dropped := (mn, pin, v) :: !dropped
              | None -> ())
            values)
      all_pins;
    List.rev !kept, List.rev !dropped

(* ------------------------------------------------------------------ *)
(* 3.1.5 Intersection of disable_timing                                *)

let disable_equal a b =
  match a, b with
  | Mode.Dis_pin p, Mode.Dis_pin q -> p = q
  | Mode.Dis_inst (i, f, t), Mode.Dis_inst (j, g, u) -> i = j && f = g && t = u
  | Mode.Dis_pin _, Mode.Dis_inst _ | Mode.Dis_inst _, Mode.Dis_pin _ -> false

let intersect_disables modes =
  match modes with
  | [] -> []
  | (first : Mode.t) :: rest ->
    List.filter
      (fun d ->
        List.for_all
          (fun (m : Mode.t) ->
            List.exists (disable_equal d) m.Mode.disables)
          rest)
      first.Mode.disables

(* ------------------------------------------------------------------ *)
(* 3.1.6 Drive and load constraints                                    *)

let merge_envs ~tolerance conflicts modes =
  let design_name pin (m : Mode.t) = Design.pin_name m.Mode.design pin in
  let keys =
    List.concat_map
      (fun (m : Mode.t) ->
        List.map (fun (e : Mode.env_constraint) -> e.Mode.envc_kind, e.Mode.envc_pin, e.Mode.envc_minmax) m.Mode.envs)
      modes
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun (kind, pin, minmax) ->
      let values =
        List.map
          (fun (m : Mode.t) ->
            ( m,
              List.filter_map
                (fun (e : Mode.env_constraint) ->
                  if e.Mode.envc_kind = kind && e.Mode.envc_pin = pin
                     && e.Mode.envc_minmax = minmax
                  then Some e.Mode.envc_value
                  else None)
                m.Mode.envs ))
          modes
      in
      let present = List.concat_map snd values in
      (match present, values with
      | v0 :: _, (m0, _) :: _ ->
        if List.exists (fun (_, vs) -> vs = []) values then
          conflicts :=
            Printf.sprintf "environment constraint on %s missing in some modes"
              (design_name pin m0)
            :: !conflicts;
        List.iter
          (fun v ->
            if not (Toler.within tolerance v0 v) then
              conflicts :=
                Printf.sprintf
                  "environment constraint on %s: %g vs %g beyond tolerance"
                  (design_name pin m0) v0 v
                :: !conflicts)
          present
      | _ -> ());
      match present with
      | [] -> None
      | v0 :: rest ->
        Some
          {
            Mode.envc_kind = kind;
            envc_pin = pin;
            envc_minmax = minmax;
            envc_value = List.fold_left Float.max v0 rest;
          })
    keys

(* ------------------------------------------------------------------ *)
(* 3.1.7 Clock exclusivity                                             *)

let derive_exclusivity modes clock_map merged_clocks =
  (* Pairs of merged clocks that coexist in at least one individual
     mode. *)
  let coexist = Hashtbl.create 64 in
  List.iter
    (fun (m : Mode.t) ->
      let mapped =
        List.filter_map
          (fun (c : Mode.clock) ->
            Hashtbl.find_opt clock_map (m.Mode.mode_name, c.Mode.clk_name))
          m.Mode.clocks
      in
      List.iter
        (fun a ->
          List.iter
            (fun b -> if a <> b then Hashtbl.replace coexist (a, b) ())
            mapped)
        mapped)
    modes;
  let names = List.map (fun c -> c.Mode.clk_name) merged_clocks in
  let groups = ref [] in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if not (Hashtbl.mem coexist (a, b)) then
            groups :=
              {
                Mode.grp_kind = Mm_sdc.Ast.Physically_exclusive;
                grp_name = Some (Printf.sprintf "%s_x_%s" a b);
                grp_clocks = [ [ a ]; [ b ] ];
              }
              :: !groups)
        rest;
      pairs rest
  in
  pairs names;
  List.rev !groups

(* Also merge the clock groups the individual modes already carry:
   keep a group when every mode containing all of its clocks has it. *)
let inherit_groups modes clock_map =
  List.concat_map
    (fun (m : Mode.t) ->
      List.map
        (fun (g : Mode.clock_group) ->
          {
            g with
            Mode.grp_clocks =
              List.map
                (List.map (fun c ->
                     match Hashtbl.find_opt clock_map (m.Mode.mode_name, c) with
                     | Some mc -> mc
                     | None -> c))
                g.Mode.grp_clocks;
          })
        m.Mode.groups)
    modes
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* 3.1.9 / 3.1.10 Exceptions                                           *)

let rename_exc_points clock_map mode_name (e : Mode.exc) =
  let rename_point = function
    | Mode.P_clock c -> (
      match Hashtbl.find_opt clock_map (mode_name, c) with
      | Some mc -> Mode.P_clock mc
      | None -> Mode.P_clock c)
    | (Mode.P_pin _ | Mode.P_inst _) as p -> p
  in
  {
    e with
    Mode.exc_from = Option.map (List.map rename_point) e.Mode.exc_from;
    exc_to = Option.map (List.map rename_point) e.Mode.exc_to;
  }

let clocks_of_points points =
  List.filter_map (function Mode.P_clock c -> Some c | Mode.P_pin _ | Mode.P_inst _ -> None) points

let pins_of_points design points =
  List.concat_map
    (function
      | Mode.P_pin p -> [ p ]
      | Mode.P_clock _ -> []
      | Mode.P_inst i -> (
        let cell = Design.inst_cell design i in
        match cell.Mm_netlist.Lib_cell.seq with
        | Some seq ->
          Design.inst_pin design i seq.Mm_netlist.Lib_cell.clock_pin
          :: List.map (Design.inst_pin design i) seq.Mm_netlist.Lib_cell.q_pins
        | None -> []))
    points

(* Can exception [e] (already renamed, restricted to [clocks]) wrongly
   constrain paths of mode [m']? Conservatively: yes when any restricting
   clock also exists in [m'] (mapped) — unless [e]'s from-pins receive
   none of those clocks in [m']'s clock propagation. *)
let unsafe_for_mode ctx_of clock_map restriction_clocks from_pins (m' : Mode.t) =
  let local_clocks =
    List.filter_map
      (fun (c : Mode.clock) ->
        match Hashtbl.find_opt clock_map (m'.Mode.mode_name, c.Mode.clk_name) with
        | Some mc when List.mem mc restriction_clocks -> Some c.Mode.clk_name
        | Some _ | None -> None)
      m'.Mode.clocks
  in
  if local_clocks = [] then false
  else if from_pins = [] then true
  else begin
    (* Shared clock: unsafe only if it actually reaches the startpoint
       pins in m'. *)
    let ctx : Context.t = ctx_of m' in
    List.exists
      (fun pin ->
        List.exists
          (fun lc ->
            match Clock_prop.clock_index ctx.Context.clocks lc with
            | Some i -> Clock_prop.has_clock ctx.Context.clocks pin i
            | None -> false)
          local_clocks)
      from_pins
  end

let merge_exceptions ~ctx_of ~uniquify modes clock_map conflicts =
  let design =
    match modes with (m : Mode.t) :: _ -> m.Mode.design | [] -> assert false
  in
  let renamed =
    List.concat_map
      (fun (m : Mode.t) ->
        List.map
          (fun e -> m, rename_exc_points clock_map m.Mode.mode_name e)
          m.Mode.exceptions)
      modes
  in
  let in_all e =
    List.for_all
      (fun (m : Mode.t) ->
        List.exists
          (fun e' ->
            Mode.exc_equal e (rename_exc_points clock_map m.Mode.mode_name e'))
          m.Mode.exceptions)
      modes
  in
  let added = ref [] and dropped = ref [] and uniquified = ref [] in
  let add e = if not (List.exists (Mode.exc_equal e) !added) then added := e :: !added in
  List.iter
    (fun ((m : Mode.t), e) ->
      if in_all e then add e
      else begin
        (* 3.1.10: uniquify by restricting to this mode's clocks. *)
        let mode_clocks =
          List.filter_map
            (fun (c : Mode.clock) ->
              Hashtbl.find_opt clock_map (m.Mode.mode_name, c.Mode.clk_name))
            m.Mode.clocks
          |> List.sort_uniq String.compare
        in
        let from_clocks =
          match e.Mode.exc_from with Some pts -> clocks_of_points pts | None -> []
        in
        let restriction =
          if from_clocks <> [] then from_clocks else mode_clocks
        in
        let from_pins =
          match e.Mode.exc_from with
          | Some pts -> pins_of_points design pts
          | None -> []
        in
        let others_lacking =
          List.filter
            (fun (m' : Mode.t) ->
              (not (String.equal m'.Mode.mode_name m.Mode.mode_name))
              && not
                   (List.exists
                      (fun e' ->
                        Mode.exc_equal e
                          (rename_exc_points clock_map m'.Mode.mode_name e'))
                      m'.Mode.exceptions))
            modes
        in
        let unsafe =
          (* A pin-based -rise_from/-fall_from cannot survive the
             demote-to-through rewrite (the edge qualification would be
             lost), so such exceptions are never uniquified. *)
          (not uniquify)
          || (e.Mode.exc_from_edge <> Mode.Any_edge
             && from_pins <> []
             && from_clocks = [])
          || List.exists
               (unsafe_for_mode ctx_of clock_map restriction from_pins)
               others_lacking
        in
        if unsafe then begin
          match e.Mode.exc_kind with
          | Mode.False_path ->
            dropped := (m.Mode.mode_name, e) :: !dropped
          | Mode.Multicycle _ | Mode.Min_delay _ | Mode.Max_delay _ ->
            conflicts :=
              Printf.sprintf
                "mode %s: non-false-path exception cannot be uniquified"
                m.Mode.mode_name
              :: !conflicts;
            dropped := (m.Mode.mode_name, e) :: !dropped
        end
        else begin
          (* Safe: rewrite with the clock restriction, demoting any
             from-pins to a leading -through group (the paper's
             MCP1 -> MCP1' rewrite). *)
          let e' =
            if from_clocks <> [] then e
            else
              {
                e with
                Mode.exc_from =
                  Some (List.map (fun c -> Mode.P_clock c) restriction);
                exc_through =
                  (if from_pins = [] then e.Mode.exc_through
                   else [ from_pins ] @ e.Mode.exc_through);
              }
          in
          if not (Mode.exc_equal e e') then
            uniquified := (m.Mode.mode_name, e') :: !uniquified;
          add e'
        end
      end)
    renamed;
  List.rev !added, List.rev !dropped, List.rev !uniquified

(* ------------------------------------------------------------------ *)
(* 3.1.8 Clock refinement                                              *)

(* Translation table: individual-mode clock index -> merged clock index. *)
let clock_translation clock_map (m : Mode.t) (ctx_i : Context.t) (ctx_m : Context.t) =
  Array.init (Clock_prop.n_clocks ctx_i.Context.clocks) (fun i ->
      let local = Clock_prop.clock_name ctx_i.Context.clocks i in
      match Hashtbl.find_opt clock_map (m.Mode.mode_name, local) with
      | Some merged -> (
        match Clock_prop.clock_index ctx_m.Context.clocks merged with
        | Some j -> j
        | None -> -1)
      | None -> -1)

let mapped_union_masks clock_map modes ctxs ctx_m =
  let n = Array.length ctx_m.Context.consts.Mm_timing.Const_prop.values in
  let union = Array.make n 0 in
  List.iter2
    (fun (m : Mode.t) (ctx_i : Context.t) ->
      let tr = clock_translation clock_map m ctx_i ctx_m in
      for pin = 0 to n - 1 do
        let mask = Clock_prop.mask_at ctx_i.Context.clocks pin in
        if mask <> 0 then
          Array.iteri
            (fun i j ->
              if j >= 0 && mask land (1 lsl i) <> 0 then
                union.(pin) <- union.(pin) lor (1 lsl j))
            tr
      done)
    modes ctxs;
  union

let clock_refinement ~max_iters design modes ctxs clock_map merged0 =
  let inferred_senses = ref [] in
  let rec go merged iter =
    if iter >= max_iters then merged
    else begin
      let ctx_m = Context.create design merged in
      let union = mapped_union_masks clock_map modes ctxs ctx_m in
      let n = Graph.n_pins ctx_m.Context.graph in
      ignore n;
      let extra pin =
        Clock_prop.mask_at ctx_m.Context.clocks pin land lnot union.(pin)
      in
      (* Frontier: pins where a clock is extra but is not extra at any
         enabled predecessor. *)
      let new_senses = ref [] in
      Design.iter_pins design (fun pin ->
          let e = extra pin in
          if e <> 0 then begin
            let pred_extra =
              let g = ctx_m.Context.graph in
              Graph.fold_in g pin 0 (fun acc aid ->
                  if
                    Mm_timing.Const_prop.enabled ctx_m.Context.consts aid
                    && Graph.arc_kind g aid <> Graph.Launch
                  then acc lor extra (Graph.arc_src g aid)
                  else acc)
            in
            let frontier = e land lnot pred_extra in
            if frontier <> 0 then
              for ci = 0 to Clock_prop.n_clocks ctx_m.Context.clocks - 1 do
                if frontier land (1 lsl ci) <> 0 then
                  new_senses :=
                    (Clock_prop.clock_name ctx_m.Context.clocks ci, pin)
                    :: !new_senses
              done
          end)
      ;
      match !new_senses with
      | [] -> merged
      | senses ->
        inferred_senses := senses @ !inferred_senses;
        let extra_senses =
          List.map
            (fun (c, pin) ->
              { Mode.cs_stop = true; cs_clocks = Some [ c ]; cs_pins = [ pin ] })
            senses
        in
        go { merged with Mode.senses = merged.Mode.senses @ extra_senses } (iter + 1)
    end
  in
  let refined = go merged0 0 in
  refined, List.rev !inferred_senses

(* Disable inference: pins case-constant in every individual mode whose
   case statements were dropped never toggle anywhere — disable them in
   the merged mode (the paper's CSTR1/CSTR2 of Constraint Set 3). *)
let infer_disables modes dropped_cases =
  let dropped_pins =
    List.map (fun (_, pin, _) -> pin) dropped_cases |> List.sort_uniq compare
  in
  List.filter
    (fun pin ->
      List.for_all
        (fun (m : Mode.t) -> Mode.case_value m pin <> None)
        modes)
    dropped_pins

(* Design-rule limits merge to the tightest (minimum) value per
   (kind, pin): a merged mode obeying the strictest individual limit is
   safe in every individual mode. *)
let merge_drcs modes =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (m : Mode.t) ->
      List.iter
        (fun (l : Mode.drc_limit) ->
          let key = l.Mode.drcl_kind, l.Mode.drcl_pin in
          match Hashtbl.find_opt tbl key with
          | Some v -> Hashtbl.replace tbl key (Float.min v l.Mode.drcl_value)
          | None ->
            Hashtbl.replace tbl key l.Mode.drcl_value;
            order := key :: !order)
        m.Mode.drcs)
    modes;
  List.rev_map
    (fun ((kind, pin) as key) ->
      { Mode.drcl_kind = kind; drcl_pin = pin; drcl_value = Hashtbl.find tbl key })
    !order

(* ------------------------------------------------------------------ *)


let merge ?(tolerance = Toler.default) ?(max_refine_iters = 5) ?ctx_cache
    ?(uniquify = true) ~name modes =
  (match modes with [] -> invalid_arg "Prelim.merge: no modes" | _ :: _ -> ());
  Obs.with_span
    ~attrs:[ "merged", name; "modes", string_of_int (List.length modes) ]
    "merge.prelim"
  @@ fun () ->
  let design = (List.hd modes).Mode.design in
  let conflicts = ref [] in
  (* Individual contexts, shared by uniquification and refinement. *)
  let ctx_cache =
    match ctx_cache with Some c -> c | None -> Ctx_cache.create ()
  in
  let ctx_of (m : Mode.t) = Ctx_cache.find ctx_cache m in
  let merged_clocks, clock_map = union_clocks modes in
  let attrs = merge_attrs ~tolerance conflicts modes clock_map merged_clocks in
  let io_delays = union_io_delays modes clock_map in
  let cases, dropped_cases = intersect_cases modes in
  let disables = intersect_disables modes in
  let envs = merge_envs ~tolerance conflicts modes in
  let derived_groups = derive_exclusivity modes clock_map merged_clocks in
  let groups = derived_groups @ inherit_groups modes clock_map in
  let exceptions, dropped_exceptions, uniquified =
    merge_exceptions ~ctx_of ~uniquify modes clock_map conflicts
  in
  let inferred_disables = infer_disables modes dropped_cases in
  let merged0 =
    {
      Mode.mode_name = name;
      design;
      clocks = merged_clocks;
      attrs;
      io_delays;
      cases;
      disables = disables @ List.map (fun p -> Mode.Dis_pin p) inferred_disables;
      exceptions;
      groups;
      senses = [];
      envs;
      drcs = merge_drcs modes;
    }
  in
  let ctxs = List.map ctx_of modes in
  let merged, inferred_senses =
    clock_refinement ~max_iters:max_refine_iters design modes ctxs clock_map
      merged0
  in
  Metrics.incr ~by:(List.length uniquified) "prelim.exceptions_uniquified";
  Metrics.incr ~by:(List.length dropped_exceptions) "prelim.exceptions_dropped";
  Metrics.incr ~by:(List.length !conflicts) "prelim.conflicts";
  {
    merged;
    clock_map;
    dropped_cases;
    dropped_exceptions;
    uniquified;
    inferred_disables;
    inferred_senses;
    derived_groups;
    conflicts = List.rev !conflicts;
  }
