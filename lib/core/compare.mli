(** The 3-pass timing-relationship comparison (paper section 3.2).

    Pass 1 compares relation sets per endpoint; ambiguous endpoints go
    to pass 2, which compares per (startpoint, endpoint) pair; ambiguous
    pairs go to pass 3, which walks the reconvergent cone between the
    pair and compares per through-pin. Each mismatch yields a fix — an
    exception to add to the merged mode so it stops timing paths no
    individual mode times.

    Clock names of individual modes are mapped to merged-mode names via
    the renaming supplied with each individual context. *)

type verdict = Match | Mismatch | Ambiguous

val verdict_to_string : verdict -> string
(** ["M"], ["X"], ["A"] as in the paper's tables. *)

(** One comparison bucket: states are (setup, hold) pairs projected from
    the relation sets of both sides. *)
type bucket = {
  bk_launch : string;
  bk_capture : string;
  bk_edge : Mm_sdc.Mode.edge_sel;
      (** data polarity at the endpoint; [Any_edge] unless rise/fall
          restricted exceptions are in scope *)
  bk_ind : (Mm_timing.Constraint_state.t * Mm_timing.Constraint_state.t) list;
  bk_mrg : (Mm_timing.Constraint_state.t * Mm_timing.Constraint_state.t) list;
  bk_verdict : verdict;
}

type pass1_row = { p1_ep : Mm_netlist.Design.pin_id; p1_bucket : bucket }

type pass2_row = {
  p2_sp : Mm_netlist.Design.pin_id;
  p2_ep : Mm_netlist.Design.pin_id;
  p2_bucket : bucket;
}

type pass3_row = {
  p3_sp : Mm_netlist.Design.pin_id;
  p3_through : Mm_netlist.Design.pin_id;
  p3_ep : Mm_netlist.Design.pin_id;
  p3_bucket : bucket;
}

(** Structured provenance for a fix: which pass produced it, the
    comparison point (endpoint, startpoint–endpoint pair, or
    reconvergence through-pin triple), the clock scoping of the
    mismatching bucket, and the effective setup/hold states on both
    sides. This is what the audit report and [modemerge explain] show
    as the reason a refinement false path exists. *)
type evidence = {
  ev_pass : int;  (** 1, 2 or 3 *)
  ev_startpoint : string option;  (** pin name; [None] in pass 1 *)
  ev_through : string option;  (** reconvergence pin name; pass 3 only *)
  ev_endpoint : string;  (** pin name *)
  ev_launch : string option;
      (** launch clock, when the fix is scoped to one launch bucket *)
  ev_capture : string option;
      (** capture clock, when additionally scoped per bucket *)
  ev_ind : string;  (** individual-union effective state, [setup/hold] *)
  ev_mrg : string;  (** merged-mode effective state, [setup/hold] *)
}

type fix = {
  fix_exc : Mm_sdc.Mode.exc;
  fix_reason : string;
  fix_evidence : evidence;
}

type result = {
  pass1 : pass1_row list;
  pass2 : pass2_row list;
  pass3 : pass3_row list;
  fixes : fix list;
  unsound : string list;
      (** sign-off accuracy violations: the merged mode fails to check,
          or relaxes, a path bundle some individual mode times — a
          correct merge must leave this empty *)
  pessimism : string list;
      (** the merged mode checks a bundle more tightly than the
          individual-mode union requires — safe, but costs QoR
          conformity (the paper's < 100% Table-6 entries) *)
}

type side = {
  ctx : Mm_timing.Context.t;
  rename : string -> string;
      (** individual-mode clock name -> merged-mode clock name *)
}

type cache
(** Reusable state for repeated {!run}s against the same individual
    sides and an exceptions-only-growing merged mode (the refinement
    loop): side relation tables are computed once, and the merged
    side's pass-1 relations update incrementally — only endpoints in
    the scope of newly appended exceptions are re-propagated. *)

val create_cache : unit -> cache

val run :
  ?cache:cache -> individual:side list -> merged:Mm_timing.Context.t ->
  unit -> result
(** Results are identical with and without [cache]; a cache must only
    be shared across runs whose individual sides are fixed and whose
    merged modes differ solely by appended exceptions.

    Besides the result, each run accumulates the stable coverage
    counters [compare.endpoints_visited], [compare.endpoints_pruned]
    (pass-1 endpoints that never escalated to pass 2),
    [compare.pairs_compared] (pass-2 startpoint/endpoint pairs with
    relations on either side) and [compare.reconv_points] (pass-3
    through-pins whose relation sets were bucketed) in {!Mm_util.Metrics}. *)

val evidence_to_string : evidence -> string
(** One-line human rendering, e.g.
    ["pass2 CK1->ff3/D at endpoint ff9/D: ind=FP/FP mrg=V/V"]. *)

val is_clean : result -> bool
(** No mismatches anywhere, no unsoundness and no pessimism: the strict
    two-sided equivalence of paper section 2. *)

val states_to_string :
  (Mm_timing.Constraint_state.t * Mm_timing.Constraint_state.t) list -> string
(** Setup-state projection in the paper's table style, e.g. ["FP, V"]. *)
