(** Relation-tag propagation over the timing graph.

    The qualitative counterpart of STA arrival propagation: tags carry
    (launch clock, exception progress) but no arrival times. Used for
    pass 1/2/3 relationship comparison, for the data-network clock
    refinement of section 3.2, and for cone restriction. *)

type tagsets
(** Per-pin sets of (clock index, exception state id). *)

type seed = {
  seed_pin : Mm_netlist.Design.pin_id;
  seed_clock : int;          (** clock index *)
  seed_aliases : Mm_netlist.Design.pin_id list;
      (** startpoint aliases for -from matching *)
  seed_launch_edge : Mm_netlist.Lib_cell.edge;
      (** active edge of the launching register (for -rise_from clock
          restrictions) *)
}

val seeds_of_startpoint :
  Mm_timing.Context.t -> Mm_timing.Graph.startpoint -> seed list
(** One seed per clock launching at the startpoint (clocks present at a
    register's clock pin; clocks referenced by a port's input delays). *)

val all_seeds : Mm_timing.Context.t -> seed list

val create_scratch : Mm_timing.Context.t -> tagsets
(** A reusable tag buffer; pass it as [scratch] to amortise the per-pin
    array across many cone-restricted propagations. *)

val cone_order : Mm_timing.Context.t -> bool array -> Mm_netlist.Design.pin_id list
(** The cone's pins in topological order — pass as [order] so the sweep
    only visits them. *)

val propagate :
  Mm_timing.Context.t ->
  seeds:seed list ->
  ?within:bool array ->
  ?order:Mm_netlist.Design.pin_id list ->
  ?scratch:tagsets ->
  unit ->
  tagsets
(** Propagate tags through enabled arcs in topological order. [within]
    restricts propagation to marked pins (cone restriction); [order]
    limits the sweep to a precomputed cone pin list; [scratch] reuses a
    buffer (the result aliases it — read before the next call). *)

val tags_at :
  tagsets -> Mm_netlist.Design.pin_id -> (int * int * Mm_sdc.Mode.edge_sel) list
(** (clock index, state id, data polarity) triples present at a pin.
    Polarity is [Any_edge] unless the mode is edge-sensitive. *)

val propagate_raw :
  Mm_timing.Context.t ->
  tag_seeds:
    (Mm_netlist.Design.pin_id * (int * int * Mm_sdc.Mode.edge_sel) list) list ->
  ?within:bool array ->
  ?order:Mm_netlist.Design.pin_id list ->
  ?scratch:tagsets ->
  unit ->
  tagsets
(** Propagate pre-formed (clock, state) tags from the given pins —
    the second hop of pass-3 "paths through pin t" queries. *)

val relations_at :
  Mm_timing.Context.t -> tagsets -> Mm_timing.Graph.endpoint -> Relation.t list
(** Convert the tags at an endpoint into timing relationships, one per
    (tag, capture clock) combination, skipping exclusive clock pairs. *)

val endpoint_relations :
  Mm_timing.Context.t -> (Mm_netlist.Design.pin_id * Relation.t list) list
(** Pass-1 input: relations at every endpoint of the design under this
    context's mode, keyed by endpoint pin, in graph endpoint order. *)

type ep_cache
(** Cache for {!endpoint_relations_cached}: remembers the exception
    list and per-endpoint relations of the last call. *)

val create_ep_cache : unit -> ep_cache

val endpoint_relations_cached :
  ep_cache ->
  Mm_timing.Context.t ->
  (Mm_netlist.Design.pin_id * Relation.t list) list
(** Like {!endpoint_relations}, but when the context's exception list
    extends the cached one (the refinement-loop pattern — iterations
    only append exceptions to an otherwise identical mode), only the
    endpoints inside the new exceptions' from/through/to scope are
    re-propagated (restricted to their backward cone); the rest reuse
    the cached lists. Falls back to a full recompute whenever the
    prefix property does not hold. Results are identical to
    {!endpoint_relations} either way. *)

val data_clock_masks : Mm_timing.Context.t -> int array
(** Per pin, the bitmask of launch clocks whose data can reach it —
    the "clocks at any node in the data network" of section 3.2. *)

val forward_cone :
  Mm_timing.Context.t -> Mm_netlist.Design.pin_id list -> bool array
(** Pins reachable through enabled arcs from the given pins. *)

val backward_cone :
  Mm_timing.Context.t -> Mm_netlist.Design.pin_id list -> bool array
