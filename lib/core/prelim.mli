(** Preliminary mode merging (paper section 3.1).

    Builds the superset mode from N individual modes:

    - 3.1.1 union of clocks (duplicate detection by source + waveform,
      conflict renaming with unique suffixes, two-way clock map)
    - 3.1.2 tolerance-merged clock attributes (min of mins, max of maxs)
    - 3.1.3 union of external delays
    - 3.1.4 intersection of case_analysis (conflicts dropped, to be
      compensated by refinement)
    - 3.1.5 intersection of disable_timing
    - 3.1.6 tolerance-checked drive/load constraints
    - 3.1.7 derived clock exclusivity from per-mode coexistence
    - 3.1.8 clock-network refinement (inferred disable_timing and
      set_clock_sense -stop_propagation)
    - 3.1.9/3.1.10 intersection + uniquification of exceptions

    The result guarantees the superset property: any path timed in an
    individual mode is timed in the merged mode. The merged mode may
    temporarily time extra paths; {!Refine} removes them. *)

type t = {
  merged : Mm_sdc.Mode.t;
  clock_map : (string * string, string) Hashtbl.t;
      (** (mode name, individual clock) -> merged clock *)
  dropped_cases : (string * Mm_netlist.Design.pin_id * bool) list;
      (** (mode, pin, value) case statements dropped for conflicts *)
  dropped_exceptions : (string * Mm_sdc.Mode.exc) list;
      (** false paths that could not be uniquified *)
  uniquified : (string * Mm_sdc.Mode.exc) list;
      (** exceptions rewritten with clock restrictions (3.1.10) *)
  inferred_disables : Mm_netlist.Design.pin_id list;
      (** disable_timing added by clock refinement *)
  inferred_senses : (string * Mm_netlist.Design.pin_id) list;
      (** (merged clock, pin) stop-propagation constraints added *)
  derived_groups : Mm_sdc.Mode.clock_group list;
      (** clock groups derived from exclusivity (3.1.7), as opposed to
          groups inherited from the source modes — the provenance layer
          attributes the two differently *)
  conflicts : string list;
      (** tolerance/value incompatibilities: non-empty means the modes
          should not have been merged (mergeability veto) *)
}

val rename_of : t -> string -> string -> string
(** [rename_of t mode_name clock] maps an individual-mode clock to its
    merged-mode name (identity when unmapped). *)

val merge :
  ?tolerance:Mm_util.Toler.t ->
  ?max_refine_iters:int ->
  ?ctx_cache:Mm_timing.Ctx_cache.t ->
  ?uniquify:bool ->
  name:string ->
  Mm_sdc.Mode.t list ->
  t
(** Merge the modes (at least one). The clock-network refinement loop
    re-runs clock propagation until no extra clocks remain or
    [max_refine_iters] (default 5) is reached. [ctx_cache] shares
    per-mode analysis contexts (keyed by mode name) across calls —
    the mergeability pass performs O(N^2) mock merges and reuses it.
    [uniquify] (default true) enables exception uniquification
    (3.1.10); disabling it is an ablation switch — mode-local false
    paths are then always dropped and mode-local relaxations become
    conflicts. *)
