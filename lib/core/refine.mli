(** Refinement of the preliminary merged mode (paper section 3.2).

    Two steps:

    1. Data-network clock refinement — launch clocks present at any
       data-network node in the merged mode but in no individual mode
       are cut with [set_false_path -from clock -through pin] at the
       earliest such node (the paper's CSTR6 of Constraint Set 5).
    2. 3-pass timing-relationship comparison ({!Compare}), whose fixes
       are folded into the merged mode. The compare/fix loop repeats
       until clean or the iteration bound is hit — by construction the
       final comparison doubles as the validation of the merged mode.

    Requires the individual modes and the clock renaming from
    {!Prelim}. *)

(** Why a refinement exception was added: a step-1 data-network clock
    cut, or a comparison-pass fix (with its full {!Compare.evidence}).
    A coalesced exception carries one origin per contributing fix. *)
type added_origin =
  | From_data_clock of string * Mm_netlist.Design.pin_id
      (** (merged clock, frontier pin) *)
  | From_fix of Compare.fix

type t = {
  refined : Mm_sdc.Mode.t;
  refined_ctx : Mm_timing.Context.t option;
      (** analysis context matching [refined] — reusable by downstream
          stages (e.g. {!Equiv.check}) instead of rebuilding one.
          [None] after a checkpoint round-trip: contexts hold
          unmarshalable runtime state and are stripped before save *)
  data_clock_fixes : (string * Mm_netlist.Design.pin_id) list;
      (** (merged clock, frontier pin) false paths from step 1 *)
  added_exceptions : Mm_sdc.Mode.exc list;
      (** all exceptions added across both steps *)
  added_lineage : (Mm_sdc.Mode.exc * added_origin list) list;
      (** [added_exceptions] in the same order, each paired with every
          origin that contributed to it (after coalescing) — the
          provenance source for refinement false paths *)
  final_compare : Compare.result;
      (** the last comparison — clean iff the merge is equivalent *)
  iterations : int;
}

val run :
  ?max_iters:int ->
  ?ctx_cache:Mm_timing.Ctx_cache.t ->
  prelim:Prelim.t ->
  individual:Mm_sdc.Mode.t list ->
  unit ->
  t
(** [max_iters] bounds the compare/fix loop (default 4). *)
