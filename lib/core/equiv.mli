(** Equivalence checking between a merged mode and its individual modes.

    Implements the paper's definition (section 2) with the sign-off
    reading of its two directions:

    - {b Optimism} — the merged mode times a path bundle no individual
      mode times, or relaxes a bundle's requirement. This is a sign-off
      accuracy violation and the check fails. Operationally: the final
      comparison still proposes fixes.
    - {b Pessimism} — the merged mode constrains a bundle that some
      individual mode times (e.g. a refinement false path whose SDC
      granularity also covers a valid capture). This is sign-off safe;
      it shows up as a QoR conformity loss exactly as in the paper's
      Table 6 (conformity < 100%). Reported but does not fail the
      check. *)

type report = {
  equivalent : bool;
      (** no optimism: the merged mode times exactly the union (up to
          pessimism) *)
  strictly_equivalent : bool;
      (** additionally no pessimism: the two-sided definition holds
          exactly *)
  mismatches : int;   (** mismatch buckets across the passes *)
  remaining_fixes : int;
      (** fixes the comparison would still add — optimism evidence *)
  ambiguous_final : int;
      (** pass-3 buckets still ambiguous (none expected, per paper) *)
  unsound : string list;
      (** required checks the merged mode relaxes or drops — must be
          empty for a sign-off-accurate merge *)
  pessimistic : string list;  (** over-constraint diagnostics *)
  compare_result : Compare.result;
}

val check :
  ?ctx_cache:Mm_timing.Ctx_cache.t ->
  ?merged_ctx:Mm_timing.Context.t ->
  individual:Mm_sdc.Mode.t list ->
  rename:(string -> string -> string) ->
  merged:Mm_sdc.Mode.t ->
  unit ->
  report
(** [rename mode_name clock] maps individual clocks to merged names
    (use {!Prelim.rename_of}). [merged_ctx] supplies a ready-made
    context for [merged] (e.g. {!Refine.t.refined_ctx}); it is used
    only when its mode is physically the [merged] argument, otherwise
    a fresh context is built. *)

val pp : Format.formatter -> report -> unit
