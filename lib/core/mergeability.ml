module Mode = Mm_sdc.Mode
module Design = Mm_netlist.Design
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pool = Mm_util.Pool
module Govern = Mm_util.Govern
module Context = Mm_timing.Context
module Ctx_cache = Mm_timing.Ctx_cache
module Clock_prop = Mm_timing.Clock_prop
module Graph = Mm_timing.Graph

type pair_check = { mergeable : bool; reasons : string list }

(* Clock blocking check: every (register clock pin, clock) live in an
   individual mode must remain live in the merged mode after clock
   refinement (the merged clock may be renamed). *)
let blocked_clocks ctx_cache (prelim : Prelim.t) individual =
  let design = prelim.Prelim.merged.Mode.design in
  let ctx_m = Context.create design prelim.Prelim.merged in
  let reasons = ref [] in
  List.iter
    (fun (m : Mode.t) ->
      let ctx_i : Context.t = Ctx_cache.find ctx_cache m in
      List.iter
        (function
          | Graph.Sp_reg { sp_clock; _ } ->
            let mask = Clock_prop.mask_at ctx_i.Context.clocks sp_clock in
            for ci = 0 to Clock_prop.n_clocks ctx_i.Context.clocks - 1 do
              if mask land (1 lsl ci) <> 0 then begin
                let local = Clock_prop.clock_name ctx_i.Context.clocks ci in
                let merged_name = Prelim.rename_of prelim m.Mode.mode_name local in
                let live =
                  match Clock_prop.clock_index ctx_m.Context.clocks merged_name with
                  | Some j -> Clock_prop.has_clock ctx_m.Context.clocks sp_clock j
                  | None -> false
                in
                if not live then
                  reasons :=
                    Printf.sprintf
                      "clock %s of mode %s blocked at %s in the merged mode"
                      local m.Mode.mode_name
                      (Design.pin_name design sp_clock)
                    :: !reasons
              end
            done
          | Graph.Sp_port _ -> ())
        ctx_i.Context.graph.Graph.startpoints)
    individual;
  List.rev !reasons

let check_pair ?tolerance ?ctx_cache a b =
  let ctx_cache =
    match ctx_cache with Some c -> c | None -> Ctx_cache.create ()
  in
  (* Stage 1: value/tolerance conflicts are detected without any graph
     work (refinement disabled), which rejects most non-mergeable pairs
     cheaply — important for the O(N^2) sweep over many modes. *)
  let quick =
    Prelim.merge ?tolerance ~max_refine_iters:0 ~ctx_cache ~name:"__mock" [ a; b ]
  in
  if quick.Prelim.conflicts <> [] then
    { mergeable = false; reasons = quick.Prelim.conflicts }
  else begin
    (* Stage 2: full mock with clock refinement and the clock-blocking
       soundness check. *)
    let prelim =
      Prelim.merge ?tolerance ~max_refine_iters:3 ~ctx_cache ~name:"__mock"
        [ a; b ]
    in
    let reasons =
      prelim.Prelim.conflicts @ blocked_clocks ctx_cache prelim [ a; b ]
    in
    { mergeable = reasons = []; reasons }
  end

type t = {
  mode_names : string array;
  adjacency : bool array array;
  cliques : int list list;
  pair_reasons : (int * int, string list) Hashtbl.t;
}

type strategy = Greedy | Exact

let greedy_cliques adjacency =
  let n = Array.length adjacency in
  let degree i =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 adjacency.(i)
  in
  let order =
    List.sort
      (fun a b -> compare (degree b, a) (degree a, b))
      (List.init n Fun.id)
  in
  let assigned = Array.make n false in
  let cliques = ref [] in
  List.iter
    (fun v ->
      if not assigned.(v) then begin
        assigned.(v) <- true;
        let members = ref [ v ] in
        List.iter
          (fun u ->
            if
              (not assigned.(u))
              && List.for_all (fun w -> adjacency.(u).(w)) !members
            then begin
              assigned.(u) <- true;
              members := u :: !members
            end)
          order;
        cliques := List.sort compare !members :: !cliques
      end)
    order;
  List.rev !cliques

(* Minimum clique cover by branch and bound: vertices are assigned in
   index order to an existing compatible clique or a fresh one; the
   best (fewest-cliques) complete assignment wins. Exponential in the
   worst case, fine for the paper's "small number of modes". *)
let exact_cliques ?(limit = 20) adjacency =
  let n = Array.length adjacency in
  if n > limit then greedy_cliques adjacency
  else begin
    let best = ref (greedy_cliques adjacency) in
    let best_count = ref (List.length !best) in
    let cliques : int list array = Array.make n [] in
    let rec go v used =
      if used >= !best_count then () (* prune *)
      else if v = n then begin
        best := Array.to_list (Array.sub cliques 0 used) |> List.map List.rev;
        best_count := used
      end
      else begin
        for c = 0 to used - 1 do
          if List.for_all (fun u -> adjacency.(v).(u)) cliques.(c) then begin
            cliques.(c) <- v :: cliques.(c);
            go (v + 1) used;
            cliques.(c) <- List.tl cliques.(c)
          end
        done;
        if used + 1 < !best_count then begin
          cliques.(used) <- [ v ];
          go (v + 1) (used + 1);
          cliques.(used) <- []
        end
      end
    in
    go 0 0;
    List.map (List.sort compare) !best |> List.sort compare
  end

(* Verdict for a pair whose check could not be completed under the
   governing budget: not mergeable. Merging only shrinks the mode set;
   declining an edge can never violate the paper's inclusion guarantee,
   it just forfeits some reduction — the safe direction to degrade. *)
let conservative_check why =
  Metrics.incr "govern.conservative_pairs";
  {
    mergeable = false;
    reasons =
      [
        Printf.sprintf
          "governance: pair check abandoned (%s); conservatively treated as \
           not mergeable"
          why;
      ];
  }

let analyze ?tolerance ?ctx_cache ?pool ?(strategy = Greedy)
    ?(govern = Govern.never) ?task_budget_s ?(conservative = false) modes =
  Obs.with_span
    ~attrs:[ "modes", string_of_int (List.length modes) ]
    "merge.mergeability"
  @@ fun () ->
  let ctx_cache =
    match ctx_cache with Some c -> c | None -> Ctx_cache.create ()
  in
  let arr = Array.of_list modes in
  let n = Array.length arr in
  let adjacency = Array.make_matrix n n false in
  let pair_reasons = Hashtbl.create 16 in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      pairs := (i, j) :: !pairs
    done
  done;
  (* Each pairwise check is an independent task: a forked cache handle
     keeps lookups lock-free after the first touch of each mode. *)
  let check_one (i, j) =
    let ctx_cache = Ctx_cache.fork ctx_cache in
    check_pair ?tolerance ~ctx_cache arr.(i) arr.(j)
  in
  let outcomes =
    match pool with
    | Some pool -> Pool.map_outcome pool ~govern ?task_budget_s check_one !pairs
    | None ->
      List.map (fun p -> Govern.run govern (fun () -> check_one p)) !pairs
  in
  (* Fold in pair order. An abandoned check gets one direct rescue
     attempt while the stage token is still live (absorbs transient
     faults deterministically); if that also fails, the conservative
     verdict applies — or, outside a governed permissive run, the
     failure propagates exactly as an ungoverned sweep would. *)
  let resolve (i, j) = function
    | Govern.Done c -> c
    | o when not conservative -> (
      match Govern.reraise_crash o with
      | Govern.Interrupted r -> raise (Govern.Cancelled r)
      | Govern.Done _ | Govern.Crashed _ -> assert false)
    | o -> (
      (match o with
      | Govern.Interrupted (Govern.Deadline_exceeded _) ->
        Metrics.incr "govern.timeouts"
      | Govern.Interrupted (Govern.Memory_watermark _) ->
        Metrics.incr "govern.mem_trips"
      | _ -> ());
      let rescued =
        if Govern.expired govern then None
        else begin
          Metrics.incr "govern.retries";
          match Govern.run govern (fun () -> check_one (i, j)) with
          | Govern.Done c -> Some c
          | Govern.Interrupted _ | Govern.Crashed _ -> None
        end
      in
      match rescued, o with
      | Some c, _ -> c
      | None, Govern.Interrupted r ->
        conservative_check (Govern.reason_to_string r)
      | None, Govern.Crashed { exn; _ } ->
        conservative_check (Printexc.to_string exn)
      | None, Govern.Done _ -> assert false)
  in
  List.iter2
    (fun (i, j) outcome ->
      let check = resolve (i, j) outcome in
      adjacency.(i).(j) <- check.mergeable;
      adjacency.(j).(i) <- check.mergeable;
      if not check.mergeable then
        Hashtbl.replace pair_reasons (i, j) check.reasons)
    !pairs outcomes;
  Metrics.incr ~by:(n * (n - 1) / 2) "merge.pairs_checked";
  let cliques =
    match strategy with
    | Greedy -> greedy_cliques adjacency
    | Exact -> exact_cliques adjacency
  in
  {
    mode_names = Array.map (fun (m : Mode.t) -> m.Mode.mode_name) arr;
    adjacency;
    cliques;
    pair_reasons;
  }

let clique_modes t modes =
  let arr = Array.of_list modes in
  ignore t.mode_names;
  List.map (fun clique -> List.map (fun i -> arr.(i)) clique) t.cliques

let edges t =
  let n = Array.length t.mode_names in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      if t.adjacency.(i).(j) then acc := (i, j) :: !acc
    done
  done;
  !acc
