let schema_version = 1

type stage_rec = {
  st_name : string;
  st_file : string; (* basename within the checkpoint dir *)
  st_digest : string; (* md5 hex of the payload bytes *)
  st_counters : (string * int) list;
}

type t = {
  ck_dir : string;
  ck_fingerprint : string;
  mutable ck_stages : stage_rec list; (* completion order *)
}

let dir t = t.ck_dir
let completed_stages t = List.map (fun s -> s.st_name) t.ck_stages
let has_stage t name = List.exists (fun s -> s.st_name = name) t.ck_stages

let manifest_file dir = Filename.concat dir "MANIFEST"

(* Atomic replace: a kill mid-write leaves the previous file intact. *)
let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let render_manifest t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "modemerge-checkpoint %d\n" schema_version);
  Buffer.add_string b (Printf.sprintf "fingerprint %s\n" t.ck_fingerprint);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "stage %s %s %s %d\n" s.st_name s.st_file s.st_digest
           (List.length s.st_counters));
      List.iter
        (fun (name, v) ->
          Buffer.add_string b (Printf.sprintf "counter %s %d\n" name v))
        s.st_counters)
    t.ck_stages;
  Buffer.contents b

let flush_manifest t = write_atomic (manifest_file t.ck_dir) (render_manifest t)

let stage_path t s = Filename.concat t.ck_dir s.st_file

let create ~dir ~fingerprint =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let t = { ck_dir = dir; ck_fingerprint = fingerprint; ck_stages = [] } in
  (* Drop stale payloads from a previous run so a later resume cannot
     pick up a stage this run never completed. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".bin" || Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  flush_manifest t;
  t

(* ------------------------------------------------------------------ *)
(* Manifest parsing                                                    *)

let parse_manifest text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let words l =
    List.filter (fun w -> w <> "") (String.split_on_char ' ' l)
  in
  match lines with
  | header :: rest -> (
    match words header with
    | [ "modemerge-checkpoint"; v ] when int_of_string_opt v = Some schema_version
      -> (
      match rest with
      | fp_line :: stage_lines -> (
        match words fp_line with
        | [ "fingerprint"; fp ] ->
          let rec stages acc = function
            | [] -> Ok (List.rev acc)
            | l :: tl -> (
              match words l with
              | [ "stage"; name; file; digest; n ] -> (
                match int_of_string_opt n with
                | None -> Error "bad stage line"
                | Some n ->
                  let rec take k cs tl =
                    if k = 0 then Ok (List.rev cs, tl)
                    else
                      match tl with
                      | cl :: tl' -> (
                        match words cl with
                        | [ "counter"; cname; v ] -> (
                          match int_of_string_opt v with
                          | Some v -> take (k - 1) ((cname, v) :: cs) tl'
                          | None -> Error "bad counter line")
                        | _ -> Error "bad counter line")
                      | [] -> Error "truncated counter block"
                  in
                  (match take n [] tl with
                  | Error _ as e -> e
                  | Ok (cs, tl') ->
                    stages
                      ({ st_name = name; st_file = file; st_digest = digest;
                         st_counters = cs }
                      :: acc)
                      tl'))
              | _ -> Error "bad manifest line")
          in
          (match stages [] stage_lines with
          | Ok ss -> Ok (fp, ss)
          | Error _ as e -> e)
        | _ -> Error "missing fingerprint line")
      | [] -> Error "missing fingerprint line")
    | [ "modemerge-checkpoint"; v ] ->
      Error
        (Printf.sprintf "checkpoint schema version %s, this build reads %d" v
           schema_version)
    | _ -> Error "not a modemerge checkpoint manifest")
  | [] -> Error "empty manifest"

let payload_ok t s =
  let path = stage_path t s in
  Sys.file_exists path
  && (try Digest.to_hex (Digest.file path) = s.st_digest
      with Sys_error _ -> false)

let load_for_resume ~dir ~fingerprint =
  let mf = manifest_file dir in
  if not (Sys.file_exists mf) then
    Error (Printf.sprintf "no checkpoint manifest at %s" mf)
  else
    match parse_manifest (read_whole mf) with
    | exception Sys_error msg -> Error msg
    | Error msg -> Error (Printf.sprintf "%s: %s" mf msg)
    | Ok (fp, stages) ->
      if fp <> fingerprint then
        Error
          "checkpoint fingerprint does not match the current inputs/options; \
           refusing to resume (rerun without --resume to start fresh)"
      else begin
        let t = { ck_dir = dir; ck_fingerprint = fingerprint; ck_stages = [] } in
        (* Keep only the valid prefix: a torn stage invalidates
           everything after it (later stages consumed its state). *)
        let rec prefix = function
          | s :: tl when payload_ok t s -> s :: prefix tl
          | _ -> []
        in
        t.ck_stages <- prefix stages;
        Ok t
      end

(* ------------------------------------------------------------------ *)
(* Stage IO                                                            *)

let save_stage t ~stage ~counters v =
  let file = stage ^ ".bin" in
  let bytes = Marshal.to_string v [] in
  write_atomic (Filename.concat t.ck_dir file) bytes;
  Mm_util.Eventlog.log "checkpoint.saved"
    ~attrs:
      [ "stage", stage; "bytes", string_of_int (String.length bytes) ];
  let s =
    {
      st_name = stage;
      st_file = file;
      st_digest = Digest.to_hex (Digest.string bytes);
      st_counters = counters;
    }
  in
  t.ck_stages <-
    List.filter (fun s' -> s'.st_name <> stage) t.ck_stages @ [ s ];
  flush_manifest t

let load_stage t ~stage =
  match List.find_opt (fun s -> s.st_name = stage) t.ck_stages with
  | None -> None
  | Some s ->
    if not (payload_ok t s) then None
    else
      match read_whole (stage_path t s) with
      | bytes -> Some (Marshal.from_string bytes 0, s.st_counters)
      | exception Sys_error _ -> None
