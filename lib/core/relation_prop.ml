module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Graph = Mm_timing.Graph
module Const_prop = Mm_timing.Const_prop
module Clock_prop = Mm_timing.Clock_prop
module Excmatch = Mm_timing.Excmatch
module Context = Mm_timing.Context
module Lib_cell = Mm_netlist.Lib_cell

(* Per-pin tag sets: small insertion lists of encoded
   (clock, state, polarity) keys, plus the list of touched pins so a
   scratch tagset can be reset in O(touched) — pass 2/3 run one
   propagation per startpoint and reuse the buffer. *)
type tagsets = { tags : int list array; mutable touched : int list }

type seed = {
  seed_pin : Design.pin_id;
  seed_clock : int;
  seed_aliases : Design.pin_id list;
  seed_launch_edge : Lib_cell.edge;
}

(* Tag keys pack (exception state, clock, data polarity). *)
let edge_code = function
  | Mode.Any_edge -> 0
  | Mode.Rise_edge -> 1
  | Mode.Fall_edge -> 2

let edge_of_code = function
  | 1 -> Mode.Rise_edge
  | 2 -> Mode.Fall_edge
  | _ -> Mode.Any_edge

let key ?(edge = Mode.Any_edge) clock state =
  ((((state * 128) + clock + 1) * 4) + edge_code edge [@warning "-27"])

let key_clock k = (k / 4) mod 128 - 1
let key_state k = k / 4 / 128
let key_edge k = edge_of_code (k land 3)

(* Polarity transform along an arc. *)
let edges_through_unate (u : Graph.unate) e =
  match e with
  | Mode.Any_edge -> [ Mode.Any_edge ]
  | Mode.Rise_edge | Mode.Fall_edge -> (
    match u with
    | Graph.Positive -> [ e ]
    | Graph.Negative ->
      [ (if e = Mode.Rise_edge then Mode.Fall_edge else Mode.Rise_edge) ]
    | Graph.Non_unate -> [ Mode.Rise_edge; Mode.Fall_edge ])

let seeds_of_startpoint (ctx : Context.t) = function
  | Graph.Sp_reg { sp_clock; sp_outputs; sp_edge; _ } ->
    if Const_prop.pin_active ctx.Context.consts sp_clock then begin
      let mask = Clock_prop.mask_at ctx.Context.clocks sp_clock in
      let acc = ref [] in
      for ci = Clock_prop.n_clocks ctx.Context.clocks - 1 downto 0 do
        if mask land (1 lsl ci) <> 0 then
          acc :=
            {
              seed_pin = sp_clock;
              seed_clock = ci;
              seed_aliases = sp_clock :: sp_outputs;
              seed_launch_edge = sp_edge;
            }
            :: !acc
      done;
      !acc
    end
    else []
  | Graph.Sp_port { sp_pin } ->
    if Const_prop.pin_active ctx.Context.consts sp_pin then
      List.filter_map
        (fun (d : Mode.io_delay) ->
          if d.iod_input && d.iod_pin = sp_pin then
            Option.bind d.iod_clock (fun cname ->
                Option.map
                  (fun ci ->
                    {
                      seed_pin = sp_pin;
                      seed_clock = ci;
                      seed_aliases = [ sp_pin ];
                      seed_launch_edge =
                        (if d.iod_clock_fall then Mm_netlist.Lib_cell.Falling
                         else Mm_netlist.Lib_cell.Rising);
                    })
                  (Clock_prop.clock_index ctx.Context.clocks cname))
          else None)
        ctx.Context.mode.Mode.io_delays
      |> List.sort_uniq compare
    else []

let all_seeds (ctx : Context.t) =
  List.concat_map (seeds_of_startpoint ctx) ctx.Context.graph.Graph.startpoints

let add_tag (ts : tagsets) pin k =
  match ts.tags.(pin) with
  | [] ->
    ts.tags.(pin) <- [ k ];
    ts.touched <- pin :: ts.touched
  | existing -> if not (List.mem k existing) then ts.tags.(pin) <- k :: existing

let create_scratch (ctx : Context.t) =
  { tags = Array.make (Graph.n_pins ctx.Context.graph) []; touched = [] }

let reset_scratch ts =
  List.iter (fun pin -> ts.tags.(pin) <- []) ts.touched;
  ts.touched <- []

(* Topologically ordered pins of a cone, computed once and shared by
   the per-startpoint queries of passes 2 and 3. *)
let cone_order (ctx : Context.t) within =
  let acc = ref [] in
  let topo = Graph.topo ctx.Context.graph in
  for i = Array.length topo - 1 downto 0 do
    if within.(topo.(i)) then acc := topo.(i) :: !acc
  done;
  !acc

let sweep_pin (ctx : Context.t) (ts : tagsets) inside pin =
  let g = ctx.Context.graph in
  if ts.tags.(pin) <> [] then
    Graph.iter_out g pin (fun aid ->
        if Const_prop.enabled ctx.Context.consts aid then begin
          let dst = Graph.arc_dst g aid in
          if inside dst then begin
            let unate = Graph.arc_unate g aid in
            List.iter
              (fun k ->
                let st' = Excmatch.advance ctx.Context.excs (key_state k) dst in
                List.iter
                  (fun edge -> add_tag ts dst (key ~edge (key_clock k) st'))
                  (edges_through_unate unate (key_edge k)))
              ts.tags.(pin)
          end
        end)

let sweep (ctx : Context.t) (ts : tagsets) ?within ?order () =
  let inside pin = match within with None -> true | Some w -> w.(pin) in
  match order with
  | Some pins -> List.iter (fun pin -> sweep_pin ctx ts inside pin) pins
  | None ->
    Array.iter
      (fun pin -> sweep_pin ctx ts inside pin)
      (Graph.topo ctx.Context.graph)

let propagate (ctx : Context.t) ~seeds ?within ?order ?scratch () =
  let ts =
    match scratch with
    | Some ts ->
      reset_scratch ts;
      ts
    | None -> create_scratch ctx
  in
  let inside pin = match within with None -> true | Some w -> w.(pin) in
  let seed_edges =
    if Excmatch.edge_sensitive ctx.Context.excs then
      [ Mode.Rise_edge; Mode.Fall_edge ]
    else [ Mode.Any_edge ]
  in
  List.iter
    (fun s ->
      if inside s.seed_pin then
        List.iter
          (fun edge ->
            let st =
              Excmatch.initial_state ctx.Context.excs
                ~start_pins:s.seed_aliases ~launch_clock:(Some s.seed_clock)
                ~launch_edge:s.seed_launch_edge ~data_edge:edge ()
            in
            let st = Excmatch.advance ctx.Context.excs st s.seed_pin in
            add_tag ts s.seed_pin (key ~edge s.seed_clock st))
          seed_edges)
    seeds;
  sweep ctx ts ?within ?order ();
  ts

let propagate_raw (ctx : Context.t) ~tag_seeds ?within ?order ?scratch () =
  let ts =
    match scratch with
    | Some ts ->
      reset_scratch ts;
      ts
    | None -> create_scratch ctx
  in
  let inside pin = match within with None -> true | Some w -> w.(pin) in
  List.iter
    (fun (pin, triples) ->
      if inside pin then
        List.iter (fun (ci, st, edge) -> add_tag ts pin (key ~edge ci st)) triples)
    tag_seeds;
  sweep ctx ts ?within ?order ();
  ts

let tags_at (ts : tagsets) pin =
  List.map (fun k -> key_clock k, key_state k, key_edge k) ts.tags.(pin)
  |> List.sort compare

let relations_at (ctx : Context.t) tags ep =
  let ep_pin = Graph.endpoint_pin ep in
  let end_pins = Context.endpoint_alias_pins ctx ep in
  let captures = Context.capture_clocks_of_endpoint ctx ep in
  let rels = ref [] in
  List.iter
    (fun (ci, st, edge) ->
      if ci >= 0 then
        List.iter
          (fun cj ->
            if not (Context.clocks_exclusive ctx ci cj) then begin
              let setup_state =
                Excmatch.state_at ctx.Context.excs ~setup:true st ~end_pins
                  ~capture_clock:(Some cj) ~data_edge:edge ()
              and hold_state =
                Excmatch.state_at ctx.Context.excs ~setup:false st ~end_pins
                  ~capture_clock:(Some cj) ~data_edge:edge ()
              in
              rels :=
                Relation.make ~data_edge:edge
                  ~launch:(Clock_prop.clock_name ctx.Context.clocks ci)
                  ~capture:(Clock_prop.clock_name ctx.Context.clocks cj)
                  ~setup:setup_state ~hold:hold_state ()
                :: !rels
            end)
          captures)
    (tags_at tags ep_pin);
  Relation.normalize !rels

let endpoint_relations (ctx : Context.t) =
  let tags = propagate ctx ~seeds:(all_seeds ctx) () in
  List.map
    (fun ep -> Graph.endpoint_pin ep, relations_at ctx tags ep)
    ctx.Context.graph.Graph.endpoints

let data_clock_masks (ctx : Context.t) =
  let g = ctx.Context.graph in
  let n = Graph.n_pins g in
  let masks = Array.make n 0 in
  List.iter
    (fun s -> masks.(s.seed_pin) <- masks.(s.seed_pin) lor (1 lsl s.seed_clock))
    (all_seeds ctx);
  Array.iter
    (fun pin ->
      if masks.(pin) <> 0 then
        Graph.iter_out g pin (fun aid ->
            if Const_prop.enabled ctx.Context.consts aid then begin
              let dst = Graph.arc_dst g aid in
              masks.(dst) <- masks.(dst) lor masks.(pin)
            end))
    (Graph.topo g);
  masks

let cone (ctx : Context.t) pins ~forward =
  let g = ctx.Context.graph in
  let n = Graph.n_pins g in
  let mark = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun p ->
      if not mark.(p) then begin
        mark.(p) <- true;
        Queue.add p queue
      end)
    pins;
  let visit aid =
    if Const_prop.enabled ctx.Context.consts aid then begin
      let next = if forward then Graph.arc_dst g aid else Graph.arc_src g aid in
      if not mark.(next) then begin
        mark.(next) <- true;
        Queue.add next queue
      end
    end
  in
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    if forward then Graph.iter_out g p visit else Graph.iter_in g p visit
  done;
  mark

let forward_cone ctx pins = cone ctx pins ~forward:true
let backward_cone ctx pins = cone ctx pins ~forward:false

(* ------------------------------------------------------------------ *)
(* Incremental endpoint relations.

   The refinement loop re-runs pass 1 after every batch of appended
   exceptions; everything else in the context (graph, constants,
   clocks, environment) is unchanged. An appended exception can only
   change the relations of endpoints its from/through/to scope can
   reach, so: diff the exception list against the cached one, mark the
   endpoints in the new exceptions' scopes dirty (conservatively, via
   enabled-arc cones), re-propagate restricted to the dirty endpoints'
   backward cone, and splice the recomputed relation lists into the
   cached ones positionally. Cached [Relation.t] lists carry no
   exception-state ids, so they stay valid across the re-prepared
   exception automaton. *)

type ep_cache = {
  mutable ec_excs : Mode.exc list option;  (* None = cold *)
  mutable ec_edge_sensitive : bool;
  mutable ec_rels : (Design.pin_id * Relation.t list) array;
      (* graph endpoint order *)
}

let create_ep_cache () =
  { ec_excs = None; ec_edge_sensitive = false; ec_rels = [||] }

(* [strip_prefix cached now] = the suffix of [now] after [cached], or
   None when [cached] is not a prefix — refinement only appends, so a
   non-prefix means the cache is for some other mode lineage. *)
let rec strip_prefix prefix l =
  match prefix, l with
  | [], rest -> Some rest
  | p :: ps, x :: xs when p == x || Mode.exc_equal p x -> strip_prefix ps xs
  | _ :: _, _ -> None

(* Endpoints an exception could affect: inside the forward cone of its
   -through (first group) or -from pins, AND matching its -to points.
   Either restriction missing widens to "all"; both missing dirties
   every endpoint. Everything is over-approximate on purpose. *)
let dirty_endpoints (ctx : Context.t) delta =
  let eps = Array.of_list ctx.Context.graph.Graph.endpoints in
  let n_eps = Array.length eps in
  let dirty = Array.make n_eps false in
  let seeds = lazy (all_seeds ctx) in
  List.iter
    (fun (e : Mode.exc) ->
      let cone =
        match e.Mode.exc_through with
        | grp :: _ -> Some (forward_cone ctx grp)
        | [] -> (
          match e.Mode.exc_from with
          | None -> None
          | Some pts ->
            let pins =
              List.concat_map
                (function
                  | Mode.P_pin p -> [ p ]
                  | Mode.P_inst inst ->
                    Array.to_list (Design.inst_pins ctx.Context.design inst)
                  | Mode.P_clock c -> (
                    match Clock_prop.clock_index ctx.Context.clocks c with
                    | None -> []
                    | Some ci ->
                      List.filter_map
                        (fun s ->
                          if s.seed_clock = ci then Some s.seed_pin else None)
                        (Lazy.force seeds)))
                pts
            in
            Some (forward_cone ctx pins))
      in
      let to_pred =
        match e.Mode.exc_to with
        | None -> None
        | Some pts ->
          Some
            (fun ep ->
              let aliases = Context.endpoint_alias_pins ctx ep in
              let captures =
                lazy (Context.capture_clocks_of_endpoint ctx ep)
              in
              List.exists
                (function
                  | Mode.P_pin p -> List.mem p aliases
                  | Mode.P_inst inst ->
                    List.exists
                      (fun p ->
                        match Design.pin_owner ctx.Context.design p with
                        | Design.Inst_pin (i, _) -> i = inst
                        | Design.Port_pin _ -> false)
                      aliases
                  | Mode.P_clock c -> (
                    match Clock_prop.clock_index ctx.Context.clocks c with
                    | None -> false
                    | Some cj -> List.mem cj (Lazy.force captures)))
                pts)
      in
      match cone, to_pred with
      | None, None -> Array.fill dirty 0 n_eps true
      | _ ->
        Array.iteri
          (fun i ep ->
            if not dirty.(i) then begin
              let pin = Graph.endpoint_pin ep in
              let in_cone =
                match cone with None -> true | Some c -> c.(pin)
              in
              if in_cone then
                match to_pred with
                | None -> dirty.(i) <- true
                | Some f -> if f ep then dirty.(i) <- true
            end)
          eps)
    delta;
  eps, dirty

let endpoint_relations_cached cache (ctx : Context.t) =
  let excs_now = ctx.Context.mode.Mode.exceptions in
  let es_now = Excmatch.edge_sensitive ctx.Context.excs in
  let store rels =
    cache.ec_excs <- Some excs_now;
    cache.ec_edge_sensitive <- es_now;
    cache.ec_rels <- rels;
    Array.to_list rels
  in
  let full () = store (Array.of_list (endpoint_relations ctx)) in
  match cache.ec_excs with
  | None -> full ()
  | Some _ when es_now <> cache.ec_edge_sensitive ->
    (* A new exception flipped the mode edge-sensitive: every tag and
       relation changes representation. *)
    full ()
  | Some cached_excs -> (
    match strip_prefix cached_excs excs_now with
    | None -> full ()
    | Some [] -> Array.to_list cache.ec_rels
    | Some delta ->
      let eps, dirty = dirty_endpoints ctx delta in
      if Array.length eps <> Array.length cache.ec_rels then full ()
      else
        Mm_util.Obs.with_span "sta.incremental_reuse"
          ~attrs:
            [
              "what", "endpoint-relations";
              ( "dirty",
                string_of_int
                  (Array.fold_left
                     (fun acc d -> if d then acc + 1 else acc)
                     0 dirty) );
            ]
        @@ fun () ->
        if not (Array.exists Fun.id dirty) then store (Array.copy cache.ec_rels)
        else begin
          let dirty_pins = ref [] in
          Array.iteri
            (fun i ep ->
              if dirty.(i) then dirty_pins := Graph.endpoint_pin ep :: !dirty_pins)
            eps;
          let within = backward_cone ctx !dirty_pins in
          let order = cone_order ctx within in
          let tags = propagate ctx ~seeds:(all_seeds ctx) ~within ~order () in
          store
            (Array.mapi
               (fun i ep ->
                 if dirty.(i) then
                   Graph.endpoint_pin ep, relations_at ctx tags ep
                 else cache.ec_rels.(i))
               eps)
        end)
