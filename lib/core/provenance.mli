(** Provenance derivation: build the {!Mm_util.Prov} lineage store for
    an emitted (merged or singleton) mode.

    The store is derived by walking [Mode.to_commands_tagged] on the
    emitted mode, so entries are 1:1 with the emitted SDC commands and
    ids ([<mode>#c<N>]) depend only on the mode's content — they are
    byte-identical across [--jobs] values and runs. Each constraint is
    classified against the preliminary-merge result (which §3.1 rule
    produced it, which source modes contributed) and the refinement
    lineage (which data-clock cut or comparison-pass mismatch added
    it, with the full {!Compare.evidence}). See DESIGN.md §11. *)

val of_single : Mm_sdc.Mode.t -> Mm_util.Prov.store
(** Provenance for a singleton clique: every constraint is a trivial
    union from the one source mode. *)

val of_group :
  members:Mm_sdc.Mode.t list ->
  prelim:Prelim.t ->
  refine:Refine.t option ->
  mode:Mm_sdc.Mode.t ->
  Mm_util.Prov.store
(** Provenance for a merged clique. [mode] is the emitted mode (the
    refined mode when refinement ran). Contributor lookups iterate
    members and their record lists in input order only, so the
    attribution lists are deterministic. *)

val annotation : Mm_util.Prov.entry -> string
(** One-line comment body for [--annotate]:
    ["prov: merged_0#c12 union [modeA,modeB]"]. *)

val annotated_sdc : Mm_util.Prov.store -> Mm_sdc.Mode.t -> string
(** The mode's SDC with a ["# prov: ..."] comment line above every
    constraint. Parses back to the same commands (comments are
    skipped). *)
