module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Graph = Mm_timing.Graph
module Context = Mm_timing.Context
module Cs = Mm_timing.Constraint_state

type verdict = Match | Mismatch | Ambiguous

let verdict_to_string = function Match -> "M" | Mismatch -> "X" | Ambiguous -> "A"

type bucket = {
  bk_launch : string;
  bk_capture : string;
  bk_edge : Mode.edge_sel;
  bk_ind : (Cs.t * Cs.t) list;
  bk_mrg : (Cs.t * Cs.t) list;
  bk_verdict : verdict;
}

type pass1_row = { p1_ep : Design.pin_id; p1_bucket : bucket }

type pass2_row = {
  p2_sp : Design.pin_id;
  p2_ep : Design.pin_id;
  p2_bucket : bucket;
}

type pass3_row = {
  p3_sp : Design.pin_id;
  p3_through : Design.pin_id;
  p3_ep : Design.pin_id;
  p3_bucket : bucket;
}

type evidence = {
  ev_pass : int;
  ev_startpoint : string option;
  ev_through : string option;
  ev_endpoint : string;
  ev_launch : string option;
  ev_capture : string option;
  ev_ind : string;
  ev_mrg : string;
}

type fix = { fix_exc : Mode.exc; fix_reason : string; fix_evidence : evidence }

let evidence_to_string ev =
  let point =
    match ev.ev_startpoint, ev.ev_through with
    | None, _ -> Printf.sprintf "at endpoint %s" ev.ev_endpoint
    | Some sp, None -> Printf.sprintf "%s -> %s" sp ev.ev_endpoint
    | Some sp, Some t -> Printf.sprintf "%s -> %s -> %s" sp t ev.ev_endpoint
  in
  let clocks =
    match ev.ev_launch, ev.ev_capture with
    | None, _ -> ""
    | Some l, None -> Printf.sprintf " [launch %s]" l
    | Some l, Some c -> Printf.sprintf " [launch %s capture %s]" l c
  in
  Printf.sprintf "pass%d %s%s: ind=%s mrg=%s" ev.ev_pass point clocks ev.ev_ind
    ev.ev_mrg

type result = {
  pass1 : pass1_row list;
  pass2 : pass2_row list;
  pass3 : pass3_row list;
  fixes : fix list;
  unsound : string list;
  pessimism : string list;
}

type side = { ctx : Context.t; rename : string -> string }

let states_to_string pairs =
  let setups = List.sort_uniq Cs.compare (List.map fst pairs) in
  let by_rank a b = Int.compare (Cs.rank b) (Cs.rank a) in
  match setups with
  | [] -> "-"
  | _ -> String.concat ", " (List.map Cs.to_string (List.sort by_rank setups))

(* ------------------------------------------------------------------ *)
(* State union semantics                                               *)

(* A state "times" the path when the path participates in analysis. *)
let times = function
  | Cs.Valid | Cs.Multicycle _ | Cs.Max_delay_bound _ | Cs.Min_delay_bound _ ->
    true
  | Cs.False_path | Cs.Disabled -> false

(* Multi-mode sign-off requirement of two per-mode states of the same
   path: if either mode times the path, the path is timed, at the
   tightest requirement either mode imposes. *)
let union_state a b =
  match times a, times b with
  | false, false -> Cs.False_path
  | true, false -> a
  | false, true -> b
  | true, true ->
    if Cs.equal a b then a
    else begin
      match a, b with
      | Cs.Multicycle m, Cs.Multicycle n -> Cs.Multicycle (min m n)
      | Cs.Max_delay_bound x, Cs.Max_delay_bound y ->
        Cs.Max_delay_bound (Float.min x y)
      | Cs.Min_delay_bound x, Cs.Min_delay_bound y ->
        Cs.Min_delay_bound (Float.max x y)
      | _ ->
        (* Mixed kinds: the lower-ranked (more permissive) state wins;
           a Valid check subsumes a relaxing exception. *)
        if Cs.rank a <= Cs.rank b then a else b
    end

let union_pair (sa, ha) (sb, hb) = union_state sa sb, union_state ha hb

(* Effective behaviour of a path bundle: None = not timed at all. *)
let union_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some p, Some q -> Some (union_pair p q)

(* Reduce one side's state set for a bucket. [fine] forces a reduction
   at the finest comparison granularity. *)
let reduce_set ~fine = function
  | [] -> Some None
  | [ p ] -> Some (if times (fst p) || times (snd p) then Some p else None)
  | p :: rest as all ->
    if fine then
      Some
        (List.fold_left
           (fun acc q -> union_opt acc (Some q))
           (Some p) rest)
    else if List.for_all (fun (s, h) -> (not (times s)) && not (times h)) all
    then Some None
    else None

type decision =
  | D_match
  | D_ambiguous
  | D_mismatch of {
      eff_ind : (Cs.t * Cs.t) option;
      eff_mrg : (Cs.t * Cs.t) option;
    }

(* [ind_sets]: one state set per individual mode; [mrg_set]: the merged
   mode's set. *)
let judge ~fine ind_sets mrg_set =
  let ind_reduced =
    List.fold_left
      (fun acc set ->
        match acc, reduce_set ~fine set with
        | Some effs, Some e -> Some (e :: effs)
        | _, None | None, _ -> None)
      (Some []) ind_sets
  in
  match ind_reduced, reduce_set ~fine mrg_set with
  | Some effs, Some eff_mrg ->
    let eff_ind = List.fold_left union_opt None effs in
    if eff_ind = eff_mrg then D_match else D_mismatch { eff_ind; eff_mrg }
  | None, _ | _, None -> D_ambiguous

(* ------------------------------------------------------------------ *)
(* Bucketing                                                           *)

module Key = struct
  type t = string * string * Mode.edge_sel

  let compare (a1, a2, a3) (b1, b2, b3) =
    let c = String.compare a1 b1 in
    if c <> 0 then c
    else
      let c = String.compare a2 b2 in
      if c <> 0 then c else Stdlib.compare a3 b3
end

module KMap = Map.Make (Key)

(* When any side carries rise/fall-specific relations, polarity-blind
   (Any_edge) relations on the other sides expand to both polarities so
   bucket keys line up. An Any_edge relation's state is
   polarity-independent by construction (its mode has no edge-restricted
   exception), so the expansion is exact. *)
let normalize_edge_granularity rel_sides =
  let sensitive =
    List.exists
      (List.exists (fun (r : Relation.t) -> r.Relation.data_edge <> Mode.Any_edge))
      rel_sides
  in
  if not sensitive then rel_sides
  else
    List.map
      (List.concat_map (fun (r : Relation.t) ->
           match r.Relation.data_edge with
           | Mode.Any_edge ->
             [
               { r with Relation.data_edge = Mode.Rise_edge };
               { r with Relation.data_edge = Mode.Fall_edge };
             ]
           | Mode.Rise_edge | Mode.Fall_edge -> [ r ]))
      rel_sides

let pairs_of_rels rels =
  List.fold_left
    (fun m (r : Relation.t) ->
      let k = r.Relation.launch, r.Relation.capture, r.Relation.data_edge in
      let prev = Option.value ~default:[] (KMap.find_opt k m) in
      KMap.add k ((r.Relation.setup_state, r.Relation.hold_state) :: prev) m)
    KMap.empty rels

let norm_pairs l = List.sort_uniq compare l

type judged_bucket = { bucket : bucket; decision : decision }

(* [ind_rels]: one relation list per individual mode (already renamed);
   [mrg_rels]: merged relations. *)
let make_buckets ~fine ind_rels mrg_rels =
  let normalized = normalize_edge_granularity (mrg_rels :: ind_rels) in
  let mrg_rels, ind_rels =
    match normalized with m :: rest -> m, rest | [] -> assert false
  in
  let ind_maps = List.map pairs_of_rels ind_rels in
  let mrg_map = pairs_of_rels mrg_rels in
  let keys =
    List.concat_map (fun m -> KMap.fold (fun k _ acc -> k :: acc) m []) ind_maps
    @ KMap.fold (fun k _ acc -> k :: acc) mrg_map []
    |> List.sort_uniq Key.compare
  in
  List.map
    (fun ((launch, capture, edge) as k) ->
      let ind_sets =
        List.map
          (fun m -> norm_pairs (Option.value ~default:[] (KMap.find_opt k m)))
          ind_maps
      in
      let mrg_set = norm_pairs (Option.value ~default:[] (KMap.find_opt k mrg_map)) in
      let decision = judge ~fine ind_sets mrg_set in
      let verdict =
        match decision with
        | D_match -> Match
        | D_ambiguous -> Ambiguous
        | D_mismatch _ -> Mismatch
      in
      (* Display: once the union across modes is decidable, show the
         effective state (the paper's tables show "V" for a path bundle
         false-pathed in one mode but timed in another); otherwise show
         the flattened set ("FP, V"). *)
      let flattened = norm_pairs (List.concat ind_sets) in
      let shown_ind =
        match decision with
        | D_ambiguous -> flattened
        | D_match | D_mismatch _ -> (
          let effs = List.filter_map (reduce_set ~fine) ind_sets in
          match List.fold_left union_opt None effs with
          | Some p -> [ p ]
          | None -> if flattened = [] then [] else [ Cs.False_path, Cs.False_path ])
      in
      {
        bucket =
          {
            bk_launch = launch;
            bk_capture = capture;
            bk_edge = edge;
            bk_ind = shown_ind;
            bk_mrg = mrg_set;
            bk_verdict = verdict;
          };
        decision;
      })
    keys

(* ------------------------------------------------------------------ *)
(* Fix generation                                                      *)

let kind_of_state = function
  | Cs.False_path | Cs.Disabled -> Some Mode.False_path
  | Cs.Multicycle n -> Some (Mode.Multicycle { mult = n; start = false })
  | Cs.Max_delay_bound v -> Some (Mode.Max_delay v)
  | Cs.Min_delay_bound v -> Some (Mode.Min_delay v)
  | Cs.Valid -> None

(* [a] at least as tight a requirement as [b] (both timing states). *)
let tighter_or_equal a b =
  if Cs.equal a b then true
  else
    match a, b with
    | Cs.Valid, Cs.Multicycle _ -> true
    | Cs.Multicycle m, Cs.Multicycle n -> m <= n
    | Cs.Max_delay_bound x, Cs.Max_delay_bound y -> x <= y
    | Cs.Min_delay_bound x, Cs.Min_delay_bound y -> x >= y
    | _ -> false

(* Resolve one mismatch decision into exceptions to add plus unsound /
   pessimism diagnostics:
   - individual doesn't time, merged does       -> fixable (add exception)
   - individual times, merged checks tighter    -> pessimism (safe)
   - individual times, merged relaxes or drops  -> unsound
   Returns (fixes, unsound, pessimism). *)
let resolve_mismatch ~where ~ev ~from_points ~through ~to_points
    ?(to_edge = Mode.Any_edge) decision =
  match decision with
  | D_match | D_ambiguous -> [], [], []
  | D_mismatch { eff_ind; eff_mrg } ->
    let eff_or_fp = function
      | None -> Cs.False_path, Cs.False_path
      | Some p -> p
    in
    let si, hi = eff_or_fp eff_ind and sm, hm = eff_or_fp eff_mrg in
    let pair_str s h = Printf.sprintf "%s/%s" (Cs.to_string s) (Cs.to_string h) in
    let ev =
      { ev with ev_ind = pair_str si hi; ev_mrg = pair_str sm hm }
    in
    let component ~setup ind mrg =
      if Cs.equal ind mrg then [], [], []
      else if not (times ind) then begin
        if times mrg then
          match kind_of_state ind with
          | Some kind ->
            ( [
                {
                  fix_exc =
                    Mode.exc ~setup ~hold:(not setup) ?from_:from_points
                      ~through ?to_:to_points ~to_edge kind;
                  fix_reason = where;
                  fix_evidence = ev;
                };
              ],
              [],
              [] )
          | None -> [], [], []
        else [], [], []
      end
      else if times mrg && tighter_or_equal mrg ind then
        ( [],
          [],
          [
            Printf.sprintf "pessimistic: %s: merged checks tighter (ind=%s mrg=%s)"
              where (Cs.to_string ind) (Cs.to_string mrg);
          ] )
      else
        ( [],
          [
            Printf.sprintf
              "unsound: %s: merged relaxes or drops a required check (ind=%s \
               mrg=%s)"
              where (Cs.to_string ind) (Cs.to_string mrg);
          ],
          [] )
    in
    let f1, u1, p1 = component ~setup:true si sm in
    let f2, u2, p2 = component ~setup:false hi hm in
    (* Collapse a setup fix and a hold fix of the same kind. *)
    let fixes =
      match f1, f2 with
      | [ a ], [ b ] when a.fix_exc.Mode.exc_kind = b.fix_exc.Mode.exc_kind ->
        [ { a with fix_exc = { a.fix_exc with Mode.exc_setup = true; exc_hold = true } } ]
      | _ -> f1 @ f2
    in
    fixes, u1 @ u2, p1 @ p2

(* Emit the fixes for all judged buckets of one comparison point — an
   endpoint (pass 1), a (startpoint, endpoint) pair (pass 2) or a
   (startpoint, through, endpoint) triple (pass 3); [prefix_pins] are
   the identifying pins in path order (e.g. [sp] or [sp; t]).

   Granularity is chosen to stay exact: when every bucket of the point
   mismatches identically, one pin-scoped exception suffices (the
   paper's CSTR1 pattern). Otherwise the launch clock and, if needed,
   the capture clock restrict the exception — a capture restriction is
   encoded as "-through <endpoint pin> -to <capture clock>", which is
   precise because endpoint pins have no fanout. *)
let fixes_for_point ~where ~pass ~sp_name ~through_name ~ep_name ~prefix_pins
    ~ep judged =
  let mismatches =
    List.filter (fun jb -> jb.bucket.bk_verdict = Mismatch) judged
  in
  match mismatches with
  | [] -> [], [], []
  | first :: rest_mismatches ->
    let uniform l =
      List.for_all (fun jb -> jb.decision = first.decision) l
    in
    let mk ~with_launch ~with_capture jb =
      let ev =
        {
          ev_pass = pass;
          ev_startpoint = sp_name;
          ev_through = through_name;
          ev_endpoint = ep_name;
          ev_launch = (if with_launch then Some jb.bucket.bk_launch else None);
          ev_capture = (if with_capture then Some jb.bucket.bk_capture else None);
          ev_ind = "";
          ev_mrg = "";
        }
      in
      let from_points, through =
        match prefix_pins, with_launch with
        | [], false -> None, []
        | [], true -> Some [ Mode.P_clock jb.bucket.bk_launch ], []
        | sp :: rest, false ->
          Some [ Mode.P_pin sp ], List.map (fun p -> [ p ]) rest
        | pins, true ->
          ( Some [ Mode.P_clock jb.bucket.bk_launch ],
            List.map (fun p -> [ p ]) pins )
      in
      let through, to_points =
        if with_capture then
          through @ [ [ ep ] ], Some [ Mode.P_clock jb.bucket.bk_capture ]
        else through, Some [ Mode.P_pin ep ]
      in
      resolve_mismatch ~where ~ev ~from_points ~through ~to_points
        ~to_edge:jb.bucket.bk_edge jb.decision
    in
    if List.length mismatches = List.length judged && uniform rest_mismatches
    then mk ~with_launch:false ~with_capture:false first
    else begin
      (* Per launch clock: one exception when that launch's buckets all
         mismatch identically, else per-bucket capture restriction. *)
      let launches =
        List.sort_uniq String.compare
          (List.map (fun jb -> jb.bucket.bk_launch) judged)
      in
      List.fold_left
        (fun (fs, us, ps) launch ->
          let group =
            List.filter (fun jb -> jb.bucket.bk_launch = launch) judged
          in
          let group_mismatches =
            List.filter (fun jb -> jb.bucket.bk_verdict = Mismatch) group
          in
          match group_mismatches with
          | [] -> fs, us, ps
          | g0 :: _ ->
            if
              List.length group_mismatches = List.length group
              && List.for_all (fun jb -> jb.decision = g0.decision) group
            then begin
              let f, u, p = mk ~with_launch:true ~with_capture:false g0 in
              fs @ f, us @ u, ps @ p
            end
            else
              List.fold_left
                (fun (fs, us, ps) jb ->
                  let f, u, p = mk ~with_launch:true ~with_capture:true jb in
                  fs @ f, us @ u, ps @ p)
                (fs, us, ps) group_mismatches)
        ([], [], []) launches
    end

(* ------------------------------------------------------------------ *)
(* Pass 1                                                              *)

let rename_rels rename rels = List.map (Relation.rename rename) rels

(* Reusable state for repeated [run]s against the same individual sides
   and an exceptions-only-growing merged mode (the refinement loop):
   the sides' renamed relation tables are computed once, and the merged
   side goes through the incremental {!Relation_prop.ep_cache}. *)
type cache = {
  mutable c_sides : (Design.pin_id, Relation.t list) Hashtbl.t list option;
  c_merged : Relation_prop.ep_cache;
}

let create_cache () =
  { c_sides = None; c_merged = Relation_prop.create_ep_cache () }

let pass1 ?cache ~individual ~(merged : Context.t) () =
  let design = merged.Context.design in
  let mrg_rels =
    match cache with
    | Some c -> Relation_prop.endpoint_relations_cached c.c_merged merged
    | None -> Relation_prop.endpoint_relations merged
  in
  let compute_side_tables () =
    List.map
      (fun side ->
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun (ep, rels) ->
            Hashtbl.replace tbl ep (rename_rels side.rename rels))
          (Relation_prop.endpoint_relations side.ctx);
        tbl)
      individual
  in
  let ind_rels_per_mode =
    match cache with
    | None -> compute_side_tables ()
    | Some c -> (
      match c.c_sides with
      | Some tbls -> tbls
      | None ->
        let tbls = compute_side_tables () in
        c.c_sides <- Some tbls;
        tbls)
  in
  let rows = ref [] and fixes = ref [] and unsound = ref []
  and pessimism = ref [] in
  List.iter
    (fun (ep, mrels) ->
      Mm_util.Govern.checkpoint ();
      let ind_rels =
        List.map
          (fun tbl -> Option.value ~default:[] (Hashtbl.find_opt tbl ep))
          ind_rels_per_mode
      in
      let judged = make_buckets ~fine:false ind_rels mrels in
      List.iter (fun jb -> rows := { p1_ep = ep; p1_bucket = jb.bucket } :: !rows) judged;
      let ep_name = Design.pin_name design ep in
      let f, u, p =
        fixes_for_point
          ~where:(Printf.sprintf "pass1: endpoint %s" ep_name)
          ~pass:1 ~sp_name:None ~through_name:None ~ep_name ~prefix_pins:[] ~ep
          judged
      in
      fixes := f @ !fixes;
      unsound := u @ !unsound;
      pessimism := p @ !pessimism)
    mrg_rels;
  Mm_util.Metrics.incr ~by:(List.length mrg_rels) "compare.endpoints_visited";
  ( List.length mrg_rels,
    List.rev !rows,
    List.rev !fixes,
    List.rev !unsound,
    List.rev !pessimism )

(* ------------------------------------------------------------------ *)
(* Pass 2                                                              *)

let relations_from_sp ctx sp ep ~within ~order ~scratch =
  let seeds = Relation_prop.seeds_of_startpoint ctx sp in
  let tags = Relation_prop.propagate ctx ~seeds ~within ~order ~scratch () in
  Relation_prop.relations_at ctx tags ep

let find_endpoint (ctx : Context.t) pin =
  List.find_opt
    (fun ep -> Graph.endpoint_pin ep = pin)
    ctx.Context.graph.Graph.endpoints

let pass2 ~individual ~(merged : Context.t) ambiguous_eps =
  let design = merged.Context.design in
  let rows = ref [] and fixes = ref [] and unsound = ref []
  and pessimism = ref [] and ambiguous_pairs = ref [] and compared = ref 0 in
  List.iter
    (fun ep_pin ->
      (* Cooperative cancellation point, once per endpoint cone. *)
      Mm_util.Govern.checkpoint ();
      match find_endpoint merged ep_pin with
      | None -> ()
      | Some ep ->
        let prep ctx =
          let cone = Relation_prop.backward_cone ctx [ ep_pin ] in
          ( ctx,
            (cone, Relation_prop.cone_order ctx cone, Relation_prop.create_scratch ctx) )
        in
        let cones = prep merged :: List.map (fun side -> prep side.ctx) individual in
        let in_any_cone pin =
          List.exists (fun (_, (c, _, _)) -> c.(pin)) cones
        in
        let mrg_cone, mrg_order, mrg_scratch = List.assq merged cones in
        List.iter
          (fun sp ->
            let sp_pin = Graph.startpoint_pin sp in
            if in_any_cone sp_pin then begin
              let ind_rels =
                List.map
                  (fun side ->
                    let within, order, scratch = List.assq side.ctx cones in
                    rename_rels side.rename
                      (relations_from_sp side.ctx sp ep ~within ~order ~scratch))
                  individual
              in
              let mrels =
                relations_from_sp merged sp ep ~within:mrg_cone ~order:mrg_order
                  ~scratch:mrg_scratch
              in
              if List.for_all (( = ) []) ind_rels && mrels = [] then ()
              else begin
                incr compared;
                let judged = make_buckets ~fine:false ind_rels mrels in
                List.iter
                  (fun jb ->
                    rows :=
                      { p2_sp = sp_pin; p2_ep = ep_pin; p2_bucket = jb.bucket }
                      :: !rows;
                    if jb.bucket.bk_verdict = Ambiguous then
                      ambiguous_pairs := (sp, ep) :: !ambiguous_pairs)
                  judged;
                let sp_name = Design.pin_name design sp_pin
                and ep_name = Design.pin_name design ep_pin in
                let f, u, p =
                  fixes_for_point
                    ~where:(Printf.sprintf "pass2: %s -> %s" sp_name ep_name)
                    ~pass:2 ~sp_name:(Some sp_name) ~through_name:None ~ep_name
                    ~prefix_pins:[ sp_pin ] ~ep:ep_pin judged
                in
                fixes := f @ !fixes;
                unsound := u @ !unsound;
                pessimism := p @ !pessimism
              end
            end)
          merged.Context.graph.Graph.startpoints)
    ambiguous_eps;
  Mm_util.Metrics.incr ~by:!compared "compare.pairs_compared";
  ( List.rev !rows,
    List.rev !fixes,
    List.rev !unsound,
    List.rev !pessimism,
    List.sort_uniq compare !ambiguous_pairs )

(* ------------------------------------------------------------------ *)
(* Pass 3                                                              *)

let cone_and a b = Array.mapi (fun i x -> x && b.(i)) a

let relations_through ctx fwd_tags t ep ~within ~order ~scratch =
  let at_t = Relation_prop.tags_at fwd_tags t in
  if at_t = [] then []
  else
    let tags =
      Relation_prop.propagate_raw ctx ~tag_seeds:[ t, at_t ] ~within ~order
        ~scratch ()
    in
    Relation_prop.relations_at ctx tags ep

let successors (ctx : Context.t) pin =
  let g = ctx.Context.graph in
  let acc = ref [] in
  Graph.iter_out g pin (fun aid ->
      if Mm_timing.Const_prop.enabled ctx.Context.consts aid then
        acc := Graph.arc_dst g aid :: !acc);
  List.rev !acc

let pass3 ~individual ~(merged : Context.t) pairs =
  let design = merged.Context.design in
  let rows = ref [] and fixes = ref [] and unsound = ref []
  and pessimism = ref [] and reconv = ref 0 in
  List.iter
    (fun (sp, ep) ->
      let sp_pin = Graph.startpoint_pin sp and ep_pin = Graph.endpoint_pin ep in
      (* Per-context restriction cone and one forward propagation from
         the startpoint, reused for every candidate through pin. *)
      let prepare ctx =
        let seeds = Relation_prop.seeds_of_startpoint ctx sp in
        let seed_pins = List.map (fun s -> s.Relation_prop.seed_pin) seeds in
        if seed_pins = [] then None
        else begin
          let cone =
            cone_and
              (Relation_prop.forward_cone ctx seed_pins)
              (Relation_prop.backward_cone ctx [ ep_pin ])
          in
          let order = Relation_prop.cone_order ctx cone in
          (* The forward tags are read for every candidate pin, so they
             get their own (non-reused) buffer; the second hop reuses a
             scratch. *)
          let fwd = Relation_prop.propagate ctx ~seeds ~within:cone ~order () in
          Some (cone, order, Relation_prop.create_scratch ctx, fwd)
        end
      in
      let mrg_prep = prepare merged in
      let side_preps =
        List.filter_map
          (fun side -> Option.map (fun p -> side, p) (prepare side.ctx))
          individual
      in
      let in_union pin =
        (match mrg_prep with Some (c, _, _, _) -> c.(pin) | None -> false)
        || List.exists (fun (_, (c, _, _, _)) -> c.(pin)) side_preps
      in
      let visited = Hashtbl.create 32 in
      let queue = Queue.create () in
      let push pin =
        if in_union pin && not (Hashtbl.mem visited pin) then begin
          Hashtbl.replace visited pin ();
          Queue.add pin queue
        end
      in
      List.iter push (successors merged sp_pin);
      List.iter
        (fun (side, _) -> List.iter push (successors side.ctx sp_pin))
        side_preps;
      let budget = ref 2000 in
      while not (Queue.is_empty queue) && !budget > 0 do
        decr budget;
        let t = Queue.take queue in
        let fine = t = ep_pin in
        let ind_rels =
          List.map
            (fun (side, (cone, order, scratch, fwd)) ->
              rename_rels side.rename
                (relations_through side.ctx fwd t ep ~within:cone ~order ~scratch))
            side_preps
        in
        let mrels =
          match mrg_prep with
          | Some (cone, order, scratch, fwd) ->
            relations_through merged fwd t ep ~within:cone ~order ~scratch
          | None -> []
        in
        if List.for_all (( = ) []) ind_rels && mrels = [] then
          List.iter push (successors merged t)
        else begin
          incr reconv;
          let judged = make_buckets ~fine ind_rels mrels in
          let any_ambiguous = ref false in
          List.iter
            (fun jb ->
              match jb.bucket.bk_verdict with
              | Ambiguous -> any_ambiguous := true
              | Match | Mismatch ->
                rows :=
                  { p3_sp = sp_pin; p3_through = t; p3_ep = ep_pin; p3_bucket = jb.bucket }
                  :: !rows)
            judged;
          let sp_name = Design.pin_name design sp_pin
          and t_name = Design.pin_name design t
          and ep_name = Design.pin_name design ep_pin in
          let f, u, p =
            fixes_for_point
              ~where:
                (Printf.sprintf "pass3: %s -> %s -> %s" sp_name t_name ep_name)
              ~pass:3 ~sp_name:(Some sp_name) ~through_name:(Some t_name)
              ~ep_name ~prefix_pins:[ sp_pin; t ] ~ep:ep_pin judged
          in
          fixes := f @ !fixes;
          unsound := u @ !unsound;
          pessimism := p @ !pessimism;
          if !any_ambiguous && not fine then begin
            List.iter push (successors merged t);
            List.iter
              (fun (side, _) -> List.iter push (successors side.ctx t))
              side_preps
          end
        end
      done)
    pairs;
  Mm_util.Metrics.incr ~by:!reconv "compare.reconv_points";
  List.rev !rows, List.rev !fixes, List.rev !unsound, List.rev !pessimism

(* ------------------------------------------------------------------ *)

let dedup_fixes fixes =
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest ->
      if List.exists (fun g -> Mode.exc_equal g.fix_exc f.fix_exc) acc then
        go acc rest
      else go (f :: acc) rest
  in
  go [] fixes

let run ?cache ~individual ~merged () =
  let module Obs = Mm_util.Obs in
  let n_eps, p1_rows, p1_fixes, p1_uns, p1_pes =
    Obs.with_span "compare.pass1" (fun () -> pass1 ?cache ~individual ~merged ())
  in
  let ambiguous_eps =
    List.filter_map
      (fun r -> if r.p1_bucket.bk_verdict = Ambiguous then Some r.p1_ep else None)
      p1_rows
    |> List.sort_uniq compare
  in
  Mm_util.Metrics.incr
    ~by:(max 0 (n_eps - List.length ambiguous_eps))
    "compare.endpoints_pruned";
  let p2_rows, p2_fixes, p2_uns, p2_pes, ambiguous_pairs =
    Obs.with_span "compare.pass2"
      ~attrs:[ "ambiguous_endpoints", string_of_int (List.length ambiguous_eps) ]
      (fun () -> pass2 ~individual ~merged ambiguous_eps)
  in
  let p3_rows, p3_fixes, p3_uns, p3_pes =
    Obs.with_span "compare.pass3"
      ~attrs:[ "ambiguous_pairs", string_of_int (List.length ambiguous_pairs) ]
      (fun () -> pass3 ~individual ~merged ambiguous_pairs)
  in
  let fixes = dedup_fixes (p1_fixes @ p2_fixes @ p3_fixes) in
  Mm_util.Metrics.incr ~by:(List.length fixes) "compare.fixes";
  {
    pass1 = p1_rows;
    pass2 = p2_rows;
    pass3 = p3_rows;
    fixes;
    unsound = List.sort_uniq compare (p1_uns @ p2_uns @ p3_uns);
    pessimism = List.sort_uniq compare (p1_pes @ p2_pes @ p3_pes);
  }

let is_clean r =
  r.unsound = [] && r.pessimism = []
  && List.for_all (fun x -> x.p1_bucket.bk_verdict <> Mismatch) r.pass1
  && List.for_all (fun x -> x.p2_bucket.bk_verdict <> Mismatch) r.pass2
  && List.for_all (fun x -> x.p3_bucket.bk_verdict <> Mismatch) r.pass3
