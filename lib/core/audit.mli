(** Machine-readable merge audit report ([--audit out.json]).

    One schema-versioned JSON object per merge run:

    - ["audit_schema_version"] — currently [2] (v2 added the
      ["governance"] section);
    - ["summary"] — mode counts, reduction, clique/quarantine totals;
    - ["mergeability"] — mode names, clique cover, and the pairwise
      verdict matrix in canonical (i, j) index order, each pair with
      its first blocking reason and the full reason list;
    - ["groups"] — per emitted mode: members, equivalence verdict,
      refinement stats, and the full per-constraint lineage table
      ({!Mm_util.Prov.to_json});
    - ["quarantined"] / ["degraded"] — fault-tolerance outcomes;
    - ["governance"] — outcome-affecting resource-governance decisions
      (clique splits, budget quarantines, conservative pair verdicts,
      the chronological event list); transparent recoveries such as
      retries are metrics-only so recovered runs audit byte-identical;
    - ["coverage"] — the stable per-pass coverage counters
      ([compare.endpoints_visited], [compare.endpoints_pruned],
      [compare.pairs_compared], [compare.reconv_points],
      [merge.pairs_checked], [merge.cliques]).

    The report contains no timings, gauges or hash-ordered data, so
    its bytes are identical across [--jobs] values (DESIGN.md §11). *)

val schema_version : int

val mandatory_keys : string list
(** Top-level keys every audit file must carry — what the
    [@audit-smoke] alias validates. *)

val coverage_counters : string list
(** The stable counter names exported in the ["coverage"] section. *)

val to_json : Merge_flow.result -> string

val write : string -> Merge_flow.result -> unit
(** Write {!to_json} (plus trailing newline) to the path. *)
