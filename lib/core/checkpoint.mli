(** Crash-safe, schema-versioned per-stage checkpoint store.

    [modemerge merge --checkpoint DIR] persists the merge pipeline's
    state after each completed stage so a killed run can [--resume]
    from the last completed stage with byte-identical output to an
    uninterrupted run. This module is the storage half (what a stage
    {e contains} is decided by {!Merge_flow}): a directory holding

    - [MANIFEST] — a line-oriented, schema-versioned text index:
      {v
      modemerge-checkpoint <schema_version>
      fingerprint <hex>
      stage <name> <file> <md5hex> <n_counters>
      counter <metric-name> <value>   (n_counters lines)
      v}
    - one [<stage>.bin] payload per completed stage ([Marshal] of the
      stage's state record).

    Crash safety: payloads and the manifest are written to a temp file
    and [Sys.rename]d into place, and the manifest records each
    payload's digest — a kill mid-write leaves either the previous
    consistent state or an orphan temp file, never a manifest pointing
    at a torn payload. A payload whose digest no longer matches is
    treated as absent (that stage and all later ones recompute).

    Each stage also records a snapshot of the {!Mm_util.Metrics}
    counters taken at its boundary; {!load_stage} returns it so resume
    can {!Mm_util.Metrics.restore_counters} and keep the audit
    report's coverage section byte-identical to an unfaulted run.

    The manifest carries an input {e fingerprint} (digest of sources,
    design and the options that shape the result). {!load_for_resume}
    refuses a checkpoint whose fingerprint differs — resuming against
    edited inputs would silently splice two different runs. *)

val schema_version : int

type t

val create : dir:string -> fingerprint:string -> t
(** Start a fresh checkpoint: create [dir] if missing, write an empty
    manifest for [fingerprint], and forget any stages a previous run
    left behind (their payload files are removed). *)

val load_for_resume : dir:string -> fingerprint:string -> (t, string) result
(** Open an existing checkpoint for [--resume]. [Error] when the
    manifest is missing/corrupt, its schema version or fingerprint
    does not match, or [dir] is unreadable. Stages whose payloads fail
    their digest check are dropped (along with every later stage). *)

val dir : t -> string

val completed_stages : t -> string list
(** In completion order. *)

val has_stage : t -> string -> bool

val save_stage : t -> stage:string -> counters:(string * int) list -> 'a -> unit
(** Persist one stage's state and counter snapshot, then atomically
    update the manifest. The payload is [Marshal]ed, so the value must
    be closure-free (every pipeline state record is plain data).
    @raise Sys_error on IO failure. *)

val load_stage : t -> stage:string -> ('a * (string * int) list) option
(** The stage's state and its counter snapshot, or [None] when absent
    or torn. The caller is responsible for matching ['a] to what
    {!save_stage} stored under this stage name (same process version —
    the schema version guards cross-version reads). *)
