module Diag = Mm_util.Diag
module Metrics = Mm_util.Metrics
module Prov = Mm_util.Prov

let schema_version = 2

let mandatory_keys =
  [
    "audit_schema_version"; "summary"; "mergeability"; "groups"; "coverage";
    "governance";
  ]

(* The coverage section reads only counters, which the parallel-stress
   contract keeps byte-identical across --jobs values; gauges (e.g.
   merge.jobs) and timings are deliberately excluded so the audit file
   itself is jobs-invariant. *)
let coverage_counters =
  [
    "compare.endpoints_visited";
    "compare.endpoints_pruned";
    "compare.pairs_compared";
    "compare.reconv_points";
    "merge.pairs_checked";
    "merge.cliques";
  ]

let str s = "\"" ^ Metrics.json_escape s ^ "\""
let str_list l = "[" ^ String.concat "," (List.map str l) ^ "]"

let summary_json (r : Merge_flow.result) =
  Printf.sprintf
    "{\"n_individual\":%d,\"n_merged\":%d,\"reduction_percent\":%s,\"cliques\":%d,\"quarantined\":%d,\"degraded\":%d}"
    r.Merge_flow.n_individual r.Merge_flow.n_merged
    (Metrics.json_float r.Merge_flow.reduction_percent)
    (List.length r.Merge_flow.mergeability.Mergeability.cliques)
    (List.length r.Merge_flow.quarantined)
    (List.length r.Merge_flow.degraded)

(* Verdict matrix in canonical (i, j), i < j index order — never in
   hash-table order (DESIGN.md §11). *)
let mergeability_json (m : Mergeability.t) =
  let names = m.Mergeability.mode_names in
  let n = Array.length names in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i + 1 do
      let mergeable = m.Mergeability.adjacency.(i).(j) in
      let reasons =
        match Hashtbl.find_opt m.Mergeability.pair_reasons (i, j) with
        | Some rs -> rs
        | None -> []
      in
      let reason =
        match reasons with [] -> "null" | r :: _ -> str r
      in
      pairs :=
        Printf.sprintf
          "{\"a\":%s,\"b\":%s,\"mergeable\":%b,\"reason\":%s,\"reasons\":%s}"
          (str names.(i)) (str names.(j)) mergeable reason (str_list reasons)
        :: !pairs
    done
  done;
  Printf.sprintf
    "{\"modes\":%s,\"cliques\":%s,\"pairs\":[%s]}"
    (str_list (Array.to_list names))
    ("["
    ^ String.concat ","
        (List.map
           (fun c ->
             "[" ^ String.concat "," (List.map string_of_int c) ^ "]")
           m.Mergeability.cliques)
    ^ "]")
    (String.concat "," !pairs)

let group_json (g : Merge_flow.group) =
  let equiv =
    match g.Merge_flow.grp_equiv with
    | None -> "null"
    | Some e ->
      Printf.sprintf "{\"equivalent\":%b,\"mismatches\":%d}" e.Equiv.equivalent
        e.Equiv.mismatches
  in
  let refinement =
    match g.Merge_flow.grp_refine with
    | None -> "null"
    | Some r ->
      Printf.sprintf
        "{\"iterations\":%d,\"data_clock_fixes\":%d,\"added_false_paths\":%d}"
        r.Refine.iterations
        (List.length r.Refine.data_clock_fixes)
        (List.length r.Refine.added_exceptions)
  in
  Printf.sprintf
    "{\"name\":%s,\"members\":%s,\"singleton\":%b,\"equivalence\":%s,\"refinement\":%s,\"lineage\":%s}"
    (str g.Merge_flow.grp_mode.Mm_sdc.Mode.mode_name)
    (str_list g.Merge_flow.grp_members)
    (g.Merge_flow.grp_refine = None)
    equiv refinement
    (Prov.to_json g.Merge_flow.grp_prov)

let quarantined_json (q : Merge_flow.quarantined) =
  Printf.sprintf "{\"name\":%s,\"stage\":%s,\"diags\":%s}"
    (str q.Merge_flow.q_name)
    (str (Merge_flow.stage_to_string q.Merge_flow.q_stage))
    (Diag.render_json q.Merge_flow.q_diags)

(* Only outcome-affecting governance decisions are reported here —
   transparent recoveries (retries, absorbed timeouts) live in the
   metrics export, so a run that recovered cleanly audits
   byte-identical to one that never faulted. *)
let governance_json (g : Merge_flow.governed) =
  let event (e : Merge_flow.govern_event) =
    Printf.sprintf
      "{\"stage\":%s,\"scope\":%s,\"action\":%s,\"detail\":%s}"
      (str e.Merge_flow.ge_stage) (str e.Merge_flow.ge_scope)
      (str e.Merge_flow.ge_action) (str e.Merge_flow.ge_detail)
  in
  Printf.sprintf
    "{\"clique_splits\":%d,\"budget_quarantines\":%d,\"conservative_pairs\":%d,\"deadline_hit\":%b,\"events\":[%s]}"
    g.Merge_flow.gov_clique_splits g.Merge_flow.gov_budget_quarantines
    g.Merge_flow.gov_conservative_pairs g.Merge_flow.gov_deadline_hit
    (String.concat "," (List.map event g.Merge_flow.gov_events))

let coverage_json () =
  "{"
  ^ String.concat ","
      (List.map
         (fun name ->
           Printf.sprintf "%s:%d" (str name) (Metrics.get_counter name))
         coverage_counters)
  ^ "}"

let to_json (r : Merge_flow.result) =
  String.concat ""
    [
      "{\"audit_schema_version\":";
      string_of_int schema_version;
      ",\"summary\":";
      summary_json r;
      ",\"mergeability\":";
      mergeability_json r.Merge_flow.mergeability;
      ",\"groups\":[";
      String.concat "," (List.map group_json r.Merge_flow.groups);
      "],\"quarantined\":[";
      String.concat "," (List.map quarantined_json r.Merge_flow.quarantined);
      "],\"degraded\":[";
      String.concat "," (List.map str_list r.Merge_flow.degraded);
      "],\"governance\":";
      governance_json r.Merge_flow.governed;
      ",\"coverage\":";
      coverage_json ();
      "}";
    ]

let write path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n')
