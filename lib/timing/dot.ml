module Design = Mm_netlist.Design

type side = { side_name : string; side_ctx : Context.t; side_rename : string -> string }

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Does [side] propagate, at [pin], an individual clock that renames to
   a merged clock live at [pin] in the merged context? *)
let side_covers (merged : Context.t) side pin =
  let mc = merged.Context.clocks and ic = side.side_ctx.Context.clocks in
  let n = Clock_prop.n_clocks ic in
  let rec go li =
    if li >= n then false
    else if
      Clock_prop.has_clock ic pin li
      &&
      let merged_name = side.side_rename (Clock_prop.clock_name ic li) in
      match Clock_prop.clock_index mc merged_name with
      | Some mi -> Clock_prop.has_clock mc pin mi
      | None -> false
    then true
    else go (li + 1)
  in
  go 0

let export ?(individual = []) ?(clock_network_only = false)
    (merged : Context.t) =
  let graph = merged.Context.graph in
  let design = graph.Graph.design in
  let b = Buffer.create 4096 in
  Buffer.add_string b "digraph timing {\n";
  Buffer.add_string b "  rankdir=LR;\n";
  Buffer.add_string b
    "  node [shape=box, fontsize=9, fontname=\"monospace\"];\n";
  Buffer.add_string b "  edge [fontsize=8, fontname=\"monospace\"];\n";
  let used = Array.make (Graph.n_pins graph) false in
  let clocky pin = Clock_prop.mask_at merged.Context.clocks pin <> 0 in
  let edges = Buffer.create 4096 in
  Graph.iter_arcs graph
    (fun _aid (a : Graph.arc) ->
      let src = a.Graph.a_src and dst = a.Graph.a_dst in
      let on_clock_net = clocky src in
      if (not clock_network_only) || on_clock_net then begin
        used.(src) <- true;
        used.(dst) <- true;
        let style =
          match a.Graph.a_kind with
          | Graph.Comb -> "solid"
          | Graph.Net -> "dashed"
          | Graph.Launch -> "dotted"
        in
        let color, label =
          if not on_clock_net then "gray60", ""
          else begin
            let covering =
              List.filter_map
                (fun side ->
                  if side_covers merged side src then Some side.side_name
                  else None)
                individual
            in
            match covering, individual with
            | [], _ :: _ ->
              (* Clock propagation present only in the merged mode:
                 exactly what data-clock refinement cuts. *)
              "red", "merged-only"
            | [], [] -> "blue", ""
            | ms, _ -> "blue", String.concat "," ms
          end
        in
        Buffer.add_string edges
          (Printf.sprintf "  p%d -> p%d [style=%s, color=%s%s];\n" src dst
             style color
             (if label = "" then ""
              else Printf.sprintf ", label=\"%s\"" (escape label)))
      end);
  Array.iteri
    (fun pin u ->
      if u then begin
        let clocks = Clock_prop.clocks_at merged.Context.clocks pin in
        let label =
          match clocks with
          | [] -> Design.pin_name design pin
          | cs ->
            Printf.sprintf "%s\n{%s}" (Design.pin_name design pin)
              (String.concat "," cs)
        in
        Buffer.add_string b
          (Printf.sprintf "  p%d [label=\"%s\"%s];\n" pin (escape label)
             (if clocks <> [] then ", color=blue" else ""))
      end)
    used;
  Buffer.add_buffer b edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let write path ?individual ?clock_network_only merged =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (export ?individual ?clock_network_only merged))
