(* Interning table mapping packed tag keys to dense small ids.

   The STA propagation stores per-pin tag slabs indexed by these ids
   instead of hashing the sparse packed keys at every pin; the table is
   tiny (one entry per distinct (clock, exception-state, polarity)
   triple seen during one propagation) and append-only. *)

type t = {
  mutable keys : int array;  (* tid -> packed key *)
  mutable n : int;
  idx : (int, int) Hashtbl.t;  (* packed key -> tid *)
}

let create () = { keys = Array.make 16 0; n = 0; idx = Hashtbl.create 64 }

let count t = t.n
let key_of t tid = t.keys.(tid)

let intern t key =
  match Hashtbl.find_opt t.idx key with
  | Some tid -> tid
  | None ->
    let tid = t.n in
    if tid = Array.length t.keys then begin
      let keys = Array.make (2 * tid) 0 in
      Array.blit t.keys 0 keys 0 tid;
      t.keys <- keys
    end;
    t.keys.(tid) <- key;
    t.n <- tid + 1;
    Hashtbl.replace t.idx key tid;
    tid

let find_opt t key = Hashtbl.find_opt t.idx key
