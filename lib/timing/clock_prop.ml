module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode

type t = {
  order : string array;
  index : (string, int) Hashtbl.t;
  masks : int array;
  arrivals : (int, float * float) Hashtbl.t;
      (** key: [pin * 64 + clock_index] *)
}

exception Too_many_clocks of int

let key pin clk = (pin * 64) + clk

let run (g : Graph.t) (cp : Const_prop.t) (mode : Mode.t) =
  let clocks = mode.Mode.clocks in
  let nclk = List.length clocks in
  if nclk > 62 then raise (Too_many_clocks nclk);
  let order = Array.of_list (List.map (fun c -> c.Mode.clk_name) clocks) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace index n i) order;
  let n = Graph.n_pins g in
  let masks = Array.make n 0 in
  let arrivals = Hashtbl.create 256 in
  (* Stop pins per clock: set_clock_sense -stop_propagation. A sense
     without -clock stops every clock at the pin. *)
  let stop = Hashtbl.create 16 in
  List.iter
    (fun (s : Mode.clock_sense) ->
      if s.cs_stop then begin
        let mask =
          match s.cs_clocks with
          | None -> -1
          | Some names ->
            List.fold_left
              (fun acc nm ->
                match Hashtbl.find_opt index nm with
                | Some i -> acc lor (1 lsl i)
                | None -> acc)
              0 names
        in
        List.iter
          (fun pin ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt stop pin) in
            Hashtbl.replace stop pin (prev lor mask))
          s.cs_pins
      end)
    mode.Mode.senses;
  let stopped_mask pin = Option.value ~default:0 (Hashtbl.find_opt stop pin) in
  (* Seed sources. A source pin that carries a constant still defines
     the clock but the clock goes nowhere. *)
  List.iteri
    (fun ci (c : Mode.clock) ->
      List.iter
        (fun src ->
          if Const_prop.pin_active cp src && stopped_mask src land (1 lsl ci) = 0
          then begin
            masks.(src) <- masks.(src) lor (1 lsl ci);
            Hashtbl.replace arrivals (key src ci) (0., 0.)
          end)
        c.Mode.sources)
    clocks;
  (* Topological sweep over enabled Comb/Net arcs. *)
  Array.iter
    (fun pin ->
      if masks.(pin) <> 0 then
        Graph.iter_out g pin (fun aid ->
            if Graph.arc_kind g aid <> Graph.Launch && Const_prop.enabled cp aid
            then begin
              let dst = Graph.arc_dst g aid in
              let incoming = masks.(pin) land lnot (stopped_mask dst) in
              if incoming <> 0 then begin
                masks.(dst) <- masks.(dst) lor incoming;
                for ci = 0 to nclk - 1 do
                  if incoming land (1 lsl ci) <> 0 then begin
                    let smin, smax = Hashtbl.find arrivals (key pin ci) in
                    let dmin = smin +. Graph.arc_dmin g aid
                    and dmax = smax +. Graph.arc_dmax g aid in
                    match Hashtbl.find_opt arrivals (key dst ci) with
                    | None -> Hashtbl.replace arrivals (key dst ci) (dmin, dmax)
                    | Some (emin, emax) ->
                      Hashtbl.replace arrivals (key dst ci)
                        (Float.min emin dmin, Float.max emax dmax)
                  end
                done
              end
            end))
    (Graph.topo g);
  { order; index; masks; arrivals }

let n_clocks t = Array.length t.order
let clock_name t i = t.order.(i)
let clock_index t name = Hashtbl.find_opt t.index name
let mask_at t pin = t.masks.(pin)

let clocks_at t pin =
  let acc = ref [] in
  for i = Array.length t.order - 1 downto 0 do
    if t.masks.(pin) land (1 lsl i) <> 0 then acc := t.order.(i) :: !acc
  done;
  !acc

let has_clock t pin i = t.masks.(pin) land (1 lsl i) <> 0
let arrival t pin i = Hashtbl.find_opt t.arrivals (key pin i)

let mask_of_clock_names t names =
  List.fold_left
    (fun acc nm ->
      match clock_index t nm with Some i -> acc lor (1 lsl i) | None -> acc)
    0 names
