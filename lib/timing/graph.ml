module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell

type arc_kind = Comb | Net | Launch

type unate = Positive | Negative | Non_unate

type arc = {
  a_src : Design.pin_id;
  a_dst : Design.pin_id;
  a_kind : arc_kind;
  a_inst : int;
  a_unate : unate;
  a_dmin : float;
  a_dmax : float;
}

type endpoint = Tgraph.endpoint =
  | Ep_reg of {
      ep_data : Design.pin_id;
      ep_clock : Design.pin_id;
      ep_inst : Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Design.pin_id }

type startpoint = Tgraph.startpoint =
  | Sp_reg of {
      sp_clock : Design.pin_id;
      sp_inst : Design.inst_id;
      sp_outputs : Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Design.pin_id }

type t = {
  design : Design.t;
  tg : Tgraph.t;
  endpoints : endpoint list;
  startpoints : startpoint list;
}

let build design mode =
  let tg = Tgraph.build design mode in
  {
    design;
    tg;
    endpoints = tg.Tgraph.sk.Tgraph.sk_endpoints;
    startpoints = tg.Tgraph.sk.Tgraph.sk_startpoints;
  }

let n_pins t = t.tg.Tgraph.sk.Tgraph.sk_n_pins
let n_arcs t = t.tg.Tgraph.sk.Tgraph.sk_n_arcs

(* Arc scalar accessors over the arena. *)
let arc_src t aid = t.tg.Tgraph.sk.Tgraph.arc_src.(aid)
let arc_dst t aid = t.tg.Tgraph.sk.Tgraph.arc_dst.(aid)
let arc_inst t aid = t.tg.Tgraph.sk.Tgraph.arc_inst.(aid)
let arc_dmin t aid = t.tg.Tgraph.dmin.(aid)
let arc_dmax t aid = t.tg.Tgraph.dmax.(aid)

let kind_of_code k =
  if k = Tgraph.kind_comb then Comb
  else if k = Tgraph.kind_net then Net
  else Launch

let unate_of_code u =
  if u = Tgraph.unate_pos then Positive
  else if u = Tgraph.unate_neg then Negative
  else Non_unate

let arc_kind t aid = kind_of_code t.tg.Tgraph.sk.Tgraph.arc_kind.(aid)
let arc_unate t aid = unate_of_code t.tg.Tgraph.sk.Tgraph.arc_unate.(aid)

let iter_out t pin f =
  let sk = t.tg.Tgraph.sk in
  for k = sk.Tgraph.out_row.(pin) to sk.Tgraph.out_row.(pin + 1) - 1 do
    f sk.Tgraph.out_adj.(k)
  done

let iter_in t pin f =
  let sk = t.tg.Tgraph.sk in
  for k = sk.Tgraph.in_row.(pin) to sk.Tgraph.in_row.(pin + 1) - 1 do
    f sk.Tgraph.in_adj.(k)
  done

let fold_in t pin init f =
  let sk = t.tg.Tgraph.sk in
  let acc = ref init in
  for k = sk.Tgraph.in_row.(pin) to sk.Tgraph.in_row.(pin + 1) - 1 do
    acc := f !acc sk.Tgraph.in_adj.(k)
  done;
  !acc

let find_map_in t pin f =
  let sk = t.tg.Tgraph.sk in
  let lo = sk.Tgraph.in_row.(pin) and hi = sk.Tgraph.in_row.(pin + 1) in
  let rec go k =
    if k >= hi then None
    else
      match f sk.Tgraph.in_adj.(k) with
      | Some _ as r -> r
      | None -> go (k + 1)
  in
  go lo

let topo t = t.tg.Tgraph.sk.Tgraph.topo
let topo_pos t = t.tg.Tgraph.sk.Tgraph.topo_pos
let level t = t.tg.Tgraph.sk.Tgraph.level
let n_levels t = t.tg.Tgraph.sk.Tgraph.n_levels
let broken_arcs t = t.tg.Tgraph.sk.Tgraph.broken
let loads t = t.tg.Tgraph.loads

(* Materialized arc record — cold paths (tests, dot export) only. *)
let arc t aid =
  {
    a_src = arc_src t aid;
    a_dst = arc_dst t aid;
    a_kind = arc_kind t aid;
    a_inst = arc_inst t aid;
    a_unate = arc_unate t aid;
    a_dmin = arc_dmin t aid;
    a_dmax = arc_dmax t aid;
  }

let iter_arcs t f =
  for aid = 0 to n_arcs t - 1 do
    f aid (arc t aid)
  done

let endpoint_pin = function
  | Ep_reg { ep_data; _ } -> ep_data
  | Ep_port { ep_pin } -> ep_pin

let startpoint_pin = function
  | Sp_reg { sp_clock; _ } -> sp_clock
  | Sp_port { sp_pin } -> sp_pin

let endpoint_pins t = List.map endpoint_pin t.endpoints

let is_clock_pin t pin =
  match Design.pin_role t.design pin with
  | Some Lib_cell.Clock_in -> true
  | Some _ | None -> false
