module Mode = Mm_sdc.Mode

type store = { lock : Mutex.t; tbl : (string, Context.t) Hashtbl.t }

type t = { local : (string, Context.t) Hashtbl.t; store : store }

let create () =
  {
    local = Hashtbl.create 8;
    store = { lock = Mutex.create (); tbl = Hashtbl.create 16 };
  }

let fork t = { local = Hashtbl.create 8; store = t.store }

let find t (mode : Mode.t) =
  let name = mode.Mode.mode_name in
  match Hashtbl.find_opt t.local name with
  | Some c -> c
  | None ->
    let s = t.store in
    Mutex.lock s.lock;
    let cached = Hashtbl.find_opt s.tbl name in
    Mutex.unlock s.lock;
    let c =
      match cached with
      | Some c -> c
      | None ->
        (* Built outside the lock: context construction is the expensive
           step and must not serialise the pool. *)
        let c = Context.create mode.Mode.design mode in
        Mutex.lock s.lock;
        let c =
          match Hashtbl.find_opt s.tbl name with
          | Some winner -> winner
          | None ->
            Hashtbl.replace s.tbl name c;
            c
        in
        Mutex.unlock s.lock;
        c
    in
    Hashtbl.replace t.local name c;
    c
