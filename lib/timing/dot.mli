(** Graphviz DOT export of the timing graph with clock-propagation
    attribution ([modemerge merge --dot]).

    Nodes are design pins; pins reached by clocks show their merged
    clock set. Edges are styled by arc kind (cell arcs solid, net arcs
    dashed, launch arcs dotted). When the individual-mode sides are
    supplied, each clock-network edge is attributed: blue with the
    covering mode names when at least one individual mode propagates a
    corresponding clock there, red ["merged-only"] when only the merged
    mode does — the propagation excess that data-clock refinement cuts
    (paper §3.2). *)

type side = {
  side_name : string;  (** individual mode name *)
  side_ctx : Context.t;
  side_rename : string -> string;
      (** individual clock name -> merged clock name *)
}

val export :
  ?individual:side list -> ?clock_network_only:bool -> Context.t -> string
(** DOT text for the merged/emitted mode's graph. [clock_network_only]
    (default false) drops edges whose source carries no clock —
    usually the readable view for non-trivial designs. *)

val write :
  string -> ?individual:side list -> ?clock_network_only:bool -> Context.t -> unit
