(** Tag-based exception matching.

    Each path exception ([set_false_path], [set_multicycle_path],
    [set_min_delay], [set_max_delay]) compiles to a small state machine:
    the [-from] restriction is evaluated when a path tag is seeded at a
    startpoint; each [-through] group advances a progress counter as the
    tag visits pins; the [-to] restriction is evaluated at the endpoint.
    A tag carries, per exception, either [dead] (cannot match) or the
    number of through-groups matched so far.

    Rise/fall restrictions: [-rise_from]/[-fall_from] on a clock select
    the launching register's active edge; on a pin they select the data
    transition at the startpoint. [-rise_to]/[-fall_to] select the data
    transition arriving at the endpoint, which callers track by
    propagating tag polarity through arc unateness (see
    {!Graph.unate}). Tag polarity only needs tracking when
    {!edge_sensitive} holds.

    Whole progress vectors are interned so a tag is just
    (launch clock index, state id) — the representation shared by the
    STA arrival propagation and the relation propagation of the
    mode-merging core.

    The interning tables are the only post-{!prepare} mutable state of
    a context; they are mutex-guarded, so a prepared matcher (and
    therefore a cached {!Context.t}) may be consulted from multiple
    domains of the {!Mm_util.Pool}. State ids are stable: once
    returned, an id denotes the same progress vector forever. *)

type t

val prepare : Graph.t -> Clock_prop.t -> Mm_sdc.Mode.t -> t

val n_exceptions : t -> int
val n_states : t -> int
(** Number of distinct interned progress vectors so far. *)

val edge_sensitive : t -> bool
(** True when any exception carries a rise/fall restriction — callers
    then split seed tags by data polarity. *)

val initial_state :
  t ->
  start_pins:Mm_netlist.Design.pin_id list ->
  launch_clock:int option ->
  ?launch_edge:Mm_netlist.Lib_cell.edge ->
  ?data_edge:Mm_sdc.Mode.edge_sel ->
  unit ->
  int
(** Seed a tag at a startpoint. [start_pins] are the aliases of the
    startpoint (a register's clock pin and outputs, or a port pin);
    [launch_edge] is the launching register's active edge (rising when
    unknown); [data_edge] is the polarity branch of this tag
    ([Any_edge] when polarity is untracked). *)

val advance : t -> int -> Mm_netlist.Design.pin_id -> int
(** [advance t state pin] returns the state after the tag visits [pin]
    (O(1) when the pin occurs in no through list). *)

val matches_at :
  t ->
  int ->
  end_pins:Mm_netlist.Design.pin_id list ->
  capture_clock:int option ->
  ?data_edge:Mm_sdc.Mode.edge_sel ->
  unit ->
  Mm_sdc.Mode.exc list
(** Exceptions fully matched by a tag arriving at an endpoint with the
    given data polarity. *)

val state_at :
  t ->
  setup:bool ->
  int ->
  end_pins:Mm_netlist.Design.pin_id list ->
  capture_clock:int option ->
  ?data_edge:Mm_sdc.Mode.edge_sel ->
  unit ->
  Constraint_state.t
(** [matches_at] combined through {!Constraint_state.of_exceptions}. *)
