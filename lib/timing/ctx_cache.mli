(** Domain-safe analysis-context cache.

    Building a {!Context.t} (graph + constant/clock propagation +
    exception matcher) is the expensive part of every merge-pipeline
    stage, and the same individual mode is needed by many stages — the
    singleton probe, every pairwise mergeability check it appears in,
    and its clique's merge. Historically the stages shared one raw
    [(string, Context.t) Hashtbl.t]; that is not safe once stages run
    on a domain pool.

    A {!t} is a {e per-task handle}: a private, lock-free read-through
    table in front of a mutex-guarded shared store. Lookups hit the
    private table first; misses consult the store under its lock;
    store misses build the context {e outside} the lock (two domains
    may race to build the same context — the first one stored wins and
    the duplicate is dropped, which is harmless because contexts for
    the same mode are interchangeable). {!fork} makes a new handle
    over the same store, which is how the pipeline hands one logical
    cache to a batch of pool tasks.

    Contexts are cached by mode name, so all modes entering one cache
    must have distinct names and belong to the same design — true by
    construction in the merge flow, which derives mode names from
    distinct source files. *)

type t

val create : unit -> t
(** A fresh cache (new shared store, new private table). *)

val fork : t -> t
(** A new handle over the same shared store, with an empty private
    table. Hand one fork to each parallel task. *)

val find : t -> Mm_sdc.Mode.t -> Context.t
(** The cached context for [mode] (keyed by [mode_name]), building and
    publishing it on miss. *)
