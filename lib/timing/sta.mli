(** The static timing analyser.

    Tag-based arrival propagation over the timing graph with wire-load
    delays, followed by setup/hold checks at every endpoint. A tag is
    (launch clock, exception-progress state); per node and tag the
    min/max arrival times are kept. Checks honour exceptions (false
    paths skipped, multicycle cycle adjustment, min/max delay
    overrides), clock-group exclusivity, clock uncertainty and latency
    (ideal or propagated per clock).

    Absolute accuracy is not the goal — Table 6 of the paper needs
    relative STA runtime and endpoint worst-slack agreement between
    individual and merged modes, which this engine provides. *)

type endpoint_slack = {
  es_pin : Mm_netlist.Design.pin_id;
  es_setup : float option;  (** worst setup slack over all timed paths *)
  es_hold : float option;
  es_capture_period : float option;
      (** period of the capture clock of the worst setup path — the
          conformity denominator in Table 6 *)
}

type drc_violation = {
  drv_pin : Mm_netlist.Design.pin_id;
  drv_kind : Mm_sdc.Ast.drc_kind;
  drv_limit : float;
  drv_actual : float;
}

type report = {
  rep_mode : string;
  rep_slacks : endpoint_slack list;
  rep_drc : drc_violation list;
      (** max_transition / max_capacitance limits exceeded *)
  rep_n_tags : int;        (** total tag instances propagated *)
  rep_n_checked : int;     (** endpoint/clock pairs checked *)
  rep_runtime : float;     (** seconds *)
}

(** {1 Arrival propagation}

    Exposed for differential testing: the production engine stores tags
    in a flat {!slab} (interned tag ids chained per pin); the reference
    engine keeps the historical one-Hashtbl-per-pin layout. Both must
    produce identical tag sets and arrivals. *)

type slab
(** Flat per-pin tag storage: (tag key, min arrival, max arrival)
    triples, insertion-ordered per pin. *)

type prop_stats = {
  ps_new_tags : int;    (** distinct (pin, tag) instances created *)
  ps_pins_swept : int;  (** pins visited with at least one tag *)
}

val propagate : ?corner:Corner.t -> Context.t -> slab * prop_stats
(** Seed startpoints and sweep arrivals forward in topological order. *)

val slab_tags :
  slab -> Mm_netlist.Design.pin_id -> (int * float * float) list
(** Tags at a pin as (key, amin, amax), in insertion order. *)

type tag_maps = (int, float * float) Hashtbl.t array

val propagate_reference : ?corner:Corner.t -> Context.t -> tag_maps * int
(** The pre-slab engine, kept as the differential-testing oracle. *)

val slacks_with :
  ?corner:Corner.t ->
  Context.t ->
  (Mm_netlist.Design.pin_id -> (int * float * float) list) ->
  endpoint_slack list
(** Run the endpoint checks over an arbitrary tag provider — lets tests
    compare slacks computed from {!propagate} and
    {!propagate_reference} storage. *)

(** {2 Tag key packing} *)

val tag_key : ?edge:Mm_sdc.Mode.edge_sel -> int -> int -> int
(** [tag_key ~edge clock state] packs (clock index or -1, exception
    state, data polarity) into one int. *)

val tag_clock : int -> int
val tag_state : int -> int
val tag_edge : int -> Mm_sdc.Mode.edge_sel

(** {1 Full analysis} *)

val analyze :
  ?ctx:Context.t ->
  ?corner:Corner.t ->
  Mm_netlist.Design.t ->
  Mm_sdc.Mode.t ->
  report
(** Run a full analysis; [ctx] can be supplied to reuse a prepared
    context, [corner] applies PVT derating (default {!Corner.typical}). *)

val analyze_many :
  ?corner:Corner.t ->
  ?pool:Mm_util.Pool.t ->
  Mm_netlist.Design.t ->
  Mm_sdc.Mode.t list ->
  report list
(** One {!analyze} per mode, reports in input order. Runs the modes as
    independent pool tasks when [pool] is given — each task builds its
    own context, so the reports (and the [sta.*] counters) are
    identical with and without a pool. *)

val analyze_scenarios :
  Mm_netlist.Design.t ->
  modes:Mm_sdc.Mode.t list ->
  corners:Corner.t list ->
  (string * string * report) list
(** One STA per (mode, corner) scenario — the paper's
    [#modes x #corners] product. Returns (mode, corner, report). *)

val worst_setup_by_endpoint : report -> (Mm_netlist.Design.pin_id * float) list
(** Endpoints that have a setup check, with their worst slack. *)

(** {1 Path reporting} *)

type path_step = {
  st_pin : Mm_netlist.Design.pin_id;
  st_incr : float;     (** delay added by the arc into this pin *)
  st_arrival : float;  (** cumulative arrival *)
}

type path = {
  pth_endpoint : Mm_netlist.Design.pin_id;
  pth_launch_clock : string;
  pth_capture_clock : string;
  pth_arrival : float;
  pth_required : float;
  pth_slack : float;
  pth_steps : path_step list;  (** startpoint first *)
}

val worst_paths :
  ?ctx:Context.t ->
  ?corner:Corner.t ->
  ?n:int ->
  Mm_netlist.Design.t ->
  Mm_sdc.Mode.t ->
  path list
(** The [n] (default 3) worst setup paths, each traced arc by arc from
    its startpoint (report_timing style). *)

val path_to_string : Mm_netlist.Design.t -> path -> string
(** Multi-line rendering of one path in the familiar STA report form. *)

val merge_worst : report list -> (Mm_netlist.Design.pin_id, float * float) Hashtbl.t
(** Per endpoint, worst (most negative) setup slack across reports and
    the capture period of that worst path — the per-endpoint view used
    for multi-mode sign-off and QoR conformity. *)

val conformity :
  individual:report list -> merged:report list -> tolerance_frac:float -> float
(** Percentage of endpoints whose merged-mode worst slack deviates from
    the individual-mode worst slack by at most [tolerance_frac] of the
    capture clock period (Table 6's "Conformity" column, with 0.01). *)
