module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Mode = Mm_sdc.Mode
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics

type endpoint_slack = {
  es_pin : Design.pin_id;
  es_setup : float option;
  es_hold : float option;
  es_capture_period : float option;
}

type drc_violation = {
  drv_pin : Design.pin_id;
  drv_kind : Mm_sdc.Ast.drc_kind;
  drv_limit : float;
  drv_actual : float;
}

type report = {
  rep_mode : string;
  rep_slacks : endpoint_slack list;
  rep_drc : drc_violation list;
  rep_n_tags : int;
  rep_n_checked : int;
  rep_runtime : float;
}

(* Design-rule checks against the wire-load model quantities: the
   capacitance a driver sees, and an RC transition estimate
   (drive resistance x load). *)
let drc_checks (ctx : Context.t) =
  let design = ctx.Context.design in
  let loads = Graph.loads ctx.Context.graph in
  List.filter_map
    (fun (l : Mode.drc_limit) ->
      let pin = l.Mode.drcl_pin in
      if loads.(pin) <= 0. then None
      else begin
        let actual =
          match l.Mode.drcl_kind with
          | Mm_sdc.Ast.Max_capacitance -> loads.(pin)
          | Mm_sdc.Ast.Max_transition -> (
            match Design.pin_owner design pin with
            | Design.Inst_pin (inst, _) ->
              (Design.inst_cell design inst).Mm_netlist.Lib_cell.drive_res
              *. loads.(pin)
            | Design.Port_pin _ -> 0.5 *. loads.(pin))
        in
        if actual > l.Mode.drcl_value then
          Some
            {
              drv_pin = pin;
              drv_kind = l.Mode.drcl_kind;
              drv_limit = l.Mode.drcl_value;
              drv_actual = actual;
            }
        else None
      end)
    ctx.Context.mode.Mode.drcs

(* Tag key: launch clock index (-1 for none), exception state id and
   data polarity. *)
let edge_code = function
  | Mode.Any_edge -> 0
  | Mode.Rise_edge -> 1
  | Mode.Fall_edge -> 2

let edge_of_code = function
  | 1 -> Mode.Rise_edge
  | 2 -> Mode.Fall_edge
  | _ -> Mode.Any_edge

let tag_key ?(edge = Mode.Any_edge) clock state =
  (((state * 128) + clock + 1) * 4) + edge_code edge

let tag_clock key = ((key / 4) mod 128) - 1
let tag_state key = key / 4 / 128
let tag_edge key = edge_of_code (key land 3)

let edges_through_unate (u : Graph.unate) e =
  match e with
  | Mode.Any_edge -> [ Mode.Any_edge ]
  | Mode.Rise_edge | Mode.Fall_edge -> (
    match u with
    | Graph.Positive -> [ e ]
    | Graph.Negative ->
      [ (if e = Mode.Rise_edge then Mode.Fall_edge else Mode.Rise_edge) ]
    | Graph.Non_unate -> [ Mode.Rise_edge; Mode.Fall_edge ])

let edge_time (c : Mode.clock) (edge : Lib_cell.edge) =
  let r, f = c.waveform in
  match edge with Lib_cell.Rising -> r | Lib_cell.Falling -> f

(* Clock arrival (insertion delay) at [pin], excluding the edge time:
   source latency plus either the propagated network delay or the ideal
   network latency. *)
let clock_latency_at (ctx : Context.t) ~clock_idx ~pin =
  let name = Clock_prop.clock_name ctx.Context.clocks clock_idx in
  let attr = Mode.attr_of_clock ctx.Context.mode name in
  let v d o = Option.value ~default:d o in
  let src_min = v 0. attr.Mode.src_latency_min
  and src_max = v 0. attr.Mode.src_latency_max in
  if attr.Mode.propagated then
    match Clock_prop.arrival ctx.Context.clocks pin clock_idx with
    | Some (tmin, tmax) -> src_min +. tmin, src_max +. tmax
    | None -> src_min, src_max
  else
    src_min +. v 0. attr.Mode.net_latency_min,
    src_max +. v 0. attr.Mode.net_latency_max

(* Minimal positive separation from a launch edge to a capture edge,
   scanning launch edges over a bounded window (covers rationally
   related periods; irrational ratios fall back to the best found). *)
let setup_separation ~launch_period ~launch_edge ~capture_period ~capture_edge =
  if launch_period <= 0. || capture_period <= 0. then capture_period
  else begin
    let best = ref infinity in
    let eps = 1e-9 in
    for j = 0 to 63 do
      let le = launch_edge +. (float_of_int j *. launch_period) in
      let k = Float.round (Float.ceil ((le -. capture_edge +. eps) /. capture_period)) in
      let ce = capture_edge +. (k *. capture_period) in
      let sep = ce -. le in
      if sep > eps && sep < !best then best := sep
    done;
    if Float.is_finite !best then !best else capture_period
  end

(* ------------------------------------------------------------------ *)
(* Tag storage: a flat slab of (interned tag id, amin, amax) entries
   chained per pin in insertion order, replacing one Hashtbl per pin.
   Lookup is a linear scan of the pin's chain — the number of distinct
   tags per pin is small (clocks x live exception states x polarity) —
   and iteration is allocation-free.                                   *)

type slab = {
  sl_intern : Tag_intern.t;
  sl_first : int array;  (* per pin: first entry or -1 *)
  sl_last : int array;
  mutable sl_tid : int array;
  mutable sl_next : int array;
  mutable sl_amin : float array;
  mutable sl_amax : float array;
  mutable sl_n : int;
}

let slab_create n_pins =
  {
    sl_intern = Tag_intern.create ();
    sl_first = Array.make (max 1 n_pins) (-1);
    sl_last = Array.make (max 1 n_pins) (-1);
    sl_tid = Array.make 64 0;
    sl_next = Array.make 64 (-1);
    sl_amin = Array.make 64 0.;
    sl_amax = Array.make 64 0.;
    sl_n = 0;
  }

let slab_grow sl =
  let cap = Array.length sl.sl_tid in
  if sl.sl_n = cap then begin
    let grow a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 cap;
      b
    in
    sl.sl_tid <- grow sl.sl_tid 0;
    sl.sl_next <- grow sl.sl_next (-1);
    sl.sl_amin <- grow sl.sl_amin 0.;
    sl.sl_amax <- grow sl.sl_amax 0.
  end

(* Merge an arrival into the pin's tag; true when the tag is new. *)
let slab_merge sl pin key amin amax =
  let tid = Tag_intern.intern sl.sl_intern key in
  let rec find e =
    if e < 0 then -1 else if sl.sl_tid.(e) = tid then e else find sl.sl_next.(e)
  in
  let e = find sl.sl_first.(pin) in
  if e < 0 then begin
    slab_grow sl;
    let e = sl.sl_n in
    sl.sl_n <- e + 1;
    sl.sl_tid.(e) <- tid;
    sl.sl_next.(e) <- -1;
    sl.sl_amin.(e) <- amin;
    sl.sl_amax.(e) <- amax;
    if sl.sl_last.(pin) < 0 then sl.sl_first.(pin) <- e
    else sl.sl_next.(sl.sl_last.(pin)) <- e;
    sl.sl_last.(pin) <- e;
    true
  end
  else begin
    let nmin = Float.min sl.sl_amin.(e) amin
    and nmax = Float.max sl.sl_amax.(e) amax in
    sl.sl_amin.(e) <- nmin;
    sl.sl_amax.(e) <- nmax;
    false
  end

let slab_has_tags sl pin = sl.sl_first.(pin) >= 0

(* Iterate the pin's tags in insertion order. Appending entries for
   OTHER pins during iteration is fine (the arrays are re-read through
   the record after each callback). *)
let slab_iter sl pin f =
  let rec go e =
    if e >= 0 then begin
      f (Tag_intern.key_of sl.sl_intern sl.sl_tid.(e)) sl.sl_amin.(e)
        sl.sl_amax.(e);
      go sl.sl_next.(e)
    end
  in
  go sl.sl_first.(pin)

let slab_tags sl pin =
  let acc = ref [] in
  slab_iter sl pin (fun key amin amax -> acc := (key, amin, amax) :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Seeding, shared by the slab engine and the reference oracle.        *)

let seed_tags (ctx : Context.t) ~merge =
  let g = ctx.Context.graph in
  let seed_edges =
    if Excmatch.edge_sensitive ctx.Context.excs then
      [ Mode.Rise_edge; Mode.Fall_edge ]
    else [ Mode.Any_edge ]
  in
  let seed pin ~start_pins ~clock_idx ~launch_edge amin amax =
    List.iter
      (fun edge ->
        let st =
          Excmatch.initial_state ctx.Context.excs ~start_pins
            ~launch_clock:(if clock_idx >= 0 then Some clock_idx else None)
            ~launch_edge ~data_edge:edge ()
        in
        let st = Excmatch.advance ctx.Context.excs st pin in
        merge pin (tag_key ~edge clock_idx st) amin amax)
      seed_edges
  in
  (* Register launch points. *)
  List.iter
    (function
      | Graph.Sp_reg { sp_clock; sp_outputs; sp_edge; _ } ->
        if Const_prop.pin_active ctx.Context.consts sp_clock then begin
          let mask = Clock_prop.mask_at ctx.Context.clocks sp_clock in
          for ci = 0 to Clock_prop.n_clocks ctx.Context.clocks - 1 do
            if mask land (1 lsl ci) <> 0 then begin
              let clk = Context.find_clock ctx ci in
              let el = edge_time clk sp_edge in
              let lmin, lmax = clock_latency_at ctx ~clock_idx:ci ~pin:sp_clock in
              seed sp_clock
                ~start_pins:(sp_clock :: sp_outputs)
                ~clock_idx:ci ~launch_edge:sp_edge (el +. lmin) (el +. lmax)
            end
          done
        end
      | Graph.Sp_port { sp_pin } ->
        if Const_prop.pin_active ctx.Context.consts sp_pin then
          List.iter
            (fun (d : Mode.io_delay) ->
              if d.iod_input && d.iod_pin = sp_pin then begin
                match d.iod_clock with
                | None -> ()
                | Some cname -> (
                  match Clock_prop.clock_index ctx.Context.clocks cname with
                  | None -> ()
                  | Some ci ->
                    let clk = Context.find_clock ctx ci in
                    let el =
                      edge_time clk
                        (if d.iod_clock_fall then Lib_cell.Falling
                         else Lib_cell.Rising)
                    in
                    let amin, amax =
                      match d.iod_minmax with
                      | Mm_sdc.Ast.Min -> el +. d.iod_value, neg_infinity
                      | Mm_sdc.Ast.Max -> infinity, el +. d.iod_value
                      | Mm_sdc.Ast.Both -> el +. d.iod_value, el +. d.iod_value
                    in
                    let amin = if Float.is_finite amin then amin else el +. d.iod_value
                    and amax = if Float.is_finite amax then amax else el +. d.iod_value in
                    seed sp_pin ~start_pins:[ sp_pin ] ~clock_idx:ci
                      ~launch_edge:
                        (if d.iod_clock_fall then Lib_cell.Falling
                         else Lib_cell.Rising)
                      amin amax)
              end)
            ctx.Context.mode.Mode.io_delays)
    g.Graph.startpoints

(* ------------------------------------------------------------------ *)

type prop_stats = {
  ps_new_tags : int;      (* distinct (pin, tag) instances created *)
  ps_pins_swept : int;    (* pins with at least one tag visited *)
}

let propagate ?(corner = Corner.typical) (ctx : Context.t) : slab * prop_stats =
  Mm_util.Chaos.hit "sta.propagate";
  let g = ctx.Context.graph in
  let sl = slab_create (Graph.n_pins g) in
  let n_tags = ref 0 in
  let merge pin key amin amax =
    if slab_merge sl pin key amin amax then incr n_tags
  in
  seed_tags ctx ~merge;
  (* Topological sweep over the arena. *)
  let swept = ref 0 in
  (* Coarse progress: one tracker unit per sweep block, not per pin —
     a mutex per pin would be measurable on million-pin arenas. *)
  let tick_every = 4096 in
  let n_pins = Graph.n_pins g in
  Mm_util.Progress.add_total ~by:((n_pins + tick_every - 1) / tick_every)
    "sta.pins";
  let visited = ref 0 in
  Array.iter
    (fun pin ->
      (* Cooperative cancellation point: the sweep dominates STA cost,
         so a blown budget must be observable from inside it. *)
      Mm_util.Govern.checkpoint ();
      incr visited;
      if !visited mod tick_every = 0 then Mm_util.Progress.tick "sta.pins";
      if slab_has_tags sl pin then begin
        incr swept;
        Graph.iter_out g pin (fun aid ->
            if Const_prop.enabled ctx.Context.consts aid then begin
              (* Data tags do not re-enter the clock network through a
                 register clock pin: launch arcs only carry tags seeded
                 at their own clock pin. *)
              let dst = Graph.arc_dst g aid in
              let dmin = Graph.arc_dmin g aid *. corner.Corner.derate_min
              and dmax = Graph.arc_dmax g aid *. corner.Corner.derate_max in
              let unate = Graph.arc_unate g aid in
              slab_iter sl pin (fun key amin amax ->
                  let st = tag_state key in
                  let st' = Excmatch.advance ctx.Context.excs st dst in
                  List.iter
                    (fun edge ->
                      merge dst
                        (tag_key ~edge (tag_clock key) st')
                        (amin +. dmin) (amax +. dmax))
                    (edges_through_unate unate (tag_edge key)))
            end)
      end)
    (Graph.topo g);
  Mm_util.Progress.finish "sta.pins";
  sl, { ps_new_tags = !n_tags; ps_pins_swept = !swept }

(* The per-pin Hashtbl engine the slab replaced, kept verbatim as the
   differential-testing oracle for @sta-equiv: same seeds, same sweep,
   independent storage and merge bookkeeping. *)
type tag_maps = (int, float * float) Hashtbl.t array

let propagate_reference ?(corner = Corner.typical) (ctx : Context.t) :
    tag_maps * int =
  let g = ctx.Context.graph in
  let n = Graph.n_pins g in
  let tags : tag_maps = Array.init n (fun _ -> Hashtbl.create 1) in
  let n_tags = ref 0 in
  let merge pin key amin amax =
    match Hashtbl.find_opt tags.(pin) key with
    | None ->
      Hashtbl.replace tags.(pin) key (amin, amax);
      incr n_tags
    | Some (emin, emax) ->
      let nmin = Float.min emin amin and nmax = Float.max emax amax in
      if nmin < emin || nmax > emax then
        Hashtbl.replace tags.(pin) key (nmin, nmax)
  in
  seed_tags ctx ~merge;
  Array.iter
    (fun pin ->
      Mm_util.Govern.checkpoint ();
      if Hashtbl.length tags.(pin) > 0 then
        Graph.iter_out g pin (fun aid ->
            if Const_prop.enabled ctx.Context.consts aid then begin
              let dst = Graph.arc_dst g aid in
              let dmin = Graph.arc_dmin g aid *. corner.Corner.derate_min
              and dmax = Graph.arc_dmax g aid *. corner.Corner.derate_max in
              let unate = Graph.arc_unate g aid in
              Hashtbl.iter
                (fun key (amin, amax) ->
                  let st = tag_state key in
                  let st' = Excmatch.advance ctx.Context.excs st dst in
                  List.iter
                    (fun edge ->
                      merge dst
                        (tag_key ~edge (tag_clock key) st')
                        (amin +. dmin) (amax +. dmax))
                    (edges_through_unate unate (tag_edge key)))
                tags.(pin)
            end))
    (Graph.topo g);
  tags, !n_tags

(* ------------------------------------------------------------------ *)

type check_accum = {
  mutable worst_setup : float option;
  mutable worst_hold : float option;
  mutable capture_period : float option;
}

let update_setup acc slack period =
  match acc.worst_setup with
  | None ->
    acc.worst_setup <- Some slack;
    acc.capture_period <- Some period
  | Some w ->
    if slack < w then begin
      acc.worst_setup <- Some slack;
      acc.capture_period <- Some period
    end

let update_hold acc slack =
  match acc.worst_hold with
  | None -> acc.worst_hold <- Some slack
  | Some w -> if slack < w then acc.worst_hold <- Some slack

(* Multicycle multipliers applicable to a matched exception list. *)
let mcp_multipliers excs =
  let setup_mult = ref 1 and hold_mult = ref 0 in
  List.iter
    (fun (e : Mode.exc) ->
      match e.exc_kind with
      | Mode.Multicycle { mult; _ } ->
        if e.exc_setup then setup_mult := max !setup_mult mult;
        if e.exc_hold && not e.exc_setup then hold_mult := max !hold_mult (mult - 1)
      | Mode.False_path | Mode.Min_delay _ | Mode.Max_delay _ -> ())
    excs;
  !setup_mult, !hold_mult

(* [iter_tags pin f] feeds every (key, amin, amax) at the pin to [f] —
   the check phase is storage-agnostic so the slab engine and any
   oracle can share it. *)
let check_endpoint ?(corner = Corner.typical) (ctx : Context.t) iter_tags
    n_checked ep acc =
  let ep_pin = Graph.endpoint_pin ep in
  let end_pins = Context.endpoint_alias_pins ctx ep in
  let captures = Context.capture_clocks_of_endpoint ctx ep in
  let setup_margin, hold_margin =
    match ep with
    | Graph.Ep_reg { ep_setup; ep_hold; _ } ->
      ep_setup +. corner.Corner.extra_setup, ep_hold +. corner.Corner.extra_hold
    | Graph.Ep_port _ -> corner.Corner.extra_setup, corner.Corner.extra_hold
  in
  let capture_edge_kind =
    match ep with
    | Graph.Ep_reg { ep_edge; _ } -> ep_edge
    | Graph.Ep_port _ -> Lib_cell.Rising
  in
  (* Output-delay margins per capture clock for port endpoints. *)
  let out_delay_max cj =
    match ep with
    | Graph.Ep_reg _ -> 0.
    | Graph.Ep_port { ep_pin } ->
      List.fold_left
        (fun acc (d : Mode.io_delay) ->
          if
            (not d.iod_input) && d.iod_pin = ep_pin
            && d.iod_clock
               = Some (Clock_prop.clock_name ctx.Context.clocks cj)
            && (d.iod_minmax = Mm_sdc.Ast.Max || d.iod_minmax = Mm_sdc.Ast.Both)
          then Float.max acc d.iod_value
          else acc)
        0. ctx.Context.mode.Mode.io_delays
  in
  iter_tags ep_pin (fun key amin amax ->
      let ci = tag_clock key and st = tag_state key in
      if ci >= 0 then
        List.iter
          (fun cj ->
            if not (Context.clocks_exclusive ctx ci cj) then begin
              incr n_checked;
              let matched =
                Excmatch.matches_at ctx.Context.excs st ~end_pins
                  ~capture_clock:(Some cj) ~data_edge:(tag_edge key) ()
              in
              let launch_clk = Context.find_clock ctx ci
              and capture_clk = Context.find_clock ctx cj in
              let launch_edge =
                (* The edge offset embedded in the tag's arrival: the
                   launching register's active edge, recovered from the
                   startpoint; approximated by the rising edge when the
                   tag came from an input delay. *)
                edge_time launch_clk Lib_cell.Rising
              in
              let capture_edge = edge_time capture_clk capture_edge_kind in
              let sep =
                setup_separation ~launch_period:launch_clk.Mode.period
                  ~launch_edge ~capture_period:capture_clk.Mode.period
                  ~capture_edge
              in
              let cap_lat_min, cap_lat_max =
                match ep with
                | Graph.Ep_reg { ep_clock; _ } ->
                  clock_latency_at ctx ~clock_idx:cj ~pin:ep_clock
                | Graph.Ep_port _ -> 0., 0.
              in
              let attr =
                Mode.attr_of_clock ctx.Context.mode capture_clk.Mode.clk_name
              in
              let unc_setup =
                Option.value ~default:0. attr.Mode.uncertainty_setup
              and unc_hold = Option.value ~default:0. attr.Mode.uncertainty_hold in
              (* Setup / max-path analysis. *)
              (match Constraint_state.of_exceptions ~setup:true matched with
              | Constraint_state.False_path | Constraint_state.Disabled -> ()
              | Constraint_state.Max_delay_bound v ->
                update_setup acc (v -. amax) capture_clk.Mode.period
              | Constraint_state.Min_delay_bound _ -> ()
              | Constraint_state.Valid | Constraint_state.Multicycle _ ->
                let setup_mult, _ = mcp_multipliers matched in
                let sep =
                  sep
                  +. (float_of_int (setup_mult - 1) *. capture_clk.Mode.period)
                in
                let required =
                  launch_edge +. sep +. cap_lat_min -. setup_margin
                  -. unc_setup -. out_delay_max cj
                in
                (* [amax] already contains the launch edge, so remove it
                   from the required side via [launch_edge]'s presence
                   in both. *)
                update_setup acc (required -. amax) capture_clk.Mode.period);
              (* Hold / min-path analysis. *)
              match Constraint_state.of_exceptions ~setup:false matched with
              | Constraint_state.False_path | Constraint_state.Disabled -> ()
              | Constraint_state.Min_delay_bound v -> update_hold acc (amin -. v)
              | Constraint_state.Max_delay_bound _ -> ()
              | Constraint_state.Valid | Constraint_state.Multicycle _ ->
                let setup_mult, hold_mult = mcp_multipliers matched in
                let sep_setup =
                  sep
                  +. (float_of_int (setup_mult - 1) *. capture_clk.Mode.period)
                in
                let hold_edge =
                  sep_setup -. capture_clk.Mode.period
                  -. (float_of_int hold_mult *. capture_clk.Mode.period)
                in
                let required =
                  launch_edge +. hold_edge +. cap_lat_max +. hold_margin
                  +. unc_hold
                in
                update_hold acc (amin -. required)
            end)
          captures)

let slacks_of ?corner (ctx : Context.t) iter_tags n_checked =
  List.map
    (fun ep ->
      let acc =
        { worst_setup = None; worst_hold = None; capture_period = None }
      in
      check_endpoint ?corner ctx iter_tags n_checked ep acc;
      {
        es_pin = Graph.endpoint_pin ep;
        es_setup = acc.worst_setup;
        es_hold = acc.worst_hold;
        es_capture_period = acc.capture_period;
      })
    ctx.Context.graph.Graph.endpoints

let slacks_with ?corner (ctx : Context.t) tags_at =
  let iter pin f =
    List.iter (fun (key, amin, amax) -> f key amin amax) (tags_at pin)
  in
  slacks_of ?corner ctx iter (ref 0)

let analyze ?ctx ?(corner = Corner.typical) design mode =
  let (slacks, drc, n_tags, n_checked), runtime =
    Obs.timed ~attrs:[ "mode", mode.Mode.mode_name ] "sta.analyze" @@ fun () ->
    let ctx = match ctx with Some c -> c | None -> Context.create design mode in
    let (sl, stats) =
      Obs.with_span "sta.propagate" (fun () -> propagate ~corner ctx)
    in
    let n_checked = ref 0 in
    let slacks =
      Obs.with_span "sta.check" @@ fun () ->
      slacks_of ~corner ctx (fun pin f -> slab_iter sl pin f) n_checked
    in
    Metrics.incr ~by:stats.ps_new_tags "sta.tags_propagated";
    Metrics.incr ~by:stats.ps_pins_swept "sta.pins_repropagated";
    Metrics.incr ~by:!n_checked "sta.endpoints_checked";
    Obs.record_gc_metrics ();
    slacks, drc_checks ctx, stats.ps_new_tags, !n_checked
  in
  {
    rep_mode = mode.Mode.mode_name;
    rep_slacks = slacks;
    rep_drc = drc;
    rep_n_tags = n_tags;
    rep_n_checked = n_checked;
    rep_runtime = runtime;
  }

(* Per-mode STA is embarrassingly parallel: each task builds its own
   context over the shared compiled skeleton, so tasks share nothing
   mutable but the (immutable) design and arena. *)
let analyze_many ?corner ?pool design modes =
  let one (m : Mode.t) = analyze ?corner design m in
  match pool with
  | Some pool -> Mm_util.Pool.map pool one modes
  | None -> List.map one modes

let analyze_scenarios design ~modes ~corners =
  List.concat_map
    (fun (m : Mode.t) ->
      let ctx = Context.create design m in
      List.map
        (fun (c : Corner.t) ->
          m.Mode.mode_name, c.Corner.corner_name, analyze ~ctx ~corner:c design m)
        corners)
    modes

(* ------------------------------------------------------------------ *)
(* Path reporting                                                      *)

type path_step = {
  st_pin : Design.pin_id;
  st_incr : float;
  st_arrival : float;
}

type path = {
  pth_endpoint : Design.pin_id;
  pth_launch_clock : string;
  pth_capture_clock : string;
  pth_arrival : float;
  pth_required : float;
  pth_slack : float;
  pth_steps : path_step list;
}

(* Setup checks of one endpoint with full detail (tag and capture kept),
   mirroring the max-path side of [check_endpoint]. *)
let setup_checks_detailed (ctx : Context.t) ~corner sl ep =
  let ep_pin = Graph.endpoint_pin ep in
  let end_pins = Context.endpoint_alias_pins ctx ep in
  let captures = Context.capture_clocks_of_endpoint ctx ep in
  let setup_margin =
    match ep with
    | Graph.Ep_reg { ep_setup; _ } -> ep_setup +. corner.Corner.extra_setup
    | Graph.Ep_port _ -> corner.Corner.extra_setup
  in
  let capture_edge_kind =
    match ep with
    | Graph.Ep_reg { ep_edge; _ } -> ep_edge
    | Graph.Ep_port _ -> Lib_cell.Rising
  in
  let out_delay_max cj =
    match ep with
    | Graph.Ep_reg _ -> 0.
    | Graph.Ep_port { ep_pin } ->
      List.fold_left
        (fun acc (d : Mode.io_delay) ->
          if
            (not d.iod_input) && d.iod_pin = ep_pin
            && d.iod_clock = Some (Clock_prop.clock_name ctx.Context.clocks cj)
            && (d.iod_minmax = Mm_sdc.Ast.Max || d.iod_minmax = Mm_sdc.Ast.Both)
          then Float.max acc d.iod_value
          else acc)
        0. ctx.Context.mode.Mode.io_delays
  in
  let results = ref [] in
  slab_iter sl ep_pin (fun key _amin amax ->
      let ci = tag_clock key and st = tag_state key in
      if ci >= 0 then
        List.iter
          (fun cj ->
            if not (Context.clocks_exclusive ctx ci cj) then begin
              let matched =
                Excmatch.matches_at ctx.Context.excs st ~end_pins
                  ~capture_clock:(Some cj) ~data_edge:(tag_edge key) ()
              in
              let launch_clk = Context.find_clock ctx ci
              and capture_clk = Context.find_clock ctx cj in
              let launch_edge = edge_time launch_clk Lib_cell.Rising in
              let capture_edge = edge_time capture_clk capture_edge_kind in
              let sep =
                setup_separation ~launch_period:launch_clk.Mode.period
                  ~launch_edge ~capture_period:capture_clk.Mode.period
                  ~capture_edge
              in
              let cap_lat_min, _ =
                match ep with
                | Graph.Ep_reg { ep_clock; _ } ->
                  clock_latency_at ctx ~clock_idx:cj ~pin:ep_clock
                | Graph.Ep_port _ -> 0., 0.
              in
              let attr =
                Mode.attr_of_clock ctx.Context.mode capture_clk.Mode.clk_name
              in
              let unc_setup =
                Option.value ~default:0. attr.Mode.uncertainty_setup
              in
              match Constraint_state.of_exceptions ~setup:true matched with
              | Constraint_state.False_path | Constraint_state.Disabled
              | Constraint_state.Min_delay_bound _ -> ()
              | Constraint_state.Max_delay_bound v ->
                results := (v -. amax, v, amax, key, cj) :: !results
              | Constraint_state.Valid | Constraint_state.Multicycle _ ->
                let setup_mult, _ = mcp_multipliers matched in
                let sep =
                  sep
                  +. (float_of_int (setup_mult - 1) *. capture_clk.Mode.period)
                in
                let required =
                  launch_edge +. sep +. cap_lat_min -. setup_margin
                  -. unc_setup -. out_delay_max cj
                in
                results := (required -. amax, required, amax, key, cj) :: !results
            end)
          captures)
  |> ignore;
  !results

(* Walk backwards through the tag slab, matching arrival arithmetic to
   recover the worst path's arcs. *)
let backtrack (ctx : Context.t) ~corner sl ep_pin key arrival =
  let g = ctx.Context.graph in
  let eps = 1e-9 in
  let rec go pin key arrival acc =
    let pred =
      Graph.find_map_in g pin (fun aid ->
          if not (Const_prop.enabled ctx.Context.consts aid) then None
          else begin
            let delay = Graph.arc_dmax g aid *. corner.Corner.derate_max in
            let src = Graph.arc_src g aid in
            let unate = Graph.arc_unate g aid in
            List.find_map
              (fun (key', _, amax') ->
                if
                  tag_clock key' = tag_clock key
                  && Excmatch.advance ctx.Context.excs (tag_state key') pin
                     = tag_state key
                  && List.mem (tag_edge key)
                       (edges_through_unate unate (tag_edge key'))
                  && Float.abs (amax' +. delay -. arrival) < eps
                then Some (src, key', amax', delay)
                else None)
              (slab_tags sl src)
          end)
    in
    match pred with
    | Some (src, key', arrival', delay) ->
      go src key' arrival'
        ({ st_pin = pin; st_incr = delay; st_arrival = arrival } :: acc)
    | None -> { st_pin = pin; st_incr = 0.; st_arrival = arrival } :: acc
  in
  go ep_pin key arrival []

let worst_paths ?ctx ?(corner = Corner.typical) ?(n = 3) design mode =
  let ctx = match ctx with Some c -> c | None -> Context.create design mode in
  let sl, _ = propagate ~corner ctx in
  let candidates =
    List.concat_map
      (fun ep ->
        List.map
          (fun (slack, required, amax, key, cj) ->
            ep, slack, required, amax, key, cj)
          (setup_checks_detailed ctx ~corner sl ep))
      ctx.Context.graph.Graph.endpoints
  in
  let sorted =
    List.sort
      (fun (_, s1, _, _, _, _) (_, s2, _, _, _, _) -> Float.compare s1 s2)
      candidates
  in
  List.filteri (fun i _ -> i < n) sorted
  |> List.map (fun (ep, slack, required, amax, key, cj) ->
         let ep_pin = Graph.endpoint_pin ep in
         {
           pth_endpoint = ep_pin;
           pth_launch_clock =
             Clock_prop.clock_name ctx.Context.clocks (tag_clock key);
           pth_capture_clock = Clock_prop.clock_name ctx.Context.clocks cj;
           pth_arrival = amax;
           pth_required = required;
           pth_slack = slack;
           pth_steps = backtrack ctx ~corner sl ep_pin key amax;
         })

let path_to_string design p =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match p.pth_steps with
  | first :: _ -> out "Startpoint: %s\n" (Design.pin_name design first.st_pin)
  | [] -> ());
  out "Endpoint:   %s\n" (Design.pin_name design p.pth_endpoint);
  out "Launch clock: %s   Capture clock: %s\n" p.pth_launch_clock
    p.pth_capture_clock;
  out "  %-32s %8s %8s\n" "point" "incr" "path";
  List.iter
    (fun s ->
      out "  %-32s %8.3f %8.3f\n"
        (Design.pin_name design s.st_pin)
        s.st_incr s.st_arrival)
    p.pth_steps;
  out "  %-32s %8s %8.3f\n" "data arrival time" "" p.pth_arrival;
  out "  %-32s %8s %8.3f\n" "data required time" "" p.pth_required;
  out "  %-32s %8s %8.3f (%s)\n" "slack" "" p.pth_slack
    (if p.pth_slack >= 0. then "MET" else "VIOLATED");
  Buffer.contents buf

let worst_setup_by_endpoint rep =
  List.filter_map
    (fun es ->
      match es.es_setup with Some s -> Some (es.es_pin, s) | None -> None)
    rep.rep_slacks

let merge_worst reports =
  let table = Hashtbl.create 256 in
  List.iter
    (fun rep ->
      List.iter
        (fun es ->
          match es.es_setup with
          | None -> ()
          | Some s -> (
            let period = Option.value ~default:1. es.es_capture_period in
            match Hashtbl.find_opt table es.es_pin with
            | None -> Hashtbl.replace table es.es_pin (s, period)
            | Some (w, _) when s < w -> Hashtbl.replace table es.es_pin (s, period)
            | Some _ -> ()))
        rep.rep_slacks)
    reports;
  table

let conformity ~individual ~merged ~tolerance_frac =
  let ind = merge_worst individual and mrg = merge_worst merged in
  let total = ref 0 and ok = ref 0 in
  Hashtbl.iter
    (fun pin (si, period) ->
      incr total;
      match Hashtbl.find_opt mrg pin with
      | None -> () (* endpoint unconstrained in merged mode: non-conforming *)
      | Some (sm, _) ->
        if Float.abs (sm -. si) <= tolerance_frac *. period then incr ok)
    ind;
  (* Endpoints timed only in the merged mode also count against. *)
  Hashtbl.iter
    (fun pin _ -> if not (Hashtbl.mem ind pin) then incr total)
    mrg;
  if !total = 0 then 100. else 100. *. float_of_int !ok /. float_of_int !total
