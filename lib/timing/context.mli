(** Per-(design, mode) analysis context.

    Bundles the timing graph, constant propagation, clock propagation
    and the prepared exception matcher — everything both the STA engine
    and the mode-merging relation comparison need. *)

type t = {
  design : Mm_netlist.Design.t;
  mode : Mm_sdc.Mode.t;
  graph : Graph.t;
  consts : Const_prop.t;
  clocks : Clock_prop.t;
  excs : Excmatch.t;
  exclusive : int array;
      (** per clock index: bitmask of clocks it must not be timed
          against (from set_clock_groups) *)
}

val create : Mm_netlist.Design.t -> Mm_sdc.Mode.t -> t

val with_exceptions : t -> Mm_sdc.Mode.t -> t
(** [with_exceptions t mode] swaps [mode] into the context, re-preparing
    only the exception matcher and clock-group exclusivity; the timing
    graph, constant propagation and clock propagation are reused as-is.
    Sound only when [mode] agrees with [t.mode] on everything those
    layers read: cases, disables, environment constraints and clock
    definitions — the refinement loop's situation, where iterations
    differ only by appended exceptions. *)

val clocks_exclusive : t -> int -> int -> bool

val find_clock : t -> int -> Mm_sdc.Mode.clock
(** Clock record by propagation index. *)

val capture_clocks_of_endpoint : t -> Graph.endpoint -> int list
(** Clock indices that can capture at this endpoint: the clocks
    reaching a register's clock pin, or the clocks referenced by the
    output delays on a port. *)

val endpoint_alias_pins : t -> Graph.endpoint -> Mm_netlist.Design.pin_id list
(** Pins by which exceptions may address the endpoint (data pin and
    port pin). *)
