module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Logic = Mm_netlist.Logic
module Mode = Mm_sdc.Mode

type t = {
  values : Logic.tri array;
  arc_enabled : bool array;
  pin_disabled : bool array;
}

let run (g : Graph.t) (mode : Mode.t) =
  let design = g.Graph.design in
  let n = Graph.n_pins g in
  let values = Array.make n Logic.X in
  let forced = Array.make n false in
  List.iter
    (fun (pin, v) ->
      values.(pin) <- Logic.tri_of_bool v;
      forced.(pin) <- true)
    mode.Mode.cases;
  (* Propagate constants in topological order. Forced pins keep their
     case value regardless of drivers. *)
  Array.iter
    (fun pin ->
      if not forced.(pin) then begin
        match Design.pin_owner design pin with
        | Design.Port_pin _ -> () (* inputs unknown unless cased *)
        | Design.Inst_pin (inst, idx) ->
          let cell = Design.inst_cell design inst in
          if cell.Lib_cell.pins.(idx).Lib_cell.dir = Lib_cell.Output then begin
            (* Sequential outputs stay X; combinational outputs evaluate
               their function. *)
            match Lib_cell.function_of_output cell idx with
            | Some f ->
              let env i = values.(Design.inst_pin design inst i) in
              values.(pin) <- Logic.eval env f
            | None -> ()
          end
          else begin
            (* Input pin: copy the net driver's value. *)
            match Design.pin_net design pin with
            | None -> ()
            | Some net -> (
              match Design.net_driver design net with
              | Some drv when drv <> pin -> values.(pin) <- values.(drv)
              | Some _ | None -> ())
          end
      end)
    (Graph.topo g);
  (* Disables. *)
  let pin_disabled = Array.make n false in
  let arc_disabled = Hashtbl.create 16 in
  List.iter
    (function
      | Mode.Dis_pin pin -> pin_disabled.(pin) <- true
      | Mode.Dis_inst (inst, from_, to_) ->
        let cell = Design.inst_cell design inst in
        let matches name spec =
          match spec with None -> true | Some s -> String.equal s name
        in
        for aid = 0 to Graph.n_arcs g - 1 do
          if Graph.arc_inst g aid = inst && Graph.arc_kind g aid <> Graph.Net
          then begin
            let pin_name_of p =
              match Design.pin_owner design p with
              | Design.Inst_pin (_, i) ->
                cell.Lib_cell.pins.(i).Lib_cell.pin_name
              | Design.Port_pin _ -> ""
            in
            if
              matches (pin_name_of (Graph.arc_src g aid)) from_
              && matches (pin_name_of (Graph.arc_dst g aid)) to_
            then Hashtbl.replace arc_disabled aid ()
          end
        done)
    mode.Mode.disables;
  let broken = Hashtbl.create 16 in
  List.iter (fun aid -> Hashtbl.replace broken aid ()) (Graph.broken_arcs g);
  (* Arc enablement. *)
  let arc_enabled =
    Array.init (Graph.n_arcs g) (fun aid ->
        let src = Graph.arc_src g aid and dst = Graph.arc_dst g aid in
        if
          Hashtbl.mem arc_disabled aid
          || Hashtbl.mem broken aid
          || pin_disabled.(src)
          || pin_disabled.(dst)
          || values.(src) <> Logic.X
          || values.(dst) <> Logic.X
        then false
        else
          match Graph.arc_kind g aid with
          | Graph.Net | Graph.Launch -> true
          | Graph.Comb -> (
            match Design.pin_owner design dst with
            | Design.Inst_pin (inst, out_idx) -> (
              let cell = Design.inst_cell design inst in
              match Lib_cell.function_of_output cell out_idx with
              | Some f -> (
                let env i = values.(Design.inst_pin design inst i) in
                match Design.pin_owner design src with
                | Design.Inst_pin (_, in_idx) -> Logic.observable env f in_idx
                | Design.Port_pin _ -> true)
              | None -> true)
            | Design.Port_pin _ -> true))
  in
  { values; arc_enabled; pin_disabled }

let value t pin = t.values.(pin)
let enabled t aid = t.arc_enabled.(aid)

let pin_active t pin =
  (not t.pin_disabled.(pin)) && t.values.(pin) = Mm_netlist.Logic.X
