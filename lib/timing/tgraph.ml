module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Wire_load = Mm_netlist.Wire_load
module Mode = Mm_sdc.Mode
module Obs = Mm_util.Obs

(* Arc kinds and unateness are stored as small int codes in the flat
   arrays; {!Graph} re-exports them as variants. *)
let kind_comb = 0
let kind_net = 1
let kind_launch = 2

let unate_pos = 0
let unate_neg = 1
let unate_non = 2

type endpoint =
  | Ep_reg of {
      ep_data : Design.pin_id;
      ep_clock : Design.pin_id;
      ep_inst : Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Design.pin_id }

type startpoint =
  | Sp_reg of {
      sp_clock : Design.pin_id;
      sp_inst : Design.inst_id;
      sp_outputs : Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Design.pin_id }

(* Unateness of [f] in input [i], decided by exhaustive evaluation over
   the (small) support of the cell function. The variable-to-bit index
   map is precomputed once so the 2^n mask loop stays O(2^n) instead of
   O(2^n * n). *)
let unateness f i =
  let support = Mm_netlist.Logic.support f in
  if not (List.mem i support) then unate_non
  else begin
    let others = List.filter (fun j -> j <> i) support in
    let n = List.length others in
    let maxv = List.fold_left max i support in
    let bit_of = Array.make (maxv + 1) (-1) in
    List.iteri (fun k j -> bit_of.(j) <- k) others;
    let can_pos = ref true and can_neg = ref true in
    for mask = 0 to (1 lsl n) - 1 do
      let env_with vi j =
        if j = i then vi
        else
          match if j >= 0 && j <= maxv then bit_of.(j) else -1 with
          | -1 -> Mm_netlist.Logic.X
          | k ->
            if mask land (1 lsl k) <> 0 then Mm_netlist.Logic.T
            else Mm_netlist.Logic.F
      in
      let f0 = Mm_netlist.Logic.eval (env_with Mm_netlist.Logic.F) f
      and f1 = Mm_netlist.Logic.eval (env_with Mm_netlist.Logic.T) f in
      (match f0, f1 with
      | Mm_netlist.Logic.T, Mm_netlist.Logic.F -> can_pos := false
      | Mm_netlist.Logic.F, Mm_netlist.Logic.T -> can_neg := false
      | _ -> ())
    done;
    match !can_pos, !can_neg with
    | true, false -> unate_pos
    | false, true -> unate_neg
    | true, true | false, false -> unate_non
  end

let min_derate = 0.8
let default_port_drive = 0.5 (* ns/pF when no set_drive given *)
let transition_delay_factor = 0.3

(* ------------------------------------------------------------------ *)
(* Mode-independent skeleton: arc structure, adjacency, topological
   order and the static parts of the load model.                       *)

type skeleton = {
  sk_design : Design.t;
  sk_n_pins : int;
  sk_n_arcs : int;
  (* One slot per arc, indexed by arc id. *)
  arc_src : int array;
  arc_dst : int array;
  arc_kind : int array;  (* kind_* codes *)
  arc_inst : int array;
  arc_unate : int array;  (* unate_* codes *)
  (* Delay-model statics: base intrinsic delay, the drive-resistance
     multiplier on the driven load (cell arcs), the lumped capacitance
     a driving port sees (net arcs), and the load-model entry of the
     arc's driver pin. *)
  arc_base : float array;
  arc_scale : float array;
  arc_caps : float array;
  arc_ldm : int array;
  (* CSR adjacency. Row [row.(p) .. row.(p+1)-1] holds the arc ids
     leaving (entering) pin p in descending id order — the iteration
     order of the adjacency lists this arena replaced, which downstream
     tie-breaks (topo queue, path backtracking) depend on. *)
  out_row : int array;
  out_adj : int array;
  in_row : int array;
  in_adj : int array;
  topo : int array;
  topo_pos : int array;
  (* Levelization of the acyclic core: longest-path depth from any
     source, clamped across broken-loop remnants. *)
  level : int array;
  n_levels : int;
  broken : int list;
  sk_endpoints : endpoint list;
  sk_startpoints : startpoint list;
  (* Load-model entries: for every pin whose driven load matters (cell
     arc drivers and net drivers), the static sink capacitance, the
     wire-load estimate, and the sink pins (for per-mode set_load
     accumulation, in net_sinks order). *)
  ldm_pin : int array;
  ldm_pin_caps : float array;
  ldm_wire_cap : float array;
  ldm_sink_row : int array;
  ldm_sinks : int array;
  (* Load-model entries that fill the per-mode [loads] array, in
     iter_nets driver order. *)
  ldm_drivers : int array;
}

(* The per-(skeleton, mode) overlay: everything delay. *)
type t = {
  sk : skeleton;
  dmin : float array;
  dmax : float array;
  loads : float array;
}

(* Environment constraint lookup tables built from the mode. *)
type env_tables = {
  extra_load : (Design.pin_id, float) Hashtbl.t;
  port_drive : (Design.pin_id, float) Hashtbl.t;
  port_transition : (Design.pin_id, float) Hashtbl.t;
}

let env_tables (mode : Mode.t) =
  let extra_load = Hashtbl.create 16
  and port_drive = Hashtbl.create 16
  and port_transition = Hashtbl.create 16 in
  List.iter
    (fun (e : Mode.env_constraint) ->
      let table =
        match e.envc_kind with
        | Mm_sdc.Ast.Load -> extra_load
        | Mm_sdc.Ast.Drive -> port_drive
        | Mm_sdc.Ast.Input_transition -> port_transition
      in
      (* For max-delay purposes the max value dominates; store the
         worst (largest). *)
      let prev = Option.value ~default:0. (Hashtbl.find_opt table e.envc_pin) in
      Hashtbl.replace table e.envc_pin (Float.max prev e.envc_value))
    mode.Mode.envs;
  { extra_load; port_drive; port_transition }

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

type pre_arc = {
  p_src : int;
  p_dst : int;
  p_kind : int;
  p_inst : int;
  p_unate : int;
  p_base : float;
  p_scale : float;
  p_caps : float;
  p_ldm : int;
}

let compile design =
  let wlm = Wire_load.default in
  let n = Design.n_pins design in
  (* Load-model entries, deduplicated per pin. *)
  let ldm_idx : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let ldm_pins = ref [] and ldm_n = ref 0 in
  let ldm_entry pin =
    match Hashtbl.find_opt ldm_idx pin with
    | Some e -> e
    | None -> (
      match Design.pin_net design pin with
      | None -> -1
      | Some net ->
        let e = !ldm_n in
        incr ldm_n;
        Hashtbl.replace ldm_idx pin e;
        let sinks = Design.net_sinks design net in
        let pin_caps =
          List.fold_left (fun acc s -> acc +. Design.pin_cap design s) 0. sinks
        in
        ldm_pins :=
          (pin, pin_caps, Wire_load.wire_cap wlm (List.length sinks), sinks)
          :: !ldm_pins;
        e)
  in
  let arcs = ref [] and n_arcs = ref 0 in
  let add_arc a =
    incr n_arcs;
    arcs := a :: !arcs
  in
  let endpoints = ref [] and startpoints = ref [] in
  (* Cell arcs, in the construction order of the original adjacency
     lists (instances, then nets, then ports). *)
  Design.iter_insts design (fun inst ->
      let cell = Design.inst_cell design inst in
      List.iter
        (fun (i, o) ->
          let src = Design.inst_pin design inst i
          and dst = Design.inst_pin design inst o in
          let p_unate =
            match Lib_cell.function_of_output cell o with
            | Some f -> unateness f i
            | None -> unate_non
          in
          add_arc
            {
              p_src = src;
              p_dst = dst;
              p_kind = kind_comb;
              p_inst = inst;
              p_unate;
              p_base = cell.Lib_cell.intrinsic;
              p_scale = cell.Lib_cell.drive_res;
              p_caps = 0.;
              p_ldm = ldm_entry dst;
            })
        (Lib_cell.comb_arcs cell);
      match cell.Lib_cell.seq with
      | None -> ()
      | Some seq ->
        let cp = Design.inst_pin design inst seq.Lib_cell.clock_pin in
        let outputs =
          List.map (fun q -> Design.inst_pin design inst q) seq.Lib_cell.q_pins
        in
        List.iter
          (fun q ->
            add_arc
              {
                p_src = cp;
                p_dst = q;
                p_kind = kind_launch;
                p_inst = inst;
                (* Launched data can rise or fall regardless of the
                   clock edge. *)
                p_unate = unate_non;
                p_base = seq.Lib_cell.clk_to_q;
                p_scale = cell.Lib_cell.drive_res;
                p_caps = 0.;
                p_ldm = ldm_entry q;
              })
          outputs;
        startpoints :=
          Sp_reg
            {
              sp_clock = cp;
              sp_inst = inst;
              sp_outputs = outputs;
              sp_clk_to_q = seq.Lib_cell.clk_to_q;
              sp_edge = seq.Lib_cell.clock_edge;
            }
          :: !startpoints;
        List.iter
          (fun d ->
            endpoints :=
              Ep_reg
                {
                  ep_data = Design.inst_pin design inst d;
                  ep_clock = cp;
                  ep_inst = inst;
                  ep_setup = seq.Lib_cell.setup;
                  ep_hold = seq.Lib_cell.hold;
                  ep_edge = seq.Lib_cell.clock_edge;
                }
              :: !endpoints)
          seq.Lib_cell.data_pins);
  (* Net arcs. *)
  let ldm_drivers = ref [] in
  Design.iter_nets design (fun net ->
      match Design.net_driver design net with
      | None -> ()
      | Some drv ->
        ldm_drivers := ldm_entry drv :: !ldm_drivers;
        let sinks = Design.net_sinks design net in
        let fanout = List.length sinks in
        let pin_caps =
          List.fold_left (fun acc s -> acc +. Design.pin_cap design s) 0. sinks
        in
        let base = Wire_load.net_delay wlm ~fanout ~pin_caps in
        let caps = pin_caps +. Wire_load.wire_cap wlm fanout in
        List.iter
          (fun s ->
            add_arc
              {
                p_src = drv;
                p_dst = s;
                p_kind = kind_net;
                p_inst = -1;
                p_unate = unate_pos;
                p_base = base;
                p_scale = 0.;
                p_caps = caps;
                p_ldm = -1;
              })
          sinks);
  (* Port start/endpoints. *)
  Design.iter_ports design (fun p ->
      match Design.port_dir design p with
      | Design.In ->
        startpoints :=
          Sp_port { sp_pin = Design.port_pin design p } :: !startpoints
      | Design.Out ->
        endpoints := Ep_port { ep_pin = Design.port_pin design p } :: !endpoints);
  (* Flatten into the arena. *)
  let n_arcs = !n_arcs in
  let arc_src = Array.make n_arcs 0
  and arc_dst = Array.make n_arcs 0
  and arc_kind = Array.make n_arcs 0
  and arc_inst = Array.make n_arcs 0
  and arc_unate = Array.make n_arcs 0
  and arc_base = Array.make n_arcs 0.
  and arc_scale = Array.make n_arcs 0.
  and arc_caps = Array.make n_arcs 0.
  and arc_ldm = Array.make n_arcs 0 in
  List.iteri
    (fun i a ->
      (* [arcs] is in reverse id order. *)
      let aid = n_arcs - 1 - i in
      arc_src.(aid) <- a.p_src;
      arc_dst.(aid) <- a.p_dst;
      arc_kind.(aid) <- a.p_kind;
      arc_inst.(aid) <- a.p_inst;
      arc_unate.(aid) <- a.p_unate;
      arc_base.(aid) <- a.p_base;
      arc_scale.(aid) <- a.p_scale;
      arc_caps.(aid) <- a.p_caps;
      arc_ldm.(aid) <- a.p_ldm)
    !arcs;
  (* CSR rows, filled from the highest arc id down so each row keeps
     the descending-id order of the adjacency lists it replaces. *)
  let build_csr key =
    let row = Array.make (n + 1) 0 in
    for aid = 0 to n_arcs - 1 do
      row.(key.(aid) + 1) <- row.(key.(aid) + 1) + 1
    done;
    for p = 1 to n do
      row.(p) <- row.(p) + row.(p - 1)
    done;
    let adj = Array.make n_arcs 0 in
    let cursor = Array.sub row 0 n in
    for aid = n_arcs - 1 downto 0 do
      let p = key.(aid) in
      adj.(cursor.(p)) <- aid;
      cursor.(p) <- cursor.(p) + 1
    done;
    row, adj
  in
  let out_row, out_adj = build_csr arc_src in
  let in_row, in_adj = build_csr arc_dst in
  (* Kahn topological sort; cycles broken by discarding the remaining
     arcs (recorded for diagnostics). *)
  let indeg = Array.make n 0 in
  Array.iter (fun d -> indeg.(d) <- indeg.(d) + 1) arc_dst;
  let queue = Queue.create () in
  for p = 0 to n - 1 do
    if indeg.(p) = 0 then Queue.add p queue
  done;
  let topo = Array.make n (-1) in
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    topo.(!pos) <- p;
    incr pos;
    for k = out_row.(p) to out_row.(p + 1) - 1 do
      let dst = arc_dst.(out_adj.(k)) in
      indeg.(dst) <- indeg.(dst) - 1;
      if indeg.(dst) = 0 then Queue.add dst queue
    done
  done;
  let broken = ref [] in
  if !pos < n then begin
    (* Combinational loop: the unresolved pins keep a nonzero indegree.
       Append them in id order and record their incoming arcs from other
       unresolved pins as broken. *)
    let placed = Array.make n false in
    Array.iteri (fun i p -> if i < !pos && p >= 0 then placed.(p) <- true) topo;
    for p = 0 to n - 1 do
      if not placed.(p) then begin
        topo.(!pos) <- p;
        incr pos;
        for k = in_row.(p) to in_row.(p + 1) - 1 do
          let aid = in_adj.(k) in
          if not placed.(arc_src.(aid)) then broken := aid :: !broken
        done;
        placed.(p) <- true
      end
    done
  end;
  let topo_pos = Array.make n 0 in
  Array.iteri (fun i p -> topo_pos.(p) <- i) topo;
  let is_broken = Array.make (max 1 n_arcs) false in
  List.iter (fun aid -> is_broken.(aid) <- true) !broken;
  let level = Array.make n 0 in
  Array.iter
    (fun p ->
      for k = out_row.(p) to out_row.(p + 1) - 1 do
        let aid = out_adj.(k) in
        if not is_broken.(aid) then begin
          let d = arc_dst.(aid) in
          (* Back edges inside broken-loop remnants are skipped so the
             levelization stays monotone along [topo]. *)
          if topo_pos.(p) < topo_pos.(d) && level.(p) + 1 > level.(d) then
            level.(d) <- level.(p) + 1
        end
      done)
    topo;
  let n_levels =
    if n = 0 then 0 else 1 + Array.fold_left max 0 level
  in
  (* Load-model arenas. *)
  let ldm_n = !ldm_n in
  let ldm_pin = Array.make (max 1 ldm_n) 0
  and ldm_pin_caps = Array.make (max 1 ldm_n) 0.
  and ldm_wire_cap = Array.make (max 1 ldm_n) 0. in
  let ldm_sink_row = Array.make (ldm_n + 1) 0 in
  List.iteri
    (fun i (pin, pin_caps, wire_cap, sinks) ->
      (* [ldm_pins] is in reverse entry order. *)
      let e = ldm_n - 1 - i in
      ldm_pin.(e) <- pin;
      ldm_pin_caps.(e) <- pin_caps;
      ldm_wire_cap.(e) <- wire_cap;
      ldm_sink_row.(e + 1) <- List.length sinks)
    !ldm_pins;
  for e = 1 to ldm_n do
    ldm_sink_row.(e) <- ldm_sink_row.(e) + ldm_sink_row.(e - 1)
  done;
  let ldm_sinks = Array.make (max 1 ldm_sink_row.(ldm_n)) 0 in
  List.iteri
    (fun i (_, _, _, sinks) ->
      let e = ldm_n - 1 - i in
      List.iteri
        (fun j s -> ldm_sinks.(ldm_sink_row.(e) + j) <- s)
        sinks)
    !ldm_pins;
  {
    sk_design = design;
    sk_n_pins = n;
    sk_n_arcs = n_arcs;
    arc_src;
    arc_dst;
    arc_kind;
    arc_inst;
    arc_unate;
    arc_base;
    arc_scale;
    arc_caps;
    arc_ldm;
    out_row;
    out_adj;
    in_row;
    in_adj;
    topo;
    topo_pos;
    level;
    n_levels;
    broken = !broken;
    sk_endpoints = List.rev !endpoints;
    sk_startpoints = List.rev !startpoints;
    ldm_pin;
    ldm_pin_caps;
    ldm_wire_cap;
    ldm_sink_row;
    ldm_sinks;
    ldm_drivers = Array.of_list (List.rev !ldm_drivers);
  }

(* ------------------------------------------------------------------ *)
(* Per-mode overlay                                                    *)

let overlay sk (mode : Mode.t) =
  let env = env_tables mode in
  let find tbl pin = Option.value ~default:0. (Hashtbl.find_opt tbl pin) in
  let ldm_n = Array.length sk.ldm_pin in
  let ldval = Array.make (max 1 ldm_n) 0. in
  for e = 0 to ldm_n - 1 do
    (* Total capacitive load seen by the entry's pin: connected sink
       pin caps plus any set_load on the net's pins plus estimated wire
       cap — term order matters bit-for-bit. *)
    let extra = ref 0. in
    for k = sk.ldm_sink_row.(e) to sk.ldm_sink_row.(e + 1) - 1 do
      extra := !extra +. find env.extra_load sk.ldm_sinks.(k)
    done;
    let extra = !extra +. find env.extra_load sk.ldm_pin.(e) in
    ldval.(e) <- sk.ldm_pin_caps.(e) +. extra +. sk.ldm_wire_cap.(e)
  done;
  let loads = Array.make sk.sk_n_pins 0. in
  Array.iter (fun e -> loads.(sk.ldm_pin.(e)) <- ldval.(e)) sk.ldm_drivers;
  let dmin = Array.make (max 1 sk.sk_n_arcs) 0.
  and dmax = Array.make (max 1 sk.sk_n_arcs) 0. in
  for aid = 0 to sk.sk_n_arcs - 1 do
    let d =
      if sk.arc_kind.(aid) = kind_net then begin
        (* A port driving the net contributes its external drive and
           transition there, since it has no cell arc of its own. *)
        let drv = sk.arc_src.(aid) in
        let port_extra =
          match Design.pin_owner sk.sk_design drv with
          | Design.Port_pin _ ->
            let drive =
              Option.value ~default:default_port_drive
                (Hashtbl.find_opt env.port_drive drv)
            in
            let transition = find env.port_transition drv in
            (drive *. sk.arc_caps.(aid))
            +. (transition *. transition_delay_factor)
          | Design.Inst_pin _ -> 0.
        in
        sk.arc_base.(aid) +. port_extra
      end
      else begin
        let load = if sk.arc_ldm.(aid) < 0 then 0. else ldval.(sk.arc_ldm.(aid)) in
        sk.arc_base.(aid) +. (sk.arc_scale.(aid) *. load)
      end
    in
    dmax.(aid) <- d;
    dmin.(aid) <- d *. min_derate
  done;
  { sk; dmin; dmax; loads }

(* ------------------------------------------------------------------ *)
(* Skeleton cache: one compiled arena per live design, so analysing N
   modes (or N refinement iterations) compiles once. Keyed by physical
   identity — a Design.t is immutable after construction — and bounded
   because benchmarks churn through many generated designs.            *)

let cache_bound = 8
let cache_lock = Mutex.create ()
let cache : (Design.t * skeleton) list ref = ref []

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let skeleton design =
  let hit =
    Mutex.protect cache_lock (fun () ->
        List.find_opt (fun (d, _) -> d == design) !cache)
  in
  match hit with
  | Some (_, sk) -> sk, true
  | None ->
    (* Compile outside the lock; on a race the first-published skeleton
       wins (the values are identical by construction). *)
    let sk =
      Obs.with_span "sta.compile"
        ~attrs:[ "pins", string_of_int (Design.n_pins design) ]
        (fun () -> compile design)
    in
    Mutex.protect cache_lock (fun () ->
        match List.find_opt (fun (d, _) -> d == design) !cache with
        | Some (_, sk') -> sk', true
        | None ->
          cache := (design, sk) :: take (cache_bound - 1) !cache;
          sk, false)

let build design mode =
  let sk, reused = skeleton design in
  if reused then
    Obs.with_span "sta.incremental_reuse"
      ~attrs:[ "what", "tgraph-skeleton" ]
      (fun () -> overlay sk mode)
  else overlay sk mode
