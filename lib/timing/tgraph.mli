(** The compiled timing-graph arena.

    The timing graph is flattened once per design into a CSR
    (compressed-sparse-row) skeleton of int arrays — arc endpoints,
    kinds, unateness, adjacency rows, topological order and levels —
    plus the static half of the delay/load model. A per-mode {e
    overlay} then derives the arc delay arrays from the mode's
    environment constraints without re-walking the netlist. Compiled
    skeletons are cached per design (physical identity), so analysing N
    modes or running N refinement iterations compiles exactly once; the
    cache hit is visible as an [sta.incremental_reuse] span, the miss
    as [sta.compile].

    Adjacency rows preserve the descending-arc-id iteration order of
    the linked adjacency lists this arena replaced: topological
    tie-breaking and path backtracking are order-sensitive, and the
    merge pipeline's outputs must stay byte-identical across the
    representation change. *)

(** {1 Arc code spaces} *)

val kind_comb : int
val kind_net : int
val kind_launch : int

val unate_pos : int
val unate_neg : int
val unate_non : int

(** {1 Start/endpoints} *)

type endpoint =
  | Ep_reg of {
      ep_data : Mm_netlist.Design.pin_id;
      ep_clock : Mm_netlist.Design.pin_id;
      ep_inst : Mm_netlist.Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Mm_netlist.Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Mm_netlist.Design.pin_id }

type startpoint =
  | Sp_reg of {
      sp_clock : Mm_netlist.Design.pin_id;
      sp_inst : Mm_netlist.Design.inst_id;
      sp_outputs : Mm_netlist.Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Mm_netlist.Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Mm_netlist.Design.pin_id }

val unateness : Mm_netlist.Logic.t -> int -> int
(** Unateness code of a cell function in one input, by exhaustive
    evaluation over its support. *)

val min_derate : float
val default_port_drive : float
val transition_delay_factor : float

(** {1 The arena} *)

type skeleton = {
  sk_design : Mm_netlist.Design.t;
  sk_n_pins : int;
  sk_n_arcs : int;
  arc_src : int array;
  arc_dst : int array;
  arc_kind : int array;
  arc_inst : int array;
  arc_unate : int array;
  arc_base : float array;
  arc_scale : float array;
  arc_caps : float array;
  arc_ldm : int array;
  out_row : int array;
  out_adj : int array;
  in_row : int array;
  in_adj : int array;
  topo : int array;
  topo_pos : int array;
  level : int array;
  n_levels : int;
  broken : int list;
  sk_endpoints : endpoint list;
  sk_startpoints : startpoint list;
  ldm_pin : int array;
  ldm_pin_caps : float array;
  ldm_wire_cap : float array;
  ldm_sink_row : int array;
  ldm_sinks : int array;
  ldm_drivers : int array;
}

type t = {
  sk : skeleton;
  dmin : float array;  (** per arc, derated min delay *)
  dmax : float array;  (** per arc, max delay *)
  loads : float array;
      (** per pin: capacitive load driven (pF); 0 for non-drivers *)
}

val compile : Mm_netlist.Design.t -> skeleton
(** Compile without consulting the cache (benchmark baseline). *)

val skeleton : Mm_netlist.Design.t -> skeleton * bool
(** Cached compile; the flag is true on a cache hit. *)

val overlay : skeleton -> Mm_sdc.Mode.t -> t
(** Derive the per-mode delay arrays over a compiled skeleton. *)

val build : Mm_netlist.Design.t -> Mm_sdc.Mode.t -> t
(** [skeleton] + [overlay], with the compile/reuse spans. *)
