(** The timing graph, viewed over the compiled {!Tgraph} arena.

    Nodes are design pins; arcs are cell arcs (input to output, derived
    from cell functions), launch arcs (register clock pin to outputs)
    and net arcs (driver to sinks). The mode-independent structure is
    compiled once per design into a flat CSR arena ({!Tgraph}) and
    cached; building a graph for a (design, mode) pair lays the mode's
    delay overlay (environment constraints: set_load / set_drive /
    set_input_transition) over the shared skeleton.

    Arcs are addressed by dense ids; hot paths use the scalar accessors
    and the [iter_*] loops (no allocation), while cold paths (tests,
    dot export) may materialize {!arc} records. *)

type arc_kind = Comb | Net | Launch

(** Transition-sense of an arc: a [Positive] arc propagates a rising
    input as a rising output, [Negative] inverts, [Non_unate] can do
    either (XOR, mux data-vs-select, register launch). Drives the
    rise/fall dimension of exception matching. *)
type unate = Positive | Negative | Non_unate

type arc = {
  a_src : Mm_netlist.Design.pin_id;
  a_dst : Mm_netlist.Design.pin_id;
  a_kind : arc_kind;
  a_inst : int;  (** owning instance for Comb/Launch; -1 for Net *)
  a_unate : unate;
  a_dmin : float;
  a_dmax : float;
}

type endpoint = Tgraph.endpoint =
  | Ep_reg of {
      ep_data : Mm_netlist.Design.pin_id;
      ep_clock : Mm_netlist.Design.pin_id;
      ep_inst : Mm_netlist.Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Mm_netlist.Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Mm_netlist.Design.pin_id }

type startpoint = Tgraph.startpoint =
  | Sp_reg of {
      sp_clock : Mm_netlist.Design.pin_id;
      sp_inst : Mm_netlist.Design.inst_id;
      sp_outputs : Mm_netlist.Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Mm_netlist.Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Mm_netlist.Design.pin_id }

type t = {
  design : Mm_netlist.Design.t;
  tg : Tgraph.t;  (** the compiled arena + this mode's delay overlay *)
  endpoints : endpoint list;
  startpoints : startpoint list;
}

val build : Mm_netlist.Design.t -> Mm_sdc.Mode.t -> t
(** Build the graph with delays reflecting [mode]'s environment
    constraints, reusing the design's cached skeleton. Loops (if any)
    are broken at an arbitrary arc, recorded in {!broken_arcs}. *)

val n_pins : t -> int
val n_arcs : t -> int

(** {1 Arc accessors (hot paths)} *)

val arc_src : t -> int -> Mm_netlist.Design.pin_id
val arc_dst : t -> int -> Mm_netlist.Design.pin_id
val arc_kind : t -> int -> arc_kind
val arc_inst : t -> int -> int
val arc_unate : t -> int -> unate
val arc_dmin : t -> int -> float
val arc_dmax : t -> int -> float

val iter_out : t -> Mm_netlist.Design.pin_id -> (int -> unit) -> unit
(** Arc ids leaving the pin, in the arena's row order (descending id —
    the iteration order downstream tie-breaks rely on). *)

val iter_in : t -> Mm_netlist.Design.pin_id -> (int -> unit) -> unit

val fold_in : t -> Mm_netlist.Design.pin_id -> 'a -> ('a -> int -> 'a) -> 'a

val find_map_in :
  t -> Mm_netlist.Design.pin_id -> (int -> 'a option) -> 'a option
(** First [Some] over the incoming arc ids, in row order. *)

(** {1 Orders and per-pin data} *)

val topo : t -> int array
(** Pins in topological order. *)

val topo_pos : t -> int array
(** Inverse permutation of {!topo}. *)

val level : t -> int array
(** Per pin, the levelized depth in the acyclic core. *)

val n_levels : t -> int

val broken_arcs : t -> int list
(** Arcs dropped to break combinational loops. *)

val loads : t -> float array
(** Per pin: capacitive load driven (pF); 0 for non-drivers. Includes
    set_load and the wire-load estimate — the quantity checked against
    set_max_capacitance. *)

(** {1 Cold-path views} *)

val arc : t -> int -> arc
val iter_arcs : t -> (int -> arc -> unit) -> unit

val endpoint_pin : endpoint -> Mm_netlist.Design.pin_id
val startpoint_pin : startpoint -> Mm_netlist.Design.pin_id
(** Canonical node of the point: data pin for register endpoints,
    clock pin for register startpoints, the port pin otherwise. *)

val endpoint_pins : t -> Mm_netlist.Design.pin_id list
val is_clock_pin : t -> Mm_netlist.Design.pin_id -> bool
