module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode

type t = {
  design : Design.t;
  mode : Mode.t;
  graph : Graph.t;
  consts : Const_prop.t;
  clocks : Clock_prop.t;
  excs : Excmatch.t;
  exclusive : int array;
}

let build_exclusive (clocks : Clock_prop.t) (mode : Mode.t) =
  let n = Clock_prop.n_clocks clocks in
  let exclusive = Array.make n 0 in
  List.iter
    (fun (g : Mode.clock_group) ->
      let masks =
        List.map (Clock_prop.mask_of_clock_names clocks) g.grp_clocks
      in
      List.iteri
        (fun i mi ->
          List.iteri
            (fun j mj ->
              if i <> j then
                for c = 0 to n - 1 do
                  if mi land (1 lsl c) <> 0 then
                    exclusive.(c) <- exclusive.(c) lor mj
                done)
            masks)
        masks)
    mode.Mode.groups;
  exclusive

let create design mode =
  let graph = Graph.build design mode in
  let consts = Const_prop.run graph mode in
  let clocks = Clock_prop.run graph consts mode in
  let excs = Excmatch.prepare graph clocks mode in
  { design; mode; graph; consts; clocks; excs; exclusive = build_exclusive clocks mode }

(* Swap the mode without recomputing graph/constants/clocks: only the
   exception automaton and clock-group exclusivity depend on the parts
   of a mode that refinement changes (exceptions, groups, senses used
   as lineage carriers). The caller guarantees the new mode matches
   [t.mode] in everything the reused layers were computed from: cases,
   disables, environment (loads/drives) and clock definitions. *)
let with_exceptions t mode =
  let excs = Excmatch.prepare t.graph t.clocks mode in
  { t with mode; excs; exclusive = build_exclusive t.clocks mode }

let clocks_exclusive t a b = t.exclusive.(a) land (1 lsl b) <> 0

let find_clock t i =
  let name = Clock_prop.clock_name t.clocks i in
  match Mode.find_clock t.mode name with
  | Some c -> c
  | None -> assert false

let capture_clocks_of_endpoint t = function
  | Graph.Ep_reg { ep_clock; _ } ->
    let mask = Clock_prop.mask_at t.clocks ep_clock in
    let acc = ref [] in
    for i = Clock_prop.n_clocks t.clocks - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then acc := i :: !acc
    done;
    !acc
  | Graph.Ep_port { ep_pin } ->
    List.filter_map
      (fun (d : Mode.io_delay) ->
        if (not d.iod_input) && d.iod_pin = ep_pin then
          Option.bind d.iod_clock (Clock_prop.clock_index t.clocks)
        else None)
      t.mode.Mode.io_delays
    |> List.sort_uniq compare

let endpoint_alias_pins t ep =
  ignore t;
  match ep with
  | Graph.Ep_reg { ep_data; _ } -> [ ep_data ]
  | Graph.Ep_port { ep_pin } -> [ ep_pin ]
