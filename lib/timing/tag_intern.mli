(** Dense interning of packed STA tag keys.

    A tag key packs (launch clock, exception state, data polarity) into
    one int ({!Sta}'s key layout); the interner assigns consecutive
    small ids so per-pin tag storage can be a flat slab indexed by id
    rather than a hash table per pin. Ids are stable for the lifetime
    of the table. *)

type t

val create : unit -> t

val intern : t -> int -> int
(** Id of the key, allocating the next dense id on first sight. *)

val find_opt : t -> int -> int option
(** Id of the key if already interned. *)

val key_of : t -> int -> int
(** Inverse of {!intern}; undefined for ids never returned. *)

val count : t -> int
(** Number of distinct keys interned so far. *)
