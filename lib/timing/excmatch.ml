module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Mode = Mm_sdc.Mode

type pexc = {
  px_exc : Mode.exc;
  px_from_pins : (Design.pin_id, unit) Hashtbl.t;  (** empty = none listed *)
  px_from_clocks : int;
  px_has_from : bool;
  px_from_edge : Mode.edge_sel;
  px_nthrough : int;
  px_to_pins : (Design.pin_id, unit) Hashtbl.t;
  px_to_clocks : int;
  px_has_to : bool;
  px_to_edge : Mode.edge_sel;
}

type t = {
  pexcs : pexc array;
  through_at : (Design.pin_id, (int * int) list) Hashtbl.t;
  (* The interning tables are the only mutable state a prepared matcher
     carries, and a context may be consulted from pool domains — every
     access to [states]/[state_list]/[n_states] happens under [mx].
     [pexcs] and [through_at] are immutable after [prepare]. *)
  mx : Mutex.t;
  states : (int array, int) Hashtbl.t;
  mutable state_list : int array array;
  mutable n_states : int;
  edge_sensitive : bool;
}

(* Requires [t.mx] held. *)
let intern t v =
  match Hashtbl.find_opt t.states v with
  | Some id -> id
  | None ->
    let id = t.n_states in
    Hashtbl.replace t.states v id;
    if id >= Array.length t.state_list then begin
      let bigger = Array.make (max 16 (2 * Array.length t.state_list)) [||] in
      Array.blit t.state_list 0 bigger 0 (Array.length t.state_list);
      t.state_list <- bigger
    end;
    t.state_list.(id) <- v;
    t.n_states <- id + 1;
    id

let reg_alias_pins design inst =
  let cell = Design.inst_cell design inst in
  match cell.Lib_cell.seq with
  | None -> []
  | Some seq ->
    Design.inst_pin design inst seq.Lib_cell.clock_pin
    :: List.map (fun q -> Design.inst_pin design inst q) seq.Lib_cell.q_pins

let reg_data_pins design inst =
  let cell = Design.inst_cell design inst in
  match cell.Lib_cell.seq with
  | None -> []
  | Some seq ->
    List.map (fun d -> Design.inst_pin design inst d) seq.Lib_cell.data_pins

let prepare (g : Graph.t) (clocks : Clock_prop.t) (mode : Mode.t) =
  let design = g.Graph.design in
  let prepare_points ~as_from points =
    let pins = Hashtbl.create 8 and clock_mask = ref 0 in
    List.iter
      (function
        | Mode.P_pin p -> Hashtbl.replace pins p ()
        | Mode.P_clock c -> (
          match Clock_prop.clock_index clocks c with
          | Some i -> clock_mask := !clock_mask lor (1 lsl i)
          | None -> ())
        | Mode.P_inst inst ->
          let alias =
            if as_from then reg_alias_pins design inst
            else reg_data_pins design inst
          in
          List.iter (fun p -> Hashtbl.replace pins p ()) alias)
      points;
    pins, !clock_mask
  in
  let pexcs =
    Array.of_list
      (List.map
         (fun (e : Mode.exc) ->
           let from_pins, from_clocks =
             match e.exc_from with
             | None -> Hashtbl.create 1, 0
             | Some points -> prepare_points ~as_from:true points
           in
           let to_pins, to_clocks =
             match e.exc_to with
             | None -> Hashtbl.create 1, 0
             | Some points -> prepare_points ~as_from:false points
           in
           {
             px_exc = e;
             px_from_pins = from_pins;
             px_from_clocks = from_clocks;
             px_has_from = e.exc_from <> None;
             px_from_edge = e.exc_from_edge;
             px_nthrough = List.length e.exc_through;
             px_to_pins = to_pins;
             px_to_clocks = to_clocks;
             px_has_to = e.exc_to <> None;
             px_to_edge = e.exc_to_edge;
           })
         mode.Mode.exceptions)
  in
  let through_at = Hashtbl.create 32 in
  Array.iteri
    (fun ei pe ->
      List.iteri
        (fun gi pins ->
          List.iter
            (fun pin ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt through_at pin)
              in
              Hashtbl.replace through_at pin ((ei, gi) :: prev))
            pins)
        pe.px_exc.Mode.exc_through)
    pexcs;
  let edge_sensitive =
    Array.exists
      (fun pe ->
        pe.px_from_edge <> Mode.Any_edge || pe.px_to_edge <> Mode.Any_edge)
      pexcs
  in
  {
    pexcs;
    through_at;
    mx = Mutex.create ();
    states = Hashtbl.create 64;
    state_list = [||];
    n_states = 0;
    edge_sensitive;
  }

let locked t f =
  Mutex.lock t.mx;
  match f () with
  | r ->
    Mutex.unlock t.mx;
    r
  | exception e ->
    Mutex.unlock t.mx;
    raise e

let n_exceptions t = Array.length t.pexcs
let n_states t = locked t (fun () -> t.n_states)
let edge_sensitive t = t.edge_sensitive

let edge_compatible restriction actual =
  match restriction, actual with
  | Mode.Any_edge, _ | _, Mode.Any_edge -> true
  | Mode.Rise_edge, Mode.Rise_edge | Mode.Fall_edge, Mode.Fall_edge -> true
  | Mode.Rise_edge, Mode.Fall_edge | Mode.Fall_edge, Mode.Rise_edge -> false

let initial_state t ~start_pins ~launch_clock
    ?(launch_edge = Lib_cell.Rising) ?(data_edge = Mode.Any_edge) () =
  let n = Array.length t.pexcs in
  let v = Array.make n 0 in
  for i = 0 to n - 1 do
    let pe = t.pexcs.(i) in
    if pe.px_has_from then begin
      let pin_hit = List.exists (Hashtbl.mem pe.px_from_pins) start_pins in
      let clock_hit =
        match launch_clock with
        | Some c -> pe.px_from_clocks land (1 lsl c) <> 0
        | None -> false
      in
      (* A clock-based from restricts the launch edge; a pin-based from
         restricts the data transition at the startpoint. *)
      let edge_ok =
        match pe.px_from_edge with
        | Mode.Any_edge -> true
        | restriction ->
          if clock_hit && not pin_hit then
            edge_compatible restriction
              (match launch_edge with
              | Lib_cell.Rising -> Mode.Rise_edge
              | Lib_cell.Falling -> Mode.Fall_edge)
          else edge_compatible restriction data_edge
      in
      if not ((pin_hit || clock_hit) && edge_ok) then v.(i) <- -1
    end
  done;
  locked t (fun () -> intern t v)

let advance t state pin =
  match Hashtbl.find_opt t.through_at pin with
  | None -> state
  | Some hits ->
    locked t @@ fun () ->
    let v = t.state_list.(state) in
    let changed = ref false in
    let v' = Array.copy v in
    List.iter
      (fun (ei, gi) ->
        if v'.(ei) = gi then begin
          v'.(ei) <- gi + 1;
          changed := true
        end)
      hits;
    if !changed then intern t v' else state

let matches_at t state ~end_pins ~capture_clock ?(data_edge = Mode.Any_edge) () =
  let v = locked t (fun () -> t.state_list.(state)) in
  let acc = ref [] in
  for i = Array.length t.pexcs - 1 downto 0 do
    let pe = t.pexcs.(i) in
    if v.(i) = pe.px_nthrough then begin
      let to_ok =
        if not pe.px_has_to then true
        else
          List.exists (Hashtbl.mem pe.px_to_pins) end_pins
          ||
          match capture_clock with
          | Some c -> pe.px_to_clocks land (1 lsl c) <> 0
          | None -> false
      in
      if to_ok && edge_compatible pe.px_to_edge data_edge then
        acc := pe.px_exc :: !acc
    end
  done;
  !acc

let state_at t ~setup state ~end_pins ~capture_clock ?(data_edge = Mode.Any_edge)
    () =
  Constraint_state.of_exceptions ~setup
    (matches_at t state ~end_pins ~capture_clock ~data_edge ())
