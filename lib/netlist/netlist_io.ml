let emit put d =
  put (Printf.sprintf "design %s\n" (Design.design_name d));
  Design.iter_ports d (fun p ->
      let dir =
        match Design.port_dir d p with Design.In -> "in" | Design.Out -> "out"
      in
      put (Printf.sprintf "port %s %s\n" dir (Design.port_name d p)));
  Design.iter_insts d (fun i ->
      put
        (Printf.sprintf "inst %s %s\n" (Design.inst_name d i)
           (Design.inst_cell d i).Lib_cell.cell_name));
  Design.iter_nets d (fun n ->
      let pins =
        (match Design.net_driver d n with Some p -> [ p ] | None -> [])
        @ Design.net_sinks d n
      in
      put
        (Printf.sprintf "net %s %s\n" (Design.net_name d n)
           (String.concat " " (List.map (Design.pin_name d) pins))))

let write oc d = emit (output_string oc) d

let to_string d =
  let buf = Buffer.create 4096 in
  emit (Buffer.add_string buf) d;
  Buffer.contents buf

let fail lineno msg =
  failwith (Printf.sprintf "netlist: line %d: %s" lineno msg)

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_lines lines =
  let design = ref None in
  let get_design lineno =
    match !design with
    | Some d -> d
    | None -> fail lineno "expected 'design <name>' first"
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match split_words line with
      | [] -> ()
      | "design" :: rest -> (
        match rest with
        | [ name ] ->
          if !design <> None then fail lineno "duplicate design line";
          design := Some (Design.create name)
        | _ -> fail lineno "usage: design <name>")
      | "port" :: rest -> (
        let d = get_design lineno in
        match rest with
        | [ dir; name ] ->
          let dir =
            match dir with
            | "in" -> Design.In
            | "out" -> Design.Out
            | _ -> fail lineno "port direction must be 'in' or 'out'"
          in
          (try ignore (Design.add_port d name dir)
           with Invalid_argument msg -> fail lineno msg)
        | _ -> fail lineno "usage: port <in|out> <name>")
      | "inst" :: rest -> (
        let d = get_design lineno in
        match rest with
        | [ name; cell ] -> (
          match Library.find cell with
          | Some c -> (
            try ignore (Design.add_inst d name c)
            with Invalid_argument msg -> fail lineno msg)
          | None -> fail lineno (Printf.sprintf "unknown cell %s" cell))
        | _ -> fail lineno "usage: inst <name> <cell>")
      | "net" :: rest -> (
        let d = get_design lineno in
        match rest with
        | name :: pins when pins <> [] -> (
          try Design.wire d name pins
          with Invalid_argument msg -> fail lineno msg)
        | _ -> fail lineno "usage: net <name> <pin> <pin>...")
      | kw :: _ -> fail lineno (Printf.sprintf "unknown keyword %s" kw))
    lines;
  match !design with
  | Some d -> d
  | None -> failwith "netlist: empty input"

let of_string s = parse_lines (String.split_on_char '\n' s)

let read ic =
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  parse_lines (List.rev !lines)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read ic)

let write_file path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc d)
