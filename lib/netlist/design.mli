(** Flat gate-level design database.

    Entities — ports, instances, nets and pins — are integer-indexed
    for speed; names resolve through hash tables. A pin belongs either
    to a top-level port or to an instance (one pin per library-cell
    pin). Nets connect exactly one driver (an instance output pin or an
    input port) to any number of sinks.

    This is the structural substrate for the timing graph ({!Mm_timing})
    and SDC object queries ({!Mm_sdc}). *)

type t

(** Dense: pins are numbered 0..[n_pins]-1 in creation order with no
    holes, so a [pin_id] indexes plain arrays directly. The compiled
    timing arena ([Mm_timing.Tgraph], DESIGN.md section 14) builds its
    CSR rows, topological order and per-pin tag slabs on this
    contract — keep it if pin construction ever changes. *)
type pin_id = int
type inst_id = int
type net_id = int
type port_id = int

type port_dir = In | Out
type pin_owner = Port_pin of port_id | Inst_pin of inst_id * int

val create : string -> t
val design_name : t -> string

(** {1 Construction} *)

val add_port : t -> string -> port_dir -> port_id
(** @raise Invalid_argument on duplicate port name. *)

val add_inst : t -> string -> Lib_cell.t -> inst_id
(** @raise Invalid_argument on duplicate instance name. *)

val get_net : t -> string -> net_id
(** Find-or-create the net named [s]. *)

val attach : t -> net_id -> pin_id -> unit
(** Connect [pin] to [net]. Driver/sink is inferred from the pin's
    direction. @raise Invalid_argument if the pin is already connected
    or the net would get a second driver. *)

val wire : t -> string -> string list -> unit
(** [wire t net_name pin_names] creates/fetches the net and attaches
    every named pin ("inst/PIN" or a port name), in any order. *)

(** {1 Lookup} *)

val find_port : t -> string -> port_id option
val find_inst : t -> string -> inst_id option
val find_net : t -> string -> net_id option

val pin_of_name : t -> string -> pin_id option
(** Accepts "inst/PIN" for instance pins and a bare port name for port
    pins. *)

val pin_of_name_exn : t -> string -> pin_id
val pin_name : t -> pin_id -> string

(** {1 Entity accessors} *)

val port_name : t -> port_id -> string
val port_dir : t -> port_id -> port_dir
val port_pin : t -> port_id -> pin_id

val inst_name : t -> inst_id -> string
val inst_cell : t -> inst_id -> Lib_cell.t
val inst_pin : t -> inst_id -> int -> pin_id
(** Pin id of cell-pin index [i] of the instance. *)

val inst_pin_by_name : t -> inst_id -> string -> pin_id
val inst_pins : t -> inst_id -> pin_id array

val net_name : t -> net_id -> string
val net_driver : t -> net_id -> pin_id option
val net_sinks : t -> net_id -> pin_id list
val net_fanout : t -> net_id -> int

val pin_owner : t -> pin_id -> pin_owner
val pin_net : t -> pin_id -> net_id option
val pin_is_driver : t -> pin_id -> bool
(** True for instance output pins and input ports: pins that source a
    net. *)

val pin_cap : t -> pin_id -> float
val pin_role : t -> pin_id -> Lib_cell.role option
(** [None] for port pins. *)

val pin_cell_pin : t -> pin_id -> Lib_cell.pin option

(** {1 Traversal} *)

val n_ports : t -> int
val n_insts : t -> int
val n_nets : t -> int
val n_pins : t -> int

val iter_ports : t -> (port_id -> unit) -> unit
val iter_insts : t -> (inst_id -> unit) -> unit
val iter_nets : t -> (net_id -> unit) -> unit
val iter_pins : t -> (pin_id -> unit) -> unit

val fanout_pins : t -> pin_id -> pin_id list
(** For a driver pin: the sinks of its net (empty when unconnected). *)

val registers : t -> inst_id list
(** All sequential instances, in creation order. *)

val fold_insts : t -> init:'a -> f:('a -> inst_id -> 'a) -> 'a
