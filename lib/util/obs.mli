(** Pipeline tracing: hierarchical spans on a monotonic clock.

    The tracing half of the observability layer ({!Metrics} holds the
    numbers). A {e span} is one timed region of the pipeline — an SDC
    parse, a preliminary merge, a tag propagation — with a name, an
    optional set of key/value attributes, and a start/duration pair
    read from the process monotonic clock. Spans nest: the span opened
    by {!with_span} while another is live on the same domain becomes
    its child, so a run records a forest mirroring the call structure
    of the merge flow.

    Recording is {b off by default} and costs one atomic load per
    {!with_span} when disabled — instrumentation can therefore live
    permanently in hot paths. When enabled (CLI [--trace]/[--profile],
    the bench harness, tests) completed spans accumulate in a
    thread-safe in-memory sink until {!reset}.

    Span names are a stable taxonomy, like {!Diag} codes and
    {!Metrics} names (see DESIGN.md "Observability"):

    - [merge.flow] > [merge.mergeability] | [merge.load] | [merge.group]
      > [merge.prelim] | [merge.refine] | [merge.equiv]
    - [compare.pass1] / [compare.pass2] / [compare.pass3]
    - [sdc.parse] / [sdc.resolve]
    - [sta.analyze] > [sta.propagate] | [sta.check]

    On top of spans the module records two resource axes (the
    "flight recorder", DESIGN.md §13): per-span {b GC deltas}
    (allocation words, collection counts — opt-in via
    {!set_gc_enabled} because [Gc.quick_stat] allocates) and
    time-stamped {b counter samples} ({!sample} — pool occupancy,
    queue depth, heap watermark) exported as Perfetto counter tracks.

    Three exporters: a human-readable profile tree
    ({!profile_tree}), Chrome [trace_event] JSON ({!trace_event_json},
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}), and a flat metrics JSON ({!metrics_json}) combining the
    {!Metrics} registry with per-span duration aggregates — the format
    committed as [BENCH_<run>.json]. *)

(** The monotonic clock behind every span — also the timer the pipeline
    uses for its reported runtimes ([Merge_flow.result.runtime_s],
    [Sta.report.rep_runtime]), so profile and report never disagree
    about what the wall clock did. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic nanoseconds from an arbitrary origin ([CLOCK_MONOTONIC];
      never jumps on NTP adjustment, unlike [Unix.gettimeofday]). *)

  val elapsed_s : int64 -> float
  (** [elapsed_s t0] is seconds from [t0] (a {!now_ns} reading) to now. *)

  val ns_to_s : int64 -> float
end

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_gc_enabled : bool -> unit
(** Enable per-span GC deltas ([sp_gc]) and [gc.heap_words] counter
    samples at span close. Only meaningful together with
    {!set_enabled}; off by default because [Gc.quick_stat] allocates a
    record per call (two per span). *)

val gc_enabled : unit -> bool

type gc_delta = {
  gd_minor_words : float;      (** words allocated in the minor heap *)
  gd_major_words : float;      (** words allocated in the major heap *)
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_top_heap_words : int;     (** heap watermark {e at span close} (absolute) *)
}
(** GC activity between a span's open and close, from two
    [Gc.quick_stat] readings on the span's own domain. *)

type span = {
  sp_id : int;          (** unique per process, in start order per domain *)
  sp_parent : int;      (** [sp_id] of the enclosing span, or -1 *)
  sp_depth : int;       (** 0 for roots *)
  sp_tid : int;         (** domain id, for multi-domain traces *)
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ns : int64;  (** {!Clock.now_ns} at open *)
  sp_dur_ns : int64;
  sp_gc : gc_delta option;  (** present iff GC telemetry was enabled *)
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span is recorded
    even when [f] raises. When recording is disabled this is just
    [f ()]. *)

(** {2 Cross-domain span context}

    Span nesting is tracked per domain, so a span recorded on a worker
    domain would normally root its own tree there — and the time it
    covers would {e not} be subtracted from the dispatching span's self
    time. A [context] captured on the dispatching domain and installed
    around the task body ({!Pool} does this for every task) re-parents
    worker spans under the caller's open span, keeping [self_s] honest
    for [merge.flow]/[merge.mergeability] under [--jobs > 1]. Note that
    children executing concurrently may overlap, so a parent's summed
    child time can exceed its wall time; self time clamps at 0. The
    owning domain of every span remains visible as [sp_tid] (the [tid]
    field of the trace_event export). *)

type context
(** The innermost open span frame of the capturing domain (or nothing,
    when no span is open / recording is disabled). *)

val capture : unit -> context
(** Snapshot the current domain's open-span position. *)

val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with the captured frame installed as
    the current span parent on {e this} domain, restoring the previous
    stack afterwards. With an empty context this is just [f ()]. *)

val timed : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but additionally returns the elapsed seconds —
    measured whether or not recording is enabled. This is how pipeline
    stages derive their reported runtimes from the span machinery
    instead of keeping separate hand-rolled timers. *)

val spans : unit -> span list
(** Completed spans in start order. Parents precede their children. *)

val reset : unit -> unit
(** Drop recorded spans and counter samples (leaves the enabled flags
    and {!Metrics} alone). *)

(** {2 Counter samples}

    Time-stamped [(name, value)] points on the same monotonic clock as
    spans — a cheap series sampler for values that only make sense
    against time (pool worker occupancy, queue depth, heap size).
    Rendered as Perfetto counter tracks by {!trace_event_json}. *)

val sample : string -> float -> unit
(** Record one counter sample. No-op when recording is disabled, like
    {!with_span}. *)

val samples : unit -> (string * int64 * float) list
(** Recorded counter samples in time order: [(name, t_ns, value)]. *)

(** {2 GC totals}

    Process-lifetime GC counters under stable [gc.*] names — the
    whole-run view the per-span deltas decompose. Always available
    (one [Gc.quick_stat] per call); under [--jobs > 1] allocation
    words are attributed to the calling domain, so totals are a
    driver-domain approximation — stable run-over-run, which is what
    the regression gate compares. *)

val gc_totals : unit -> (string * float) list
(** [gc.minor_words], [gc.promoted_words], [gc.major_words],
    [gc.minor_collections], [gc.major_collections], [gc.heap_words],
    [gc.top_heap_words]. *)

val record_gc_metrics : unit -> unit
(** Publish {!gc_totals} as {!Metrics} gauges under the same names.
    Pipeline drivers ([Merge_flow.drive], [Sta.analyze]) call this at
    stage end so every metrics export carries the GC section. *)

(** {2 Exporters} *)

val profile_tree : ?gc:bool -> unit -> string
(** Human-readable call tree: per node (one line per distinct span
    path) the call count, total and self wall time, children indented
    under parents and ordered by first occurrence. With [~gc:true]
    (the [--profile-gc] view) three more columns per node: allocated
    words in millions (minor + major, summed over the node's spans)
    and minor/major collection counts — zeros unless the run had
    {!set_gc_enabled}. *)

val trace_event_json : unit -> string
(** Chrome [trace_event] format: [{"traceEvents":[...]}] with one
    complete ("ph":"X") event per span, microsecond timestamps rebased
    to the earliest event. The stream opens with metadata ("ph":"M")
    events — [process_name] and one [thread_name] per domain id — so
    Perfetto labels each lane "domain N (driver/pool worker)" instead
    of a bare tid, and ends with one counter ("ph":"C") event per
    {!sample} recorded. Open in [chrome://tracing] or Perfetto. *)

val span_summaries : unit -> (string * int * float * float) list
(** Per-span-name aggregates merged across paths, sorted by name:
    [(name, calls, total_s, self_s)]. The flat view behind
    {!metrics_json} and the {!Runlog} history records. *)

val metrics_json : unit -> string
(** Flat machine-readable snapshot:
    [{"metrics":{...},"spans":{name:{"calls":n,"total_s":t,"self_s":s}}}]
    — the {!Metrics} registry plus per-span-name duration aggregates. *)
