(** Pipeline tracing: hierarchical spans on a monotonic clock.

    The tracing half of the observability layer ({!Metrics} holds the
    numbers). A {e span} is one timed region of the pipeline — an SDC
    parse, a preliminary merge, a tag propagation — with a name, an
    optional set of key/value attributes, and a start/duration pair
    read from the process monotonic clock. Spans nest: the span opened
    by {!with_span} while another is live on the same domain becomes
    its child, so a run records a forest mirroring the call structure
    of the merge flow.

    Recording is {b off by default} and costs one atomic load per
    {!with_span} when disabled — instrumentation can therefore live
    permanently in hot paths. When enabled (CLI [--trace]/[--profile],
    the bench harness, tests) completed spans accumulate in a
    thread-safe in-memory sink until {!reset}.

    Span names are a stable taxonomy, like {!Diag} codes and
    {!Metrics} names (see DESIGN.md "Observability"):

    - [merge.flow] > [merge.mergeability] | [merge.load] | [merge.group]
      > [merge.prelim] | [merge.refine] | [merge.equiv]
    - [compare.pass1] / [compare.pass2] / [compare.pass3]
    - [sdc.parse] / [sdc.resolve]
    - [sta.analyze] > [sta.propagate] | [sta.check]

    Three exporters: a human-readable profile tree
    ({!profile_tree}), Chrome [trace_event] JSON ({!trace_event_json},
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}), and a flat metrics JSON ({!metrics_json}) combining the
    {!Metrics} registry with per-span duration aggregates — the format
    committed as [BENCH_<run>.json]. *)

(** The monotonic clock behind every span — also the timer the pipeline
    uses for its reported runtimes ([Merge_flow.result.runtime_s],
    [Sta.report.rep_runtime]), so profile and report never disagree
    about what the wall clock did. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic nanoseconds from an arbitrary origin ([CLOCK_MONOTONIC];
      never jumps on NTP adjustment, unlike [Unix.gettimeofday]). *)

  val elapsed_s : int64 -> float
  (** [elapsed_s t0] is seconds from [t0] (a {!now_ns} reading) to now. *)

  val ns_to_s : int64 -> float
end

val set_enabled : bool -> unit
val enabled : unit -> bool

type span = {
  sp_id : int;          (** unique per process, in start order per domain *)
  sp_parent : int;      (** [sp_id] of the enclosing span, or -1 *)
  sp_depth : int;       (** 0 for roots *)
  sp_tid : int;         (** domain id, for multi-domain traces *)
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ns : int64;  (** {!Clock.now_ns} at open *)
  sp_dur_ns : int64;
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span. The span is recorded
    even when [f] raises. When recording is disabled this is just
    [f ()]. *)

(** {2 Cross-domain span context}

    Span nesting is tracked per domain, so a span recorded on a worker
    domain would normally root its own tree there — and the time it
    covers would {e not} be subtracted from the dispatching span's self
    time. A [context] captured on the dispatching domain and installed
    around the task body ({!Pool} does this for every task) re-parents
    worker spans under the caller's open span, keeping [self_s] honest
    for [merge.flow]/[merge.mergeability] under [--jobs > 1]. Note that
    children executing concurrently may overlap, so a parent's summed
    child time can exceed its wall time; self time clamps at 0. The
    owning domain of every span remains visible as [sp_tid] (the [tid]
    field of the trace_event export). *)

type context
(** The innermost open span frame of the capturing domain (or nothing,
    when no span is open / recording is disabled). *)

val capture : unit -> context
(** Snapshot the current domain's open-span position. *)

val with_context : context -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with the captured frame installed as
    the current span parent on {e this} domain, restoring the previous
    stack afterwards. With an empty context this is just [f ()]. *)

val timed : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but additionally returns the elapsed seconds —
    measured whether or not recording is enabled. This is how pipeline
    stages derive their reported runtimes from the span machinery
    instead of keeping separate hand-rolled timers. *)

val spans : unit -> span list
(** Completed spans in start order. Parents precede their children. *)

val reset : unit -> unit
(** Drop recorded spans (leaves the enabled flag and {!Metrics} alone). *)

(** {2 Exporters} *)

val profile_tree : unit -> string
(** Human-readable call tree: per node (one line per distinct span
    path) the call count, total and self wall time, children indented
    under parents and ordered by first occurrence. *)

val trace_event_json : unit -> string
(** Chrome [trace_event] format: [{"traceEvents":[...]}] with one
    complete ("ph":"X") event per span, microsecond timestamps
    rebased to the earliest span. Open in [chrome://tracing] or
    Perfetto. *)

val metrics_json : unit -> string
(** Flat machine-readable snapshot:
    [{"metrics":{...},"spans":{name:{"calls":n,"total_s":t,"self_s":s}}}]
    — the {!Metrics} registry plus per-span-name duration aggregates. *)
