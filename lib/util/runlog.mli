(** Run history and the statistical performance regression gate.

    The persistence half of the performance flight recorder (DESIGN.md
    §13): each bench or [modemerge perf] run is captured as one
    schema-versioned {!record} — git revision, job count, per-span
    self/total times ({!Obs.span_summaries}), the {!Metrics} counters
    and gauges, and whole-run GC totals ({!Obs.gc_totals}) — and
    appended as one line of [<dir>/<label>.jsonl] under
    [.modemerge/history/].

    On top of the history sits {!check}, a noise-tolerant comparison of
    the current run against the recorded baselines: a span only flags
    as {!Regression} when its self time exceeds the baseline mean by
    the relative threshold {e and} the baseline's own 95% confidence
    interval {e and} an absolute floor — so micro-spans and jittery
    baselines do not cry wolf, while a genuine 2x slowdown cannot hide
    behind its own noise (see {!check_config}). [modemerge perf check]
    turns {!has_regression} into a nonzero exit code; the [@perf-smoke]
    dune alias golden-tests both directions.

    Everything here is deliberately self-contained: records are
    written by a hand-rolled JSON printer and read back by a minimal
    recursive-descent parser ({!parse_json}) that tolerates unknown
    fields, so the format can grow without breaking old readers. *)

val schema_version : string
(** ["modemerge-runlog/1"] — stamped into every record; {!load} skips
    lines carrying any other schema. *)

val default_dir : string
(** [".modemerge/history"], relative to the working directory. *)

(** {2 JSON values}

    Exposed (rather than hidden behind the record type) because the
    perf smoke tests validate raw history lines structurally. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** Parse one JSON document; raises {!Parse_error} on malformed input
    (including trailing garbage). Numbers are floats; [\u] escapes
    beyond ASCII decode as ['?'] (metric and span names are ASCII). *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] otherwise. *)

(** {2 Records} *)

type span_sum = {
  ss_name : string;
  ss_calls : int;
  ss_total_s : float;
  ss_self_s : float;  (** what the regression gate compares *)
}

type record = {
  r_schema : string;   (** {!schema_version} at capture time *)
  r_label : string;    (** history stream name, e.g. ["perf"] — one JSONL file per label *)
  r_ts : float;        (** Unix epoch seconds at capture *)
  r_git_rev : string;  (** HEAD commit (read from [.git], no subprocess); ["unknown"] outside a checkout *)
  r_jobs : int;
  r_spans : span_sum list;
  r_counters : (string * int) list;
  r_gauges : (string * float) list;  (** gauges except [gc.*] (those live in [r_gc]) *)
  r_gc : (string * float) list;      (** {!Obs.gc_totals} at capture *)
  r_events : (string * int) list;
      (** cumulative per-kind event counts ({!Eventlog.counts}) — how
          eventful the run was (retries, quarantines, splits) next to
          how fast it was *)
}

val capture : label:string -> jobs:int -> unit -> record
(** Snapshot the current {!Obs} span aggregates, {!Metrics} registry,
    GC totals and {!Eventlog} kind counts into a record. Call it at the
    end of an instrumented run, before any [reset]. *)

val to_json : record -> string
(** One-line JSON rendering (the JSONL row format). *)

val of_json_string : string -> record option
(** Inverse of {!to_json}; [None] on malformed JSON or a value with no
    ["schema"] field. Unknown fields are ignored, missing optional
    fields default. *)

val append : ?dir:string -> record -> string
(** Append the record to [<dir>/<label>.jsonl] (creating directories),
    returning the file path. [dir] defaults to {!default_dir}. *)

val load : ?dir:string -> label:string -> unit -> record list
(** All records of the label's history file in append order. Damaged
    lines and records of a different {!schema_version} are skipped —
    history is advisory, never a reason to fail a run. Empty list when
    the file does not exist. *)

val last : int -> 'a list -> 'a list
(** [last n xs] is the trailing [n] elements (all of [xs] when
    shorter) — the baseline window selector. *)

(** {2 Regression gate} *)

type status =
  | Regression   (** self time grew beyond threshold + noise band *)
  | Improvement  (** self time shrank beyond threshold + noise band *)
  | Ok
  | Noisy        (** baseline too unstable to judge (CV over [max_cv]) *)
  | New          (** span absent from every baseline record *)
  | TooSmall     (** both sides under [min_self_s] — never judged *)

type verdict = {
  v_name : string;
  v_status : status;
  v_current_s : float;  (** current run's self time *)
  v_mean_s : float;     (** baseline mean self time (0 for [New]) *)
  v_ci_s : float;       (** baseline {!Stat.ci95_halfwidth} *)
  v_cv : float;         (** baseline coefficient of variation *)
  v_n_base : int;       (** baseline sample count *)
}

type check_config = {
  threshold_pct : float;
      (** relative threshold (percent) a span must move to flag;
          default 10. *)
  min_self_s : float;
      (** absolute floor (seconds): spans under it on both sides are
          [TooSmall], and any flagged delta must also exceed it;
          default 0.01 — sub-10ms jitter never gates. *)
  max_cv : float;
      (** baseline coefficient-of-variation above which a span is
          [Noisy] instead of [Regression] — unless the current time
          exceeds [2 * (mean + ci) + min_self_s], which flags
          regardless (a 2x slowdown must not hide behind a jittery
          baseline); default 1.0. *)
  window : int;
      (** how many trailing history records the CLI uses as baseline;
          default 10. *)
}

val default_config : check_config

val check : ?config:check_config -> baselines:record list -> record -> verdict list
(** One verdict per span of the current record, in record order. A
    span flags [Regression] when
    [current > mean * (1 + threshold_pct/100) + band] {e and}
    [current - mean > min_self_s] (symmetrically for [Improvement]),
    where [band = max ci95 (baseline_max - mean)] — the CI alone
    underestimates short windows, and a value no worse than a
    previously recorded baseline should never flag. Subject to the
    [max_cv] noise rule above. *)

val has_regression : verdict list -> bool
(** The gate: [true] iff some verdict is [Regression]. *)

val status_label : status -> string

val check_report : verdict list -> string
(** Table rendering of {!check} verdicts (one line per span: current,
    baseline mean, CI, sample count, status with percent delta). *)

val diff_report : record -> record -> string
(** [diff_report older newer]: per-span self-time deltas between two
    records plus the allocated-words delta — the [modemerge perf diff]
    output. *)
