(* Bounded ring journal of structured events. Always on: one mutex
   acquisition and an array write per event, memory bounded by the
   capacity, so even a misplaced per-element [log] cannot grow the
   process. The ring holds the newest [capacity] events; cumulative
   per-kind counters survive wraparound so whole-run event counts stay
   exact. *)

type event = {
  ev_seq : int;
  ev_t_ns : int64;
  ev_ts : float;
  ev_kind : string;
  ev_attrs : (string * string) list;
}

let schema_version = "modemerge-events/1"
let default_capacity = 4096

type state = {
  mutable ring : event option array;
  mutable head : int; (* next write slot *)
  mutable live : int; (* occupied slots, <= Array.length ring *)
  mutable seq : int; (* total events ever logged *)
  kind_counts : (string, int) Hashtbl.t;
}

let lock = Mutex.create ()

let st =
  {
    ring = Array.make default_capacity None;
    head = 0;
    live = 0;
    seq = 0;
    kind_counts = Hashtbl.create 32;
  }

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Retained events oldest-first; caller holds the lock. *)
let retained_locked () =
  let cap = Array.length st.ring in
  let out = ref [] in
  for i = 0 to st.live - 1 do
    (* newest is at head-1, oldest at head-live (mod cap) *)
    let idx = (st.head - 1 - i + (2 * cap)) mod cap in
    match st.ring.(idx) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  !out

let capacity () = with_lock (fun () -> Array.length st.ring)

let set_capacity n =
  let n = max 1 n in
  with_lock (fun () ->
      if n <> Array.length st.ring then begin
        let keep =
          let all = retained_locked () in
          let drop = max 0 (List.length all - n) in
          List.filteri (fun i _ -> i >= drop) all
        in
        let ring = Array.make n None in
        List.iteri (fun i e -> ring.(i) <- Some e) keep;
        st.ring <- ring;
        st.live <- List.length keep;
        st.head <- st.live mod n
      end)

let log ?(attrs = []) kind =
  let t_ns = Obs.Clock.now_ns () in
  let ts = Unix.gettimeofday () in
  with_lock (fun () ->
      let cap = Array.length st.ring in
      let e =
        { ev_seq = st.seq; ev_t_ns = t_ns; ev_ts = ts; ev_kind = kind;
          ev_attrs = attrs }
      in
      st.ring.(st.head) <- Some e;
      st.head <- (st.head + 1) mod cap;
      if st.live < cap then st.live <- st.live + 1;
      st.seq <- st.seq + 1;
      Hashtbl.replace st.kind_counts kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.kind_counts kind)))

let recent ?limit () =
  let all = with_lock retained_locked in
  match limit with
  | None -> all
  | Some l when l >= List.length all -> all
  | Some l ->
    let drop = List.length all - max 0 l in
    List.filteri (fun i _ -> i >= drop) all

let total () = with_lock (fun () -> st.seq)

let dropped () = with_lock (fun () -> st.seq - st.live)

let counts () =
  with_lock (fun () ->
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.kind_counts []))

let reset () =
  with_lock (fun () ->
      Array.fill st.ring 0 (Array.length st.ring) None;
      st.head <- 0;
      st.live <- 0;
      st.seq <- 0;
      Hashtbl.reset st.kind_counts)

let event_json e =
  let esc = Metrics.json_escape in
  let attrs =
    match e.ev_attrs with
    | [] -> ""
    | attrs ->
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (esc k) (esc v))
           attrs)
  in
  (* ts needs microsecond wall-clock resolution, which the 9-significant
     -digit Metrics.json_float would truncate away on epoch seconds. *)
  Printf.sprintf {|{"seq":%d,"ts":%.6f,"t_ns":%Ld,"kind":"%s","attrs":{%s}}|}
    e.ev_seq
    (if Float.is_finite e.ev_ts then e.ev_ts else 0.)
    e.ev_t_ns (esc e.ev_kind) attrs

let to_ndjson ?limit () =
  let events = recent ?limit () in
  let header =
    Printf.sprintf {|{"schema":"%s","total":%d,"dropped":%d}|} schema_version
      (total ()) (dropped ())
  in
  String.concat "\n" (header :: List.map event_json events) ^ "\n"
