(** Crash-safe structured event journal (bounded ring buffer).

    The third leg of the observability layer: {!Obs} records {e how
    long} things took and {!Metrics} records {e how many}, but neither
    answers "what just happened, in order?" when a run dies or is
    inspected mid-flight. The journal is an always-on, process-wide
    ring of structured events — stage starts and finishes, per-mode
    quarantines, retries, clique splits, checkpoint writes, GC-pressure
    trips, chaos injections — cheap enough to leave enabled in every
    run (one mutex-guarded array write per event, bounded memory).

    Event kinds are a stable dotted taxonomy, documented in
    DESIGN.md §15 and checked bidirectionally against a real run by the
    eventlog test suite (the same contract style as the §9 span/metric
    tables):

    - [run.*]        process lifecycle ([run.start], [run.finish],
                     [run.signal])
    - [stage.*]      pipeline stage boundaries ([stage.start],
                     [stage.finish], [stage.resumed])
    - [merge.*]      merge-flow outcomes ([merge.quarantined],
                     [merge.degraded])
    - [govern.*]     governance actions ([govern.retry],
                     [govern.clique_split], [govern.pressure])
    - [checkpoint.*] crash-safety ([checkpoint.saved])
    - [chaos.*]      fault injection ([chaos.injected])
    - [serve.*]      telemetry plane lifecycle ([serve.start])

    The journal is {b read-only with respect to results}: nothing in
    the pipeline ever consults it, so logging an event can never
    perturb merged output. Export is schema-versioned NDJSON
    ({!to_ndjson}), written by [--events FILE] on every exit path
    including signals, and served live at [GET /events]. *)

type event = {
  ev_seq : int;
      (** process-wide sequence number, 0-based, gap-free across drops:
          the newest event's [ev_seq] is [total () - 1] even after the
          ring has discarded older entries *)
  ev_t_ns : int64;  (** {!Obs.Clock.now_ns} at log time (monotonic) *)
  ev_ts : float;    (** [Unix.gettimeofday] at log time (wall clock) *)
  ev_kind : string; (** stable taxonomy kind, e.g. ["stage.start"] *)
  ev_attrs : (string * string) list;
}

val schema_version : string
(** ["modemerge-events/1"] — carried by the NDJSON header line. *)

val default_capacity : int
(** Ring capacity when none is set (4096 events). *)

val set_capacity : int -> unit
(** Resize the ring (clamped to at least 1). Existing events are
    retained newest-first up to the new capacity; cumulative counters
    ({!total}, {!counts}) are unaffected. *)

val capacity : unit -> int

val log : ?attrs:(string * string) list -> string -> unit
(** Append one event of the given kind. Never raises, never blocks
    beyond the ring mutex; when the ring is full the oldest event is
    dropped. *)

val recent : ?limit:int -> unit -> event list
(** The retained events, oldest first (newest last). [limit] keeps only
    the newest [limit] of them. *)

val total : unit -> int
(** Events logged since process start (or {!reset}), including ones the
    ring has already dropped. *)

val dropped : unit -> int
(** [total () - length (recent ())]: events discarded by the cap. *)

val counts : unit -> (string * int) list
(** Cumulative per-kind event counts since process start, sorted by
    kind — survives ring wraparound, so it is the "how many retries did
    this whole run see" view {!Mm_util.Runlog} persists into the bench
    history. *)

val reset : unit -> unit
(** Drop every event and zero the cumulative counters (tests). *)

val to_ndjson : ?limit:int -> unit -> string
(** Schema-versioned NDJSON export: a header line
    [{"schema":"modemerge-events/1","total":n,"dropped":d}] followed by
    one JSON object per retained event (oldest first) with fields
    [seq], [ts], [t_ns], [kind] and [attrs]. This is the format
    written by [--events FILE], dumped on crash/signal, and served at
    [GET /events]. *)
