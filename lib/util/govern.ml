type reason =
  | Deadline_exceeded of { scope : string; budget_s : float }
  | Cancelled_by of { scope : string; why : string }
  | Memory_watermark of { used_mb : float; limit_mb : float }

let reason_to_string = function
  | Deadline_exceeded { scope; budget_s } ->
    Printf.sprintf "deadline exceeded in %s (budget %.3gs)" scope budget_s
  | Cancelled_by { scope; why } ->
    Printf.sprintf "%s cancelled: %s" scope why
  | Memory_watermark { used_mb; limit_mb } ->
    Printf.sprintf "memory watermark: %.1f MiB heap over %.1f MiB limit"
      used_mb limit_mb

let reason_code = function
  | Deadline_exceeded _ -> "govern.deadline"
  | Cancelled_by _ -> "govern.cancelled"
  | Memory_watermark _ -> "govern.memory"

exception Cancelled of reason

let () =
  Printexc.register_printer (function
    | Cancelled r -> Some (Printf.sprintf "Govern.Cancelled(%s)" (reason_to_string r))
    | _ -> None)

type token = {
  tk_scope : string;
  tk_deadline_ns : int64 option; (* absolute Obs.Clock.now_ns instant *)
  tk_budget_s : float; (* the relative budget behind tk_deadline_ns *)
  tk_flag : reason option Atomic.t;
  tk_parent : token option;
}

let never =
  {
    tk_scope = "govern";
    tk_deadline_ns = None;
    tk_budget_s = infinity;
    tk_flag = Atomic.make None;
    tk_parent = None;
  }

let scope t = t.tk_scope

let deadline_of ~budget_s =
  Int64.add (Obs.Clock.now_ns ()) (Int64.of_float (budget_s *. 1e9))

let create ?deadline_s ?(scope = "run") () =
  {
    tk_scope = scope;
    tk_deadline_ns = Option.map (fun s -> deadline_of ~budget_s:s) deadline_s;
    tk_budget_s = Option.value deadline_s ~default:infinity;
    tk_flag = Atomic.make None;
    tk_parent = None;
  }

let sub ?scope ?budget_s parent =
  if parent == never && budget_s = None && scope = None then never
  else
    let own = Option.map (fun s -> deadline_of ~budget_s:s) budget_s in
    let deadline_ns, budget =
      match own, parent.tk_deadline_ns with
      | None, d -> d, parent.tk_budget_s
      | (Some _ as d), None -> d, Option.get budget_s
      | Some o, Some p ->
        if Int64.compare o p <= 0 then Some o, Option.get budget_s
        else Some p, parent.tk_budget_s
    in
    {
      tk_scope = Option.value scope ~default:parent.tk_scope;
      tk_deadline_ns = deadline_ns;
      tk_budget_s = budget;
      tk_flag = Atomic.make None;
      tk_parent = Some parent;
    }

let cancel t ~why =
  if t != never && Atomic.get t.tk_flag = None then
    Atomic.set t.tk_flag (Some (Cancelled_by { scope = t.tk_scope; why }))

(* ------------------------------------------------------------------ *)
(* Memory watermark                                                    *)

let mem_limit_mb : float option Atomic.t = Atomic.make None

let memory_limit_mb () = Atomic.get mem_limit_mb

let words_to_mb w = w *. float_of_int (Sys.word_size / 8) /. (1024. *. 1024.)

(* The watermark is consulted from every checkpoint, so a tripped limit
   would journal thousands of identical events; log the first trip only
   (the flag rearms when the limit is reconfigured). *)
let pressure_logged = Atomic.make false

let set_memory_limit_mb l =
  Atomic.set pressure_logged false;
  Atomic.set mem_limit_mb l

let memory_pressure () =
  match Atomic.get mem_limit_mb with
  | None -> None
  | Some limit_mb ->
    (* quick_stat reads the allocation pointers without walking the
       heap, so this is safe to call from every checkpoint. *)
    let st = Gc.quick_stat () in
    let used_mb =
      words_to_mb (float_of_int st.Gc.heap_words +. st.Gc.minor_words
                   -. st.Gc.promoted_words
                   -. float_of_int st.Gc.free_words
                   |> Float.max 0.)
    in
    if used_mb > limit_mb then begin
      if not (Atomic.exchange pressure_logged true) then
        Eventlog.log "govern.pressure"
          ~attrs:
            [ "used_mb", Printf.sprintf "%.1f" used_mb;
              "limit_mb", Printf.sprintf "%.1f" limit_mb ];
      Some (Memory_watermark { used_mb; limit_mb })
    end
    else None

(* ------------------------------------------------------------------ *)
(* Expiry checks                                                       *)

let rec flagged t =
  match Atomic.get t.tk_flag with
  | Some _ as r -> r
  | None -> ( match t.tk_parent with None -> None | Some p -> flagged p)

(* The deadline tree is already folded into each token's own deadline
   at [sub] time, so one comparison covers every ancestor budget. *)
let deadline_hit t =
  match t.tk_deadline_ns with
  | None -> None
  | Some d ->
    if Int64.compare (Obs.Clock.now_ns ()) d >= 0 then
      Some (Deadline_exceeded { scope = t.tk_scope; budget_s = t.tk_budget_s })
    else None

let cancelled t =
  if t == never then None
  else
    match flagged t with
    | Some _ as r -> r
    | None -> (
      match deadline_hit t with
      | Some _ as r -> r
      | None -> memory_pressure ())

let check t = match cancelled t with None -> () | Some r -> raise (Cancelled r)

let expired t = cancelled t <> None

let remaining_s t =
  match t.tk_deadline_ns with
  | None -> None
  | Some d ->
    Some (Float.max 0. (Obs.Clock.ns_to_s (Int64.sub d (Obs.Clock.now_ns ()))))

(* ------------------------------------------------------------------ *)
(* Run root (for /healthz)                                             *)

(* The run's root token, registered by the driver so out-of-band
   observers (the telemetry server's /healthz endpoint) can report
   remaining budget without plumbing the token through the CLI. *)
let run_root_ref : token option Atomic.t = Atomic.make None

let set_run_root t = Atomic.set run_root_ref (Some t)
let clear_run_root () = Atomic.set run_root_ref None
let run_root () = Atomic.get run_root_ref

(* ------------------------------------------------------------------ *)
(* Ambient token                                                       *)

let current_key : token Domain.DLS.key = Domain.DLS.new_key (fun () -> never)

let current () = Domain.DLS.get current_key

let with_current t f =
  let saved = Domain.DLS.get current_key in
  Domain.DLS.set current_key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key saved) f

let checkpoint () =
  let t = Domain.DLS.get current_key in
  if t != never then check t
  else
    (* Even ungoverned runs honour an explicit process-wide watermark. *)
    match Atomic.get mem_limit_mb with
    | None -> ()
    | Some _ -> (
      match memory_pressure () with
      | None -> ()
      | Some r -> raise (Cancelled r))

(* ------------------------------------------------------------------ *)
(* Structured outcomes                                                 *)

type 'a outcome =
  | Done of 'a
  | Interrupted of reason
  | Crashed of { exn : exn; backtrace : Printexc.raw_backtrace }

let run t f =
  match cancelled t with
  | Some r -> Interrupted r
  | None -> (
    match with_current t f with
    | v -> Done v
    | exception Cancelled r -> Interrupted r
    | exception exn ->
      Crashed { exn; backtrace = Printexc.get_raw_backtrace () })

let outcome_map f = function
  | Done v -> Done (f v)
  | Interrupted r -> Interrupted r
  | Crashed c -> Crashed c

let reraise_crash = function
  | Crashed { exn; backtrace } -> Printexc.raise_with_backtrace exn backtrace
  | o -> o

(* ------------------------------------------------------------------ *)
(* Retry with exponential backoff                                      *)

type retry_policy = {
  max_attempts : int;
  base_backoff_s : float;
  multiplier : float;
  max_backoff_s : float;
}

let default_retry =
  { max_attempts = 3; base_backoff_s = 0.001; multiplier = 2.; max_backoff_s = 0.05 }

let backoff_s p ~attempt =
  if attempt <= 1 then 0.
  else
    Float.min p.max_backoff_s
      (p.base_backoff_s *. (p.multiplier ** float_of_int (attempt - 2)))

let sleep_s s = if s > 0. then Unix.sleepf s

let with_retry ?(policy = default_retry) ?transient ?(sleep = sleep_s)
    ?(metric = "govern.retries") token ~scope f =
  let transient =
    match transient with
    | Some p -> p
    | None -> ( function Cancelled _ -> false | _ -> true)
  in
  let max_attempts = max 1 policy.max_attempts in
  let rec attempt n =
    check token;
    match f () with
    | v -> v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      if n >= max_attempts || not (transient exn) then
        Printexc.raise_with_backtrace exn bt
      else begin
        Metrics.incr metric;
        Eventlog.log "govern.retry"
          ~attrs:
            [ "scope", scope;
              "attempt", string_of_int (n + 1);
              "error", Printexc.to_string exn ];
        Obs.with_span "govern.backoff" ~attrs:[ "scope", scope ] (fun () ->
            sleep (backoff_s policy ~attempt:(n + 1)));
        attempt (n + 1)
      end
  in
  attempt 1
