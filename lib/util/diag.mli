(** Structured diagnostics.

    Every recoverable problem in the pipeline — lexing, parsing,
    resolution, merging — is reported as a {!t}: a severity, a stable
    error code, an optional source location and a message. Diagnostics
    are accumulated in a {!collector} per run and rendered either as
    one-per-line text ([file:line:col: severity[code]: msg], the format
    the CLI prints to stderr) or as a JSON array for machine
    consumption.

    Error codes are stable dotted identifiers, grouped by subsystem:
    - [lex.*]    tokeniser errors (e.g. [lex.unterminated-string])
    - [sdc.*]    parse/resolve errors (e.g. [sdc.unknown-command],
                 [sdc.no-match])
    - [merge.*]  merge-flow degradation (e.g. [merge.quarantined],
                 [merge.group-degraded])
    - [io.*]     file/netlist loading (e.g. [io.netlist])

    Codes are part of the tool's observable interface: scripts may
    filter on them, so changing one is a breaking change. *)

type severity = Info | Warning | Error | Fatal

val severity_to_string : severity -> string
val severity_rank : severity -> int
(** [Info] = 0 ... [Fatal] = 3; higher is worse. *)

type loc = { file : string; line : int; col : int }
(** [line]/[col] are 1-based; 0 means unknown (omitted when rendered).
    [file] may be ["<string>"] for in-memory sources. *)

val loc : ?line:int -> ?col:int -> string -> loc
(** [loc file] with unknown line/col unless given. *)

type t = {
  severity : severity;
  code : string;
  dloc : loc option;
  message : string;
}

val make : ?loc:loc -> severity -> code:string -> string -> t

val makef :
  ?loc:loc -> severity -> code:string -> ('a, unit, string, t) format4 -> 'a

val to_string : t -> string
(** [file:line:col: severity[code]: msg]; unknown location parts are
    omitted ([file: severity[code]: msg], [severity[code]: msg]). *)

val to_json : t -> string
(** One JSON object, e.g.
    [{"severity":"error","code":"sdc.parse","file":"a.sdc","line":3,"col":1,"message":"..."}] *)

val render_text : t list -> string
(** One {!to_string} line per diagnostic. *)

val render_json : t list -> string
(** JSON array of {!to_json} objects. *)

val messages : t list -> string list
(** Messages only, in order — the legacy [string list] warning shape. *)

val max_severity : t list -> severity option
(** Worst severity present, [None] on the empty list. *)

val has_errors : t list -> bool
(** True iff any diagnostic is [Error] or [Fatal]. *)

val count : severity -> t list -> int

(** {2 Per-run accumulation} *)

type collector

val collector : unit -> collector

val add : collector -> t -> unit

val addf :
  collector ->
  ?loc:loc ->
  severity ->
  code:string ->
  ('a, unit, string, unit) format4 ->
  'a

val to_list : collector -> t list
(** Diagnostics in insertion order. *)

val is_empty : collector -> bool
