let finite xs = List.filter Float.is_finite xs

let mean_opt = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let mean xs = Option.value ~default:0. (mean_opt xs)

let stddev_opt xs =
  match finite xs with
  | [] | [ _ ] -> None
  | xs ->
    let n = float_of_int (List.length xs) in
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    Some (sqrt (ss /. (n -. 1.)))

let stddev xs = Option.value ~default:0. (stddev_opt xs)

(* Normal approximation: z = 1.96. Our baselines are a handful of runs,
   where a t-quantile would be wider, but the regression gate adds its
   own absolute slack on top (see Runlog), so the simple constant is
   enough — and it keeps this module dependency-free. *)
let ci95_halfwidth xs =
  match finite xs with
  | [] | [ _ ] -> 0.
  | fs ->
    let n = float_of_int (List.length fs) in
    1.96 *. stddev fs /. sqrt n

(* Nearest-rank percentile over the finite samples; [q] clamped to
   [0,1]. rank = ceil(q*n), 1-based, clamped into the sorted array. *)
let percentile_opt q xs =
  match finite xs with
  | [] -> None
  | fs ->
    let a = Array.of_list fs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    Some a.(max 0 (min (n - 1) (rank - 1)))

let percentile q xs = Option.value ~default:0. (percentile_opt q xs)

let median xs = percentile 0.5 xs

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

let reduction_percent before after =
  if Float.is_nan before || Float.is_nan after || before <= 0. then 0.
  else
    let r = 100. *. (before -. after) /. before in
    if Float.is_finite r then r else 0.

let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_time_s v = Printf.sprintf "%.3f" v
