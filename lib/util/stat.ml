let mean_opt = function
  | [] -> None
  | xs -> Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let mean xs = Option.value ~default:0. (mean_opt xs)

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

let reduction_percent before after =
  if Float.is_nan before || Float.is_nan after || before <= 0. then 0.
  else
    let r = 100. *. (before -. after) /. before in
    if Float.is_finite r then r else 0.

let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_time_s v = Printf.sprintf "%.3f" v
