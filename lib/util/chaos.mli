(** Deterministic fault injection for the chaos suite.

    The PR-1 {!Mm_workload.Fuzz_inputs} harness corrupts {e inputs};
    this module injects {e execution} faults — task delays, raised
    exceptions and hard mid-run kills — at named sites compiled into
    the pipeline, so the [@chaos] matrix can exercise the governance
    ladder (retry, clique split, quarantine) and the
    checkpoint/resume path without races or sleeps in test code.

    A fault plan is a comma-separated spec, parsed from the
    [MM_CHAOS] environment variable (the CLI hooks it up) or set
    directly by tests:

    {v SITE@OCC=FAULT[,SITE@OCC=FAULT...] v}

    where [SITE] is a compiled-in site name ([pool.task], [io.read],
    [merge.stage:load], ...), [OCC] is a 1-based occurrence number or
    [*] for every occurrence, and [FAULT] is one of

    - [delay:MS] — sleep MS milliseconds at the site (drives the
      deadline/timeout paths);
    - [raise] — raise {!Injected} at the site (drives retry and
      quarantine paths);
    - [kill] / [kill:STATUS] — terminate the process immediately with
      [Unix._exit] (default status 137), bypassing [at_exit] — the
      crash the checkpoint/resume contract recovers from.

    Occurrences are counted per site under a mutex, so a plan is
    deterministic for a given execution order; sites fired from pool
    workers are deterministic in {e effect} (any governed task hit by
    a fault is retried or degraded identically) even when the hit
    task index varies with scheduling. With no plan configured,
    {!hit} is one atomic load. *)

exception Injected of string
(** Raised by a [raise] fault; the payload is the site name. *)

val configure : string -> (unit, string) result
(** Install a fault plan, replacing any previous one and resetting
    occurrence counters. [Error msg] on a malformed spec (no plan is
    installed). The empty string clears the plan. *)

val configure_env : unit -> unit
(** [configure] from [MM_CHAOS] when set; malformed specs abort with
    an error on stderr (a chaos run with a typo must not silently
    test nothing). *)

val clear : unit -> unit
(** Drop the plan and occurrence counters. *)

val active : unit -> bool

val hit : string -> unit
(** Announce reaching a site: bumps its occurrence counter and fires
    every matching fault. No-op (one atomic load) when no plan is
    installed. *)

val hit_count : string -> int
(** Occurrences of a site so far under the current plan. *)
