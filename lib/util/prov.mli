(** Provenance lineage store: why does this constraint exist?

    The merge pipeline's trustworthiness argument is that every
    constraint of the merged mode, and every refinement-added false
    path, has a provable origin — a preliminary-merge rule applied to
    identifiable source modes, or a comparison-pass mismatch with
    concrete path evidence. This module is the generic half of that
    record: an ordered store of {!entry} values, one per emitted
    constraint, each carrying a stable id, the canonical SDC text, the
    producing rule, the contributing modes, and structured evidence.
    [Mm_core.Provenance] derives the entries from the pipeline's data;
    the audit report ([--audit]), the [modemerge explain] subcommand
    and the [--annotate] writer all read them from here.

    {b Id scheme.} Entries are numbered in constraint emission order —
    the order of [Mode.to_commands] on the merged mode — and the id is
    ["<scope>#c<N>"] (e.g. ["merged_0#c12"]), where the scope is the
    merged mode's name. Emission order is a function of the merged
    mode's content alone, so ids are byte-identical across [--jobs]
    values and across runs (DESIGN.md §11). *)

(** The rule that produced a constraint. The first six are the
    preliminary-merge rules of paper §3.1; [Clock_refinement] covers
    inferred senses/disables (§3.1.8); [Data_clock_refinement] and
    [Comparison_fix] cover refinement-added exceptions (§3.2). *)
type origin =
  | Union  (** present in some mode, carried into the superset *)
  | Intersection  (** kept only because present in {e every} mode *)
  | Tolerance_merge  (** numerically merged within tolerance *)
  | Uniquification  (** exception narrowed to its origin mode's paths *)
  | Derived_exclusivity  (** clock group derived from mode exclusivity *)
  | Inherited  (** carried over verbatim from source-mode groups *)
  | Clock_refinement  (** sense/disable inferred by clock refinement *)
  | Data_clock_refinement  (** false path on a data-only clock use *)
  | Comparison_fix of { pass : int }
      (** exception added by comparison pass 1, 2 or 3 *)

val origin_to_string : origin -> string
(** Stable lower-case rule names used by the audit schema (e.g.
    ["union"], ["comparison-pass2"]). *)

type entry = {
  pv_id : string;  (** stable id, ["<scope>#c<N>"] *)
  pv_line : string;  (** canonical SDC text of the constraint *)
  pv_origin : origin;
  pv_modes : string list;  (** contributing source modes *)
  pv_evidence : (string * string) list list;
      (** structured evidence records (key/value fields), e.g. one per
          comparison-pass mismatch that produced the constraint *)
  pv_notes : string list;  (** free-form human detail *)
}

(** An entry before id assignment, in emission order. *)
type seed = {
  sd_line : string;
  sd_origin : origin;
  sd_modes : string list;
  sd_evidence : (string * string) list list;
  sd_notes : string list;
}

val seed :
  ?modes:string list ->
  ?evidence:(string * string) list list ->
  ?notes:string list ->
  origin:origin ->
  string ->
  seed

type store

val make : scope:string -> seed list -> store
(** Assign ids ([scope#c0], [scope#c1], …) in list order and build the
    line-lookup index. *)

val scope : store -> string
val entries : store -> entry list
(** In id (= emission) order. *)

val length : store -> int

val find_line : store -> string -> entry list
(** All entries whose canonical text equals the given line (compared
    after trimming surrounding whitespace) — how [modemerge explain]
    resolves a pasted merged-SDC line. Duplicated text yields every
    matching entry, in id order. *)

val find_id : store -> string -> entry option

(** {2 Rendering} *)

val explain_entry : entry -> string
(** Multi-line human-readable lineage chain for one entry. *)

val entry_to_json : entry -> string

val to_json : store -> string
(** [{"scope":…,"entries":[…]}] in id order. *)
