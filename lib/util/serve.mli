(** The live telemetry plane: HTTP endpoints over the observability
    registries, plus path-prefix route registration for subsystems
    (the merge service daemon mounts its [/jobs] plane here).

    [--serve [ADDR:]PORT] starts one {!Httpd} server whose built-in
    handler reads the process-global {!Metrics}, {!Progress},
    {!Eventlog}, {!Obs} and {!Govern} state — all thread-safe, all
    already maintained whether or not serving is on, so attaching the
    server perturbs nothing: merged output is byte-identical with and
    without [--serve]. Endpoints:

    - [GET /metrics] — Prometheus text exposition v0.0.4
      ({!Metrics.to_prometheus});
    - [GET /healthz] — one JSON object with process liveness and
      governance state: uptime, the bound serve endpoint
      ([{"addr","port","url"}] — how clients discover an autopicked
      port programmatically), run-root deadline remaining, memory
      watermark, retry/quarantine/degradation counters and the derived
      degradation-ladder position;
    - [GET /progress] — per-stage done/total/ETA JSON
      ({!Progress.to_json});
    - [GET /events] — the recent event journal as NDJSON
      ({!Eventlog.to_ndjson}); [?n=N] limits to the newest N events;
    - [GET /trace] — Chrome trace_event JSON of the spans recorded so
      far ({!Obs.trace_event_json}; non-empty only when tracing is on,
      which [--serve] enables);
    - [GET /] — a plain-text index of the above.

    Unknown paths get a 404; non-GET methods on the built-in
    endpoints get a 405 (registered routes handle their own
    methods). *)

val parse_spec : string -> (string * int, string) result
(** Parse a [--serve] argument: ["PORT"] or ["ADDR:PORT"], e.g.
    ["9090"], ["127.0.0.1:9090"], ["0.0.0.0:0"]. Port 0 asks the OS
    for a free port (the bound port is reported at startup).
    [Error msg] on anything else. *)

val register : prefix:string -> Httpd.handler -> unit
(** Mount [handler] at [prefix]: it receives every request whose path
    equals [prefix] or continues it after a ['/'] (so
    [register ~prefix:"/jobs"] serves [/jobs], [/jobs/j3],
    [/jobs/j3/result], …). Registered routes are consulted before the
    built-in telemetry endpoints, newest registration first. Handlers
    run on the server domain: thread-safe state only. *)

val unregister : prefix:string -> unit
(** Remove every route registered at exactly [prefix]. *)

val endpoint : unit -> (string * int) option
(** The bound [(addr, port)] of the most recently started server, if
    one is running — what [/healthz] reports under ["serve"]. *)

val handler : Httpd.handler
(** The routing handler, exposed for in-process tests. *)

type t

val start : ?max_body_bytes:int -> addr:string -> port:int -> unit -> t
(** Bind and start serving, journal a [serve.start] event (attrs
    [addr], [port] and the full [url]), and return the running server.
    [max_body_bytes] is passed through to {!Httpd.start} — the daemon
    raises it for job submissions.
    @raise Failure when the address cannot be parsed or bound. *)

val addr : t -> string
val port : t -> int
(** The bound address/port (the OS-assigned port when given 0). *)

val stop : t -> unit
(** Shut the server down and clear {!endpoint}. Idempotent. *)
