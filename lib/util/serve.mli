(** The live telemetry plane: HTTP endpoints over the observability
    registries.

    [--serve [ADDR:]PORT] starts one {!Httpd} server whose handler
    reads the process-global {!Metrics}, {!Progress}, {!Eventlog},
    {!Obs} and {!Govern} state — all thread-safe, all already
    maintained whether or not serving is on, so attaching the server
    perturbs nothing: merged output is byte-identical with and without
    [--serve]. Endpoints:

    - [GET /metrics] — Prometheus text exposition v0.0.4
      ({!Metrics.to_prometheus});
    - [GET /healthz] — one JSON object with process liveness and
      governance state: uptime, run-root deadline remaining, memory
      watermark, retry/quarantine/degradation counters and the derived
      degradation-ladder position;
    - [GET /progress] — per-stage done/total/ETA JSON
      ({!Progress.to_json});
    - [GET /events] — the recent event journal as NDJSON
      ({!Eventlog.to_ndjson}); [?n=N] limits to the newest N events;
    - [GET /trace] — Chrome trace_event JSON of the spans recorded so
      far ({!Obs.trace_event_json}; non-empty only when tracing is on,
      which [--serve] enables);
    - [GET /] — a plain-text index of the above.

    Unknown paths get a 404. *)

val parse_spec : string -> (string * int, string) result
(** Parse a [--serve] argument: ["PORT"] or ["ADDR:PORT"], e.g.
    ["9090"], ["127.0.0.1:9090"], ["0.0.0.0:0"]. Port 0 asks the OS
    for a free port (the bound port is reported at startup).
    [Error msg] on anything else. *)

val handler : Httpd.handler
(** The routing handler, exposed for in-process tests. *)

type t

val start : addr:string -> port:int -> t
(** Bind and start serving, journal a [serve.start] event, and return
    the running server.
    @raise Failure when the address cannot be parsed or bound. *)

val addr : t -> string
val port : t -> int
(** The bound address/port (the OS-assigned port when given 0). *)

val stop : t -> unit
(** Shut the server down. Idempotent. *)
