type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_samples : float list;  (* retained reservoir, unspecified order *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

type item = { name : string; value : value }

let max_samples = 1024

(* Internal histogram cell: count/sum/min/max are exact forever; the
   sample reservoir is Algorithm R over a fixed-size array, so a
   misplaced per-element [observe] costs bounded memory (8 KiB) no
   matter how many observations arrive. The PRNG is seeded from the
   histogram name, so a fixed observation sequence keeps a fixed
   reservoir. *)
type hist_state = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  hs_res : float array; (* length max_samples; hs_filled slots live *)
  mutable hs_filled : int;
  hs_rng : Prng.t;
}

type cell = C of int | G of float | H of hist_state

let lock = Mutex.create ()
let tbl : (string, cell) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      let v =
        match Hashtbl.find_opt tbl name with
        | Some (C n) -> C (n + by)
        | _ -> C by
      in
      Hashtbl.replace tbl name v)

let set name x = with_lock (fun () -> Hashtbl.replace tbl name (G x))

let observe name x =
  with_lock (fun () ->
      let h =
        match Hashtbl.find_opt tbl name with
        | Some (H h) -> h
        | _ ->
          let h =
            {
              hs_count = 0;
              hs_sum = 0.;
              hs_min = Float.infinity;
              hs_max = Float.neg_infinity;
              hs_res = Array.make max_samples 0.;
              hs_filled = 0;
              hs_rng = Prng.create (Hashtbl.hash name);
            }
          in
          Hashtbl.replace tbl name (H h);
          h
      in
      h.hs_count <- h.hs_count + 1;
      h.hs_sum <- h.hs_sum +. x;
      h.hs_min <- Float.min h.hs_min x;
      h.hs_max <- Float.max h.hs_max x;
      if h.hs_filled < max_samples then begin
        h.hs_res.(h.hs_filled) <- x;
        h.hs_filled <- h.hs_filled + 1
      end
      else begin
        (* Algorithm R: the n-th observation replaces a random slot
           with probability max_samples/n, keeping every observation
           equally likely to be retained. *)
        let j = Prng.int h.hs_rng h.hs_count in
        if j < max_samples then h.hs_res.(j) <- x
      end)

let freeze_hist h =
  {
    h_count = h.hs_count;
    h_sum = h.hs_sum;
    h_min = (if h.hs_count = 0 then 0. else h.hs_min);
    h_max = (if h.hs_count = 0 then 0. else h.hs_max);
    h_samples = Array.to_list (Array.sub h.hs_res 0 h.hs_filled);
  }

let value_of_cell = function
  | C n -> Counter n
  | G x -> Gauge x
  | H h -> Histogram (freeze_hist h)

let get name =
  with_lock (fun () -> Option.map value_of_cell (Hashtbl.find_opt tbl name))

let get_counter name =
  match get name with Some (Counter n) -> n | Some _ | None -> 0

let snapshot () =
  let items =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name cell acc -> { name; value = value_of_cell cell } :: acc)
          tbl [])
  in
  List.sort (fun a b -> String.compare a.name b.name) items

let reset () = with_lock (fun () -> Hashtbl.reset tbl)

let counters () =
  List.filter_map
    (fun i ->
      match i.value with
      | Counter n -> Some (i.name, n)
      | Gauge _ | Histogram _ -> None)
    (snapshot ())

let restore_counters cs =
  with_lock (fun () ->
      List.iter (fun (name, n) -> Hashtbl.replace tbl name (C n)) cs)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.9g" x else "0"

(* Guarded against an empty reservoir (a histogram restored from a
   snapshot, or constructed by hand in tests): Stat.percentile already
   maps [] to 0., and the finite filter inside it drops NaN samples,
   so no export path can emit nan/inf or raise here. *)
let percentile h q = match h.h_samples with [] -> 0. | s -> Stat.percentile q s

let json_of_value = function
  | Counter n -> string_of_int n
  | Gauge x -> json_float x
  | Histogram h ->
    Printf.sprintf
      {|{"count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p90":%s,"p99":%s}|}
      h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
      (json_float (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count))
      (json_float (percentile h 0.50))
      (json_float (percentile h 0.90))
      (json_float (percentile h 0.99))

let json_of_items items =
  let field { name; value } =
    Printf.sprintf {|"%s":%s|} (json_escape name) (json_of_value value)
  in
  "{" ^ String.concat "," (List.map field items) ^ "}"

let to_json () = json_of_items (snapshot ())

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (v0.0.4)                                 *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — our dotted names map dots
   (and anything else illegal) to underscores, and a leading digit gets
   a '_' prefix. *)
let prometheus_name name =
  let b = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char b '_';
        Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

(* Prometheus floats: plain decimal or exponent notation; non-finite
   values are representable (+Inf/-Inf/NaN) but we never emit them —
   the registry's exports are NaN-free by contract. *)
let prometheus_float x =
  if not (Float.is_finite x) then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* Cumulative histogram buckets derived from the retained reservoir.

   The reservoir is a uniform sample of the observation stream, so the
   cumulative count at bound [le] is estimated as
   [count_in_reservoir(<= le) * h_count / filled] (floored — monotone
   because the reservoir's cumulative counts are monotone and the
   scale factor is a positive constant), while [_count] and [_sum]
   stay exact. Below [max_samples] observations the reservoir is the
   whole stream and the buckets are exact too. Bounds: 8 log-spaced
   cut points between the reservoir's min and max (linear when the
   data spans zero or negatives), a pure function of the sample set so
   repeated scrapes of an idle registry are byte-identical. *)
let prometheus_buckets h =
  let samples = List.filter Float.is_finite h.h_samples in
  match samples with
  | [] -> []
  | _ ->
    let filled = List.length samples in
    let lo = List.fold_left Float.min Float.infinity samples
    and hi = List.fold_left Float.max Float.neg_infinity samples in
    let n_bounds = 8 in
    let bounds =
      if lo >= hi then [ hi ]
      else if lo > 0. then
        (* log-spaced: right for latency-style data spanning decades *)
        List.init n_bounds (fun i ->
            lo
            *. Float.exp
                 (Float.log (hi /. lo)
                 *. float_of_int (i + 1)
                 /. float_of_int n_bounds))
      else
        List.init n_bounds (fun i ->
            lo +. ((hi -. lo) *. float_of_int (i + 1) /. float_of_int n_bounds))
    in
    let scale = float_of_int h.h_count /. float_of_int filled in
    List.map
      (fun le ->
        let in_res =
          List.length (List.filter (fun s -> s <= le) samples)
        in
        le, int_of_float (Float.of_int in_res *. scale))
      bounds

let prometheus_of_items items =
  let b = Buffer.create 2048 in
  List.iter
    (fun { name; value } ->
      let pname = prometheus_name name in
      (match value with
      | Counter n ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" pname);
        Buffer.add_string b (Printf.sprintf "%s %d\n" pname n)
      | Gauge x ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" pname);
        Buffer.add_string b
          (Printf.sprintf "%s %s\n" pname (prometheus_float x))
      | Histogram h ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" pname);
        List.iter
          (fun (le, cum) ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname
                 (prometheus_float le) cum))
          (prometheus_buckets h);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.h_count);
        Buffer.add_string b
          (Printf.sprintf "%s_sum %s\n" pname (prometheus_float h.h_sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" pname h.h_count)))
    items;
  Buffer.contents b

let to_prometheus () = prometheus_of_items (snapshot ())
