type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_samples : float list;  (* reverse observation order *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

type item = { name : string; value : value }

let lock = Mutex.create ()
let tbl : (string, value) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      let v =
        match Hashtbl.find_opt tbl name with
        | Some (Counter n) -> Counter (n + by)
        | _ -> Counter by
      in
      Hashtbl.replace tbl name v)

let set name x = with_lock (fun () -> Hashtbl.replace tbl name (Gauge x))

let observe name x =
  with_lock (fun () ->
      let v =
        match Hashtbl.find_opt tbl name with
        | Some (Histogram h) ->
          Histogram
            {
              h_count = h.h_count + 1;
              h_sum = h.h_sum +. x;
              h_min = Float.min h.h_min x;
              h_max = Float.max h.h_max x;
              h_samples = x :: h.h_samples;
            }
        | _ ->
          Histogram
            { h_count = 1; h_sum = x; h_min = x; h_max = x; h_samples = [ x ] }
      in
      Hashtbl.replace tbl name v)

let get name = with_lock (fun () -> Hashtbl.find_opt tbl name)

let get_counter name =
  match get name with Some (Counter n) -> n | Some _ | None -> 0

let snapshot () =
  let items =
    with_lock (fun () ->
        Hashtbl.fold (fun name value acc -> { name; value } :: acc) tbl [])
  in
  List.sort (fun a b -> String.compare a.name b.name) items

let reset () = with_lock (fun () -> Hashtbl.reset tbl)

let counters () =
  List.filter_map
    (fun i ->
      match i.value with
      | Counter n -> Some (i.name, n)
      | Gauge _ | Histogram _ -> None)
    (snapshot ())

let restore_counters cs =
  with_lock (fun () ->
      List.iter (fun (name, n) -> Hashtbl.replace tbl name (Counter n)) cs)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.9g" x else "0"

(* Nearest-rank on the sorted sample set; [q] in [0,1]. *)
let percentile h q =
  match h.h_samples with
  | [] -> 0.
  | samples ->
    let a = Array.of_list samples in
    Array.sort Float.compare a;
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let json_of_value = function
  | Counter n -> string_of_int n
  | Gauge x -> json_float x
  | Histogram h ->
    Printf.sprintf
      {|{"count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p90":%s,"p99":%s}|}
      h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
      (json_float (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count))
      (json_float (percentile h 0.50))
      (json_float (percentile h 0.90))
      (json_float (percentile h 0.99))

let json_of_items items =
  let field { name; value } =
    Printf.sprintf {|"%s":%s|} (json_escape name) (json_of_value value)
  in
  "{" ^ String.concat "," (List.map field items) ^ "}"

let to_json () = json_of_items (snapshot ())
