type histogram = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_samples : float list;  (* retained reservoir, unspecified order *)
}

type value = Counter of int | Gauge of float | Histogram of histogram

type item = { name : string; value : value }

let max_samples = 1024

(* Internal histogram cell: count/sum/min/max are exact forever; the
   sample reservoir is Algorithm R over a fixed-size array, so a
   misplaced per-element [observe] costs bounded memory (8 KiB) no
   matter how many observations arrive. The PRNG is seeded from the
   histogram name, so a fixed observation sequence keeps a fixed
   reservoir. *)
type hist_state = {
  mutable hs_count : int;
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  hs_res : float array; (* length max_samples; hs_filled slots live *)
  mutable hs_filled : int;
  hs_rng : Prng.t;
}

type cell = C of int | G of float | H of hist_state

let lock = Mutex.create ()
let tbl : (string, cell) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      let v =
        match Hashtbl.find_opt tbl name with
        | Some (C n) -> C (n + by)
        | _ -> C by
      in
      Hashtbl.replace tbl name v)

let set name x = with_lock (fun () -> Hashtbl.replace tbl name (G x))

let observe name x =
  with_lock (fun () ->
      let h =
        match Hashtbl.find_opt tbl name with
        | Some (H h) -> h
        | _ ->
          let h =
            {
              hs_count = 0;
              hs_sum = 0.;
              hs_min = Float.infinity;
              hs_max = Float.neg_infinity;
              hs_res = Array.make max_samples 0.;
              hs_filled = 0;
              hs_rng = Prng.create (Hashtbl.hash name);
            }
          in
          Hashtbl.replace tbl name (H h);
          h
      in
      h.hs_count <- h.hs_count + 1;
      h.hs_sum <- h.hs_sum +. x;
      h.hs_min <- Float.min h.hs_min x;
      h.hs_max <- Float.max h.hs_max x;
      if h.hs_filled < max_samples then begin
        h.hs_res.(h.hs_filled) <- x;
        h.hs_filled <- h.hs_filled + 1
      end
      else begin
        (* Algorithm R: the n-th observation replaces a random slot
           with probability max_samples/n, keeping every observation
           equally likely to be retained. *)
        let j = Prng.int h.hs_rng h.hs_count in
        if j < max_samples then h.hs_res.(j) <- x
      end)

let freeze_hist h =
  {
    h_count = h.hs_count;
    h_sum = h.hs_sum;
    h_min = (if h.hs_count = 0 then 0. else h.hs_min);
    h_max = (if h.hs_count = 0 then 0. else h.hs_max);
    h_samples = Array.to_list (Array.sub h.hs_res 0 h.hs_filled);
  }

let value_of_cell = function
  | C n -> Counter n
  | G x -> Gauge x
  | H h -> Histogram (freeze_hist h)

let get name =
  with_lock (fun () -> Option.map value_of_cell (Hashtbl.find_opt tbl name))

let get_counter name =
  match get name with Some (Counter n) -> n | Some _ | None -> 0

let snapshot () =
  let items =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name cell acc -> { name; value = value_of_cell cell } :: acc)
          tbl [])
  in
  List.sort (fun a b -> String.compare a.name b.name) items

let reset () = with_lock (fun () -> Hashtbl.reset tbl)

let counters () =
  List.filter_map
    (fun i ->
      match i.value with
      | Counter n -> Some (i.name, n)
      | Gauge _ | Histogram _ -> None)
    (snapshot ())

let restore_counters cs =
  with_lock (fun () ->
      List.iter (fun (name, n) -> Hashtbl.replace tbl name (C n)) cs)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.9g" x else "0"

let percentile h q = Stat.percentile q h.h_samples

let json_of_value = function
  | Counter n -> string_of_int n
  | Gauge x -> json_float x
  | Histogram h ->
    Printf.sprintf
      {|{"count":%d,"sum":%s,"min":%s,"max":%s,"mean":%s,"p50":%s,"p90":%s,"p99":%s}|}
      h.h_count (json_float h.h_sum) (json_float h.h_min) (json_float h.h_max)
      (json_float (if h.h_count = 0 then 0. else h.h_sum /. float_of_int h.h_count))
      (json_float (percentile h 0.50))
      (json_float (percentile h 0.90))
      (json_float (percentile h 0.99))

let json_of_items items =
  let field { name; value } =
    Printf.sprintf {|"%s":%s|} (json_escape name) (json_of_value value)
  in
  "{" ^ String.concat "," (List.map field items) ^ "}"

let to_json () = json_of_items (snapshot ())
