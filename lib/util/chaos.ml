exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Chaos.Injected(%s)" site)
    | _ -> None)

type fault = Delay_s of float | Raise | Kill of int

type occurrence = Nth of int | Every

type entry = { e_site : string; e_occ : occurrence; e_fault : fault }

type plan = { entries : entry list; counts : (string, int) Hashtbl.t }

let enabled = Atomic.make false
let lock = Mutex.create ()
let plan : plan option ref = ref None

let parse_entry s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "chaos entry %S: missing '='" s)
  | Some eq -> (
    let lhs = String.sub s 0 eq in
    let rhs = String.sub s (eq + 1) (String.length s - eq - 1) in
    let site, occ =
      match String.rindex_opt lhs '@' with
      | None -> lhs, Ok Every
      | Some at ->
        let o = String.sub lhs (at + 1) (String.length lhs - at - 1) in
        ( String.sub lhs 0 at,
          if o = "*" then Ok Every
          else
            match int_of_string_opt o with
            | Some n when n >= 1 -> Ok (Nth n)
            | _ -> Error (Printf.sprintf "chaos entry %S: bad occurrence %S" s o)
        )
    in
    match occ with
    | Error _ as e -> e
    | Ok occ -> (
      let fault =
        match String.split_on_char ':' rhs with
        | [ "raise" ] -> Ok Raise
        | [ "kill" ] -> Ok (Kill 137)
        | [ "kill"; st ] -> (
          match int_of_string_opt st with
          | Some st -> Ok (Kill st)
          | None -> Error (Printf.sprintf "chaos entry %S: bad kill status" s))
        | [ "delay"; ms ] -> (
          match float_of_string_opt ms with
          | Some ms when ms >= 0. -> Ok (Delay_s (ms /. 1000.))
          | _ -> Error (Printf.sprintf "chaos entry %S: bad delay" s))
        | _ -> Error (Printf.sprintf "chaos entry %S: unknown fault %S" s rhs)
      in
      match fault with
      | Error _ as e -> e
      | Ok fault -> Ok { e_site = site; e_occ = occ; e_fault = fault }))

let clear () =
  Mutex.lock lock;
  plan := None;
  Atomic.set enabled false;
  Mutex.unlock lock

let configure spec =
  let spec = String.trim spec in
  if spec = "" then begin
    clear ();
    Ok ()
  end
  else
    let parts =
      List.filter (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' spec))
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: tl -> (
        match parse_entry p with
        | Ok e -> go (e :: acc) tl
        | Error _ as e -> e)
    in
    match go [] parts with
    | Error msg -> Error msg
    | Ok entries ->
      Mutex.lock lock;
      plan := Some { entries; counts = Hashtbl.create 8 };
      Atomic.set enabled true;
      Mutex.unlock lock;
      Ok ()

let configure_env () =
  match Sys.getenv_opt "MM_CHAOS" with
  | None | Some "" -> ()
  | Some spec -> (
    match configure spec with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "fatal[chaos.spec]: %s\n%!" msg;
      exit 2)

let active () = Atomic.get enabled

let hit_count site =
  if not (Atomic.get enabled) then 0
  else begin
    Mutex.lock lock;
    let n =
      match !plan with
      | None -> 0
      | Some p -> Option.value ~default:0 (Hashtbl.find_opt p.counts site)
    in
    Mutex.unlock lock;
    n
  end

let hit site =
  if Atomic.get enabled then begin
    Mutex.lock lock;
    let faults =
      match !plan with
      | None -> []
      | Some p ->
        let n = 1 + Option.value ~default:0 (Hashtbl.find_opt p.counts site) in
        Hashtbl.replace p.counts site n;
        List.filter_map
          (fun e ->
            if
              e.e_site = site
              && (match e.e_occ with Every -> true | Nth k -> k = n)
            then Some e.e_fault
            else None)
          p.entries
    in
    Mutex.unlock lock;
    (* Journal the injection before firing: a Kill fault never returns,
       and the crash-dump path wants the event in the ring. *)
    if faults <> [] then
      Eventlog.log "chaos.injected"
        ~attrs:
          [ "site", site;
            "faults",
            String.concat ","
              (List.map
                 (function
                   | Delay_s s -> Printf.sprintf "delay:%g" s
                   | Raise -> "raise"
                   | Kill status -> Printf.sprintf "kill:%d" status)
                 faults) ];
    (* Fire outside the lock: a delay must not serialise other sites,
       and a raise must not leave the mutex held. *)
    List.iter
      (function
        | Delay_s s -> if s > 0. then Unix.sleepf s
        | Raise -> raise (Injected site)
        | Kill status ->
          (* A hard crash: skip at_exit so nothing "cleans up" the
             state the checkpoint/resume contract must recover from. *)
          prerr_string (Printf.sprintf "chaos: killing process at %s\n" site);
          flush stderr;
          Unix._exit status)
      faults
  end
