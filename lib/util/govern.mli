(** Resource governance: cancellation, deadlines, retries, watermarks.

    The merge pipeline is a long multi-stage computation whose cost
    grows with [#modes x #corners]; at production scale a runaway task
    must not wedge the run and a killed process must not forfeit it.
    This module is the mechanism half of that contract (policy lives in
    [Mm_core.Merge_flow]):

    - {b Cancellation tokens} ({!token}) carry an optional absolute
      deadline on {!Obs.Clock} plus an explicit cancel flag, and form a
      tree: a child created with {!sub} expires when its own budget or
      any ancestor does.
    - {b Cooperative checkpoints}: compute code calls {!checkpoint} at
      loop boundaries; the ambient token (installed per pool task by
      {!Mm_util.Pool}) is consulted and {!Cancelled} raised when the
      budget is gone. When no token is installed the call is a single
      physical-equality test — checkpoints may live in hot paths.
    - {b Retry with exponential backoff} ({!with_retry}) for
      transiently failing work, counted in the [govern.retries] metric.
    - {b Memory watermarks}: an optional process-wide heap limit
      checked from {!check} via [Gc.quick_stat] (no heap walk), so a
      blown watermark surfaces as an orderly {!Cancelled} at the next
      checkpoint instead of an OOM kill.
    - {b Structured outcomes} ({!outcome}): {!run} executes a thunk
      under a token and returns [Done]/[Interrupted]/[Crashed] instead
      of raising, preserving the raw backtrace of crashes so
      diagnostics point at the real failure site.

    Determinism note: governance never perturbs results by itself —
    a token that never expires makes every combinator the identity.
    Only the {e policies} reacting to [Interrupted] outcomes (see the
    Merge_flow degradation ladder) change output, and they do so
    through the same quarantine/degrade values as PR 1. *)

(** Why a computation was interrupted. *)
type reason =
  | Deadline_exceeded of { scope : string; budget_s : float }
  | Cancelled_by of { scope : string; why : string }
  | Memory_watermark of { used_mb : float; limit_mb : float }

val reason_to_string : reason -> string
(** Human rendering, e.g.
    ["deadline exceeded in merge.cliques (budget 2.5s)"]. *)

val reason_code : reason -> string
(** Stable {!Diag} code: [govern.deadline], [govern.cancelled] or
    [govern.memory]. *)

exception Cancelled of reason
(** Raised by {!check}/{!checkpoint} when the governing token has
    expired. {!Mm_util.Pool.map_outcome} converts it into
    [Interrupted]; it never escapes a governed pool batch. *)

type token

val never : token
(** The non-expiring token: no deadline, cannot be cancelled. All
    governance entry points treat it as "governance off". *)

val create : ?deadline_s:float -> ?scope:string -> unit -> token
(** Root token. [deadline_s] is a relative budget from now, measured
    on {!Obs.Clock}; omitted means no deadline. *)

val sub : ?scope:string -> ?budget_s:float -> token -> token
(** Child token: expires at [min] of the parent's deadline and
    [now + budget_s], and additionally whenever the parent is
    cancelled. [sub never] with no budget is [never] itself. *)

val scope : token -> string

val cancel : token -> why:string -> unit
(** Explicitly cancel (idempotent). {!never} ignores it. *)

val cancelled : token -> reason option
(** Polling check: explicit cancel, expired deadline (own or
    ancestor's), or memory watermark — cheapest first. [None] on a
    live token. *)

val check : token -> unit
(** @raise Cancelled when {!cancelled} is [Some _]. *)

val expired : token -> bool

val remaining_s : token -> float option
(** Seconds until the nearest deadline; [None] when undeadlined. *)

(** {2 Run root}

    The driver registers its root token here so out-of-band observers —
    the telemetry server's [/healthz] endpoint — can report the run's
    remaining budget and liveness without the token being threaded to
    them. Purely informational: nothing cancels through this hook. *)

val set_run_root : token -> unit
val clear_run_root : unit -> unit
val run_root : unit -> token option

(** {2 Ambient token}

    The pool installs each task's token in domain-local storage so
    compute code deep in the pipeline (comparison passes, STA
    propagation) can checkpoint without threading a token through
    every signature. *)

val with_current : token -> (unit -> 'a) -> 'a
(** Install [token] as this domain's ambient token for the extent of
    the thunk (restored on raise). *)

val current : unit -> token
(** The ambient token; {!never} when nothing is installed. *)

val checkpoint : unit -> unit
(** [check (current ())] — the cooperative cancellation point. Free
    (one physical-equality test) when no token is installed. *)

(** {2 Memory watermark} *)

val set_memory_limit_mb : float option -> unit
(** Process-wide heap watermark in MiB of major+minor heap words
    ([None] disables, the default). Checked by {!check}/{!checkpoint}
    via [Gc.quick_stat]. *)

val memory_limit_mb : unit -> float option

val memory_pressure : unit -> reason option
(** [Some (Memory_watermark _)] when the live heap exceeds the
    configured watermark. The first trip after a limit is (re)set also
    journals one [govern.pressure] event. *)

(** {2 Structured outcomes} *)

type 'a outcome =
  | Done of 'a
  | Interrupted of reason
      (** the token expired — at entry, or at a checkpoint inside *)
  | Crashed of { exn : exn; backtrace : Printexc.raw_backtrace }
      (** the thunk raised; the backtrace is captured at the raise
          site so a re-raise points at the real failure *)

val run : token -> (unit -> 'a) -> 'a outcome
(** Execute the thunk with [token] installed as the ambient token,
    checking it once on entry. Never raises. *)

val outcome_map : ('a -> 'b) -> 'a outcome -> 'b outcome

val reraise_crash : 'a outcome -> 'a outcome
(** Re-raise a [Crashed] outcome with its original backtrace; identity
    otherwise. *)

(** {2 Retry with exponential backoff} *)

type retry_policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_backoff_s : float;  (** sleep before attempt 2 *)
  multiplier : float;  (** backoff growth per further attempt *)
  max_backoff_s : float;  (** backoff ceiling *)
}

val default_retry : retry_policy
(** 3 attempts, 1 ms base, x2, capped at 50 ms — tuned for transient
    in-process hiccups, not remote services. *)

val backoff_s : retry_policy -> attempt:int -> float
(** Backoff before [attempt] (2-based): [base * multiplier^(a-2)],
    capped. *)

val sleep_s : float -> unit
(** Default sleep ([Unix.sleepf]; no-op for non-positive values). *)

val with_retry :
  ?policy:retry_policy ->
  ?transient:(exn -> bool) ->
  ?sleep:(float -> unit) ->
  ?metric:string ->
  token ->
  scope:string ->
  (unit -> 'a) ->
  'a
(** Run the thunk, re-running it after [transient] failures (default:
    every exception except {!Cancelled}) with exponential backoff,
    until it succeeds, attempts are exhausted (the last exception is
    re-raised with its backtrace), or [token] expires (checked before
    every attempt; raises {!Cancelled}). Each re-attempt increments
    [metric] (default ["govern.retries"]) and journals a
    [govern.retry] event. [sleep] is injectable so tests retry without
    wall-clock delay. *)
