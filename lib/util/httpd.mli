(** Minimal hand-rolled HTTP/1.1 server for the live telemetry plane.

    Just enough HTTP to serve [GET /metrics] and friends to curl,
    Prometheus and a browser, with zero dependencies beyond [unix]:

    - one listening socket, one {e dedicated domain} running the
      accept loop — the pipeline's driver and pool domains never block
      on network I/O, and a slow scraper can at worst delay the next
      scraper, never the merge;
    - connections are served sequentially on that domain, one request
      per connection ([Connection: close]) — correct and tiny, and
      plenty for a telemetry endpoint scraped a few times a second;
    - requests are size-capped (16 KiB) and read under a receive
      timeout, so a stuck client cannot pin the server domain;
    - handlers run on the server domain and must therefore only touch
      thread-safe state (the {!Metrics}/{!Obs}/{!Eventlog}/{!Progress}
      registries all are).

    Binding to port 0 lets the OS pick a free port ({!port} reports the
    real one) — this is how tests avoid port races, and how [--serve 0]
    behaves. *)

type request = {
  rq_method : string;            (** e.g. ["GET"] *)
  rq_path : string;              (** decoded path, e.g. ["/metrics"] *)
  rq_query : (string * string) list;  (** decoded query pairs, in order *)
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

val respond : ?status:int -> ?content_type:string -> string -> response
(** Build a response (defaults: 200, [text/plain; charset=utf-8]). *)

val not_found : response

type handler = request -> response
(** Must not raise; a raising handler is answered with a 500 and the
    server keeps going. *)

type t

val start : ?addr:string -> ?port:int -> handler -> t
(** Bind [addr:port] (default [127.0.0.1:0]), start the accept-loop
    domain and return the running server.
    @raise Failure when the address cannot be parsed or bound. *)

val addr : t -> string
(** The bound address, e.g. ["127.0.0.1"]. *)

val port : t -> int
(** The bound port — the OS-assigned one when [start] was given 0. *)

val stop : t -> unit
(** Close the listening socket and join the server domain. Idempotent.
    In-flight responses finish; no new connections are accepted. *)

val get : ?addr:string -> port:int -> string -> int * string
(** Tiny blocking HTTP/1.1 client for tests and smoke checks:
    [get ~port "/metrics"] returns [(status, body)].
    @raise Unix.Unix_error / Failure on connection or protocol
    failure. *)
