(** Minimal hand-rolled HTTP/1.1 server for the live telemetry plane
    and the merge service daemon.

    Just enough HTTP to serve [GET /metrics] and friends to curl,
    Prometheus and a browser — and, since the service PR, to accept
    merge jobs over [POST /jobs] — with zero dependencies beyond
    [unix]:

    - one listening socket, one {e dedicated domain} running the
      accept loop — the pipeline's driver and pool domains never block
      on network I/O, and a slow scraper can at worst delay the next
      scraper, never the merge;
    - connections are served sequentially on that domain, one request
      per connection ([Connection: close]) — correct and tiny, and
      plenty for a telemetry endpoint scraped a few times a second;
    - the request surface is [GET]/[HEAD]/[POST]/[DELETE]; any other
      method is answered [405] with an [Allow] header before the
      handler runs;
    - header blocks and bodies are size-capped (16 KiB / 1 MiB by
      default, configurable at {!start}) — over-limit requests are
      answered [413] — and reads run under a receive timeout, so a
      stuck client cannot pin the server domain;
    - only [Content-Length] bodies are accepted; a request with a
      [Transfer-Encoding] is answered [501];
    - handlers run on the server domain and must therefore only touch
      thread-safe state (the {!Metrics}/{!Obs}/{!Eventlog}/{!Progress}
      registries all are, and the service scheduler is
      mutex-protected).

    Binding to port 0 lets the OS pick a free port ({!port} reports the
    real one) — this is how tests avoid port races, and how [--serve 0]
    behaves. *)

type request = {
  rq_method : string;            (** e.g. ["GET"], ["POST"] *)
  rq_path : string;              (** decoded path, e.g. ["/metrics"] *)
  rq_query : (string * string) list;  (** decoded query pairs, in order *)
  rq_headers : (string * string) list;
      (** lowercased header names, values trimmed, in order *)
  rq_body : string;              (** [""] when the request had no body *)
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_headers : (string * string) list;
      (** extra headers, e.g. [("Retry-After", "1")] *)
  rs_body : string;
}

val respond :
  ?status:int ->
  ?content_type:string ->
  ?headers:(string * string) list ->
  string ->
  response
(** Build a response (defaults: 200, [text/plain; charset=utf-8], no
    extra headers). *)

val not_found : response

val header : string -> (string * string) list -> string option
(** [header name headers] looks up a header case-insensitively. *)

type handler = request -> response
(** Must not raise; a raising handler is answered with a 500 and the
    server keeps going. *)

type t

val start :
  ?addr:string ->
  ?port:int ->
  ?max_header_bytes:int ->
  ?max_body_bytes:int ->
  handler ->
  t
(** Bind [addr:port] (default [127.0.0.1:0]), start the accept-loop
    domain and return the running server. Requests whose header block
    exceeds [max_header_bytes] (default 16 KiB) or whose body exceeds
    [max_body_bytes] (default 1 MiB) are answered [413] without
    reaching the handler.
    @raise Failure when the address cannot be parsed or bound. *)

val addr : t -> string
(** The bound address, e.g. ["127.0.0.1"]. *)

val port : t -> int
(** The bound port — the OS-assigned one when [start] was given 0. *)

val stop : t -> unit
(** Close the listening socket and join the server domain. Idempotent.
    In-flight responses finish; no new connections are accepted. *)

val request :
  ?addr:string ->
  ?meth:string ->
  ?body:string ->
  port:int ->
  string ->
  int * (string * string) list * string
(** Tiny blocking HTTP/1.1 client for tests, smoke checks and the CLI
    service subcommands: [request ~meth:"POST" ~body ~port "/jobs"]
    returns [(status, headers, body)] with header names lowercased.
    @raise Unix.Unix_error / Failure on connection or protocol
    failure. *)

val get : ?addr:string -> port:int -> string -> int * string
(** [get ~port path] is [request ~meth:"GET" ~port path] without the
    headers. *)
