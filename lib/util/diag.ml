type severity = Info | Warning | Error | Fatal

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"
  | Fatal -> "fatal"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2 | Fatal -> 3

type loc = { file : string; line : int; col : int }

let loc ?(line = 0) ?(col = 0) file = { file; line; col }

type t = {
  severity : severity;
  code : string;
  dloc : loc option;
  message : string;
}

let make ?loc severity ~code message = { severity; code; dloc = loc; message }

let makef ?loc severity ~code fmt =
  Printf.ksprintf (fun s -> make ?loc severity ~code s) fmt

let loc_prefix = function
  | None -> ""
  | Some { file; line; col } ->
    let b = Buffer.create 32 in
    if file <> "" then Buffer.add_string b file;
    if line > 0 then begin
      if Buffer.length b > 0 then Buffer.add_char b ':';
      Buffer.add_string b (string_of_int line);
      if col > 0 then begin
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int col)
      end
    end;
    if Buffer.length b > 0 then Buffer.add_string b ": ";
    Buffer.contents b

let to_string d =
  Printf.sprintf "%s%s[%s]: %s" (loc_prefix d.dloc)
    (severity_to_string d.severity)
    d.code d.message

(* Minimal JSON string escaping (we depend on no JSON library). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf {|{"severity":"%s","code":"%s"|}
       (severity_to_string d.severity)
       (json_escape d.code));
  (match d.dloc with
  | None -> ()
  | Some { file; line; col } ->
    Buffer.add_string b (Printf.sprintf {|,"file":"%s"|} (json_escape file));
    if line > 0 then Buffer.add_string b (Printf.sprintf {|,"line":%d|} line);
    if col > 0 then Buffer.add_string b (Printf.sprintf {|,"col":%d|} col));
  Buffer.add_string b
    (Printf.sprintf {|,"message":"%s"}|} (json_escape d.message));
  Buffer.contents b

let render_text ds = String.concat "\n" (List.map to_string ds)
let render_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"
let messages ds = List.map (fun d -> d.message) ds

let max_severity = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc d ->
           if severity_rank d.severity > severity_rank acc then d.severity
           else acc)
         d.severity ds)

let has_errors ds =
  List.exists (fun d -> severity_rank d.severity >= severity_rank Error) ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

type collector = { mutable rev : t list }

let collector () = { rev = [] }
let add c d = c.rev <- d :: c.rev

let addf c ?loc severity ~code fmt =
  Printf.ksprintf (fun s -> add c (make ?loc severity ~code s)) fmt

let to_list c = List.rev c.rev
let is_empty c = c.rev = []
