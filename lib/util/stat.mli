(** Small numeric helpers used by the benchmark harness and reports.

    Convention: the [float]-returning aggregates ([mean], [percent],
    [reduction_percent]) return [0.] on empty or degenerate input —
    convenient for report cells, but indistinguishable from a true
    zero. Callers that must tell the two apart (e.g. metrics export)
    use {!mean_opt}. *)

val mean_opt : float list -> float option
(** Arithmetic mean; [None] on the empty list. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list (see the module convention). *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; [0.] when [whole = 0]. *)

val reduction_percent : float -> float -> float
(** [reduction_percent before after] is the percentage reduction from
    [before] to [after]. Robust for metrics export: [0.] when [before]
    is zero, negative or NaN (no meaningful baseline), and {e negative}
    when [after > before] — a regression is reported as a negative
    reduction, never as nonsense. Always finite for finite input. *)

val fmt_f1 : float -> string
(** Format with one decimal, e.g. ["67.5"]. *)

val fmt_f2 : float -> string
(** Format with two decimals, e.g. ["62.52"]. *)

val fmt_time_s : float -> string
(** Seconds with three decimals, e.g. ["1.204"]. *)
