(** Numeric helpers for the benchmark harness, reports, and the
    performance regression gate ({!Runlog}).

    Convention: the [float]-returning aggregates ([mean], [stddev],
    [percentile], [percent], [reduction_percent]) return [0.] on empty
    or degenerate input — convenient for report cells, but
    indistinguishable from a true zero. Callers that must tell the two
    apart (e.g. metrics export) use the [_opt] variants.

    NaN/infinity guards: the statistical aggregates ([stddev],
    [ci95_halfwidth], [percentile], [median]) drop non-finite samples
    before computing ({!finite}), so a stray [nan] in a timing list
    cannot poison a baseline. [mean]/[mean_opt] are the historical
    exceptions and average the raw list. *)

val finite : float list -> float list
(** The finite samples of the list, in order ([nan]/[±inf] dropped). *)

val mean_opt : float list -> float option
(** Arithmetic mean; [None] on the empty list. *)

val mean : float list -> float
(** Arithmetic mean; [0.] on the empty list (see the module convention). *)

val stddev_opt : float list -> float option
(** Sample standard deviation (n-1 denominator) over the finite
    samples; [None] with fewer than two. *)

val stddev : float list -> float
(** Sample standard deviation; [0.] with fewer than two finite samples. *)

val ci95_halfwidth : float list -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean: [1.96 * stddev / sqrt n] over the finite samples; [0.]
    with fewer than two. The regression gate treats
    [mean ± ci95_halfwidth] as the noise band of a baseline. *)

val percentile_opt : float -> float list -> float option
(** [percentile_opt q xs] is the nearest-rank [q]-quantile ([q]
    clamped to [0,1]) of the finite samples of [xs]; [None] when none
    are finite. Nearest-rank: the value at 1-based rank
    [ceil (q * n)] of the sorted samples — always an actual sample,
    never an interpolation. *)

val percentile : float -> float list -> float
(** Like {!percentile_opt} with [0.] on empty input. *)

val median : float list -> float
(** [percentile 0.5]. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; [0.] when [whole = 0]. *)

val reduction_percent : float -> float -> float
(** [reduction_percent before after] is the percentage reduction from
    [before] to [after]. Robust for metrics export: [0.] when [before]
    is zero, negative or NaN (no meaningful baseline), and {e negative}
    when [after > before] — a regression is reported as a negative
    reduction, never as nonsense. Always finite for finite input. *)

val fmt_f1 : float -> string
(** Format with one decimal, e.g. ["67.5"]. *)

val fmt_f2 : float -> string
(** Format with two decimals, e.g. ["62.52"]. *)

val fmt_time_s : float -> string
(** Seconds with three decimals, e.g. ["1.204"]. *)
