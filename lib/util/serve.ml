(* Telemetry endpoint routing. Every endpoint is a pure read of
   process-global observability state; nothing here writes into the
   pipeline, which is what keeps --serve byte-identity trivial. *)

let parse_spec s =
  let port_of p =
    match int_of_string_opt p with
    | Some n when n >= 0 && n <= 65535 -> Ok n
    | _ -> Error (Printf.sprintf "invalid port %S (want 0..65535)" p)
  in
  match String.rindex_opt s ':' with
  | None -> Result.map (fun p -> "127.0.0.1", p) (port_of s)
  | Some i ->
    let addr = String.sub s 0 i
    and p = String.sub s (i + 1) (String.length s - i - 1) in
    if addr = "" then Error (Printf.sprintf "empty address in %S" s)
    else Result.map (fun p -> addr, p) (port_of p)

(* ------------------------------------------------------------------ *)
(* /healthz                                                            *)

let started_ns = Obs.Clock.now_ns ()

(* Degradation-ladder position, worst observed rung first. The rungs
   mirror Merge_flow's rescue ladder: a clean run is [nominal]; retries
   mean transient trouble absorbed; quarantines mean constraints were
   set aside; degraded cliques mean merge quality was traded for
   completion. *)
let ladder_position ~retries ~quarantined ~degraded =
  if degraded > 0 then "degraded"
  else if quarantined > 0 then "quarantined"
  else if retries > 0 then "retried"
  else "nominal"

let healthz_json () =
  let fl = Metrics.json_float in
  let retries = Metrics.get_counter "govern.retries"
  and quarantined = Metrics.get_counter "merge.quarantined"
  and degraded = Metrics.get_counter "merge.degraded_cliques" in
  let governance =
    match Govern.run_root () with
    | None -> {|{"active":false}|}
    | Some t ->
      Printf.sprintf {|{"active":true,"scope":"%s","remaining_s":%s,"cancelled":%s}|}
        (Metrics.json_escape (Govern.scope t))
        (match Govern.remaining_s t with None -> "null" | Some s -> fl s)
        (match Govern.cancelled t with
        | None -> "false"
        | Some r ->
          Printf.sprintf {|"%s"|} (Metrics.json_escape (Govern.reason_code r)))
  in
  let memory =
    Printf.sprintf {|{"limit_mb":%s,"over_watermark":%b}|}
      (match Govern.memory_limit_mb () with None -> "null" | Some l -> fl l)
      (Govern.memory_pressure () <> None)
  in
  Printf.sprintf
    {|{"status":"ok","pid":%d,"uptime_s":%s,"ladder":"%s","governance":%s,"memory":%s,"counters":{"govern.retries":%d,"merge.quarantined":%d,"merge.degraded_cliques":%d},"events_total":%d}|}
    (Unix.getpid ())
    (fl (Obs.Clock.elapsed_s started_ns))
    (ladder_position ~retries ~quarantined ~degraded)
    governance memory retries quarantined degraded (Eventlog.total ())

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let index_body =
  String.concat "\n"
    [
      "modemerge telemetry";
      "";
      "  /metrics   Prometheus text exposition";
      "  /healthz   liveness + governance state (JSON)";
      "  /progress  per-stage done/total with ETA (JSON)";
      "  /events    recent event journal (NDJSON; ?n=N for newest N)";
      "  /trace     Chrome trace_event JSON of spans so far";
      "";
    ]

let handler (rq : Httpd.request) =
  match rq.Httpd.rq_path with
  | "/" | "/index.html" -> Httpd.respond index_body
  | "/metrics" ->
    Httpd.respond
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      (Metrics.to_prometheus ())
  | "/healthz" ->
    Httpd.respond ~content_type:"application/json" (healthz_json () ^ "\n")
  | "/progress" ->
    Httpd.respond ~content_type:"application/json" (Progress.to_json () ^ "\n")
  | "/events" ->
    let limit =
      List.assoc_opt "n" rq.Httpd.rq_query
      |> Option.map int_of_string_opt |> Option.join
    in
    Httpd.respond ~content_type:"application/x-ndjson"
      (Eventlog.to_ndjson ?limit ())
  | "/trace" ->
    Httpd.respond ~content_type:"application/json" (Obs.trace_event_json ())
  | _ -> Httpd.not_found

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

type t = Httpd.t

let start ~addr ~port =
  let t = Httpd.start ~addr ~port handler in
  Eventlog.log "serve.start"
    ~attrs:
      [ "addr", Httpd.addr t; "port", string_of_int (Httpd.port t) ];
  t

let addr = Httpd.addr
let port = Httpd.port
let stop = Httpd.stop
