(* Telemetry endpoint routing. The built-in endpoints are pure reads
   of process-global observability state; nothing here writes into the
   pipeline, which is what keeps --serve byte-identity trivial.
   Registered routes (the service daemon's /jobs plane) may carry
   state of their own — they are consulted before the built-ins. *)

let parse_spec s =
  let port_of p =
    match int_of_string_opt p with
    | Some n when n >= 0 && n <= 65535 -> Ok n
    | _ -> Error (Printf.sprintf "invalid port %S (want 0..65535)" p)
  in
  match String.rindex_opt s ':' with
  | None -> Result.map (fun p -> "127.0.0.1", p) (port_of s)
  | Some i ->
    let addr = String.sub s 0 i
    and p = String.sub s (i + 1) (String.length s - i - 1) in
    if addr = "" then Error (Printf.sprintf "empty address in %S" s)
    else Result.map (fun p -> addr, p) (port_of p)

(* ------------------------------------------------------------------ *)
(* Route registration                                                   *)

(* A route owns a path prefix: it gets every request whose path equals
   [prefix] or continues it after a '/'. Routes are consulted
   newest-first, before the built-in telemetry endpoints, so a
   registered "/jobs" cannot be shadowed. *)
let routes : (string * Httpd.handler) list ref = ref []
let routes_mu = Mutex.create ()

let register ~prefix handler =
  Mutex.protect routes_mu (fun () -> routes := (prefix, handler) :: !routes)

let unregister ~prefix =
  Mutex.protect routes_mu (fun () ->
      routes := List.filter (fun (p, _) -> p <> prefix) !routes)

let route_for path =
  let matches prefix =
    path = prefix
    || String.length path > String.length prefix
       && String.sub path 0 (String.length prefix) = prefix
       && path.[String.length prefix] = '/'
  in
  Mutex.protect routes_mu (fun () ->
      List.find_opt (fun (p, _) -> matches p) !routes)
  |> Option.map snd

(* ------------------------------------------------------------------ *)
(* /healthz                                                            *)

let started_ns = Obs.Clock.now_ns ()

(* The most recently started server, so /healthz (and anything else)
   can report the actual bound endpoint — the autopicked port used to
   be visible only in the stderr startup line. *)
let current : Httpd.t option ref = ref None
let current_mu = Mutex.create ()

let endpoint () =
  Mutex.protect current_mu (fun () ->
      Option.map (fun t -> Httpd.addr t, Httpd.port t) !current)

(* Degradation-ladder position, worst observed rung first. The rungs
   mirror Merge_flow's rescue ladder: a clean run is [nominal]; retries
   mean transient trouble absorbed; quarantines mean constraints were
   set aside; degraded cliques mean merge quality was traded for
   completion. *)
let ladder_position ~retries ~quarantined ~degraded =
  if degraded > 0 then "degraded"
  else if quarantined > 0 then "quarantined"
  else if retries > 0 then "retried"
  else "nominal"

let healthz_json () =
  let fl = Metrics.json_float in
  let retries = Metrics.get_counter "govern.retries"
  and quarantined = Metrics.get_counter "merge.quarantined"
  and degraded = Metrics.get_counter "merge.degraded_cliques" in
  let governance =
    match Govern.run_root () with
    | None -> {|{"active":false}|}
    | Some t ->
      Printf.sprintf {|{"active":true,"scope":"%s","remaining_s":%s,"cancelled":%s}|}
        (Metrics.json_escape (Govern.scope t))
        (match Govern.remaining_s t with None -> "null" | Some s -> fl s)
        (match Govern.cancelled t with
        | None -> "false"
        | Some r ->
          Printf.sprintf {|"%s"|} (Metrics.json_escape (Govern.reason_code r)))
  in
  let memory =
    Printf.sprintf {|{"limit_mb":%s,"over_watermark":%b}|}
      (match Govern.memory_limit_mb () with None -> "null" | Some l -> fl l)
      (Govern.memory_pressure () <> None)
  in
  let serve =
    match endpoint () with
    | None -> "null"
    | Some (a, p) ->
      Printf.sprintf {|{"addr":"%s","port":%d,"url":"http://%s:%d/"}|}
        (Metrics.json_escape a) p (Metrics.json_escape a) p
  in
  Printf.sprintf
    {|{"status":"ok","pid":%d,"uptime_s":%s,"serve":%s,"ladder":"%s","governance":%s,"memory":%s,"counters":{"govern.retries":%d,"merge.quarantined":%d,"merge.degraded_cliques":%d},"events_total":%d}|}
    (Unix.getpid ())
    (fl (Obs.Clock.elapsed_s started_ns))
    serve
    (ladder_position ~retries ~quarantined ~degraded)
    governance memory retries quarantined degraded (Eventlog.total ())

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)

let index_body =
  String.concat "\n"
    [
      "modemerge telemetry";
      "";
      "  /metrics   Prometheus text exposition";
      "  /healthz   liveness + governance state (JSON)";
      "  /progress  per-stage done/total with ETA (JSON)";
      "  /events    recent event journal (NDJSON; ?n=N for newest N)";
      "  /trace     Chrome trace_event JSON of spans so far";
      "";
    ]

let read_only_405 =
  Httpd.respond ~status:405
    ~headers:[ "Allow", "GET, HEAD" ]
    "telemetry endpoints are read-only\n"

let handler (rq : Httpd.request) =
  match route_for rq.Httpd.rq_path with
  | Some h -> h rq
  | None when rq.Httpd.rq_method <> "GET" && rq.Httpd.rq_method <> "HEAD" ->
    read_only_405
  | None -> (
    match rq.Httpd.rq_path with
    | "/" | "/index.html" -> Httpd.respond index_body
    | "/metrics" ->
      Httpd.respond
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Metrics.to_prometheus ())
    | "/healthz" ->
      Httpd.respond ~content_type:"application/json" (healthz_json () ^ "\n")
    | "/progress" ->
      Httpd.respond ~content_type:"application/json" (Progress.to_json () ^ "\n")
    | "/events" ->
      let limit =
        List.assoc_opt "n" rq.Httpd.rq_query
        |> Option.map int_of_string_opt |> Option.join
      in
      Httpd.respond ~content_type:"application/x-ndjson"
        (Eventlog.to_ndjson ?limit ())
    | "/trace" ->
      Httpd.respond ~content_type:"application/json" (Obs.trace_event_json ())
    | _ -> Httpd.not_found)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

type t = Httpd.t

let start ?max_body_bytes ~addr ~port () =
  let t = Httpd.start ~addr ~port ?max_body_bytes handler in
  Mutex.protect current_mu (fun () -> current := Some t);
  Eventlog.log "serve.start"
    ~attrs:
      [
        "addr", Httpd.addr t;
        "port", string_of_int (Httpd.port t);
        "url",
        Printf.sprintf "http://%s:%d/" (Httpd.addr t) (Httpd.port t);
      ];
  t

let addr = Httpd.addr
let port = Httpd.port

let stop t =
  Mutex.protect current_mu (fun () ->
      match !current with Some c when c == t -> current := None | _ -> ());
  Httpd.stop t
