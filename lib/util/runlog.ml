(* Run history and the statistical regression gate (DESIGN.md §13).
   Self-contained on purpose: records are JSONL with a hand-rolled
   writer and a minimal recursive-descent reader, so the history
   format has no dependency the rest of the tool doesn't already
   carry. *)

let schema_version = "modemerge-runlog/1"
let default_dir = Filename.concat ".modemerge" "history"

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader — just enough for our own writer's output, but
   tolerant of field order and unknown fields so schema growth stays
   backward-readable. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?' (* metric names are ASCII *)
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elems () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elems ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_int j = Option.map int_of_float (to_num j)

(* ------------------------------------------------------------------ *)
(* Records                                                             *)

type span_sum = {
  ss_name : string;
  ss_calls : int;
  ss_total_s : float;
  ss_self_s : float;
}

type record = {
  r_schema : string;
  r_label : string;
  r_ts : float;
  r_git_rev : string;
  r_jobs : int;
  r_spans : span_sum list;
  r_counters : (string * int) list;
  r_gauges : (string * float) list;
  r_gc : (string * float) list;
  r_events : (string * int) list; (* cumulative Eventlog kind counts *)
}

let git_rev () =
  let read_first_line path =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (String.trim (input_line ic)))
    with _ -> None
  in
  let rec find_root dir depth =
    if depth > 10 then None
    else if Sys.file_exists (Filename.concat dir ".git/HEAD") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find_root parent (depth + 1)
  in
  match (try find_root (Sys.getcwd ()) 0 with _ -> None) with
  | None -> "unknown"
  | Some root -> (
    match read_first_line (Filename.concat root ".git/HEAD") with
    | Some line when String.length line > 5 && String.sub line 0 5 = "ref: "
      -> (
      let ref_path =
        Filename.concat root
          (Filename.concat ".git" (String.sub line 5 (String.length line - 5)))
      in
      match read_first_line ref_path with
      | Some rev when rev <> "" -> rev
      | Some _ | None -> "unknown")
    | Some rev when rev <> "" -> rev
    | Some _ | None -> "unknown")

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let capture ~label ~jobs () =
  let spans =
    List.map
      (fun (name, calls, total_s, self_s) ->
        { ss_name = name; ss_calls = calls; ss_total_s = total_s; ss_self_s = self_s })
      (Obs.span_summaries ())
  in
  let gauges =
    (* gc.* gauges live in the dedicated gc section, not here. *)
    List.filter_map
      (fun (i : Metrics.item) ->
        match i.Metrics.value with
        | Metrics.Gauge g when not (starts_with ~prefix:"gc." i.Metrics.name) ->
          Some (i.Metrics.name, g)
        | _ -> None)
      (Metrics.snapshot ())
  in
  {
    r_schema = schema_version;
    r_label = label;
    r_ts = Unix.gettimeofday ();
    r_git_rev = git_rev ();
    r_jobs = jobs;
    r_spans = spans;
    r_counters = Metrics.counters ();
    r_gauges = gauges;
    r_gc = Obs.gc_totals ();
    r_events = Eventlog.counts ();
  }

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)

let to_json r =
  let esc = Metrics.json_escape in
  (* Unlike the display-oriented Metrics.json_float (9 significant
     digits), history values must survive the round-trip exactly:
     epoch timestamps already need 11 digits for sub-second
     precision. Shortest representation that parses back equal. *)
  let fl x =
    if not (Float.is_finite x) then "0"
    else
      let s = Printf.sprintf "%.15g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x
  in
  let span ss =
    Printf.sprintf {|"%s":{"calls":%d,"total_s":%s,"self_s":%s}|}
      (esc ss.ss_name) ss.ss_calls (fl ss.ss_total_s) (fl ss.ss_self_s)
  in
  let int_field (k, v) = Printf.sprintf {|"%s":%d|} (esc k) v in
  let num_field (k, v) = Printf.sprintf {|"%s":%s|} (esc k) (fl v) in
  Printf.sprintf
    {|{"schema":"%s","label":"%s","ts":%s,"git_rev":"%s","jobs":%d,"spans":{%s},"counters":{%s},"gauges":{%s},"gc":{%s},"events":{%s}}|}
    (esc r.r_schema) (esc r.r_label) (fl r.r_ts) (esc r.r_git_rev) r.r_jobs
    (String.concat "," (List.map span r.r_spans))
    (String.concat "," (List.map int_field r.r_counters))
    (String.concat "," (List.map num_field r.r_gauges))
    (String.concat "," (List.map num_field r.r_gc))
    (String.concat "," (List.map int_field r.r_events))

let of_json_string line =
  match parse_json line with
  | exception Parse_error _ -> None
  | j ->
    let str k d = Option.value ~default:d (Option.bind (member k j) to_str) in
    let num k d = Option.value ~default:d (Option.bind (member k j) to_num) in
    let int k d = Option.value ~default:d (Option.bind (member k j) to_int) in
    let obj_fields k =
      match member k j with Some (Obj fields) -> fields | _ -> []
    in
    let spans =
      List.filter_map
        (fun (name, v) ->
          match v with
          | Obj _ ->
            Some
              {
                ss_name = name;
                ss_calls =
                  Option.value ~default:0 (Option.bind (member "calls" v) to_int);
                ss_total_s =
                  Option.value ~default:0.
                    (Option.bind (member "total_s" v) to_num);
                ss_self_s =
                  Option.value ~default:0.
                    (Option.bind (member "self_s" v) to_num);
              }
          | _ -> None)
        (obj_fields "spans")
    in
    let nums k =
      List.filter_map
        (fun (name, v) -> Option.map (fun f -> name, f) (to_num v))
        (obj_fields k)
    in
    let ints k =
      List.filter_map
        (fun (name, v) -> Option.map (fun i -> name, i) (to_int v))
        (obj_fields k)
    in
    let counters = ints "counters" in
    if member "schema" j = None then None
    else
      Some
        {
          r_schema = str "schema" "";
          r_label = str "label" "";
          r_ts = num "ts" 0.;
          r_git_rev = str "git_rev" "unknown";
          r_jobs = int "jobs" 1;
          r_spans = spans;
          r_counters = counters;
          r_gauges = nums "gauges";
          r_gc = nums "gc";
          r_events = ints "events";
        }

(* ------------------------------------------------------------------ *)
(* History files                                                       *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let history_file ~dir ~label = Filename.concat dir (label ^ ".jsonl")

let append ?(dir = default_dir) r =
  mkdir_p dir;
  let path = history_file ~dir ~label:r.r_label in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_json r);
      output_char oc '\n');
  path

let load ?(dir = default_dir) ~label () =
  let path = history_file ~dir ~label in
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | line -> (
            match String.trim line with
            | "" -> go acc
            | line -> (
              (* Skip damaged or foreign-schema lines instead of
                 failing the run: history is advisory. *)
              match of_json_string line with
              | Some r when r.r_schema = schema_version -> go (r :: acc)
              | Some _ | None -> go acc))
        in
        go [])
  end

let last n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)

type status = Regression | Improvement | Ok | Noisy | New | TooSmall

type verdict = {
  v_name : string;
  v_status : status;
  v_current_s : float;
  v_mean_s : float;
  v_ci_s : float;
  v_cv : float;
  v_n_base : int;
}

type check_config = {
  threshold_pct : float;
  min_self_s : float;
  max_cv : float;
  window : int;
}

let default_config =
  { threshold_pct = 10.; min_self_s = 0.01; max_cv = 1.0; window = 10 }

let status_label = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Ok -> "ok"
  | Noisy -> "noisy"
  | New -> "new"
  | TooSmall -> "too-small"

let check ?(config = default_config) ~baselines current =
  let base_self name =
    List.filter_map
      (fun r ->
        Option.map
          (fun ss -> ss.ss_self_s)
          (List.find_opt (fun ss -> ss.ss_name = name) r.r_spans))
      baselines
  in
  List.map
    (fun ss ->
      let cur = ss.ss_self_s in
      let base = base_self ss.ss_name in
      let nb = List.length base in
      if nb = 0 then
        {
          v_name = ss.ss_name;
          v_status = New;
          v_current_s = cur;
          v_mean_s = 0.;
          v_ci_s = 0.;
          v_cv = 0.;
          v_n_base = 0;
        }
      else begin
        let m = Stat.mean base in
        let ci = Stat.ci95_halfwidth base in
        (* The CI alone underestimates the noise of a short window
           (1.96 is the asymptotic z, not a small-n t-quantile), so the
           band also covers the observed baseline envelope: a value no
           worse than a previously recorded baseline never flags. *)
        let bmax = List.fold_left Float.max Float.neg_infinity base in
        let bmin = List.fold_left Float.min Float.infinity base in
        let up_band = Float.max ci (bmax -. m) in
        let dn_band = Float.max ci (m -. bmin) in
        let cv = if m > 0. then Stat.stddev base /. m else 0. in
        let min_s = config.min_self_s in
        let thr = config.threshold_pct /. 100. in
        let status =
          if cur < min_s && m < min_s then
            (* Both sides under the absolute floor: micro-spans whose
               relative jitter is pure noise. *)
            TooSmall
          else if cur > (m *. (1. +. thr)) +. up_band && cur -. m > min_s then
            if cv <= config.max_cv then Regression
            else if cur > (2. *. (m +. up_band)) +. min_s then
              (* Unstable baseline, but the current run is beyond even
                 double the noise band — a 2x slowdown must not hide
                 behind its own noise. *)
              Regression
            else Noisy
          else if cur < (m *. (1. -. thr)) -. dn_band && m -. cur > min_s then
            if cv <= config.max_cv then Improvement else Ok
          else Ok
        in
        {
          v_name = ss.ss_name;
          v_status = status;
          v_current_s = cur;
          v_mean_s = m;
          v_ci_s = ci;
          v_cv = cv;
          v_n_base = nb;
        }
      end)
    current.r_spans

let has_regression vs = List.exists (fun v -> v.v_status = Regression) vs

let delta_pct v =
  if v.v_mean_s > 0. then
    100. *. (v.v_current_s -. v.v_mean_s) /. v.v_mean_s
  else 0.

let check_report vs =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-36s %10s %10s %9s %5s  %s\n" "span" "self(s)"
       "base(s)" "ci95" "n" "status");
  List.iter
    (fun v ->
      let trail =
        match v.v_status with
        | New -> "new"
        | TooSmall -> "too-small"
        | s ->
          Printf.sprintf "%s (%+.1f%%)" (status_label s) (delta_pct v)
      in
      Buffer.add_string b
        (Printf.sprintf "%-36s %10.4f %10.4f %9.4f %5d  %s\n" v.v_name
           v.v_current_s v.v_mean_s v.v_ci_s v.v_n_base trail))
    vs;
  Buffer.contents b

let diff_report older newer =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "run %s (jobs=%d) -> %s (jobs=%d)\n" older.r_git_rev
       older.r_jobs newer.r_git_rev newer.r_jobs);
  Buffer.add_string b
    (Printf.sprintf "%-36s %10s %10s %9s\n" "span" "old self(s)" "new self(s)"
       "delta");
  List.iter
    (fun ss ->
      let old_self =
        Option.map
          (fun o -> o.ss_self_s)
          (List.find_opt (fun o -> o.ss_name = ss.ss_name) older.r_spans)
      in
      match old_self with
      | None ->
        Buffer.add_string b
          (Printf.sprintf "%-36s %10s %10.4f %9s\n" ss.ss_name "-" ss.ss_self_s
             "new")
      | Some o ->
        let delta =
          if o > 0. then Printf.sprintf "%+.1f%%" (100. *. (ss.ss_self_s -. o) /. o)
          else "-"
        in
        Buffer.add_string b
          (Printf.sprintf "%-36s %10.4f %10.4f %9s\n" ss.ss_name o ss.ss_self_s
             delta))
    newer.r_spans;
  let gc_val r k = Option.value ~default:0. (List.assoc_opt k r.r_gc) in
  let old_alloc = gc_val older "gc.minor_words" +. gc_val older "gc.major_words" in
  let new_alloc = gc_val newer "gc.minor_words" +. gc_val newer "gc.major_words" in
  if old_alloc > 0. || new_alloc > 0. then
    Buffer.add_string b
      (Printf.sprintf "%-36s %10.3f %10.3f %9s\n" "gc allocated (Mwords)"
         (old_alloc /. 1e6) (new_alloc /. 1e6)
         (if old_alloc > 0. then
            Printf.sprintf "%+.1f%%" (100. *. (new_alloc -. old_alloc) /. old_alloc)
          else "-"));
  Buffer.contents b
