(** Fixed domain pool with deterministic, input-order result folding.

    The merge pipeline is organised as lists of {e pure tasks} — each
    task returns an outcome value instead of mutating shared state —
    and this pool executes a task list on [jobs] domains while keeping
    the {e results} in input order. Running with [jobs = N] therefore
    produces byte-identical output to [jobs = 1]; only wall-clock time
    changes.

    Semantics:

    - {!map} and {!map_reduce} preserve input order regardless of the
      execution interleaving.
    - A raising task does not abort its siblings; once the whole batch
      has finished, the exception of the {e lowest-index} failing task
      is re-raised (with its backtrace) — the same exception a
      sequential left-to-right run would have surfaced first.
    - At [jobs = 1] no domain is ever spawned and every task runs
      inline on the calling domain — the graceful sequential fallback.
    - Every batch feeds the pool telemetry ({!Metrics}, identically in
      the sequential and parallel paths): the [pool.tasks_executed] and
      [pool.batches] counters, the [pool.task_s] per-task wall-time
      histogram, the [pool.queue_depth] histogram (unclaimed tasks at
      each claim), and the [pool.occupancy] histogram (per batch,
      summed task time over wall time × workers — 1.0 is a perfectly
      packed batch). When {!Obs} tracing is on, the pool additionally
      samples [pool.active_workers] and [pool.queue_depth] as
      time-stamped counter tracks ({!Obs.sample}) for the Perfetto
      timeline.
    - The {!Obs} span context open at the {!map} call is re-installed
      around every task body, so spans recorded inside tasks — even on
      worker domains — attach to the dispatching span rather than
      rooting per-domain trees (each span still carries its own domain
      id in [sp_tid]).

    The pool is {e not} reentrant: a task must not call {!map} on the
    pool executing it (the pipeline only dispatches from the driver
    domain, never from inside a task). *)

type t

val default_jobs : unit -> int
(** Worker count used when the caller does not pin one: the [MM_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** A pool executing up to [jobs] tasks concurrently ([jobs - 1]
    spawned domains plus the calling domain, which participates in
    every batch). [jobs] is clamped to at least 1; at 1 the pool is
    purely sequential. Call {!shutdown} when done. *)

val jobs : t -> int
(** The (clamped) concurrency of the pool. *)

val shutdown : t -> unit
(** Join the worker domains. Idempotent. The pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool ([jobs] defaulting to
    {!default_jobs}) and shuts it down afterwards, even on raise. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, in parallel across the
    pool's domains, returning results in the order of [xs]. A raising
    task's exception is re-raised with the backtrace captured at its
    raise site on the worker domain, so diagnostics point at the real
    failure rather than the dispatch site. *)

val map_outcome :
  t ->
  ?govern:Govern.token ->
  ?task_budget_s:float ->
  ('a -> 'b) ->
  'a list ->
  'b Govern.outcome list
(** Governed batch: like {!map} but never raises — every task yields a
    {!Govern.outcome} in input order.

    - Each task runs under a token derived from [govern] (plus
      [task_budget_s] when given, yielding a per-task deadline),
      installed as the ambient {!Govern.current} so checkpoints inside
      the task body observe it.
    - Workers re-check [govern] before claiming each task: once the
      batch token expires, remaining tasks drain as [Interrupted]
      without running — an exhausted budget empties the pool instead
      of wedging it.
    - A task raising {!Govern.Cancelled} (from a cooperative
      checkpoint) becomes [Interrupted]; any other exception becomes
      [Crashed] with its raise-site backtrace.
    - The chaos site [pool.task] fires at each task entry, before the
      entry cancellation check ({!Mm_util.Chaos}). *)

val map_reduce :
  t -> map:('a -> 'b) -> fold:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc
(** [map_reduce t ~map ~fold ~init xs] folds the mapped results
    {e in input order}: [fold (... (fold init (map x0))) (map xn)].
    The fold itself runs on the calling domain, so it may touch
    non-domain-safe state. *)

val utilization_report : unit -> string
(** Human-readable summary of the [pool.*] slice of the {!Metrics}
    registry — batch/task counts, task-time and queue-depth
    percentiles, per-batch occupancy. Covers every pool the run
    created (the registry is global); printed by [--profile] runs
    after the span tree. *)
