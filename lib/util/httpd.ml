(* Minimal HTTP/1.1 server on a dedicated domain. See the .mli for the
   scope contract: GET-only telemetry, one request per connection,
   size-capped reads under a receive timeout. *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_body : string;
}

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8") body
    =
  { rs_status = status; rs_content_type = content_type; rs_body = body }

let not_found = respond ~status:404 "not found\n"

type handler = request -> response

type t = {
  sock : Unix.file_descr;
  t_addr : string;
  t_port : int;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let addr t = t.t_addr
let port t = t.t_port

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let max_request_bytes = 16 * 1024

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match hex s.[i + 1], hex s.[i + 2] with
        | Some h, Some l ->
          Buffer.add_char b (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char b '%';
          go (i + 1))
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_query q =
  List.filter_map
    (fun pair ->
      if pair = "" then None
      else
        match String.index_opt pair '=' with
        | None -> Some (percent_decode pair, "")
        | Some eq ->
          Some
            ( percent_decode (String.sub pair 0 eq),
              percent_decode
                (String.sub pair (eq + 1) (String.length pair - eq - 1)) ))
    (String.split_on_char '&' q)

(* "GET /path?query HTTP/1.1" -> request. *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] ->
    let path, query =
      match String.index_opt target '?' with
      | None -> target, []
      | Some q ->
        ( String.sub target 0 q,
          parse_query
            (String.sub target (q + 1) (String.length target - q - 1)) )
    in
    Some { rq_method = meth; rq_path = percent_decode path; rq_query = query }
  | _ -> None

(* Read until the end of the header block (we never accept bodies),
   capped at [max_request_bytes]. Returns the first line. *)
let read_request_head fd =
  let buf = Bytes.create 1024 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > max_request_bytes then None
    else
      let headers_done () =
        let s = Buffer.contents acc in
        let has sub =
          let sl = String.length sub and l = String.length s in
          let rec find i =
            i + sl <= l && (String.sub s i sl = sub || find (i + 1))
          in
          find 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if headers_done () then Some (Buffer.contents acc)
      else
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> if Buffer.length acc = 0 then None else Some (Buffer.contents acc)
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          None
  in
  match go () with
  | None -> None
  | Some head -> (
    match String.index_opt head '\n' with
    | None -> None
    | Some nl ->
      let line = String.sub head 0 nl in
      let line =
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Some line)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_response fd rs =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       rs.rs_status (status_text rs.rs_status) rs.rs_content_type
       (String.length rs.rs_body) rs.rs_body)

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)

let serve_connection handler fd =
  (* A stuck or byte-dribbling client gets cut off by the receive
     timeout instead of pinning the server domain. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with _ -> ());
  let rs =
    match read_request_head fd with
    | None -> respond ~status:400 "bad request\n"
    | Some line -> (
      match parse_request_line line with
      | None -> respond ~status:400 "bad request\n"
      | Some rq when rq.rq_method <> "GET" && rq.rq_method <> "HEAD" ->
        respond ~status:405 "only GET is served here\n"
      | Some rq -> (
        match handler rq with
        | rs -> rs
        | exception _ -> respond ~status:500 "internal error\n"))
  in
  (try send_response fd rs with _ -> ())

let accept_loop t handler =
  let rec go () =
    match Unix.accept t.sock with
    | fd, _peer ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () -> serve_connection handler fd);
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) ->
      (* The listening socket was closed by [stop] (or the OS gave up);
         either way the server is done. *)
      if Atomic.get t.stopping then () else ()
  in
  go ()

let start ?(addr = "127.0.0.1") ?(port = 0) handler =
  let inet =
    try Unix.inet_addr_of_string addr
    with _ -> (
      (* Accept a hostname like "localhost" too. *)
      match Unix.getaddrinfo addr "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve address %S" addr))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (inet, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s:%d (%s)" addr port
          (Printexc.to_string e)));
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      t_addr = Unix.string_of_inet_addr inet;
      t_port = bound_port;
      stopping = Atomic.make false;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> accept_loop t handler));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Closing the listening socket makes the blocked accept fail,
       which terminates the loop. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.sock with _ -> ());
    match t.domain with
    | Some d ->
      Domain.join d;
      t.domain <- None
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Tiny client (tests, smoke checks)                                   *)

let get ?(addr = "127.0.0.1") ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 10.0;
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
      write_all sock
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n"
           path addr);
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        match Unix.read sock buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents acc in
      (* Split the status line and headers off. *)
      let body_start =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        find 0
      in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      status, String.sub raw body_start (String.length raw - body_start))
