(* Minimal HTTP/1.1 server on a dedicated domain. See the .mli for the
   scope contract: small request surface (GET/HEAD/POST/DELETE), one
   request per connection, size-capped reads under a receive
   timeout. *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_headers : (string * string) list;
  rq_body : string;
}

type response = {
  rs_status : int;
  rs_content_type : string;
  rs_headers : (string * string) list;
  rs_body : string;
}

let respond ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    ?(headers = []) body =
  {
    rs_status = status;
    rs_content_type = content_type;
    rs_headers = headers;
    rs_body = body;
  }

let not_found = respond ~status:404 "not found\n"

type handler = request -> response

type t = {
  sock : Unix.file_descr;
  t_addr : string;
  t_port : int;
  t_max_header_bytes : int;
  t_max_body_bytes : int;
  stopping : bool Atomic.t;
  mutable domain : unit Domain.t option;
}

let addr t = t.t_addr
let port t = t.t_port

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)

let default_max_header_bytes = 16 * 1024
let default_max_body_bytes = 1024 * 1024

(* Methods the server is willing to route to a handler at all; anything
   else is answered 405 before the handler runs. Per-path method
   checks stay the handler's business. *)
let known_methods = [ "GET"; "HEAD"; "POST"; "DELETE" ]

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 410 -> "Gone"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let rec go i =
    if i < n then
      match s.[i] with
      | '%' when i + 2 < n -> (
        match hex s.[i + 1], hex s.[i + 2] with
        | Some h, Some l ->
          Buffer.add_char b (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char b '%';
          go (i + 1))
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | c ->
        Buffer.add_char b c;
        go (i + 1)
  in
  go 0;
  Buffer.contents b

let parse_query q =
  List.filter_map
    (fun pair ->
      if pair = "" then None
      else
        match String.index_opt pair '=' with
        | None -> Some (percent_decode pair, "")
        | Some eq ->
          Some
            ( percent_decode (String.sub pair 0 eq),
              percent_decode
                (String.sub pair (eq + 1) (String.length pair - eq - 1)) ))
    (String.split_on_char '&' q)

(* "GET /path?query HTTP/1.1" -> method/path/query. *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; _version ] ->
    let path, query =
      match String.index_opt target '?' with
      | None -> target, []
      | Some q ->
        ( String.sub target 0 q,
          parse_query
            (String.sub target (q + 1) (String.length target - q - 1)) )
    in
    Some (meth, percent_decode path, query)
  | _ -> None

(* "Header-Name: value" lines -> lowercased assoc, in order. *)
let parse_header_lines lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | None -> None
      | Some c ->
        let name = String.lowercase_ascii (String.trim (String.sub line 0 c)) in
        let value =
          String.trim (String.sub line (c + 1) (String.length line - c - 1))
        in
        if name = "" then None else Some (name, value))
    lines

let header name headers = List.assoc_opt (String.lowercase_ascii name) headers

(* Outcome of reading one request off the wire. *)
type read_result =
  | Req of request
  | Reject of response    (* malformed / over-limit / unknown method *)
  | Gone                  (* peer went away before sending anything *)

(* Read the header block (up to [max_header]), then the Content-Length
   body (up to [max_body]). Over-limit on either side is a 413; the
   4xx is produced here so [serve_connection] just sends it. *)
let read_request ~max_header ~max_body fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 512 in
  let too_large = respond ~status:413 "request too large\n" in
  (* Find the end of the header block in [acc]; returns the offset just
     past the blank line, plus the separator width that was used. *)
  let head_end () =
    let s = Buffer.contents acc in
    let l = String.length s in
    let rec find i =
      if i + 4 <= l && String.sub s i 4 = "\r\n\r\n" then Some (i, i + 4)
      else if i + 2 <= l && String.sub s i 2 = "\n\n" then Some (i, i + 2)
      else if i + 1 < l then find (i + 1)
      else None
    in
    find 0
  in
  let rec read_head () =
    match head_end () with
    | Some (head_len, body_off) ->
      if head_len > max_header then Error too_large
      else Ok (head_len, body_off)
    | None ->
      if Buffer.length acc > max_header then Error too_large
      else (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Error (respond ~status:400 "bad request\n")
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          read_head ()
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          Error (respond ~status:400 "bad request\n"))
  in
  match read_head () with
    | Error rs -> if Buffer.length acc = 0 then Gone else Reject rs
    | Ok (head_len, body_off) -> (
      let head = String.sub (Buffer.contents acc) 0 head_len in
      let lines =
        String.split_on_char '\n' head
        |> List.map (fun l ->
               if l <> "" && l.[String.length l - 1] = '\r' then
                 String.sub l 0 (String.length l - 1)
               else l)
      in
      match lines with
      | [] -> Reject (respond ~status:400 "bad request\n")
      | req_line :: header_lines -> (
        match parse_request_line req_line with
        | None -> Reject (respond ~status:400 "bad request\n")
        | Some (meth, path, query) ->
          let headers = parse_header_lines header_lines in
          if not (List.mem meth known_methods) then
            Reject
              (respond ~status:405
                 ~headers:[ "Allow", String.concat ", " known_methods ]
                 "method not allowed\n")
          else if header "transfer-encoding" headers <> None then
            (* We only speak Content-Length bodies. *)
            Reject (respond ~status:501 "transfer encodings not supported\n")
          else
            let content_length =
              match header "content-length" headers with
              | None -> Some 0
              | Some v -> (
                match int_of_string_opt (String.trim v) with
                | Some n when n >= 0 -> Some n
                | _ -> None)
            in
            (match content_length with
            | None -> Reject (respond ~status:400 "bad content-length\n")
            | Some len when len > max_body -> Reject too_large
            | Some len ->
              (* Body bytes already buffered past the header block. *)
              let full = Buffer.contents acc in
              let got = Buffer.create (min len 4096) in
              Buffer.add_string got
                (String.sub full body_off (String.length full - body_off));
              let rec read_body () =
                if Buffer.length got >= len then
                  Ok (String.sub (Buffer.contents got) 0 len)
                else
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> Error (respond ~status:400 "truncated body\n")
                  | n ->
                    Buffer.add_subbytes got buf 0 n;
                    if Buffer.length got > max_body then Error too_large
                    else read_body ()
                  | exception
                      Unix.Unix_error
                        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                    ->
                    Error (respond ~status:400 "truncated body\n")
              in
              (match read_body () with
              | Error rs -> Reject rs
              | Ok body ->
                Req
                  {
                    rq_method = meth;
                    rq_path = path;
                    rq_query = query;
                    rq_headers = headers;
                    rq_body = body;
                  }))))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send_response fd rs =
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) rs.rs_headers)
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
       rs.rs_status (status_text rs.rs_status) rs.rs_content_type
       (String.length rs.rs_body) extra rs.rs_body)

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)

let serve_connection t handler fd =
  (* A stuck or byte-dribbling client gets cut off by the receive
     timeout instead of pinning the server domain. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with _ -> ());
  match
    read_request ~max_header:t.t_max_header_bytes ~max_body:t.t_max_body_bytes
      fd
  with
  | Gone -> ()
  | Reject rs -> ( try send_response fd rs with _ -> ())
  | Req rq ->
    let rs =
      match handler rq with
      | rs -> rs
      | exception _ -> respond ~status:500 "internal error\n"
    in
    (try send_response fd rs with _ -> ())

let accept_loop t handler =
  let rec go () =
    match Unix.accept t.sock with
    | fd, _peer ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () -> serve_connection t handler fd);
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) ->
      (* The listening socket was closed by [stop] (or the OS gave up);
         either way the server is done. *)
      if Atomic.get t.stopping then () else ()
  in
  go ()

let resolve addr =
  try Unix.inet_addr_of_string addr
  with _ -> (
    (* Accept a hostname like "localhost" too. *)
    match Unix.getaddrinfo addr "" [ Unix.AI_FAMILY Unix.PF_INET ] with
    | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
    | _ -> failwith (Printf.sprintf "cannot resolve address %S" addr))

let start ?(addr = "127.0.0.1") ?(port = 0)
    ?(max_header_bytes = default_max_header_bytes)
    ?(max_body_bytes = default_max_body_bytes) handler =
  let inet = resolve addr in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (inet, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with _ -> ());
     failwith
       (Printf.sprintf "cannot bind %s:%d (%s)" addr port
          (Printexc.to_string e)));
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      t_addr = Unix.string_of_inet_addr inet;
      t_port = bound_port;
      t_max_header_bytes = max_header_bytes;
      t_max_body_bytes = max_body_bytes;
      stopping = Atomic.make false;
      domain = None;
    }
  in
  t.domain <- Some (Domain.spawn (fun () -> accept_loop t handler));
  t

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Closing the listening socket makes the blocked accept fail,
       which terminates the loop. *)
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with _ -> ());
    (try Unix.close t.sock with _ -> ());
    match t.domain with
    | Some d ->
      Domain.join d;
      t.domain <- None
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Tiny client (tests, smoke checks, CLI submit/status/fetch)          *)

let request ?(addr = "127.0.0.1") ?(meth = "GET") ?body ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () ->
      Unix.setsockopt_float sock Unix.SO_RCVTIMEO 30.0;
      Unix.connect sock (Unix.ADDR_INET (resolve addr, port));
      let body_part =
        match body with
        | None -> ""
        | Some b -> Printf.sprintf "Content-Length: %d\r\n" (String.length b)
      in
      write_all sock
        (Printf.sprintf "%s %s HTTP/1.1\r\nHost: %s\r\n%sConnection: close\r\n\r\n%s"
           meth path addr body_part
           (Option.value ~default:"" body));
      let buf = Bytes.create 4096 in
      let acc = Buffer.create 1024 in
      let rec drain () =
        match Unix.read sock buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      let raw = Buffer.contents acc in
      (* Split the status line and headers off. *)
      let body_start =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        find 0
      in
      let headers =
        if body_start <= 4 then []
        else
          String.sub raw 0 (body_start - 4)
          |> String.split_on_char '\n'
          |> List.map (fun l ->
                 if l <> "" && l.[String.length l - 1] = '\r' then
                   String.sub l 0 (String.length l - 1)
                 else l)
          |> fun lines ->
          (match lines with [] -> [] | _ :: hs -> parse_header_lines hs)
      in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> Option.value ~default:0 (int_of_string_opt code)
        | _ -> 0
      in
      status, headers, String.sub raw body_start (String.length raw - body_start))

let get ?addr ~port path =
  let status, _headers, body = request ?addr ~meth:"GET" ~port path in
  status, body
