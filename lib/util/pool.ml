(* Fixed domain pool. Workers block on a condition variable between
   batches; a batch is published as a bump of [seq] plus a [run_one]
   closure that claims task indices from an atomic cursor, so the
   domains never contend on anything but the two counters. Results land
   in a per-batch array indexed by input position — that array, read
   after the completion handshake (mutex + condition), is what makes
   the fold deterministic. *)

type batch = { run_one : unit -> bool }

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  wake : Condition.t; (* workers: new batch or shutdown *)
  batch_done : Condition.t; (* caller: all tasks of the batch finished *)
  mutable seq : int;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "MM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let worker t =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.seq = !last do
      Condition.wait t.wake t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      last := t.seq;
      let b = t.current in
      Mutex.unlock t.mutex;
      (match b with
      | Some b -> while b.run_one () do () done
      | None -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let n_jobs = max 1 jobs in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      batch_done = Condition.create ();
      seq = 0;
      current = None;
      stop = false;
      domains = [];
    }
  in
  if n_jobs > 1 then
    t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ~jobs:(match jobs with Some j -> j | None -> default_jobs ()) in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One governed task: a cooperative cancellation checkpoint at entry
   (after the chaos site, so an injected delay is observed by the
   deadline check), the task token installed as the ambient Govern
   token for checkpoints inside the body, and crashes captured with
   their raw backtrace at the raise site — the re-raise in [collect]
   then points at the real failure, not the dispatch site. *)
let run_task ~govern ~task_budget_s f x =
  let tok =
    match task_budget_s with
    | None -> govern
    | Some budget_s ->
      Govern.sub ~scope:(Govern.scope govern ^ ".task") ~budget_s govern
  in
  Govern.run tok (fun () ->
      Chaos.hit "pool.task";
      Govern.check tok;
      f x)

(* Live tasks across every pool — the occupancy series of the flight
   recorder. Global, like the Obs sink the samples land in. *)
let active = Atomic.make 0

(* [run_task] plus the telemetry shell: per-task wall time into the
   [pool.task_s] histogram, busy nanoseconds into the batch's occupancy
   accumulator, and an active-worker sample at both edges (no-ops
   unless tracing is on). Identical in the sequential and parallel
   paths, so jobs=1 and jobs=N runs emit the same metric names. *)
let run_task_instrumented ~govern ~task_budget_s ~busy_ns f x =
  Obs.sample "pool.active_workers"
    (float_of_int (Atomic.fetch_and_add active 1 + 1));
  let t0 = Obs.Clock.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Int64.sub (Obs.Clock.now_ns ()) t0 in
      ignore (Atomic.fetch_and_add busy_ns (Int64.to_int dt));
      Metrics.observe "pool.task_s" (Int64.to_float dt /. 1e9);
      Progress.tick "pool.tasks";
      Obs.sample "pool.active_workers"
        (float_of_int (Atomic.fetch_and_add active (-1) - 1)))
    (fun () -> run_task ~govern ~task_budget_s f x)

(* Re-raise the lowest-index crash — the exception a sequential
   left-to-right run would have hit first. *)
let collect results =
  Array.iter
    (function
      | Some (Govern.Crashed { exn; backtrace }) ->
        Printexc.raise_with_backtrace exn backtrace
      | Some (Govern.Interrupted r) -> raise (Govern.Cancelled r)
      | Some (Govern.Done _) | None -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Some (Govern.Done v) -> v
         | Some (Govern.Interrupted _ | Govern.Crashed _) | None -> assert false)
       results)

let observe_queue_depth ~n i =
  let remaining = float_of_int (n - i - 1) in
  Metrics.observe "pool.queue_depth" remaining;
  Obs.sample "pool.queue_depth" remaining

let outcome_array t ~govern ~task_budget_s f arr =
  let n = Array.length arr in
  Metrics.incr ~by:n "pool.tasks_executed";
  Metrics.incr "pool.batches";
  Progress.add_total ~by:n "pool.tasks";
  let busy_ns = Atomic.make 0 in
  let batch_t0 = Obs.Clock.now_ns () in
  (* Batch occupancy: summed task time over (wall × workers) — 1.0 is a
     perfectly packed batch, low values mean workers starved on an
     uneven tail. Clamped because task edges and the batch edge are
     read from different clock calls. *)
  let record_occupancy () =
    if n > 0 then begin
      let wall_s = Obs.Clock.elapsed_s batch_t0 in
      let workers = float_of_int (max 1 (min t.n_jobs n)) in
      if wall_s > 0. then
        Metrics.observe "pool.occupancy"
          (Float.min 1.
             (float_of_int (Atomic.get busy_ns) /. 1e9 /. (wall_s *. workers)))
    end
  in
  if t.n_jobs = 1 || n <= 1 then begin
    let results =
      Array.mapi
        (fun i x ->
          observe_queue_depth ~n i;
          Some (run_task_instrumented ~govern ~task_budget_s ~busy_ns f x))
        arr
    in
    record_occupancy ();
    results
  end
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    (* Re-parent worker-domain spans under the caller's open span so
       multi-domain profiles keep one tree (see Obs.with_context). *)
    let ctx = Obs.capture () in
    let run_one () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i >= n then false
      else begin
        observe_queue_depth ~n i;
        (* Worker-side cancellation checkpoint: once the batch token
           has expired, remaining tasks are marked interrupted without
           running, so an exhausted budget drains the batch instead of
           wedging the pool. *)
        let r =
          match Govern.cancelled govern with
          | Some reason -> Govern.Interrupted reason
          | None ->
            Govern.outcome_map
              (fun v -> v)
              (run_task_instrumented ~govern ~task_budget_s ~busy_ns
                 (fun x -> Obs.with_context ctx (fun () -> f x))
                 arr.(i))
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end;
        true
      end
    in
    Mutex.lock t.mutex;
    t.seq <- t.seq + 1;
    t.current <- Some { run_one };
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* The calling domain is a full participant. *)
    while run_one () do () done;
    Mutex.lock t.mutex;
    while Atomic.get completed < n do
      Condition.wait t.batch_done t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    record_occupancy ();
    results
  end

let map_outcome t ?(govern = Govern.never) ?task_budget_s f xs =
  Array.to_list
    (Array.map
       (function Some o -> o | None -> assert false)
       (outcome_array t ~govern ~task_budget_s f (Array.of_list xs)))

let map_array t f arr =
  collect (outcome_array t ~govern:Govern.never ~task_budget_s:None f arr)

let map t f xs = map_array t f (Array.of_list xs)

let map_reduce t ~map:f ~fold ~init xs =
  List.fold_left fold init (map t f xs)

(* ------------------------------------------------------------------ *)
(* Utilization report: the pool.* slice of the metrics registry,
   rendered for the profile footer. Reads the registry rather than
   pool-local state so it covers every pool the run created. *)

let utilization_report () =
  let counter name =
    match Metrics.get name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let hist name =
    match Metrics.get name with
    | Some (Metrics.Histogram h) when h.Metrics.h_count > 0 -> Some h
    | _ -> None
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "pool utilization\n";
  Buffer.add_string b
    (Printf.sprintf "  batches          %d\n" (counter "pool.batches"));
  Buffer.add_string b
    (Printf.sprintf "  tasks executed   %d\n" (counter "pool.tasks_executed"));
  (match hist "pool.task_s" with
  | Some h ->
    Buffer.add_string b
      (Printf.sprintf "  task time (s)    p50 %.6f  p90 %.6f  max %.6f\n"
         (Metrics.percentile h 0.50)
         (Metrics.percentile h 0.90)
         h.Metrics.h_max)
  | None -> ());
  (match hist "pool.queue_depth" with
  | Some h ->
    Buffer.add_string b
      (Printf.sprintf "  queue depth      p50 %.0f  p90 %.0f  max %.0f\n"
         (Metrics.percentile h 0.50)
         (Metrics.percentile h 0.90)
         h.Metrics.h_max)
  | None -> ());
  (match hist "pool.occupancy" with
  | Some h ->
    Buffer.add_string b
      (Printf.sprintf "  occupancy        mean %.2f  min %.2f  max %.2f\n"
         (h.Metrics.h_sum /. float_of_int h.Metrics.h_count)
         h.Metrics.h_min h.Metrics.h_max)
  | None -> ());
  Buffer.contents b
