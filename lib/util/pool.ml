(* Fixed domain pool. Workers block on a condition variable between
   batches; a batch is published as a bump of [seq] plus a [run_one]
   closure that claims task indices from an atomic cursor, so the
   domains never contend on anything but the two counters. Results land
   in a per-batch array indexed by input position — that array, read
   after the completion handshake (mutex + condition), is what makes
   the fold deterministic. *)

type batch = { run_one : unit -> bool }

type t = {
  n_jobs : int;
  mutex : Mutex.t;
  wake : Condition.t; (* workers: new batch or shutdown *)
  batch_done : Condition.t; (* caller: all tasks of the batch finished *)
  mutable seq : int;
  mutable current : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "MM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.n_jobs

let worker t =
  let last = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.stop) && t.seq = !last do
      Condition.wait t.wake t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      last := t.seq;
      let b = t.current in
      Mutex.unlock t.mutex;
      (match b with
      | Some b -> while b.run_one () do () done
      | None -> ());
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let n_jobs = max 1 jobs in
  let t =
    {
      n_jobs;
      mutex = Mutex.create ();
      wake = Condition.create ();
      batch_done = Condition.create ();
      seq = 0;
      current = None;
      stop = false;
      domains = [];
    }
  in
  if n_jobs > 1 then
    t.domains <- List.init (n_jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ~jobs:(match jobs with Some j -> j | None -> default_jobs ()) in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One governed task: a cooperative cancellation checkpoint at entry
   (after the chaos site, so an injected delay is observed by the
   deadline check), the task token installed as the ambient Govern
   token for checkpoints inside the body, and crashes captured with
   their raw backtrace at the raise site — the re-raise in [collect]
   then points at the real failure, not the dispatch site. *)
let run_task ~govern ~task_budget_s f x =
  let tok =
    match task_budget_s with
    | None -> govern
    | Some budget_s ->
      Govern.sub ~scope:(Govern.scope govern ^ ".task") ~budget_s govern
  in
  Govern.run tok (fun () ->
      Chaos.hit "pool.task";
      Govern.check tok;
      f x)

(* Re-raise the lowest-index crash — the exception a sequential
   left-to-right run would have hit first. *)
let collect results =
  Array.iter
    (function
      | Some (Govern.Crashed { exn; backtrace }) ->
        Printexc.raise_with_backtrace exn backtrace
      | Some (Govern.Interrupted r) -> raise (Govern.Cancelled r)
      | Some (Govern.Done _) | None -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Some (Govern.Done v) -> v
         | Some (Govern.Interrupted _ | Govern.Crashed _) | None -> assert false)
       results)

let outcome_array t ~govern ~task_budget_s f arr =
  let n = Array.length arr in
  Metrics.incr ~by:n "pool.tasks_executed";
  if t.n_jobs = 1 || n <= 1 then
    Array.map (fun x -> Some (run_task ~govern ~task_budget_s f x)) arr
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let completed = Atomic.make 0 in
    (* Re-parent worker-domain spans under the caller's open span so
       multi-domain profiles keep one tree (see Obs.with_context). *)
    let ctx = Obs.capture () in
    let run_one () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i >= n then false
      else begin
        (* Worker-side cancellation checkpoint: once the batch token
           has expired, remaining tasks are marked interrupted without
           running, so an exhausted budget drains the batch instead of
           wedging the pool. *)
        let r =
          match Govern.cancelled govern with
          | Some reason -> Govern.Interrupted reason
          | None ->
            Govern.outcome_map
              (fun v -> v)
              (run_task ~govern ~task_budget_s
                 (fun x -> Obs.with_context ctx (fun () -> f x))
                 arr.(i))
        in
        results.(i) <- Some r;
        if Atomic.fetch_and_add completed 1 = n - 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        end;
        true
      end
    in
    Mutex.lock t.mutex;
    t.seq <- t.seq + 1;
    t.current <- Some { run_one };
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* The calling domain is a full participant. *)
    while run_one () do () done;
    Mutex.lock t.mutex;
    while Atomic.get completed < n do
      Condition.wait t.batch_done t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    results
  end

let map_outcome t ?(govern = Govern.never) ?task_budget_s f xs =
  Array.to_list
    (Array.map
       (function Some o -> o | None -> assert false)
       (outcome_array t ~govern ~task_budget_s f (Array.of_list xs)))

let map_array t f arr =
  collect (outcome_array t ~govern:Govern.never ~task_budget_s:None f arr)

let map t f xs = map_array t f (Array.of_list xs)

let map_reduce t ~map:f ~fold ~init xs =
  List.fold_left fold init (map t f xs)
