(** Process-wide metrics registry.

    Named counters, gauges and histograms accumulated by the pipeline
    stages and exported as flat JSON — the numeric half of the
    observability layer ({!Obs} holds the tracing half). The registry
    is global and thread-safe (one mutex, coarse-grained: every
    operation is O(1) and instrumentation sites record per-stage or
    per-task values — never per-element in hot inner loops — so
    contention is negligible; histogram memory is bounded by
    {!max_samples} regardless).

    Metric names are stable dotted identifiers and, like {!Diag} error
    codes, part of the tool's observable interface — scripts and the
    bench trajectory ([BENCH_*.json]) key on them, so renaming one is
    a breaking change. The registered families:

    - [sdc.*]     front-end work (e.g. [sdc.commands_recovered])
    - [prelim.*]  preliminary merging (e.g. [prelim.exceptions_uniquified])
    - [refine.*]  refinement (e.g. [refine.false_paths_added])
    - [compare.*] the 3-pass comparison (e.g. [compare.fixes])
    - [merge.*]   the merge flow (e.g. [merge.cliques],
                  [merge.quarantined], [merge.degraded_cliques])
    - [sta.*]     the STA engine (e.g. [sta.tags_propagated],
                  [sta.endpoints_checked])

    Unlike {!Obs} spans, the registry is always on: recording is a few
    hashtable operations per pipeline stage and costs nothing
    measurable, and robustness counters ([merge.quarantined]) must be
    visible even in runs that never enable tracing. *)

type histogram = {
  h_count : int;   (** number of observations (exact, uncapped) *)
  h_sum : float;   (** exact sum of every observation *)
  h_min : float;
  h_max : float;
  h_samples : float list;
      (** the retained sample reservoir, in unspecified order. Up to
          {!max_samples} observations every sample is retained and the
          exported percentiles are exact; beyond the cap the reservoir
          is a uniform random subset (Algorithm R, deterministic PRNG
          seeded from the metric name) and percentiles become unbiased
          estimates. The cap bounds memory, so even a misplaced
          per-element [observe] in a hot loop cannot grow the registry
          unboundedly. *)
}

val max_samples : int
(** Reservoir capacity per histogram (1024). [h_count]/[h_sum]/
    [h_min]/[h_max] stay exact past the cap; only the percentile
    sample set is capped. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

type item = { name : string; value : value }

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to counter [name], creating it at 0. *)

val set : string -> float -> unit
(** Set gauge [name] (last write wins). *)

val observe : string -> float -> unit
(** Record one observation into histogram [name]. *)

val get_counter : string -> int
(** Current counter value; 0 when absent (or not a counter). *)

val get : string -> value option

val snapshot : unit -> item list
(** All metrics, sorted by name. *)

val reset : unit -> unit
(** Drop every metric (tests and fresh bench runs). *)

val counters : unit -> (string * int) list
(** Counters only, sorted by name — the slice of the registry the
    checkpoint/resume machinery persists at stage boundaries (gauges
    and histograms carry timings, which are run-local by design). *)

val restore_counters : (string * int) list -> unit
(** Set each named counter to the given absolute value (creating it if
    absent). Used by [--resume] to re-establish the counter state of a
    completed stage so audit coverage sections stay byte-identical to
    an uninterrupted run. *)

(** {2 JSON rendering}

    The registry renders as one flat object keyed by metric name:
    counters as integers, gauges as numbers, histograms as
    [{"count":n,"sum":s,"min":a,"max":b,"mean":m,"p50":…,"p90":…,"p99":…}]
    where the percentiles are nearest-rank values over the retained
    reservoir — exact below {!max_samples} observations, a documented
    estimate above it. *)

val to_json : unit -> string

val json_of_items : item list -> string

(** {2 Prometheus rendering}

    The [GET /metrics] exposition (Prometheus text format v0.0.4).
    Dotted metric names are sanitised to the Prometheus charset
    ([merge.cliques] → [merge_cliques]); counters and gauges render
    with a [# TYPE] line; histograms render cumulative
    [name_bucket{le=…}] lines derived from the retained reservoir —
    per-bound reservoir counts scaled to the exact observation count
    and floored, which keeps the series monotone by construction and
    exact below {!max_samples} observations — plus exact [name_sum] /
    [name_count] lines and a [+Inf] bucket pinned to the exact count. *)

val to_prometheus : unit -> string

val prometheus_of_items : item list -> string

val percentile : histogram -> float -> float
(** [percentile h q] is the nearest-rank [q]-quantile ([q] in [0,1],
    {!Stat.percentile}) of the histogram's retained samples; [0.] for
    an empty histogram. *)

(** {2 JSON helpers shared with {!Obs}} *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val json_float : float -> string
(** Render a float as a JSON number; non-finite values become [0] so an
    exported file never contains [nan]/[inf] tokens. *)
