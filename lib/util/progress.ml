(* Named done/total trackers with ETA, mutex-protected and always on.
   Rendering to stderr is opt-in (--progress) and throttled so the
   tick path stays cheap; the data path never writes anything, so
   progress tracking is read-only with respect to results. *)

type tracker = {
  tr_name : string;
  tr_done : int;
  tr_total : int;
  tr_start_ns : int64;
  tr_finished : bool;
  tr_elapsed_s : float;
  tr_eta_s : float option;
}

type cell = {
  c_name : string;
  mutable c_done : int;
  mutable c_total : int;
  c_start_ns : int64;
  mutable c_finished : bool;
}

let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 8
let order : string list ref = ref [] (* reversed first-activity order *)

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_locked name =
  match Hashtbl.find_opt cells name with
  | Some c -> c
  | None ->
    let c =
      { c_name = name; c_done = 0; c_total = 0;
        c_start_ns = Obs.Clock.now_ns (); c_finished = false }
    in
    Hashtbl.replace cells name c;
    order := name :: !order;
    c

(* ------------------------------------------------------------------ *)
(* Rendering (forward declaration so tick can trigger it)              *)

let render_on = Atomic.make false
let set_render b = Atomic.set render_on b
let render_enabled () = Atomic.get render_on

let is_tty = lazy (try Unix.isatty Unix.stderr with _ -> false)

(* Last render instant; the bar redraws at most every 100 ms on a TTY
   and every 2 s on a pipe. Written under [lock]. *)
let last_render_ns = ref 0L
let bar_open = ref false (* a \r-bar line is currently unterminated *)

let bar_of c =
  let width = 24 in
  if c.c_total <= 0 then
    Printf.sprintf "[%s] %s %d" (String.make width '?') c.c_name c.c_done
  else begin
    let frac =
      Float.max 0. (Float.min 1. (float_of_int c.c_done /. float_of_int c.c_total))
    in
    let full = int_of_float (frac *. float_of_int width) in
    let elapsed = Obs.Clock.elapsed_s c.c_start_ns in
    let eta =
      if c.c_done <= 0 || c.c_done >= c.c_total then ""
      else
        Printf.sprintf " ETA %.1fs"
          (elapsed /. float_of_int c.c_done
           *. float_of_int (c.c_total - c.c_done))
    in
    Printf.sprintf "[%s%s] %s %d/%d%s"
      (String.make full '#')
      (String.make (width - full) '-')
      c.c_name c.c_done c.c_total eta
  end

(* Pick the newest unfinished tracker (most recently created still
   running), falling back to the newest overall. Caller holds lock. *)
let current_cell_locked () =
  let rec first_active = function
    | [] -> None
    | name :: rest -> (
      match Hashtbl.find_opt cells name with
      | Some c when not c.c_finished -> Some c
      | _ -> first_active rest)
  in
  match first_active !order with
  | Some c -> Some c
  | None -> (
    match !order with
    | [] -> None
    | name :: _ -> Hashtbl.find_opt cells name)

let render_locked ~force =
  if Atomic.get render_on then begin
    let now = Obs.Clock.now_ns () in
    let min_gap_ns = if Lazy.force is_tty then 100_000_000L else 2_000_000_000L in
    if force || Int64.compare (Int64.sub now !last_render_ns) min_gap_ns >= 0
    then begin
      last_render_ns := now;
      match current_cell_locked () with
      | None -> ()
      | Some c ->
        if Lazy.force is_tty then begin
          (* Pad so a shrinking line leaves no tail characters. *)
          Printf.eprintf "\r%-70s%!" (bar_of c);
          bar_open := true
        end
        else Printf.eprintf "progress: %s %d%s\n%!" c.c_name c.c_done
               (if c.c_total > 0 then Printf.sprintf "/%d" c.c_total else "")
    end
  end

let render_finish () =
  with_lock (fun () ->
      if !bar_open then begin
        prerr_newline ();
        flush stderr;
        bar_open := false
      end)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let add_total ?(by = 1) name =
  with_lock (fun () ->
      let c = find_locked name in
      c.c_total <- c.c_total + by;
      c.c_finished <- false)

let tick ?(by = 1) name =
  with_lock (fun () ->
      let c = find_locked name in
      c.c_done <- c.c_done + by;
      render_locked ~force:false)

let finish name =
  with_lock (fun () ->
      let c = find_locked name in
      if c.c_total > 0 then c.c_done <- c.c_total;
      c.c_finished <- true;
      render_locked ~force:true)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset cells;
      order := [];
      last_render_ns := 0L)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

let freeze c =
  let elapsed = Obs.Clock.elapsed_s c.c_start_ns in
  {
    tr_name = c.c_name;
    tr_done = c.c_done;
    tr_total = c.c_total;
    tr_start_ns = c.c_start_ns;
    tr_finished = c.c_finished;
    tr_elapsed_s = elapsed;
    tr_eta_s =
      (if c.c_finished || c.c_total <= 0 || c.c_done <= 0
          || c.c_done >= c.c_total
       then None
       else
         Some
           (elapsed /. float_of_int c.c_done
            *. float_of_int (c.c_total - c.c_done)));
  }

let snapshot () =
  with_lock (fun () ->
      List.rev_map
        (fun name -> freeze (Hashtbl.find cells name))
        !order)

let to_json () =
  let trackers = snapshot () in
  let tr t =
    Printf.sprintf
      {|{"name":"%s","done":%d,"total":%d,"elapsed_s":%s,"eta_s":%s,"finished":%b}|}
      (Metrics.json_escape t.tr_name)
      t.tr_done t.tr_total
      (Metrics.json_float t.tr_elapsed_s)
      (match t.tr_eta_s with
      | None -> "null"
      | Some e -> Metrics.json_float e)
      t.tr_finished
  in
  (* Overall view: the three merge stages summed — the coarse "how far
     through the merge are we" number a dashboard wants first. *)
  let stages =
    List.filter
      (fun t ->
        List.mem t.tr_name
          [ "merge.load"; "merge.mergeability"; "merge.cliques" ])
      trackers
  in
  let sum f = List.fold_left (fun a t -> a + f t) 0 stages in
  Printf.sprintf
    {|{"trackers":[%s],"overall":{"stages_done":%d,"stages_total":%d,"units_done":%d,"units_total":%d}}|}
    (String.concat "," (List.map tr trackers))
    (List.length (List.filter (fun t -> t.tr_finished) stages))
    (List.length stages)
    (sum (fun t -> t.tr_done))
    (sum (fun t -> t.tr_total))
