module Clock = struct
  (* CLOCK_MONOTONIC via the bechamel stub library — a C call with no
     OCaml-side allocation ([@noalloc], unboxed int64). *)
  let now_ns () = Monotonic_clock.now ()
  let ns_to_s ns = Int64.to_float ns /. 1e9
  let elapsed_s t0 = ns_to_s (Int64.sub (now_ns ()) t0)
end

type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_top_heap_words : int;
}

type span = {
  sp_id : int;
  sp_parent : int;
  sp_depth : int;
  sp_tid : int;
  sp_name : string;
  sp_attrs : (string * string) list;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_gc : gc_delta option;
}

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* GC telemetry is gated separately: Gc.quick_stat is cheap but not
   free (it allocates a stat record per call), so per-span GC deltas
   are opt-in on top of tracing (--profile-gc, the perf harness). *)
let gc_on = Atomic.make false
let set_gc_enabled b = Atomic.set gc_on b
let gc_enabled () = Atomic.get gc_on

let next_id = Atomic.make 0
let lock = Mutex.create ()
let sink : span list ref = ref []

(* Time-stamped counter samples (Perfetto counter tracks): pool
   occupancy, queue depth, heap watermark. Shares the sink mutex. *)
let csink : (string * int64 * float) list ref = ref []

(* Open spans of the current domain, innermost first: (id, depth). The
   nesting structure is domain-local; only the completed-span sink is
   shared. *)
let stack_key : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let record sp =
  Mutex.lock lock;
  sink := sp :: !sink;
  Mutex.unlock lock

let sample name v =
  if Atomic.get on then begin
    let t = Clock.now_ns () in
    Mutex.lock lock;
    csink := (name, t, v) :: !csink;
    Mutex.unlock lock
  end

let samples () =
  Mutex.lock lock;
  let l = !csink in
  Mutex.unlock lock;
  List.sort (fun (_, a, _) (_, b, _) -> Int64.compare a b) l

(* Per-process GC totals under stable gc.* names — the flight
   recorder's resource axis. quick_stat reads the calling domain's
   allocation counters plus global heap numbers; under --jobs > 1 the
   totals are therefore an approximation attributed to the driver
   domain, which is fine for run-over-run comparison (the workload,
   not the attribution, is what moves). *)
let gc_totals () =
  let s = Gc.quick_stat () in
  [
    "gc.minor_words", s.Gc.minor_words;
    "gc.promoted_words", s.Gc.promoted_words;
    "gc.major_words", s.Gc.major_words;
    "gc.minor_collections", float_of_int s.Gc.minor_collections;
    "gc.major_collections", float_of_int s.Gc.major_collections;
    "gc.heap_words", float_of_int s.Gc.heap_words;
    "gc.top_heap_words", float_of_int s.Gc.top_heap_words;
  ]

let record_gc_metrics () =
  List.iter (fun (k, v) -> Metrics.set k v) (gc_totals ())

let with_span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent, depth =
      match !stack with [] -> -1, 0 | (p, d) :: _ -> p, d + 1
    in
    stack := (id, depth) :: !stack;
    let g0 = if Atomic.get gc_on then Some (Gc.quick_stat ()) else None in
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = Int64.sub (Clock.now_ns ()) t0 in
        let gc =
          match g0 with
          | None -> None
          | Some g0 ->
            let g1 = Gc.quick_stat () in
            sample "gc.heap_words" (float_of_int g1.Gc.heap_words);
            Some
              {
                gd_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
                gd_major_words = g1.Gc.major_words -. g0.Gc.major_words;
                gd_promoted_words =
                  g1.Gc.promoted_words -. g0.Gc.promoted_words;
                gd_minor_collections =
                  g1.Gc.minor_collections - g0.Gc.minor_collections;
                gd_major_collections =
                  g1.Gc.major_collections - g0.Gc.major_collections;
                gd_top_heap_words = g1.Gc.top_heap_words;
              }
        in
        (match !stack with
        | (i, _) :: rest when i = id -> stack := rest
        | _ -> ());
        record
          {
            sp_id = id;
            sp_parent = parent;
            sp_depth = depth;
            sp_tid = (Domain.self () :> int);
            sp_name = name;
            sp_attrs = attrs;
            sp_start_ns = t0;
            sp_dur_ns = dur;
            sp_gc = gc;
          })
      f
  end

(* Cross-domain span context: the innermost open frame of the capturing
   domain, re-installable on another domain so spans recorded there
   attach to the caller's tree instead of rooting their own. *)
type context = (int * int) option

let capture () =
  if not (Atomic.get on) then None
  else
    match !(Domain.DLS.get stack_key) with [] -> None | top :: _ -> Some top

let with_context ctx f =
  match ctx with
  | None -> f ()
  | Some frame ->
    let stack = Domain.DLS.get stack_key in
    let saved = !stack in
    stack := [ frame ];
    Fun.protect ~finally:(fun () -> stack := saved) f

let timed ?attrs name f =
  let t0 = Clock.now_ns () in
  let r = with_span ?attrs name f in
  r, Clock.elapsed_s t0

let spans () =
  Mutex.lock lock;
  let l = !sink in
  Mutex.unlock lock;
  List.sort
    (fun a b -> compare (a.sp_start_ns, a.sp_id) (b.sp_start_ns, b.sp_id))
    l

let reset () =
  Mutex.lock lock;
  sink := [];
  csink := [];
  Mutex.unlock lock

(* ------------------------------------------------------------------ *)
(* Aggregation: one node per distinct span path (root name / ... /     *)
(* span name), in first-seen order, with parent/child links.           *)

type node = {
  nd_name : string;
  nd_depth : int;
  mutable nd_count : int;
  mutable nd_total_ns : int64;
  mutable nd_minor_words : float;    (* summed per-span GC deltas *)
  mutable nd_major_words : float;
  mutable nd_minor_cols : int;
  mutable nd_major_cols : int;
  mutable nd_children : string list; (* child path keys, reverse order *)
}

let add_gc n = function
  | None -> ()
  | Some g ->
    n.nd_minor_words <- n.nd_minor_words +. g.gd_minor_words;
    n.nd_major_words <- n.nd_major_words +. g.gd_major_words;
    n.nd_minor_cols <- n.nd_minor_cols + g.gd_minor_collections;
    n.nd_major_cols <- n.nd_major_cols + g.gd_major_collections

let aggregate () =
  let ss = spans () in
  let path_of_id = Hashtbl.create 64 in (* span id -> path key *)
  let nodes = Hashtbl.create 64 in      (* path key -> node *)
  let roots = ref [] in                 (* root path keys, reverse order *)
  List.iter
    (fun s ->
      let parent_path =
        if s.sp_parent < 0 then None else Hashtbl.find_opt path_of_id s.sp_parent
      in
      let path =
        match parent_path with
        | None -> s.sp_name
        | Some p -> p ^ "\x00" ^ s.sp_name
      in
      Hashtbl.replace path_of_id s.sp_id path;
      (match Hashtbl.find_opt nodes path with
      | Some n ->
        n.nd_count <- n.nd_count + 1;
        n.nd_total_ns <- Int64.add n.nd_total_ns s.sp_dur_ns;
        add_gc n s.sp_gc
      | None ->
        let n =
          {
            nd_name = s.sp_name;
            nd_depth = s.sp_depth;
            nd_count = 1;
            nd_total_ns = s.sp_dur_ns;
            nd_minor_words = 0.;
            nd_major_words = 0.;
            nd_minor_cols = 0;
            nd_major_cols = 0;
            nd_children = [];
          }
        in
        add_gc n s.sp_gc;
        Hashtbl.replace nodes path n;
        (match parent_path with
        | None -> roots := path :: !roots
        | Some p -> (
          match Hashtbl.find_opt nodes p with
          | Some pn -> pn.nd_children <- path :: pn.nd_children
          | None -> roots := path :: !roots))))
    ss;
  List.rev !roots, nodes

let self_ns nodes n =
  let child_total =
    List.fold_left
      (fun acc c ->
        match Hashtbl.find_opt nodes c with
        | Some cn -> Int64.add acc cn.nd_total_ns
        | None -> acc)
      0L n.nd_children
  in
  let s = Int64.sub n.nd_total_ns child_total in
  if Int64.compare s 0L < 0 then 0L else s

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let profile_tree ?(gc = false) () =
  let roots, nodes = aggregate () in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-44s %8s %10s %10s" "span" "calls" "total(s)" "self(s)");
  if gc then
    Buffer.add_string b
      (Printf.sprintf " %10s %7s %7s" "alloc(Mw)" "minGC" "majGC");
  Buffer.add_char b '\n';
  let rec emit path =
    match Hashtbl.find_opt nodes path with
    | None -> ()
    | Some n ->
      let label = String.make (2 * n.nd_depth) ' ' ^ n.nd_name in
      Buffer.add_string b
        (Printf.sprintf "%-44s %8d %10.4f %10.4f" label n.nd_count
           (Clock.ns_to_s n.nd_total_ns)
           (Clock.ns_to_s (self_ns nodes n)));
      if gc then
        Buffer.add_string b
          (Printf.sprintf " %10.3f %7d %7d"
             ((n.nd_minor_words +. n.nd_major_words) /. 1e6)
             n.nd_minor_cols n.nd_major_cols);
      Buffer.add_char b '\n';
      List.iter emit (List.rev n.nd_children)
  in
  List.iter emit roots;
  Buffer.contents b

let trace_event_json () =
  let ss = spans () in
  let cs = samples () in
  let base =
    match ss, cs with
    | s :: _, (_, t, _) :: _ -> Int64.min s.sp_start_ns t
    | s :: _, [] -> s.sp_start_ns
    | [], (_, t, _) :: _ -> t
    | [], [] -> 0L
  in
  let us ns = Int64.to_float ns /. 1e3 in
  (* Perfetto metadata: name the process, and label each span lane by
     its OCaml domain id instead of a bare tid. *)
  let tids =
    List.sort_uniq compare (List.map (fun s -> s.sp_tid) ss)
  in
  let meta =
    Printf.sprintf
      {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"modemerge"}}|}
    :: List.map
         (fun tid ->
           Printf.sprintf
             {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"domain %d%s"}}|}
             tid tid
             (if tid = 0 then " (driver)" else " (pool worker)"))
         tids
  in
  let event s =
    let args =
      match s.sp_attrs with
      | [] -> ""
      | attrs ->
        let field (k, v) =
          Printf.sprintf {|"%s":"%s"|} (Metrics.json_escape k)
            (Metrics.json_escape v)
        in
        Printf.sprintf {|,"args":{%s}|}
          (String.concat "," (List.map field attrs))
    in
    Printf.sprintf
      {|{"name":"%s","cat":"modemerge","ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d%s}|}
      (Metrics.json_escape s.sp_name)
      (Metrics.json_float (us (Int64.sub s.sp_start_ns base)))
      (Metrics.json_float (us s.sp_dur_ns))
      s.sp_tid args
  in
  (* Counter tracks ("ph":"C"): one series per sample name — pool
     occupancy, queue depth, heap watermark — rendered by Perfetto as
     counter lanes alongside the span lanes. *)
  let counter (name, t, v) =
    Printf.sprintf
      {|{"name":"%s","cat":"modemerge","ph":"C","ts":%s,"pid":0,"args":{"value":%s}}|}
      (Metrics.json_escape name)
      (Metrics.json_float (us (Int64.sub t base)))
      (Metrics.json_float v)
  in
  Printf.sprintf {|{"traceEvents":[%s],"displayTimeUnit":"ms"}|}
    (String.concat ","
       (meta @ List.map event ss @ List.map counter cs))

(* Per-name aggregates for the flat export: nodes of the same span name
   merged across paths. *)
let span_summaries () =
  let roots, nodes = aggregate () in
  ignore roots;
  let by_name = Hashtbl.create 32 in
  let order = ref [] in
  Hashtbl.iter
    (fun _path n ->
      let self = self_ns nodes n in
      match Hashtbl.find_opt by_name n.nd_name with
      | Some (count, total, slf) ->
        Hashtbl.replace by_name n.nd_name
          (count + n.nd_count, Int64.add total n.nd_total_ns, Int64.add slf self)
      | None ->
        order := n.nd_name :: !order;
        Hashtbl.replace by_name n.nd_name (n.nd_count, n.nd_total_ns, self))
    nodes;
  List.map
    (fun name ->
      let count, total, self = Hashtbl.find by_name name in
      name, count, Clock.ns_to_s total, Clock.ns_to_s self)
    (List.sort String.compare !order)

let metrics_json () =
  let span_field (name, calls, total_s, self_s) =
    Printf.sprintf {|"%s":{"calls":%d,"total_s":%s,"self_s":%s}|}
      (Metrics.json_escape name) calls
      (Metrics.json_float total_s)
      (Metrics.json_float self_s)
  in
  Printf.sprintf {|{"metrics":%s,"spans":{%s}}|} (Metrics.to_json ())
    (String.concat "," (List.map span_field (span_summaries ())))
