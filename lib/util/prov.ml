type origin =
  | Union
  | Intersection
  | Tolerance_merge
  | Uniquification
  | Derived_exclusivity
  | Inherited
  | Clock_refinement
  | Data_clock_refinement
  | Comparison_fix of { pass : int }

let origin_to_string = function
  | Union -> "union"
  | Intersection -> "intersection"
  | Tolerance_merge -> "tolerance-merge"
  | Uniquification -> "uniquification"
  | Derived_exclusivity -> "derived-exclusivity"
  | Inherited -> "inherited"
  | Clock_refinement -> "clock-refinement"
  | Data_clock_refinement -> "data-clock-refinement"
  | Comparison_fix { pass } -> Printf.sprintf "comparison-pass%d" pass

type entry = {
  pv_id : string;
  pv_line : string;
  pv_origin : origin;
  pv_modes : string list;
  pv_evidence : (string * string) list list;
  pv_notes : string list;
}

type seed = {
  sd_line : string;
  sd_origin : origin;
  sd_modes : string list;
  sd_evidence : (string * string) list list;
  sd_notes : string list;
}

let seed ?(modes = []) ?(evidence = []) ?(notes = []) ~origin line =
  { sd_line = line; sd_origin = origin; sd_modes = modes;
    sd_evidence = evidence; sd_notes = notes }

type store = {
  scope : string;
  entries : entry array;
  index : (string, int list) Hashtbl.t; (* trimmed line -> indices, in order *)
}

let norm_line = String.trim

(* Ids are assigned sequentially in seed (= constraint emission) order,
   so they are a function of the merged mode's content alone — never of
   scheduling — which keeps them byte-identical across --jobs values. *)
let make ~scope seeds =
  let entries =
    Array.of_list
      (List.mapi
         (fun i sd ->
           {
             pv_id = Printf.sprintf "%s#c%d" scope i;
             pv_line = sd.sd_line;
             pv_origin = sd.sd_origin;
             pv_modes = sd.sd_modes;
             pv_evidence = sd.sd_evidence;
             pv_notes = sd.sd_notes;
           })
         seeds)
  in
  let index = Hashtbl.create (Array.length entries) in
  Array.iteri
    (fun i e ->
      let k = norm_line e.pv_line in
      let prev = Option.value ~default:[] (Hashtbl.find_opt index k) in
      Hashtbl.replace index k (prev @ [ i ]))
    entries;
  { scope; entries; index }

let scope t = t.scope
let entries t = Array.to_list t.entries
let length t = Array.length t.entries

let find_line t line =
  match Hashtbl.find_opt t.index (norm_line line) with
  | None -> []
  | Some is -> List.map (fun i -> t.entries.(i)) is

let find_id t id =
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then None
    else if t.entries.(i).pv_id = id then Some t.entries.(i)
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let explain_entry e =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %s\n  origin: %s" e.pv_id e.pv_line
       (origin_to_string e.pv_origin));
  if e.pv_modes <> [] then
    Buffer.add_string b
      (Printf.sprintf "\n  contributed by: %s" (String.concat ", " e.pv_modes));
  List.iter
    (fun ev ->
      Buffer.add_string b "\n  evidence:";
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v))
        ev)
    e.pv_evidence;
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "\n  note: %s" n))
    e.pv_notes;
  Buffer.contents b

let entry_to_json e =
  let str s = Printf.sprintf {|"%s"|} (Metrics.json_escape s) in
  let strs l = "[" ^ String.concat "," (List.map str l) ^ "]" in
  let ev_obj fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf {|%s:%s|} (str k) (str v)) fields)
    ^ "}"
  in
  Printf.sprintf
    {|{"id":%s,"line":%s,"origin":%s,"modes":%s,"evidence":[%s],"notes":%s}|}
    (str e.pv_id) (str e.pv_line)
    (str (origin_to_string e.pv_origin))
    (strs e.pv_modes)
    (String.concat "," (List.map ev_obj e.pv_evidence))
    (strs e.pv_notes)

let to_json t =
  Printf.sprintf {|{"scope":"%s","entries":[%s]}|}
    (Metrics.json_escape t.scope)
    (String.concat "," (List.map entry_to_json (entries t)))
