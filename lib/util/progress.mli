(** Live per-stage progress: done/total counters with ETA.

    Every long-running part of the pipeline reports coarse progress
    into a small set of named {e trackers}:

    - [merge.load] / [merge.mergeability] / [merge.cliques] — the
      merge-flow stages, one unit per source / probed mode / clique,
      advanced by the driver as outcomes fold in;
    - [pool.tasks] — every pool batch adds its task count and each
      task completion ticks once, so progress moves {e during} a batch,
      not only at its boundary;
    - [sta.pins] — a coarse tick from inside [Sta.propagate]'s
      topological sweep (every {!Mm_timing} sweep block), the only
      signal available mid-propagation.

    Trackers are process-global and thread-safe; recording is always on
    (a tick is one mutex acquisition) and strictly read-only with
    respect to results. Two consumers: the [GET /progress] endpoint
    ({!to_json}) and the [--progress] stderr bar ({!set_render}),
    which is TTY-aware — a terminal gets an in-place
    [\r]-rewritten bar, a pipe gets an occasional plain line. *)

type tracker = {
  tr_name : string;
  tr_done : int;
  tr_total : int;       (** 0 when the total is not yet known *)
  tr_start_ns : int64;  (** first activity, {!Obs.Clock} *)
  tr_finished : bool;
  tr_elapsed_s : float;
  tr_eta_s : float option;
      (** remaining-time estimate from the mean rate so far; [None]
          until at least one unit is done or when the total is unknown
          or already reached *)
}

val add_total : ?by:int -> string -> unit
(** Grow tracker [name]'s expected total by [by] (default 1), creating
    the tracker on first use. Totals accumulate — concurrent producers
    (e.g. several STA sweeps) simply add their shares. *)

val tick : ?by:int -> string -> unit
(** Advance tracker [name]'s done count by [by] (default 1), creating
    the tracker on first use. Triggers a (throttled) render when
    {!set_render} is on. *)

val finish : string -> unit
(** Mark tracker [name] finished (done snaps to total when a total is
    known). *)

val snapshot : unit -> tracker list
(** All trackers in first-activity order. *)

val to_json : unit -> string
(** The [GET /progress] document:
    [{"trackers":[{"name":…,"done":…,"total":…,"elapsed_s":…,
    "eta_s":…,"finished":…}],"overall":{…}}] where [overall] sums the
    merge-stage trackers. *)

val reset : unit -> unit
(** Drop every tracker (tests; a fresh run). *)

(** {2 Stderr rendering} *)

val set_render : bool -> unit
(** Enable the [--progress] stderr bar. On a TTY the newest active
    tracker renders as an in-place bar at most every 100 ms; on a
    non-TTY, as a plain [progress: name done/total] line at most every
    2 s (so logs stay readable). *)

val render_enabled : unit -> bool

val render_finish : unit -> unit
(** Terminate the bar line (newline on a TTY) so subsequent output
    starts clean; called from every exit path when rendering was on. *)
