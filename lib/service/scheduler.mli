(** Priority job scheduler with admission control, coalescing and
    result-cache integration.

    One dispatcher domain drains a bounded priority queue (highest
    {!Job.spec.sp_priority} first, submission order within a
    priority); each job's merge runs through
    {!Mm_core.Merge_flow.run_sources} on its own {!Mm_util.Pool} (the
    scheduler's [jobs] setting), under a per-job {!Mm_util.Govern}
    token so [DELETE /jobs/:id] cancels promptly — queued jobs
    directly, running jobs cooperatively through the governance
    checkpoints.

    Admission control, in order, at {!submit}:

    + {b cache} — a fingerprint already in the {!Rcache} completes the
      job immediately ([done], origin [hit]) without touching the
      queue or the pipeline;
    + {b coalescing} — a fingerprint equal to a queued/running job's
      makes the submission a {e follower}: it occupies no queue slot
      and is completed by the primary's single pipeline run (origin
      [coalesced], counted as a cache hit). Followers share the
      primary's fate, including failure and cancellation;
    + {b backpressure} — with [queue_cap] jobs already waiting the
      submission is rejected ({!Queue_full}; the daemon answers 429
      with [Retry-After]).

    All state lives behind one mutex; every public call is
    thread-safe (handlers call in from the HTTP domain). *)

(** Immutable snapshot of one job, safe to render outside the lock. *)
type view = {
  v_id : string;
  v_fp : string;
  v_priority : int;
  v_state : Job.state;
  v_origin : Job.origin option;  (** set once the job completes *)
  v_wall_s : float option;       (** queue-to-completion wall time *)
  v_n_sources : int;
  v_outcome : Job.outcome option;  (** [Some] exactly when state is [Done] *)
}

type submit_result =
  | Accepted of view
      (** queued, coalesced onto an identical in-flight job, or
          completed on the spot from the cache *)
  | Queue_full of int  (** bounded queue is full; retry after N seconds *)

type t

val create : ?jobs:int -> ?queue_cap:int -> cache:Rcache.t -> unit -> t
(** Start the dispatcher domain. [jobs] is the per-merge pool size
    (default: {!Mm_util.Pool.default_jobs}); [queue_cap] bounds the
    number of {e waiting} jobs (default 16, min 1; the running job and
    completed jobs don't count). *)

val submit : t -> Job.spec -> submit_result

val find : t -> string -> view option

val list : t -> view list
(** Every job this scheduler has seen, in submission order. *)

val cancel : t -> string -> (view, string) result
(** Cancel by id: a queued job is cancelled on the spot, a running
    job's token is cancelled (the pipeline unwinds at its next
    governance checkpoint). [Error _] when the id is unknown or the
    job already completed. *)

val queue_cap : t -> int

val queued_count : t -> int

val stop : t -> unit
(** Cancel everything outstanding, stop the dispatcher domain and
    join it. Idempotent. *)
