(* Priority scheduler: one dispatcher domain, a mutex/condition-
   protected job table, per-job Govern tokens. The merge itself runs
   through the ordinary Merge_flow entry points, so everything the
   pipeline guarantees (jobs-invariant bytes, quarantine policy,
   cancellation checkpoints) holds unchanged inside the daemon. *)

module Merge_flow = Mm_core.Merge_flow
module Govern = Mm_util.Govern
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Eventlog = Mm_util.Eventlog

type view = {
  v_id : string;
  v_fp : string;
  v_priority : int;
  v_state : Job.state;
  v_origin : Job.origin option;
  v_wall_s : float option;
  v_n_sources : int;
  v_outcome : Job.outcome option;
}

type submit_result = Accepted of view | Queue_full of int

type jrec = {
  j_id : string;
  j_seq : int;
  j_spec : Job.spec;
  j_fp : string;
  j_token : Govern.token;
  j_submitted_ns : int64;
  mutable j_state : Job.state;
  mutable j_origin : Job.origin option;
  mutable j_outcome : Job.outcome option;
  mutable j_wall_s : float option;
  j_primary : string option;  (* id of the job computing our result *)
}

type t = {
  cache : Rcache.t;
  jobs : int option;
  cap : int;
  table : (string, jrec) Hashtbl.t;
  mutable order : jrec list;  (* newest first *)
  mutable seq : int;
  mu : Mutex.t;
  cond : Condition.t;
  mutable stopping : bool;
  mutable dispatcher : unit Domain.t option;
}

let view_of j =
  {
    v_id = j.j_id;
    v_fp = j.j_fp;
    v_priority = j.j_spec.Job.sp_priority;
    v_state = j.j_state;
    v_origin = j.j_origin;
    v_wall_s = j.j_wall_s;
    v_n_sources = List.length j.j_spec.Job.sp_sources;
    v_outcome = j.j_outcome;
  }

let is_waiting j = j.j_state = Job.Queued && j.j_primary = None

let queued_locked t =
  Hashtbl.fold (fun _ j n -> if is_waiting j then n + 1 else n) t.table 0

let set_queue_gauge t =
  Metrics.set "job.queue_depth" (float_of_int (queued_locked t))

(* ------------------------------------------------------------------ *)
(* Completion (held lock): settle a job and any coalesced followers    *)

let finish_locked t j state origin outcome =
  j.j_state <- state;
  j.j_origin <- Some origin;
  j.j_outcome <- outcome;
  j.j_wall_s <- Some (Obs.Clock.elapsed_s j.j_submitted_ns);
  (match j.j_wall_s with
  | Some w -> Metrics.observe "job.wall_s" w
  | None -> ());
  Eventlog.log "job.finished"
    ~attrs:
      [
        "id", j.j_id;
        "state", Job.state_to_string state;
        "origin", Job.origin_to_string origin;
      ];
  (* Followers inherit the primary's fate. A follower that completes
     Done never ran the pipeline: that is the coalesced cache hit. *)
  Hashtbl.iter
    (fun _ f ->
      if f.j_primary = Some j.j_id && f.j_state = Job.Queued then begin
        f.j_state <- state;
        f.j_outcome <- outcome;
        f.j_origin <- Some Job.Coalesced;
        f.j_wall_s <- Some (Obs.Clock.elapsed_s f.j_submitted_ns);
        (if state = Job.Done then begin
           Metrics.incr "cache.hits";
           Eventlog.log "cache.hit" ~attrs:[ "fp", f.j_fp; "tier", "coalesced" ]
         end);
        Eventlog.log "job.finished"
          ~attrs:
            [
              "id", f.j_id;
              "state", Job.state_to_string state;
              "origin", "coalesced";
            ]
      end)
    t.table;
  set_queue_gauge t

(* ------------------------------------------------------------------ *)
(* Job execution (dispatcher domain, lock released)                    *)

let design_of_spec (spec : Job.spec) =
  match spec.Job.sp_design_format with
  | "v" ->
    (* The Verilog reader is file-based; round-trip through a temp
       file. *)
    let path = Filename.temp_file "modemerge_svc" ".v" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc spec.Job.sp_design_text);
        Mm_netlist.Verilog.read_file ~lib:Mm_netlist.Library.find path)
  | _ -> Mm_netlist.Netlist_io.of_string spec.Job.sp_design_text

let run_job t (j : jrec) =
  let spec = j.j_spec in
  let opts = spec.Job.sp_options in
  match
    let design = design_of_spec spec in
    let sources =
      List.map
        (fun (name, text) ->
          { Merge_flow.src_name = name; src_file = None; src_text = text })
        spec.Job.sp_sources
    in
    Merge_flow.run_sources ?tolerance:opts.Job.opt_tolerance
      ~check_equivalence:opts.Job.opt_check_equivalence
      ~policy:opts.Job.opt_policy ?jobs:t.jobs ~cancel:j.j_token ~design
      sources
  with
  | result ->
    if Govern.cancelled j.j_token <> None then
      (* Permissive runs absorb cancellation as degradation and still
         return; the job is cancelled regardless, and the (partial)
         result never reaches the cache. *)
      Error (Job.Cancelled "cancelled while running")
    else if Merge_flow.degraded_under_budget result.Merge_flow.governed then
      (* Budget-degraded outcomes are legitimate one-shot answers but
         not canonical ones; cacheing them would serve degraded bytes
         to an undegraded future submission. *)
      Ok (Job.outcome_of_result ~annotate:opts.Job.opt_annotate result, false)
    else Ok (Job.outcome_of_result ~annotate:opts.Job.opt_annotate result, true)
  | exception Govern.Cancelled reason ->
    Error (Job.Cancelled (Govern.reason_to_string reason))
  | exception e -> Error (Job.Failed (Printexc.to_string e))

let dispatch_loop t =
  let rec loop () =
    let next =
      Mutex.protect t.mu (fun () ->
          let rec wait () =
            if t.stopping then None
            else
              (* Highest priority first; FIFO within a priority. *)
              let best =
                Hashtbl.fold
                  (fun _ j acc ->
                    if not (is_waiting j) then acc
                    else
                      match acc with
                      | Some b
                        when b.j_spec.Job.sp_priority
                             > j.j_spec.Job.sp_priority
                             || b.j_spec.Job.sp_priority
                                = j.j_spec.Job.sp_priority
                                && b.j_seq < j.j_seq -> acc
                      | _ -> Some j)
                  t.table None
              in
              match best with
              | Some j ->
                j.j_state <- Job.Running;
                set_queue_gauge t;
                Some j
              | None ->
                Condition.wait t.cond t.mu;
                wait ()
          in
          wait ())
    in
    match next with
    | None -> ()
    | Some j ->
      Eventlog.log "job.started" ~attrs:[ "id", j.j_id ];
      let r = run_job t j in
      Mutex.protect t.mu (fun () ->
          match r with
          | Ok (outcome, cacheable) ->
            if cacheable then Rcache.store t.cache j.j_fp outcome;
            finish_locked t j Job.Done Job.Computed (Some outcome)
          | Error state -> finish_locked t j state Job.Computed None);
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Interface                                                           *)

let create ?jobs ?(queue_cap = 16) ~cache () =
  let t =
    {
      cache;
      jobs;
      cap = max 1 queue_cap;
      table = Hashtbl.create 64;
      order = [];
      seq = 0;
      mu = Mutex.create ();
      cond = Condition.create ();
      stopping = false;
      dispatcher = None;
    }
  in
  t.dispatcher <-
    Some
      (Domain.spawn (fun () ->
           try dispatch_loop t
           with e ->
             (* The dispatcher must never die silently. *)
             Eventlog.log "job.finished"
               ~attrs:
                 [ "id", "dispatcher"; "state", "crashed";
                   "origin", Printexc.to_string e ]));
  t

let new_job_locked t ?(state = Job.Queued) ?primary spec fp =
  t.seq <- t.seq + 1;
  let j =
    {
      j_id = Printf.sprintf "j%d" t.seq;
      j_seq = t.seq;
      j_spec = spec;
      j_fp = fp;
      j_token = Govern.create ~scope:(Printf.sprintf "job/j%d" t.seq) ();
      j_submitted_ns = Obs.Clock.now_ns ();
      j_state = state;
      j_origin = None;
      j_outcome = None;
      j_wall_s = None;
      j_primary = primary;
    }
  in
  Hashtbl.add t.table j.j_id j;
  t.order <- j :: t.order;
  j

let submit t spec =
  let fp = Job.fingerprint spec in
  (* The cache lookup does its own locking and metric accounting;
     taking it outside the scheduler lock keeps lock order trivial. *)
  let cached = Rcache.find t.cache fp in
  Mutex.protect t.mu (fun () ->
      if t.stopping then Queue_full 1
      else
        match cached with
        | Some outcome ->
          let j = new_job_locked t ~state:Job.Done spec fp in
          j.j_outcome <- Some outcome;
          j.j_origin <- Some Job.Cache_hit;
          j.j_wall_s <- Some 0.;
          Eventlog.log "job.submitted"
            ~attrs:
              [ "id", j.j_id; "fp", fp;
                "priority", string_of_int spec.Job.sp_priority ];
          Eventlog.log "job.finished"
            ~attrs:[ "id", j.j_id; "state", "done"; "origin", "hit" ];
          Accepted (view_of j)
        | None -> (
          (* An identical job already in flight computes our result. *)
          let primary =
            Hashtbl.fold
              (fun _ p acc ->
                if
                  acc = None && p.j_fp = fp && p.j_primary = None
                  && (p.j_state = Job.Queued || p.j_state = Job.Running)
                then Some p
                else acc)
              t.table None
          in
          match primary with
          | Some p ->
            let j = new_job_locked t ~primary:p.j_id spec fp in
            Eventlog.log "job.submitted"
              ~attrs:
                [ "id", j.j_id; "fp", fp;
                  "priority", string_of_int spec.Job.sp_priority;
                  "coalesced_with", p.j_id ];
            Accepted (view_of j)
          | None ->
            if queued_locked t >= t.cap then begin
              Metrics.incr "job.rejected";
              Eventlog.log "job.rejected"
                ~attrs:[ "reason", "queue-full"; "cap", string_of_int t.cap ];
              Queue_full 1
            end
            else begin
              let j = new_job_locked t spec fp in
              Eventlog.log "job.submitted"
                ~attrs:
                  [ "id", j.j_id; "fp", fp;
                    "priority", string_of_int spec.Job.sp_priority ];
              set_queue_gauge t;
              Condition.signal t.cond;
              Accepted (view_of j)
            end))

let find t id =
  Mutex.protect t.mu (fun () ->
      Option.map view_of (Hashtbl.find_opt t.table id))

let list t =
  Mutex.protect t.mu (fun () -> List.rev_map view_of t.order)

let cancel t id =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.table id with
      | None -> Error (Printf.sprintf "unknown job %s" id)
      | Some j -> (
        match j.j_state with
        | Job.Done | Job.Failed _ | Job.Cancelled _ ->
          Error
            (Printf.sprintf "job %s already %s" id
               (Job.state_to_string j.j_state))
        | Job.Queued ->
          Govern.cancel j.j_token ~why:"client cancel";
          Eventlog.log "job.cancelled" ~attrs:[ "id", id; "while", "queued" ];
          finish_locked t j (Job.Cancelled "cancelled while queued")
            Job.Computed None;
          Ok (view_of j)
        | Job.Running ->
          (* Cooperative: the pipeline unwinds at its next governance
             checkpoint and the dispatcher settles the job. *)
          Govern.cancel j.j_token ~why:"client cancel";
          Eventlog.log "job.cancelled" ~attrs:[ "id", id; "while", "running" ];
          Ok (view_of j)))

let queue_cap t = t.cap

let queued_count t = Mutex.protect t.mu (fun () -> queued_locked t)

let stop t =
  let d =
    Mutex.protect t.mu (fun () ->
        if t.stopping then None
        else begin
          t.stopping <- true;
          Hashtbl.iter
            (fun _ j ->
              match j.j_state with
              | Job.Queued | Job.Running ->
                Govern.cancel j.j_token ~why:"scheduler stopping"
              | _ -> ())
            t.table;
          Condition.broadcast t.cond;
          let d = t.dispatcher in
          t.dispatcher <- None;
          d
        end)
  in
  Option.iter Domain.join d
